#!/usr/bin/env python3
"""Unit tests for bench_compare.py — in particular that records with
absent or non-numeric metric fields are skipped instead of crashing
(older baselines predate e.g. peak_rss_bytes)."""

import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_compare  # noqa: E402


def write_lines(directory: Path, name: str, records) -> Path:
    path = directory / name
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


class AsFloatTest(unittest.TestCase):
    def test_numeric(self):
        self.assertEqual(bench_compare.as_float(3), 3.0)
        self.assertEqual(bench_compare.as_float("2.5"), 2.5)

    def test_bad(self):
        self.assertIsNone(bench_compare.as_float(None))
        self.assertIsNone(bench_compare.as_float("n/a"))
        self.assertIsNone(bench_compare.as_float([1]))


class LoadRecordsTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.dir = Path(self.tmp.name)

    def tearDown(self):
        self.tmp.cleanup()

    def test_missing_peak_rss_is_skipped_not_fatal(self):
        # A baseline written before peak_rss_bytes existed.
        path = write_lines(self.dir, "base.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "study_sec": 1.5},
        ])
        records = bench_compare.load_records(path)
        (metrics,) = records.values()
        self.assertEqual(metrics, {"study_sec": 1.5})

    def test_bench_city_watches_rss_only(self):
        # bench_city gates peak RSS; wall time is reported but not a
        # watched metric (too noisy at city scale on shared runners).
        path = write_lines(self.dir, "base.json", [
            {"bench": "bench_city", "houses": 500, "hours": 1, "seed": 42,
             "shards": 1, "gen_sec": 3.9, "peak_rss_bytes": 150999040,
             "within_rss_bound": True},
        ])
        (metrics,) = bench_compare.load_records(path).values()
        self.assertEqual(metrics, {"peak_rss_bytes": 150999040.0})

    def test_non_numeric_metric_is_skipped(self):
        path = write_lines(self.dir, "base.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "study_sec": "n/a", "peak_rss_bytes": 1000},
        ])
        (metrics,) = bench_compare.load_records(path).values()
        self.assertEqual(metrics, {"peak_rss_bytes": 1000.0})

    def test_micro_line_missing_fields_is_skipped(self):
        path = write_lines(self.dir, "base.json", [
            {"bench": "micro", "name": "intern"},                 # no real_time_ns
            {"bench": "micro", "real_time_ns": 12.0},             # no name
            {"bench": "micro", "name": "ok", "real_time_ns": 7},  # complete
        ])
        records = bench_compare.load_records(path)
        self.assertEqual(records, {"micro/ok": {"real_time_ns": 7.0}})

    def test_gbench_incomplete_entries_are_skipped(self):
        path = self.dir / "gbench.json"
        path.write_text(json.dumps({"benchmarks": [
            {"name": "BM_a", "real_time": 5.0, "time_unit": "us"},
            {"name": "BM_b"},                                     # no real_time
            {"name": "BM_c", "real_time": 1.0, "time_unit": "parsecs"},
            {"real_time": 2.0},                                   # no name
        ]}))
        records = bench_compare.load_records(path)
        self.assertEqual(records, {"micro/BM_a": {"real_time_ns": 5000.0}})

    def test_nested_metrics_are_flattened(self):
        path = write_lines(self.dir, "base.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "study_sec": 1.5,
             "metrics": {"pairing_candidates_scanned_total": 1234,
                         "sim_event_queue_peak": 56}},
        ])
        (metrics,) = bench_compare.load_records(path).values()
        self.assertEqual(metrics, {
            "study_sec": 1.5,
            "metrics.pairing_candidates_scanned_total": 1234.0,
            "metrics.sim_event_queue_peak": 56.0,
        })

    def test_baseline_without_metrics_object_is_skipped(self):
        # A baseline recorded before --metrics existed: the nested
        # lookups resolve to None and drop out, no crash.
        base = write_lines(self.dir, "base.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "study_sec": 1.0},
        ])
        curr = write_lines(self.dir, "curr.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "study_sec": 1.0,
             "metrics": {"pairing_candidates_scanned_total": 999}},
        ])
        argv = sys.argv
        sys.argv = ["bench_compare.py", str(base), str(curr)]
        try:
            self.assertEqual(bench_compare.main(), 0)
        finally:
            sys.argv = argv

    def test_nested_metric_regression_detected(self):
        base = write_lines(self.dir, "base.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "metrics": {"sim_event_queue_peak": 100}},
        ])
        curr = write_lines(self.dir, "curr.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "metrics": {"sim_event_queue_peak": 250}},
        ])
        argv = sys.argv
        sys.argv = ["bench_compare.py", str(base), str(curr)]
        try:
            self.assertEqual(bench_compare.main(), 1)
        finally:
            sys.argv = argv

    def test_lookup_splits_on_first_dot_only(self):
        rec = {"metrics": {"a.b": 7}, "plain": 1}
        self.assertEqual(bench_compare.lookup(rec, "metrics.a.b"), 7)
        self.assertEqual(bench_compare.lookup(rec, "plain"), 1)
        self.assertIsNone(bench_compare.lookup(rec, "metrics.missing"))
        self.assertIsNone(bench_compare.lookup(rec, "plain.sub"))

    def _run_main(self, base, curr):
        argv = sys.argv
        sys.argv = ["bench_compare.py", str(base), str(curr)]
        try:
            return bench_compare.main()
        finally:
            sys.argv = argv

    def test_serve_throughput_floor_regression_detected(self):
        # records_per_sec is higher-is-better: a drop beyond the
        # threshold fails, a rise never does.
        base = write_lines(self.dir, "base.json", [
            {"bench": "bench_serve", "houses": 40, "hours": 4, "seed": 42,
             "records_per_sec": 500000, "ack_p99_us": 700},
        ])
        slower = write_lines(self.dir, "slower.json", [
            {"bench": "bench_serve", "houses": 40, "hours": 4, "seed": 42,
             "records_per_sec": 300000, "ack_p99_us": 700},
        ])
        faster = write_lines(self.dir, "faster.json", [
            {"bench": "bench_serve", "houses": 40, "hours": 4, "seed": 42,
             "records_per_sec": 900000, "ack_p99_us": 9000},
        ])
        self.assertEqual(self._run_main(base, slower), 1)
        # Faster throughput passes even with worse (ungated) latency.
        self.assertEqual(self._run_main(base, faster), 0)

    def test_stream_spool_growth_and_import_floor_gated(self):
        # spool_bytes is lower-is-better (compression must not erode);
        # import_records_per_sec is a higher-is-better throughput floor.
        base = write_lines(self.dir, "base.json", [
            {"bench": "bench_stream", "houses": 40, "hours": 6, "seed": 42,
             "shards": 1, "spool_bytes": 10_000_000,
             "stream_records_per_sec": 1_200_000,
             "import_records_per_sec": 400_000},
        ])
        bloated = write_lines(self.dir, "bloated.json", [
            {"bench": "bench_stream", "houses": 40, "hours": 6, "seed": 42,
             "shards": 1, "spool_bytes": 40_000_000,
             "stream_records_per_sec": 1_200_000,
             "import_records_per_sec": 400_000},
        ])
        slow_import = write_lines(self.dir, "slow_import.json", [
            {"bench": "bench_stream", "houses": 40, "hours": 6, "seed": 42,
             "shards": 1, "spool_bytes": 10_000_000,
             "stream_records_per_sec": 1_200_000,
             "import_records_per_sec": 100_000},
        ])
        better = write_lines(self.dir, "better.json", [
            {"bench": "bench_stream", "houses": 40, "hours": 6, "seed": 42,
             "shards": 1, "spool_bytes": 2_000_000,
             "stream_records_per_sec": 2_000_000,
             "import_records_per_sec": 900_000},
        ])
        self.assertEqual(self._run_main(base, bloated), 1)
        self.assertEqual(self._run_main(base, slow_import), 1)
        self.assertEqual(self._run_main(base, better), 0)

    def test_transport_is_part_of_the_record_key(self):
        # A do53 record and a dot record of the same scale are distinct
        # scenarios; records without the field key as do53 so old
        # baselines still match new do53 runs.
        path = write_lines(self.dir, "base.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "study_sec": 1.0},
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "transport": "dot", "study_sec": 1.4, "enc_classify_sec": 0.2},
        ])
        records = bench_compare.load_records(path)
        self.assertEqual(len(records), 2)
        keys = sorted(records)
        self.assertIn("transport=do53", keys[0])
        self.assertIn("transport=dot", keys[1])
        self.assertEqual(records[keys[1]],
                         {"study_sec": 1.4, "enc_classify_sec": 0.2})

    def test_pack_is_part_of_the_record_key(self):
        # A default run and a `--pack iot_heavy` run of the same scale are
        # distinct scenarios; records without the field key as "default"
        # so pre-pack baselines still match new default runs.
        path = write_lines(self.dir, "base.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "study_sec": 1.0},
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "pack": "iot_heavy", "study_sec": 2.1},
        ])
        records = bench_compare.load_records(path)
        self.assertEqual(len(records), 2)
        keys = sorted(records)
        self.assertTrue(keys[0].endswith("pack=default"))
        self.assertTrue(keys[1].endswith("pack=iot_heavy"))
        self.assertEqual(records[keys[1]], {"study_sec": 2.1})

    def test_pre_pack_baseline_matches_new_default_run(self):
        base = write_lines(self.dir, "base.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "study_sec": 1.0},
        ])
        curr = write_lines(self.dir, "curr.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "pack": "default", "study_sec": 1.0},
        ])
        self.assertEqual(self._run_main(base, curr), 0)
        # ...and a regression in the default pack is still caught.
        worse = write_lines(self.dir, "worse.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "pack": "default", "study_sec": 5.0},
        ])
        self.assertEqual(self._run_main(base, worse), 1)

    def test_enc_classify_regression_detected(self):
        base = write_lines(self.dir, "base.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "transport": "dot", "enc_classify_sec": 0.10},
        ])
        curr = write_lines(self.dir, "curr.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "transport": "dot", "enc_classify_sec": 0.25},
        ])
        self.assertEqual(self._run_main(base, curr), 1)

    def test_compare_with_partial_baseline_passes(self):
        base = write_lines(self.dir, "base.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "study_sec": 1.0},
        ])
        curr = write_lines(self.dir, "curr.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "study_sec": 1.0, "peak_rss_bytes": 123456},
        ])
        argv = sys.argv
        sys.argv = ["bench_compare.py", str(base), str(curr)]
        try:
            self.assertEqual(bench_compare.main(), 0)
        finally:
            sys.argv = argv

    def test_regression_still_detected(self):
        base = write_lines(self.dir, "base.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "study_sec": 1.0},
        ])
        curr = write_lines(self.dir, "curr.json", [
            {"bench": "Table 1", "houses": 4, "hours": 1, "seed": 42,
             "study_sec": 2.0},
        ])
        argv = sys.argv
        sys.argv = ["bench_compare.py", str(base), str(curr)]
        try:
            self.assertEqual(bench_compare.main(), 1)
        finally:
            sys.argv = argv


if __name__ == "__main__":
    unittest.main()
