// dnsctx — the command-line frontend.
//
//   dnsctx simulate --out DIR [--config FILE] [--houses N] [--hours H]
//                   [--seed S] [--start-hour H] [--shards N] [--threads N]
//                   [--loss P] [--dup P] [--reorder P] [--servfail-rate P]
//                   [--nxdomain-rate P] [--resolver-outage T:B-E[,...]]
//                   [--backoff F] [--faults SPEC]
//       Simulate a neighborhood and write conn.log / dns.log (plus a
//       scenario.conf snapshot) into DIR. --shards splits the town into
//       independent sub-towns (a scenario knob: each shard has its own
//       resolver platform caches); --threads only decides how many
//       workers execute them — output is identical for any value. The
//       fault flags assemble a deterministic impairment plan (see
//       docs/FAULTS.md); --faults takes the full plan grammar and the
//       individual flags override single fields.
//
//   dnsctx analyze --dir DIR | (--conn FILE --dns FILE)
//                  [--section all|table1|table2|fig1|fig2|fig3|timeseries|perhouse|failures]
//                  [--baseline DIR] [--csv DIR] [--threads N]
//       Run the paper's pipeline over captured logs. --section failures
//       adds the retry/recovery report; --baseline DIR compares the
//       {N,LC,P,SC,R} shares against an unimpaired run's logs.
//
//   dnsctx sweep --key KEY --values a,b,c [--config FILE] [--out DIR]
//       Re-simulate with KEY overridden per value; print headline shares.
//
//   dnsctx validate [--config FILE] [--houses N] [--hours H] [--seed S]
//       Simulate and compare the passive inferences against ground truth.
//
//   dnsctx stream --spool DIR [--follow] | --import DIR --spool DIR
//                 | --export DIR --spool DIR
//                 | --convert SRCSPOOL --spool DSTDIR
//                 | --spool DIR --push HOST:PORT --tenant NAME [--acks]
//       Streaming ingestion: run the bounded-memory online study over a
//       binary spool (optionally following a live writer), convert
//       between text logs and spools or between spool formats
//       (--convert re-encodes v1↔v2; --format/--codec pick the output
//       encoding for any spool-writing mode), or push the spool's
//       segments to a running `dnsctx serve` over TCP.
//
//   dnsctx serve --listen HOST:PORT --http HOST:PORT [--max-tenants N]
//                [--idle-evict SECS] [--max-frame-mib N]
//                [--queue-segments N] [--results-out DIR]
//       Online telemetry server: accepts segment streams from producers
//       (`stream --push`), runs one OnlineStudy per tenant, and exposes
//       /metrics, /results/<tenant>, /healthz over HTTP. SIGINT/SIGTERM
//       shut down gracefully, flushing partial results (written to
//       --results-out when set). See docs/SERVE.md.
//
// Every subcommand rejects options it does not understand (exit 2 with
// usage) — a typo must not silently run a different experiment.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "analysis/encdns.hpp"
#include "analysis/export.hpp"
#include "analysis/failures.hpp"
#include "analysis/perhouse.hpp"
#include "analysis/report.hpp"
#include "analysis/timeseries.hpp"
#include "analysis/truth.hpp"
#include "capture/logio.hpp"
#include "netsim/transport.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "scenario/config_io.hpp"
#include "scenario/pack.hpp"
#include "serve/push.hpp"
#include "serve/server.hpp"
#include "stream/feed.hpp"
#include "stream/online_study.hpp"
#include "stream/segment_view.hpp"
#include "stream/spool.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

using namespace dnsctx;

void usage();

/// Strict option validation: unknown --options abort with usage.
[[nodiscard]] bool reject_unknown(const CliArgs& args, const char* cmd,
                                  const std::set<std::string>& known) {
  const auto unknown = args.unknown_keys(known);
  if (unknown.empty()) return false;
  for (const auto& key : unknown) {
    std::fprintf(stderr, "%s: unknown option --%s\n", cmd, key.c_str());
  }
  usage();
  return true;
}

const std::set<std::string> kSimOptions = {
    "config",        "houses",        "hours",   "seed",
    "start-hour",    "shards",        "threads", "loss",
    "dup",           "reorder",       "servfail-rate", "nxdomain-rate",
    "resolver-outage", "backoff",     "faults",  "transport",
    "pack",          "metrics-out",   "progress"};

/// Wall-clock progress reporter: prints to stderr (never stdout — golden
/// outputs must stay byte-identical) at most once per `interval_sec`.
class ProgressReporter {
 public:
  explicit ProgressReporter(long long interval_sec)
      : enabled_{interval_sec > 0},
        interval_{std::chrono::seconds{std::max(interval_sec, 0LL)}},
        last_{std::chrono::steady_clock::now()} {}

  /// Report `done/total` simulated time if the interval elapsed. The
  /// final tick (done == total) always prints, so even a run faster
  /// than one interval confirms completion.
  void tick(SimDuration done, SimDuration total) {
    if (!enabled_) return;
    const auto now = std::chrono::steady_clock::now();
    if (done < total && now - last_ < interval_) return;
    last_ = now;
    const double pct = total.count_us() > 0
                           ? 100.0 * static_cast<double>(done.count_us()) /
                                 static_cast<double>(total.count_us())
                           : 100.0;
    std::fprintf(stderr, "progress: simulated %s / %s (%.0f%%)\n",
                 to_string(done).c_str(), to_string(total).c_str(), pct);
  }

  /// Freeform progress line (streaming follow mode).
  void note(const char* fmt, unsigned long long a, unsigned long long b,
            unsigned long long c) {
    if (!enabled_) return;
    const auto now = std::chrono::steady_clock::now();
    if (now - last_ < interval_) return;
    last_ = now;
    std::fprintf(stderr, fmt, a, b, c);
  }

  [[nodiscard]] bool enabled() const { return enabled_; }

 private:
  bool enabled_;
  std::chrono::steady_clock::duration interval_;
  std::chrono::steady_clock::time_point last_;
};

[[nodiscard]] std::set<std::string> with_sim_options(std::set<std::string> extra) {
  extra.insert(kSimOptions.begin(), kSimOptions.end());
  return extra;
}

[[nodiscard]] scenario::ScenarioConfig config_from_args(const CliArgs& args) {
  scenario::ScenarioConfig cfg;
  if (const auto file = args.option("config")) {
    cfg = scenario::load_config_file(*file);
  }
  // Pack after --config, before individual flags: a pack is a preset
  // the explicit flags can still override.
  if (const auto pack = args.option("pack")) {
    scenario::apply_pack_file(*pack, &cfg);
  }
  cfg.houses = static_cast<std::size_t>(
      args.int_option_or("houses", static_cast<long long>(cfg.houses)));
  cfg.duration = SimDuration::hours(
      args.int_option_or("hours", cfg.duration.count_us() / 3'600'000'000LL));
  cfg.seed = static_cast<std::uint64_t>(
      args.int_option_or("seed", static_cast<long long>(cfg.seed)));
  cfg.start_hour = static_cast<int>(args.int_option_or("start-hour", cfg.start_hour));
  cfg.shards = static_cast<std::size_t>(
      args.int_option_or("shards", static_cast<long long>(cfg.shards)));
  cfg.threads = static_cast<unsigned>(
      args.int_option_or("threads", static_cast<long long>(cfg.threads)));
  // --threads without an explicit shard count: shard for parallelism,
  // but by a rule that does not depend on the thread count so the same
  // scenario is produced for any --threads value.
  if (args.option("threads") && !args.option("shards") && cfg.shards <= 1) {
    cfg.shards = std::min<std::size_t>(cfg.houses, 16);
  }
  if (const auto t = args.option("transport")) {
    const auto parsed = netsim::parse_transport(*t);
    if (!parsed) {
      throw std::runtime_error{strfmt(
          "unknown transport '%s' (expected do53, dot, doh, or resolverless)",
          t->c_str())};
    }
    cfg.transport = *parsed;
  }
  // Fault plan: --faults replaces the config file's plan wholesale, the
  // individual flags then override single fields on top of it.
  if (const auto spec = args.option("faults")) cfg.faults = faults::FaultPlan::parse(*spec);
  cfg.faults.loss = args.double_option_or("loss", cfg.faults.loss);
  cfg.faults.dup = args.double_option_or("dup", cfg.faults.dup);
  cfg.faults.reorder = args.double_option_or("reorder", cfg.faults.reorder);
  cfg.faults.servfail_rate = args.double_option_or("servfail-rate", cfg.faults.servfail_rate);
  cfg.faults.nxdomain_rate = args.double_option_or("nxdomain-rate", cfg.faults.nxdomain_rate);
  cfg.faults.backoff = args.double_option_or("backoff", cfg.faults.backoff);
  if (const auto outages = args.option("resolver-outage")) {
    cfg.faults.outages.clear();
    for (const auto item : split(*outages, ',')) {
      cfg.faults.outages.push_back(faults::parse_outage(item));
    }
  }
  // Re-parse the rendered plan so flag-supplied values get the same
  // validation (rate ranges, backoff bounds) as the grammar.
  cfg.faults = faults::FaultPlan::parse(cfg.faults.to_string());
  return cfg;
}

void print_fault_stats(const scenario::Town& town) {
  if (town.config().faults.empty()) return;
  const scenario::FaultStats fs = town.fault_stats();
  std::printf("injected faults: %llu packets dropped (%llu unobserved), %llu duplicated, "
              "%llu reordered,\n"
              "                 %llu SERVFAIL, %llu NXDOMAIN, %llu outage-dropped\n",
              static_cast<unsigned long long>(fs.packets_dropped),
              static_cast<unsigned long long>(fs.packets_dropped_unobserved),
              static_cast<unsigned long long>(fs.packets_duplicated),
              static_cast<unsigned long long>(fs.packets_reordered),
              static_cast<unsigned long long>(fs.servfail_injected),
              static_cast<unsigned long long>(fs.nxdomain_injected),
              static_cast<unsigned long long>(fs.outage_dropped));
}

/// Parse --format v1|v2 and --codec none|lz into `cfg`. The flags only
/// make sense for modes that WRITE a spool; when `writes_spool` is
/// false any occurrence is a hard error (exit 2), so a stray flag never
/// silently changes nothing.
[[nodiscard]] bool spool_config_from_args(const CliArgs& args, const char* cmd,
                                          bool writes_spool, stream::SpoolConfig* cfg) {
  const auto format = args.option("format");
  const auto codec = args.option("codec");
  if (!writes_spool) {
    if (format || codec) {
      std::fprintf(stderr, "%s: --format/--codec only apply when writing a spool\n", cmd);
      return false;
    }
    return true;
  }
  if (format) {
    if (*format == "v1" || *format == "1") {
      cfg->format = stream::kSegmentVersion;
      cfg->codec = stream::SegmentCodec::kNone;
    } else if (*format == "v2" || *format == "2") {
      cfg->format = stream::kSegmentVersionV2;
    } else {
      std::fprintf(stderr, "%s: --format expects v1 or v2, got '%s'\n", cmd,
                   format->c_str());
      return false;
    }
  }
  if (codec) {
    const auto parsed = stream::codec_by_name(*codec);
    if (!parsed) {
      std::fprintf(stderr, "%s: --codec expects none or lz, got '%s'\n", cmd,
                   codec->c_str());
      return false;
    }
    if (cfg->format == stream::kSegmentVersion &&
        *parsed != stream::SegmentCodec::kNone) {
      std::fprintf(stderr, "%s: --codec %s requires --format v2 (v1 is uncompressed)\n",
                   cmd, codec->c_str());
      return false;
    }
    cfg->codec = *parsed;
  }
  return true;
}

int cmd_simulate(const CliArgs& args) {
  if (reject_unknown(args, "simulate",
                     with_sim_options({"out", "binary-logs", "format", "codec"}))) {
    return 2;
  }
  stream::SpoolConfig spool_cfg;
  if (!spool_config_from_args(args, "simulate", args.has_flag("binary-logs"), &spool_cfg)) {
    return 2;
  }
  const auto out_dir = args.option("out");
  if (!out_dir) {
    std::fprintf(stderr, "simulate: --out DIR is required\n");
    return 2;
  }
  const auto cfg = config_from_args(args);
  std::filesystem::create_directories(*out_dir);

  std::printf("simulating %zu houses for %s (seed %llu)...\n", cfg.houses,
              to_string(cfg.duration).c_str(), static_cast<unsigned long long>(cfg.seed));
  scenario::Town town{cfg};

  ProgressReporter progress{args.int_option_or("progress", 0)};

  if (args.has_flag("binary-logs")) {
    // Stream straight to a binary spool: records leave the monitors as
    // they finalize, get time-sorted by the LiveFeed inside the open
    // reordering window, and land in rotating CRC'd segments. No text
    // logs and no in-memory Dataset are ever materialized.
    stream::SpoolWriter writer{*out_dir, spool_cfg};
    stream::LiveFeed feed{writer};
    town.attach_record_sink(&feed);
    const SimDuration chunk = SimDuration::min(5);
    for (SimDuration done; done < cfg.duration; done += chunk) {
      town.run_for(std::min(chunk, cfg.duration - done));
      feed.drain(town.record_watermark());
      progress.tick(std::min(done + chunk, cfg.duration), cfg.duration);
    }
    (void)town.harvest();  // flush still-open flows/lookups to the feed
    feed.close();
    writer.flush();
    town.publish_metrics();
    scenario::save_config_file(*out_dir + "/scenario.conf", cfg);
    std::printf("wrote %llu conns + %llu DNS transactions into %zu segments → %s\n",
                static_cast<unsigned long long>(writer.conns_written()),
                static_cast<unsigned long long>(writer.dns_written()),
                writer.segments_written(), out_dir->c_str());
    if (writer.encflows_written() > 0) {
      std::printf("wrote %llu encrypted-flow metadata records alongside\n",
                  static_cast<unsigned long long>(writer.encflows_written()));
    }
    std::printf("peak reorder buffer: %zu records\n", feed.peak_buffered());
    std::printf("wrote scenario snapshot → %s/scenario.conf\n", out_dir->c_str());
    print_fault_stats(town);
    return 0;
  }

  if (progress.enabled()) {
    // Chunked run: run_for() advances every shard to the same end time,
    // so N chunks dispatch the exact event sequence one run() would —
    // output stays byte-identical while progress lands on stderr.
    const SimDuration chunk = SimDuration::min(5);
    for (SimDuration done; done < cfg.duration; done += chunk) {
      town.run_for(std::min(chunk, cfg.duration - done));
      progress.tick(std::min(done + chunk, cfg.duration), cfg.duration);
    }
    town.run();  // duration already simulated; run() just harvests
  } else {
    town.run();
  }
  town.publish_metrics();

  const std::string conn_path = *out_dir + "/conn.log";
  const std::string dns_path = *out_dir + "/dns.log";
  capture::save_dataset(town.dataset(), conn_path, dns_path);
  scenario::save_config_file(*out_dir + "/scenario.conf", cfg);
  std::printf("wrote %zu conns → %s\n", town.dataset().conns.size(), conn_path.c_str());
  std::printf("wrote %zu DNS transactions → %s\n", town.dataset().dns.size(),
              dns_path.c_str());
  if (!town.dataset().encflows.empty()) {
    // Encrypted transports only: cleartext runs never create this file,
    // so classic output directories stay byte-identical.
    const std::string enc_path = *out_dir + "/encflow.log";
    std::ofstream enc_os{enc_path};
    if (!enc_os) {
      std::fprintf(stderr, "simulate: cannot open %s\n", enc_path.c_str());
      return 1;
    }
    capture::write_encflow_log(enc_os, town.dataset().encflows);
    std::printf("wrote %zu encrypted flows → %s\n", town.dataset().encflows.size(),
                enc_path.c_str());
  }
  std::printf("wrote scenario snapshot → %s/scenario.conf\n", out_dir->c_str());
  print_fault_stats(town);
  return 0;
}

int cmd_analyze(const CliArgs& args) {
  if (reject_unknown(args, "analyze",
                     {"dir", "conn", "dns", "section", "csv", "threads", "baseline",
                      "metrics-out"})) {
    return 2;
  }
  std::string conn_path, dns_path;
  if (const auto dir = args.option("dir")) {
    conn_path = *dir + "/conn.log";
    dns_path = *dir + "/dns.log";
  } else {
    const auto conn = args.option("conn");
    const auto dns = args.option("dns");
    if (!conn || !dns) {
      std::fprintf(stderr, "analyze: need --dir DIR or both --conn FILE and --dns FILE\n");
      return 2;
    }
    conn_path = *conn;
    dns_path = *dns;
  }
  const capture::Dataset ds = capture::load_dataset(conn_path, dns_path);
  std::printf("loaded %zu conns, %zu DNS transactions\n\n", ds.conns.size(), ds.dns.size());

  analysis::StudyConfig study_cfg;
  study_cfg.threads = static_cast<unsigned>(args.int_option_or("threads", 1));
  const analysis::Study study = analysis::run_study(ds, study_cfg);
  const std::string section = args.option_or("section", "all");
  const bool all = section == "all";
  if (all || section == "table1") std::printf("%s\n", analysis::format_table1(study).c_str());
  if (all || section == "table2") {
    std::printf("%s\n", analysis::format_table2(study, ds).c_str());
  }
  if (all || section == "fig1") std::printf("%s\n", analysis::format_fig1(study).c_str());
  if (all || section == "fig2") std::printf("%s\n", analysis::format_fig2(study).c_str());
  if (all || section == "fig3") std::printf("%s\n", analysis::format_fig3(study).c_str());
  if (all || section == "timeseries") {
    const auto ts = analysis::build_time_series(ds, &study.classified);
    std::printf("%s\n", analysis::format_time_series(ts).c_str());
  }
  if (all || section == "failures") {
    const analysis::FailureReport report = analysis::build_failure_report(ds);
    std::printf("%s\n", analysis::format_failure_report(report).c_str());
    if (const auto base = args.option("baseline")) {
      const capture::Dataset base_ds =
          capture::load_dataset(*base + "/conn.log", *base + "/dns.log");
      const analysis::Study base_study = analysis::run_study(base_ds, study_cfg);
      std::printf("%s\n",
                  analysis::format_class_shift(base_study.classified.counts,
                                               study.classified.counts)
                      .c_str());
    }
  }
  if (all || section == "perhouse") {
    const auto ph = analysis::analyze_per_house(ds, study.classified);
    const auto ci = analysis::bootstrap_table2_ci(ph);
    std::printf("per-house blocked share: p10 %.1f%%  p50 %.1f%%  p90 %.1f%%\n",
                ph.blocked_share.empty() ? 0.0 : 100.0 * ph.blocked_share.quantile(0.1),
                ph.blocked_share.empty() ? 0.0 : 100.0 * ph.blocked_share.median(),
                ph.blocked_share.empty() ? 0.0 : 100.0 * ph.blocked_share.quantile(0.9));
    std::printf("95%% bootstrap CI for LC share: [%.1f%%, %.1f%%]\n\n", 100.0 * ci.lc.lo,
                100.0 * ci.lc.hi);
  }
  if (const auto csv = args.option("csv")) {
    std::filesystem::create_directories(*csv);
    const auto files = analysis::export_study_csv(study, *csv);
    std::printf("exported %zu CSV series to %s\n", files, csv->c_str());
  }
  return 0;
}

int cmd_sweep(const CliArgs& args) {
  if (reject_unknown(args, "sweep", with_sim_options({"key", "values"}))) return 2;
  const auto key = args.option("key");
  const auto values = args.option("values");
  if (!key || !values) {
    std::fprintf(stderr, "sweep: --key KEY and --values a,b,c are required\n");
    return 2;
  }
  std::string base_text;
  if (const auto file = args.option("config")) {
    std::stringstream ss;
    scenario::save_config(ss, scenario::load_config_file(*file));
    base_text = ss.str();
  } else {
    std::stringstream ss;
    scenario::save_config(ss, config_from_args(args));
    base_text = ss.str();
  }

  std::printf("%-14s %10s %8s %7s %7s %7s %7s %7s %13s\n", key->c_str(), "conns", "N%",
              "LC%", "P%", "SC%", "R%", "block%", "significant%");
  for (const auto value : split(*values, ',')) {
    std::stringstream cfg_text;
    cfg_text << base_text << "\n" << *key << " = " << value << "\n";
    const auto cfg = scenario::load_config(cfg_text);
    scenario::Town town{cfg};
    town.run();
    const auto study = analysis::run_study(town.dataset());
    const auto& c = study.classified.counts;
    std::printf("%-14.*s %10zu %7.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %12.1f%%\n",
                static_cast<int>(value.size()), value.data(), town.dataset().conns.size(),
                100.0 * c.share(c.n), 100.0 * c.share(c.lc), 100.0 * c.share(c.p),
                100.0 * c.share(c.sc), 100.0 * c.share(c.r), 100.0 * c.share(c.blocked()),
                100.0 * study.performance.significant_overall);
  }
  return 0;
}

int cmd_validate(const CliArgs& args) {
  if (reject_unknown(args, "validate", with_sim_options({}))) return 2;
  auto cfg = config_from_args(args);
  // Validation is exactly where ground truth is wanted: ride the
  // TruthTap beside the monitor (observation-only, no RNG impact).
  cfg.collect_truth = true;
  std::printf("simulating %zu houses for %s...\n", cfg.houses,
              to_string(cfg.duration).c_str());
  scenario::Town town{cfg};
  town.run();
  town.publish_metrics();
  const auto study = analysis::run_study(town.dataset());
  const auto& truth = town.ground_truth();
  const auto& c = study.classified.counts;
  auto row = [](const char* what, double inferred, double actual) {
    const double err = actual > 0.0 ? 100.0 * (inferred - actual) / actual : 0.0;
    std::printf("  %-40s %12.0f %12.0f %+7.1f%%\n", what, inferred, actual, err);
  };
  std::printf("%-42s %12s %12s %8s\n", "inference", "inferred", "truth", "error");
  row("blocked connections (SC+R)", static_cast<double>(c.blocked()),
      static_cast<double>(truth.fetch_blocked));
  row("locally-served connections (LC+P)", static_cast<double>(c.lc + c.p),
      static_cast<double>(truth.fetch_cache_hits));
  row("DNS-less flows (N)", static_cast<double>(c.n),
      static_cast<double>(truth.no_dns_conns));

  // Per-connection taxonomy vs ground truth: the contingency table shows
  // exactly which classes collapse when the transport goes dark.
  const auto flows = town.truth_flows();
  const auto tc = analysis::compare_with_truth(town.dataset(), study.classified, flows);
  std::printf("\n%s", analysis::render_truth_report(tc).c_str());
  if (!town.dataset().encflows.empty()) {
    const auto confusion = analysis::evaluate_enc_classifier(
        town.dataset().encflows, town.resolver_service_addrs());
    std::printf("\n%s", analysis::render_enc_report(confusion).c_str());
  }
  return 0;
}

void print_online_result(const stream::OnlineStudyResult& r, const stream::OnlineStudy& engine) {
  const auto pct = [](std::uint64_t part, std::uint64_t whole) {
    return whole ? 100.0 * static_cast<double>(part) / static_cast<double>(whole) : 0.0;
  };
  std::printf("stream study over %llu conns, %llu DNS transactions\n\n",
              static_cast<unsigned long long>(r.conns), static_cast<unsigned long long>(r.dns));

  std::printf("pairing: %.1f%% of connections paired (%llu), %.1f%% via expired answers;\n",
              pct(r.pairing.paired, r.conns),
              static_cast<unsigned long long>(r.pairing.paired),
              pct(r.pairing.paired_expired, r.pairing.paired));
  std::printf("         %.1f%% had a unique candidate; %.1f%% of eligible lookups unused\n\n",
              100.0 * r.pairing.unique_candidate_frac(), 100.0 * r.unused_lookup_frac);

  std::printf("Table 1 — resolver platform usage\n");
  std::printf("  %-12s %8s %9s %8s %8s\n", "platform", "houses%", "lookups%", "conns%",
              "bytes%");
  for (const auto& row : r.table1) {
    std::printf("  %-12s %7.1f%% %8.1f%% %7.1f%% %7.1f%%\n", row.platform.c_str(),
                row.pct_houses, row.pct_lookups, row.pct_conns, row.pct_bytes);
  }
  std::printf("  ISP-only houses: %.1f%%\n\n", 100.0 * r.isp_only_houses);

  const auto& c = r.classes;
  std::printf("Table 2 — connection classes\n");
  std::printf("  N %.1f%%  LC %.1f%%  P %.1f%%  SC %.1f%%  R %.1f%%  (blocked %.1f%%)\n\n",
              100.0 * c.share(c.n), 100.0 * c.share(c.lc), 100.0 * c.share(c.p),
              100.0 * c.share(c.sc), 100.0 * c.share(c.r), 100.0 * c.share(c.blocked()));

  std::printf("§6 significance quadrants (share of blocked connections)\n");
  std::printf("  insignificant %.1f%%  relative-only %.1f%%  absolute-only %.1f%%  "
              "both %.1f%%  (significant overall: %.1f%%)\n\n",
              100.0 * r.quadrants.insignificant_both, 100.0 * r.quadrants.relative_only,
              100.0 * r.quadrants.absolute_only, 100.0 * r.quadrants.significant_both,
              100.0 * r.quadrants.significant_overall);

  std::printf("§7 per-platform blocked lookups\n");
  for (const auto& p : r.platforms) {
    std::printf("  %-12s cache-hit %.1f%%  conncheck %.1f%% of %llu conns\n",
                p.platform.c_str(), 100.0 * p.hit_rate(), 100.0 * p.conncheck_frac(),
                static_cast<unsigned long long>(p.total_conns));
  }

  analysis::FailureReport failure_report;
  failure_report.counts = r.failures;
  std::printf("\n%s", analysis::format_failure_report(failure_report).c_str());

  std::printf("\nactive state at finish: %llu DNS candidates, %llu records, %zu houses\n",
              static_cast<unsigned long long>(engine.active_candidates()),
              static_cast<unsigned long long>(engine.active_records()),
              engine.tracked_houses());
}

/// Split "HOST:PORT" at the last colon. Returns false on malformed input.
[[nodiscard]] bool parse_hostport(const std::string& spec, std::string* host,
                                  std::uint16_t* port) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) return false;
  const long long p = std::atoll(spec.c_str() + colon + 1);
  if (p < 0 || p > 65535) return false;
  *host = spec.substr(0, colon);
  *port = static_cast<std::uint16_t>(p);
  return true;
}

[[nodiscard]] std::string read_file_bytes(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{strfmt("stream: cannot read %s", path.c_str())};
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

int cmd_stream(const CliArgs& args) {
  if (reject_unknown(args, "stream",
                     {"spool", "import", "export", "convert", "format", "codec",
                      "follow", "idle-exit", "poll-ms", "push", "tenant", "acks",
                      "metrics-out", "progress"})) {
    return 2;
  }
  const auto spool = args.option("spool");
  if (!spool) {
    std::fprintf(stderr, "stream: --spool DIR is required\n");
    return 2;
  }
  const bool writes_spool =
      args.option("import").has_value() || args.option("convert").has_value();
  stream::SpoolConfig spool_cfg;
  if (!spool_config_from_args(args, "stream", writes_spool, &spool_cfg)) return 2;
  if (const auto src = args.option("convert")) {
    // Re-encode an existing spool (v1→v2 or back): replay src through a
    // fresh SpoolWriter in the requested format. Record order and study
    // results are invariant under conversion — only the bytes change.
    const std::uint64_t src_bytes = stream::spool_bytes(*src);
    std::filesystem::create_directories(*spool);
    const auto counts = stream::convert_spool(*src, *spool, spool_cfg);
    const std::uint64_t dst_bytes = stream::spool_bytes(*spool);
    std::printf("converted %llu conns + %llu DNS transactions: %s → %s (format v%u, "
                "%llu → %llu bytes)\n",
                static_cast<unsigned long long>(counts.conns),
                static_cast<unsigned long long>(counts.dns), src->c_str(),
                spool->c_str(), spool_cfg.format,
                static_cast<unsigned long long>(src_bytes),
                static_cast<unsigned long long>(dst_bytes));
    return 0;
  }
  if (const auto push = args.option("push")) {
    std::string host;
    std::uint16_t port = 0;
    if (!parse_hostport(*push, &host, &port)) {
      std::fprintf(stderr, "stream: --push expects HOST:PORT, got '%s'\n", push->c_str());
      return 2;
    }
    const auto tenant = args.option("tenant");
    if (!tenant || !serve::valid_tenant_name(*tenant)) {
      std::fprintf(stderr, "stream: --push requires --tenant NAME ([A-Za-z0-9._-]{1,64})\n");
      return 2;
    }
    const bool acks = args.has_flag("acks");
    serve::PushClient client{host, port, serve::Handshake{*tenant, acks}};
    const auto listing = stream::list_spool(*spool);
    std::size_t segments = 0;
    std::uint64_t last_ack = 0;
    for (const auto* paths :
         {&listing.conn_segments, &listing.dns_segments, &listing.enc_segments}) {
      for (const auto& path : *paths) {
        client.send_segment(read_file_bytes(path));
        ++segments;
        if (acks) last_ack = client.read_ack();
      }
    }
    client.flush();
    if (acks) last_ack = client.read_ack();
    std::printf("pushed %zu segments (%llu bytes) to %s as tenant '%s'",
                segments, static_cast<unsigned long long>(client.bytes_sent()),
                push->c_str(), tenant->c_str());
    if (acks) {
      std::printf("; server released %llu records", static_cast<unsigned long long>(last_ack));
    }
    std::printf("\n");
    return 0;
  }
  if (const auto text = args.option("import")) {
    std::filesystem::create_directories(*spool);
    const auto counts = stream::text_to_spool(*text, *spool, spool_cfg);
    std::printf("imported %llu conns + %llu DNS transactions: %s → %s\n",
                static_cast<unsigned long long>(counts.conns),
                static_cast<unsigned long long>(counts.dns), text->c_str(), spool->c_str());
    return 0;
  }
  if (const auto text = args.option("export")) {
    std::filesystem::create_directories(*text);
    const auto counts = stream::spool_to_text(*spool, *text);
    std::printf("exported %llu conns + %llu DNS transactions: %s → %s\n",
                static_cast<unsigned long long>(counts.conns),
                static_cast<unsigned long long>(counts.dns), spool->c_str(), text->c_str());
    return 0;
  }

  stream::OnlineStudy engine;
  if (args.has_flag("follow")) {
    // Tail a spool a live writer is still appending to: poll for newly
    // finished segments, feed them through a LiveFeed, and release
    // records strictly below the slower kind's frontier (future segments
    // of a kind never start before that kind's newest last_ts, but they
    // may start AT it, so the frontier itself stays buffered). Exit
    // after --idle-exit polls with no new segments.
    const long long poll_ms = args.int_option_or("poll-ms", 200);
    const long long idle_exit = args.int_option_or("idle-exit", 5);
    ProgressReporter progress{args.int_option_or("progress", 0)};
    stream::LiveFeed feed{engine};
    std::set<std::string> seen;
    SimTime conn_front, dns_front;
    bool any_conn = false, any_dns = false;
    std::uint64_t conns = 0, dns = 0;
    std::size_t segments = 0;
    for (long long idle = 0; idle < idle_exit;) {
      const auto listing = stream::list_spool(*spool);
      bool progressed = false;
      for (const auto* paths :
           {&listing.conn_segments, &listing.dns_segments, &listing.enc_segments}) {
        for (const auto& path : *paths) {
          if (!seen.insert(path).second) continue;
          // Zero-copy: the segment stays mmap'd while its records stream
          // into the feed; nothing is materialized per record.
          stream::SegmentView view = stream::SegmentView::map_file(path);
          const stream::SegmentHeader& h = view.header();
          view.deliver(feed);
          if (h.kind == stream::RecordKind::kConn) {
            conns += h.record_count;
          } else if (h.kind == stream::RecordKind::kDns) {
            dns += h.record_count;
          }
          // Enc metadata rides the feed but never advances the conn/dns
          // watermark fronts that gate draining (it is optional).
          if (h.record_count > 0) {
            if (h.kind == stream::RecordKind::kConn) {
              conn_front = std::max(conn_front, h.last_ts);
              any_conn = true;
            } else if (h.kind == stream::RecordKind::kDns) {
              dns_front = std::max(dns_front, h.last_ts);
              any_dns = true;
            }
          }
          ++segments;
          progressed = true;
        }
      }
      progress.note("progress: %llu segments, %llu conns, %llu DNS transactions\n",
                    static_cast<unsigned long long>(segments),
                    static_cast<unsigned long long>(conns),
                    static_cast<unsigned long long>(dns));
      if (progressed) {
        idle = 0;
        if (any_conn && any_dns) {
          const auto front = std::min(conn_front, dns_front);
          if (front > SimTime::origin()) {
            feed.drain(SimTime::from_us(front.count_us() - 1));
          }
        }
      } else if (++idle < idle_exit) {
        std::this_thread::sleep_for(std::chrono::milliseconds{poll_ms});
      }
    }
    feed.close();
    std::printf("followed %zu segments: %llu conns + %llu DNS transactions "
                "(peak reorder buffer %zu records)\n\n",
                segments, static_cast<unsigned long long>(conns),
                static_cast<unsigned long long>(dns), feed.peak_buffered());
  } else {
    const auto counts = stream::replay_spool(*spool, engine);
    std::printf("replayed %llu conns + %llu DNS transactions from %s\n\n",
                static_cast<unsigned long long>(counts.conns),
                static_cast<unsigned long long>(counts.dns), spool->c_str());
  }
  print_online_result(engine.finalize(), engine);
  return 0;
}

int cmd_serve(const CliArgs& args) {
  if (reject_unknown(args, "serve",
                     {"listen", "http", "max-tenants", "idle-evict", "max-frame-mib",
                      "queue-segments", "results-out", "metrics-out", "progress"})) {
    return 2;
  }
  serve::ServeConfig cfg;
  const auto listen = args.option("listen");
  const auto http = args.option("http");
  if (!listen || !parse_hostport(*listen, &cfg.ingest_host, &cfg.ingest_port)) {
    std::fprintf(stderr, "serve: --listen HOST:PORT is required\n");
    return 2;
  }
  if (!http || !parse_hostport(*http, &cfg.http_host, &cfg.http_port)) {
    std::fprintf(stderr, "serve: --http HOST:PORT is required\n");
    return 2;
  }
  cfg.tenant.max_tenants =
      static_cast<std::size_t>(args.int_option_or("max-tenants", 64));
  cfg.tenant.idle_evict =
      std::chrono::seconds{args.int_option_or("idle-evict", 0)};
  cfg.tenant.max_queued_segments =
      static_cast<std::size_t>(args.int_option_or("queue-segments", 64));
  cfg.max_frame_bytes =
      static_cast<std::size_t>(args.int_option_or("max-frame-mib", 16)) << 20;
  if (const auto dir = args.option("results-out")) {
    std::filesystem::create_directories(*dir);
    cfg.results_dir = *dir;
  }

  // The /metrics endpoint is part of the server's contract, so the
  // registry is always on here (elsewhere it needs --metrics-out).
  obs::set_enabled(true);

  serve::EventLoop loop;
  serve::Server server{loop, cfg};
  server.start();
  loop.watch_signals([] { std::fprintf(stderr, "serve: signal received, shutting down\n"); });
  std::fprintf(stderr, "serve: ingest on %s:%u, http on %s:%u\n", cfg.ingest_host.c_str(),
               server.ingest_port(), cfg.http_host.c_str(), server.http_port());
  loop.run();
  server.finish();

  const auto& st = server.stats();
  std::printf("served %llu connections, %llu frames (%llu records) across %zu tenants; "
              "%llu http requests, %llu protocol errors\n",
              static_cast<unsigned long long>(st.connections_accepted),
              static_cast<unsigned long long>(st.frames),
              static_cast<unsigned long long>(st.records_ingested), server.tenants().size(),
              static_cast<unsigned long long>(st.http_requests),
              static_cast<unsigned long long>(st.connections_errored));
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: dnsctx <simulate|analyze|sweep|validate|stream|serve> [options]\n"
               "  simulate --out DIR [--config F] [--pack F] [--houses N] [--hours H]\n"
               "           [--seed S] [--shards N] [--threads N] [--binary-logs]\n"
               "           [--loss P] [--dup P] [--reorder P] [--servfail-rate P]\n"
               "           [--nxdomain-rate P] [--resolver-outage T:B-E[,...]]\n"
               "           [--backoff F] [--faults SPEC]\n"
               "           [--transport do53|dot|doh|resolverless]\n"
               "  analyze  --dir DIR | (--conn F --dns F) [--section S] [--csv DIR]\n"
               "           [--threads N] [--baseline DIR]\n"
               "  sweep    --key K --values a,b,c [--config F | sim options]\n"
               "  validate [--config F] [--pack F] [--houses N] [--hours H] [--seed S]\n"
               "           [--shards N] [--threads N] [--transport T]\n"
               "           (prints truth-vs-inferred taxonomy + encrypted-flow\n"
               "           classifier confusion when the transport is encrypted)\n"
               "  stream   --spool DIR [--follow [--idle-exit N] [--poll-ms MS]]\n"
               "           | --import TEXTDIR --spool DIR | --export TEXTDIR --spool DIR\n"
               "           | --convert SRCSPOOL --spool DSTDIR\n"
               "           | --spool DIR --push HOST:PORT --tenant NAME [--acks]\n"
               "           [--format v1|v2] [--codec none|lz]  (spool-writing modes:\n"
               "           --import/--convert; also simulate --binary-logs)\n"
               "  serve    --listen HOST:PORT --http HOST:PORT [--max-tenants N]\n"
               "           [--idle-evict SECS] [--max-frame-mib N] [--queue-segments N]\n"
               "           [--results-out DIR]\n"
               "  every command also accepts:\n"
               "    --metrics-out FILE   enable metrics; write a scrape on exit\n"
               "                         (.json extension -> JSON, else Prometheus text)\n"
               "    --progress SECS      periodic progress lines on stderr\n"
               "                         (simulate and stream --follow)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const CliArgs args =
      parse_cli(std::span<const char* const>{const_cast<const char* const*>(argv) + 2,
                                             static_cast<std::size_t>(argc - 2)});
  const std::string command = argv[1];
  // Metrics stay disabled (one relaxed load on every hot-path check)
  // unless a scrape destination was requested.
  const auto metrics_out = args.option("metrics-out");
  if (metrics_out) obs::set_enabled(true);
  const auto finish = [&](int rc) {
    if (metrics_out) obs::write_metrics_file(*metrics_out);
    return rc;
  };
  try {
    if (command == "simulate") return finish(cmd_simulate(args));
    if (command == "analyze") return finish(cmd_analyze(args));
    if (command == "sweep") return finish(cmd_sweep(args));
    if (command == "validate") return finish(cmd_validate(args));
    if (command == "stream") return finish(cmd_stream(args));
    if (command == "serve") return finish(cmd_serve(args));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
  usage();
  return 2;
}
