#!/usr/bin/env python3
"""Compare benchmark JSON records against a committed baseline.

Usage:
    tools/bench_compare.py BASELINE CURRENT [--threshold 0.10]

Both files may be either:
  * dnsctx bench records — one JSON object per line, as written by the
    ``--json PATH`` flag of bench_table1 / bench_stream etc., or
  * a google-benchmark ``--benchmark_out`` file (single JSON object with
    a ``benchmarks`` array) — bench_micro's native output.

Records are matched by a scenario key; for each metric that appears in
both files the relative change is printed, and the script exits 1 when
any LOWER-IS-BETTER metric regresses by more than ``--threshold``
(default 10%). Metrics present on only one side are reported but never
fail the comparison, so baselines survive adding new benches.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Lower-is-better metrics compared per record, by bench kind. Dotted
# names ("metrics.x") descend one level into a nested object — the
# internal observability scrape embedded by ``--metrics`` — so the gate
# also covers work counters (how much the run did), not just wall time.
# Nested metrics absent from a baseline are skipped, never fatal, so
# baselines recorded before the metrics scrape existed keep working.
WATCHED_METRICS = {
    "Table 1": [
        "study_sec",
        "enc_classify_sec",
        "peak_rss_bytes",
        "metrics.pairing_candidates_scanned_total",
        "metrics.sim_event_queue_peak",
    ],
    "bench_stream": [
        "stream_sec",
        "stream_peak_rss_bytes",
        "spool_bytes",
        "metrics.stream_reorder_buffered_peak",
    ],
    # City-scale streaming bench: the contract is bounded memory, so the
    # gate watches peak RSS. Wall time is reported in the record but not
    # gated (city runs are long enough that host noise trips a 10% gate).
    "bench_city": ["peak_rss_bytes"],
    "micro": ["real_time_ns"],
}

# Higher-is-better metrics: the gate fires when the CURRENT value falls
# more than ``--threshold`` below the baseline (a throughput floor).
# bench_serve's records/sec is the serving contract — /results must keep
# up with a live producer — so it is gated like a latency metric, just
# with the sign flipped. Loopback ack latency is reported in the record
# but not gated (scheduler noise on shared CI runners dwarfs 10%).
HIGHER_IS_BETTER_METRICS = {
    "bench_serve": ["records_per_sec"],
    # Import throughput is the text → spool conversion rate; spool_bytes
    # (above) is gated lower-is-better so the v2 compression win can't
    # silently erode. stream_records_per_sec floors the replay itself.
    "bench_stream": ["stream_records_per_sec", "import_records_per_sec"],
}


def lookup(rec, name):
    """rec[name], or rec[head][tail] for a dotted name (first dot only)."""
    if "." in name:
        head, tail = name.split(".", 1)
        sub = rec.get(head)
        return sub.get(tail) if isinstance(sub, dict) else None
    return rec.get(name)


def as_float(value) -> float | None:
    """float(value), or None when the field is absent or non-numeric.

    Baselines committed by older (or newer) bench binaries may lack a
    metric or carry a placeholder string; those records must degrade to
    "skipped", never crash the comparison.
    """
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def load_records(path: Path) -> dict[str, dict[str, float]]:
    """Parse a bench file into {record_key: {metric: value}}."""
    text = path.read_text()
    records: dict[str, dict[str, float]] = {}

    def add(key: str, metrics: dict[str, float]) -> None:
        # Last record wins when a file accumulated several runs of the
        # same scenario (the --json flag appends).
        records[key] = metrics

    stripped = text.lstrip()
    if stripped.startswith("{") and '"benchmarks"' in text:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict) and "benchmarks" in doc:
            unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
            for b in doc["benchmarks"]:
                if b.get("run_type", "iteration") != "iteration":
                    continue
                name = b.get("name")
                real_time = as_float(b.get("real_time"))
                unit = unit_ns.get(b.get("time_unit", "ns"))
                if name is None or real_time is None or unit is None:
                    continue  # incomplete entry: skip, don't crash
                add(f"micro/{name}", {"real_time_ns": real_time * unit})
            return records

    for line_no, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}:{line_no}: not valid JSON: {e}")
        bench = rec.get("bench", "?")
        if bench == "micro":
            name = rec.get("name")
            real_time = as_float(rec.get("real_time_ns"))
            if name is None or real_time is None:
                continue  # incomplete entry: skip, don't crash
            key = f"micro/{name}"
            metrics = {"real_time_ns": real_time}
        else:
            # transport defaults to do53 and pack to "default" so older
            # baselines (recorded before those fields existed) keep their
            # keys; a `--transport dot` or `--pack iot_heavy` run is a
            # distinct scenario.
            key = ("{}/houses={} hours={} seed={} threads={} shards={} transport={} "
                   "pack={}").format(
                bench, rec.get("houses"), rec.get("hours"), rec.get("seed"),
                rec.get("threads", 1), rec.get("shards", 1),
                rec.get("transport", "do53"), rec.get("pack", "default"))
            metrics = {}
            watched = WATCHED_METRICS.get(bench, []) + HIGHER_IS_BETTER_METRICS.get(
                bench, [])
            for m in watched:
                value = as_float(lookup(rec, m))
                if value is not None:
                    metrics[m] = value
        add(key, metrics)
    return records


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", type=Path)
    ap.add_argument("current", type=Path)
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max allowed relative regression (default: 0.10 = 10%%)")
    args = ap.parse_args()

    base = load_records(args.baseline)
    curr = load_records(args.current)
    if not base:
        sys.exit(f"{args.baseline}: no benchmark records found")
    if not curr:
        sys.exit(f"{args.current}: no benchmark records found")

    regressions = []
    print(f"{'record / metric':58} {'baseline':>14} {'current':>14} {'change':>9}")
    for key in sorted(base):
        if key not in curr:
            print(f"{key:58} {'(baseline only — skipped)':>38}")
            continue
        bench_kind = key.split("/", 1)[0]
        for metric, base_val in sorted(base[key].items()):
            curr_val = curr[key].get(metric)
            if curr_val is None:
                continue
            change = (curr_val - base_val) / base_val if base_val else 0.0
            higher_better = metric in HIGHER_IS_BETTER_METRICS.get(bench_kind, [])
            regressed = (change < -args.threshold if higher_better
                         else change > args.threshold)
            flag = ""
            if regressed:
                flag = "  << REGRESSION"
                regressions.append((key, metric, change))
            print(f"{key + ' ' + metric:58} {base_val:14.3f} {curr_val:14.3f} "
                  f"{change:+8.1%}{flag}")
    for key in sorted(set(curr) - set(base)):
        print(f"{key:58} {'(current only — skipped)':>38}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} metric(s) regressed more than "
              f"{args.threshold:.0%}:")
        for key, metric, change in regressions:
            print(f"  {key} {metric}: {change:+.1%}")
        return 1
    print(f"\nOK: no metric regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
