// Example: the offline workflow — capture once, analyze many times.
//
// Simulates the neighborhood, persists the two Bro-style logs to disk,
// then reloads them and runs the full study from files. This is the
// workflow for applying the dnsctx analysis pipeline to real conn.log /
// dns.log captures converted into the documented TSV schema.
//
// Usage: log_pipeline [out_dir] [houses] [hours]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/report.hpp"
#include "capture/logio.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";
  scenario::ScenarioConfig cfg;
  cfg.houses = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 15;
  cfg.duration = SimDuration::hours(argc > 3 ? std::atoi(argv[3]) : 3);

  const std::string conn_path = out_dir + "/dnsctx_conn.log";
  const std::string dns_path = out_dir + "/dnsctx_dns.log";

  // --- capture phase -------------------------------------------------------
  {
    std::printf("capturing: %zu houses, %s...\n", cfg.houses, to_string(cfg.duration).c_str());
    scenario::Town town{cfg};
    town.run();
    capture::save_dataset(town.dataset(), conn_path, dns_path);
    std::printf("wrote %zu conns to %s\n", town.dataset().conns.size(), conn_path.c_str());
    std::printf("wrote %zu DNS txns to %s\n", town.dataset().dns.size(), dns_path.c_str());
  }  // the simulation is gone; only the logs remain — like a real capture

  // --- analysis phase ------------------------------------------------------
  std::printf("\nreloading logs and running the paper's pipeline...\n\n");
  const capture::Dataset ds = capture::load_dataset(conn_path, dns_path);
  const analysis::Study study = analysis::run_study(ds);
  std::printf("%s\n", analysis::format_table2(study, ds).c_str());
  std::printf("%s\n", analysis::format_fig1(study).c_str());
  return 0;
}
