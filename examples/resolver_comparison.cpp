// Example: "which resolver should I use?" — §7's question asked as a
// controlled experiment the paper's vantage point never allowed.
//
// The same neighborhood is simulated three times with every household
// pointed at a single platform, isolating the platform's effect on user-
// visible DNS cost (the passive study could only compare self-selected
// populations).
//
// Usage: resolver_comparison [houses] [hours] [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/study.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;
  scenario::ScenarioConfig base;
  base.houses = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 25;
  base.duration = SimDuration::hours(argc > 2 ? std::atoi(argv[2]) : 5);
  base.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 42;

  struct Variant {
    const char* label;
    scenario::HouseProfileMix mix;
  };
  const Variant variants[] = {
      {"all ISP", {.isp_only = 1.0, .cloudflare = 0.0, .no_isp = 0.0, .opendns_in_mixed = 0.0}},
      {"all Cloudflare", {.isp_only = 0.0, .cloudflare = 1.0, .no_isp = 0.0, .opendns_in_mixed = 0.0}},
      {"all Google", {.isp_only = 0.0, .cloudflare = 0.0, .no_isp = 1.0, .opendns_in_mixed = 0.0}},
  };

  std::printf("single-platform neighborhoods (%zu houses, %s each):\n\n", base.houses,
              to_string(base.duration).c_str());
  std::printf("%-16s %10s %12s %12s %14s %14s\n", "variant", "hit rate", "D median",
              "D p95", "contrib>1%", "significant");

  for (const auto& v : variants) {
    auto cfg = base;
    cfg.mix = v.mix;
    scenario::Town town{cfg};
    town.run();
    const auto study = analysis::run_study(town.dataset());
    const auto& p = study.performance;
    if (p.lookup_ms_all.empty()) {
      std::printf("%-16s (no blocked lookups)\n", v.label);
      continue;
    }
    std::printf("%-16s %9.1f%% %9.1f ms %9.1f ms %13.1f%% %13.1f%%\n", v.label,
                100.0 * study.classified.counts.shared_cache_hit_rate(),
                p.lookup_ms_all.median(), p.lookup_ms_all.quantile(0.95),
                100.0 * p.frac_contrib_over_pct(1.0), 100.0 * p.significant_overall);
  }

  std::printf("\nthe paper's §7 verdict holds here too: metrics conflict — the nearby\n"
              "ISP resolver wins on latency, Cloudflare on cache hit rate, and CDN edge\n"
              "selection pulls throughput the other way; no platform wins everything.\n");
  return 0;
}
