// Example: deploy the §8 whole-house caching forwarder LIVE (not just in
// trace replay) and compare the resulting class mix against a baseline
// neighborhood — the deployment experiment the paper could only simulate.
//
// Usage: whole_house_cache [houses] [hours] [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/study.hpp"
#include "cachesim/whole_house.hpp"
#include "scenario/scenario.hpp"

namespace {

dnsctx::analysis::Study run_variant(const dnsctx::scenario::ScenarioConfig& cfg,
                                    const char* label, std::size_t* out_conns) {
  using namespace dnsctx;
  scenario::Town town{cfg};
  town.run();
  *out_conns = town.dataset().conns.size();
  std::printf("  [%s] %zu conns, %zu lookups\n", label, town.dataset().conns.size(),
              town.dataset().dns.size());
  return analysis::run_study(town.dataset());
}

void print_classes(const char* label, const dnsctx::analysis::ClassCounts& c) {
  std::printf("  %-18s N %5.1f%%  LC %5.1f%%  P %5.1f%%  SC %5.1f%%  R %5.1f%%  "
              "(blocked %5.1f%%)\n",
              label, 100.0 * c.share(c.n), 100.0 * c.share(c.lc), 100.0 * c.share(c.p),
              100.0 * c.share(c.sc), 100.0 * c.share(c.r), 100.0 * c.share(c.blocked()));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dnsctx;
  scenario::ScenarioConfig cfg;
  cfg.houses = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 30;
  cfg.duration = SimDuration::hours(argc > 2 ? std::atoi(argv[2]) : 6);
  cfg.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 42;

  std::printf("whole-house cache deployment study (%zu houses, %s)\n\n", cfg.houses,
              to_string(cfg.duration).c_str());

  std::size_t baseline_conns = 0, cached_conns = 0;
  std::printf("running baseline (no router caches, the CCZ configuration):\n");
  const auto baseline = run_variant(cfg, "baseline", &baseline_conns);

  auto cached_cfg = cfg;
  cached_cfg.whole_house_cache_frac = 1.0;  // every router becomes a caching forwarder
  std::printf("running deployment (every router caches DNS):\n");
  const auto cached = run_variant(cached_cfg, "cached", &cached_conns);

  std::printf("\nconnection class mix:\n");
  print_classes("baseline", baseline.classified.counts);
  print_classes("with router cache", cached.classified.counts);

  const double baseline_blocked =
      baseline.classified.counts.share(baseline.classified.counts.blocked());
  const double cached_blocked =
      cached.classified.counts.share(cached.classified.counts.blocked());
  std::printf("\nblocked share %5.1f%% → %5.1f%% (the paper's trace-driven estimate\n"
              "predicted ~9.8%% of conns moving out of SC/R — §8)\n",
              100.0 * baseline_blocked, 100.0 * cached_blocked);

  std::printf("\nnote: with a forwarder, the monitor sees the *router's* queries, so\n"
              "per-device lookups collapse into house-level ones — the visible DNS\n"
              "transaction count also changes, exactly as §8 anticipates.\n");
  return 0;
}
