// Example: run the full study from a scenario configuration file — the
// no-recompile workflow for designing experiments (see
// examples/scenarios/*.conf for starting points).
//
// Usage: custom_scenario <config-file> [csv-out-dir]
#include <cstdio>

#include "analysis/export.hpp"
#include "analysis/report.hpp"
#include "scenario/config_io.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <config-file> [csv-out-dir]\n", argv[0]);
    return 2;
  }
  scenario::ScenarioConfig cfg;
  try {
    cfg = scenario::load_config_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("scenario from %s: %zu houses, %s, seed %llu\n", argv[1], cfg.houses,
              to_string(cfg.duration).c_str(), static_cast<unsigned long long>(cfg.seed));
  scenario::Town town{cfg};
  town.run();
  std::printf("captured %zu conns, %zu DNS transactions\n\n", town.dataset().conns.size(),
              town.dataset().dns.size());

  const analysis::Study study = analysis::run_study(town.dataset());
  std::printf("%s\n", analysis::format_table2(study, town.dataset()).c_str());
  std::printf("%s\n", analysis::format_fig2(study).c_str());

  if (argc > 2) {
    const auto files = analysis::export_study_csv(study, argv[2]);
    std::printf("exported %zu CSV series to %s\n", files, argv[2]);
  }
  return 0;
}
