// Example: the paper's closing warning made concrete. §3 notes that
// "widespread use of encrypted DNS would render the study we conduct in
// this paper impossible". Here we sweep encrypted-DNS adoption and watch
// the passive methodology fall apart: lookups vanish from the DNS log,
// connections lose their pairings, and the N class inflates with
// traffic that is anything but peer-to-peer.
//
// Usage: encrypted_dns_future [houses] [hours] [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/nclass.hpp"
#include "analysis/study.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;
  scenario::ScenarioConfig base;
  base.houses = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 25;
  base.duration = SimDuration::hours(argc > 2 ? std::atoi(argv[2]) : 5);
  base.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 42;

  std::printf("encrypted-DNS adoption sweep (%zu houses, %s)\n\n", base.houses,
              to_string(base.duration).c_str());
  std::printf("%9s %12s %12s %10s %12s %14s\n", "adoption", "dns txns", "paired %",
              "N share", "port-853", "hi-port N %");

  for (const double adoption : {0.0, 0.25, 0.5, 0.9}) {
    auto cfg = base;
    cfg.encrypted_dns_device_frac = adoption;
    scenario::Town town{cfg};
    town.run();
    const auto& ds = town.dataset();
    const auto study = analysis::run_study(ds);
    const auto nclass = analysis::analyze_n_class(ds, study.classified);

    std::uint64_t port853 = 0;
    for (const auto& c : ds.conns) port853 += c.resp_port == 853 ? 1 : 0;

    const double paired = ds.conns.empty()
                              ? 0.0
                              : 100.0 * static_cast<double>(study.pairing.paired) /
                                    static_cast<double>(ds.conns.size());
    std::printf("%8.0f%% %12zu %11.1f%% %9.1f%% %12llu %13.1f%%\n", 100.0 * adoption,
                ds.dns.size(), paired,
                100.0 * study.classified.counts.share(study.classified.counts.n),
                static_cast<unsigned long long>(port853),
                100.0 * nclass.high_port_frac());
  }

  std::printf("\nreading the table: as adoption grows the visible DNS log shrinks, the\n"
              "share of unpaired (N) connections explodes, and the §5.1 sanity checks\n"
              "fire — port-853 flows appear and the N set stops looking like P2P.\n"
              "Future DNS-in-context studies must move to the end hosts, as the paper\n"
              "predicts.\n");
  return 0;
}
