// Example: operator-style time-series reporting over the passive logs.
//
// Runs a full simulated day and buckets the captured datasets hourly:
// the residential diurnal rhythm (§3's population), the blocked-share
// stability over the day, and the per-house DNS query rate (§8's
// lookups/sec/house sanity metric) all fall out of the same two logs the
// paper's analysis uses.
//
// Usage: diurnal_report [houses] [hours] [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/study.hpp"
#include "analysis/timeseries.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;
  scenario::ScenarioConfig cfg;
  cfg.houses = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;
  cfg.duration = SimDuration::hours(argc > 2 ? std::atoi(argv[2]) : 24);
  cfg.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 42;
  cfg.start_hour = 0;  // midnight start so the buckets align with clock hours

  std::printf("simulating %zu houses for %s (starting at midnight)...\n\n", cfg.houses,
              to_string(cfg.duration).c_str());
  scenario::Town town{cfg};
  town.run();

  const auto study = analysis::run_study(town.dataset());
  const auto ts =
      analysis::build_time_series(town.dataset(), &study.classified, SimDuration::hours(1));
  std::printf("%s\n", analysis::format_time_series(ts).c_str());

  std::printf("diurnal swing (peak/trough conns per hour): %.1fx\n", ts.diurnal_swing());
  std::printf("blocked share stays near %.0f%% all day — the paper's headline is not a\n"
              "time-of-day artifact.\n",
              100.0 * study.classified.counts.share(study.classified.counts.blocked()));
  return 0;
}
