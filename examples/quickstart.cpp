// dnsctx quickstart — simulate a small residential neighborhood, capture
// the two passive datasets at the aggregation point, and run the paper's
// full analysis pipeline over them.
//
// Usage: quickstart [houses] [hours] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/report.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;

  scenario::ScenarioConfig cfg;
  cfg.houses = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;
  cfg.duration = SimDuration::hours(argc > 2 ? std::atoi(argv[2]) : 4);
  cfg.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 42;

  std::printf("dnsctx quickstart: %zu houses, %s of traffic, seed %llu\n", cfg.houses,
              to_string(cfg.duration).c_str(),
              static_cast<unsigned long long>(cfg.seed));

  scenario::Town town{cfg};
  town.run();
  const capture::Dataset& ds = town.dataset();

  std::printf("captured: %zu connections, %zu DNS transactions\n\n", ds.conns.size(),
              ds.dns.size());

  const analysis::Study study = analysis::run_study(ds);
  std::printf("%s\n", analysis::format_table1(study).c_str());
  std::printf("%s\n", analysis::format_table2(study, ds).c_str());
  std::printf("%s\n", analysis::format_fig1(study).c_str());
  std::printf("%s\n", analysis::format_fig2(study).c_str());
  std::printf("%s\n", analysis::format_fig3(study).c_str());

  const auto& truth = town.ground_truth();
  std::printf("ground truth (invisible to the monitor):\n");
  std::printf("  fetches=%llu cache_hits=%llu (expired %llu) blocked=%llu prefetches=%llu "
              "no_dns=%llu\n",
              static_cast<unsigned long long>(truth.fetches),
              static_cast<unsigned long long>(truth.fetch_cache_hits),
              static_cast<unsigned long long>(truth.fetch_cache_expired),
              static_cast<unsigned long long>(truth.fetch_blocked),
              static_cast<unsigned long long>(truth.prefetches),
              static_cast<unsigned long long>(truth.no_dns_conns));
  return 0;
}
