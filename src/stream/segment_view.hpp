// dnsctx — zero-copy segment reader for spool formats v1 and v2.
//
// A SegmentView wraps a segment blob — borrowed bytes, an adopted
// buffer, or an mmap'd file — validates it completely up front, and
// then iterates records through a pull cursor that decodes straight out
// of the underlying bytes into a caller-provided record. No per-record
// heap allocation (the DnsRecord answers vector is reused across
// next() calls) and, for uncompressed payloads, no copy of the record
// data at all. Compressed v2 payloads are decompressed once into an
// owned buffer at construction; iteration then runs over that buffer.
//
// Construction performs the FULL structural validation the v1 parser
// did (magic/version/kind, CRC, record bounds, timestamp order, exact
// column consumption, dictionary indices) and throws std::runtime_error
// naming the source plus a byte offset — so once a view exists, its
// cursors cannot fail. This is what lets `serve` hand views to tenant
// queues: a malformed frame is rejected at the decoder boundary, and
// everything past it iterates unconditionally.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "capture/records.hpp"
#include "stream/codec.hpp"
#include "stream/segment.hpp"

namespace dnsctx::stream {

class SegmentView {
 public:
  /// Empty view; every accessor throws std::logic_error until a parsed
  /// view is move-assigned in. Exists so owners (FrameDecoder) can hold
  /// a view member before the first frame arrives.
  SegmentView();
  ~SegmentView();
  SegmentView(SegmentView&&) noexcept;
  SegmentView& operator=(SegmentView&&) noexcept;
  SegmentView(const SegmentView&) = delete;
  SegmentView& operator=(const SegmentView&) = delete;

  /// Parse `bytes` without copying them; the caller keeps `bytes` alive
  /// for the view's lifetime.
  [[nodiscard]] static SegmentView parse(std::string_view bytes, std::string source);

  /// Take ownership of `blob` (the serve ingest path: the network frame
  /// buffer is reused, so the view must own its bytes).
  [[nodiscard]] static SegmentView adopt(std::string blob, std::string source);

  /// mmap `path` read-only (falling back to a plain read when mmap is
  /// unavailable, e.g. for empty files). Diagnostics name the path.
  [[nodiscard]] static SegmentView map_file(const std::string& path);
  [[nodiscard]] static SegmentView map_file(const std::string& path, std::string source);

  [[nodiscard]] const SegmentHeader& header() const;
  [[nodiscard]] RecordKind kind() const { return header().kind; }
  [[nodiscard]] std::uint32_t size() const { return header().record_count; }
  [[nodiscard]] const std::string& source() const;
  /// Codec the payload was stored with (always kNone for v1).
  [[nodiscard]] SegmentCodec stored_codec() const;

  /// Decode the next record into `out`, reusing its buffers. Returns
  /// false when the cursor is exhausted. Throws std::logic_error when
  /// the record type doesn't match kind().
  bool next(capture::ConnRecord& out);
  bool next(capture::DnsRecord& out);
  bool next(capture::EncFlowRecord& out);

  /// Reset the cursor to the first record.
  void rewind();

  /// Deliver every record from the current cursor position to `sink`,
  /// in order. Returns the number delivered.
  std::uint64_t deliver(capture::RecordSink& sink);

  struct Impl;

 private:
  explicit SegmentView(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace dnsctx::stream
