#include "stream/spool.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <type_traits>

#include "capture/logio.hpp"
#include "obs/metrics.hpp"
#include "stream/segment_view.hpp"
#include "util/strings.hpp"

namespace dnsctx::stream {

namespace fs = std::filesystem;

namespace {

[[nodiscard]] std::string segment_name(RecordKind kind, std::uint32_t seq) {
  return strfmt("%s-%08u.seg", to_string(kind).data(), seq);
}

[[nodiscard]] SimTime floor_time() {
  return SimTime::from_us(std::numeric_limits<std::int64_t>::min());
}

template <typename Rec>
struct RecTraits;
template <>
struct RecTraits<capture::ConnRecord> {
  static constexpr RecordKind kKind = RecordKind::kConn;
  static SimTime time(const capture::ConnRecord& r) { return r.start; }
  static void deliver(capture::RecordSink& s, const capture::ConnRecord& r) {
    s.on_conn(r);
  }
};
template <>
struct RecTraits<capture::DnsRecord> {
  static constexpr RecordKind kKind = RecordKind::kDns;
  static SimTime time(const capture::DnsRecord& r) { return r.ts; }
  static void deliver(capture::RecordSink& s, const capture::DnsRecord& r) {
    s.on_dns(r);
  }
};
template <>
struct RecTraits<capture::EncFlowRecord> {
  static constexpr RecordKind kKind = RecordKind::kEncFlow;
  static SimTime time(const capture::EncFlowRecord& r) { return r.start; }
  static void deliver(capture::RecordSink& s, const capture::EncFlowRecord& r) {
    s.on_encflow(r);
  }
};

/// Streams one kind's segment sequence record by record through mmap'd
/// SegmentViews: segments are validated (CRC + structure) when opened,
/// records decode zero-copy into one reused head record, and
/// cross-segment timestamp order is enforced. Memory is bounded by one
/// mapped segment. Diagnostics carry the file path plus its index in
/// the sequence.
template <typename Rec>
class SegmentStream {
 public:
  SegmentStream(const std::vector<std::string>* paths, capture::RecordSink* sink)
      : paths_{paths}, sink_{sink} {
    advance();
  }

  [[nodiscard]] bool done() const { return exhausted_; }
  [[nodiscard]] SimTime head_time() const { return RecTraits<Rec>::time(head_); }

  /// Deliver the head record to the sink and advance.
  void pop() {
    RecTraits<Rec>::deliver(*sink_, head_);
    advance();
  }

 private:
  void advance() {
    for (;;) {
      if (in_segment_ && view_.next(head_)) return;
      in_segment_ = false;
      if (next_path_ >= paths_->size()) {
        exhausted_ = true;
        return;
      }
      const std::string& path = (*paths_)[next_path_];
      const std::string source = strfmt("%s (segment %zu)", path.c_str(), next_path_);
      ++next_path_;
      view_ = SegmentView::map_file(path, source);
      if (view_.kind() != RecTraits<Rec>::kKind) {
        throw std::runtime_error{strfmt("%s: segment kind is %s, expected %s",
                                        source.c_str(), to_string(view_.kind()).data(),
                                        to_string(RecTraits<Rec>::kKind).data())};
      }
      if (view_.size() == 0) continue;  // tolerate empty segments
      if (view_.header().first_ts < prev_) {
        throw std::runtime_error{
            strfmt("%s: segment starts at %lld us, before preceding segment end %lld us",
                   source.c_str(),
                   static_cast<long long>(view_.header().first_ts.count_us()),
                   static_cast<long long>(prev_.count_us()))};
      }
      prev_ = view_.header().last_ts;
      in_segment_ = true;
    }
  }

  const std::vector<std::string>* paths_;
  capture::RecordSink* sink_;
  std::size_t next_path_ = 0;
  SegmentView view_;
  bool in_segment_ = false;
  Rec head_;
  SimTime prev_ = floor_time();
  bool exhausted_ = false;
};

/// Merge three time-sorted sequences into one nondecreasing delivery
/// order. Tie priority is DNS, then conn, then enc: an answer landing at
/// the same microsecond a connection starts must already be visible to
/// the pairing engine, and enc metadata is purely observational so it
/// trails both. Each stream is a (done, head_time, pop) triple.
template <typename Dns, typename Conn, typename Enc>
ReplayCounts merge_deliver(Dns& dns, Conn& conn, Enc& enc) {
  ReplayCounts counts;
  for (;;) {
    int pick = -1;
    SimTime best;
    if (!dns.done()) {
      pick = 0;
      best = dns.head_time();
    }
    if (!conn.done() && (pick < 0 || conn.head_time() < best)) {
      pick = 1;
      best = conn.head_time();
    }
    if (!enc.done() && (pick < 0 || enc.head_time() < best)) {
      pick = 2;
    }
    if (pick == 0) {
      dns.pop();
      ++counts.dns;
    } else if (pick == 1) {
      conn.pop();
      ++counts.conns;
    } else if (pick == 2) {
      enc.pop();
      ++counts.encflows;
    } else {
      break;
    }
  }
  return counts;
}

/// Adapts an in-memory sorted vector to the (done, head_time, pop)
/// stream shape merge_deliver consumes.
template <typename Rec>
class VectorStream {
 public:
  VectorStream(const std::vector<Rec>* recs, capture::RecordSink* sink)
      : recs_{recs}, sink_{sink} {}

  [[nodiscard]] bool done() const { return pos_ >= recs_->size(); }
  [[nodiscard]] SimTime head_time() const { return RecTraits<Rec>::time((*recs_)[pos_]); }
  void pop() { RecTraits<Rec>::deliver(*sink_, (*recs_)[pos_++]); }

 private:
  const std::vector<Rec>* recs_;
  capture::RecordSink* sink_;
  std::size_t pos_ = 0;
};

}  // namespace

// ---- SpoolWriter -----------------------------------------------------------

SpoolWriter::SpoolWriter(std::string dir, SpoolConfig cfg)
    : dir_{std::move(dir)}, cfg_{cfg} {
  if (cfg_.max_records_per_segment == 0) {
    throw std::invalid_argument{"SpoolConfig::max_records_per_segment must be > 0"};
  }
  if (cfg_.format != kSegmentVersion && cfg_.format != kSegmentVersionV2) {
    throw std::invalid_argument{
        strfmt("SpoolConfig::format must be %u or %u (got %u)", kSegmentVersion,
               kSegmentVersionV2, cfg_.format)};
  }
  if (cfg_.format == kSegmentVersionV2) {
    conn_.v2 = std::make_unique<SegmentBuilderV2>(RecordKind::kConn, cfg_.codec);
    dns_.v2 = std::make_unique<SegmentBuilderV2>(RecordKind::kDns, cfg_.codec);
  }
  fs::create_directories(dir_);
}

SpoolWriter::~SpoolWriter() {
  try {
    flush();
  } catch (...) {
    // Destructors must not throw; callers needing the error call flush().
  }
}

template <typename Rec>
void SpoolWriter::add(OpenSegment& seg, RecordKind kind, const Rec& rec, SimTime ts) {
  if (seg.any && ts < seg.last) {
    throw std::runtime_error{
        strfmt("spool %s: %s record at %lld us arrived after %lld us; spool input must be "
               "time-sorted",
               dir_.c_str(), to_string(kind).data(), static_cast<long long>(ts.count_us()),
               static_cast<long long>(seg.last.count_us()))};
  }
  const bool rotate_now =
      seg.count > 0 && (seg.count >= cfg_.max_records_per_segment ||
                        ts - seg.first >= cfg_.max_segment_span);
  if (rotate_now) rotate(seg, kind);
  if (seg.count == 0) seg.first = ts;
  if constexpr (std::is_same_v<Rec, capture::EncFlowRecord>) {
    // Enc segments have no columnar layout: always the v1 body codec.
    append_record(seg.payload, rec);
  } else {
    if (seg.v2) {
      seg.v2->add(rec);
    } else {
      append_record(seg.payload, rec);
    }
  }
  ++seg.count;
  seg.last = ts;
  seg.any = true;
  ++seg.records_total;
}

void SpoolWriter::rotate(OpenSegment& seg, RecordKind kind) {
  if (seg.count == 0) return;
  std::uint64_t raw_bytes;
  std::string blob;
  if (seg.v2) {
    raw_bytes = seg.v2->raw_bytes();
    blob = seg.v2->build();  // resets the builder for the next segment
  } else {
    raw_bytes = seg.payload.size();
    blob = build_segment(kind, seg.count, seg.first, seg.last, seg.payload);
    seg.payload.clear();
  }
  write_segment_file((fs::path{dir_} / segment_name(kind, seg.next_seq)).string(), blob);
  ++seg.next_seq;
  ++segments_written_;
  if (obs::enabled()) {
    auto& reg = obs::registry();
    reg.counter("spool_segment_rotations_total").add();
    reg.counter("spool_bytes_written_total").add(blob.size());
    // Pre-compression payload bytes: spool_raw_bytes_total /
    // spool_bytes_written_total approximates the compression ratio.
    reg.counter("spool_raw_bytes_total").add(raw_bytes);
    reg.counter("spool_records_written_total").add(seg.count);
  }
  seg.count = 0;
}

void SpoolWriter::on_conn(const capture::ConnRecord& rec) {
  add(conn_, RecordKind::kConn, rec, rec.start);
}

void SpoolWriter::on_dns(const capture::DnsRecord& rec) {
  add(dns_, RecordKind::kDns, rec, rec.ts);
}

void SpoolWriter::on_encflow(const capture::EncFlowRecord& rec) {
  add(enc_, RecordKind::kEncFlow, rec, rec.start);
}

void SpoolWriter::flush() {
  rotate(conn_, RecordKind::kConn);
  rotate(dns_, RecordKind::kDns);
  rotate(enc_, RecordKind::kEncFlow);
}

// ---- reading ---------------------------------------------------------------

SpoolListing list_spool(const std::string& dir) {
  if (!fs::is_directory(dir)) {
    throw std::runtime_error{"spool directory not found: " + dir};
  }
  SpoolListing out;
  for (const auto& entry : fs::directory_iterator{dir}) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!name.ends_with(".seg")) continue;
    if (name.starts_with("conn-")) {
      out.conn_segments.push_back(entry.path().string());
    } else if (name.starts_with("dns-")) {
      out.dns_segments.push_back(entry.path().string());
    } else if (name.starts_with("enc-")) {
      out.enc_segments.push_back(entry.path().string());
    }
  }
  std::sort(out.conn_segments.begin(), out.conn_segments.end());
  std::sort(out.dns_segments.begin(), out.dns_segments.end());
  std::sort(out.enc_segments.begin(), out.enc_segments.end());
  return out;
}

ReplayCounts replay_spool(const SpoolListing& listing, capture::RecordSink& sink) {
  SegmentStream<capture::DnsRecord> dns{&listing.dns_segments, &sink};
  SegmentStream<capture::ConnRecord> conn{&listing.conn_segments, &sink};
  SegmentStream<capture::EncFlowRecord> enc{&listing.enc_segments, &sink};
  return merge_deliver(dns, conn, enc);
}

ReplayCounts replay_spool(const std::string& dir, capture::RecordSink& sink) {
  return replay_spool(list_spool(dir), sink);
}

ReplayCounts replay_dataset(const capture::Dataset& ds, capture::RecordSink& sink) {
  VectorStream<capture::DnsRecord> dns{&ds.dns, &sink};
  VectorStream<capture::ConnRecord> conn{&ds.conns, &sink};
  VectorStream<capture::EncFlowRecord> enc{&ds.encflows, &sink};
  return merge_deliver(dns, conn, enc);
}

// ---- text converters -------------------------------------------------------

ReplayCounts text_to_spool(const std::string& text_dir, const std::string& spool_dir,
                           SpoolConfig cfg) {
  const auto conn_path = (fs::path{text_dir} / "conn.log").string();
  const auto dns_path = (fs::path{text_dir} / "dns.log").string();
  const auto enc_path = (fs::path{text_dir} / "encflow.log").string();
  capture::Dataset ds = capture::load_dataset(conn_path, dns_path);
  if (fs::exists(enc_path)) {
    std::ifstream is{enc_path};
    if (!is) throw std::runtime_error{"cannot open " + enc_path};
    ds.encflows = capture::read_encflow_log(is, enc_path);
  }
  SpoolWriter writer{spool_dir, cfg};
  const ReplayCounts counts = replay_dataset(ds, writer);
  writer.flush();
  return counts;
}

namespace {

/// RecordSink that accumulates back into a Dataset (records arrive merged
/// and time-sorted, so each vector ends up sorted too).
class DatasetSink : public capture::RecordSink {
 public:
  void on_conn(const capture::ConnRecord& rec) override { ds.conns.push_back(rec); }
  void on_dns(const capture::DnsRecord& rec) override { ds.dns.push_back(rec); }
  void on_encflow(const capture::EncFlowRecord& rec) override {
    ds.encflows.push_back(rec);
  }
  capture::Dataset ds;
};

}  // namespace

ReplayCounts spool_to_text(const std::string& spool_dir, const std::string& text_dir) {
  DatasetSink sink;
  const ReplayCounts counts = replay_spool(spool_dir, sink);
  fs::create_directories(text_dir);
  capture::save_dataset(sink.ds, (fs::path{text_dir} / "conn.log").string(),
                        (fs::path{text_dir} / "dns.log").string());
  // encflow.log only when the spool held enc metadata — cleartext spools
  // keep producing exactly the two classic files.
  if (!sink.ds.encflows.empty()) {
    const auto enc_path = (fs::path{text_dir} / "encflow.log").string();
    std::ofstream os{enc_path};
    if (!os) throw std::runtime_error{"cannot open " + enc_path};
    capture::write_encflow_log(os, sink.ds.encflows);
    if (!os) throw std::runtime_error{"short write to " + enc_path};
  }
  return counts;
}

ReplayCounts convert_spool(const std::string& src_dir, const std::string& dst_dir,
                           SpoolConfig cfg) {
  SpoolWriter writer{dst_dir, cfg};
  const ReplayCounts counts = replay_spool(src_dir, writer);
  writer.flush();
  return counts;
}

std::uint64_t spool_bytes(const SpoolListing& listing) {
  std::uint64_t total = 0;
  for (const auto& path : listing.conn_segments) total += fs::file_size(path);
  for (const auto& path : listing.dns_segments) total += fs::file_size(path);
  for (const auto& path : listing.enc_segments) total += fs::file_size(path);
  return total;
}

std::uint64_t spool_bytes(const std::string& dir) { return spool_bytes(list_spool(dir)); }

}  // namespace dnsctx::stream
