// dnsctx — segmented binary record format for streaming ingestion.
//
// A segment is a self-describing blob holding a run of ConnRecord or
// DnsRecord entries in nondecreasing timestamp order:
//
//   header (40 bytes, little-endian)
//     u32  magic          "DCSG"
//     u16  version        kSegmentVersion
//     u8   kind           0 = conn, 1 = dns, 2 = enc (encrypted-flow
//                         metadata; v1 payloads only — the columnar v2
//                         format has no enc column set and readers
//                         reject v2 enc segments)
//     u8   reserved       0
//     u32  record_count
//     i64  first_ts_us    timestamp of the first record (0 when empty)
//     i64  last_ts_us     timestamp of the last record (0 when empty)
//     u64  payload_bytes
//     u32  payload_crc32  IEEE CRC-32 over the payload bytes
//   payload
//     record_count × (u32 body_len | body)
//
// Every record body is length-prefixed so future versions can append
// fields without breaking older readers, and every multi-byte integer is
// little-endian regardless of host order. See docs/FORMAT.md for the
// field-by-field body layouts.
//
// Format v2 (stream/segment_v2.hpp) keeps the same 40-byte header with
// version = 2 but stores a columnar, optionally compressed payload.
// Readers here auto-detect the version: parse_segment materializes both
// formats, and stream/segment_view.hpp iterates either without
// materializing.
//
// Parsers throw std::runtime_error whose message names the `source`
// (segment file path) on any structural defect: bad magic/version,
// truncation, CRC mismatch, or record bodies overrunning the payload.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "capture/records.hpp"

namespace dnsctx::stream {

enum class RecordKind : std::uint8_t { kConn = 0, kDns = 1, kEncFlow = 2 };

[[nodiscard]] std::string_view to_string(RecordKind k);

inline constexpr std::uint32_t kSegmentMagic = 0x47534344u;  // "DCSG" in LE bytes
inline constexpr std::uint16_t kSegmentVersion = 1;
inline constexpr std::uint16_t kSegmentVersionV2 = 2;  ///< columnar; see segment_v2.hpp
inline constexpr std::size_t kSegmentHeaderBytes = 40;

struct SegmentHeader {
  RecordKind kind = RecordKind::kConn;
  std::uint16_t version = kSegmentVersion;
  std::uint32_t record_count = 0;
  SimTime first_ts;
  SimTime last_ts;
  std::uint64_t payload_bytes = 0;
  std::uint32_t payload_crc32 = 0;
};

/// IEEE 802.3 CRC-32 (poly 0xEDB88320), the same polynomial zlib uses.
/// `seed` lets callers chain partial buffers: crc32(b, crc32(a)) ==
/// crc32(a+b).
[[nodiscard]] std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0);

/// Append one length-prefixed record body to a segment payload buffer.
void append_record(std::string& payload, const capture::ConnRecord& rec);
void append_record(std::string& payload, const capture::DnsRecord& rec);
void append_record(std::string& payload, const capture::EncFlowRecord& rec);

/// Assemble a complete segment blob (header + payload). `first`/`last`
/// are the payload's timestamp range; ignored (written as 0) when
/// `record_count` is 0.
[[nodiscard]] std::string build_segment(RecordKind kind, std::uint32_t record_count,
                                        SimTime first, SimTime last,
                                        std::string_view payload);

/// Append a 40-byte segment header to `out`. Shared by the v1 and v2
/// builders; `version` selects the format tag, everything else is
/// layout-identical across versions.
void append_segment_header(std::string& out, std::uint16_t version, RecordKind kind,
                           std::uint32_t record_count, SimTime first, SimTime last,
                           std::uint64_t payload_bytes, std::uint32_t payload_crc);

/// A fully parsed segment. Exactly one of `conns`/`dns`/`encflows` is
/// populated, per `header.kind`.
struct SegmentData {
  SegmentHeader header;
  std::vector<capture::ConnRecord> conns;
  std::vector<capture::DnsRecord> dns;
  std::vector<capture::EncFlowRecord> encflows;
};

/// Parse and validate a segment blob. `source` names the origin (file
/// path) in every diagnostic.
[[nodiscard]] SegmentData parse_segment(std::string_view bytes, const std::string& source);

/// Parse only the 40-byte header (CRC is NOT checked). Used by spool
/// scans that need time ranges without decoding payloads.
[[nodiscard]] SegmentHeader parse_segment_header(std::string_view bytes,
                                                 const std::string& source);

/// File conveniences.
void write_segment_file(const std::string& path, std::string_view blob);
[[nodiscard]] SegmentData read_segment_file(const std::string& path);

}  // namespace dnsctx::stream
