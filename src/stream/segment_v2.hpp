// dnsctx — spool format v2: columnar segment encoding.
//
// A v2 segment keeps the v1 40-byte header (version field = 2, CRC over
// the stored payload) but replaces the interleaved record bodies with a
// column-oriented payload:
//
//   payload := u8 codec_id | u64 raw_body_bytes | body'
//
// where body' is `body` passed through the BlockCodec named by
// codec_id (stored verbatim for codec 0 = none). The body itself is
//
//   body := name_dict?  addr_dict  column*
//   name_dict (dns only) := varint name_count
//                           name_count × (varint len | len bytes)
//   addr_dict := varint addr_count
//                min(addr_count, 128) × u32 LE          (head)
//                remaining × varint value-delta          (tail)
//   column := varint byte_len | byte_len bytes
//
// Columns appear in a fixed order per kind (kConnColumns /
// kDnsColumns). Timestamps are stored as unsigned varint deltas from
// the previous record (the first record's delta is 0 relative to
// header.first_ts), so nondecreasing order is inherent to the encoding;
// durations are zigzag varints; ports are fixed-width little-endian.
// IPv4 addresses and qnames are varint indices into the per-segment
// address/name dictionaries, which store each distinct value once — a
// segment sees few distinct hosts, so indices run 1-2 bytes where raw
// addresses cost 4. Readers accept dictionary entries in any order;
// the writer places the kDictHead most-referenced values first (small
// indices go to hot values), then the rest sorted ascending so the
// addr-dict tail delta-codes tightly (each tail entry is its u32 value
// minus the previous tail value, first relative to 0) and the name-dict
// tail groups shared suffixes for the block codec. DNS answer sets are
// flattened: a per-record answer_count column, then one ans_addr /
// ans_ttl entry per answer across the whole segment.
//
// The encoding is lossless: decoding reproduces every record field
// bit-for-bit, so study results over a v2 spool are byte-identical to
// the same records in v1. See docs/FORMAT.md for the normative spec and
// stream/segment_view.hpp for the zero-copy reader.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "capture/records.hpp"
#include "stream/codec.hpp"
#include "stream/segment.hpp"
#include "util/names.hpp"

namespace dnsctx::stream {

/// Upper bound on a v2 decompressed body, guarding readers against
/// decompression bombs in hostile segments (serve ingests them straight
/// off the network). Far above anything the writer produces: a
/// max-size segment (65'536 records) is a few MiB raw.
inline constexpr std::uint64_t kMaxRawBodyBytes = 1ull << 28;  // 256 MiB

/// Dictionary entries stored in frequency order before the writer
/// switches to the compression-friendly sorted tail (wire constant:
/// readers count this many raw u32 entries before the addr-dict
/// switches to varint deltas).
inline constexpr std::size_t kDictHead = 128;

/// Column order per kind — wire layout, never reorder. Names appear in
/// reader diagnostics and docs/FORMAT.md.
inline constexpr std::array<const char*, 10> kConnColumns = {
    "ts_delta",  "duration",  "orig_ip", "resp_ip",    "orig_port",
    "resp_port", "proto",     "state",   "orig_bytes", "resp_bytes"};
inline constexpr std::array<const char*, 12> kDnsColumns = {
    "ts_delta", "duration", "client_ip", "client_port",  "resolver_ip", "qtype",
    "rcode",    "answered", "name_idx",  "answer_count", "ans_addr",    "ans_ttl"};

/// Accumulates records into column buffers and assembles v2 segment
/// blobs. One builder per open segment per kind; build() emits the blob
/// and resets the builder for the next segment. Records must be added
/// in nondecreasing timestamp order (throws otherwise — same contract
/// as SpoolWriter).
///
/// When the requested codec expands a particular body (incompressible
/// data), build() stores that segment uncompressed: the codec id is
/// per-segment payload framing, so readers need no hint.
class SegmentBuilderV2 {
 public:
  explicit SegmentBuilderV2(RecordKind kind, SegmentCodec codec = SegmentCodec::kLz);

  void add(const capture::ConnRecord& rec);
  void add(const capture::DnsRecord& rec);

  [[nodiscard]] RecordKind kind() const { return kind_; }
  [[nodiscard]] std::uint32_t count() const { return count_; }
  /// Current pre-compression payload size (columns + dictionary), for
  /// compression-ratio accounting.
  [[nodiscard]] std::uint64_t raw_bytes() const;

  /// Assemble the complete blob (header + framed payload) and reset.
  [[nodiscard]] std::string build();

  void reset();

 private:
  void start_record(std::int64_t ts_us);
  [[nodiscard]] std::uint32_t addr_index(Ipv4Addr ip);

  RecordKind kind_;
  SegmentCodec codec_;
  std::uint32_t count_ = 0;
  std::int64_t first_ts_ = 0;
  std::int64_t prev_ts_ = 0;
  std::vector<std::string> cols_;
  std::vector<std::string_view> dict_names_;  ///< views into the NameTable arena
  std::vector<std::uint32_t> name_refs_;      ///< reference count per name
  std::unordered_map<util::NameId, std::uint32_t> dict_idx_;
  std::vector<std::uint32_t> addrs_;      ///< distinct IPs, first-appearance order
  std::vector<std::uint32_t> addr_refs_;  ///< reference count per address
  std::unordered_map<std::uint32_t, std::uint32_t> addr_idx_;
};

/// One-shot conveniences for tests and benches.
[[nodiscard]] std::string build_segment_v2(const std::vector<capture::ConnRecord>& recs,
                                           SegmentCodec codec = SegmentCodec::kLz);
[[nodiscard]] std::string build_segment_v2(const std::vector<capture::DnsRecord>& recs,
                                           SegmentCodec codec = SegmentCodec::kLz);

}  // namespace dnsctx::stream
