// dnsctx — bounded-memory online study engine.
//
// OnlineStudy is a RecordSink that ingests a single time-sorted stream of
// conn/dns records (from replay_spool, replay_dataset, or a LiveFeed) and
// incrementally computes the paper's headline results: DN-Hunter pairing
// statistics (§4), the N/LC/P/SC/R taxonomy (Table 2, §5), Table 1's
// platform usage shares, the §6 significance quadrants, and the §7
// per-platform counters — all with memory proportional to the ACTIVE
// window (live DNS candidates, distinct house/resolver/platform keys),
// not the stream length.
//
// Determinism contract: for a stream delivered in the canonical order
// (nondecreasing key time, DNS before conn at ties, harvest order within
// ties) `finalize()` is bit-identical to the batch pipeline
// (analysis::run_study) on the same records — every double is produced by
// the same arithmetic on the same operands in the same order. The
// batch distribution outputs that inherently require retaining every
// sample (Fig 1/2/3 CDFs, knee detection) are the one deliberate
// omission; every count, share, threshold, and fraction streams.
//
// Three mechanisms make bounded memory compatible with bit-exactness:
//
//  * Shadow eviction. Within one (house, address) candidate list sorted
//    by response time, any candidate that is both expired at the
//    watermark AND followed by a later candidate whose response precedes
//    the watermark can never again be chosen: future connections start
//    at/after the watermark, so the earlier candidate is dead for the
//    live scan and shadowed for the most-recent-expired fallback. The
//    newest candidate of a list is never evicted — the fallback may
//    always reach it.
//
//  * Deferred SC/R split. §5.3's per-resolver thresholds depend on the
//    full run, so blocked connections bank their lookup duration into a
//    per-resolver ceil-millisecond bin map; `finalize()` re-derives the
//    thresholds (replicating derive_resolver_thresholds exactly from a
//    pruned low-end duration multiset) and splits SC/R from the bins.
//    ceil(us/1000) <= T is provably equivalent to the batch double
//    compare us/1000.0 <= T for the integral thresholds §5.3 produces.
//
//  * Commutative cross-house state. Everything not under a single house
//    key (resolver accumulators, platform tallies, quadrant counters) is
//    a sum/min/union, so cross-house interleaving — and hence shard
//    count — cannot affect results.
//
// `absorb()` merges engines that ingested house-disjoint partitions,
// enabling sharded streaming with the same guarantees.
//
// Hot-path layout: houses, per-house candidate indexes, and resolver
// accumulators live in util::FlatMap (open addressing, no per-node
// allocation); platform tallies are dense vectors indexed by
// analysis::PlatformId; the conncheck hostname is interned once so the
// per-record test is an integer compare.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "analysis/classify.hpp"
#include "analysis/failures.hpp"
#include "analysis/tables.hpp"
#include "capture/records.hpp"
#include "util/flat_map.hpp"
#include "util/names.hpp"

namespace dnsctx::stream {

struct OnlineStudyConfig {
  analysis::ClassifyConfig classify;
  double abs_significance_ms = 20.0;  ///< §6 absolute criterion
  double rel_significance_pct = 1.0;  ///< §6 relative criterion
  analysis::PlatformDirectory directory = analysis::PlatformDirectory::standard();
  std::string conncheck_name = "connectivitycheck.gstatic.com";
  /// Approximate GC: candidates whose response is older than
  /// watermark − horizon are dropped even when the exact shadow rule
  /// would keep them (their connections then pair as the batch would
  /// have WITHOUT those lookups). SimDuration::max() — the default —
  /// disables it; the exact engine is already O(active window).
  SimDuration eviction_horizon = SimDuration::max();
  /// Ingests between eviction sweeps (amortizes the state walk).
  std::uint64_t sweep_interval = 8192;
  /// Retry-chain gap for the failure counters (matches
  /// analysis::FailureReportConfig::chain_gap).
  SimDuration chain_gap = SimDuration::sec(15);
};

struct OnlinePairingStats {
  std::uint64_t paired = 0;
  std::uint64_t unpaired = 0;
  std::uint64_t paired_expired = 0;
  std::uint64_t unique_candidate = 0;
  std::uint64_t multiple_candidates = 0;

  [[nodiscard]] double unique_candidate_frac() const {
    const auto total = unique_candidate + multiple_candidates;
    return total ? static_cast<double>(unique_candidate) / static_cast<double>(total) : 0.0;
  }
};

/// §6 quadrant fractions over SC ∪ R connections.
struct OnlineQuadrants {
  double insignificant_both = 0.0;
  double relative_only = 0.0;
  double absolute_only = 0.0;
  double significant_both = 0.0;
  double significant_overall = 0.0;  ///< q_sig over ALL connections
};

/// §7 per-platform counters (the streaming subset of PlatformPerf).
struct OnlinePlatformRow {
  std::string platform;
  std::uint64_t sc = 0;
  std::uint64_t r = 0;
  std::uint64_t conncheck_conns = 0;
  std::uint64_t total_conns = 0;

  [[nodiscard]] double hit_rate() const {
    const auto blocked = sc + r;
    return blocked ? static_cast<double>(sc) / static_cast<double>(blocked) : 0.0;
  }
  [[nodiscard]] double conncheck_frac() const {
    return total_conns
               ? static_cast<double>(conncheck_conns) / static_cast<double>(total_conns)
               : 0.0;
  }
};

struct OnlineStudyResult {
  std::uint64_t conns = 0;
  std::uint64_t dns = 0;

  OnlinePairingStats pairing;
  double unused_lookup_frac = 0.0;

  analysis::ClassCounts classes;
  std::uint64_t lc_expired = 0;
  std::uint64_t p_expired = 0;
  util::FlatMap<Ipv4Addr, double> resolver_threshold_ms;

  std::vector<analysis::Table1Row> table1;
  double isp_only_houses = 0.0;

  OnlineQuadrants quadrants;
  std::vector<OnlinePlatformRow> platforms;

  /// Failure/recovery counters (bit-identical to the batch
  /// build_failure_report counts under every fault plan; the batch-only
  /// timing CDFs are omitted like the other distribution outputs).
  analysis::FailureCounts failures;
};

class OnlineStudy : public capture::RecordSink {
 public:
  explicit OnlineStudy(OnlineStudyConfig cfg = {});

  /// Ingest. Records must arrive with nondecreasing key time per kind
  /// (conn keyed by `start`, dns by `ts`); regressions throw.
  void on_conn(const capture::ConnRecord& rec) override;
  void on_dns(const capture::DnsRecord& rec) override;

  /// Compute every derived result from the accumulators. Non-destructive
  /// — ingestion may continue and finalize() may be called again.
  [[nodiscard]] OnlineStudyResult finalize() const;

  /// Merge another engine that ingested a HOUSE-DISJOINT partition of
  /// the stream (same config). Throws if a house appears in both.
  void absorb(OnlineStudy&& other);

  // ---- memory introspection (the bounded-memory story, measurable) ----
  [[nodiscard]] std::uint64_t active_candidates() const { return active_candidates_; }
  [[nodiscard]] std::uint64_t active_records() const { return active_records_; }
  [[nodiscard]] std::size_t tracked_houses() const { return houses_.size(); }
  [[nodiscard]] SimTime watermark() const { return watermark_; }
  /// Run an eviction sweep now (also runs automatically every
  /// `sweep_interval` ingests).
  void sweep();

 private:
  /// One DNS answer's candidacy for an address, ordered by
  /// (response, seq) — exactly the batch index order after its
  /// (response, dns_idx) sort.
  struct Candidate {
    SimTime response;
    SimTime expires;
    std::uint64_t seq;
  };

  /// Everything pairing/classification later needs from a DNS record,
  /// kept while any candidate still references it.
  struct RecordUse {
    std::uint32_t refs = 0;  ///< live candidates pointing here
    std::uint32_t uses = 0;  ///< connections paired to it so far
    SimDuration duration;
    Ipv4Addr resolver_ip;
    bool conncheck = false;
  };

  struct House {
    util::FlatMap<Ipv4Addr, std::vector<Candidate>> index;
    util::FlatMap<std::uint64_t, RecordUse> records;
  };

  /// §5.3 threshold derivation + deferred SC/R split state, per resolver.
  struct ResolverAcc {
    std::uint64_t answered = 0;
    std::int64_t min_us = std::numeric_limits<std::int64_t>::max();
    /// Answered-lookup durations (µs → count) within the 40 ms mode
    /// window above the minimum; pruned as the minimum decreases.
    std::map<std::int64_t, std::uint64_t> low;
    /// Blocked-connection lookup durations as ceil-milliseconds bins.
    std::map<std::int64_t, std::uint64_t> blocked_ceil;
    std::uint64_t blocked_total = 0;
    std::uint64_t blocked_le_default = 0;
  };

  struct PlatTally {
    util::FlatSet<Ipv4Addr> houses;
    std::uint64_t lookups = 0;
    std::uint64_t conns = 0;
    std::uint64_t bytes = 0;
  };

  struct PlatConns {
    std::uint64_t total = 0;
    std::uint64_t conncheck = 0;
  };

  void note_time(SimTime& last, SimTime t, const char* kind);
  void maybe_sweep();
  void drop_candidate(House& house, const Candidate& cand);

  OnlineStudyConfig cfg_;
  /// cfg_.conncheck_name interned once; the per-record test is an id
  /// compare instead of a string compare.
  util::InternedName conncheck_name_;
  /// Id of the "Local" platform (a never-matching sentinel when the
  /// directory has no such platform — same semantics as the old string
  /// compare).
  analysis::PlatformId local_id_ = 0;

  // Pairing state.
  util::FlatMap<Ipv4Addr, House> houses_;
  std::uint64_t next_seq_ = 0;

  // Ordering / eviction bookkeeping.
  SimTime last_conn_;
  SimTime last_dns_;
  SimTime watermark_;
  bool any_conn_ = false;
  bool any_dns_ = false;
  std::uint64_t ingests_since_sweep_ = 0;
  std::uint64_t active_candidates_ = 0;
  std::uint64_t active_records_ = 0;

  // Stream-wide counters.
  std::uint64_t conns_total_ = 0;
  std::uint64_t dns_total_ = 0;
  OnlinePairingStats pairing_;
  std::uint64_t eligible_lookups_ = 0;
  std::uint64_t used_lookups_ = 0;

  // Taxonomy (SC/R deferred to finalize).
  std::uint64_t n_ = 0, lc_ = 0, p_ = 0;
  std::uint64_t lc_expired_ = 0, p_expired_ = 0;
  util::FlatMap<Ipv4Addr, ResolverAcc> resolvers_;

  // §6 quadrants.
  std::uint64_t q_ins_ = 0, q_rel_ = 0, q_abs_ = 0, q_sig_ = 0;

  // Table 1 + isp-only (dense per-platform tallies, PlatformId-indexed).
  std::vector<PlatTally> tallies_;
  util::FlatSet<Ipv4Addr> all_houses_;
  std::uint64_t total_lookups_ = 0;
  std::uint64_t paired_conns_ = 0;
  std::uint64_t paired_bytes_ = 0;
  util::FlatMap<Ipv4Addr, bool> only_local_;

  // §7.
  std::vector<PlatConns> platform_conns_;

  // Failure report counters (self-contained per-house chain state;
  // evicted on the DNS frontier alongside the pairing sweep).
  analysis::ChainTracker chains_;
};

}  // namespace dnsctx::stream
