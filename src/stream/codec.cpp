#include "stream/codec.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "util/strings.hpp"

namespace dnsctx::stream {

// ---- varints ---------------------------------------------------------------

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::optional<std::uint64_t> get_varint(const char** p, const char* end) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    if (*p >= end) return std::nullopt;
    const auto byte = static_cast<std::uint8_t>(*(*p)++);
    // The 10th byte may only carry the final bit of a 64-bit value.
    if (shift == 63 && byte > 1) return std::nullopt;
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  return std::nullopt;
}

// ---- lz codec --------------------------------------------------------------

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxHashBits = 17;
constexpr std::size_t kMinHashBits = 6;
constexpr std::size_t kHashWays = 32;
constexpr std::size_t kLazySteps = 4;
constexpr std::size_t kMaxOffset = 65'535;
// LZ4-style end-of-block rules: the last 5 bytes are always literals and
// matches must not reach into them; inputs shorter than 13 bytes are
// emitted as a single literal run.
constexpr std::size_t kEndLiterals = 5;
constexpr std::size_t kMinCompressInput = 13;

[[nodiscard]] std::uint32_t load32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

[[nodiscard]] std::uint32_t hash32(std::uint32_t v, std::size_t bits) {
  return (v * 2654435761u) >> (32 - bits);
}

class NoneCodec final : public BlockCodec {
 public:
  [[nodiscard]] SegmentCodec id() const override { return SegmentCodec::kNone; }
  [[nodiscard]] std::string_view name() const override { return "none"; }

  void compress(std::string_view raw, std::string& out) const override {
    out.assign(raw.data(), raw.size());
  }

  [[nodiscard]] bool decompress(std::string_view comp, std::size_t raw_len,
                                std::string& out) const override {
    if (comp.size() != raw_len) return false;
    out.assign(comp.data(), comp.size());
    return true;
  }
};

class LzCodec final : public BlockCodec {
 public:
  [[nodiscard]] SegmentCodec id() const override { return SegmentCodec::kLz; }
  [[nodiscard]] std::string_view name() const override { return "lz"; }

  void compress(std::string_view raw, std::string& out) const override {
    out.clear();
    const char* src = raw.data();
    const std::size_t n = raw.size();

    auto emit_run = [&out](std::size_t extra) {
      while (extra >= 255) {
        out.push_back(static_cast<char>(0xff));
        extra -= 255;
      }
      out.push_back(static_cast<char>(extra));
    };
    // match_len == 0 marks the final literals-only sequence.
    auto emit_sequence = [&](std::size_t lit_len, const char* lits, std::size_t match_len,
                             std::size_t offset) {
      const std::size_t ml = match_len > 0 ? match_len - kMinMatch : 0;
      const auto token = static_cast<char>(((lit_len < 15 ? lit_len : 15) << 4) |
                                           (ml < 15 ? ml : 15));
      out.push_back(token);
      if (lit_len >= 15) emit_run(lit_len - 15);
      out.append(lits, lit_len);
      if (match_len > 0) {
        out.push_back(static_cast<char>(offset & 0xff));
        out.push_back(static_cast<char>(offset >> 8));
        if (ml >= 15) emit_run(ml - 15);
      }
    };

    std::size_t anchor = 0;
    if (n >= kMinCompressInput) {
      // Hash table sized to the input (≈2 slots per position, capped)
      // so small blocks don't pay for — or zero — a table built for
      // megabyte bodies. kHashWays candidates per bucket, replaced
      // round-robin and stored +1 so 0 means "empty slot": probing a
      // deep bucket and keeping the longest match beats the classic
      // single-slot table noticeably on the repetitive varint columns
      // this codec exists for.
      std::size_t hash_bits = kMinHashBits;
      while (hash_bits < kMaxHashBits && (kHashWays << hash_bits) < 2 * n) ++hash_bits;
      std::vector<std::uint32_t> table(kHashWays << hash_bits, 0);
      std::vector<std::uint8_t> next_way(std::size_t{1} << hash_bits, 0);
      const std::size_t scan_end = n - (kMinCompressInput - 1);

      auto insert = [&](std::size_t pos) {
        const std::uint32_t h = hash32(load32(src + pos), hash_bits);
        table[h * kHashWays + next_way[h]] = static_cast<std::uint32_t>(pos + 1);
        next_way[h] = static_cast<std::uint8_t>((next_way[h] + 1) % kHashWays);
      };
      // Longest match at `pos` over the bucket's candidates; {0, 0} if none.
      auto best_match = [&](std::size_t pos) -> std::pair<std::size_t, std::size_t> {
        const std::size_t max_len = n - kEndLiterals - pos;
        if (max_len < kMinMatch) return {0, 0};
        const std::uint32_t h = hash32(load32(src + pos), hash_bits);
        std::size_t best_len = 0;
        std::size_t best_off = 0;
        for (std::size_t w = 0; w < kHashWays; ++w) {
          const std::size_t cand = table[h * kHashWays + w];
          if (cand == 0) continue;
          const std::size_t c = cand - 1;
          if (c >= pos || pos - c > kMaxOffset) continue;
          // A candidate that differs at best_len can't beat best_len;
          // skipping it avoids the full compare on most probes.
          if (best_len != 0 && src[c + best_len] != src[pos + best_len]) continue;
          if (load32(src + c) != load32(src + pos)) continue;
          std::size_t len = kMinMatch;
          while (len < max_len && src[c + len] == src[pos + len]) ++len;
          if (len > best_len) {
            best_len = len;
            best_off = pos - c;
          }
        }
        return {best_len, best_off};
      };

      std::size_t i = 0;
      while (i < scan_end) {
        auto [len, offset] = best_match(i);
        if (len == 0) {
          insert(i);
          ++i;
          continue;
        }
        // Lazy matching: a match that starts one byte later and is
        // more than one byte longer is worth the literal it costs.
        for (std::size_t step = 0; step < kLazySteps && i + 1 < scan_end; ++step) {
          insert(i);
          const auto [next_len, next_offset] = best_match(i + 1);
          if (next_len <= len + 1) break;
          ++i;
          len = next_len;
          offset = next_offset;
        }
        // Extend the match backward into pending literals — the match
        // finder only sees hashed starting positions, so it routinely
        // lands a few bytes late.
        while (i > anchor && i > offset && src[i - 1] == src[i - offset - 1]) {
          --i;
          ++len;
        }
        emit_sequence(i - anchor, src + anchor, len, offset);
        // Seed positions inside the match so later data can reference
        // it; stride through long matches to bound the cost.
        const std::size_t seed_end = std::min(i + len, scan_end);
        const std::size_t stride = len >= 64 ? 7 : 1;
        for (std::size_t j = i + 1; j < seed_end; j += stride) insert(j);
        i += len;
        anchor = i;
      }
    }
    emit_sequence(n - anchor, src + anchor, 0, 0);
  }

  [[nodiscard]] bool decompress(std::string_view comp, std::size_t raw_len,
                                std::string& out) const override {
    out.clear();
    out.reserve(raw_len);
    const char* p = comp.data();
    const char* const end = p + comp.size();
    auto read_run = [&](std::size_t base) -> std::optional<std::size_t> {
      std::size_t v = base;
      if (base == 15) {
        std::uint8_t b;
        do {
          if (p >= end) return std::nullopt;
          b = static_cast<std::uint8_t>(*p++);
          v += b;
        } while (b == 0xff);
      }
      return v;
    };
    while (p < end) {
      const auto token = static_cast<std::uint8_t>(*p++);
      const auto lit_len = read_run(token >> 4);
      if (!lit_len) return false;
      if (*lit_len > static_cast<std::size_t>(end - p) ||
          out.size() + *lit_len > raw_len) {
        return false;
      }
      out.append(p, *lit_len);
      p += *lit_len;
      if (p == end) break;  // final literals-only sequence
      if (end - p < 2) return false;
      const std::size_t offset = static_cast<std::uint8_t>(p[0]) |
                                 (static_cast<std::size_t>(static_cast<std::uint8_t>(p[1]))
                                  << 8);
      p += 2;
      if (offset == 0 || offset > out.size()) return false;
      const auto ml = read_run(token & 0x0f);
      if (!ml) return false;
      const std::size_t match_len = *ml + kMinMatch;
      if (out.size() + match_len > raw_len) return false;
      // Byte-at-a-time on purpose: offset < match_len overlaps (run
      // replication), which memcpy would corrupt.
      std::size_t from = out.size() - offset;
      for (std::size_t k = 0; k < match_len; ++k) out.push_back(out[from + k]);
    }
    return out.size() == raw_len;
  }
};

const NoneCodec g_none;
const LzCodec g_lz;

}  // namespace

const BlockCodec& codec(SegmentCodec id) {
  switch (id) {
    case SegmentCodec::kNone:
      return g_none;
    case SegmentCodec::kLz:
      return g_lz;
  }
  throw std::runtime_error{
      strfmt("unknown segment codec id %u", static_cast<unsigned>(id))};
}

std::optional<SegmentCodec> codec_by_name(std::string_view name) {
  if (name == "none") return SegmentCodec::kNone;
  if (name == "lz") return SegmentCodec::kLz;
  return std::nullopt;
}

}  // namespace dnsctx::stream
