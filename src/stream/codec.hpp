// dnsctx — varint primitives and pluggable block codecs for spool v2.
//
// Spool format v2 (docs/FORMAT.md) stores segment payloads as columnar
// blocks whose integer columns are LEB128 varints (7 bits per byte, LSB
// first, high bit = continuation). Signed values that can be negative
// (durations) are zigzag-mapped first so small magnitudes of either sign
// stay short.
//
// The whole column block may additionally be compressed through a
// BlockCodec. Codecs are identified by a one-byte id stored in the v2
// payload framing, so new codecs can be added without a format-version
// bump; readers reject unknown ids loudly. The built-in `lz` codec is a
// dependency-free LZ77 byte compressor (LZ4-style block layout: token
// byte, literal run, 16-bit offset, match run) chosen because columnar
// segment data is dominated by small repeating integers. Its
// decompressor is strictly bounds-checked — it is a fuzz target, and
// serve feeds it bytes straight off the network.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dnsctx::stream {

// ---- varints ---------------------------------------------------------------

/// Append `v` as a LEB128 varint (1–10 bytes).
void put_varint(std::string& out, std::uint64_t v);

/// Decode a varint from [*p, end). Advances *p past the encoding and
/// returns the value, or std::nullopt on truncation or an encoding
/// longer than 10 bytes (*p is then unspecified).
[[nodiscard]] std::optional<std::uint64_t> get_varint(const char** p, const char* end);

/// Zigzag map: 0,-1,1,-2,... → 0,1,2,3,... so small negatives stay short.
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// ---- block codecs ----------------------------------------------------------

/// Wire ids are part of the v2 format; never renumber.
enum class SegmentCodec : std::uint8_t { kNone = 0, kLz = 1 };

class BlockCodec {
 public:
  virtual ~BlockCodec() = default;

  [[nodiscard]] virtual SegmentCodec id() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Compress `raw` into `out` (replacing its contents). Deterministic:
  /// identical input yields identical output.
  virtual void compress(std::string_view raw, std::string& out) const = 0;

  /// Decompress `comp` into `out` (replacing its contents). `raw_len` is
  /// the expected decompressed size from the segment framing. Returns
  /// false on any malformed input — truncated runs, offsets pointing
  /// before the output start, or a final size != raw_len — without ever
  /// reading or writing out of bounds.
  [[nodiscard]] virtual bool decompress(std::string_view comp, std::size_t raw_len,
                                        std::string& out) const = 0;
};

/// The codec registered for `id`. Throws std::runtime_error for an
/// unknown id (message names the numeric id so segment parsers can
/// simply prepend their source).
[[nodiscard]] const BlockCodec& codec(SegmentCodec id);

/// Name → codec id ("none", "lz"); nullopt for unknown names.
[[nodiscard]] std::optional<SegmentCodec> codec_by_name(std::string_view name);

}  // namespace dnsctx::stream
