#include "stream/feed.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace dnsctx::stream {

void LiveFeed::push(Entry e) {
  queue_.push(std::move(e));
  peak_buffered_ = std::max(peak_buffered_, queue_.size());
}

void LiveFeed::on_conn(const capture::ConnRecord& rec) {
  push(Entry{rec.start, 1, next_seq_++, rec});
}

void LiveFeed::on_dns(const capture::DnsRecord& rec) {
  push(Entry{rec.ts, 0, next_seq_++, rec});
}

void LiveFeed::on_encflow(const capture::EncFlowRecord& rec) {
  push(Entry{rec.start, 2, next_seq_++, rec});
}

void LiveFeed::drain(SimTime watermark) {
  obs::StageSpan span{"ingest_batch"};
  std::uint64_t released = 0;
  while (!queue_.empty() && queue_.top().key <= watermark) {
    const Entry& top = queue_.top();
    if (top.kind == 0) {
      downstream_->on_dns(std::get<capture::DnsRecord>(top.rec));
    } else if (top.kind == 1) {
      downstream_->on_conn(std::get<capture::ConnRecord>(top.rec));
    } else {
      downstream_->on_encflow(std::get<capture::EncFlowRecord>(top.rec));
    }
    queue_.pop();
    ++released;
  }
  if (obs::enabled()) {
    auto& reg = obs::registry();
    reg.counter("stream_drained_records_total").add(released);
    reg.gauge("stream_reorder_buffered").set(static_cast<double>(queue_.size()));
    reg.gauge("stream_reorder_buffered_peak").set_max(static_cast<double>(peak_buffered_));
    // close() drains with the sentinel max watermark — not a real time.
    if (watermark != SimTime::max()) {
      reg.gauge("stream_watermark_sim_seconds").set(watermark.to_sec());
    }
  }
}

void LiveFeed::close() { drain(SimTime::max()); }

}  // namespace dnsctx::stream
