#include "stream/feed.hpp"

#include <algorithm>

namespace dnsctx::stream {

void LiveFeed::push(Entry e) {
  queue_.push(std::move(e));
  peak_buffered_ = std::max(peak_buffered_, queue_.size());
}

void LiveFeed::on_conn(const capture::ConnRecord& rec) {
  push(Entry{rec.start, 1, next_seq_++, rec});
}

void LiveFeed::on_dns(const capture::DnsRecord& rec) {
  push(Entry{rec.ts, 0, next_seq_++, rec});
}

void LiveFeed::drain(SimTime watermark) {
  while (!queue_.empty() && queue_.top().key <= watermark) {
    const Entry& top = queue_.top();
    if (top.kind == 0) {
      downstream_->on_dns(std::get<capture::DnsRecord>(top.rec));
    } else {
      downstream_->on_conn(std::get<capture::ConnRecord>(top.rec));
    }
    queue_.pop();
  }
}

void LiveFeed::close() { drain(SimTime::max()); }

}  // namespace dnsctx::stream
