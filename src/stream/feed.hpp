// dnsctx — watermark-based reordering between live capture and analysis.
//
// capture::Monitor emits records in FINALIZATION order: a connection when
// it closes, a DNS transaction when its response (or timeout) arrives.
// The online study engine, like the spool writer, requires timestamp
// order (conn keyed by `start`, dns by `ts`). LiveFeed bridges the two:
// it buffers finalized records in a priority queue and, whenever the
// producer advances the watermark — a promise that no future record will
// carry a key time at or before it — releases everything up to the
// watermark in the canonical order:
//
//   (key time, DNS before conn at ties, arrival order)
//
// That is exactly the order replay_spool / replay_dataset deliver, so a
// live run and a batch run over the harvested logs feed the engine the
// same sequence. Memory is bounded by the records still inside the open
// window (watermark .. now), not the run length.
#pragma once

#include <cstdint>
#include <queue>
#include <variant>
#include <vector>

#include "capture/records.hpp"

namespace dnsctx::stream {

class LiveFeed : public capture::RecordSink {
 public:
  explicit LiveFeed(capture::RecordSink& downstream) : downstream_{&downstream} {}

  void on_conn(const capture::ConnRecord& rec) override;
  void on_dns(const capture::DnsRecord& rec) override;
  void on_encflow(const capture::EncFlowRecord& rec) override;

  /// Release every buffered record with key time <= `watermark` to the
  /// downstream sink, in canonical order. Watermarks must not regress.
  void drain(SimTime watermark);

  /// Release everything still buffered (end of run).
  void close();

  [[nodiscard]] std::size_t buffered() const { return queue_.size(); }
  [[nodiscard]] std::size_t peak_buffered() const { return peak_buffered_; }

 private:
  struct Entry {
    SimTime key;
    std::uint8_t kind;  ///< 0 = dns, 1 = conn, 2 = enc — ascending tie order
    std::uint64_t seq;
    std::variant<capture::ConnRecord, capture::DnsRecord, capture::EncFlowRecord> rec;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.key != b.key) return a.key > b.key;
      if (a.kind != b.kind) return a.kind > b.kind;
      return a.seq > b.seq;
    }
  };

  void push(Entry e);

  capture::RecordSink* downstream_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t peak_buffered_ = 0;
};

}  // namespace dnsctx::stream
