#include "stream/segment_v2.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "stream/wire.hpp"
#include "util/strings.hpp"

namespace dnsctx::stream {

namespace {

// Column indices — must match kConnColumns / kDnsColumns.
enum ConnCol : std::size_t {
  kCTs = 0, kCDur, kCOrigIp, kCRespIp, kCOrigPort,
  kCRespPort, kCProto, kCState, kCOrigBytes, kCRespBytes,
};
enum DnsCol : std::size_t {
  kDTs = 0, kDDur, kDClientIp, kDClientPort, kDResolverIp, kDQtype,
  kDRcode, kDAnswered, kDNameIdx, kDAnswerCount, kDAnsAddr, kDAnsTtl,
};

/// Dictionary storage order: the kDictHead most-referenced entries
/// first (hot values get 1-byte indices), then the rest in `tail_less`
/// order so the dictionary bytes themselves compress. Frequency ties
/// break toward first appearance to keep the writer deterministic.
/// Returns the permutation as storage order (new index -> old index).
template <typename TailLess>
std::vector<std::uint32_t> dict_order(const std::vector<std::uint32_t>& refs,
                                      TailLess tail_less) {
  std::vector<std::uint32_t> order(refs.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&refs](std::uint32_t a, std::uint32_t b) {
    return refs[a] != refs[b] ? refs[a] > refs[b] : a < b;
  });
  if (order.size() > kDictHead) {
    std::sort(order.begin() + kDictHead, order.end(), tail_less);
  }
  return order;
}

/// Rewrite a column of varint dictionary indices through `new_of_old`.
void remap_index_column(std::string& col, const std::vector<std::uint32_t>& new_of_old) {
  std::string out;
  out.reserve(col.size());
  const char* p = col.data();
  const char* const end = p + col.size();
  while (p < end) {
    const auto idx = get_varint(&p, end);
    put_varint(out, new_of_old[static_cast<std::size_t>(*idx)]);
  }
  col = std::move(out);
}

}  // namespace

SegmentBuilderV2::SegmentBuilderV2(RecordKind kind, SegmentCodec codec)
    : kind_{kind}, codec_{codec} {
  cols_.resize(kind_ == RecordKind::kConn ? kConnColumns.size() : kDnsColumns.size());
}

void SegmentBuilderV2::start_record(std::int64_t ts_us) {
  if (count_ == 0) {
    first_ts_ = ts_us;
    prev_ts_ = ts_us;
  } else if (ts_us < prev_ts_) {
    throw std::runtime_error{
        strfmt("segment builder: %s record at %lld us arrived after %lld us; segment "
               "input must be time-sorted",
               to_string(kind_).data(), static_cast<long long>(ts_us),
               static_cast<long long>(prev_ts_))};
  }
  put_varint(cols_[kCTs], static_cast<std::uint64_t>(ts_us - prev_ts_));
  prev_ts_ = ts_us;
  ++count_;
}

std::uint32_t SegmentBuilderV2::addr_index(Ipv4Addr ip) {
  const auto [it, inserted] =
      addr_idx_.try_emplace(ip.to_u32(), static_cast<std::uint32_t>(addrs_.size()));
  if (inserted) {
    addrs_.push_back(ip.to_u32());
    addr_refs_.push_back(0);
  }
  ++addr_refs_[it->second];
  return it->second;
}

void SegmentBuilderV2::add(const capture::ConnRecord& rec) {
  if (kind_ != RecordKind::kConn) {
    throw std::logic_error{"SegmentBuilderV2: conn record added to a dns builder"};
  }
  start_record(rec.start.count_us());
  put_varint(cols_[kCDur], zigzag_encode(rec.duration.count_us()));
  put_varint(cols_[kCOrigIp], addr_index(rec.orig_ip));
  put_varint(cols_[kCRespIp], addr_index(rec.resp_ip));
  wire::put_u16(cols_[kCOrigPort], rec.orig_port);
  wire::put_u16(cols_[kCRespPort], rec.resp_port);
  wire::put_u8(cols_[kCProto], rec.proto == Proto::kUdp ? 1 : 0);
  wire::put_u8(cols_[kCState], static_cast<std::uint8_t>(rec.state));
  put_varint(cols_[kCOrigBytes], rec.orig_bytes);
  put_varint(cols_[kCRespBytes], rec.resp_bytes);
}

void SegmentBuilderV2::add(const capture::DnsRecord& rec) {
  if (kind_ != RecordKind::kDns) {
    throw std::logic_error{"SegmentBuilderV2: dns record added to a conn builder"};
  }
  start_record(rec.ts.count_us());
  put_varint(cols_[kDDur], zigzag_encode(rec.duration.count_us()));
  put_varint(cols_[kDClientIp], addr_index(rec.client_ip));
  wire::put_u16(cols_[kDClientPort], rec.client_port);
  put_varint(cols_[kDResolverIp], addr_index(rec.resolver_ip));
  put_varint(cols_[kDQtype], static_cast<std::uint16_t>(rec.qtype));
  wire::put_u8(cols_[kDRcode], static_cast<std::uint8_t>(rec.rcode));
  wire::put_u8(cols_[kDAnswered], rec.answered ? 1 : 0);
  const auto [it, inserted] =
      dict_idx_.try_emplace(rec.query.id(), static_cast<std::uint32_t>(dict_names_.size()));
  if (inserted) {
    dict_names_.push_back(rec.query.view());
    name_refs_.push_back(0);
  }
  ++name_refs_[it->second];
  put_varint(cols_[kDNameIdx], it->second);
  put_varint(cols_[kDAnswerCount], rec.answers.size());
  for (const auto& a : rec.answers) {
    put_varint(cols_[kDAnsAddr], addr_index(a.addr));
    put_varint(cols_[kDAnsTtl], a.ttl);
  }
}

std::uint64_t SegmentBuilderV2::raw_bytes() const {
  std::uint64_t total = 0;
  for (const auto& col : cols_) total += col.size();
  for (const auto& name : dict_names_) total += name.size() + 1;
  return total + addrs_.size() * 4;
}

std::string SegmentBuilderV2::build() {
  // Reorder both dictionaries: hot head, compressible tail (addresses
  // ascending for delta coding, names by suffix so sibling hosts of a
  // domain sit adjacent), then point the index columns at the new
  // positions.
  const auto addr_order = dict_order(addr_refs_, [this](std::uint32_t a, std::uint32_t b) {
    return addrs_[a] < addrs_[b];
  });
  const auto name_order = dict_order(name_refs_, [this](std::uint32_t a, std::uint32_t b) {
    const auto sa = dict_names_[a];
    const auto sb = dict_names_[b];
    return std::lexicographical_compare(sa.rbegin(), sa.rend(), sb.rbegin(), sb.rend());
  });
  std::vector<std::uint32_t> new_of_old(addr_order.size());
  for (std::uint32_t k = 0; k < addr_order.size(); ++k) new_of_old[addr_order[k]] = k;
  if (kind_ == RecordKind::kConn) {
    remap_index_column(cols_[kCOrigIp], new_of_old);
    remap_index_column(cols_[kCRespIp], new_of_old);
  } else {
    remap_index_column(cols_[kDClientIp], new_of_old);
    remap_index_column(cols_[kDResolverIp], new_of_old);
    remap_index_column(cols_[kDAnsAddr], new_of_old);
    new_of_old.assign(name_order.size(), 0);
    for (std::uint32_t k = 0; k < name_order.size(); ++k) new_of_old[name_order[k]] = k;
    remap_index_column(cols_[kDNameIdx], new_of_old);
  }

  std::string body;
  body.reserve(raw_bytes() + cols_.size() * 2 + 8);
  if (kind_ == RecordKind::kDns) {
    put_varint(body, name_order.size());
    for (const auto old : name_order) {
      const auto name = dict_names_[old];
      put_varint(body, name.size());
      body.append(name.data(), name.size());
    }
  }
  put_varint(body, addr_order.size());
  const std::size_t head = std::min(addr_order.size(), kDictHead);
  for (std::size_t k = 0; k < head; ++k) wire::put_u32(body, addrs_[addr_order[k]]);
  std::uint32_t prev = 0;
  for (std::size_t k = head; k < addr_order.size(); ++k) {
    const std::uint32_t value = addrs_[addr_order[k]];
    put_varint(body, value - prev);
    prev = value;
  }
  for (const auto& col : cols_) {
    put_varint(body, col.size());
    body += col;
  }

  // Frame: codec id, raw length, (maybe) compressed body. Fall back to
  // uncompressed storage when the codec doesn't pay for this body.
  SegmentCodec stored_codec = codec_;
  std::string compressed;
  if (codec_ != SegmentCodec::kNone) {
    codec(codec_).compress(body, compressed);
    if (compressed.size() >= body.size()) stored_codec = SegmentCodec::kNone;
  }
  const std::string& stored = stored_codec == SegmentCodec::kNone ? body : compressed;
  std::string payload;
  payload.reserve(1 + 8 + stored.size());
  wire::put_u8(payload, static_cast<std::uint8_t>(stored_codec));
  wire::put_u64(payload, body.size());
  payload += stored;

  std::string out;
  out.reserve(kSegmentHeaderBytes + payload.size());
  append_segment_header(out, kSegmentVersionV2, kind_, count_, SimTime::from_us(first_ts_),
                        SimTime::from_us(prev_ts_), payload.size(), crc32(payload));
  out += payload;
  reset();
  return out;
}

void SegmentBuilderV2::reset() {
  count_ = 0;
  first_ts_ = 0;
  prev_ts_ = 0;
  for (auto& col : cols_) col.clear();
  dict_names_.clear();
  name_refs_.clear();
  dict_idx_.clear();
  addrs_.clear();
  addr_refs_.clear();
  addr_idx_.clear();
}

std::string build_segment_v2(const std::vector<capture::ConnRecord>& recs,
                             SegmentCodec codec) {
  SegmentBuilderV2 b{RecordKind::kConn, codec};
  for (const auto& r : recs) b.add(r);
  return b.build();
}

std::string build_segment_v2(const std::vector<capture::DnsRecord>& recs,
                             SegmentCodec codec) {
  SegmentBuilderV2 b{RecordKind::kDns, codec};
  for (const auto& r : recs) b.add(r);
  return b.build();
}

}  // namespace dnsctx::stream
