// dnsctx — little-endian wire helpers shared by the segment encoders and
// decoders (v1 record bodies, v2 columns, headers). Internal to
// src/stream; not a public surface.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/strings.hpp"

namespace dnsctx::stream::wire {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u16(std::string& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v & 0xff));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

inline void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian cursor over a record body or header.
/// Diagnostics name the source (file path), the region being decoded,
/// and the byte offset where the read ran out.
struct Cursor {
  std::string_view bytes;
  std::size_t pos = 0;
  const std::string* source;
  const char* what;

  [[noreturn]] void fail() const {
    throw std::runtime_error{
        strfmt("%s: truncated %s at byte offset %zu (need more than %zu bytes)",
               source->c_str(), what, pos, bytes.size())};
  }

  [[nodiscard]] std::uint8_t u8() {
    if (pos + 1 > bytes.size()) fail();
    return static_cast<std::uint8_t>(bytes[pos++]);
  }
  [[nodiscard]] std::uint16_t u16() {
    const auto lo = u8();
    return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8()) << 8));
  }
  [[nodiscard]] std::uint32_t u32() {
    const auto lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  [[nodiscard]] std::uint64_t u64() {
    const auto lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] std::string_view raw(std::size_t n) {
    if (pos + n > bytes.size()) fail();
    const auto out = bytes.substr(pos, n);
    pos += n;
    return out;
  }
};

}  // namespace dnsctx::stream::wire
