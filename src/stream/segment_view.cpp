#include "stream/segment_view.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <limits>
#include <stdexcept>
#include <vector>

#include "stream/segment_v2.hpp"
#include "stream/wire.hpp"
#include "util/names.hpp"
#include "util/strings.hpp"

namespace dnsctx::stream {

namespace {

constexpr std::size_t kV2FrameBytes = 9;  // u8 codec id + u64 raw body length

[[nodiscard]] std::int64_t ts_floor() {
  return std::numeric_limits<std::int64_t>::min();
}

}  // namespace

// ---- Impl ------------------------------------------------------------------

struct SegmentView::Impl {
  std::string source;
  SegmentHeader header;
  SegmentCodec codec_id = SegmentCodec::kNone;

  // Backing storage for the raw blob: exactly one of mmap / owned /
  // borrowed is active. Byte regions are kept as offsets (not pointers)
  // so moving the view never dangles into a moved std::string.
  std::string owned;
  std::string_view borrowed;
  char* map_base = nullptr;
  std::size_t map_len = 0;
  bool use_owned = false;

  // v2 body: a slice of the blob when stored uncompressed, an owned
  // decompression buffer otherwise. For v1 the "body" is the payload.
  std::string decoded_body;
  bool body_is_owned = false;
  std::size_t body_off = 0;
  std::size_t body_len = 0;

  struct Col {
    std::size_t off = 0;  ///< within body()
    std::size_t len = 0;
    std::size_t pos = 0;  ///< cursor: bytes consumed
  };
  std::vector<Col> cols;                 // v2 only
  std::vector<util::InternedName> dict;  // v2 dns only
  std::vector<std::uint32_t> addrs;      // v2 address dictionary

  // Cursor state.
  std::uint32_t rec_pos = 0;
  std::int64_t prev_ts = 0;
  std::size_t v1_pos = 0;

  ~Impl() {
    if (map_base != nullptr) ::munmap(map_base, map_len);
  }

  [[nodiscard]] std::string_view blob() const {
    if (map_base != nullptr) return {map_base, map_len};
    if (use_owned) return owned;
    return borrowed;
  }
  [[nodiscard]] std::string_view body() const {
    if (body_is_owned) return decoded_body;
    return blob().substr(body_off, body_len);
  }

  [[nodiscard]] const char* col_name(std::size_t ci) const {
    return header.kind == RecordKind::kConn ? kConnColumns[ci] : kDnsColumns[ci];
  }

  [[noreturn]] void col_fail(std::size_t ci, const char* what) const {
    throw std::runtime_error{strfmt(
        "%s: %s column '%s': %s at byte offset %zu (record %u)", source.c_str(),
        to_string(header.kind).data(), col_name(ci), what, cols[ci].pos, rec_pos)};
  }

  [[nodiscard]] std::uint64_t col_varint(std::size_t ci) {
    Col& c = cols[ci];
    const char* base = body().data() + c.off;
    const char* p = base + c.pos;
    const auto v = get_varint(&p, base + c.len);
    if (!v) col_fail(ci, "truncated varint");
    c.pos = static_cast<std::size_t>(p - base);
    return *v;
  }
  [[nodiscard]] std::uint8_t col_u8(std::size_t ci) {
    Col& c = cols[ci];
    if (c.pos + 1 > c.len) col_fail(ci, "truncated");
    const auto v = static_cast<std::uint8_t>(body()[c.off + c.pos]);
    c.pos += 1;
    return v;
  }
  [[nodiscard]] std::uint16_t col_u16(std::size_t ci) {
    const auto lo = col_u8(ci);
    return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(col_u8(ci)) << 8));
  }
  /// Resolve a varint index through the segment's address dictionary.
  [[nodiscard]] std::uint32_t col_addr(std::size_t ci) {
    const std::uint64_t idx = col_varint(ci);
    if (idx >= addrs.size()) {
      throw std::runtime_error{strfmt(
          "%s: record %u address index %llu out of dictionary range (%zu addresses)",
          source.c_str(), rec_pos, static_cast<unsigned long long>(idx), addrs.size())};
    }
    return addrs[idx];
  }

  /// Advance prev_ts by a delta, rejecting i64 overflow.
  [[nodiscard]] std::int64_t advance_ts(std::uint64_t delta) {
    const auto ts =
        static_cast<std::int64_t>(static_cast<std::uint64_t>(prev_ts) + delta);
    if (ts < prev_ts) {
      throw std::runtime_error{strfmt("%s: record %u: timestamp delta overflows",
                                      source.c_str(), rec_pos)};
    }
    prev_ts = ts;
    return ts;
  }

  void init();
  void parse_v2_framing(std::string_view payload);
  void index_v2();
  void validate();
  void rewind();
  bool next_conn(capture::ConnRecord& out);
  bool next_dns(capture::DnsRecord& out, bool materialize_name);
  bool next_enc(capture::EncFlowRecord& out);
};

// Column indices — must match kConnColumns / kDnsColumns (and the
// builder in segment_v2.cpp).
namespace {
enum ConnCol : std::size_t {
  kCTs = 0, kCDur, kCOrigIp, kCRespIp, kCOrigPort,
  kCRespPort, kCProto, kCState, kCOrigBytes, kCRespBytes,
};
enum DnsCol : std::size_t {
  kDTs = 0, kDDur, kDClientIp, kDClientPort, kDResolverIp, kDQtype,
  kDRcode, kDAnswered, kDNameIdx, kDAnswerCount, kDAnsAddr, kDAnsTtl,
};
}  // namespace

void SegmentView::Impl::init() {
  const std::string_view bytes = blob();
  header = parse_segment_header(bytes, source);
  const std::string_view payload = bytes.substr(kSegmentHeaderBytes);
  if (payload.size() != header.payload_bytes) {
    throw std::runtime_error{
        strfmt("%s: truncated segment payload (%zu of %llu bytes)", source.c_str(),
               payload.size(), static_cast<unsigned long long>(header.payload_bytes))};
  }
  const std::uint32_t crc = crc32(payload);
  if (crc != header.payload_crc32) {
    throw std::runtime_error{strfmt("%s: segment CRC mismatch (stored %08x, computed %08x)",
                                    source.c_str(), header.payload_crc32, crc)};
  }
  if (header.version == kSegmentVersion) {
    body_off = kSegmentHeaderBytes;
    body_len = payload.size();
  } else {
    parse_v2_framing(payload);
    index_v2();
  }
  validate();
  rewind();
}

void SegmentView::Impl::parse_v2_framing(std::string_view payload) {
  wire::Cursor c{payload, 0, &source, "segment payload"};
  const std::uint8_t raw_codec = c.u8();
  if (raw_codec > static_cast<std::uint8_t>(SegmentCodec::kLz)) {
    throw std::runtime_error{
        strfmt("%s: unknown segment codec id %u", source.c_str(), raw_codec)};
  }
  codec_id = static_cast<SegmentCodec>(raw_codec);
  const std::uint64_t raw_len = c.u64();
  if (raw_len > kMaxRawBodyBytes) {
    throw std::runtime_error{
        strfmt("%s: segment raw body length %llu exceeds limit %llu", source.c_str(),
               static_cast<unsigned long long>(raw_len),
               static_cast<unsigned long long>(kMaxRawBodyBytes))};
  }
  const std::string_view stored = payload.substr(kV2FrameBytes);
  if (codec_id == SegmentCodec::kNone) {
    if (stored.size() != raw_len) {
      throw std::runtime_error{
          strfmt("%s: segment body length mismatch (stored %zu, framed %llu)",
                 source.c_str(), stored.size(), static_cast<unsigned long long>(raw_len))};
    }
    body_off = kSegmentHeaderBytes + kV2FrameBytes;
    body_len = stored.size();
  } else {
    if (!codec(codec_id).decompress(stored, raw_len, decoded_body)) {
      throw std::runtime_error{strfmt("%s: segment body decompression failed (codec %s)",
                                      source.c_str(),
                                      codec(codec_id).name().data())};
    }
    body_is_owned = true;
  }
}

void SegmentView::Impl::index_v2() {
  const std::string_view b = body();
  const char* const base = b.data();
  const char* p = base;
  const char* const end = base + b.size();
  auto offset = [&] { return static_cast<std::size_t>(p - base); };
  auto rd_varint = [&](const char* what) {
    const auto v = get_varint(&p, end);
    if (!v) {
      throw std::runtime_error{strfmt("%s: truncated %s at byte offset %zu",
                                      source.c_str(), what, offset())};
    }
    return *v;
  };

  if (header.kind == RecordKind::kDns) {
    const std::uint64_t dict_count = rd_varint("name dictionary");
    if (dict_count > header.record_count) {
      throw std::runtime_error{
          strfmt("%s: dictionary holds %llu names for %u records", source.c_str(),
                 static_cast<unsigned long long>(dict_count), header.record_count)};
    }
    dict.reserve(dict_count);
    for (std::uint64_t i = 0; i < dict_count; ++i) {
      const std::uint64_t len = rd_varint("name dictionary");
      if (len > 65'535) {
        throw std::runtime_error{
            strfmt("%s: dictionary entry %llu length %llu exceeds 65535", source.c_str(),
                   static_cast<unsigned long long>(i),
                   static_cast<unsigned long long>(len))};
      }
      if (len > static_cast<std::uint64_t>(end - p)) {
        throw std::runtime_error{strfmt("%s: truncated name dictionary at byte offset %zu",
                                        source.c_str(), offset())};
      }
      dict.emplace_back(std::string_view{p, static_cast<std::size_t>(len)});
      p += len;
    }
  }

  // Address dictionary: kDictHead raw u32 entries, then ascending
  // varint value-deltas (first relative to 0).
  const std::uint64_t addr_count = rd_varint("address dictionary");
  const std::uint64_t head_count = std::min<std::uint64_t>(addr_count, kDictHead);
  if (head_count > static_cast<std::uint64_t>(end - p) / 4) {
    throw std::runtime_error{strfmt("%s: truncated address dictionary at byte offset %zu",
                                    source.c_str(), offset())};
  }
  addrs.reserve(addr_count);
  for (std::uint64_t i = 0; i < head_count; ++i) {
    const auto b0 = static_cast<std::uint8_t>(p[0]);
    const auto b1 = static_cast<std::uint8_t>(p[1]);
    const auto b2 = static_cast<std::uint8_t>(p[2]);
    const auto b3 = static_cast<std::uint8_t>(p[3]);
    addrs.push_back(static_cast<std::uint32_t>(b0) | (static_cast<std::uint32_t>(b1) << 8) |
                    (static_cast<std::uint32_t>(b2) << 16) |
                    (static_cast<std::uint32_t>(b3) << 24));
    p += 4;
  }
  std::uint64_t prev_addr = 0;
  for (std::uint64_t i = head_count; i < addr_count; ++i) {
    const std::uint64_t value = prev_addr + rd_varint("address dictionary");
    if (value > 0xffff'ffffull) {
      throw std::runtime_error{
          strfmt("%s: address dictionary entry %llu delta overflows u32 at byte offset %zu",
                 source.c_str(), static_cast<unsigned long long>(i), offset())};
    }
    addrs.push_back(static_cast<std::uint32_t>(value));
    prev_addr = value;
  }

  const std::size_t ncols =
      header.kind == RecordKind::kConn ? kConnColumns.size() : kDnsColumns.size();
  cols.reserve(ncols);
  for (std::size_t ci = 0; ci < ncols; ++ci) {
    const std::uint64_t len = rd_varint("column table");
    if (len > static_cast<std::uint64_t>(end - p)) {
      throw std::runtime_error{
          strfmt("%s: column '%s' overruns segment body (byte offset %zu)", source.c_str(),
                 col_name(ci), offset())};
    }
    cols.push_back(Col{offset(), static_cast<std::size_t>(len), 0});
    p += len;
  }
  if (p != end) {
    throw std::runtime_error{strfmt("%s: %zu trailing bytes after %zu columns",
                                    source.c_str(), static_cast<std::size_t>(end - p),
                                    ncols)};
  }
}

/// One full decode pass over every record. Runs at construction so the
/// public cursor API can't throw on a validated view; also enforces the
/// header/payload consistency rules that v1 record framing made
/// implicit (timestamp order, exact column consumption, first/last
/// timestamps for v2).
void SegmentView::Impl::validate() {
  rewind();
  if (header.kind == RecordKind::kConn) {
    capture::ConnRecord scratch;
    while (next_conn(scratch)) {
      if (rec_pos == 1 && header.version != kSegmentVersion &&
          scratch.start != header.first_ts) {
        throw std::runtime_error{
            strfmt("%s: first record timestamp disagrees with header first_ts",
                   source.c_str())};
      }
    }
  } else if (header.kind == RecordKind::kEncFlow) {
    // Always v1 (the header parser rejects v2 enc), so only the trailing-
    // bytes check below applies.
    capture::EncFlowRecord scratch;
    while (next_enc(scratch)) {
    }
  } else {
    capture::DnsRecord scratch;
    while (next_dns(scratch, /*materialize_name=*/false)) {
      if (rec_pos == 1 && header.version != kSegmentVersion &&
          scratch.ts != header.first_ts) {
        throw std::runtime_error{
            strfmt("%s: first record timestamp disagrees with header first_ts",
                   source.c_str())};
      }
    }
  }
  if (header.version == kSegmentVersion) {
    const std::string_view b = body();
    if (v1_pos != b.size()) {
      throw std::runtime_error{strfmt("%s: %zu trailing bytes after %u records",
                                      source.c_str(), b.size() - v1_pos,
                                      header.record_count)};
    }
  } else {
    for (std::size_t ci = 0; ci < cols.size(); ++ci) {
      if (cols[ci].pos != cols[ci].len) {
        col_fail(ci, "trailing bytes after final record");
      }
    }
    if (header.record_count > 0 && prev_ts != header.last_ts.count_us()) {
      throw std::runtime_error{
          strfmt("%s: last record at %lld us disagrees with header last_ts %lld us",
                 source.c_str(), static_cast<long long>(prev_ts),
                 static_cast<long long>(header.last_ts.count_us()))};
    }
  }
}

void SegmentView::Impl::rewind() {
  rec_pos = 0;
  v1_pos = 0;
  for (auto& c : cols) c.pos = 0;
  // v2 deltas are relative to header.first_ts (the first record's delta
  // is 0); v1 records carry absolute timestamps and only need an order
  // floor.
  prev_ts =
      header.version == kSegmentVersion ? ts_floor() : header.first_ts.count_us();
}

bool SegmentView::Impl::next_conn(capture::ConnRecord& out) {
  if (rec_pos == header.record_count) return false;
  if (header.version == kSegmentVersion) {
    const std::string_view b = body();
    wire::Cursor c{b, v1_pos, &source, "segment payload"};
    const std::uint32_t len = c.u32();
    if (c.pos + len > b.size()) {
      throw std::runtime_error{
          strfmt("%s: record %u overruns segment payload", source.c_str(), rec_pos)};
    }
    wire::Cursor rb{b.substr(c.pos, len), 0, &source, "record body"};
    out.start = SimTime::from_us(rb.i64());
    out.duration = SimDuration::us(rb.i64());
    out.orig_ip = Ipv4Addr::from_u32(rb.u32());
    out.resp_ip = Ipv4Addr::from_u32(rb.u32());
    out.orig_port = rb.u16();
    out.resp_port = rb.u16();
    out.proto = rb.u8() == 1 ? Proto::kUdp : Proto::kTcp;
    out.state = static_cast<capture::ConnState>(rb.u8());
    out.orig_bytes = rb.u64();
    out.resp_bytes = rb.u64();
    if (out.start.count_us() < prev_ts) {
      throw std::runtime_error{
          strfmt("%s: record %u timestamps out of order", source.c_str(), rec_pos)};
    }
    prev_ts = out.start.count_us();
    v1_pos = c.pos + len;
  } else {
    out.start = SimTime::from_us(advance_ts(col_varint(kCTs)));
    out.duration = SimDuration::us(zigzag_decode(col_varint(kCDur)));
    out.orig_ip = Ipv4Addr::from_u32(col_addr(kCOrigIp));
    out.resp_ip = Ipv4Addr::from_u32(col_addr(kCRespIp));
    out.orig_port = col_u16(kCOrigPort);
    out.resp_port = col_u16(kCRespPort);
    out.proto = col_u8(kCProto) == 1 ? Proto::kUdp : Proto::kTcp;
    out.state = static_cast<capture::ConnState>(col_u8(kCState));
    out.orig_bytes = col_varint(kCOrigBytes);
    out.resp_bytes = col_varint(kCRespBytes);
  }
  ++rec_pos;
  return true;
}

bool SegmentView::Impl::next_dns(capture::DnsRecord& out, bool materialize_name) {
  if (rec_pos == header.record_count) return false;
  if (header.version == kSegmentVersion) {
    const std::string_view b = body();
    wire::Cursor c{b, v1_pos, &source, "segment payload"};
    const std::uint32_t len = c.u32();
    if (c.pos + len > b.size()) {
      throw std::runtime_error{
          strfmt("%s: record %u overruns segment payload", source.c_str(), rec_pos)};
    }
    wire::Cursor rb{b.substr(c.pos, len), 0, &source, "record body"};
    out.ts = SimTime::from_us(rb.i64());
    out.duration = SimDuration::us(rb.i64());
    out.client_ip = Ipv4Addr::from_u32(rb.u32());
    out.client_port = rb.u16();
    out.resolver_ip = Ipv4Addr::from_u32(rb.u32());
    out.qtype = static_cast<dns::RrType>(rb.u16());
    out.rcode = static_cast<dns::Rcode>(rb.u8());
    out.answered = rb.u8() != 0;
    const std::uint16_t qlen = rb.u16();
    const std::string_view qname = rb.raw(qlen);
    // The validation pass skips interning: names get hashed exactly once
    // per distinct string, at delivery time.
    if (materialize_name) {
      out.query = util::InternedName{qname};
    } else {
      out.query.clear();
    }
    const std::uint16_t answers = rb.u16();
    out.answers.clear();
    out.answers.reserve(answers);
    for (std::uint16_t i = 0; i < answers; ++i) {
      capture::DnsAnswer a;
      a.addr = Ipv4Addr::from_u32(rb.u32());
      a.ttl = rb.u32();
      out.answers.push_back(a);
    }
    if (out.ts.count_us() < prev_ts) {
      throw std::runtime_error{
          strfmt("%s: record %u timestamps out of order", source.c_str(), rec_pos)};
    }
    prev_ts = out.ts.count_us();
    v1_pos = c.pos + len;
  } else {
    out.ts = SimTime::from_us(advance_ts(col_varint(kDTs)));
    out.duration = SimDuration::us(zigzag_decode(col_varint(kDDur)));
    out.client_ip = Ipv4Addr::from_u32(col_addr(kDClientIp));
    out.client_port = col_u16(kDClientPort);
    out.resolver_ip = Ipv4Addr::from_u32(col_addr(kDResolverIp));
    const std::uint64_t qtype = col_varint(kDQtype);
    if (qtype > 0xffff) col_fail(kDQtype, "value out of range");
    out.qtype = static_cast<dns::RrType>(static_cast<std::uint16_t>(qtype));
    out.rcode = static_cast<dns::Rcode>(col_u8(kDRcode));
    out.answered = col_u8(kDAnswered) != 0;
    const std::uint64_t name_idx = col_varint(kDNameIdx);
    if (name_idx >= dict.size()) {
      throw std::runtime_error{
          strfmt("%s: record %u name index %llu out of dictionary range (%zu names)",
                 source.c_str(), rec_pos, static_cast<unsigned long long>(name_idx),
                 dict.size())};
    }
    out.query = dict[name_idx];
    const std::uint64_t answers = col_varint(kDAnswerCount);
    if (answers > 65'535) col_fail(kDAnswerCount, "value out of range");
    out.answers.clear();
    out.answers.reserve(answers);
    for (std::uint64_t i = 0; i < answers; ++i) {
      capture::DnsAnswer a;
      a.addr = Ipv4Addr::from_u32(col_addr(kDAnsAddr));
      a.ttl = static_cast<std::uint32_t>(col_varint(kDAnsTtl));
      out.answers.push_back(a);
    }
  }
  ++rec_pos;
  return true;
}

bool SegmentView::Impl::next_enc(capture::EncFlowRecord& out) {
  if (rec_pos == header.record_count) return false;
  const std::string_view b = body();
  wire::Cursor c{b, v1_pos, &source, "segment payload"};
  const std::uint32_t len = c.u32();
  if (c.pos + len > b.size()) {
    throw std::runtime_error{
        strfmt("%s: record %u overruns segment payload", source.c_str(), rec_pos)};
  }
  wire::Cursor rb{b.substr(c.pos, len), 0, &source, "record body"};
  out.start = SimTime::from_us(rb.i64());
  out.duration = SimDuration::us(rb.i64());
  out.client_ip = Ipv4Addr::from_u32(rb.u32());
  out.server_ip = Ipv4Addr::from_u32(rb.u32());
  out.client_port = rb.u16();
  out.server_port = rb.u16();
  out.up_msgs = rb.u32();
  out.down_msgs = rb.u32();
  out.up_bytes = rb.u64();
  out.down_bytes = rb.u64();
  out.first_up_bytes = rb.u64();
  out.first_down_bytes = rb.u64();
  out.pad_aligned_up = rb.u32();
  out.pad_aligned_down = rb.u32();
  if (out.start.count_us() < prev_ts) {
    throw std::runtime_error{
        strfmt("%s: record %u timestamps out of order", source.c_str(), rec_pos)};
  }
  prev_ts = out.start.count_us();
  v1_pos = c.pos + len;
  ++rec_pos;
  return true;
}

// ---- SegmentView -----------------------------------------------------------

SegmentView::SegmentView() = default;
SegmentView::~SegmentView() = default;
SegmentView::SegmentView(SegmentView&&) noexcept = default;
SegmentView& SegmentView::operator=(SegmentView&&) noexcept = default;
SegmentView::SegmentView(std::unique_ptr<Impl> impl) : impl_{std::move(impl)} {}

namespace {
[[nodiscard]] SegmentView::Impl& require(const std::unique_ptr<SegmentView::Impl>& p) {
  if (!p) throw std::logic_error{"SegmentView: empty view"};
  return *p;
}
}  // namespace

SegmentView SegmentView::parse(std::string_view bytes, std::string source) {
  auto impl = std::make_unique<Impl>();
  impl->source = std::move(source);
  impl->borrowed = bytes;
  impl->init();
  return SegmentView{std::move(impl)};
}

SegmentView SegmentView::adopt(std::string blob, std::string source) {
  auto impl = std::make_unique<Impl>();
  impl->source = std::move(source);
  impl->owned = std::move(blob);
  impl->use_owned = true;
  impl->init();
  return SegmentView{std::move(impl)};
}

SegmentView SegmentView::map_file(const std::string& path) { return map_file(path, path); }

SegmentView SegmentView::map_file(const std::string& path, std::string source) {
  auto impl = std::make_unique<Impl>();
  impl->source = std::move(source);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw std::runtime_error{"cannot open " + path};
  struct stat st{};
  const bool have_size = ::fstat(fd, &st) == 0 && st.st_size > 0;
  if (have_size) {
    void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
    if (p != MAP_FAILED) {
      impl->map_base = static_cast<char*>(p);
      impl->map_len = static_cast<std::size_t>(st.st_size);
    }
  }
  ::close(fd);
  if (impl->map_base == nullptr) {
    // Fallback (empty file, mmap-hostile filesystem): plain read.
    std::ifstream is{path, std::ios::binary};
    if (!is) throw std::runtime_error{"cannot open " + path};
    impl->owned.assign(std::istreambuf_iterator<char>{is},
                       std::istreambuf_iterator<char>{});
    impl->use_owned = true;
  }
  impl->init();
  return SegmentView{std::move(impl)};
}

const SegmentHeader& SegmentView::header() const { return require(impl_).header; }
const std::string& SegmentView::source() const { return require(impl_).source; }
SegmentCodec SegmentView::stored_codec() const { return require(impl_).codec_id; }

bool SegmentView::next(capture::ConnRecord& out) {
  Impl& im = require(impl_);
  if (im.header.kind != RecordKind::kConn) {
    throw std::logic_error{"SegmentView: conn cursor over a dns segment"};
  }
  return im.next_conn(out);
}

bool SegmentView::next(capture::DnsRecord& out) {
  Impl& im = require(impl_);
  if (im.header.kind != RecordKind::kDns) {
    throw std::logic_error{"SegmentView: dns cursor over a conn segment"};
  }
  return im.next_dns(out, /*materialize_name=*/true);
}

bool SegmentView::next(capture::EncFlowRecord& out) {
  Impl& im = require(impl_);
  if (im.header.kind != RecordKind::kEncFlow) {
    throw std::logic_error{"SegmentView: enc cursor over a non-enc segment"};
  }
  return im.next_enc(out);
}

void SegmentView::rewind() { require(impl_).rewind(); }

std::uint64_t SegmentView::deliver(capture::RecordSink& sink) {
  Impl& im = require(impl_);
  std::uint64_t delivered = 0;
  if (im.header.kind == RecordKind::kConn) {
    capture::ConnRecord rec;
    while (im.next_conn(rec)) {
      sink.on_conn(rec);
      ++delivered;
    }
  } else if (im.header.kind == RecordKind::kDns) {
    capture::DnsRecord rec;
    while (im.next_dns(rec, /*materialize_name=*/true)) {
      sink.on_dns(rec);
      ++delivered;
    }
  } else {
    capture::EncFlowRecord rec;
    while (im.next_enc(rec)) {
      sink.on_encflow(rec);
      ++delivered;
    }
  }
  return delivered;
}

}  // namespace dnsctx::stream
