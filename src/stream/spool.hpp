// dnsctx — spool directories: rotating sequences of binary segments.
//
// A spool is a directory of segment files, one time-ordered sequence per
// record kind:
//
//   conn-00000000.seg  conn-00000001.seg  ...
//   dns-00000000.seg   dns-00000001.seg   ...
//   enc-00000000.seg   enc-00000001.seg   ...   (encrypted-flow metadata;
//                                                present only when the
//                                                monitor observed any)
//
// The writer rotates the open segment when it reaches a record-count or
// sim-time-span limit, so a live monitor produces a steady trickle of
// finished, CRC-protected files that a follower can consume while the
// producer keeps appending. Records must arrive in nondecreasing
// timestamp order per kind (the writer throws otherwise); the reader
// re-validates that invariant within and across segments so corrupt or
// misassembled spools fail loudly instead of silently skewing a study.
//
// Converters to/from the Bro-style text logs round-trip byte-identically
// (text → spool → text reproduces the original files).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "capture/records.hpp"
#include "stream/codec.hpp"
#include "stream/segment.hpp"
#include "stream/segment_v2.hpp"

namespace dnsctx::stream {

struct SpoolConfig {
  /// Rotate the open segment once it holds this many records...
  std::uint32_t max_records_per_segment = 65'536;
  /// ...or spans this much simulated time, whichever comes first.
  SimDuration max_segment_span = SimDuration::hours(1);
  /// Segment format to WRITE: kSegmentVersion (1, interleaved bodies) or
  /// kSegmentVersionV2 (2, columnar + compressed — the default). Readers
  /// auto-detect per segment regardless of this setting. Enc segments are
  /// always written v1 — the columnar format has no enc column set.
  std::uint16_t format = kSegmentVersionV2;
  /// Block codec for v2 segments (ignored for v1).
  SegmentCodec codec = SegmentCodec::kLz;
};

/// Writes records into a spool directory, rotating segments per config.
/// Implements RecordSink so a time-sorted feed can drive it directly.
class SpoolWriter : public capture::RecordSink {
 public:
  SpoolWriter(std::string dir, SpoolConfig cfg = {});
  ~SpoolWriter() override;

  void on_conn(const capture::ConnRecord& rec) override;
  void on_dns(const capture::DnsRecord& rec) override;
  void on_encflow(const capture::EncFlowRecord& rec) override;

  /// Close the open segments (writing any buffered records). Called by
  /// the destructor, but callers that need the files on disk at a known
  /// point (or want write errors surfaced) should call it explicitly.
  void flush();

  [[nodiscard]] std::size_t segments_written() const { return segments_written_; }
  [[nodiscard]] std::uint64_t conns_written() const { return conn_.records_total; }
  [[nodiscard]] std::uint64_t dns_written() const { return dns_.records_total; }
  [[nodiscard]] std::uint64_t encflows_written() const { return enc_.records_total; }

 private:
  struct OpenSegment {
    std::string payload;                    ///< v1: interleaved record bodies
    std::unique_ptr<SegmentBuilderV2> v2;   ///< v2: columnar builder (null for v1)
    std::uint32_t count = 0;
    SimTime first;
    SimTime last;
    std::uint32_t next_seq = 0;
    std::uint64_t records_total = 0;
    bool any = false;  ///< a record has ever been written to this kind
  };

  template <typename Rec>
  void add(OpenSegment& seg, RecordKind kind, const Rec& rec, SimTime ts);
  void rotate(OpenSegment& seg, RecordKind kind);

  std::string dir_;
  SpoolConfig cfg_;
  OpenSegment conn_;
  OpenSegment dns_;
  OpenSegment enc_;  ///< no v2 builder ever: enc segments are v1-only
  std::size_t segments_written_ = 0;
};

/// Snapshot of a spool directory: segment file paths per kind, sorted in
/// sequence (= time) order.
struct SpoolListing {
  std::vector<std::string> conn_segments;
  std::vector<std::string> dns_segments;
  std::vector<std::string> enc_segments;

  [[nodiscard]] std::size_t total() const {
    return conn_segments.size() + dns_segments.size() + enc_segments.size();
  }
};

[[nodiscard]] SpoolListing list_spool(const std::string& dir);

/// Replay a spool into `sink`, merging the conn, dns, and enc sequences
/// into one nondecreasing timeline (ties deliver DNS first, then conn,
/// then enc — the DNS-before-conn rule matches the pairing engine; enc
/// metadata is purely observational and goes last). Segments stream one
/// at a time — memory is bounded by the largest single segment.
/// Validates CRCs and cross-segment timestamp ordering; throws naming
/// the offending file. Returns per-kind record counts.
struct ReplayCounts {
  std::uint64_t conns = 0;
  std::uint64_t dns = 0;
  std::uint64_t encflows = 0;
};
ReplayCounts replay_spool(const SpoolListing& listing, capture::RecordSink& sink);
ReplayCounts replay_spool(const std::string& dir, capture::RecordSink& sink);

/// Replay an in-memory dataset (timestamp-sorted, as Monitor::harvest
/// produces) through the same merged-timeline path.
ReplayCounts replay_dataset(const capture::Dataset& ds, capture::RecordSink& sink);

/// Converters between text logs and spools. `text_to_spool` reads
/// `<text_dir>/conn.log` + `<text_dir>/dns.log` (plus `encflow.log` when
/// present); `spool_to_text` writes the same files, emitting encflow.log
/// only when the spool holds enc records. Both directions preserve every
/// field exactly, so text → spool → text is byte-identical.
ReplayCounts text_to_spool(const std::string& text_dir, const std::string& spool_dir,
                           SpoolConfig cfg = {});
ReplayCounts spool_to_text(const std::string& spool_dir, const std::string& text_dir);

/// Re-encode a spool into `dst_dir` using cfg's format/codec (v1 ↔ v2
/// in either direction — the reader auto-detects the source format per
/// segment). Record values and delivery order are preserved exactly, so
/// study results across a conversion are byte-identical; segment
/// boundaries follow cfg's rotation limits, not the source's.
ReplayCounts convert_spool(const std::string& src_dir, const std::string& dst_dir,
                           SpoolConfig cfg = {});

/// Total bytes-on-disk of every segment file in the listing.
[[nodiscard]] std::uint64_t spool_bytes(const SpoolListing& listing);
[[nodiscard]] std::uint64_t spool_bytes(const std::string& dir);

}  // namespace dnsctx::stream
