#include "stream/online_study.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace dnsctx::stream {

namespace {

constexpr std::int64_t kModeWindowUs = 40'000;  // §5.3's 40 ms histogram span

[[nodiscard]] std::int64_t ceil_ms(std::int64_t us) { return (us + 999) / 1000; }

}  // namespace

OnlineStudy::OnlineStudy(OnlineStudyConfig cfg) : cfg_{std::move(cfg)} {
  if (cfg_.sweep_interval == 0) {
    throw std::invalid_argument{"OnlineStudyConfig::sweep_interval must be > 0"};
  }
  conncheck_name_ = util::InternedName{cfg_.conncheck_name};
  chains_ = analysis::ChainTracker{cfg_.chain_gap};
  local_id_ = cfg_.directory.id_of_label("Local");
  tallies_.resize(cfg_.directory.platform_count());
  platform_conns_.resize(cfg_.directory.platform_count());
}

void OnlineStudy::note_time(SimTime& last, SimTime t, const char* kind) {
  if (t < last) {
    throw std::runtime_error{
        strfmt("online study: %s record at %lld us after %lld us; stream must be time-sorted",
               kind, static_cast<long long>(t.count_us()),
               static_cast<long long>(last.count_us()))};
  }
  last = t;
  watermark_ = std::max(watermark_, t);
}

void OnlineStudy::on_dns(const capture::DnsRecord& rec) {
  if (any_dns_) {
    note_time(last_dns_, rec.ts, "dns");
  } else {
    any_dns_ = true;
    last_dns_ = rec.ts;
    watermark_ = std::max(watermark_, rec.ts);
  }
  ++dns_total_;
  chains_.on_dns(rec);

  // Table 1 DNS pass: every record counts, answered or not.
  const analysis::PlatformId pid = cfg_.directory.id_of(rec.resolver_ip);
  PlatTally& tally = tallies_[pid];
  ++tally.lookups;
  tally.houses.insert(rec.client_ip);
  all_houses_.insert(rec.client_ip);
  ++total_lookups_;

  // isp-only-house tracking.
  {
    const bool is_local = pid == local_id_;
    const auto [it, inserted] = only_local_.try_emplace(rec.client_ip, is_local);
    if (!inserted) it->second = it->second && is_local;
  }

  // §5.3 threshold material: answered-lookup durations per resolver.
  if (rec.answered) {
    ResolverAcc& ra = resolvers_[rec.resolver_ip];
    ++ra.answered;
    const std::int64_t us = rec.duration.count_us();
    if (us < ra.min_us) {
      ra.min_us = us;
      // The mode window [min, min+40ms] only ever slides down; prune
      // samples that fell out so the map stays window-sized.
      ra.low.erase(ra.low.upper_bound(us + kModeWindowUs), ra.low.end());
    }
    if (us <= ra.min_us + kModeWindowUs) ++ra.low[us];
  }

  // DN-Hunter candidate index (answered, A-bearing lookups only).
  if (rec.answered && !rec.answers.empty()) {
    ++eligible_lookups_;
    const std::uint64_t seq = next_seq_++;
    House& house = houses_[rec.client_ip];
    RecordUse& ru = house.records[seq];
    ru.refs = static_cast<std::uint32_t>(rec.answers.size());
    ru.duration = rec.duration;
    ru.resolver_ip = rec.resolver_ip;
    ru.conncheck = rec.query == conncheck_name_;
    active_records_ += 1;
    const SimTime response = rec.response_time();
    for (const auto& a : rec.answers) {
      std::vector<Candidate>& cands = house.index[a.addr];
      const Candidate cand{response, response + SimDuration::sec(a.ttl), seq};
      // Keep (response, seq) order: every stored candidate has a smaller
      // seq, so the slot is after all entries with an equal response.
      const auto pos = std::upper_bound(
          cands.begin(), cands.end(), response,
          [](SimTime t, const Candidate& c) { return t < c.response; });
      cands.insert(pos, cand);
      ++active_candidates_;
    }
  }

  maybe_sweep();
}

void OnlineStudy::on_conn(const capture::ConnRecord& rec) {
  if (any_conn_) {
    note_time(last_conn_, rec.start, "conn");
  } else {
    any_conn_ = true;
    last_conn_ = rec.start;
    watermark_ = std::max(watermark_, rec.start);
  }
  ++conns_total_;
  chains_.on_conn(rec);

  // ---- DN-Hunter pairing (mirrors pair_connections' inner loop) ----------
  const auto house_it = houses_.find(rec.orig_ip);
  const std::vector<Candidate>* cands = nullptr;
  if (house_it != houses_.end()) {
    const auto idx_it = house_it->second.index.find(rec.resp_ip);
    if (idx_it != house_it->second.index.end()) cands = &idx_it->second;
  }
  if (cands == nullptr) {
    ++pairing_.unpaired;
    ++n_;
    maybe_sweep();
    return;
  }
  const auto upper = std::upper_bound(
      cands->begin(), cands->end(), rec.start,
      [](SimTime t, const Candidate& c) { return t < c.response; });
  if (upper == cands->begin()) {
    ++pairing_.unpaired;  // the answer arrived only after this connection
    ++n_;
    maybe_sweep();
    return;
  }

  std::uint32_t live = 0;
  const Candidate* chosen = nullptr;
  for (auto iter = upper; iter != cands->begin();) {
    --iter;
    if (iter->expires > rec.start) {
      ++live;
      if (chosen == nullptr) chosen = &*iter;  // most recent live
    }
  }
  const bool expired_pairing = live == 0;
  if (expired_pairing) chosen = &*std::prev(upper);  // most recent, expired

  House& house = house_it->second;
  RecordUse& ru = house.records.at(chosen->seq);
  const bool first_use = ru.uses == 0;
  if (first_use) ++used_lookups_;
  ++ru.uses;
  const SimDuration gap = rec.start - chosen->response;

  ++pairing_.paired;
  if (expired_pairing) ++pairing_.paired_expired;
  if (live <= 1) {
    ++pairing_.unique_candidate;
  } else {
    ++pairing_.multiple_candidates;
  }

  // ---- taxonomy + downstream accumulators --------------------------------
  if (gap > cfg_.classify.blocked_threshold) {
    if (first_use) {
      ++p_;
      if (expired_pairing) ++p_expired_;
    } else {
      ++lc_;
      if (expired_pairing) ++lc_expired_;
    }
  } else {
    // Blocked: bank the lookup duration for the deferred SC/R split.
    ResolverAcc& ra = resolvers_[ru.resolver_ip];
    ++ra.blocked_total;
    ++ra.blocked_ceil[ceil_ms(ru.duration.count_us())];
    if (ru.duration.to_ms() <= cfg_.classify.default_threshold_ms) {
      ++ra.blocked_le_default;
    }

    // §6 quadrants (independent of the SC/R split).
    const double d_ms = ru.duration.to_ms();
    const double a_ms = rec.duration.to_ms();
    const double t_ms = d_ms + a_ms;
    const double contrib = t_ms > 0.0 ? 100.0 * d_ms / t_ms : 100.0;
    const bool abs_ok = d_ms <= cfg_.abs_significance_ms;
    const bool rel_ok = contrib <= cfg_.rel_significance_pct;
    if (abs_ok && rel_ok) {
      ++q_ins_;
    } else if (abs_ok) {
      ++q_rel_;
    } else if (rel_ok) {
      ++q_abs_;
    } else {
      ++q_sig_;
    }
  }

  // Table 1 connection pass + §7 per-platform counters.
  const analysis::PlatformId pid = cfg_.directory.id_of(ru.resolver_ip);
  PlatTally& tally = tallies_[pid];
  ++tally.conns;
  const std::uint64_t bytes = rec.orig_bytes + rec.resp_bytes;
  tally.bytes += bytes;
  ++paired_conns_;
  paired_bytes_ += bytes;

  PlatConns& pc = platform_conns_[pid];
  ++pc.total;
  if (ru.conncheck) ++pc.conncheck;

  maybe_sweep();
}

void OnlineStudy::drop_candidate(House& house, const Candidate& cand) {
  const auto it = house.records.find(cand.seq);
  if (it != house.records.end() && --it->second.refs == 0) {
    house.records.erase(cand.seq);
    --active_records_;
  }
  --active_candidates_;
}

void OnlineStudy::maybe_sweep() {
  if (++ingests_since_sweep_ >= cfg_.sweep_interval) sweep();
}

void OnlineStudy::sweep() {
  ingests_since_sweep_ = 0;
  const std::uint64_t candidates_before = active_candidates_;
  // Retry chains: future DNS records arrive at or after last_dns_, so
  // chains whose gap window the frontier has passed are closed for good.
  if (any_dns_) chains_.evict_before(last_dns_);
  const bool horizon_gc = cfg_.eviction_horizon != SimDuration::max();
  const SimTime horizon_cut =
      horizon_gc ? watermark_ - cfg_.eviction_horizon : SimTime::from_us(0);

  // FlatMap erase() backward-shifts (invalidating iteration), so empty
  // keys are collected during the walk and erased after it.
  std::vector<Ipv4Addr> dead_houses;
  std::vector<Ipv4Addr> dead_addrs;
  for (auto& [house_ip, house] : houses_) {
    dead_addrs.clear();
    for (auto& [addr, cands] : house.index) {
      // j = one past the last candidate already visible at the watermark.
      const auto visible_end = std::upper_bound(
          cands.begin(), cands.end(), watermark_,
          [](SimTime t, const Candidate& c) { return t < c.response; });

      const auto dead = [&](const Candidate& c, bool is_last_visible) {
        if (horizon_gc && c.response <= horizon_cut) return true;  // approximate
        // Exact shadow rule: expired at the watermark AND not the newest
        // visible candidate (the most-recent-expired fallback target).
        return !is_last_visible && c.expires <= watermark_;
      };

      auto out = cands.begin();
      for (auto in = cands.begin(); in != cands.end(); ++in) {
        const bool is_last_visible =
            visible_end != cands.begin() && in == std::prev(visible_end);
        if (in >= visible_end || !dead(*in, is_last_visible)) {
          if (out != in) *out = *in;
          ++out;
        } else {
          drop_candidate(house, *in);
        }
      }
      cands.erase(out, cands.end());

      if (cands.empty()) dead_addrs.push_back(addr);
    }
    for (const Ipv4Addr addr : dead_addrs) house.index.erase(addr);
    if (house.index.empty() && house.records.empty()) dead_houses.push_back(house_ip);
  }
  for (const Ipv4Addr ip : dead_houses) houses_.erase(ip);

  if (obs::enabled()) {
    auto& reg = obs::registry();
    reg.counter("stream_sweeps_total").add();
    reg.counter("stream_evicted_candidates_total")
        .add(candidates_before - active_candidates_);
    reg.gauge("stream_active_candidates").set(static_cast<double>(active_candidates_));
    reg.gauge("stream_active_records").set(static_cast<double>(active_records_));
    reg.gauge("stream_tracked_houses").set(static_cast<double>(houses_.size()));
  }
}

OnlineStudyResult OnlineStudy::finalize() const {
  OnlineStudyResult out;
  out.conns = conns_total_;
  out.dns = dns_total_;
  out.pairing = pairing_;
  out.unused_lookup_frac =
      eligible_lookups_ ? static_cast<double>(eligible_lookups_ - used_lookups_) /
                              static_cast<double>(eligible_lookups_)
                        : 0.0;
  out.lc_expired = lc_expired_;
  out.p_expired = p_expired_;

  // ---- §5.3 thresholds + deferred SC/R split ------------------------------
  // Replicates derive_resolver_thresholds: same histogram, same operand
  // order, from the pruned (µs → count) window instead of a full Cdf.
  // (Per-resolver work is independent and the totals are integer sums,
  // so the map's iteration order cannot leak into any result.)
  util::FlatMap<Ipv4Addr, std::pair<std::uint64_t, std::uint64_t>>
      resolver_scr;  // resolver → (sc, r)
  std::uint64_t sc_total = 0;
  std::uint64_t r_total = 0;
  for (const auto& [resolver, ra] : resolvers_) {
    std::uint64_t sc = 0;
    if (ra.answered >= cfg_.classify.per_resolver_min_lookups) {
      const double lo = static_cast<double>(ra.min_us) / 1000.0;
      Histogram h{lo, lo + 40.0, 80};
      for (const auto& [us, count] : ra.low) {
        const double v = static_cast<double>(us) / 1000.0;
        if (v < lo + 40.0) h.add(v, count);
      }
      const double mode_ms = h.bin_low(h.mode_bin()) + h.bin_width() / 2.0;
      const double threshold = std::ceil(mode_ms + std::max(2.0, 0.55 * mode_ms));
      out.resolver_threshold_ms[resolver] = threshold;
      for (const auto& [bin_ms, count] : ra.blocked_ceil) {
        if (static_cast<double>(bin_ms) <= threshold) sc += count;
      }
    } else {
      sc = ra.blocked_le_default;
    }
    const std::uint64_t r = ra.blocked_total - sc;
    if (ra.blocked_total) resolver_scr.try_emplace(resolver, std::make_pair(sc, r));
    sc_total += sc;
    r_total += r;
  }
  out.classes =
      analysis::ClassCounts{.n = n_, .lc = lc_, .p = p_, .sc = sc_total, .r = r_total};

  // ---- Table 1 (build_table1's emit, verbatim arithmetic) -----------------
  auto emit = [&](analysis::PlatformId id) {
    const PlatTally& t = tallies_[id];
    if (t.lookups == 0 && t.conns == 0) return;  // the platform was never touched
    const double lookup_share =
        total_lookups_ ? static_cast<double>(t.lookups) / static_cast<double>(total_lookups_)
                       : 0.0;
    if (id != cfg_.directory.other_id() && lookup_share < 0.01) return;
    analysis::Table1Row row;
    row.platform = cfg_.directory.name_of(id);
    row.lookups = t.lookups;
    row.pct_houses = all_houses_.empty() ? 0.0
                                         : 100.0 * static_cast<double>(t.houses.size()) /
                                               static_cast<double>(all_houses_.size());
    row.pct_lookups = 100.0 * lookup_share;
    row.pct_conns = paired_conns_ ? 100.0 * static_cast<double>(t.conns) /
                                        static_cast<double>(paired_conns_)
                                  : 0.0;
    row.pct_bytes = paired_bytes_ ? 100.0 * static_cast<double>(t.bytes) /
                                        static_cast<double>(paired_bytes_)
                                  : 0.0;
    out.table1.push_back(std::move(row));
  };
  for (analysis::PlatformId id = 0; id < cfg_.directory.other_id(); ++id) emit(id);
  emit(cfg_.directory.other_id());

  // ---- isp-only houses ----------------------------------------------------
  if (!only_local_.empty()) {
    std::size_t count = 0;
    for (const auto& [house, local] : only_local_) {
      if (local) ++count;
    }
    out.isp_only_houses =
        static_cast<double>(count) / static_cast<double>(only_local_.size());
  }

  // ---- §6 quadrants -------------------------------------------------------
  const std::uint64_t blocked = q_ins_ + q_rel_ + q_abs_ + q_sig_;
  if (blocked) {
    const auto div = static_cast<double>(blocked);
    out.quadrants.insignificant_both = static_cast<double>(q_ins_) / div;
    out.quadrants.relative_only = static_cast<double>(q_rel_) / div;
    out.quadrants.absolute_only = static_cast<double>(q_abs_) / div;
    out.quadrants.significant_both = static_cast<double>(q_sig_) / div;
  }
  if (conns_total_) {
    out.quadrants.significant_overall =
        static_cast<double>(q_sig_) / static_cast<double>(conns_total_);
  }

  // ---- §7 platform rows (directory order, then "other") -------------------
  auto emit_platform = [&](analysis::PlatformId id) {
    const PlatConns& pc = platform_conns_[id];
    if (pc.total == 0) return;  // an entry only ever exists after a paired conn
    OnlinePlatformRow row;
    row.platform = cfg_.directory.name_of(id);
    row.total_conns = pc.total;
    row.conncheck_conns = pc.conncheck;
    for (const auto& [resolver, scr] : resolver_scr) {
      if (cfg_.directory.id_of(resolver) == id) {
        row.sc += scr.first;
        row.r += scr.second;
      }
    }
    out.platforms.push_back(std::move(row));
  };
  for (analysis::PlatformId id = 0; id < cfg_.directory.other_id(); ++id) emit_platform(id);
  emit_platform(cfg_.directory.other_id());

  // ---- failure counters (open chains fold in as failed) -------------------
  chains_.fold_into(out.failures);

  return out;
}

void OnlineStudy::absorb(OnlineStudy&& other) {
  // Seqs are engine-local; shift the other engine's so per-house
  // (response, seq) candidate order is preserved without collisions.
  const std::uint64_t seq_offset = next_seq_;
  for (auto& [house_ip, other_house] : other.houses_) {
    if (houses_.contains(house_ip)) {
      throw std::logic_error{
          "OnlineStudy::absorb: house present in both engines (partitions must be "
          "house-disjoint)"};
    }
    House& house = houses_[house_ip];
    for (auto& [addr, cands] : other_house.index) {
      for (Candidate& c : cands) c.seq += seq_offset;
      house.index.try_emplace(addr, std::move(cands));
    }
    for (auto& [seq, ru] : other_house.records) {
      house.records.try_emplace(seq + seq_offset, std::move(ru));
    }
  }
  next_seq_ += other.next_seq_;

  last_conn_ = std::max(last_conn_, other.last_conn_);
  last_dns_ = std::max(last_dns_, other.last_dns_);
  watermark_ = std::max(watermark_, other.watermark_);
  any_conn_ = any_conn_ || other.any_conn_;
  any_dns_ = any_dns_ || other.any_dns_;
  active_candidates_ += other.active_candidates_;
  active_records_ += other.active_records_;

  conns_total_ += other.conns_total_;
  dns_total_ += other.dns_total_;
  pairing_.paired += other.pairing_.paired;
  pairing_.unpaired += other.pairing_.unpaired;
  pairing_.paired_expired += other.pairing_.paired_expired;
  pairing_.unique_candidate += other.pairing_.unique_candidate;
  pairing_.multiple_candidates += other.pairing_.multiple_candidates;
  eligible_lookups_ += other.eligible_lookups_;
  used_lookups_ += other.used_lookups_;

  n_ += other.n_;
  lc_ += other.lc_;
  p_ += other.p_;
  lc_expired_ += other.lc_expired_;
  p_expired_ += other.p_expired_;

  for (auto& [resolver, part] : other.resolvers_) {
    ResolverAcc& ra = resolvers_[resolver];
    ra.answered += part.answered;
    ra.min_us = std::min(ra.min_us, part.min_us);
    for (const auto& [us, count] : part.low) ra.low[us] += count;
    ra.low.erase(ra.low.upper_bound(ra.min_us + kModeWindowUs), ra.low.end());
    for (const auto& [bin_ms, count] : part.blocked_ceil) ra.blocked_ceil[bin_ms] += count;
    ra.blocked_total += part.blocked_total;
    ra.blocked_le_default += part.blocked_le_default;
  }

  q_ins_ += other.q_ins_;
  q_rel_ += other.q_rel_;
  q_abs_ += other.q_abs_;
  q_sig_ += other.q_sig_;

  for (std::size_t id = 0; id < other.tallies_.size(); ++id) {
    PlatTally& tally = tallies_[id];
    PlatTally& part = other.tallies_[id];
    tally.lookups += part.lookups;
    tally.conns += part.conns;
    tally.bytes += part.bytes;
    if (tally.houses.empty()) {
      tally.houses = std::move(part.houses);
    } else {
      part.houses.for_each([&](Ipv4Addr h) { tally.houses.insert(h); });
    }
  }
  other.all_houses_.for_each([&](Ipv4Addr h) { all_houses_.insert(h); });
  total_lookups_ += other.total_lookups_;
  paired_conns_ += other.paired_conns_;
  paired_bytes_ += other.paired_bytes_;
  for (const auto& [house, local] : other.only_local_) {
    const auto [it, inserted] = only_local_.try_emplace(house, local);
    if (!inserted) it->second = it->second && local;
  }

  for (std::size_t id = 0; id < other.platform_conns_.size(); ++id) {
    platform_conns_[id].total += other.platform_conns_[id].total;
    platform_conns_[id].conncheck += other.platform_conns_[id].conncheck;
  }

  chains_.absorb(std::move(other.chains_));
}

}  // namespace dnsctx::stream
