#include "stream/segment.hpp"

#include <array>
#include <fstream>
#include <stdexcept>

#include "stream/segment_view.hpp"
#include "stream/wire.hpp"
#include "util/strings.hpp"

namespace dnsctx::stream {

namespace {

// ---- CRC-32 ----------------------------------------------------------------

[[nodiscard]] std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::string_view to_string(RecordKind k) {
  switch (k) {
    case RecordKind::kConn: return "conn";
    case RecordKind::kDns: return "dns";
    case RecordKind::kEncFlow: return "enc";
  }
  return "conn";
}

std::uint32_t crc32(std::string_view bytes, std::uint32_t seed) {
  static const auto table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = table[(c ^ static_cast<std::uint8_t>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void append_record(std::string& payload, const capture::ConnRecord& rec) {
  std::string body;
  body.reserve(46);
  wire::put_i64(body, rec.start.count_us());
  wire::put_i64(body, rec.duration.count_us());
  wire::put_u32(body, rec.orig_ip.to_u32());
  wire::put_u32(body, rec.resp_ip.to_u32());
  wire::put_u16(body, rec.orig_port);
  wire::put_u16(body, rec.resp_port);
  wire::put_u8(body, rec.proto == Proto::kUdp ? 1 : 0);
  wire::put_u8(body, static_cast<std::uint8_t>(rec.state));
  wire::put_u64(body, rec.orig_bytes);
  wire::put_u64(body, rec.resp_bytes);
  wire::put_u32(payload, static_cast<std::uint32_t>(body.size()));
  payload += body;
}

void append_record(std::string& payload, const capture::DnsRecord& rec) {
  const std::string_view query = rec.query.view();
  std::string body;
  body.reserve(34 + query.size() + rec.answers.size() * 8);
  wire::put_i64(body, rec.ts.count_us());
  wire::put_i64(body, rec.duration.count_us());
  wire::put_u32(body, rec.client_ip.to_u32());
  wire::put_u16(body, rec.client_port);
  wire::put_u32(body, rec.resolver_ip.to_u32());
  wire::put_u16(body, static_cast<std::uint16_t>(rec.qtype));
  wire::put_u8(body, static_cast<std::uint8_t>(rec.rcode));
  wire::put_u8(body, rec.answered ? 1 : 0);
  wire::put_u16(body, static_cast<std::uint16_t>(query.size()));
  body += query;
  wire::put_u16(body, static_cast<std::uint16_t>(rec.answers.size()));
  for (const auto& a : rec.answers) {
    wire::put_u32(body, a.addr.to_u32());
    wire::put_u32(body, a.ttl);
  }
  wire::put_u32(payload, static_cast<std::uint32_t>(body.size()));
  payload += body;
}

void append_record(std::string& payload, const capture::EncFlowRecord& rec) {
  std::string body;
  body.reserve(76);
  wire::put_i64(body, rec.start.count_us());
  wire::put_i64(body, rec.duration.count_us());
  wire::put_u32(body, rec.client_ip.to_u32());
  wire::put_u32(body, rec.server_ip.to_u32());
  wire::put_u16(body, rec.client_port);
  wire::put_u16(body, rec.server_port);
  wire::put_u32(body, rec.up_msgs);
  wire::put_u32(body, rec.down_msgs);
  wire::put_u64(body, rec.up_bytes);
  wire::put_u64(body, rec.down_bytes);
  wire::put_u64(body, rec.first_up_bytes);
  wire::put_u64(body, rec.first_down_bytes);
  wire::put_u32(body, rec.pad_aligned_up);
  wire::put_u32(body, rec.pad_aligned_down);
  wire::put_u32(payload, static_cast<std::uint32_t>(body.size()));
  payload += body;
}

void append_segment_header(std::string& out, std::uint16_t version, RecordKind kind,
                           std::uint32_t record_count, SimTime first, SimTime last,
                           std::uint64_t payload_bytes, std::uint32_t payload_crc) {
  wire::put_u32(out, kSegmentMagic);
  wire::put_u16(out, version);
  wire::put_u8(out, static_cast<std::uint8_t>(kind));
  wire::put_u8(out, 0);  // reserved
  wire::put_u32(out, record_count);
  wire::put_i64(out, record_count ? first.count_us() : 0);
  wire::put_i64(out, record_count ? last.count_us() : 0);
  wire::put_u64(out, payload_bytes);
  wire::put_u32(out, payload_crc);
}

std::string build_segment(RecordKind kind, std::uint32_t record_count, SimTime first,
                          SimTime last, std::string_view payload) {
  std::string out;
  out.reserve(kSegmentHeaderBytes + payload.size());
  append_segment_header(out, kSegmentVersion, kind, record_count, first, last,
                        payload.size(), crc32(payload));
  out += payload;
  return out;
}

SegmentHeader parse_segment_header(std::string_view bytes, const std::string& source) {
  if (bytes.size() < kSegmentHeaderBytes) {
    throw std::runtime_error{strfmt("%s: truncated segment header (%zu of %zu bytes)",
                                    source.c_str(), bytes.size(), kSegmentHeaderBytes)};
  }
  wire::Cursor c{bytes, 0, &source, "segment header"};
  SegmentHeader h;
  if (c.u32() != kSegmentMagic) {
    throw std::runtime_error{strfmt("%s: bad segment magic", source.c_str())};
  }
  h.version = c.u16();
  if (h.version != kSegmentVersion && h.version != kSegmentVersionV2) {
    throw std::runtime_error{strfmt("%s: unsupported segment version %u (expected %u or %u)",
                                    source.c_str(), h.version, kSegmentVersion,
                                    kSegmentVersionV2)};
  }
  const std::uint8_t kind = c.u8();
  if (kind > 2) {
    throw std::runtime_error{strfmt("%s: bad record kind %u", source.c_str(), kind)};
  }
  h.kind = static_cast<RecordKind>(kind);
  if (h.kind == RecordKind::kEncFlow && h.version != kSegmentVersion) {
    throw std::runtime_error{strfmt(
        "%s: enc segments are v1-only (v2 has no enc column set), got version %u",
        source.c_str(), h.version)};
  }
  (void)c.u8();  // reserved
  h.record_count = c.u32();
  h.first_ts = SimTime::from_us(c.i64());
  h.last_ts = SimTime::from_us(c.i64());
  h.payload_bytes = c.u64();
  h.payload_crc32 = c.u32();
  return h;
}

SegmentData parse_segment(std::string_view bytes, const std::string& source) {
  SegmentView view = SegmentView::parse(bytes, source);
  SegmentData out;
  out.header = view.header();
  if (out.header.kind == RecordKind::kConn) {
    out.conns.reserve(out.header.record_count);
    capture::ConnRecord rec;
    while (view.next(rec)) out.conns.push_back(rec);
  } else if (out.header.kind == RecordKind::kDns) {
    out.dns.reserve(out.header.record_count);
    capture::DnsRecord rec;
    while (view.next(rec)) out.dns.push_back(rec);
  } else {
    out.encflows.reserve(out.header.record_count);
    capture::EncFlowRecord rec;
    while (view.next(rec)) out.encflows.push_back(rec);
  }
  return out;
}

void write_segment_file(const std::string& path, std::string_view blob) {
  std::ofstream os{path, std::ios::binary};
  if (!os) throw std::runtime_error{"cannot open " + path};
  os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!os) throw std::runtime_error{"short write to " + path};
}

SegmentData read_segment_file(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw std::runtime_error{"cannot open " + path};
  std::string blob{std::istreambuf_iterator<char>{is}, std::istreambuf_iterator<char>{}};
  return parse_segment(blob, path);
}

}  // namespace dnsctx::stream
