#include "stream/segment.hpp"

#include <array>
#include <fstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace dnsctx::stream {

namespace {

// ---- little-endian primitives ----------------------------------------------

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u16(std::string& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v & 0xff));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_i64(std::string& out, std::int64_t v) { put_u64(out, static_cast<std::uint64_t>(v)); }

/// Bounds-checked little-endian cursor over a record body or header.
struct Cursor {
  std::string_view bytes;
  std::size_t pos = 0;
  const std::string* source;
  const char* what;

  [[noreturn]] void fail() const {
    throw std::runtime_error{
        strfmt("%s: truncated %s (need more than %zu bytes)", source->c_str(), what,
               bytes.size())};
  }

  [[nodiscard]] std::uint8_t u8() {
    if (pos + 1 > bytes.size()) fail();
    return static_cast<std::uint8_t>(bytes[pos++]);
  }
  [[nodiscard]] std::uint16_t u16() {
    const auto lo = u8();
    return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8()) << 8));
  }
  [[nodiscard]] std::uint32_t u32() {
    const auto lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  [[nodiscard]] std::uint64_t u64() {
    const auto lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] std::string_view raw(std::size_t n) {
    if (pos + n > bytes.size()) fail();
    const auto out = bytes.substr(pos, n);
    pos += n;
    return out;
  }
};

// ---- CRC-32 ----------------------------------------------------------------

[[nodiscard]] std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

// ---- record bodies ---------------------------------------------------------

[[nodiscard]] capture::ConnRecord decode_conn(Cursor& c) {
  capture::ConnRecord r;
  r.start = SimTime::from_us(c.i64());
  r.duration = SimDuration::us(c.i64());
  r.orig_ip = Ipv4Addr::from_u32(c.u32());
  r.resp_ip = Ipv4Addr::from_u32(c.u32());
  r.orig_port = c.u16();
  r.resp_port = c.u16();
  r.proto = c.u8() == 1 ? Proto::kUdp : Proto::kTcp;
  r.state = static_cast<capture::ConnState>(c.u8());
  r.orig_bytes = c.u64();
  r.resp_bytes = c.u64();
  return r;
}

[[nodiscard]] capture::DnsRecord decode_dns(Cursor& c) {
  capture::DnsRecord r;
  r.ts = SimTime::from_us(c.i64());
  r.duration = SimDuration::us(c.i64());
  r.client_ip = Ipv4Addr::from_u32(c.u32());
  r.client_port = c.u16();
  r.resolver_ip = Ipv4Addr::from_u32(c.u32());
  r.qtype = static_cast<dns::RrType>(c.u16());
  r.rcode = static_cast<dns::Rcode>(c.u8());
  r.answered = c.u8() != 0;
  const std::uint16_t qlen = c.u16();
  r.query = util::InternedName{c.raw(qlen)};
  const std::uint16_t answers = c.u16();
  r.answers.reserve(answers);
  for (std::uint16_t i = 0; i < answers; ++i) {
    capture::DnsAnswer a;
    a.addr = Ipv4Addr::from_u32(c.u32());
    a.ttl = c.u32();
    r.answers.push_back(a);
  }
  return r;
}

void write_header(std::string& out, RecordKind kind, std::uint32_t record_count,
                  SimTime first, SimTime last, std::uint64_t payload_bytes,
                  std::uint32_t payload_crc) {
  put_u32(out, kSegmentMagic);
  put_u16(out, kSegmentVersion);
  put_u8(out, static_cast<std::uint8_t>(kind));
  put_u8(out, 0);  // reserved
  put_u32(out, record_count);
  put_i64(out, record_count ? first.count_us() : 0);
  put_i64(out, record_count ? last.count_us() : 0);
  put_u64(out, payload_bytes);
  put_u32(out, payload_crc);
}

}  // namespace

std::string_view to_string(RecordKind k) { return k == RecordKind::kConn ? "conn" : "dns"; }

std::uint32_t crc32(std::string_view bytes, std::uint32_t seed) {
  static const auto table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = table[(c ^ static_cast<std::uint8_t>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void append_record(std::string& payload, const capture::ConnRecord& rec) {
  std::string body;
  body.reserve(46);
  put_i64(body, rec.start.count_us());
  put_i64(body, rec.duration.count_us());
  put_u32(body, rec.orig_ip.to_u32());
  put_u32(body, rec.resp_ip.to_u32());
  put_u16(body, rec.orig_port);
  put_u16(body, rec.resp_port);
  put_u8(body, rec.proto == Proto::kUdp ? 1 : 0);
  put_u8(body, static_cast<std::uint8_t>(rec.state));
  put_u64(body, rec.orig_bytes);
  put_u64(body, rec.resp_bytes);
  put_u32(payload, static_cast<std::uint32_t>(body.size()));
  payload += body;
}

void append_record(std::string& payload, const capture::DnsRecord& rec) {
  const std::string_view query = rec.query.view();
  std::string body;
  body.reserve(34 + query.size() + rec.answers.size() * 8);
  put_i64(body, rec.ts.count_us());
  put_i64(body, rec.duration.count_us());
  put_u32(body, rec.client_ip.to_u32());
  put_u16(body, rec.client_port);
  put_u32(body, rec.resolver_ip.to_u32());
  put_u16(body, static_cast<std::uint16_t>(rec.qtype));
  put_u8(body, static_cast<std::uint8_t>(rec.rcode));
  put_u8(body, rec.answered ? 1 : 0);
  put_u16(body, static_cast<std::uint16_t>(query.size()));
  body += query;
  put_u16(body, static_cast<std::uint16_t>(rec.answers.size()));
  for (const auto& a : rec.answers) {
    put_u32(body, a.addr.to_u32());
    put_u32(body, a.ttl);
  }
  put_u32(payload, static_cast<std::uint32_t>(body.size()));
  payload += body;
}

std::string build_segment(RecordKind kind, std::uint32_t record_count, SimTime first,
                          SimTime last, std::string_view payload) {
  std::string out;
  out.reserve(kSegmentHeaderBytes + payload.size());
  write_header(out, kind, record_count, first, last, payload.size(), crc32(payload));
  out += payload;
  return out;
}

SegmentHeader parse_segment_header(std::string_view bytes, const std::string& source) {
  if (bytes.size() < kSegmentHeaderBytes) {
    throw std::runtime_error{strfmt("%s: truncated segment header (%zu of %zu bytes)",
                                    source.c_str(), bytes.size(), kSegmentHeaderBytes)};
  }
  Cursor c{bytes, 0, &source, "segment header"};
  SegmentHeader h;
  if (c.u32() != kSegmentMagic) {
    throw std::runtime_error{strfmt("%s: bad segment magic", source.c_str())};
  }
  h.version = c.u16();
  if (h.version != kSegmentVersion) {
    throw std::runtime_error{strfmt("%s: unsupported segment version %u (expected %u)",
                                    source.c_str(), h.version, kSegmentVersion)};
  }
  const std::uint8_t kind = c.u8();
  if (kind > 1) {
    throw std::runtime_error{strfmt("%s: bad record kind %u", source.c_str(), kind)};
  }
  h.kind = static_cast<RecordKind>(kind);
  (void)c.u8();  // reserved
  h.record_count = c.u32();
  h.first_ts = SimTime::from_us(c.i64());
  h.last_ts = SimTime::from_us(c.i64());
  h.payload_bytes = c.u64();
  h.payload_crc32 = c.u32();
  return h;
}

SegmentData parse_segment(std::string_view bytes, const std::string& source) {
  SegmentData out;
  out.header = parse_segment_header(bytes, source);
  const std::string_view payload = bytes.substr(kSegmentHeaderBytes);
  if (payload.size() != out.header.payload_bytes) {
    throw std::runtime_error{
        strfmt("%s: truncated segment payload (%zu of %llu bytes)", source.c_str(),
               payload.size(), static_cast<unsigned long long>(out.header.payload_bytes))};
  }
  const std::uint32_t crc = crc32(payload);
  if (crc != out.header.payload_crc32) {
    throw std::runtime_error{strfmt("%s: segment CRC mismatch (stored %08x, computed %08x)",
                                    source.c_str(), out.header.payload_crc32, crc)};
  }
  Cursor c{payload, 0, &source, "segment payload"};
  SimTime prev = SimTime::from_us(std::numeric_limits<std::int64_t>::min());
  for (std::uint32_t i = 0; i < out.header.record_count; ++i) {
    const std::uint32_t len = c.u32();
    if (c.pos + len > payload.size()) {
      throw std::runtime_error{strfmt("%s: record %u overruns segment payload",
                                      source.c_str(), i)};
    }
    Cursor body{payload.substr(c.pos, len), 0, &source, "record body"};
    c.pos += len;
    SimTime ts;
    if (out.header.kind == RecordKind::kConn) {
      out.conns.push_back(decode_conn(body));
      ts = out.conns.back().start;
    } else {
      out.dns.push_back(decode_dns(body));
      ts = out.dns.back().ts;
    }
    if (ts < prev) {
      throw std::runtime_error{strfmt("%s: record %u timestamps out of order",
                                      source.c_str(), i)};
    }
    prev = ts;
  }
  if (c.pos != payload.size()) {
    throw std::runtime_error{strfmt("%s: %zu trailing bytes after %u records",
                                    source.c_str(), payload.size() - c.pos,
                                    out.header.record_count)};
  }
  return out;
}

void write_segment_file(const std::string& path, std::string_view blob) {
  std::ofstream os{path, std::ios::binary};
  if (!os) throw std::runtime_error{"cannot open " + path};
  os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!os) throw std::runtime_error{"short write to " + path};
}

SegmentData read_segment_file(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  if (!is) throw std::runtime_error{"cannot open " + path};
  std::string blob{std::istreambuf_iterator<char>{is}, std::istreambuf_iterator<char>{}};
  return parse_segment(blob, path);
}

}  // namespace dnsctx::stream
