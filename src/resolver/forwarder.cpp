#include "resolver/forwarder.hpp"

#include <algorithm>

namespace dnsctx::resolver {

WholeHouseForwarder::WholeHouseForwarder(netsim::Simulator& sim, netsim::HouseGateway& gateway,
                                         Ipv4Addr forwarder_ip, dns::CacheConfig cache_cfg,
                                         std::uint64_t seed)
    : sim_{sim},
      gateway_{gateway},
      forwarder_ip_{forwarder_ip},
      cache_{cache_cfg},
      rng_{seed} {
  gateway_.attach_device(forwarder_ip_, this);
  gateway_.set_dns_intercept([this](const netsim::Packet& p) { return on_device_query(p); });
}

bool WholeHouseForwarder::on_device_query(const netsim::Packet& p) {
  if (p.src_ip == forwarder_ip_) return false;  // our own upstream relay
  if (p.dns.empty()) return false;
  const dns::DnsMessage* msg = p.dns.message();
  if (msg == nullptr || msg->flags.qr || msg->questions.empty()) return false;
  const dns::Question& q = msg->questions.front();

  if (auto hit = cache_.lookup(q.qname, q.qtype, sim_.now()); hit && !hit->expired) {
    const auto remaining = std::max<std::int64_t>(
        1, (hit->expires_at - sim_.now()).count_us() / 1'000'000);
    answer_device(p, *msg, std::move(hit->answers), hit->rcode,
                  static_cast<std::uint32_t>(remaining));
    return true;
  }

  // Miss: relay upstream with our own transaction id and source port so
  // the response routes back through the NAT to us, not the device.
  const std::uint16_t txid = next_txid_ == 0 ? ++next_txid_ : next_txid_;
  ++next_txid_;
  upstream_.emplace(txid, Relayed{p, *msg});

  dns::DnsMessage relay = dns::DnsMessage::query(txid, q.qname, q.qtype);
  netsim::Packet up;
  up.src_ip = forwarder_ip_;
  up.dst_ip = p.dst_ip;  // same upstream resolver the device chose
  up.src_port = next_port_;
  next_port_ = next_port_ >= 64'000 ? std::uint16_t{30'000}
                                    : static_cast<std::uint16_t>(next_port_ + 1);
  up.dst_port = 53;
  up.proto = Proto::kUdp;
  up.dns = dns::DnsPayload::from_message(std::move(relay));
  ++upstream_queries_;
  gateway_.from_device(std::move(up));
  return true;
}

void WholeHouseForwarder::receive(const netsim::Packet& p) {
  if (p.dns.empty() || p.proto != Proto::kUdp || p.src_port != 53) return;
  const dns::DnsMessage* msg = p.dns.message();
  if (msg == nullptr || !msg->flags.qr) return;
  const auto it = upstream_.find(msg->id);
  if (it == upstream_.end()) return;
  const Relayed relayed = std::move(it->second);
  upstream_.erase(it);

  cache_.insert(relayed.query.questions.front().qname, relayed.query.questions.front().qtype,
                msg->answers, msg->flags.rcode, sim_.now());
  const std::uint32_t ttl = msg->min_answer_ttl();
  answer_device(relayed.original_query, relayed.query, msg->answers, msg->flags.rcode,
                std::max<std::uint32_t>(ttl, 1));
}

void WholeHouseForwarder::answer_device(const netsim::Packet& original_query,
                                        const dns::DnsMessage& query,
                                        std::vector<dns::ResourceRecord> answers,
                                        dns::Rcode rcode, std::uint32_t remaining_ttl_sec) {
  for (auto& rr : answers) rr.ttl = remaining_ttl_sec;
  dns::DnsMessage resp = dns::DnsMessage::response(query, std::move(answers), rcode);

  netsim::Packet out;
  // Answer as the resolver the device addressed: the device's stub
  // accepts it, exactly as with a transparent middlebox.
  out.src_ip = original_query.dst_ip;
  out.dst_ip = original_query.src_ip;
  out.src_port = 53;
  out.dst_port = original_query.src_port;
  out.proto = Proto::kUdp;
  out.dns = dns::DnsPayload::from_message(std::move(resp));
  gateway_.deliver_to_device(std::move(out));
}

}  // namespace dnsctx::resolver
