#include "resolver/stub.hpp"

#include <utility>

namespace dnsctx::resolver {

StubResolver::StubResolver(netsim::Simulator& sim, Ipv4Addr device_ip, StubConfig cfg,
                           std::uint64_t seed, SendFn send)
    : sim_{sim},
      device_ip_{device_ip},
      cfg_{std::move(cfg)},
      rng_{seed},
      send_{std::move(send)},
      cache_{cfg_.cache} {}

void StubResolver::resolve(const dns::DomainName& name, Callback cb, bool speculative) {
  // 1. Device cache — including TTL-violating stale entries. The view
  // avoids copying the answer set; only A rdata is read out.
  if (auto hit = cache_.lookup_view(name, dns::RrType::kA, sim_.now())) {
    ResolveResult res;
    res.success = !hit->answers->empty();
    for (const auto& rr : *hit->answers) {
      if (rr.type == dns::RrType::kA) res.addrs.push_back(std::get<Ipv4Addr>(rr.rdata));
    }
    res.from_cache = true;
    res.used_expired = hit->expired;
    res.origin = hit->origin;
    res.first_use = hit->first_use;
    // A cache probe is not free but is far below network scale.
    sim_.after(SimDuration::us(50),
               [cb = std::move(cb), res = std::move(res)]() { cb(res); });
    return;
  }

  // 2. Join an in-flight query for the same name.
  if (const auto it = inflight_.find(InflightKeyRef{&name, dns::RrType::kA});
      it != inflight_.end()) {
    it->second->callbacks.push_back(std::move(cb));
    return;
  }

  // 3. New query.
  if (cfg_.resolver_addrs.empty()) {
    ResolveResult res;  // no resolver configured: immediate failure
    ++failures_;
    sim_.after(SimDuration::us(50),
               [cb = std::move(cb), res = std::move(res)]() { cb(res); });
    return;
  }
  auto pending = start_query(name, dns::RrType::kA, speculative);
  pending->callbacks.push_back(std::move(cb));

  // Happy eyeballs: dual-stack hosts race an AAAA query too.
  if (cfg_.aaaa_prob > 0.0 && rng_.bernoulli(cfg_.aaaa_prob) &&
      !inflight_.contains(InflightKeyRef{&name, dns::RrType::kAaaa}) &&
      !cache_.peek(name, dns::RrType::kAaaa, sim_.now())) {
    (void)start_query(name, dns::RrType::kAaaa, speculative);
  }
}

std::shared_ptr<StubResolver::Pending> StubResolver::start_query(const dns::DomainName& name,
                                                                 dns::RrType qtype,
                                                                 bool speculative) {
  auto pending = std::make_shared<Pending>();
  pending->name = name;
  pending->qtype = qtype;
  pending->speculative = speculative;
  pending->txid = next_txid_ == 0 ? ++next_txid_ : next_txid_;
  ++next_txid_;
  pending->src_port = alloc_port();
  pending->first_sent = sim_.now();
  inflight_.try_emplace(InflightKey{name, qtype}, pending);
  by_txid_.try_emplace(pending->txid, pending);
  send_query(pending);
  return pending;
}

void StubResolver::send_query(const std::shared_ptr<Pending>& pending) {
  ++pending->attempt_gen;  // invalidate timers armed for earlier attempts
  ++queries_sent_;
  if (netsim::traits_for(cfg_.transport).encrypted) {
    send_query_secure(pending);
  } else {
    send_query_udp(pending);
  }
  arm_timeout(pending);
}

void StubResolver::send_query_udp(const std::shared_ptr<Pending>& pending) {
  const Ipv4Addr resolver = cfg_.resolver_addrs[pending->resolver_idx];
  dns::DnsMessage q = dns::DnsMessage::query(pending->txid, pending->name, pending->qtype);
  netsim::Packet p;
  p.src_ip = device_ip_;
  p.dst_ip = resolver;
  p.src_port = pending->src_port;
  p.dst_port = cfg_.dns_port;
  p.proto = Proto::kUdp;
  p.dns = dns::DnsPayload::from_message(std::move(q));
  send_(std::move(p));
}

// ---- encrypted channels (DoT/DoH) ------------------------------------------

std::uint16_t StubResolver::alloc_port() {
  const std::uint16_t port = next_port_;
  next_port_ = next_port_ >= 64'000 ? std::uint16_t{20'000}
                                    : static_cast<std::uint16_t>(next_port_ + 1);
  return port;
}

StubResolver::Channel& StubResolver::channel_for(Ipv4Addr resolver) {
  auto it = channels_.find(resolver);
  if (it == channels_.end()) {
    const auto& traits = netsim::traits_for(cfg_.transport);
    it = channels_
             .try_emplace(resolver, std::make_unique<Channel>(resolver, traits.idle_timeout))
             .first;
  }
  return *it->second;
}

void StubResolver::open_channel(Channel& ch) {
  ch.local_port = alloc_port();
  secure_by_port_[ch.local_port] = &ch;
  netsim::Packet syn;
  syn.src_ip = device_ip_;
  syn.dst_ip = ch.resolver;
  syn.src_port = ch.local_port;
  syn.dst_port = netsim::traits_for(cfg_.transport).port;
  syn.proto = Proto::kTcp;
  syn.tcp = netsim::TcpFlags{.syn = true};
  send_(std::move(syn));
}

void StubResolver::send_channel_ctrl(const Channel& ch, netsim::TcpFlags flags,
                                     std::uint64_t payload_bytes) {
  netsim::Packet p;
  p.src_ip = device_ip_;
  p.dst_ip = ch.resolver;
  p.src_port = ch.local_port;
  p.dst_port = netsim::traits_for(cfg_.transport).port;
  p.proto = Proto::kTcp;
  p.tcp = flags;
  p.payload_bytes = payload_bytes;
  send_(std::move(p));
}

void StubResolver::send_secure_data(Channel& ch, const Pending& pending) {
  const auto& traits = netsim::traits_for(cfg_.transport);
  dns::DnsMessage q = dns::DnsMessage::query(pending.txid, pending.name, pending.qtype);
  netsim::Packet p;
  p.src_ip = device_ip_;
  p.dst_ip = ch.resolver;
  p.src_port = ch.local_port;
  p.dst_port = traits.port;
  p.proto = Proto::kTcp;
  p.tcp = netsim::TcpFlags{.ack = true};
  p.dns = dns::DnsPayload::from_message(std::move(q));
  // The tap's view of this packet is header + payload_bytes + DNS wire
  // size; pad so the observable ciphertext is the RFC 8467 padded size
  // plus framing, never the true message size.
  const auto wire = static_cast<std::uint64_t>(p.dns.wire_size());
  p.payload_bytes =
      netsim::padded_payload(wire, traits.query_pad_block, traits.per_message_overhead) -
      wire;
  send_(std::move(p));
  ch.chan.touch(sim_.now());
  arm_idle(ch);
}

void StubResolver::arm_idle(Channel& ch) {
  const std::uint64_t gen = ++ch.idle_gen;
  sim_.after(ch.chan.idle_timeout(), [this, &ch, gen]() {
    if (ch.idle_gen != gen) return;
    if (!ch.chan.idle_expired(sim_.now())) return;
    // Close our half; the mapping stays until the peer's FIN-ACK so the
    // device still routes it to us.
    send_channel_ctrl(ch, netsim::TcpFlags{.ack = true, .fin = true}, 0);
    ch.chan.close();
    ch.queued.clear();
    ch.local_port = 0;
  });
}

void StubResolver::send_query_secure(const std::shared_ptr<Pending>& pending) {
  Channel& ch = channel_for(cfg_.resolver_addrs[pending->resolver_idx]);
  const SimTime now = sim_.now();
  if (ch.chan.acquire(now)) {
    // Cold (or idle-expired): TCP+TLS handshake first, query queued.
    open_channel(ch);
    ch.queued.push_back(pending->txid);
    return;
  }
  if (ch.chan.state() == netsim::SecureChannel::State::kHandshaking) {
    bool queued = false;
    for (const std::uint16_t txid : ch.queued) queued |= txid == pending->txid;
    if (queued) {
      // Retransmission while the handshake is still pending (e.g. the
      // resolver is in outage): re-fire the SYN from the same port.
      send_channel_ctrl(ch, netsim::TcpFlags{.syn = true}, 0);
    } else {
      ch.queued.push_back(pending->txid);
    }
    return;
  }
  send_secure_data(ch, *pending);
}

void StubResolver::on_secure(const netsim::Packet& p) {
  const auto it = secure_by_port_.find(p.dst_port);
  if (it == secure_by_port_.end()) return;  // late segment for a closed channel
  Channel& ch = *it->second;
  if (p.src_ip != ch.resolver) return;
  if (p.tcp.rst) {
    secure_by_port_.erase(p.dst_port);
    if (ch.local_port == p.dst_port) {
      ch.chan.close();
      ch.queued.clear();
      ch.local_port = 0;
    }
    return;
  }
  if (p.tcp.syn && p.tcp.ack) {
    // TCP established: second handshake RTT carries the TLS ClientHello.
    send_channel_ctrl(ch, netsim::TcpFlags{.ack = true},
                      netsim::traits_for(cfg_.transport).client_hello_bytes);
    return;
  }
  if (p.tcp.fin) {
    // Peer's half of a close we initiated (or a server-side teardown).
    secure_by_port_.erase(p.dst_port);
    if (ch.local_port == p.dst_port) {
      ch.chan.close();
      ch.queued.clear();
      ch.local_port = 0;
    }
    return;
  }
  if (p.dns.empty()) {
    if (p.payload_bytes == 0) return;
    // ServerHello..Finished: the channel is up — flush queued queries.
    if (ch.chan.state() != netsim::SecureChannel::State::kHandshaking) return;
    ch.chan.established(sim_.now());
    const std::vector<std::uint16_t> queued = std::move(ch.queued);
    ch.queued.clear();
    for (const std::uint16_t txid : queued) {
      const auto pit = by_txid_.find(txid);
      if (pit == by_txid_.end()) continue;
      const auto& pending = pit->second;
      if (pending->done) continue;
      if (cfg_.resolver_addrs[pending->resolver_idx] != ch.resolver) continue;
      send_secure_data(ch, *pending);
    }
    arm_idle(ch);
    return;
  }
  const dns::DnsMessage* msg = p.dns.message();
  if (msg == nullptr || !msg->flags.qr) return;
  const auto pit = by_txid_.find(msg->id);
  if (pit == by_txid_.end()) return;
  const auto pending = pit->second;
  if (pending->done) return;
  if (cfg_.resolver_addrs[pending->resolver_idx] != ch.resolver) return;
  ch.chan.touch(sim_.now());
  arm_idle(ch);
  if (msg->flags.rcode == dns::Rcode::kServFail &&
      pending->resolver_idx + 1 < cfg_.resolver_addrs.size()) {
    // Same fast failover as the UDP path; the retry rides (or opens)
    // the next resolver's channel.
    ++servfail_failovers_;
    ++pending->resolver_idx;
    pending->attempts_on_resolver = 0;
    send_query(pending);
    return;
  }
  // No TC handling: stream transports never truncate (RFC 7858 §3.3).
  deliver_response(pending, *msg);
}

std::uint64_t StubResolver::secure_handshakes() const {
  std::uint64_t total = 0;
  for (const auto& [addr, ch] : channels_) total += ch->chan.handshakes();
  return total;
}

std::uint64_t StubResolver::secure_reuses() const {
  std::uint64_t total = 0;
  for (const auto& [addr, ch] : channels_) total += ch->chan.reuses();
  return total;
}

void StubResolver::insert_pushed(const dns::DomainName& name,
                                 std::vector<dns::ResourceRecord> answers, SimTime now) {
  ++pushed_inserts_;
  cache_.insert(name, dns::RrType::kA, std::move(answers), dns::Rcode::kNoError, now,
                SimDuration::zero(), dns::CacheOrigin::kPushed);
}

SimDuration StubResolver::attempt_timeout(const Pending& pending) const {
  if (cfg_.retry_backoff == 1.0) return cfg_.query_timeout;
  // Multiply out instead of pow(): bit-exact across libm versions.
  double scale = 1.0;
  for (int i = 0; i < pending.timeouts; ++i) scale *= cfg_.retry_backoff;
  const double us = static_cast<double>(cfg_.query_timeout.count_us()) * scale;
  const double cap = static_cast<double>(cfg_.max_query_timeout.count_us());
  return SimDuration::us(static_cast<std::int64_t>(us < cap ? us : cap));
}

bool StubResolver::try_next_attempt(const std::shared_ptr<Pending>& pending) {
  if (pending->attempts_on_resolver < cfg_.retries_per_resolver) {
    ++pending->attempts_on_resolver;
    send_query(pending);
    return true;
  }
  if (pending->resolver_idx + 1 < cfg_.resolver_addrs.size()) {
    ++pending->resolver_idx;
    pending->attempts_on_resolver = 0;
    send_query(pending);
    return true;
  }
  return false;
}

void StubResolver::arm_timeout(const std::shared_ptr<Pending>& pending) {
  const std::uint32_t gen = pending->attempt_gen;
  sim_.after(attempt_timeout(*pending), [this, pending, gen]() {
    if (pending->done || pending->attempt_gen != gen) return;
    if (pending->via_tcp) {
      // The TCP retry itself stalled: give up (terminal failure).
      tcp_by_port_.erase(pending->tcp_port);
      ++failures_;
      finish(pending, ResolveResult{});
      return;
    }
    ++pending->timeouts;
    if (try_next_attempt(pending)) return;
    ++failures_;
    finish(pending, ResolveResult{});  // terminal failure
  });
}

void StubResolver::on_response(const netsim::Packet& p) {
  if (p.dns.empty()) return;
  const dns::DnsMessage* msg = p.dns.message();
  if (msg == nullptr || !msg->flags.qr) return;
  const auto it = by_txid_.find(msg->id);
  if (it == by_txid_.end()) return;
  const auto pending = it->second;
  if (pending->done) return;
  // Anti-spoofing checks a real stub performs: source and port match.
  if (p.src_ip != cfg_.resolver_addrs[pending->resolver_idx] ||
      p.dst_port != pending->src_port) {
    return;
  }

  if (msg->flags.rcode == dns::Rcode::kServFail && !pending->via_tcp &&
      pending->resolver_idx + 1 < cfg_.resolver_addrs.size()) {
    // Real stubs fail over on SERVFAIL right away instead of burning
    // the retransmission budget on a resolver that answered "broken"
    // (glibc / systemd-resolved behaviour). The timer armed for this
    // attempt goes stale: send_query bumps attempt_gen past it.
    ++servfail_failovers_;
    ++pending->resolver_idx;
    pending->attempts_on_resolver = 0;
    send_query(pending);
    return;
  }

  if (msg->flags.tc && cfg_.tcp_fallback && !pending->via_tcp) {
    // Truncated: the answer did not fit in a 512-byte UDP payload.
    // Re-ask the same resolver over TCP (RFC 1035 §4.2.2).
    begin_tcp_fallback(pending);
    return;
  }
  deliver_response(pending, *msg);
}

void StubResolver::deliver_response(const std::shared_ptr<Pending>& pending,
                                    const dns::DnsMessage& msg) {
  ResolveResult res;
  res.resolver = cfg_.resolver_addrs[pending->resolver_idx];
  res.lookup_time = sim_.now() - pending->first_sent;
  res.success = msg.flags.rcode == dns::Rcode::kNoError && !msg.answers.empty();
  res.addrs = msg.answer_addresses();
  res.origin = pending->speculative ? dns::CacheOrigin::kSpeculative : dns::CacheOrigin::kQuery;
  res.upstream_cache_hit = msg.truth_cache_hit;

  // Cache the outcome. Some entries get a TTL-violating extra hold —
  // applications and OS caches holding bindings past expiry.
  SimDuration extra = SimDuration::zero();
  if (rng_.bernoulli(cfg_.ttl_violation_prob)) {
    extra = SimDuration::from_sec(rng_.lognormal(cfg_.hold_mu, cfg_.hold_sigma));
  }
  if (pending->speculative) {
    const auto browser_hold = SimDuration::from_sec(
        rng_.uniform(cfg_.speculative_hold_min_sec, cfg_.speculative_hold_max_sec));
    extra = std::max(extra, browser_hold);
  }
  if (res.success || pending->qtype != dns::RrType::kA) {
    cache_.insert(pending->name, pending->qtype, msg.answers, msg.flags.rcode, sim_.now(),
                  extra,
                  pending->speculative ? dns::CacheOrigin::kSpeculative
                                       : dns::CacheOrigin::kQuery);
  } else {
    // Negative caching (RFC 2308): hold NXDOMAIN/NODATA for a few
    // minutes so repeated misses don't re-query immediately. SERVFAIL
    // marks a transient server problem and is held much shorter
    // (RFC 2308 §7.1), so recovery retries aren't suppressed.
    const SimDuration neg_hold = msg.flags.rcode == dns::Rcode::kServFail
                                     ? SimDuration::sec(30)
                                     : SimDuration::sec(300);
    cache_.insert(pending->name, dns::RrType::kA, {}, msg.flags.rcode, sim_.now(), neg_hold);
  }
  if (!res.success && pending->qtype == dns::RrType::kA) ++failures_;
  finish(pending, std::move(res));
}

void StubResolver::send_tcp(const std::shared_ptr<Pending>& pending, netsim::TcpFlags flags,
                            dns::DnsPayload payload) {
  netsim::Packet p;
  p.src_ip = device_ip_;
  p.dst_ip = cfg_.resolver_addrs[pending->resolver_idx];
  p.src_port = pending->tcp_port;
  p.dst_port = 53;
  p.proto = Proto::kTcp;
  p.tcp = flags;
  p.dns = std::move(payload);
  send_(std::move(p));
}

void StubResolver::begin_tcp_fallback(const std::shared_ptr<Pending>& pending) {
  ++tcp_fallbacks_;
  pending->via_tcp = true;
  pending->tcp_port = alloc_port();
  tcp_by_port_[pending->tcp_port] = pending;
  send_tcp(pending, netsim::TcpFlags{.syn = true});
  arm_timeout(pending);  // TCP retries time out through the same machinery
}

void StubResolver::on_tcp(const netsim::Packet& p) {
  const auto it = tcp_by_port_.find(p.dst_port);
  if (it == tcp_by_port_.end()) return;  // late segment for a done exchange
  const auto pending = it->second;
  if (pending->done) {
    tcp_by_port_.erase(p.dst_port);
    return;
  }
  if (p.tcp.rst) return;
  if (p.tcp.syn && p.tcp.ack) {
    // Connection up: ship the query bytes.
    dns::DnsMessage q = dns::DnsMessage::query(pending->txid, pending->name, pending->qtype);
    send_tcp(pending, netsim::TcpFlags{.ack = true}, dns::DnsPayload::from_message(std::move(q)));
    return;
  }
  if (!p.dns.empty()) {
    const dns::DnsMessage* msg = p.dns.message();
    if (msg == nullptr || !msg->flags.qr || msg->id != pending->txid) return;
    send_tcp(pending, netsim::TcpFlags{.ack = true, .fin = true});  // close our half
    tcp_by_port_.erase(pending->tcp_port);
    deliver_response(pending, *msg);
  }
}

void StubResolver::finish(const std::shared_ptr<Pending>& pending, ResolveResult result) {
  pending->done = true;
  by_txid_.erase(pending->txid);
  inflight_.erase(InflightKeyRef{&pending->name, pending->qtype});
  for (auto& cb : pending->callbacks) cb(result);
  pending->callbacks.clear();
}

}  // namespace dnsctx::resolver
