#include "resolver/stub.hpp"

#include <utility>

namespace dnsctx::resolver {

StubResolver::StubResolver(netsim::Simulator& sim, Ipv4Addr device_ip, StubConfig cfg,
                           std::uint64_t seed, SendFn send)
    : sim_{sim},
      device_ip_{device_ip},
      cfg_{std::move(cfg)},
      rng_{seed},
      send_{std::move(send)},
      cache_{cfg_.cache} {}

void StubResolver::resolve(const dns::DomainName& name, Callback cb, bool speculative) {
  // 1. Device cache — including TTL-violating stale entries. The view
  // avoids copying the answer set; only A rdata is read out.
  if (auto hit = cache_.lookup_view(name, dns::RrType::kA, sim_.now())) {
    ResolveResult res;
    res.success = !hit->answers->empty();
    for (const auto& rr : *hit->answers) {
      if (rr.type == dns::RrType::kA) res.addrs.push_back(std::get<Ipv4Addr>(rr.rdata));
    }
    res.from_cache = true;
    res.used_expired = hit->expired;
    // A cache probe is not free but is far below network scale.
    sim_.after(SimDuration::us(50),
               [cb = std::move(cb), res = std::move(res)]() { cb(res); });
    return;
  }

  // 2. Join an in-flight query for the same name.
  if (const auto it = inflight_.find(InflightKeyRef{&name, dns::RrType::kA});
      it != inflight_.end()) {
    it->second->callbacks.push_back(std::move(cb));
    return;
  }

  // 3. New query.
  if (cfg_.resolver_addrs.empty()) {
    ResolveResult res;  // no resolver configured: immediate failure
    ++failures_;
    sim_.after(SimDuration::us(50),
               [cb = std::move(cb), res = std::move(res)]() { cb(res); });
    return;
  }
  auto pending = start_query(name, dns::RrType::kA, speculative);
  pending->callbacks.push_back(std::move(cb));

  // Happy eyeballs: dual-stack hosts race an AAAA query too.
  if (cfg_.aaaa_prob > 0.0 && rng_.bernoulli(cfg_.aaaa_prob) &&
      !inflight_.contains(InflightKeyRef{&name, dns::RrType::kAaaa}) &&
      !cache_.peek(name, dns::RrType::kAaaa, sim_.now())) {
    (void)start_query(name, dns::RrType::kAaaa, speculative);
  }
}

std::shared_ptr<StubResolver::Pending> StubResolver::start_query(const dns::DomainName& name,
                                                                 dns::RrType qtype,
                                                                 bool speculative) {
  auto pending = std::make_shared<Pending>();
  pending->name = name;
  pending->qtype = qtype;
  pending->speculative = speculative;
  pending->txid = next_txid_ == 0 ? ++next_txid_ : next_txid_;
  ++next_txid_;
  pending->src_port = next_port_;
  next_port_ = next_port_ >= 64'000 ? std::uint16_t{20'000}
                                    : static_cast<std::uint16_t>(next_port_ + 1);
  pending->first_sent = sim_.now();
  inflight_.try_emplace(InflightKey{name, qtype}, pending);
  by_txid_.try_emplace(pending->txid, pending);
  send_query(pending);
  return pending;
}

void StubResolver::send_query(const std::shared_ptr<Pending>& pending) {
  ++pending->attempt_gen;  // invalidate timers armed for earlier attempts
  const Ipv4Addr resolver = cfg_.resolver_addrs[pending->resolver_idx];
  dns::DnsMessage q = dns::DnsMessage::query(pending->txid, pending->name, pending->qtype);
  netsim::Packet p;
  p.src_ip = device_ip_;
  p.dst_ip = resolver;
  p.src_port = pending->src_port;
  p.dst_port = cfg_.dns_port;
  p.proto = Proto::kUdp;
  p.dns = dns::DnsPayload::from_message(std::move(q));
  ++queries_sent_;
  send_(std::move(p));
  arm_timeout(pending);
}

SimDuration StubResolver::attempt_timeout(const Pending& pending) const {
  if (cfg_.retry_backoff == 1.0) return cfg_.query_timeout;
  // Multiply out instead of pow(): bit-exact across libm versions.
  double scale = 1.0;
  for (int i = 0; i < pending.timeouts; ++i) scale *= cfg_.retry_backoff;
  const double us = static_cast<double>(cfg_.query_timeout.count_us()) * scale;
  const double cap = static_cast<double>(cfg_.max_query_timeout.count_us());
  return SimDuration::us(static_cast<std::int64_t>(us < cap ? us : cap));
}

bool StubResolver::try_next_attempt(const std::shared_ptr<Pending>& pending) {
  if (pending->attempts_on_resolver < cfg_.retries_per_resolver) {
    ++pending->attempts_on_resolver;
    send_query(pending);
    return true;
  }
  if (pending->resolver_idx + 1 < cfg_.resolver_addrs.size()) {
    ++pending->resolver_idx;
    pending->attempts_on_resolver = 0;
    send_query(pending);
    return true;
  }
  return false;
}

void StubResolver::arm_timeout(const std::shared_ptr<Pending>& pending) {
  const std::uint32_t gen = pending->attempt_gen;
  sim_.after(attempt_timeout(*pending), [this, pending, gen]() {
    if (pending->done || pending->attempt_gen != gen) return;
    if (pending->via_tcp) {
      // The TCP retry itself stalled: give up (terminal failure).
      tcp_by_port_.erase(pending->tcp_port);
      ++failures_;
      finish(pending, ResolveResult{});
      return;
    }
    ++pending->timeouts;
    if (try_next_attempt(pending)) return;
    ++failures_;
    finish(pending, ResolveResult{});  // terminal failure
  });
}

void StubResolver::on_response(const netsim::Packet& p) {
  if (p.dns.empty()) return;
  const dns::DnsMessage* msg = p.dns.message();
  if (msg == nullptr || !msg->flags.qr) return;
  const auto it = by_txid_.find(msg->id);
  if (it == by_txid_.end()) return;
  const auto pending = it->second;
  if (pending->done) return;
  // Anti-spoofing checks a real stub performs: source and port match.
  if (p.src_ip != cfg_.resolver_addrs[pending->resolver_idx] ||
      p.dst_port != pending->src_port) {
    return;
  }

  if (msg->flags.rcode == dns::Rcode::kServFail && !pending->via_tcp &&
      pending->resolver_idx + 1 < cfg_.resolver_addrs.size()) {
    // Real stubs fail over on SERVFAIL right away instead of burning
    // the retransmission budget on a resolver that answered "broken"
    // (glibc / systemd-resolved behaviour). The timer armed for this
    // attempt goes stale: send_query bumps attempt_gen past it.
    ++servfail_failovers_;
    ++pending->resolver_idx;
    pending->attempts_on_resolver = 0;
    send_query(pending);
    return;
  }

  if (msg->flags.tc && cfg_.tcp_fallback && !pending->via_tcp) {
    // Truncated: the answer did not fit in a 512-byte UDP payload.
    // Re-ask the same resolver over TCP (RFC 1035 §4.2.2).
    begin_tcp_fallback(pending);
    return;
  }
  deliver_response(pending, *msg);
}

void StubResolver::deliver_response(const std::shared_ptr<Pending>& pending,
                                    const dns::DnsMessage& msg) {
  ResolveResult res;
  res.resolver = cfg_.resolver_addrs[pending->resolver_idx];
  res.lookup_time = sim_.now() - pending->first_sent;
  res.success = msg.flags.rcode == dns::Rcode::kNoError && !msg.answers.empty();
  res.addrs = msg.answer_addresses();

  // Cache the outcome. Some entries get a TTL-violating extra hold —
  // applications and OS caches holding bindings past expiry.
  SimDuration extra = SimDuration::zero();
  if (rng_.bernoulli(cfg_.ttl_violation_prob)) {
    extra = SimDuration::from_sec(rng_.lognormal(cfg_.hold_mu, cfg_.hold_sigma));
  }
  if (pending->speculative) {
    const auto browser_hold = SimDuration::from_sec(
        rng_.uniform(cfg_.speculative_hold_min_sec, cfg_.speculative_hold_max_sec));
    extra = std::max(extra, browser_hold);
  }
  if (res.success || pending->qtype != dns::RrType::kA) {
    cache_.insert(pending->name, pending->qtype, msg.answers, msg.flags.rcode, sim_.now(),
                  extra);
  } else {
    // Negative caching (RFC 2308): hold NXDOMAIN/NODATA for a few
    // minutes so repeated misses don't re-query immediately. SERVFAIL
    // marks a transient server problem and is held much shorter
    // (RFC 2308 §7.1), so recovery retries aren't suppressed.
    const SimDuration neg_hold = msg.flags.rcode == dns::Rcode::kServFail
                                     ? SimDuration::sec(30)
                                     : SimDuration::sec(300);
    cache_.insert(pending->name, dns::RrType::kA, {}, msg.flags.rcode, sim_.now(), neg_hold);
  }
  if (!res.success && pending->qtype == dns::RrType::kA) ++failures_;
  finish(pending, std::move(res));
}

void StubResolver::send_tcp(const std::shared_ptr<Pending>& pending, netsim::TcpFlags flags,
                            dns::DnsPayload payload) {
  netsim::Packet p;
  p.src_ip = device_ip_;
  p.dst_ip = cfg_.resolver_addrs[pending->resolver_idx];
  p.src_port = pending->tcp_port;
  p.dst_port = 53;
  p.proto = Proto::kTcp;
  p.tcp = flags;
  p.dns = std::move(payload);
  send_(std::move(p));
}

void StubResolver::begin_tcp_fallback(const std::shared_ptr<Pending>& pending) {
  ++tcp_fallbacks_;
  pending->via_tcp = true;
  pending->tcp_port = next_port_;
  next_port_ = next_port_ >= 64'000 ? std::uint16_t{20'000}
                                    : static_cast<std::uint16_t>(next_port_ + 1);
  tcp_by_port_[pending->tcp_port] = pending;
  send_tcp(pending, netsim::TcpFlags{.syn = true});
  arm_timeout(pending);  // TCP retries time out through the same machinery
}

void StubResolver::on_tcp(const netsim::Packet& p) {
  const auto it = tcp_by_port_.find(p.dst_port);
  if (it == tcp_by_port_.end()) return;  // late segment for a done exchange
  const auto pending = it->second;
  if (pending->done) {
    tcp_by_port_.erase(p.dst_port);
    return;
  }
  if (p.tcp.rst) return;
  if (p.tcp.syn && p.tcp.ack) {
    // Connection up: ship the query bytes.
    dns::DnsMessage q = dns::DnsMessage::query(pending->txid, pending->name, pending->qtype);
    send_tcp(pending, netsim::TcpFlags{.ack = true}, dns::DnsPayload::from_message(std::move(q)));
    return;
  }
  if (!p.dns.empty()) {
    const dns::DnsMessage* msg = p.dns.message();
    if (msg == nullptr || !msg->flags.qr || msg->id != pending->txid) return;
    send_tcp(pending, netsim::TcpFlags{.ack = true, .fin = true});  // close our half
    tcp_by_port_.erase(pending->tcp_port);
    deliver_response(pending, *msg);
  }
}

void StubResolver::finish(const std::shared_ptr<Pending>& pending, ResolveResult result) {
  pending->done = true;
  by_txid_.erase(pending->txid);
  inflight_.erase(InflightKeyRef{&pending->name, pending->qtype});
  for (auto& cb : pending->callbacks) cb(result);
  pending->callbacks.clear();
}

}  // namespace dnsctx::resolver
