// dnsctx — recursive resolver platforms (the ISP's resolvers and the
// public anycast platforms: Google, Cloudflare, OpenDNS).
//
// Each platform models the behaviours behind the paper's §5.3/§7 results:
//   * a shared cache, possibly sharded across frontends — random load
//     balancing across many shards fragments the cache (low observed hit
//     rate, à la Google's 23.0%), while name-hashed sharding behaves as
//     one big cache (Cloudflare's 83.6%),
//   * "ambient warmth": a platform serving a large external user base
//     has popular names cached regardless of this neighborhood's history,
//   * authoritative fan-out delay on misses (1..3 upstream queries plus
//     occasional retransmission tails),
//   * TTL clamping, and CDN-geo quality of the answers it fetches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dns/cache.hpp"
#include "dns/codec.hpp"
#include "faults/injector.hpp"
#include "netsim/network.hpp"
#include "resolver/zonedb.hpp"

namespace dnsctx::resolver {

struct PlatformConfig {
  std::string name = "Local";
  std::vector<Ipv4Addr> addrs;
  netsim::SiteProfile site;              ///< distance from the aggregation point
  std::size_t frontends = 1;             ///< cache shards
  bool shard_by_name = false;            ///< true: queries for a name always hit the same shard
  bool shard_by_addr = false;            ///< true: shard = queried service address (discrete
                                         ///< resolver boxes, like the ISP's two resolvers)
  dns::CacheConfig cache;                ///< per-shard cache config
  GeoQuality geo;                        ///< CDN edge-selection quality
  double ambient_warmth = 0.0;           ///< miss→hit conversion scale for popular names
  double ambient_pop_exp = 0.3;          ///< popularity exponent for ambient conversion
  double auth_rtt_ms_mean = 25.0;        ///< mean per-authoritative-query delay
  double extra_auth_query_prob = 0.3;    ///< chance each additional upstream query is needed
  double slow_tail_prob = 0.02;          ///< chance of a retransmission-scale stall
  double slow_tail_ms_mean = 900.0;      ///< magnitude of such stalls
  double proc_ms = 0.2;                  ///< fixed per-query processing time
};

/// Ground-truth counters (the passive monitor cannot see these; tests
/// and EXPERIMENTS.md use them to validate the paper's heuristics).
struct PlatformStats {
  std::uint64_t queries = 0;
  std::uint64_t shard_hits = 0;
  std::uint64_t ambient_hits = 0;
  std::uint64_t auth_resolutions = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t truncated_udp = 0;  ///< responses that exceeded 512 B over UDP/53
  std::uint64_t servfail_injected = 0;  ///< failures injected by the fault plan
  std::uint64_t nxdomain_injected = 0;  ///< spurious NXDOMAINs from the fault plan
  std::uint64_t outage_dropped = 0;     ///< packets swallowed during a timed outage

  [[nodiscard]] double cache_hit_rate() const {
    return queries ? static_cast<double>(shard_hits + ambient_hits) /
                         static_cast<double>(queries)
                   : 0.0;
  }
};

/// One resolver platform attached to the WAN at its service addresses.
class RecursiveResolverPlatform : public netsim::Host {
 public:
  RecursiveResolverPlatform(netsim::Simulator& sim, netsim::Network& net, const ZoneDb& zones,
                            PlatformConfig cfg, std::uint64_t seed);

  void receive(const netsim::Packet& p) override;

  /// Arm plan-driven failures. The fault RNG is a dedicated stream so
  /// arming (or re-arming) never perturbs the platform's own draws;
  /// an inactive config keeps the baseline byte-identical.
  void set_faults(faults::ResolverFaultConfig cfg, std::uint64_t seed);

  [[nodiscard]] const PlatformConfig& config() const { return cfg_; }
  [[nodiscard]] const PlatformStats& stats() const { return stats_; }

  /// Total entries across shards (diagnostics).
  [[nodiscard]] std::size_t cached_entries() const;

 private:
  void answer(const netsim::Packet& query, const dns::DnsMessage& msg);
  /// `truth_cache_hit` tags the response's sim-internal ground-truth
  /// annotation (shared-cache vs authoritative answer) for TruthTap.
  void respond(const netsim::Packet& query, const dns::DnsMessage& msg,
               std::vector<dns::ResourceRecord> answers, dns::Rcode rcode, SimDuration delay,
               bool truth_cache_hit = false);
  [[nodiscard]] std::size_t shard_for(const dns::DomainName& qname, Ipv4Addr service_addr);
  [[nodiscard]] SimDuration sample_auth_delay();

  netsim::Simulator& sim_;
  netsim::Network& net_;
  const ZoneDb& zones_;
  PlatformConfig cfg_;
  Rng rng_;
  std::vector<dns::DnsCache> shards_;
  PlatformStats stats_;
  faults::ResolverFaultConfig faults_;
  std::unique_ptr<Rng> fault_rng_;  ///< null until set_faults() arms a plan
};

/// Build the paper's four platforms (Table 1) with calibrated profiles:
/// Local ISP (RTT ≈ 2 ms), Google (≈ 20 ms), OpenDNS (≈ 20 ms),
/// Cloudflare (≈ 9 ms). Returned in that order.
[[nodiscard]] std::vector<PlatformConfig> default_platforms();

/// Well-known service addresses used by default_platforms().
namespace well_known {
inline constexpr Ipv4Addr kIspResolver1{100, 66, 250, 1};
inline constexpr Ipv4Addr kIspResolver2{100, 66, 250, 2};
inline constexpr Ipv4Addr kGoogle1{8, 8, 8, 8};
inline constexpr Ipv4Addr kGoogle2{8, 8, 4, 4};
inline constexpr Ipv4Addr kCloudflare1{1, 1, 1, 1};
inline constexpr Ipv4Addr kCloudflare2{1, 0, 0, 1};
inline constexpr Ipv4Addr kOpenDns1{208, 67, 222, 222};
inline constexpr Ipv4Addr kOpenDns2{208, 67, 220, 220};
}  // namespace well_known

}  // namespace dnsctx::resolver
