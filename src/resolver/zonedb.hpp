// dnsctx — the authoritative DNS universe for the simulation.
//
// ZoneDb deterministically generates a population of resolvable hostnames
// with the properties the paper's analysis is sensitive to:
//   * Zipf name popularity (drives shared-resolver cache hit rates),
//   * per-service TTL regimes (CDN assets are short-lived, origins long),
//   * shared hosting pools (multiple names per IP → DN-Hunter ambiguity,
//     §4 reports 82% of connections have a unique candidate),
//   * CDN zones whose answer depends on the querying resolver platform's
//     geolocation quality (drives the §7/Fig 3 throughput differences),
//   * per-address throughput factors consumed by the traffic model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/message.hpp"
#include "dns/name.hpp"
#include "util/ip.hpp"
#include "util/rng.hpp"

namespace dnsctx::resolver {

/// Stable index of a hostname within the ZoneDb.
using NameId = std::uint32_t;

/// What a hostname is used for; drives TTLs, address pools and the
/// traffic model's transfer profiles.
enum class ServiceClass : std::uint8_t {
  kWebOrigin,   ///< primary site hostname (www.*)
  kCdnAsset,    ///< shared CDN asset host (images/js), short TTL
  kAdNetwork,   ///< advertising, short TTL, many tiny transfers
  kTracker,     ///< analytics beacons
  kApi,         ///< service APIs / backend endpoints
  kVideo,       ///< streaming manifests + segments
  kConnCheck,   ///< connectivitycheck.gstatic.com analog (§7 artifact)
  kOther,       ///< long-tail misc names
};

[[nodiscard]] std::string_view to_string(ServiceClass s);

/// One resolvable hostname and its authoritative data.
struct HostRecord {
  dns::DomainName name;
  ServiceClass service = ServiceClass::kOther;
  std::uint32_t ttl_sec = 300;
  /// Non-CDN: the full authoritative address set. CDN: the union of all
  /// edges (per-query answers pick a subset based on resolver geo).
  std::vector<Ipv4Addr> addrs;
  bool cdn = false;
  /// CDN names usually answer through a CNAME into the CDN's own zone
  /// ("assets.site.com CNAME site.cdnprovider.net" then an A record).
  /// Empty = answer with bare A records.
  dns::DomainName cname_target;
  /// Popularity weight in (0, 1], 1 = most popular. Used by resolver
  /// platforms to model ambient cache warmth from their global user base.
  double popularity = 0.01;
  /// Dual-stack names answer AAAA queries; the rest return NODATA.
  bool has_ipv6 = false;
};

/// Identifies a resolver platform's geolocation quality when asking for
/// a CDN answer: probability the best (nearest/fastest) edge is chosen.
struct GeoQuality {
  double best_edge_prob = 0.9;
};

struct ZoneDbConfig {
  std::uint64_t seed = 1;
  std::size_t web_sites = 600;
  std::size_t cdn_domains = 50;       ///< shared asset hosts
  std::size_t ad_domains = 90;
  std::size_t tracker_domains = 60;
  std::size_t api_domains = 120;
  std::size_t video_sites = 25;
  std::size_t other_names = 150;
  double zipf_exponent = 0.95;        ///< site popularity skew
  std::size_t edges_per_cdn = 4;      ///< CDN edge pool size per domain
  std::size_t hosting_pool_ips = 200; ///< shared-hosting address pool
};

/// The generated universe. Immutable after construction.
class ZoneDb {
 public:
  explicit ZoneDb(const ZoneDbConfig& cfg);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const HostRecord& record(NameId id) const { return records_.at(id); }
  [[nodiscard]] std::optional<NameId> find(const dns::DomainName& name) const;

  /// Authoritative answer for a query, as a ready answer section.
  /// For CDN names, `geo` picks between near and far edges; each call
  /// re-samples (real CDNs rotate answers), hence `rng`.
  /// Unknown names return an empty vector (callers emit NXDOMAIN).
  [[nodiscard]] std::vector<dns::ResourceRecord> authoritative_answer(
      const dns::DomainName& name, const GeoQuality& geo, Rng& rng) const;

  /// Typed variant: A behaves like authoritative_answer; AAAA returns
  /// synthetic v6 records for dual-stack names and an empty set (NODATA)
  /// otherwise; all other types yield an empty set.
  [[nodiscard]] std::vector<dns::ResourceRecord> authoritative_answer_typed(
      const dns::DomainName& name, dns::RrType qtype, const GeoQuality& geo, Rng& rng) const;

  /// Relative delivery quality of an address in (0, 1]; the traffic model
  /// divides transfer times by this. 1.0 for addresses we don't track.
  [[nodiscard]] double throughput_factor(Ipv4Addr addr) const;

  /// All ids of a service class (traffic model samples from these).
  [[nodiscard]] const std::vector<NameId>& ids_of(ServiceClass s) const;

  /// Zipf sampler over web-site ids, shared by all houses (global
  /// popularity is a property of the web, not of a household).
  [[nodiscard]] NameId sample_web_site(Rng& rng) const;
  [[nodiscard]] NameId sample_video_site(Rng& rng) const;

  /// The connectivity-check hostname (kConnCheck singleton).
  [[nodiscard]] NameId conn_check_id() const { return conn_check_id_; }

 private:
  void add_record(HostRecord rec);
  [[nodiscard]] Ipv4Addr alloc_ip(std::uint8_t first_octet, Rng& rng);

  std::vector<HostRecord> records_;
  std::unordered_map<dns::DomainName, NameId, dns::DomainNameHash> by_name_;
  std::unordered_map<Ipv4Addr, double, Ipv4Hash> throughput_;
  std::unordered_map<std::uint8_t, std::vector<NameId>> by_service_;
  std::vector<NameId> web_site_ids_;
  std::vector<NameId> video_site_ids_;
  std::optional<ZipfSampler> web_zipf_;
  std::optional<ZipfSampler> video_zipf_;
  NameId conn_check_id_ = 0;
  std::vector<Ipv4Addr> hosting_pool_;
};

}  // namespace dnsctx::resolver
