// dnsctx — the per-device stub resolver.
//
// Models what the OS + applications do on a real device in the monitored
// neighborhood: an on-device cache (whose entries are the "local cache"
// the paper's LC class leverages), TTL-violating retention (§5.2: 22.2%
// of LC connections use expired records, median 890 s past expiry),
// query de-duplication, retransmission timeouts, and multi-resolver
// failover. The stub does NOT see the network directly — it emits
// packets through the device, which sits behind the house NAT.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dns/cache.hpp"
#include "dns/codec.hpp"
#include "netsim/packet.hpp"
#include "netsim/sim.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace dnsctx::resolver {

struct StubConfig {
  /// Resolvers in preference order; retries exhaust one before failover.
  std::vector<Ipv4Addr> resolver_addrs;
  dns::CacheConfig cache{.capacity = 2'000};
  /// Probability a cached entry is retained (servable) past its TTL —
  /// the mechanism behind observed TTL violations.
  double ttl_violation_prob = 0.2; 
  /// Lognormal parameters (seconds) of the extra hold beyond the TTL.
  /// Defaults give a median ≈ 900 s and a long tail, matching §5.2.
  double hold_mu = 6.3;
  double hold_sigma = 2.1;
  /// Minimum extra hold (seconds, uniform up to max) applied to
  /// speculative lookups' cache entries.
  double speculative_hold_min_sec = 60.0;
  double speculative_hold_max_sec = 600.0;
  SimDuration query_timeout = SimDuration::sec(3);
  int retries_per_resolver = 1;
  /// Timeout multiplier applied per successive timeout of one lookup
  /// (exponential backoff). 1.0 = fixed timeout — the historical
  /// behaviour, byte-identical to builds without the knob.
  double retry_backoff = 1.0;
  /// Backoff ceiling: no single attempt waits longer than this.
  SimDuration max_query_timeout = SimDuration::sec(30);
  /// 53 = plain DNS. 853 models encrypted DNS (DoT/DoQ): resolution
  /// still works, but the aggregation-point monitor can no longer parse
  /// the transactions (§3/§5.1's "future efforts..." observation).
  std::uint16_t dns_port = 53;
  /// Dual-stack hosts fire a parallel AAAA query alongside fresh A
  /// queries (happy eyeballs). The result is cached but never drives a
  /// connection in this v4-only study — it thickens the visible DNS
  /// transaction stream exactly as real captures show.
  double aaaa_prob = 0.0;
  /// Retry truncated (TC) UDP responses over TCP (RFC 1035 §4.2.2).
  bool tcp_fallback = true;
};

/// Outcome of a resolve() call.
struct ResolveResult {
  bool success = false;
  std::vector<Ipv4Addr> addrs;
  bool from_cache = false;    ///< answered from the device cache
  bool used_expired = false;  ///< the cache entry had outlived its TTL
  Ipv4Addr resolver;          ///< resolver that answered (unset for cache hits)
  SimDuration lookup_time = SimDuration::zero();  ///< request→response, 0 for cache
};

/// The stub resolver. One per device; single-threaded like the rest of
/// the simulation.
class StubResolver {
 public:
  using SendFn = std::function<void(netsim::Packet)>;
  using Callback = std::function<void(const ResolveResult&)>;

  StubResolver(netsim::Simulator& sim, Ipv4Addr device_ip, StubConfig cfg, std::uint64_t seed,
               SendFn send);

  /// Resolve a name to addresses. The callback fires exactly once — from
  /// cache after a negligible delay, or when a response/terminal timeout
  /// arrives. Concurrent resolves of the same name share one query.
  /// `speculative` marks browser-prefetch-style lookups: browsers hold
  /// those results for a while regardless of TTL (Chrome's host cache),
  /// so the entry gets a minimum extra hold beyond its TTL.
  void resolve(const dns::DomainName& name, Callback cb, bool speculative = false);

  /// Feed an inbound UDP/53 response (the device demuxes to us).
  void on_response(const netsim::Packet& p);

  /// Feed an inbound TCP segment from a resolver (truncation fallback).
  void on_tcp(const netsim::Packet& p);

  [[nodiscard]] std::uint64_t tcp_fallbacks() const { return tcp_fallbacks_; }
  [[nodiscard]] std::uint64_t servfail_failovers() const { return servfail_failovers_; }

  /// Force-expire the device cache (used by tests).
  void flush_cache() { cache_.clear(); }

  [[nodiscard]] const dns::DnsCache& cache() const { return cache_; }
  [[nodiscard]] std::uint64_t queries_sent() const { return queries_sent_; }
  [[nodiscard]] std::uint64_t failures() const { return failures_; }

 private:
  struct Pending {
    dns::DomainName name;
    dns::RrType qtype = dns::RrType::kA;
    bool speculative = false;
    bool via_tcp = false;        ///< fallback in progress
    std::uint16_t tcp_port = 0;  ///< local port of the TCP retry
    std::vector<Callback> callbacks;
    std::uint16_t txid = 0;
    std::uint16_t src_port = 0;
    std::size_t resolver_idx = 0;
    int attempts_on_resolver = 0;
    int timeouts = 0;  ///< drives the exponential-backoff exponent
    /// Bumped by every (re)transmission; timeout closures capture the
    /// value they armed against and no-op when a SERVFAIL-triggered
    /// early retry has already moved the query past them.
    std::uint32_t attempt_gen = 0;
    SimTime first_sent;
    bool done = false;
  };

  void send_query(const std::shared_ptr<Pending>& pending);
  void arm_timeout(const std::shared_ptr<Pending>& pending);
  /// Advance to the next retransmission or failover target; false when
  /// every configured attempt is exhausted.
  bool try_next_attempt(const std::shared_ptr<Pending>& pending);
  [[nodiscard]] SimDuration attempt_timeout(const Pending& pending) const;
  void finish(const std::shared_ptr<Pending>& pending, ResolveResult result);
  [[nodiscard]] std::shared_ptr<Pending> start_query(const dns::DomainName& name,
                                                     dns::RrType qtype, bool speculative);
  void begin_tcp_fallback(const std::shared_ptr<Pending>& pending);
  void deliver_response(const std::shared_ptr<Pending>& pending, const dns::DnsMessage& msg);
  void send_tcp(const std::shared_ptr<Pending>& pending, netsim::TcpFlags flags,
                dns::DnsPayload payload = {});

  netsim::Simulator& sim_;
  Ipv4Addr device_ip_;
  StubConfig cfg_;
  Rng rng_;
  SendFn send_;
  dns::DnsCache cache_;
  util::FlatMap<std::uint16_t, std::shared_ptr<Pending>> by_txid_;
  struct InflightKey {
    dns::DomainName name;
    dns::RrType qtype;
    bool operator==(const InflightKey&) const = default;
  };
  /// Borrowed-key view: probe the in-flight table without copying the
  /// DomainName into a temporary key on every resolve().
  struct InflightKeyRef {
    const dns::DomainName* name;
    dns::RrType qtype;
  };
  struct InflightKeyHash {
    [[nodiscard]] std::size_t operator()(const InflightKey& k) const noexcept {
      return dns::DomainNameHash{}(k.name) * 31 ^ static_cast<std::size_t>(k.qtype);
    }
    [[nodiscard]] std::size_t operator()(const InflightKeyRef& k) const noexcept {
      return dns::DomainNameHash{}(*k.name) * 31 ^ static_cast<std::size_t>(k.qtype);
    }
  };
  struct InflightKeyEq {
    [[nodiscard]] bool operator()(const InflightKey& a, const InflightKey& b) const noexcept {
      return a == b;
    }
    [[nodiscard]] bool operator()(const InflightKey& a, const InflightKeyRef& b) const noexcept {
      return a.qtype == b.qtype && a.name == *b.name;
    }
  };
  util::FlatMap<InflightKey, std::shared_ptr<Pending>, InflightKeyHash, InflightKeyEq> inflight_;
  util::FlatMap<std::uint16_t, std::shared_ptr<Pending>> tcp_by_port_;
  std::uint64_t tcp_fallbacks_ = 0;
  std::uint64_t servfail_failovers_ = 0;
  std::uint16_t next_txid_ = 1;
  std::uint16_t next_port_ = 20'000;
  std::uint64_t queries_sent_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace dnsctx::resolver
