// dnsctx — the per-device stub resolver.
//
// Models what the OS + applications do on a real device in the monitored
// neighborhood: an on-device cache (whose entries are the "local cache"
// the paper's LC class leverages), TTL-violating retention (§5.2: 22.2%
// of LC connections use expired records, median 890 s past expiry),
// query de-duplication, retransmission timeouts, and multi-resolver
// failover. The stub does NOT see the network directly — it emits
// packets through the device, which sits behind the house NAT.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dns/cache.hpp"
#include "dns/codec.hpp"
#include "netsim/packet.hpp"
#include "netsim/sim.hpp"
#include "netsim/transport.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace dnsctx::resolver {

struct StubConfig {
  /// Resolvers in preference order; retries exhaust one before failover.
  std::vector<Ipv4Addr> resolver_addrs;
  dns::CacheConfig cache{.capacity = 2'000};
  /// Probability a cached entry is retained (servable) past its TTL —
  /// the mechanism behind observed TTL violations.
  double ttl_violation_prob = 0.2; 
  /// Lognormal parameters (seconds) of the extra hold beyond the TTL.
  /// Defaults give a median ≈ 900 s and a long tail, matching §5.2.
  double hold_mu = 6.3;
  double hold_sigma = 2.1;
  /// Minimum extra hold (seconds, uniform up to max) applied to
  /// speculative lookups' cache entries.
  double speculative_hold_min_sec = 60.0;
  double speculative_hold_max_sec = 600.0;
  SimDuration query_timeout = SimDuration::sec(3);
  int retries_per_resolver = 1;
  /// Timeout multiplier applied per successive timeout of one lookup
  /// (exponential backoff). 1.0 = fixed timeout — the historical
  /// behaviour, byte-identical to builds without the knob.
  double retry_backoff = 1.0;
  /// Backoff ceiling: no single attempt waits longer than this.
  SimDuration max_query_timeout = SimDuration::sec(30);
  /// 53 = plain DNS. 853 models encrypted DNS (DoT/DoQ): resolution
  /// still works, but the aggregation-point monitor can no longer parse
  /// the transactions (§3/§5.1's "future efforts..." observation).
  std::uint16_t dns_port = 53;
  /// Dual-stack hosts fire a parallel AAAA query alongside fresh A
  /// queries (happy eyeballs). The result is cached but never drives a
  /// connection in this v4-only study — it thickens the visible DNS
  /// transaction stream exactly as real captures show.
  double aaaa_prob = 0.0;
  /// Retry truncated (TC) UDP responses over TCP (RFC 1035 §4.2.2).
  bool tcp_fallback = true;
  /// Upstream transport. kDo53 (and kResolverless, which changes how
  /// records *arrive*, not how lookups travel) keeps the classic UDP
  /// path above — byte-identical to builds without the knob. kDoT/kDoH
  /// move every query onto one padded, connection-reused encrypted
  /// channel per resolver (netsim/transport.hpp).
  netsim::Transport transport = netsim::Transport::kDo53;
};

/// Outcome of a resolve() call.
struct ResolveResult {
  bool success = false;
  std::vector<Ipv4Addr> addrs;
  bool from_cache = false;    ///< answered from the device cache
  bool used_expired = false;  ///< the cache entry had outlived its TTL
  Ipv4Addr resolver;          ///< resolver that answered (unset for cache hits)
  SimDuration lookup_time = SimDuration::zero();  ///< request→response, 0 for cache
  /// Ground-truth provenance (sim-internal; feeds capture::TruthTap):
  /// how the cache entry got there, whether this was its first hit, and
  /// — for fresh lookups — whether the recursive answered from its
  /// shared cache (truth for the paper's SC-vs-R split).
  dns::CacheOrigin origin = dns::CacheOrigin::kQuery;
  bool first_use = false;
  bool upstream_cache_hit = false;
};

/// The stub resolver. One per device; single-threaded like the rest of
/// the simulation.
class StubResolver {
 public:
  using SendFn = std::function<void(netsim::Packet)>;
  using Callback = std::function<void(const ResolveResult&)>;

  StubResolver(netsim::Simulator& sim, Ipv4Addr device_ip, StubConfig cfg, std::uint64_t seed,
               SendFn send);

  /// Resolve a name to addresses. The callback fires exactly once — from
  /// cache after a negligible delay, or when a response/terminal timeout
  /// arrives. Concurrent resolves of the same name share one query.
  /// `speculative` marks browser-prefetch-style lookups: browsers hold
  /// those results for a while regardless of TTL (Chrome's host cache),
  /// so the entry gets a minimum extra hold beyond its TTL.
  void resolve(const dns::DomainName& name, Callback cb, bool speculative = false);

  /// Feed an inbound UDP/53 response (the device demuxes to us).
  void on_response(const netsim::Packet& p);

  /// Feed an inbound TCP segment from a resolver (truncation fallback).
  void on_tcp(const netsim::Packet& p);

  /// Feed an inbound TCP segment belonging to an encrypted DNS channel
  /// (DoT/DoH). The device demuxes by owns_secure_port().
  void on_secure(const netsim::Packet& p);

  /// True when `local_port` is an open encrypted-channel port — the
  /// device's demux key for src-port-443 packets, which otherwise belong
  /// to ordinary web connections.
  [[nodiscard]] bool owns_secure_port(std::uint16_t local_port) const {
    return secure_by_port_.contains(local_port);
  }

  /// Resolver-less DNS (Sy et al.): a content server pushes an address
  /// record for a related name straight into the device cache — no
  /// lookup, no DNS packet, nothing for the monitor to see. Pushed
  /// entries surface as CacheOrigin::kPushed on later hits.
  void insert_pushed(const dns::DomainName& name,
                     std::vector<dns::ResourceRecord> answers, SimTime now);

  [[nodiscard]] std::uint64_t tcp_fallbacks() const { return tcp_fallbacks_; }
  [[nodiscard]] std::uint64_t servfail_failovers() const { return servfail_failovers_; }
  [[nodiscard]] std::uint64_t pushed_inserts() const { return pushed_inserts_; }
  /// TLS handshakes performed / queries that reused a warm channel,
  /// summed over every resolver channel (0 on cleartext transports).
  [[nodiscard]] std::uint64_t secure_handshakes() const;
  [[nodiscard]] std::uint64_t secure_reuses() const;

  /// Force-expire the device cache (used by tests).
  void flush_cache() { cache_.clear(); }

  [[nodiscard]] const dns::DnsCache& cache() const { return cache_; }
  [[nodiscard]] std::uint64_t queries_sent() const { return queries_sent_; }
  [[nodiscard]] std::uint64_t failures() const { return failures_; }

 private:
  struct Pending {
    dns::DomainName name;
    dns::RrType qtype = dns::RrType::kA;
    bool speculative = false;
    bool via_tcp = false;        ///< fallback in progress
    std::uint16_t tcp_port = 0;  ///< local port of the TCP retry
    std::vector<Callback> callbacks;
    std::uint16_t txid = 0;
    std::uint16_t src_port = 0;
    std::size_t resolver_idx = 0;
    int attempts_on_resolver = 0;
    int timeouts = 0;  ///< drives the exponential-backoff exponent
    /// Bumped by every (re)transmission; timeout closures capture the
    /// value they armed against and no-op when a SERVFAIL-triggered
    /// early retry has already moved the query past them.
    std::uint32_t attempt_gen = 0;
    SimTime first_sent;
    bool done = false;
  };

  /// One encrypted channel to one resolver. Owned via unique_ptr so the
  /// address stays stable across FlatMap rehashes (secure_by_port_ and
  /// idle-timer closures hold raw pointers).
  struct Channel {
    explicit Channel(Ipv4Addr r, SimDuration idle) : resolver{r}, chan{idle} {}
    Ipv4Addr resolver;
    std::uint16_t local_port = 0;  ///< 0 when no TCP connection is open
    netsim::SecureChannel chan;
    std::vector<std::uint16_t> queued;  ///< txids awaiting the handshake
    std::uint64_t idle_gen = 0;         ///< invalidates stale idle timers
  };

  void send_query(const std::shared_ptr<Pending>& pending);
  void send_query_udp(const std::shared_ptr<Pending>& pending);
  void send_query_secure(const std::shared_ptr<Pending>& pending);
  [[nodiscard]] Channel& channel_for(Ipv4Addr resolver);
  void open_channel(Channel& ch);
  void send_secure_data(Channel& ch, const Pending& pending);
  void send_channel_ctrl(const Channel& ch, netsim::TcpFlags flags,
                         std::uint64_t payload_bytes);
  void arm_idle(Channel& ch);
  [[nodiscard]] std::uint16_t alloc_port();
  void arm_timeout(const std::shared_ptr<Pending>& pending);
  /// Advance to the next retransmission or failover target; false when
  /// every configured attempt is exhausted.
  bool try_next_attempt(const std::shared_ptr<Pending>& pending);
  [[nodiscard]] SimDuration attempt_timeout(const Pending& pending) const;
  void finish(const std::shared_ptr<Pending>& pending, ResolveResult result);
  [[nodiscard]] std::shared_ptr<Pending> start_query(const dns::DomainName& name,
                                                     dns::RrType qtype, bool speculative);
  void begin_tcp_fallback(const std::shared_ptr<Pending>& pending);
  void deliver_response(const std::shared_ptr<Pending>& pending, const dns::DnsMessage& msg);
  void send_tcp(const std::shared_ptr<Pending>& pending, netsim::TcpFlags flags,
                dns::DnsPayload payload = {});

  netsim::Simulator& sim_;
  Ipv4Addr device_ip_;
  StubConfig cfg_;
  Rng rng_;
  SendFn send_;
  dns::DnsCache cache_;
  util::FlatMap<std::uint16_t, std::shared_ptr<Pending>> by_txid_;
  struct InflightKey {
    dns::DomainName name;
    dns::RrType qtype;
    bool operator==(const InflightKey&) const = default;
  };
  /// Borrowed-key view: probe the in-flight table without copying the
  /// DomainName into a temporary key on every resolve().
  struct InflightKeyRef {
    const dns::DomainName* name;
    dns::RrType qtype;
  };
  struct InflightKeyHash {
    [[nodiscard]] std::size_t operator()(const InflightKey& k) const noexcept {
      return dns::DomainNameHash{}(k.name) * 31 ^ static_cast<std::size_t>(k.qtype);
    }
    [[nodiscard]] std::size_t operator()(const InflightKeyRef& k) const noexcept {
      return dns::DomainNameHash{}(*k.name) * 31 ^ static_cast<std::size_t>(k.qtype);
    }
  };
  struct InflightKeyEq {
    [[nodiscard]] bool operator()(const InflightKey& a, const InflightKey& b) const noexcept {
      return a == b;
    }
    [[nodiscard]] bool operator()(const InflightKey& a, const InflightKeyRef& b) const noexcept {
      return a.qtype == b.qtype && a.name == *b.name;
    }
  };
  util::FlatMap<InflightKey, std::shared_ptr<Pending>, InflightKeyHash, InflightKeyEq> inflight_;
  util::FlatMap<std::uint16_t, std::shared_ptr<Pending>> tcp_by_port_;
  util::FlatMap<Ipv4Addr, std::unique_ptr<Channel>> channels_;
  util::FlatMap<std::uint16_t, Channel*> secure_by_port_;
  std::uint64_t tcp_fallbacks_ = 0;
  std::uint64_t servfail_failovers_ = 0;
  std::uint64_t pushed_inserts_ = 0;
  std::uint16_t next_txid_ = 1;
  std::uint16_t next_port_ = 20'000;
  std::uint64_t queries_sent_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace dnsctx::resolver
