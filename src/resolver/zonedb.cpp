#include "resolver/zonedb.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace dnsctx::resolver {

std::string_view to_string(ServiceClass s) {
  switch (s) {
    case ServiceClass::kWebOrigin: return "web";
    case ServiceClass::kCdnAsset: return "cdn";
    case ServiceClass::kAdNetwork: return "ad";
    case ServiceClass::kTracker: return "tracker";
    case ServiceClass::kApi: return "api";
    case ServiceClass::kVideo: return "video";
    case ServiceClass::kConnCheck: return "conncheck";
    case ServiceClass::kOther: return "other";
  }
  return "?";
}

namespace {

/// TTL menus per service, weighted toward the regimes seen in edge
/// measurements (CDNs 60–300 s; origins minutes–hours).
[[nodiscard]] std::uint32_t sample_ttl(ServiceClass s, Rng& rng) {
  switch (s) {
    case ServiceClass::kCdnAsset:
    case ServiceClass::kAdNetwork: {
      static constexpr std::uint32_t menu[] = {120, 300, 300, 600, 900, 1800};
      return menu[rng.bounded(std::size(menu))];
    }
    case ServiceClass::kTracker: {
      static constexpr std::uint32_t menu[] = {300, 600, 600, 900, 1800};
      return menu[rng.bounded(std::size(menu))];
    }
    case ServiceClass::kVideo: {
      static constexpr std::uint32_t menu[] = {60, 120, 300, 300, 600};
      return menu[rng.bounded(std::size(menu))];
    }
    case ServiceClass::kApi: {
      static constexpr std::uint32_t menu[] = {600, 900, 1800, 1800, 3600};
      return menu[rng.bounded(std::size(menu))];
    }
    case ServiceClass::kWebOrigin: {
      static constexpr std::uint32_t menu[] = {60, 120, 300, 300, 600, 1800, 3600, 14400};
      return menu[rng.bounded(std::size(menu))];
    }
    case ServiceClass::kConnCheck:
      return 300;
    case ServiceClass::kOther: {
      static constexpr std::uint32_t menu[] = {300, 3600, 3600, 14400, 86400};
      return menu[rng.bounded(std::size(menu))];
    }
  }
  return 300;
}

constexpr const char* kTlds[] = {"com", "com", "com", "net", "org", "io"};

}  // namespace

ZoneDb::ZoneDb(const ZoneDbConfig& cfg) {
  Rng rng{derive_seed(cfg.seed, "zonedb")};

  // Shared hosting pool: many origin names map into these addresses, so
  // DN-Hunter faces genuine multi-candidate ambiguity.
  hosting_pool_.reserve(cfg.hosting_pool_ips);
  for (std::size_t i = 0; i < cfg.hosting_pool_ips; ++i) {
    hosting_pool_.push_back(alloc_ip(185, rng));
  }

  const ZipfSampler site_pop{std::max<std::size_t>(cfg.web_sites, 1), cfg.zipf_exponent};

  // --- web origins -------------------------------------------------------
  for (std::size_t i = 0; i < cfg.web_sites; ++i) {
    HostRecord rec;
    rec.name = dns::DomainName::must(
        strfmt("www.site%04zu.%s", i, kTlds[rng.bounded(std::size(kTlds))]));
    rec.service = ServiceClass::kWebOrigin;
    rec.ttl_sec = sample_ttl(rec.service, rng);
    const std::size_t n_addrs = 1 + rng.bounded(3);
    for (std::size_t a = 0; a < n_addrs; ++a) {
      // 70% of origins live in the shared hosting pool.
      if (rng.bernoulli(0.7)) {
        rec.addrs.push_back(hosting_pool_[rng.bounded(hosting_pool_.size())]);
      } else {
        rec.addrs.push_back(alloc_ip(34, rng));
      }
    }
    rec.popularity = site_pop.pmf(i) / site_pop.pmf(0);
    rec.has_ipv6 = rng.bernoulli(0.45);
    web_site_ids_.push_back(static_cast<NameId>(records_.size()));
    add_record(std::move(rec));
  }
  web_zipf_.emplace(std::max<std::size_t>(cfg.web_sites, 1), cfg.zipf_exponent);

  // --- shared infrastructure domains -------------------------------------
  auto make_family = [&](std::size_t count, ServiceClass service, const char* fmt,
                         bool cdn_backed, double cdn_prob, std::uint8_t octet) {
    const ZipfSampler pop{std::max<std::size_t>(count, 1), 0.9};
    for (std::size_t i = 0; i < count; ++i) {
      HostRecord rec;
      rec.name = dns::DomainName::must(strfmt(fmt, i));
      rec.service = service;
      rec.ttl_sec = sample_ttl(service, rng);
      rec.cdn = cdn_backed && rng.bernoulli(cdn_prob);
      if (rec.cdn) {
        // Most CDN-backed names resolve through a CNAME into the
        // provider's zone before the per-edge A record.
        if (rng.bernoulli(0.7)) {
          rec.cname_target = dns::DomainName::must(
              strfmt("e%zu.g%02zu.cdnprovider.net", i % 9, i));
        }
        // Edge set ordered best-first; quality decays with edge rank.
        const std::size_t edges = std::max<std::size_t>(cfg.edges_per_cdn, 2);
        for (std::size_t e = 0; e < edges; ++e) {
          const Ipv4Addr edge = alloc_ip(octet, rng);
          rec.addrs.push_back(edge);
          const double quality =
              std::max(0.15, 1.0 - 0.28 * static_cast<double>(e) + rng.uniform(-0.05, 0.05));
          throughput_[edge] = quality;
        }
      } else {
        // A few services publish wide anycast pools (dozens of A
        // records): their answers exceed the 512-byte UDP limit and
        // exercise the TCP truncation fallback.
        const std::size_t n_addrs = (service == ServiceClass::kApi && rng.bernoulli(0.05))
                                        ? 30 + rng.bounded(10)
                                        : 1 + rng.bounded(2);
        for (std::size_t a = 0; a < n_addrs; ++a) rec.addrs.push_back(alloc_ip(octet, rng));
      }
      rec.popularity = pop.pmf(i) / pop.pmf(0);
      rec.has_ipv6 = rng.bernoulli(0.6);  // big infrastructure is mostly dual-stack
      add_record(std::move(rec));
    }
  };

  make_family(cfg.cdn_domains, ServiceClass::kCdnAsset, "cdn.edge%02zu-net.com", true, 0.95, 104);
  make_family(cfg.ad_domains, ServiceClass::kAdNetwork, "serve.adnet%02zu.com", true, 0.5, 151);
  make_family(cfg.tracker_domains, ServiceClass::kTracker, "t.metrics%02zu.net", false, 0.0, 52);
  make_family(cfg.api_domains, ServiceClass::kApi, "api.svc%03zu.io", false, 0.0, 35);

  // --- video (always CDN-backed, short TTLs, big transfers) --------------
  {
    const ZipfSampler pop{std::max<std::size_t>(cfg.video_sites, 1), 0.9};
    for (std::size_t i = 0; i < cfg.video_sites; ++i) {
      HostRecord rec;
      rec.name = dns::DomainName::must(strfmt("v%zu.video%02zu.tv", i % 4, i));
      rec.service = ServiceClass::kVideo;
      rec.ttl_sec = sample_ttl(rec.service, rng);
      rec.cdn = true;
      const std::size_t edges = std::max<std::size_t>(cfg.edges_per_cdn, 2);
      for (std::size_t e = 0; e < edges; ++e) {
        const Ipv4Addr edge = alloc_ip(198, rng);
        rec.addrs.push_back(edge);
        throughput_[edge] =
            std::max(0.15, 1.0 - 0.25 * static_cast<double>(e) + rng.uniform(-0.05, 0.05));
      }
      rec.popularity = pop.pmf(i) / pop.pmf(0);
      video_site_ids_.push_back(static_cast<NameId>(records_.size()));
      add_record(std::move(rec));
    }
    video_zipf_.emplace(std::max<std::size_t>(cfg.video_sites, 1), 0.9);
  }

  // --- the Android connectivity-check name (§7 artifact) ------------------
  {
    HostRecord rec;
    rec.name = dns::DomainName::must("connectivitycheck.gstatic.com");
    rec.service = ServiceClass::kConnCheck;
    rec.ttl_sec = 300;
    rec.addrs.push_back(alloc_ip(142, rng));
    rec.addrs.push_back(alloc_ip(142, rng));
    rec.popularity = 1.0;
    conn_check_id_ = static_cast<NameId>(records_.size());
    add_record(std::move(rec));
  }

  // --- long tail ----------------------------------------------------------
  for (std::size_t i = 0; i < cfg.other_names; ++i) {
    HostRecord rec;
    rec.name = dns::DomainName::must(
        strfmt("host%zu.misc%03zu.%s", i % 7, i, kTlds[rng.bounded(std::size(kTlds))]));
    rec.service = ServiceClass::kOther;
    rec.ttl_sec = sample_ttl(rec.service, rng);
    rec.addrs.push_back(rng.bernoulli(0.5) ? hosting_pool_[rng.bounded(hosting_pool_.size())]
                                           : alloc_ip(45, rng));
    rec.popularity = 0.002;
    add_record(std::move(rec));
  }
}

void ZoneDb::add_record(HostRecord rec) {
  const auto id = static_cast<NameId>(records_.size());
  if (by_name_.contains(rec.name)) {
    throw std::logic_error{"ZoneDb: duplicate name " + rec.name.text()};
  }
  by_name_.emplace(rec.name, id);
  by_service_[static_cast<std::uint8_t>(rec.service)].push_back(id);
  records_.push_back(std::move(rec));
}

Ipv4Addr ZoneDb::alloc_ip(std::uint8_t first_octet, Rng& rng) {
  for (int attempts = 0; attempts < 1'000; ++attempts) {
    const Ipv4Addr candidate{
        first_octet, static_cast<std::uint8_t>(rng.bounded(256)),
        static_cast<std::uint8_t>(rng.bounded(256)),
        static_cast<std::uint8_t>(1 + rng.bounded(254))};
    if (!throughput_.contains(candidate)) {
      throughput_.emplace(candidate, 1.0);
      return candidate;
    }
  }
  throw std::runtime_error{"ZoneDb: address space exhausted"};
}

std::optional<NameId> ZoneDb::find(const dns::DomainName& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<dns::ResourceRecord> ZoneDb::authoritative_answer(const dns::DomainName& name,
                                                              const GeoQuality& geo,
                                                              Rng& rng) const {
  const auto id = find(name);
  if (!id) return {};
  const HostRecord& rec = records_[*id];
  std::vector<dns::ResourceRecord> out;
  if (rec.cdn) {
    // Resolver geolocation decides edge quality: best edge with the
    // platform's accuracy, otherwise a uniformly chosen farther edge.
    std::size_t edge = 0;
    if (!rng.bernoulli(geo.best_edge_prob) && rec.addrs.size() > 1) {
      edge = 1 + rng.bounded(rec.addrs.size() - 1);
    }
    if (!rec.cname_target.is_root()) {
      // CNAME chain: owner → provider name → edge address. The chain's
      // effective lifetime is the minimum TTL, like real caches compute.
      out.push_back(dns::ResourceRecord::cname(rec.name, rec.cname_target, rec.ttl_sec));
      out.push_back(dns::ResourceRecord::a(rec.cname_target, rec.addrs[edge], rec.ttl_sec));
    } else {
      out.push_back(dns::ResourceRecord::a(rec.name, rec.addrs[edge], rec.ttl_sec));
    }
  } else {
    // Rotate the full set (authoritative round-robin). Wide pools are
    // returned whole — that is what overflows UDP and forces TCP.
    const std::size_t start = rng.bounded(rec.addrs.size());
    for (std::size_t i = 0; i < rec.addrs.size(); ++i) {
      out.push_back(dns::ResourceRecord::a(rec.name, rec.addrs[(start + i) % rec.addrs.size()],
                                           rec.ttl_sec));
    }
  }
  return out;
}

std::vector<dns::ResourceRecord> ZoneDb::authoritative_answer_typed(
    const dns::DomainName& name, dns::RrType qtype, const GeoQuality& geo, Rng& rng) const {
  if (qtype == dns::RrType::kA) return authoritative_answer(name, geo, rng);
  if (qtype != dns::RrType::kAaaa) return {};
  const auto id = find(name);
  if (!id || !records_[*id].has_ipv6) return {};  // NODATA
  const HostRecord& rec = records_[*id];
  // Synthetic but deterministic v6 rdata derived from the v4 address
  // (this study never routes v6 traffic; the record only feeds the DNS
  // transaction stream the monitor observes).
  const Ipv4Addr v4 = rec.addrs[rng.bounded(rec.addrs.size())];
  std::vector<std::uint8_t> v6(16, 0);
  v6[0] = 0x20;
  v6[1] = 0x01;
  v6[2] = 0x0d;
  v6[3] = 0xb8;
  for (int i = 0; i < 4; ++i) {
    v6[static_cast<std::size_t>(12 + i)] =
        static_cast<std::uint8_t>(v4.to_u32() >> (24 - 8 * i));
  }
  std::vector<dns::ResourceRecord> out;
  out.push_back(dns::ResourceRecord{rec.name, dns::RrType::kAaaa, dns::RrClass::kIn,
                                    rec.ttl_sec, std::move(v6)});
  return out;
}

double ZoneDb::throughput_factor(Ipv4Addr addr) const {
  const auto it = throughput_.find(addr);
  return it == throughput_.end() ? 1.0 : it->second;
}

const std::vector<NameId>& ZoneDb::ids_of(ServiceClass s) const {
  static const std::vector<NameId> kEmpty;
  const auto it = by_service_.find(static_cast<std::uint8_t>(s));
  return it == by_service_.end() ? kEmpty : it->second;
}

NameId ZoneDb::sample_web_site(Rng& rng) const {
  return web_site_ids_.at(web_zipf_->sample(rng));
}

NameId ZoneDb::sample_video_site(Rng& rng) const {
  return video_site_ids_.at(video_zipf_->sample(rng));
}

}  // namespace dnsctx::resolver
