// dnsctx — a whole-house caching DNS forwarder (§8 of the paper).
//
// The CCZ's supplied routers do NOT forward DNS; §8 asks what would
// change if they did. This component turns a HouseGateway into a caching
// forwarder: it transparently intercepts outbound UDP/53 queries from
// devices, answers from a house-wide cache when possible, and otherwise
// relays the query upstream (through the same NAT path, so the monitor
// still sees it). The §8/Table 3 *numbers* come from the trace-driven
// simulators in src/cachesim; this live component backs the what-if
// example and integration tests.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "dns/cache.hpp"
#include "dns/codec.hpp"
#include "netsim/nat.hpp"

namespace dnsctx::resolver {

class WholeHouseForwarder : public netsim::Host {
 public:
  /// Installs itself as `gateway`'s DNS intercept and attaches as an
  /// in-home pseudo-device at `forwarder_ip` for upstream responses.
  WholeHouseForwarder(netsim::Simulator& sim, netsim::HouseGateway& gateway,
                      Ipv4Addr forwarder_ip, dns::CacheConfig cache_cfg, std::uint64_t seed);

  /// Upstream responses arrive here (via the gateway's NAT demux).
  void receive(const netsim::Packet& p) override;

  [[nodiscard]] const dns::CacheStats& cache_stats() const { return cache_.stats(); }
  [[nodiscard]] std::uint64_t upstream_queries() const { return upstream_queries_; }

 private:
  /// The gateway intercept: true = consumed (answered or relayed).
  bool on_device_query(const netsim::Packet& p);
  void answer_device(const netsim::Packet& original_query, const dns::DnsMessage& query,
                     std::vector<dns::ResourceRecord> answers, dns::Rcode rcode,
                     std::uint32_t remaining_ttl_sec);

  netsim::Simulator& sim_;
  netsim::HouseGateway& gateway_;
  Ipv4Addr forwarder_ip_;
  dns::DnsCache cache_;
  Rng rng_;

  struct Relayed {
    netsim::Packet original_query;  ///< pre-NAT packet from the device
    dns::DnsMessage query;
  };
  std::unordered_map<std::uint16_t, Relayed> upstream_;  // by our txid
  std::uint16_t next_txid_ = 1;
  std::uint16_t next_port_ = 30'000;
  std::uint64_t upstream_queries_ = 0;
};

}  // namespace dnsctx::resolver
