#include "resolver/recursive.hpp"

#include <algorithm>
#include <cmath>

#include "netsim/transport.hpp"

namespace dnsctx::resolver {

namespace {

/// Transport traits for an encrypted service port (853 = DoT, 443 = DoH).
const netsim::TransportTraits& secure_traits(std::uint16_t port) {
  return netsim::traits_for(port == 853 ? netsim::Transport::kDoT : netsim::Transport::kDoH);
}

}  // namespace

RecursiveResolverPlatform::RecursiveResolverPlatform(netsim::Simulator& sim,
                                                     netsim::Network& net, const ZoneDb& zones,
                                                     PlatformConfig cfg, std::uint64_t seed)
    : sim_{sim}, net_{net}, zones_{zones}, cfg_{std::move(cfg)}, rng_{seed} {
  if (cfg_.frontends == 0) cfg_.frontends = 1;
  shards_.reserve(cfg_.frontends);
  for (std::size_t i = 0; i < cfg_.frontends; ++i) shards_.emplace_back(cfg_.cache);
  for (const auto addr : cfg_.addrs) net_.attach(addr, this);
}

void RecursiveResolverPlatform::set_faults(faults::ResolverFaultConfig cfg,
                                           std::uint64_t seed) {
  faults_ = std::move(cfg);
  fault_rng_ = faults_.active() ? std::make_unique<Rng>(seed) : nullptr;
}

void RecursiveResolverPlatform::receive(const netsim::Packet& p) {
  // Port 53 is classic DNS; 853 (DoT) and 443 (DoH) are the encrypted
  // transports: same semantics, but the monitor cannot parse what it
  // cannot read.
  if (p.dst_port != 53 && p.dst_port != 853 && p.dst_port != 443) return;
  if (fault_rng_ && faults_.in_outage(p.dst_ip, sim_.now())) {
    // The service address is dark: no SYN-ACK, no answer — clients see
    // pure timeouts, exactly like a dead or overloaded box.
    ++stats_.outage_dropped;
    return;
  }
  if (p.proto == Proto::kTcp) {
    // Minimal TCP/53 service for truncation fallback (RFC 1035 §4.2.2).
    if (p.tcp.rst) return;
    if (p.tcp.syn && !p.tcp.ack) {
      netsim::Packet synack;
      synack.src_ip = p.dst_ip;
      synack.dst_ip = p.src_ip;
      synack.src_port = p.dst_port;
      synack.dst_port = p.src_port;
      synack.proto = Proto::kTcp;
      synack.tcp = netsim::TcpFlags{.syn = true, .ack = true};
      net_.send(std::move(synack));
      return;
    }
    if (p.dns.empty()) {
      if (p.tcp.fin) {
        netsim::Packet finack;
        finack.src_ip = p.dst_ip;
        finack.dst_ip = p.src_ip;
        finack.src_port = p.dst_port;
        finack.dst_port = p.src_port;
        finack.proto = Proto::kTcp;
        finack.tcp = netsim::TcpFlags{.ack = true, .fin = true};
        net_.send(std::move(finack));
        return;
      }
      if (p.payload_bytes > 0 && !p.tcp.syn && (p.dst_port == 853 || p.dst_port == 443)) {
        // TLS ClientHello on an encrypted-DNS port: answer with the
        // ServerHello..Finished flight, completing the 2-RTT handshake.
        netsim::Packet hello;
        hello.src_ip = p.dst_ip;
        hello.dst_ip = p.src_ip;
        hello.src_port = p.dst_port;
        hello.dst_port = p.src_port;
        hello.proto = Proto::kTcp;
        hello.tcp = netsim::TcpFlags{.ack = true};
        hello.payload_bytes = secure_traits(p.dst_port).server_hello_bytes;
        net_.send(std::move(hello));
      }
      return;
    }
  }
  if (p.dns.empty()) return;
  const dns::DnsMessage* msg = p.dns.message();
  if (msg == nullptr || msg->flags.qr || msg->questions.empty()) return;
  answer(p, *msg);
}

std::size_t RecursiveResolverPlatform::shard_for(const dns::DomainName& qname,
                                                 Ipv4Addr service_addr) {
  if (shards_.size() == 1) return 0;
  if (cfg_.shard_by_addr) {
    for (std::size_t i = 0; i < cfg_.addrs.size(); ++i) {
      if (cfg_.addrs[i] == service_addr) return i % shards_.size();
    }
    return 0;
  }
  if (cfg_.shard_by_name) {
    return dns::DomainNameHash{}(qname) % shards_.size();
  }
  // Random load balancing: repeated queries land on arbitrary shards,
  // fragmenting the cache exactly as large multi-frontend PoPs do.
  return rng_.bounded(shards_.size());
}

SimDuration RecursiveResolverPlatform::sample_auth_delay() {
  // 1..3 upstream queries: the TLD referral is usually cached, the
  // authoritative query itself is usually all that remains.
  std::size_t queries = 1;
  if (rng_.bernoulli(cfg_.extra_auth_query_prob)) ++queries;
  if (rng_.bernoulli(cfg_.extra_auth_query_prob * 0.4)) ++queries;
  double total_ms = 0.0;
  for (std::size_t i = 0; i < queries; ++i) {
    total_ms += 2.0 + rng_.exponential(cfg_.auth_rtt_ms_mean);
  }
  if (rng_.bernoulli(cfg_.slow_tail_prob)) {
    total_ms += rng_.exponential(cfg_.slow_tail_ms_mean);
  }
  return SimDuration::from_ms(total_ms);
}

void RecursiveResolverPlatform::answer(const netsim::Packet& query,
                                       const dns::DnsMessage& msg) {
  ++stats_.queries;
  const dns::Question& q = msg.questions.front();

  if (fault_rng_) {
    // Injected failures fire before the cache: a platform melting down
    // fails queries it could otherwise have answered from cache.
    if (faults_.servfail_rate > 0.0 && fault_rng_->bernoulli(faults_.servfail_rate)) {
      ++stats_.servfail_injected;
      respond(query, msg, {}, dns::Rcode::kServFail,
              SimDuration::from_ms(cfg_.proc_ms));
      return;
    }
    if (faults_.nxdomain_rate > 0.0 && fault_rng_->bernoulli(faults_.nxdomain_rate)) {
      ++stats_.nxdomain_injected;
      ++stats_.nxdomain;
      respond(query, msg, {}, dns::Rcode::kNxDomain,
              SimDuration::from_ms(cfg_.proc_ms));
      return;
    }
  }
  const std::size_t shard = shard_for(q.qname, query.dst_ip);
  dns::DnsCache& cache = shards_[shard];

  SimDuration delay = SimDuration::from_ms(cfg_.proc_ms);
  std::vector<dns::ResourceRecord> answers;
  dns::Rcode rcode = dns::Rcode::kNoError;
  bool truth_cache_hit = false;

  if (auto hit = cache.lookup(q.qname, q.qtype, sim_.now()); hit && !hit->expired) {
    ++stats_.shard_hits;
    truth_cache_hit = true;
    answers = std::move(hit->answers);
    rcode = hit->rcode;
    // Served TTLs count down in the shared cache (RFC 1035 §4.2 behaviour
    // every recursive resolver implements).
    const auto remaining =
        std::max<std::int64_t>(1, (hit->expires_at - sim_.now()).count_us() / 1'000'000);
    for (auto& rr : answers) rr.ttl = static_cast<std::uint32_t>(remaining);
  } else {
    const auto id = zones_.find(q.qname);
    const double pop = id ? zones_.record(*id).popularity : 0.0;
    // Ambient warmth: the platform's worldwide user base keeps popular
    // names cached. Sub-linear in popularity — even mid-tail names are
    // warm somewhere on a busy platform.
    const double p_ambient =
        cfg_.ambient_warmth > 0.0 && pop > 0.0
            ? std::min(1.0, cfg_.ambient_warmth * std::pow(pop, cfg_.ambient_pop_exp))
            : 0.0;
    const bool ambient = id && p_ambient > 0.0 && rng_.bernoulli(p_ambient);
    if (ambient) {
      // Another user of this platform fetched the name recently: answer
      // at cache-hit speed with a partially decayed TTL.
      ++stats_.ambient_hits;
      truth_cache_hit = true;
      Rng& rng = rng_;
      answers = zones_.authoritative_answer_typed(q.qname, q.qtype, cfg_.geo, rng);
      const double decay = rng.uniform(0.1, 0.9);
      for (auto& rr : answers) {
        rr.ttl = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(static_cast<double>(rr.ttl) * decay));
      }
      cache.insert(q.qname, q.qtype, answers, rcode, sim_.now());
    } else {
      ++stats_.auth_resolutions;
      delay += sample_auth_delay();
      answers = zones_.authoritative_answer_typed(q.qname, q.qtype, cfg_.geo, rng_);
      if (answers.empty()) {
        // Unknown names are NXDOMAIN; known names without records of the
        // requested type (v4-only hosts asked for AAAA) are NODATA.
        if (!zones_.find(q.qname)) {
          rcode = dns::Rcode::kNxDomain;
          ++stats_.nxdomain;
        }
      }
      cache.insert(q.qname, q.qtype, answers, rcode, sim_.now() + delay);
    }
  }

  respond(query, msg, std::move(answers), rcode, delay, truth_cache_hit);
}

void RecursiveResolverPlatform::respond(const netsim::Packet& query,
                                        const dns::DnsMessage& msg,
                                        std::vector<dns::ResourceRecord> answers,
                                        dns::Rcode rcode, SimDuration delay,
                                        bool truth_cache_hit) {
  const dns::Question& q = msg.questions.front();
  dns::DnsMessage resp = dns::DnsMessage::response(msg, std::move(answers), rcode);
  resp.truth_cache_hit = truth_cache_hit;
  // SERVFAIL means the resolution machinery broke, not that the name is
  // absent — no SOA accompanies it.
  if (resp.answers.empty() && rcode != dns::Rcode::kServFail) {
    // RFC 2308: negative responses carry the zone SOA in the authority
    // section; its MINIMUM bounds the negative-caching time.
    dns::SoaData soa;
    soa.mname = dns::DomainName::must("a.auth-servers.net");
    soa.rname = dns::DomainName::must("hostmaster.auth-servers.net");
    soa.serial = 2019'02'06;
    soa.refresh = 7'200;
    soa.retry = 900;
    soa.expire = 1'209'600;
    soa.minimum = 300;
    resp.authorities.push_back(dns::ResourceRecord{q.qname.registrable(), dns::RrType::kSoa,
                                                   dns::RrClass::kIn, 300, std::move(soa)});
  }
  // Classic UDP/53 responses must fit 512 bytes (no EDNS in this study):
  // oversized answers go out truncated and the client re-asks over TCP.
  // Encrypted (853) and TCP responses are never truncated.
  const bool udp_classic = query.proto == Proto::kUdp && query.dst_port == 53;
  if (udp_classic) {
    const dns::DnsMessage trimmed = dns::truncate_for_udp(resp);
    if (trimmed.flags.tc) ++stats_.truncated_udp;
    resp = trimmed;
  }
  netsim::Packet out;
  out.src_ip = query.dst_ip;
  out.dst_ip = query.src_ip;
  out.src_port = query.dst_port;  // answer from the port that was asked
  out.dst_port = query.src_port;
  out.proto = query.proto;
  if (query.proto == Proto::kTcp) out.tcp = netsim::TcpFlags{.ack = true};
  out.dns = dns::DnsPayload::from_message(std::move(resp));
  if (query.proto == Proto::kTcp && (query.dst_port == 853 || query.dst_port == 443)) {
    // Encrypted channel: what crosses the wire is the RFC 8467-padded
    // ciphertext, not the DNS message — account the padding + framing so
    // the tap sees only the padded size.
    const auto& traits = secure_traits(query.dst_port);
    const auto wire = static_cast<std::uint64_t>(out.dns.wire_size());
    out.payload_bytes =
        netsim::padded_payload(wire, traits.response_pad_block, traits.per_message_overhead) -
        wire;
  }
  // Adopt now so the delay closure carries an 8-byte handle, not a
  // heap-allocated Packet copy.
  netsim::PacketHandle h = net_.arena().adopt(std::move(out));
  sim_.after(delay, [this, h = std::move(h)]() { net_.send(h); });
}

std::size_t RecursiveResolverPlatform::cached_entries() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s.size();
  return n;
}

std::vector<PlatformConfig> default_platforms() {
  using namespace well_known;
  std::vector<PlatformConfig> out;

  {
    PlatformConfig isp;
    isp.name = "Local";
    isp.addrs = {kIspResolver1, kIspResolver2};
    isp.site = {SimDuration::from_ms(0.5), 0.15};  // ~2 ms RTT from houses
    isp.frontends = 2;     // two independent resolver boxes
    isp.shard_by_addr = true;
    isp.cache.capacity = 200'000;
    isp.geo = {0.92};           // resolver sits next to the clients: near-perfect CDN geo
    isp.ambient_warmth = 0.28;  // campus-adjacent user base beyond the monitored houses
    isp.auth_rtt_ms_mean = 17.0;
    isp.extra_auth_query_prob = 0.22;
    isp.slow_tail_prob = 0.045;
    isp.slow_tail_ms_mean = 1100.0;
    out.push_back(std::move(isp));
  }
  {
    PlatformConfig google;
    google.name = "Google";
    google.addrs = {kGoogle1, kGoogle2};
    google.site = {SimDuration::from_ms(9.5), 0.25};  // ~20 ms RTT
    google.frontends = 64;                            // random LB across a large PoP
    google.shard_by_name = false;
    google.cache.capacity = 200'000;
    google.cache.max_ttl_sec = 21'600;
    google.geo = {0.85};  // ECS keeps edge mapping decent despite distance
    google.ambient_warmth = 0.05;
    google.auth_rtt_ms_mean = 30.0;  // slower median resolution than others (§7)
    google.extra_auth_query_prob = 0.35;
    google.slow_tail_prob = 0.006;   // but the shortest tail (§7, Fig 3 top)
    google.slow_tail_ms_mean = 350.0;
    out.push_back(std::move(google));
  }
  {
    PlatformConfig opendns;
    opendns.name = "OpenDNS";
    opendns.addrs = {kOpenDns1, kOpenDns2};
    opendns.site = {SimDuration::from_ms(9.5), 0.25};  // ~20 ms RTT (same PoP metro as Google)
    opendns.frontends = 4;
    opendns.shard_by_name = false;
    opendns.cache.capacity = 200'000;
    opendns.geo = {0.8};
    opendns.ambient_warmth = 0.55;
    opendns.auth_rtt_ms_mean = 19.0;
    opendns.extra_auth_query_prob = 0.22;
    opendns.slow_tail_prob = 0.045;
    opendns.slow_tail_ms_mean = 1100.0;
    out.push_back(std::move(opendns));
  }
  {
    PlatformConfig cf;
    cf.name = "Cloudflare";
    cf.addrs = {kCloudflare1, kCloudflare2};
    cf.site = {SimDuration::from_ms(4.3), 0.2};  // ~9 ms RTT
    cf.frontends = 8;
    cf.shard_by_name = true;  // name-keyed shards behave as one big cache
    cf.cache.capacity = 400'000;
    cf.geo = {0.45};  // no ECS: CDNs see the resolver, not the client (§7 Fig 3 bottom)
    cf.ambient_warmth = 1.6;
    cf.ambient_pop_exp = 0.3;
    cf.auth_rtt_ms_mean = 17.0;
    cf.extra_auth_query_prob = 0.2;
    cf.slow_tail_prob = 0.045;
    cf.slow_tail_ms_mean = 1100.0;
    out.push_back(std::move(cf));
  }
  return out;
}

}  // namespace dnsctx::resolver
