#include "serve/sockets.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/strings.hpp"

namespace dnsctx::serve {

namespace {

[[noreturn]] void fail(const char* op, const std::string& where) {
  throw std::runtime_error{strfmt("serve: %s %s: %s", op, where.c_str(),
                                  std::strerror(errno))};
}

[[nodiscard]] sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error{strfmt("serve: bad IPv4 address '%s'", host.c_str())};
  }
  return addr;
}

}  // namespace

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail("fcntl O_NONBLOCK on fd", std::to_string(fd));
  }
}

void set_socket_buffers(int fd, int bytes) {
  if (bytes <= 0) return;
  // Best effort: the kernel clamps to its min/max; never fatal.
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof bytes);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof bytes);
}

int listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
  const std::string where = strfmt("%s:%u", host.c_str(), port);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) fail("socket for", where);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const sockaddr_in addr = make_addr(host, port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    fail("bind", where);
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    fail("listen on", where);
  }
  return fd;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    fail("getsockname on fd", std::to_string(fd));
  }
  return ntohs(addr.sin_port);
}

int connect_tcp(const std::string& host, std::uint16_t port) {
  const std::string where = strfmt("%s:%u", host.c_str(), port);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) fail("socket for", where);
  const sockaddr_in addr = make_addr(host, port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    fail("connect to", where);
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  set_nonblocking(fd);
  return fd;
}

std::string peer_name(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return strfmt("fd %d", fd);
  }
  char ip[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof ip);
  return strfmt("%s:%u", ip, ntohs(addr.sin_port));
}

}  // namespace dnsctx::serve
