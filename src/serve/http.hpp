// dnsctx — minimal HTTP/1.1 for the telemetry server's scrape surface.
//
// Deliberately tiny: GET only, no keep-alive (every response carries
// `Connection: close`), no chunked encoding, 8 KiB request limit. The
// consumers are curl, Prometheus, and the integration tests — not
// browsers. What it DOES handle carefully is the write side: a response
// that does not fit the socket buffer (a large /metrics scrape read by
// a slow client) parks the remainder in a write buffer and finishes
// under EPOLLOUT, so one slow reader never blocks the event loop.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "serve/event_loop.hpp"

namespace dnsctx::serve {

struct HttpRequest {
  std::string method;
  std::string target;  ///< request-target as sent, e.g. "/results/town-a"
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Canonical reason phrase for the handful of statuses we emit.
[[nodiscard]] const char* http_status_text(int status);

/// Serialize status line + headers + body (Content-Length, Connection:
/// close) into one wire blob.
[[nodiscard]] std::string render_http_response(const HttpResponse& resp);

/// One accepted HTTP connection on the event loop. Reads a single GET
/// request, routes it, writes the response (buffering across EPOLLOUT
/// wakeups as needed), then closes. Registered edge-triggered; `start()`
/// must be called once after construction.
class HttpConnection : public FdHandler {
 public:
  using Router = std::function<HttpResponse(const HttpRequest&)>;

  static constexpr std::size_t kMaxRequestBytes = 8 * 1024;

  /// `on_close(fd)` fires exactly once when the connection is done; the
  /// owner may destroy the object from inside it (typically via
  /// EventLoop::defer — the callback runs in handler context).
  HttpConnection(EventLoop& loop, int fd, std::string peer, Router router,
                 std::function<void(int)> on_close);

  void start();

  void on_readable() override;
  void on_writable() override;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] const std::string& peer() const { return peer_; }

 private:
  void respond(const HttpResponse& resp);
  void flush_write();
  void close_now();

  EventLoop& loop_;
  int fd_;
  std::string peer_;
  Router router_;
  std::function<void(int)> on_close_;

  std::string in_;
  std::string out_;
  std::size_t out_pos_ = 0;
  bool responded_ = false;
};

}  // namespace dnsctx::serve
