#include "serve/http.hpp"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "util/strings.hpp"

namespace dnsctx::serve {

const char* http_status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

std::string render_http_response(const HttpResponse& resp) {
  std::string out = strfmt("HTTP/1.1 %d %s\r\n", resp.status, http_status_text(resp.status));
  out += strfmt("Content-Type: %s\r\n", resp.content_type.c_str());
  out += strfmt("Content-Length: %zu\r\n", resp.body.size());
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  return out;
}

HttpConnection::HttpConnection(EventLoop& loop, int fd, std::string peer, Router router,
                               std::function<void(int)> on_close)
    : loop_{loop},
      fd_{fd},
      peer_{std::move(peer)},
      router_{std::move(router)},
      on_close_{std::move(on_close)} {}

void HttpConnection::start() { loop_.add(fd_, this, /*read=*/true, /*write=*/false, /*edge=*/true); }

void HttpConnection::close_now() {
  const int fd = fd_;
  loop_.remove(fd);
  if (on_close_) {
    // The owner may destroy *this inside the callback: move it out and
    // touch no members afterwards.
    auto cb = std::move(on_close_);
    cb(fd);
  }
}

void HttpConnection::on_readable() {
  if (responded_) return;  // single-request connection: ignore pipelined extra bytes
  char buf[4096];
  for (;;) {
    const auto n = ::read(fd_, buf, sizeof buf);
    if (n > 0) {
      in_.append(buf, static_cast<std::size_t>(n));
      if (in_.size() > kMaxRequestBytes) {
        respond(HttpResponse{400, "text/plain; charset=utf-8", "request too large\n"});
        return;
      }
      continue;
    }
    if (n == 0) {  // peer closed before a full request arrived
      close_now();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_now();
    return;
  }

  const auto end = in_.find("\r\n\r\n");
  if (end == std::string::npos) return;  // headers incomplete

  const auto line_end = in_.find("\r\n");
  const std::string line = in_.substr(0, line_end);
  const auto sp1 = line.find(' ');
  const auto sp2 = sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    respond(HttpResponse{400, "text/plain; charset=utf-8", "malformed request line\n"});
    return;
  }
  HttpRequest req;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (req.method != "GET") {
    respond(HttpResponse{405, "text/plain; charset=utf-8", "GET only\n"});
    return;
  }
  respond(router_ ? router_(req)
                  : HttpResponse{500, "text/plain; charset=utf-8", "no router\n"});
}

void HttpConnection::respond(const HttpResponse& resp) {
  responded_ = true;
  out_ = render_http_response(resp);
  out_pos_ = 0;
  flush_write();
}

void HttpConnection::on_writable() { flush_write(); }

void HttpConnection::flush_write() {
  while (out_pos_ < out_.size()) {
    const auto n = ::write(fd_, out_.data() + out_pos_, out_.size() - out_pos_);
    if (n > 0) {
      out_pos_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      loop_.modify(fd_, /*read=*/false, /*write=*/true);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_now();  // peer reset mid-response
    return;
  }
  close_now();
}

}  // namespace dnsctx::serve
