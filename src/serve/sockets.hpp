// dnsctx — thin POSIX socket helpers for the serve layer.
//
// Everything here returns plain file descriptors set O_NONBLOCK and
// CLOEXEC; ownership stays with the caller. Errors throw
// std::runtime_error naming the operation and the address, so a server
// that cannot bind fails loudly at startup instead of spinning.
#pragma once

#include <cstdint>
#include <string>

namespace dnsctx::serve {

/// Create a nonblocking listening TCP socket bound to `host:port`
/// (SO_REUSEADDR; port 0 picks an ephemeral port). Returns the fd.
[[nodiscard]] int listen_tcp(const std::string& host, std::uint16_t port, int backlog = 128);

/// The port a socket is actually bound to (resolves port-0 binds).
[[nodiscard]] std::uint16_t bound_port(int fd);

/// Blocking connect to `host:port`, then switch the fd nonblocking.
/// Used by the push client and tests; the server side never connects.
[[nodiscard]] int connect_tcp(const std::string& host, std::uint16_t port);

/// "ip:port" of the remote end, for diagnostics that must name the peer.
[[nodiscard]] std::string peer_name(int fd);

void set_nonblocking(int fd);

/// Set SO_SNDBUF/SO_RCVBUF to `bytes` (0 = leave the kernel default).
/// Tests shrink the buffers to force partial writes on loopback.
void set_socket_buffers(int fd, int bytes);

}  // namespace dnsctx::serve
