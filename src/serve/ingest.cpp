#include "serve/ingest.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace dnsctx::serve {

namespace {

[[nodiscard]] bool tenant_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '.' || c == '_' || c == '-';
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}

void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

[[nodiscard]] std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[0])) |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3])) << 24;
}

[[nodiscard]] std::uint16_t get_u16(const char* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint8_t>(p[0]) |
                                    static_cast<std::uint8_t>(p[1]) << 8);
}

}  // namespace

bool valid_tenant_name(std::string_view name) {
  if (name.empty() || name.size() > kMaxTenantName) return false;
  for (const char c : name) {
    if (!tenant_char(c)) return false;
  }
  return true;
}

std::string encode_handshake(const Handshake& hs) {
  if (!valid_tenant_name(hs.tenant)) {
    throw std::runtime_error{strfmt("serve: invalid tenant name '%s'", hs.tenant.c_str())};
  }
  std::string out;
  out.reserve(8 + hs.tenant.size());
  put_u32(out, kIngestMagic);
  put_u16(out, kIngestVersion);
  out.push_back(static_cast<char>(hs.want_acks ? kIngestFlagAcks : 0));
  out.push_back(static_cast<char>(hs.tenant.size()));
  out += hs.tenant;
  return out;
}

void append_data_frame(std::string& out, std::string_view segment_blob) {
  put_u32(out, static_cast<std::uint32_t>(segment_blob.size()));
  out += segment_blob;
}

void append_flush_frame(std::string& out) { put_u32(out, 0); }

FrameDecoder::FrameDecoder(std::string source, Limits limits)
    : source_{std::move(source)}, limits_{limits} {}

void FrameDecoder::feed(std::string_view bytes) {
  compact();
  buf_ += bytes;
}

FrameDecoder::Event FrameDecoder::fail(std::string msg) {
  state_ = State::kError;
  error_ = std::move(msg);
  buf_.clear();
  pos_ = 0;
  return Event::kError;
}

void FrameDecoder::compact() {
  // Reclaim consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

FrameDecoder::Event FrameDecoder::next() {
  switch (state_) {
    case State::kError:
      return Event::kError;

    case State::kHandshake: {
      if (buf_.size() - pos_ < 8) return Event::kNeedMore;
      const char* p = buf_.data() + pos_;
      const std::uint32_t magic = get_u32(p);
      if (magic != kIngestMagic) {
        return fail(strfmt("%s: bad ingest magic %08x", source_.c_str(), magic));
      }
      const std::uint16_t version = get_u16(p + 4);
      if (version != kIngestVersion) {
        return fail(strfmt("%s: unsupported ingest version %u (expected %u)",
                           source_.c_str(), version, kIngestVersion));
      }
      const auto flags = static_cast<std::uint8_t>(p[6]);
      if (flags & ~kIngestFlagAcks) {
        return fail(strfmt("%s: unknown handshake flags %02x", source_.c_str(), flags));
      }
      const auto tenant_len = static_cast<std::uint8_t>(p[7]);
      if (tenant_len == 0 || tenant_len > kMaxTenantName) {
        return fail(strfmt("%s: bad tenant length %u", source_.c_str(), tenant_len));
      }
      if (buf_.size() - pos_ < 8u + tenant_len) return Event::kNeedMore;
      const std::string_view tenant{buf_.data() + pos_ + 8, tenant_len};
      if (!valid_tenant_name(tenant)) {
        return fail(strfmt("%s: invalid tenant name", source_.c_str()));
      }
      handshake_.tenant = std::string{tenant};
      handshake_.want_acks = (flags & kIngestFlagAcks) != 0;
      pos_ += 8u + tenant_len;
      state_ = State::kFrameHeader;
      return Event::kHandshake;
    }

    case State::kFrameHeader: {
      if (buf_.size() - pos_ < 4) return Event::kNeedMore;
      frame_len_ = get_u32(buf_.data() + pos_);
      if (frame_len_ > limits_.max_frame_bytes) {
        return fail(strfmt("%s: frame length %u exceeds limit %zu", source_.c_str(),
                           frame_len_, limits_.max_frame_bytes));
      }
      pos_ += 4;
      if (frame_len_ == 0) return Event::kFlush;
      state_ = State::kFrameBody;
      [[fallthrough]];
    }

    case State::kFrameBody: {
      if (buf_.size() - pos_ < frame_len_) return Event::kNeedMore;
      const std::string_view blob{buf_.data() + pos_, frame_len_};
      try {
        // The frame buffer is reused across frames, so the view adopts a
        // copy of the blob; records then decode out of it with no
        // further materialization (construction validates everything).
        segment_ = stream::SegmentView::adopt(std::string{blob}, source_);
      } catch (const std::exception& e) {
        return fail(e.what());
      }
      pos_ += frame_len_;
      state_ = State::kFrameHeader;
      return Event::kSegment;
    }
  }
  return Event::kNeedMore;  // unreachable
}

}  // namespace dnsctx::serve
