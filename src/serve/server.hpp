// dnsctx — the online telemetry server: epoll loop + ingest + tenants
// + HTTP, assembled.
//
// One Server owns two listening sockets on one EventLoop:
//
//   ingest  length-prefixed frame protocol (serve/ingest.hpp); each
//           accepted connection handshakes into a tenant and streams
//           segments into that tenant's bounded queue
//   http    GET /metrics (Prometheus), /results/<tenant> (the study
//           JSON), /healthz
//
// Segments are applied to the study engines by the event loop's idle-
// work pump, a bounded budget per iteration, so ingest bursts cannot
// starve HTTP and a scrape never waits behind a deep queue. When a
// tenant's queue fills, every connection feeding it drops EPOLLIN until
// the pump drains it — kernel socket buffers then fill and TCP pushes
// back on the producer (the backpressure contract in docs/SERVE.md).
//
// A malformed frame (bad magic, oversized length, CRC mismatch,
// truncated segment) closes ONLY the offending connection, with a
// stderr diagnostic naming the peer; every other connection and tenant
// keeps flowing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "serve/event_loop.hpp"
#include "serve/http.hpp"
#include "serve/ingest.hpp"
#include "serve/tenant.hpp"

namespace dnsctx::serve {

struct ServeConfig {
  std::string ingest_host = "127.0.0.1";
  std::uint16_t ingest_port = 0;  ///< 0 = ephemeral (tests)
  std::string http_host = "127.0.0.1";
  std::uint16_t http_port = 0;

  TenantConfig tenant;
  std::size_t max_frame_bytes = 16u << 20;
  /// Segments applied per event-loop iteration across all tenants.
  std::size_t pump_budget = 8;
  /// Period of the idle-eviction / engine sweep timer (0 = no timer;
  /// tests drive sweeps explicitly).
  std::chrono::milliseconds sweep_period{1000};
  /// When nonzero, shrink SO_SNDBUF/SO_RCVBUF on accepted sockets —
  /// tests use a tiny value to force partial writes and backpressure.
  int sockbuf_bytes = 0;
  /// When nonempty, graceful shutdown writes <dir>/<tenant>.json for
  /// every live tenant.
  std::string results_dir;
};

class Server {
 public:
  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t connections_errored = 0;  ///< closed on a protocol violation
    std::uint64_t frames = 0;
    std::uint64_t flushes = 0;
    std::uint64_t records_ingested = 0;  ///< record_count summed over accepted frames
    std::uint64_t http_requests = 0;
  };

  Server(EventLoop& loop, ServeConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + register with the loop. Throws on bind failure.
  void start();

  /// Bound ports (after start(); meaningful with port 0).
  [[nodiscard]] std::uint16_t ingest_port() const { return ingest_port_; }
  [[nodiscard]] std::uint16_t http_port() const { return http_port_; }

  /// Graceful completion: apply every queued segment, flush every
  /// tenant's reorder window, write per-tenant results files when
  /// `results_dir` is set, publish final metrics. Call after run()
  /// returns (or before reading results in loop-driving tests).
  void finish();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] TenantRegistry& tenants() { return tenants_; }
  [[nodiscard]] std::size_t connections_active() const { return ingest_conns_.size(); }

  /// Refresh the obs gauges (connections, tenant queue peaks). Runs on
  /// every /metrics scrape and on finish().
  void publish_metrics();

 private:
  class Listener;
  class IngestConnection;

  void accept_ingest();
  void accept_http();
  [[nodiscard]] HttpResponse route(const HttpRequest& req);
  void close_ingest(int fd);
  void close_http(int fd);
  void resume_ingest(int fd);
  void arm_sweep();

  EventLoop& loop_;
  ServeConfig cfg_;
  TenantRegistry tenants_;
  Stats stats_;

  int ingest_listen_fd_ = -1;
  int http_listen_fd_ = -1;
  std::uint16_t ingest_port_ = 0;
  std::uint16_t http_port_ = 0;
  std::unique_ptr<Listener> ingest_listener_;
  std::unique_ptr<Listener> http_listener_;

  std::map<int, std::unique_ptr<IngestConnection>> ingest_conns_;
  std::map<int, std::unique_ptr<HttpConnection>> http_conns_;

  EventLoop::TimerId sweep_timer_ = 0;
  bool finished_ = false;
};

}  // namespace dnsctx::serve
