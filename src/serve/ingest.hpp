// dnsctx — the length-prefixed TCP ingest protocol.
//
// A producer connection opens with one handshake frame and then streams
// data frames; every multi-byte integer is little-endian (matching the
// segment format it carries):
//
//   handshake (8 + N bytes)
//     u32  magic        "DCSV"
//     u16  version      kIngestVersion
//     u8   flags        bit 0: request a u64 ack after every frame
//     u8   tenant_len   1..64
//     ...  tenant       [A-Za-z0-9._-]{1,64}
//
//   data frame
//     u32  len
//     ...  body         len bytes: one COMPLETE segment blob in the
//                       src/stream wire format (40-byte header + CRC'd
//                       payload, v1 or v2, SegmentView-validated)
//
//   len == 0 is the FLUSH frame: release every record still buffered in
//   the tenant's reorder window to the study engine (end of stream, or
//   a producer forcing its partial results visible).
//
//   ack (server → producer, only when handshake flag bit 0 was set)
//     u64  records released to the tenant's study engine so far —
//          i.e. the count visible to /results/<tenant> at that instant.
//
// FrameDecoder is the transport-free core: bytes in, typed events out.
// The server feeds it from nonblocking reads; the fuzz harness feeds it
// garbage. Any structural defect (bad magic, oversized length, CRC
// mismatch, truncated segment, trailing bytes) surfaces as kError with
// a message naming the peer — the server closes that one connection and
// keeps serving everyone else.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "stream/segment_view.hpp"

namespace dnsctx::serve {

inline constexpr std::uint32_t kIngestMagic = 0x56534344u;  // "DCSV" in LE bytes
inline constexpr std::uint16_t kIngestVersion = 1;
inline constexpr std::uint8_t kIngestFlagAcks = 0x01;
inline constexpr std::size_t kMaxTenantName = 64;

/// True when `name` is a valid tenant identifier: 1..64 chars drawn
/// from [A-Za-z0-9._-]. The charset is strict on purpose — tenant
/// names flow into metric label blocks and result-file paths.
[[nodiscard]] bool valid_tenant_name(std::string_view name);

struct Handshake {
  std::string tenant;
  bool want_acks = false;
};

/// Serialize a handshake / data frame / flush frame (producer side).
[[nodiscard]] std::string encode_handshake(const Handshake& hs);
void append_data_frame(std::string& out, std::string_view segment_blob);
void append_flush_frame(std::string& out);

class FrameDecoder {
 public:
  enum class Event {
    kNeedMore,   ///< buffer exhausted; feed more bytes
    kHandshake,  ///< handshake parsed — handshake() is valid
    kSegment,    ///< data frame parsed — segment() is valid
    kFlush,      ///< flush frame
    kError,      ///< protocol violation — error() names it; terminal
  };

  struct Limits {
    std::size_t max_frame_bytes = 16u << 20;  ///< oversized length = attack/corruption
  };

  /// `source` names the peer in every diagnostic ("tcp 1.2.3.4:5678").
  explicit FrameDecoder(std::string source) : FrameDecoder{std::move(source), Limits{}} {}
  FrameDecoder(std::string source, Limits limits);

  /// Append raw bytes from the transport.
  void feed(std::string_view bytes);

  /// Pull the next event. After kError the decoder is poisoned and
  /// keeps returning kError.
  [[nodiscard]] Event next();

  [[nodiscard]] const Handshake& handshake() const { return handshake_; }
  /// The segment validated by the last kSegment event: a fully checked
  /// zero-copy view owning its frame bytes, ready to hand to a tenant
  /// queue (moved-from after the caller takes it — valid until the
  /// next next()).
  [[nodiscard]] stream::SegmentView& segment() { return segment_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool handshaken() const { return state_ != State::kHandshake; }

  /// Bytes buffered but not yet consumed (bounded by one frame).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  enum class State { kHandshake, kFrameHeader, kFrameBody, kError };

  [[nodiscard]] Event fail(std::string msg);
  void compact();

  std::string source_;
  Limits limits_;
  State state_ = State::kHandshake;
  std::string buf_;
  std::size_t pos_ = 0;
  std::uint32_t frame_len_ = 0;
  Handshake handshake_;
  stream::SegmentView segment_;
  std::string error_;
};

}  // namespace dnsctx::serve
