// dnsctx — producer side of the ingest protocol.
//
// PushClient wraps one TCP connection: handshake at construction, then
// send_segment()/flush() stream frames. IO is nonblocking under the
// hood but presented synchronously — writes poll() for POLLOUT when the
// socket fills (that is the server applying backpressure), read_ack()
// polls for POLLIN with a deadline. One client, one thread.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/ingest.hpp"

namespace dnsctx::serve {

class PushClient {
 public:
  /// Connect and send the handshake frame. Throws on refusal.
  PushClient(const std::string& host, std::uint16_t port, Handshake hs);
  ~PushClient();

  PushClient(const PushClient&) = delete;
  PushClient& operator=(const PushClient&) = delete;

  /// Frame and send one segment blob (src/stream wire format).
  void send_segment(std::string_view blob);

  /// Send the FLUSH frame (len == 0).
  void flush();

  /// Read one u64 ack (records visible to /results at send time on the
  /// server). Only meaningful when the handshake requested acks; blocks
  /// up to `timeout_ms`, throws on timeout or connection loss.
  [[nodiscard]] std::uint64_t read_ack(int timeout_ms = 30'000);

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  void send_all(std::string_view bytes);

  int fd_ = -1;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace dnsctx::serve
