// dnsctx — multi-tenant session layer: tenant name → OnlineStudy.
//
// Each tenant owns one bounded-memory stream::OnlineStudy fronted by a
// stream::LiveFeed, so producers may deliver conn and dns segments in
// any interleaving: records buffer in the reorder window and are
// released in the canonical (key time, dns-before-conn, arrival) order
// whenever the watermark advances — exactly the `stream --follow`
// discipline, which is what makes /results byte-identical to a batch
// run over the same records.
//
// Watermark rule (per tenant): track the newest `last_ts` seen per
// record kind; once both kinds have appeared, every record strictly
// below min(conn_front, dns_front) is safe to release, because segment
// streams are time-ordered per kind (future segments of a kind never
// start before that kind's newest last_ts — they may start AT it, so
// the frontier itself stays buffered until FLUSH).
//
// Backpressure: incoming segments land in a bounded per-tenant queue
// drained by the event loop's idle-work pump (a few segments per
// iteration, so one firehose producer cannot starve HTTP). When the
// queue is full the ingest connections feeding the tenant pause reads
// (EPOLLIN off) and resume when it drains — TCP then pushes back on
// the producer. See docs/SERVE.md.
//
// Tenants are created by the handshake (capped at max_tenants) and
// evicted after `idle_evict` with no frames and no attached
// connections; the periodic sweep also runs each engine's shadow
// eviction so long-lived tenants stay within their active window.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "stream/feed.hpp"
#include "stream/online_study.hpp"
#include "stream/segment_view.hpp"

namespace dnsctx::serve {

/// Deterministic JSON rendering of a finalized online study — the
/// /results/<tenant> payload. Doubles print with %.17g, so two engines
/// that ingested identical record sequences render byte-identical
/// documents (the loopback-equivalence contract in tests/serve).
[[nodiscard]] std::string result_json(const stream::OnlineStudyResult& r);

struct TenantConfig {
  std::size_t max_tenants = 64;
  /// Evict a tenant this long after its last frame (zero = never).
  std::chrono::milliseconds idle_evict{0};
  /// Bounded ingest queue depth, in segments, per tenant.
  std::size_t max_queued_segments = 64;
  stream::OnlineStudyConfig study;
};

class Tenant {
 public:
  using Clock = std::chrono::steady_clock;

  explicit Tenant(std::string name, const stream::OnlineStudyConfig& cfg);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Queue one validated segment view (zero-copy: the view owns the
  /// frame bytes; records decode when the pump applies it). Callers
  /// must check !queue_full() first.
  void enqueue(stream::SegmentView&& seg);
  [[nodiscard]] bool queue_full() const { return queue_.size() >= max_queued_; }
  [[nodiscard]] bool queue_empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t queue_peak() const { return queue_peak_; }
  void set_queue_limit(std::size_t n) { max_queued_ = n; }

  /// Apply one queued segment to the feed and advance the watermark.
  /// Returns false when the queue was empty.
  bool process_one();

  /// Release everything still buffered in the reorder window (FLUSH
  /// frame, or graceful shutdown).
  void flush();

  /// Records released to the engine so far (the ack value: exactly
  /// what /results would report at this instant).
  [[nodiscard]] std::uint64_t records_released() const { return released_.count; }
  [[nodiscard]] std::uint64_t records_queued() const { return records_queued_; }

  [[nodiscard]] std::string results() const { return result_json(engine_.finalize()); }
  [[nodiscard]] const stream::OnlineStudy& engine() const { return engine_; }

  // ---- idle / eviction bookkeeping (driven by TenantRegistry) ----
  void touch(Clock::time_point now) { last_activity_ = now; }
  [[nodiscard]] Clock::time_point last_activity() const { return last_activity_; }
  void attach() { ++attached_; }
  void detach() { --attached_; }
  [[nodiscard]] std::size_t attached() const { return attached_; }

  /// Connections paused on this tenant's full queue; the registry pump
  /// invokes and clears them once the queue has drained.
  void on_drained(std::function<void()> resume) { waiters_.push_back(std::move(resume)); }

 private:
  friend class TenantRegistry;

  /// Counts records crossing into the engine, so acks and gauges never
  /// pay for a finalize().
  struct CountingSink : capture::RecordSink {
    explicit CountingSink(stream::OnlineStudy& e) : engine{&e} {}
    void on_conn(const capture::ConnRecord& rec) override {
      ++count;
      engine->on_conn(rec);
    }
    void on_dns(const capture::DnsRecord& rec) override {
      ++count;
      engine->on_dns(rec);
    }
    stream::OnlineStudy* engine;
    std::uint64_t count = 0;
  };

  void maybe_drain();

  std::string name_;
  stream::OnlineStudy engine_;
  CountingSink released_;
  stream::LiveFeed feed_;

  std::deque<stream::SegmentView> queue_;
  std::size_t max_queued_;
  std::size_t queue_peak_ = 0;
  std::uint64_t records_queued_ = 0;

  SimTime conn_front_;
  SimTime dns_front_;
  bool any_conn_ = false;
  bool any_dns_ = false;

  Clock::time_point last_activity_;
  std::size_t attached_ = 0;
  std::vector<std::function<void()>> waiters_;
};

class TenantRegistry {
 public:
  explicit TenantRegistry(TenantConfig cfg) : cfg_{std::move(cfg)} {}

  /// Find-or-create for a handshake. Returns nullptr with `*error` set
  /// when the tenant table is full.
  [[nodiscard]] std::shared_ptr<Tenant> open(const std::string& name, std::string* error);

  /// Lookup only (HTTP results path). nullptr when absent/evicted.
  [[nodiscard]] std::shared_ptr<Tenant> find(const std::string& name) const;

  /// Drain queued segments, up to `budget` across all tenants (round-
  /// robin). Returns true while segments remain queued.
  bool pump(std::size_t budget);

  /// Idle eviction + per-engine shadow-eviction sweep. `now` is passed
  /// in so tests can drive time explicitly.
  void sweep(Tenant::Clock::time_point now);

  /// Flush every tenant's reorder window (graceful shutdown).
  void flush_all();

  [[nodiscard]] std::size_t size() const { return tenants_.size(); }
  [[nodiscard]] std::uint64_t evicted() const { return evicted_; }
  [[nodiscard]] const TenantConfig& config() const { return cfg_; }

  /// Iterate tenants in name order (results snapshot on shutdown).
  void for_each(const std::function<void(const Tenant&)>& fn) const;

 private:
  TenantConfig cfg_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
  std::uint64_t evicted_ = 0;
  std::uint64_t last_published_evicted_ = 0;  ///< obs counter high-water
};

}  // namespace dnsctx::serve
