#include "serve/server.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "serve/sockets.hpp"
#include "util/strings.hpp"

namespace dnsctx::serve {

// ---- Listener --------------------------------------------------------------

class Server::Listener : public FdHandler {
 public:
  explicit Listener(std::function<void()> on_accept) : on_accept_{std::move(on_accept)} {}
  void on_readable() override { on_accept_(); }

 private:
  std::function<void()> on_accept_;
};

// ---- IngestConnection ------------------------------------------------------

class Server::IngestConnection : public FdHandler {
 public:
  IngestConnection(Server& server, int fd, std::string peer)
      : server_{server},
        loop_{server.loop_},
        fd_{fd},
        peer_{std::move(peer)},
        decoder_{strfmt("tcp %s", peer_.c_str()),
                 FrameDecoder::Limits{server.cfg_.max_frame_bytes}} {}

  void start() { loop_.add(fd_, this, /*read=*/true, /*write=*/false, /*edge=*/true); }

  void on_readable() override {
    if (closing_) return;
    char buf[16 * 1024];
    for (;;) {
      const auto n = ::read(fd_, buf, sizeof buf);
      if (n > 0) {
        decoder_.feed({buf, static_cast<std::size_t>(n)});
        continue;
      }
      if (n == 0) {  // orderly EOF: partial results stay queued for the pump
        close_now();
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      std::fprintf(stderr, "serve: read error from %s: %s\n", peer_.c_str(),
                   std::strerror(errno));
      close_now();
      return;
    }
    pump_events();
  }

  void on_writable() override {
    if (closing_) return;
    flush_out();
  }

  void resume() {
    if (closing_ || !paused_) return;
    paused_ = false;
    update_interest();
    pump_events();
  }

  [[nodiscard]] const std::string& peer() const { return peer_; }
  [[nodiscard]] bool paused() const { return paused_; }

 private:
  void pump_events() {
    while (!closing_) {
      if (paused_) return;
      if (tenant_ && tenant_->queue_full()) {
        pause();
        return;
      }
      switch (decoder_.next()) {
        case FrameDecoder::Event::kNeedMore:
          return;

        case FrameDecoder::Event::kHandshake: {
          std::string err;
          tenant_ = server_.tenants_.open(decoder_.handshake().tenant, &err);
          if (!tenant_) {
            fail(err);
            return;
          }
          want_acks_ = decoder_.handshake().want_acks;
          tenant_->attach();
          tenant_->touch(Tenant::Clock::now());
          break;
        }

        case FrameDecoder::Event::kSegment: {
          auto& seg = decoder_.segment();
          ++server_.stats_.frames;
          server_.stats_.records_ingested += seg.size();
          if (obs::enabled()) {
            auto& reg = obs::registry();
            reg.counter("serve_frames_total").add(1);
            reg.counter("serve_records_ingested_total").add(seg.size());
          }
          tenant_->touch(Tenant::Clock::now());
          tenant_->enqueue(std::move(seg));
          if (want_acks_) {
            // Latency mode: apply synchronously so the ack reports the
            // records actually visible to /results.
            while (tenant_->process_one()) {
            }
            send_ack();
          }
          break;
        }

        case FrameDecoder::Event::kFlush: {
          while (tenant_->process_one()) {
          }
          tenant_->flush();
          tenant_->touch(Tenant::Clock::now());
          ++server_.stats_.flushes;
          if (want_acks_) send_ack();
          break;
        }

        case FrameDecoder::Event::kError:
          ++server_.stats_.connections_errored;
          if (obs::enabled()) obs::registry().counter("serve_frame_errors_total").add(1);
          fail(decoder_.error());
          return;
      }
    }
  }

  void pause() {
    paused_ = true;
    update_interest();
    // Resume via the server so a connection closed while parked never
    // leaves a dangling callback in the tenant's waiter list.
    tenant_->on_drained([srv = &server_, fd = fd_] { srv->resume_ingest(fd); });
  }

  void send_ack() {
    std::uint64_t v = tenant_->records_released();
    char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<char>(v & 0xff);
      v >>= 8;
    }
    out_.append(bytes, sizeof bytes);
    flush_out();
  }

  void flush_out() {
    while (out_pos_ < out_.size()) {
      const auto n = ::write(fd_, out_.data() + out_pos_, out_.size() - out_pos_);
      if (n > 0) {
        out_pos_ += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        update_interest();
        return;
      }
      if (n < 0 && errno == EINTR) continue;
      std::fprintf(stderr, "serve: ack write to %s failed: %s\n", peer_.c_str(),
                   std::strerror(errno));
      close_now();
      return;
    }
    out_.clear();
    out_pos_ = 0;
    update_interest();
  }

  void update_interest() {
    loop_.modify(fd_, /*read=*/!paused_, /*write=*/out_pos_ < out_.size());
  }

  void fail(const std::string& msg) {
    std::fprintf(stderr, "serve: closing connection: %s\n", msg.c_str());
    close_now();
  }

  void close_now() {
    if (closing_) return;
    closing_ = true;
    if (tenant_) tenant_->detach();
    loop_.remove(fd_);
    server_.close_ingest(fd_);  // may destroy *this via defer — return immediately
  }

  Server& server_;
  EventLoop& loop_;
  int fd_;
  std::string peer_;
  FrameDecoder decoder_;
  std::shared_ptr<Tenant> tenant_;
  bool want_acks_ = false;
  bool paused_ = false;
  bool closing_ = false;
  std::string out_;
  std::size_t out_pos_ = 0;
};

// ---- Server ----------------------------------------------------------------

Server::Server(EventLoop& loop, ServeConfig cfg)
    : loop_{loop}, cfg_{std::move(cfg)}, tenants_{cfg_.tenant} {}

Server::~Server() {
  for (const auto& [fd, conn] : ingest_conns_) loop_.remove(fd);
  for (const auto& [fd, conn] : http_conns_) loop_.remove(fd);
  ingest_conns_.clear();
  http_conns_.clear();
  if (ingest_listen_fd_ >= 0) loop_.remove(ingest_listen_fd_);
  if (http_listen_fd_ >= 0) loop_.remove(http_listen_fd_);
}

void Server::start() {
  ingest_listen_fd_ = listen_tcp(cfg_.ingest_host, cfg_.ingest_port);
  ingest_port_ = bound_port(ingest_listen_fd_);
  http_listen_fd_ = listen_tcp(cfg_.http_host, cfg_.http_port);
  http_port_ = bound_port(http_listen_fd_);

  ingest_listener_ = std::make_unique<Listener>([this] { accept_ingest(); });
  http_listener_ = std::make_unique<Listener>([this] { accept_http(); });
  loop_.add(ingest_listen_fd_, ingest_listener_.get(), /*read=*/true, /*write=*/false);
  loop_.add(http_listen_fd_, http_listener_.get(), /*read=*/true, /*write=*/false);

  loop_.set_idle_work([this] { return tenants_.pump(cfg_.pump_budget); });
  if (cfg_.sweep_period.count() > 0) arm_sweep();
}

void Server::arm_sweep() {
  sweep_timer_ = loop_.add_timer(cfg_.sweep_period, [this] {
    tenants_.sweep(Tenant::Clock::now());
    publish_metrics();
    arm_sweep();
  });
}

namespace {

[[nodiscard]] int accept_one(int listen_fd) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;  // EAGAIN or transient accept failure: try again next wakeup
  }
}

void tune_socket(int fd, int sockbuf_bytes) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (sockbuf_bytes > 0) set_socket_buffers(fd, sockbuf_bytes);
}

}  // namespace

void Server::accept_ingest() {
  for (;;) {
    const int fd = accept_one(ingest_listen_fd_);
    if (fd < 0) return;
    tune_socket(fd, cfg_.sockbuf_bytes);
    ++stats_.connections_accepted;
    if (obs::enabled()) {
      obs::registry().counter("serve_connections_total").add(1);
      obs::registry()
          .gauge("serve_connections_active")
          .set(static_cast<double>(ingest_conns_.size() + 1));
    }
    auto conn = std::make_unique<IngestConnection>(*this, fd, peer_name(fd));
    conn->start();
    ingest_conns_.emplace(fd, std::move(conn));
  }
}

void Server::accept_http() {
  for (;;) {
    const int fd = accept_one(http_listen_fd_);
    if (fd < 0) return;
    tune_socket(fd, cfg_.sockbuf_bytes);
    auto conn = std::make_unique<HttpConnection>(
        loop_, fd, peer_name(fd), [this](const HttpRequest& req) { return route(req); },
        [this](int closed_fd) { close_http(closed_fd); });
    conn->start();
    http_conns_.emplace(fd, std::move(conn));
  }
}

void Server::close_ingest(int fd) {
  ++stats_.connections_closed;
  if (obs::enabled()) {
    obs::registry()
        .gauge("serve_connections_active")
        .set(static_cast<double>(ingest_conns_.empty() ? 0 : ingest_conns_.size() - 1));
  }
  loop_.defer([this, fd] { ingest_conns_.erase(fd); });
}

void Server::close_http(int fd) {
  loop_.defer([this, fd] { http_conns_.erase(fd); });
}

void Server::resume_ingest(int fd) {
  const auto it = ingest_conns_.find(fd);
  if (it != ingest_conns_.end()) it->second->resume();
}

HttpResponse Server::route(const HttpRequest& req) {
  ++stats_.http_requests;
  if (obs::enabled()) obs::registry().counter("serve_http_requests_total").add(1);

  if (req.target == "/healthz") {
    return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
  }
  if (req.target == "/metrics") {
    publish_metrics();
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        obs::to_prometheus(obs::registry().snapshot())};
  }
  constexpr std::string_view kResults = "/results/";
  if (req.target.size() > kResults.size() &&
      std::string_view{req.target}.substr(0, kResults.size()) == kResults) {
    const std::string name = req.target.substr(kResults.size());
    if (!valid_tenant_name(name)) {
      return HttpResponse{400, "text/plain; charset=utf-8", "invalid tenant name\n"};
    }
    const auto tenant = tenants_.find(name);
    if (!tenant) {
      return HttpResponse{404, "text/plain; charset=utf-8", "unknown tenant\n"};
    }
    // Fold in anything still queued so the snapshot is as fresh as the
    // frames the producer has pushed.
    while (tenant->process_one()) {
    }
    return HttpResponse{200, "application/json", tenant->results() + "\n"};
  }
  return HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
}

void Server::publish_metrics() {
  if (!obs::enabled()) return;
  auto& reg = obs::registry();
  reg.gauge("serve_connections_active").set(static_cast<double>(ingest_conns_.size()));
  reg.gauge("serve_tenants_active").set(static_cast<double>(tenants_.size()));
  tenants_.for_each([&reg](const Tenant& t) {
    reg.gauge(strfmt("serve_tenant_queue_peak{tenant=\"%s\"}", t.name().c_str()))
        .set(static_cast<double>(t.queue_peak()));
    reg.gauge(strfmt("serve_tenant_records_released{tenant=\"%s\"}", t.name().c_str()))
        .set(static_cast<double>(t.records_released()));
  });
}

void Server::finish() {
  if (finished_) return;
  finished_ = true;
  tenants_.flush_all();
  if (!cfg_.results_dir.empty()) {
    tenants_.for_each([this](const Tenant& t) {
      const std::string path = strfmt("%s/%s.json", cfg_.results_dir.c_str(), t.name().c_str());
      std::FILE* f = std::fopen(path.c_str(), "wb");
      if (!f) {
        std::fprintf(stderr, "serve: cannot write %s: %s\n", path.c_str(),
                     std::strerror(errno));
        return;
      }
      const std::string doc = t.results() + "\n";
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fclose(f);
    });
  }
  publish_metrics();
}

}  // namespace dnsctx::serve
