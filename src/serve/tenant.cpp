#include "serve/tenant.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace dnsctx::serve {

namespace {

/// %.17g round-trips every double exactly; integers render as integers
/// so the document stays readable.
[[nodiscard]] std::string jnum(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

[[nodiscard]] std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "\"";
  return out;
}

void kv(std::string& out, const char* key, std::uint64_t v, bool comma = true) {
  out += strfmt("\"%s\":%llu", key, static_cast<unsigned long long>(v));
  if (comma) out += ",";
}

void kvd(std::string& out, const char* key, double v, bool comma = true) {
  out += strfmt("\"%s\":", key);
  out += jnum(v);
  if (comma) out += ",";
}

}  // namespace

std::string result_json(const stream::OnlineStudyResult& r) {
  std::string out = "{";
  kv(out, "conns", r.conns);
  kv(out, "dns", r.dns);

  out += "\"pairing\":{";
  kv(out, "paired", r.pairing.paired);
  kv(out, "unpaired", r.pairing.unpaired);
  kv(out, "paired_expired", r.pairing.paired_expired);
  kv(out, "unique_candidate", r.pairing.unique_candidate);
  kv(out, "multiple_candidates", r.pairing.multiple_candidates);
  kvd(out, "unique_candidate_frac", r.pairing.unique_candidate_frac());
  kvd(out, "unused_lookup_frac", r.unused_lookup_frac, false);
  out += "},";

  out += "\"classes\":{";
  kv(out, "n", r.classes.n);
  kv(out, "lc", r.classes.lc);
  kv(out, "p", r.classes.p);
  kv(out, "sc", r.classes.sc);
  kv(out, "r", r.classes.r);
  kv(out, "lc_expired", r.lc_expired);
  kv(out, "p_expired", r.p_expired, false);
  out += "},";

  // FlatMap iteration order depends on insertion history; sort by IP so
  // the document depends only on the final mapping.
  std::vector<std::pair<Ipv4Addr, double>> thresholds;
  thresholds.reserve(r.resolver_threshold_ms.size());
  for (const auto& [ip, t] : r.resolver_threshold_ms) thresholds.emplace_back(ip, t);
  std::sort(thresholds.begin(), thresholds.end(),
            [](const auto& a, const auto& b) { return a.first.to_u32() < b.first.to_u32(); });
  out += "\"resolver_threshold_ms\":{";
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    if (i) out += ",";
    out += jstr(thresholds[i].first.to_string());
    out += ":";
    out += jnum(thresholds[i].second);
  }
  out += "},";

  out += "\"table1\":[";
  for (std::size_t i = 0; i < r.table1.size(); ++i) {
    const auto& row = r.table1[i];
    if (i) out += ",";
    out += "{\"platform\":";
    out += jstr(row.platform);
    out += ",";
    kvd(out, "pct_houses", row.pct_houses);
    kvd(out, "pct_lookups", row.pct_lookups);
    kvd(out, "pct_conns", row.pct_conns);
    kvd(out, "pct_bytes", row.pct_bytes);
    kv(out, "lookups", row.lookups, false);
    out += "}";
  }
  out += "],";
  kvd(out, "isp_only_houses", r.isp_only_houses);

  out += "\"quadrants\":{";
  kvd(out, "insignificant_both", r.quadrants.insignificant_both);
  kvd(out, "relative_only", r.quadrants.relative_only);
  kvd(out, "absolute_only", r.quadrants.absolute_only);
  kvd(out, "significant_both", r.quadrants.significant_both);
  kvd(out, "significant_overall", r.quadrants.significant_overall, false);
  out += "},";

  out += "\"platforms\":[";
  for (std::size_t i = 0; i < r.platforms.size(); ++i) {
    const auto& p = r.platforms[i];
    if (i) out += ",";
    out += "{\"platform\":";
    out += jstr(p.platform);
    out += ",";
    kv(out, "sc", p.sc);
    kv(out, "r", p.r);
    kv(out, "conncheck_conns", p.conncheck_conns);
    kv(out, "total_conns", p.total_conns, false);
    out += "}";
  }
  out += "],";

  const auto& f = r.failures;
  out += "\"failures\":{";
  kv(out, "lookups", f.lookups);
  kv(out, "answered_ok", f.answered_ok);
  kv(out, "nodata", f.nodata);
  kv(out, "nxdomain", f.nxdomain);
  kv(out, "servfail", f.servfail);
  kv(out, "other_rcode", f.other_rcode);
  kv(out, "unanswered", f.unanswered);
  kv(out, "retry_chains", f.retry_chains);
  kv(out, "retry_lookups", f.retry_lookups);
  kv(out, "recovered_chains", f.recovered_chains);
  kv(out, "failed_chains", f.failed_chains);
  out += "\"chain_len_hist\":[";
  for (std::size_t i = 0; i < f.chain_len_hist.size(); ++i) {
    if (i) out += ",";
    out += strfmt("%llu", static_cast<unsigned long long>(f.chain_len_hist[i]));
  }
  out += "],";
  out += strfmt("\"recovered_wait_us\":%lld,", static_cast<long long>(f.recovered_wait_us));
  out += strfmt("\"failed_wait_us\":%lld,", static_cast<long long>(f.failed_wait_us));
  kv(out, "s0_conns", f.s0_conns);
  kv(out, "rej_conns", f.rej_conns, false);
  out += "}}";
  return out;
}

Tenant::Tenant(std::string name, const stream::OnlineStudyConfig& cfg)
    : name_{std::move(name)},
      engine_{cfg},
      released_{engine_},
      feed_{released_},
      max_queued_{64},
      last_activity_{Clock::now()} {}

void Tenant::enqueue(stream::SegmentView&& seg) {
  records_queued_ += seg.size();
  queue_.push_back(std::move(seg));
  queue_peak_ = std::max(queue_peak_, queue_.size());
}

bool Tenant::process_one() {
  if (queue_.empty()) return false;
  stream::SegmentView seg = std::move(queue_.front());
  queue_.pop_front();
  const stream::SegmentHeader& h = seg.header();
  if (h.kind == stream::RecordKind::kDns) {
    capture::DnsRecord rec;
    while (seg.next(rec)) feed_.on_dns(rec);
  } else if (h.kind == stream::RecordKind::kConn) {
    capture::ConnRecord rec;
    while (seg.next(rec)) feed_.on_conn(rec);
  } else {
    capture::EncFlowRecord rec;
    while (seg.next(rec)) feed_.on_encflow(rec);
  }
  if (h.record_count > 0) {
    // Enc metadata is an optional side stream: it rides the feed but does
    // not advance the conn/dns watermark fronts that gate draining.
    if (h.kind == stream::RecordKind::kConn) {
      conn_front_ = std::max(conn_front_, h.last_ts);
      any_conn_ = true;
    } else if (h.kind == stream::RecordKind::kDns) {
      dns_front_ = std::max(dns_front_, h.last_ts);
      any_dns_ = true;
    }
  }
  maybe_drain();
  if (queue_.size() + 1 == max_queued_ || queue_.empty()) {
    // Crossed back under the bound (or drained fully): resume paused
    // producers. Swap first — a resumed connection may enqueue again
    // and re-register itself.
    std::vector<std::function<void()>> resumed;
    resumed.swap(waiters_);
    for (auto& fn : resumed) fn();
  }
  return true;
}

void Tenant::maybe_drain() {
  if (!any_conn_ || !any_dns_) return;
  const SimTime front = std::min(conn_front_, dns_front_);
  if (front > SimTime::origin()) {
    feed_.drain(SimTime::from_us(front.count_us() - 1));
  }
}

void Tenant::flush() { feed_.close(); }

std::shared_ptr<Tenant> TenantRegistry::open(const std::string& name, std::string* error) {
  if (const auto it = tenants_.find(name); it != tenants_.end()) return it->second;
  if (tenants_.size() >= cfg_.max_tenants) {
    if (error) {
      *error = strfmt("tenant table full (%zu of %zu): rejecting '%s'", tenants_.size(),
                      cfg_.max_tenants, name.c_str());
    }
    return nullptr;
  }
  auto tenant = std::make_shared<Tenant>(name, cfg_.study);
  tenant->set_queue_limit(cfg_.max_queued_segments);
  tenants_.emplace(name, tenant);
  if (obs::enabled()) {
    obs::registry().gauge("serve_tenants_active").set(static_cast<double>(tenants_.size()));
  }
  return tenant;
}

std::shared_ptr<Tenant> TenantRegistry::find(const std::string& name) const {
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

bool TenantRegistry::pump(std::size_t budget) {
  bool pending = false;
  while (budget > 0) {
    bool progressed = false;
    for (auto& [name, tenant] : tenants_) {
      if (budget == 0) break;
      if (tenant->process_one()) {
        progressed = true;
        --budget;
      }
    }
    if (!progressed) break;
  }
  for (const auto& [name, tenant] : tenants_) {
    if (!tenant->queue_empty()) {
      pending = true;
      break;
    }
  }
  return pending;
}

void TenantRegistry::sweep(Tenant::Clock::time_point now) {
  for (auto it = tenants_.begin(); it != tenants_.end();) {
    Tenant& t = *it->second;
    const bool idle = cfg_.idle_evict.count() > 0 && t.attached() == 0 &&
                      t.queue_empty() && now - t.last_activity() >= cfg_.idle_evict;
    if (idle) {
      std::fprintf(stderr, "serve: evicting idle tenant '%s' (%llu records)\n",
                   t.name().c_str(),
                   static_cast<unsigned long long>(t.records_released()));
      it = tenants_.erase(it);
      ++evicted_;
    } else {
      ++it;
    }
  }
  // Long-lived tenants: run the engine's shadow-eviction sweep so the
  // active window stays bounded even between ingest-driven sweeps.
  for (auto& [name, tenant] : tenants_) tenant->engine_.sweep();
  if (obs::enabled()) {
    auto& reg = obs::registry();
    reg.gauge("serve_tenants_active").set(static_cast<double>(tenants_.size()));
    reg.counter("serve_tenants_evicted_total")
        .add(evicted_ - last_published_evicted_);
  }
  last_published_evicted_ = evicted_;
}

void TenantRegistry::flush_all() {
  for (auto& [name, tenant] : tenants_) {
    while (tenant->process_one()) {
    }
    tenant->flush();
  }
}

void TenantRegistry::for_each(const std::function<void(const Tenant&)>& fn) const {
  for (const auto& [name, tenant] : tenants_) fn(*tenant);
}

}  // namespace dnsctx::serve
