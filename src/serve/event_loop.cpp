#include "serve/event_loop.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include "util/strings.hpp"

namespace dnsctx::serve {

namespace {

/// Write end of the signal self-pipe. Written from the async signal
/// handler, so it must be a plain volatile int set before handlers are
/// installed (write() is async-signal-safe; nothing else is).
volatile int g_signal_pipe_wr = -1;

extern "C" void dnsctx_serve_on_signal(int) {
  const int fd = g_signal_pipe_wr;
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const auto rc = ::write(fd, &byte, 1);
  }
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw std::runtime_error{"serve: epoll_create1 failed"};
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::runtime_error{"serve: eventfd failed"};
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    throw std::runtime_error{"serve: cannot register wakeup fd"};
  }
  wheel_epoch_ = Clock::now();
}

EventLoop::~EventLoop() {
  if (signal_fd_ >= 0) {
    g_signal_pipe_wr = -1;
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    ::close(signal_fd_);
  }
  close_pending();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::add(int fd, FdHandler* handler, bool want_read, bool want_write, bool edge) {
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u) |
              (edge ? EPOLLET : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw std::runtime_error{strfmt("serve: epoll add fd %d: %s", fd, std::strerror(errno))};
  }
  handlers_[fd] = handler;
  edge_.insert_or_assign(fd, edge);
}

void EventLoop::modify(int fd, bool want_read, bool want_write) {
  const auto it = edge_.find(fd);
  const bool edge = it != edge_.end() && it->second;
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u) |
              (edge ? EPOLLET : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw std::runtime_error{strfmt("serve: epoll mod fd %d: %s", fd, std::strerror(errno))};
  }
}

void EventLoop::remove(int fd) {
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
  edge_.erase(fd);
  if (running_) {
    pending_close_.push_back(fd);
  } else {
    ::close(fd);
  }
}

EventLoop::TimerId EventLoop::add_timer(std::chrono::milliseconds delay,
                                        std::function<void()> fn) {
  const auto deadline = Clock::now() + delay;
  const TimerId id = next_timer_id_++;
  wheel_[slot_of(deadline)].push_back(Timer{id, deadline, std::move(fn)});
  if (timer_count_ == 0 || deadline < soonest_deadline_) soonest_deadline_ = deadline;
  ++timer_count_;
  return id;
}

void EventLoop::cancel_timer(TimerId id) {
  for (auto& slot : wheel_) {
    for (auto it = slot.begin(); it != slot.end(); ++it) {
      if (it->id == id) {
        slot.erase(it);
        --timer_count_;
        return;
      }
    }
  }
}

void EventLoop::defer(std::function<void()> fn) { deferred_.push_back(std::move(fn)); }

std::size_t EventLoop::slot_of(Clock::time_point deadline) const {
  const auto since =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - wheel_epoch_);
  const auto tick = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, since.count() / kTick.count()));
  return static_cast<std::size_t>(tick & (kWheelSlots - 1));
}

void EventLoop::advance_timers() {
  if (timer_count_ == 0) {
    // Keep the clock from having to replay a long idle gap slot by slot.
    const auto now = Clock::now();
    const auto since = std::chrono::duration_cast<std::chrono::milliseconds>(now - wheel_epoch_);
    next_tick_ = static_cast<std::uint64_t>(std::max<std::int64_t>(0, since.count() / kTick.count()));
    return;
  }
  const auto now = Clock::now();
  const auto since = std::chrono::duration_cast<std::chrono::milliseconds>(now - wheel_epoch_);
  const auto now_tick =
      static_cast<std::uint64_t>(std::max<std::int64_t>(0, since.count() / kTick.count()));
  std::vector<std::function<void()>> fired;
  // Visit at most one full revolution: beyond that the slots repeat, so
  // a longer gap cannot expose new entries.
  const std::uint64_t first = now_tick >= kWheelSlots && next_tick_ + kWheelSlots < now_tick
                                  ? now_tick - kWheelSlots
                                  : next_tick_;
  for (std::uint64_t tick = first; tick <= now_tick; ++tick) {
    auto& slot = wheel_[static_cast<std::size_t>(tick & (kWheelSlots - 1))];
    if (slot.empty()) continue;
    std::vector<Timer> keep;
    keep.reserve(slot.size());
    for (auto& t : slot) {
      if (t.deadline <= now) {
        fired.push_back(std::move(t.fn));
        --timer_count_;
      } else {
        keep.push_back(std::move(t));
      }
    }
    slot = std::move(keep);
  }
  next_tick_ = now_tick + 1;
  for (auto& fn : fired) fn();
}

int EventLoop::poll_timeout_ms() const {
  if (stopped() || !deferred_.empty() || idle_pending_) return 0;
  if (timer_count_ == 0) return -1;
  // Recompute the soonest deadline by scanning the wheel: the serve
  // workload carries a handful of timers, so the scan is cheaper than
  // maintaining a second ordered index.
  auto soonest = Clock::time_point::max();
  for (const auto& slot : wheel_) {
    for (const auto& t : slot) soonest = std::min(soonest, t.deadline);
  }
  const auto now = Clock::now();
  if (soonest <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(soonest - now);
  return static_cast<int>(std::min<std::int64_t>(ms.count() + 1, 60'000));
}

void EventLoop::drain_wakeup() {
  std::uint64_t v = 0;
  while (::read(wake_fd_, &v, sizeof v) > 0) {
  }
}

void EventLoop::run_deferred() {
  while (!deferred_.empty()) {
    std::vector<std::function<void()>> batch;
    batch.swap(deferred_);
    for (auto& fn : batch) fn();
  }
}

void EventLoop::close_pending() {
  for (const int fd : pending_close_) ::close(fd);
  pending_close_.clear();
}

void EventLoop::run_once(int timeout_ms) {
  running_ = true;
  std::array<epoll_event, 64> events{};
  const int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                             timeout_ms);
  for (std::size_t i = 0; i < static_cast<std::size_t>(std::max(n, 0)); ++i) {
    const int fd = events[i].data.fd;
    const std::uint32_t ev = events[i].events;
    if (fd == wake_fd_) {
      drain_wakeup();
      continue;
    }
    if (fd == signal_fd_) {
      char buf[16];
      while (::read(signal_fd_, buf, sizeof buf) > 0) {
      }
      if (on_signal_) on_signal_();
      stop();
      continue;
    }
    // Look the handler up per phase: a callback may remove its own fd
    // (or another's), and stale events must then be dropped.
    if (ev & EPOLLERR) {
      if (const auto it = handlers_.find(fd); it != handlers_.end()) it->second->on_error();
      continue;
    }
    if (ev & (EPOLLIN | EPOLLHUP)) {
      if (const auto it = handlers_.find(fd); it != handlers_.end()) it->second->on_readable();
    }
    if (ev & EPOLLOUT) {
      if (const auto it = handlers_.find(fd); it != handlers_.end()) it->second->on_writable();
    }
  }
  advance_timers();
  run_deferred();
  idle_pending_ = idle_work_ ? idle_work_() : false;
  close_pending();
  running_ = false;
}

void EventLoop::run() {
  stop_requested_.store(false, std::memory_order_relaxed);
  while (!stopped()) {
    run_once(poll_timeout_ms());
  }
  run_deferred();
  close_pending();
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  wake();
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto rc = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::watch_signals(std::function<void()> on_signal) {
  if (signal_fd_ >= 0) return;
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) < 0) {
    throw std::runtime_error{"serve: cannot create signal pipe"};
  }
  signal_fd_ = fds[0];
  g_signal_pipe_wr = fds[1];
  on_signal_ = std::move(on_signal);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = signal_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, signal_fd_, &ev) < 0) {
    throw std::runtime_error{"serve: cannot register signal pipe"};
  }
  struct sigaction sa{};
  sa.sa_handler = dnsctx_serve_on_signal;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace dnsctx::serve
