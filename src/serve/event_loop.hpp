// dnsctx — single-threaded epoll event loop for the telemetry server.
//
// One thread owns the loop; every handler callback, timer, and deferred
// task runs on it, so the serve layer needs no locks around connection
// or tenant state. The only thread-safe entry points are stop() and
// wake(), which post to an eventfd.
//
// Fds register a FdHandler with level- or edge-triggered semantics
// (edge-triggered handlers must drain until EAGAIN — the ingest and
// HTTP connections do). Handler dispatch looks the fd up in the live
// table per event, so a handler removed mid-batch (a connection closing
// itself) never sees the rest of its batch; the underlying close() is
// deferred to the end of the batch so the kernel cannot recycle the fd
// number into a stale queued event.
//
// Timers use a hashed timing wheel — the same calendar-queue design as
// netsim's EventQueue (src/netsim/event_queue.hpp), scaled down to
// wall-clock coarseness: 1024 slots × 4 ms ≈ 4.1 s per revolution,
// entries bucketed by deadline tick and lazily re-visited each
// revolution (the wheel analogue of the calendar cascade). The serve
// workload is timer-light (idle sweeps, shutdown grace), so one level
// suffices where the simulator needed three.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace dnsctx::serve {

class FdHandler {
 public:
  virtual ~FdHandler() = default;
  virtual void on_readable() {}
  virtual void on_writable() {}
  /// EPOLLERR / EPOLLHUP. Default folds into on_readable so a peer
  /// reset surfaces as a read() error on the next drain.
  virtual void on_error() { on_readable(); }
};

class EventLoop {
 public:
  using Clock = std::chrono::steady_clock;
  using TimerId = std::uint64_t;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` with `handler`. `edge` requests EPOLLET — the
  /// handler must then read/write until EAGAIN on every callback.
  void add(int fd, FdHandler* handler, bool want_read, bool want_write, bool edge = false);

  /// Change the interest set of a registered fd (trigger mode sticks).
  void modify(int fd, bool want_read, bool want_write);

  /// Deregister `fd`. The loop close()s it at the end of the current
  /// dispatch batch (immediately when called outside run()).
  void remove(int fd);

  /// One-shot timer `delay` from now; returns an id for cancel_timer.
  TimerId add_timer(std::chrono::milliseconds delay, std::function<void()> fn);
  void cancel_timer(TimerId id);

  /// Run `fn` on the loop thread after the current dispatch batch.
  void defer(std::function<void()> fn);

  /// Idle-work hook, invoked once per iteration after IO and timers.
  /// Return true while more work is pending — the next epoll_wait then
  /// polls (timeout 0) instead of blocking.
  void set_idle_work(std::function<bool()> fn) { idle_work_ = std::move(fn); }

  /// Dispatch until stop(). Re-entrant calls are a programming error.
  void run();

  /// Single poll-and-dispatch iteration (tests drive the loop manually).
  void run_once(int timeout_ms);

  /// Thread-safe: request run() to return after the current iteration.
  void stop();

  /// Thread-safe: wake a blocking epoll_wait without stopping.
  void wake();

  /// Route SIGINT/SIGTERM into stop() via a self-pipe (CLI mode; at
  /// most one loop per process may watch). `on_signal` runs on the
  /// loop thread before the loop exits.
  void watch_signals(std::function<void()> on_signal = {});

  [[nodiscard]] bool stopped() const { return stop_requested_.load(std::memory_order_relaxed); }

 private:
  struct Timer {
    TimerId id;
    Clock::time_point deadline;
    std::function<void()> fn;
  };

  static constexpr std::size_t kWheelSlots = 1024;  // power of two
  static constexpr std::chrono::milliseconds kTick{4};

  [[nodiscard]] std::size_t slot_of(Clock::time_point deadline) const;
  void advance_timers();
  [[nodiscard]] int poll_timeout_ms() const;
  void drain_wakeup();
  void run_deferred();
  void close_pending();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int signal_fd_ = -1;  ///< read end of the self-pipe (-1 = not watching)
  std::function<void()> on_signal_;

  std::map<int, FdHandler*> handlers_;
  std::map<int, bool> edge_;  ///< trigger mode per fd (modify() preserves it)
  std::vector<int> pending_close_;
  std::vector<std::function<void()>> deferred_;
  std::function<bool()> idle_work_;

  std::vector<std::vector<Timer>> wheel_{kWheelSlots};
  Clock::time_point wheel_epoch_;   ///< tick 0 reference
  std::uint64_t next_tick_ = 0;     ///< first not-yet-visited tick
  std::size_t timer_count_ = 0;
  TimerId next_timer_id_ = 1;
  Clock::time_point soonest_deadline_;  ///< valid while timer_count_ > 0

  bool running_ = false;
  bool idle_pending_ = false;
  std::atomic<bool> stop_requested_{false};
};

}  // namespace dnsctx::serve
