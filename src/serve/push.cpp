#include "serve/push.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <unistd.h>

#include "serve/sockets.hpp"
#include "util/strings.hpp"

namespace dnsctx::serve {

PushClient::PushClient(const std::string& host, std::uint16_t port, Handshake hs) {
  fd_ = connect_tcp(host, port);
  send_all(encode_handshake(hs));
}

PushClient::~PushClient() {
  if (fd_ >= 0) ::close(fd_);
}

void PushClient::send_segment(std::string_view blob) {
  std::string frame;
  frame.reserve(4 + blob.size());
  append_data_frame(frame, blob);
  send_all(frame);
}

void PushClient::flush() {
  std::string frame;
  append_flush_frame(frame);
  send_all(frame);
}

void PushClient::send_all(std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const auto n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Server backpressure: wait for the socket to drain.
      pollfd pfd{fd_, POLLOUT, 0};
      if (::poll(&pfd, 1, 60'000) <= 0) {
        throw std::runtime_error{"push: timed out waiting for server to drain"};
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error{strfmt("push: write failed: %s", std::strerror(errno))};
  }
  bytes_sent_ += bytes.size();
}

std::uint64_t PushClient::read_ack(int timeout_ms) {
  unsigned char buf[8];
  std::size_t got = 0;
  while (got < sizeof buf) {
    const auto n = ::read(fd_, buf + got, sizeof buf - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) throw std::runtime_error{"push: connection closed while awaiting ack"};
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, timeout_ms) <= 0) {
        throw std::runtime_error{"push: timed out waiting for ack"};
      }
      continue;
    }
    if (errno == EINTR) continue;
    throw std::runtime_error{strfmt("push: ack read failed: %s", std::strerror(errno))};
  }
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

}  // namespace dnsctx::serve
