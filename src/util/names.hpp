// dnsctx — global string interning for DNS names and platform labels.
//
// Every one of the millions of simulated DNS transactions used to carry
// its qname as an owned std::string: one heap allocation per record at
// capture time, re-hashed at every analysis stage that keys a map by
// name. The corpus only contains a few thousand DISTINCT names, so the
// pipeline interns each distinct string once into a process-wide
// NameTable and passes a dense 32-bit NameId everywhere else. Equality
// becomes an integer compare, map keys become POD (see
// util/flat_map.hpp), and the string itself is materialized exactly
// once per distinct name.
//
// NameIds are assigned first-come: with concurrent interners (sharded
// simulation) the id VALUES may differ between runs. Nothing
// user-visible may therefore depend on id order — ids are opaque
// handles; reports and exports go through view() and sort by string or
// by observable counters.
#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace dnsctx::util {

/// Dense handle to an interned string. 0 is always the empty string.
using NameId = std::uint32_t;

/// Thread-safe append-only string interner. Lookups of already-interned
/// names (the steady state — every record after the first per distinct
/// name) take a shared lock; only a genuinely new string takes the
/// exclusive lock. Views handed out are stable for the table's lifetime
/// (deque arena; strings never move or die).
class NameTable {
 public:
  NameTable();

  /// The process-wide table used by InternedName.
  [[nodiscard]] static NameTable& global();

  /// Intern `s`, returning its dense id (existing id if already known).
  [[nodiscard]] NameId intern(std::string_view s);

  /// Reverse lookup. The view stays valid for the table's lifetime.
  /// Throws std::out_of_range for an id never handed out.
  [[nodiscard]] std::string_view view(NameId id) const;

  /// Number of distinct strings interned (including the empty string).
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  std::deque<std::string> arena_;  ///< index == NameId; stable storage
  std::unordered_map<std::string_view, NameId> ids_;  ///< views into arena_
};

/// A 4-byte interned string. Implicitly convertible from every string
/// flavor so existing call sites (`rec.query = "conncheck.local"`,
/// `rec.query == cfg.name`) keep reading naturally; comparisons are id
/// compares against the global table.
class InternedName {
 public:
  constexpr InternedName() = default;  ///< the empty string
  InternedName(std::string_view s) : id_{NameTable::global().intern(s)} {}
  InternedName(const char* s) : InternedName{std::string_view{s}} {}
  InternedName(const std::string& s) : InternedName{std::string_view{s}} {}
  [[nodiscard]] static constexpr InternedName from_id(NameId id) {
    InternedName n;
    n.id_ = id;
    return n;
  }

  [[nodiscard]] constexpr NameId id() const { return id_; }
  [[nodiscard]] constexpr bool empty() const { return id_ == 0; }
  constexpr void clear() { id_ = 0; }

  /// The interned characters (stable for the process lifetime).
  [[nodiscard]] std::string_view view() const { return NameTable::global().view(id_); }
  [[nodiscard]] std::string str() const { return std::string{view()}; }

  [[nodiscard]] friend constexpr bool operator==(InternedName a, InternedName b) {
    return a.id_ == b.id_;
  }
  friend std::ostream& operator<<(std::ostream& os, InternedName n) {
    return os << n.view();
  }

 private:
  NameId id_ = 0;
};

}  // namespace dnsctx::util
