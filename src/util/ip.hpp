// dnsctx — IPv4 addressing and transport 5-tuples.
//
// The simulated network is IPv4-only (the paper's analysis keys on A
// records; AAAA handling in the codec exists but the traffic model emits
// v4). Addresses are a strong wrapper over a host-order u32.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace dnsctx {

/// An IPv4 address (host byte order internally).
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;

  /// From dotted-quad octets: Ipv4Addr{8,8,8,8}.
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : v_{(static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
           (static_cast<std::uint32_t>(c) << 8) | static_cast<std::uint32_t>(d)} {}

  [[nodiscard]] static constexpr Ipv4Addr from_u32(std::uint32_t v) {
    Ipv4Addr a;
    a.v_ = v;
    return a;
  }

  /// Parse "a.b.c.d"; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Addr> parse(std::string_view s);

  [[nodiscard]] constexpr std::uint32_t to_u32() const { return v_; }
  [[nodiscard]] constexpr bool is_unspecified() const { return v_ == 0; }
  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t v_ = 0;
};

/// Transport protocol of a simulated flow.
enum class Proto : std::uint8_t { kTcp, kUdp };

[[nodiscard]] constexpr std::string_view to_string(Proto p) {
  return p == Proto::kTcp ? "tcp" : "udp";
}

/// Classic connection 5-tuple. `orig` is the initiator side.
struct FiveTuple {
  Ipv4Addr orig_ip;
  Ipv4Addr resp_ip;
  std::uint16_t orig_port = 0;
  std::uint16_t resp_port = 0;
  Proto proto = Proto::kTcp;

  constexpr auto operator<=>(const FiveTuple&) const = default;

  /// The same flow seen from the responder's perspective (for matching
  /// reply packets to the tracked connection).
  [[nodiscard]] constexpr FiveTuple reversed() const {
    return FiveTuple{resp_ip, orig_ip, resp_port, orig_port, proto};
  }
};

/// Ports below this value are IANA "reserved" / well-known for the paper's
/// high-port heuristic (§5.1 uses non-reserved on both ends as a P2P mark).
inline constexpr std::uint16_t kReservedPortLimit = 1024;

/// Mix a value into a running hash (splitmix64 finalizer over the sum).
/// Unlike the classic multiply-xor combiners, every input bit diffuses
/// into every output bit, so composite keys built from structured data
/// (addresses, ports, ids) don't cluster hash buckets.
[[nodiscard]] constexpr std::size_t hash_combine(std::size_t seed, std::uint64_t value) {
  std::uint64_t x = static_cast<std::uint64_t>(seed) + 0x9e3779b97f4a7c15ULL + value;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(x ^ (x >> 31));
}

struct FiveTupleHash {
  [[nodiscard]] std::size_t operator()(const FiveTuple& t) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(t.orig_ip.to_u32());
    mix(t.resp_ip.to_u32());
    mix(static_cast<std::uint64_t>(t.orig_port) << 17);
    mix(static_cast<std::uint64_t>(t.resp_port) << 1);
    mix(static_cast<std::uint64_t>(t.proto));
    return static_cast<std::size_t>(h);
  }
};

struct Ipv4Hash {
  [[nodiscard]] std::size_t operator()(const Ipv4Addr& a) const noexcept {
    std::uint64_t x = a.to_u32();
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace dnsctx
