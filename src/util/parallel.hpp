// dnsctx — deterministic parallel execution primitives.
//
// Determinism contract: every helper here partitions work into chunks
// whose layout depends ONLY on the problem size (and a fixed grain),
// never on the thread count, and reduces per-chunk results in chunk
// order. A caller that is itself order-independent within a chunk
// therefore produces bit-identical output for any `threads` value —
// including `threads = 1`, which runs the very same chunked code inline
// with no pool at all (so single-threaded callers keep exercising the
// exact sequential path).
//
// The pool is deliberately work-stealing-free: workers pull chunk
// indices from one shared atomic counter. Chunks are coarse (thousands
// of records each), so contention on the counter is negligible and the
// scheduling stays trivial to reason about.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace dnsctx::util {

/// Map a requested thread count onto an effective one: 0 = "use the
/// hardware", anything else is taken literally (clamped to >= 1).
[[nodiscard]] unsigned resolve_thread_count(unsigned requested);

/// A minimal fixed-size pool. `dispatch(count, task)` runs task(i) for
/// every i in [0, count) across the workers plus the calling thread and
/// blocks until all are done; the first exception thrown by any task is
/// rethrown on the caller. With zero workers (thread_count <= 1) the
/// dispatch degenerates to a plain inline loop.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned thread_count);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executing threads (workers + the dispatching caller).
  [[nodiscard]] unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  void dispatch(std::size_t count, const std::function<void(std::size_t)>& task);

 private:
  void worker_loop();
  void run_tasks(std::size_t count, const std::function<void(std::size_t)>& task);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t job_id_ = 0;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t task_count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;  ///< workers still inside the current job
  std::exception_ptr error_;
  bool stop_ = false;
};

/// Default records-per-chunk grain for the analysis passes. Fixed so the
/// chunk layout — and hence every merged accumulator — is independent of
/// the machine and the thread count.
inline constexpr std::size_t kDefaultGrain = 65'536;

[[nodiscard]] constexpr std::size_t chunk_count(std::size_t n, std::size_t grain) {
  return n == 0 ? 0 : (n + grain - 1) / grain;
}

/// Run body(begin, end) over [0, n) split into grain-sized chunks.
/// Chunk layout is thread-count-independent; bodies must only write
/// state disjoint per chunk (or otherwise commutative).
template <typename Body>
void parallel_for_chunks(unsigned threads, std::size_t n, std::size_t grain, Body&& body) {
  const std::size_t chunks = chunk_count(n, grain);
  if (chunks == 0) return;
  auto run_chunk = [&](std::size_t c) {
    const std::size_t begin = c * grain;
    body(begin, std::min(begin + grain, n));
  };
  const unsigned effective = resolve_thread_count(threads);
  if (effective <= 1 || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
    return;
  }
  ThreadPool pool{effective};
  pool.dispatch(chunks, run_chunk);
}

/// Run body(i) for every i in [0, n) (grain 1 — per-item tasks; used
/// where items are heavy, e.g. one simulation shard or one house).
template <typename Body>
void parallel_for_each(unsigned threads, std::size_t n, Body&& body) {
  const unsigned effective = resolve_thread_count(threads);
  if (effective <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool{effective};
  pool.dispatch(n, [&](std::size_t i) { body(i); });
}

/// Map [0, n) in grain-sized chunks through `map(begin, end) -> Acc`,
/// then fold the per-chunk accumulators IN CHUNK ORDER with
/// `reduce(Acc& into, Acc&& part)`. Because the chunk layout and the
/// reduce order are fixed, the result is identical for any `threads`.
template <typename Acc, typename Map, typename Reduce>
[[nodiscard]] Acc parallel_map_reduce(unsigned threads, std::size_t n, std::size_t grain,
                                      Map&& map, Reduce&& reduce) {
  const std::size_t chunks = chunk_count(n, grain);
  Acc out{};
  if (chunks == 0) return out;
  std::vector<Acc> parts(chunks);
  parallel_for_chunks(threads, n, grain, [&](std::size_t begin, std::size_t end) {
    parts[begin / grain] = map(begin, end);
  });
  for (auto& part : parts) reduce(out, std::move(part));
  return out;
}

}  // namespace dnsctx::util
