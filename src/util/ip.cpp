#include "util/ip.hpp"

#include <charconv>
#include <cstdio>

namespace dnsctx {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view s) {
  std::uint32_t octets[4] = {};
  const char* p = s.data();
  const char* end = s.data() + s.size();
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (p >= end || *p != '.') return std::nullopt;
      ++p;
    }
    std::uint32_t v = 0;
    auto [ptr, ec] = std::from_chars(p, end, v);
    if (ec != std::errc{} || ptr == p || v > 255) return std::nullopt;
    octets[i] = v;
    p = ptr;
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr::from_u32((octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]);
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (v_ >> 24) & 0xff, (v_ >> 16) & 0xff,
                (v_ >> 8) & 0xff, v_ & 0xff);
  return buf;
}

}  // namespace dnsctx
