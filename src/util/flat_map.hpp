// dnsctx — open-addressing hash containers for the per-record hot paths.
//
// FlatMap is a power-of-two, linear-probe table over one dense
// std::vector<std::pair<K,V>> plus a byte-per-slot occupancy array: no
// per-node allocation, no bucket pointer chasing, and erase() uses
// backward-shift deletion so the table never accumulates tombstones
// (probe lengths depend only on the current load, not on history).
// Growth doubles at 80% load. Keys are expected to be small trivially
// copyable values (integers, Ipv4Addr, NameId); values must be
// default-constructible and movable. Iteration order is an
// implementation detail — anything user-visible must sort first, same
// as with std::unordered_map.
//
// Invariants (see docs/PERF.md):
//   - capacity is 0 or a power of two; load factor ≤ 0.8,
//   - every element sits within a contiguous (wrapping) probe run from
//     its home slot: lookup stops at the first empty slot,
//   - erase backward-shifts the following run, so the invariant above
//     survives deletions without tombstones.
#pragma once

#include <cstdint>
#include <functional>
#include <iterator>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/ip.hpp"

namespace dnsctx::util {

/// Default hasher: splitmix64-finalize integral keys (sequential ids —
/// NameIds, house indices — would otherwise cluster probe runs), defer
/// to std::hash for anything else.
template <class K>
struct FlatHash {
  [[nodiscard]] std::size_t operator()(const K& k) const noexcept {
    if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
      return hash_combine(0, static_cast<std::uint64_t>(k));
    } else {
      return std::hash<K>{}(k);
    }
  }
};

template <>
struct FlatHash<Ipv4Addr> {
  [[nodiscard]] std::size_t operator()(const Ipv4Addr& a) const noexcept {
    return hash_combine(0, a.to_u32());
  }
};

template <class K, class V, class Hash = FlatHash<K>, class Eq = std::equal_to<K>>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;

  template <bool Const>
  class Iter {
   public:
    using value_type = std::pair<K, V>;
    using Owner = std::conditional_t<Const, const FlatMap, FlatMap>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    using Ptr = std::conditional_t<Const, const value_type*, value_type*>;

    using iterator_category = std::forward_iterator_tag;
    using difference_type = std::ptrdiff_t;
    using pointer = Ptr;
    using reference = Ref;

    Iter() = default;
    Iter(Owner* owner, std::size_t idx) : owner_{owner}, idx_{idx} { skip(); }
    /// const_iterator from iterator.
    template <bool C = Const, class = std::enable_if_t<C>>
    Iter(const Iter<false>& other) : owner_{other.owner_}, idx_{other.idx_} {}

    [[nodiscard]] Ref operator*() const { return owner_->slots_[idx_]; }
    [[nodiscard]] Ptr operator->() const { return &owner_->slots_[idx_]; }
    Iter& operator++() {
      ++idx_;
      skip();
      return *this;
    }
    [[nodiscard]] bool operator==(const Iter& o) const { return idx_ == o.idx_; }
    [[nodiscard]] bool operator!=(const Iter& o) const { return idx_ != o.idx_; }

   private:
    friend class FlatMap;
    template <bool>
    friend class Iter;
    void skip() {
      while (owner_ != nullptr && idx_ < owner_->used_.size() && owner_->used_[idx_] == 0) {
        ++idx_;
      }
    }
    Owner* owner_ = nullptr;
    std::size_t idx_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  [[nodiscard]] iterator begin() { return {this, 0}; }
  [[nodiscard]] iterator end() { return {this, slots_.size()}; }
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, slots_.size()}; }

  void clear() {
    slots_.clear();
    used_.clear();
    size_ = 0;
  }

  /// Pre-size so that `n` elements fit without a rehash.
  void reserve(std::size_t n) {
    if (n == 0) return;
    std::size_t cap = 8;
    while (cap * 4 < n * 5) cap <<= 1;  // cap * 0.8 >= n
    if (cap > slots_.size()) rehash(cap);
  }

  /// Lookups are heterogeneous: any K2 that Hash and Eq accept works,
  /// so callers with composite keys can probe with a reference view
  /// instead of materializing a K.
  template <class K2 = K>
  [[nodiscard]] iterator find(const K2& key) {
    const std::size_t idx = locate(key);
    return idx == npos ? end() : iterator{this, idx};
  }
  template <class K2 = K>
  [[nodiscard]] const_iterator find(const K2& key) const {
    const std::size_t idx = locate(key);
    return idx == npos ? end() : const_iterator{this, idx};
  }
  template <class K2 = K>
  [[nodiscard]] bool contains(const K2& key) const {
    return locate(key) != npos;
  }
  template <class K2 = K>
  [[nodiscard]] std::size_t count(const K2& key) const {
    return locate(key) == npos ? 0 : 1;
  }

  [[nodiscard]] V& operator[](const K& key) { return slots_[slot_for(key).first].second; }

  [[nodiscard]] V& at(const K& key) {
    const std::size_t idx = locate(key);
    if (idx == npos) throw std::out_of_range{"FlatMap::at: key not found"};
    return slots_[idx].second;
  }
  [[nodiscard]] const V& at(const K& key) const {
    const std::size_t idx = locate(key);
    if (idx == npos) throw std::out_of_range{"FlatMap::at: key not found"};
    return slots_[idx].second;
  }

  template <class... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    const auto [idx, inserted] = slot_for(key, std::forward<Args>(args)...);
    return {iterator{this, idx}, inserted};
  }

  std::pair<iterator, bool> insert(const value_type& kv) {
    return try_emplace(kv.first, kv.second);
  }

  /// Erase by key (heterogeneous, like find). Backward-shift: re-seat the
  /// following probe run so no tombstone is left behind. Returns the
  /// number of erased elements.
  template <class K2 = K>
  std::size_t erase(const K2& key) {
    std::size_t idx = locate(key);
    if (idx == npos) return 0;
    const std::size_t mask = slots_.size() - 1;
    std::size_t hole = idx;
    std::size_t next = (hole + 1) & mask;
    while (used_[next] != 0) {
      const std::size_t home = hash_(slots_[next].first) & mask;
      // Move `next` into the hole iff its home slot does not sit inside
      // (hole, next] — i.e. the element's probe run passes the hole.
      const bool reachable = ((next - home) & mask) >= ((next - hole) & mask);
      if (reachable) {
        slots_[hole] = std::move(slots_[next]);
        hole = next;
      }
      next = (next + 1) & mask;
    }
    slots_[hole] = value_type{};
    used_[hole] = 0;
    --size_;
    return 1;
  }

  /// Current load (size / capacity); 0 for the empty table. Diagnostic —
  /// the growth policy keeps this ≤ 0.8.
  [[nodiscard]] double load_factor() const {
    return slots_.empty() ? 0.0
                          : static_cast<double>(size_) / static_cast<double>(slots_.size());
  }

  /// Longest current probe distance (diagnostic; tests bound it).
  [[nodiscard]] std::size_t max_probe_length() const {
    if (slots_.empty()) return 0;
    const std::size_t mask = slots_.size() - 1;
    std::size_t worst = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i] == 0) continue;
      const std::size_t home = hash_(slots_[i].first) & mask;
      worst = std::max(worst, (i - home) & mask);
    }
    return worst;
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  template <class K2>
  [[nodiscard]] std::size_t locate(const K2& key) const {
    if (slots_.empty()) return npos;
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = hash_(key) & mask;
    while (used_[idx] != 0) {
      if (eq_(slots_[idx].first, key)) return idx;
      idx = (idx + 1) & mask;
    }
    return npos;
  }

  /// Find-or-insert; returns {slot index, inserted}.
  template <class... Args>
  std::pair<std::size_t, bool> slot_for(const K& key, Args&&... args) {
    if (slots_.empty() || (size_ + 1) * 5 > slots_.size() * 4) {
      rehash(slots_.empty() ? 8 : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = hash_(key) & mask;
    while (used_[idx] != 0) {
      if (eq_(slots_[idx].first, key)) return {idx, false};
      idx = (idx + 1) & mask;
    }
    slots_[idx] = value_type{key, V{std::forward<Args>(args)...}};
    used_[idx] = 1;
    ++size_;
    return {idx, true};
  }

  void rehash(std::size_t new_cap) {
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    // resize (not assign) so move-only values (e.g. unique_ptr) work:
    // fresh slots are default-constructed, never copied from a template.
    slots_.clear();
    slots_.resize(new_cap);
    used_.assign(new_cap, 0);
    const std::size_t mask = new_cap - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_used[i] == 0) continue;
      std::size_t idx = hash_(old_slots[i].first) & mask;
      while (used_[idx] != 0) idx = (idx + 1) & mask;
      slots_[idx] = std::move(old_slots[i]);
      used_[idx] = 1;
    }
  }

  std::vector<value_type> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
  [[no_unique_address]] Hash hash_{};
  [[no_unique_address]] Eq eq_{};
};

/// Set counterpart (dense open addressing over bare keys). Only the
/// operations the tallies need: insert, contains, size, iterate, merge.
template <class K, class Hash = FlatHash<K>, class Eq = std::equal_to<K>>
class FlatSet {
 public:
  using iterator = typename FlatMap<K, char, Hash, Eq>::const_iterator;

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  /// Returns true when the key was newly inserted.
  bool insert(const K& key) { return map_.try_emplace(key).second; }
  [[nodiscard]] bool contains(const K& key) const { return map_.contains(key); }
  std::size_t erase(const K& key) { return map_.erase(key); }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const auto& kv : map_) fn(kv.first);
  }

 private:
  FlatMap<K, char, Hash, Eq> map_;
};

}  // namespace dnsctx::util
