#include "util/cli.hpp"

#include <charconv>
#include <stdexcept>

#include "util/strings.hpp"

namespace dnsctx {

CliArgs parse_cli(std::span<const char* const> argv) {
  CliArgs out;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() == 2) {
      out.positionals.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    if (const auto eq = body.find('='); eq != std::string::npos) {
      out.options[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    const bool next_is_value =
        i + 1 < argv.size() && std::string{argv[i + 1]}.rfind("--", 0) != 0;
    if (next_is_value) {
      out.options[body] = argv[++i];
    } else {
      out.flags.insert(body);
    }
  }
  return out;
}

long long CliArgs::int_option_or(const std::string& name, long long fallback) const {
  const auto v = option(name);
  if (!v) return fallback;
  long long parsed = 0;
  const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), parsed);
  if (ec != std::errc{} || ptr != v->data() + v->size()) {
    throw std::runtime_error{strfmt("--%s expects an integer, got '%s'", name.c_str(),
                                    v->c_str())};
  }
  return parsed;
}

double CliArgs::double_option_or(const std::string& name, double fallback) const {
  const auto v = option(name);
  if (!v) return fallback;
  double parsed = 0;
  const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), parsed);
  if (ec != std::errc{} || ptr != v->data() + v->size()) {
    throw std::runtime_error{strfmt("--%s expects a number, got '%s'", name.c_str(),
                                    v->c_str())};
  }
  return parsed;
}

std::vector<std::string> CliArgs::unknown_keys(const std::set<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : options) {
    if (!known.contains(key)) out.push_back(key);
  }
  for (const auto& key : flags) {
    if (!known.contains(key)) out.push_back(key);
  }
  return out;
}

}  // namespace dnsctx
