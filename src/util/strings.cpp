#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace dnsctx {

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool is_subdomain_of(std::string_view name, std::string_view zone) {
  if (zone.empty() || name.size() < zone.size()) return false;
  if (name.size() == zone.size()) return name == zone;
  if (name.substr(name.size() - zone.size()) != zone) return false;
  return name[name.size() - zone.size() - 1] == '.';
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace dnsctx
