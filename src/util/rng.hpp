// dnsctx — deterministic random number generation.
//
// Reproducibility rule: a single master seed fans out to independent
// per-component streams via `derive_seed` (SplitMix64 over a label hash),
// so adding a consumer never perturbs the draws of existing ones. The
// engine is xoshiro256++, a small, fast generator suitable for simulation
// (not cryptography).
#pragma once

#include <cstdint>
#include <cmath>
#include <span>
#include <string_view>
#include <vector>

namespace dnsctx {

/// SplitMix64 step — used for seeding and stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derive an independent stream seed from a master seed and a label
/// (e.g. "house42/browser"). Stable across runs and platforms.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master, std::string_view label);

/// Derive with a numeric component (per-house, per-device indices).
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master, std::string_view label,
                                        std::uint64_t index);

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Uniform in [0, n). Requires n > 0. Debiased via rejection.
  [[nodiscard]] std::uint64_t bounded(std::uint64_t n) {
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) {
    double u;
    do { u = uniform(); } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (single draw; the pair is not cached
  /// to keep the stream state trivially explainable).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) {
    double u1;
    do { u1 = uniform(); } while (u1 <= 0.0);
    const double u2 = uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// Log-normal given the *underlying* normal's mu/sigma.
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Bounded Pareto on [lo, hi] with shape alpha (> 0). Heavy-tailed
  /// sizes/durations throughout the traffic model.
  [[nodiscard]] double pareto(double alpha, double lo, double hi) {
    const double u = uniform();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

  /// Pick an index from unnormalised non-negative weights. Requires a
  /// non-empty span with positive total weight.
  [[nodiscard]] std::size_t pick_weighted(std::span<const double> weights);

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

/// Zipf(s) sampler over ranks 1..n using a precomputed CDF table.
/// Used for domain-name popularity, which is famously Zipf-like.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Sample a 0-based rank (0 = most popular).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

  /// Probability mass of rank r (0-based).
  [[nodiscard]] double pmf(std::size_t r) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace dnsctx
