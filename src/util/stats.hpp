// dnsctx — small statistics toolkit used by the analysis pipeline and the
// benchmark tables: streaming moments, empirical CDFs with quantiles, and
// fixed-bin histograms for mode detection.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace dnsctx {

/// Count/mean/variance/min/max without storing samples (Welford).
class StreamingStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Empirical distribution over stored samples. Samples are sorted lazily
/// on first query; adding after a query re-marks the container dirty.
///
/// Thread safety: mutation (`add`/`add_all`/`absorb`/`seal`) requires
/// exclusive access, like any container. Const queries from several
/// threads are safe: the lazy sort is internally synchronized (an atomic
/// sealed flag double-checked under a mutex), and once a Cdf is sealed —
/// explicitly via `seal()` or implicitly by the first query — concurrent
/// readers never touch the lock. Builders that hand a Cdf to the
/// parallel layer should `seal()` it first so the read side stays
/// lock-free.
class Cdf {
 public:
  Cdf() = default;
  Cdf(const Cdf& other);
  Cdf& operator=(const Cdf& other);
  // Moves assume exclusive access to both operands (no lock taken).
  Cdf(Cdf&& other) noexcept;
  Cdf& operator=(Cdf&& other) noexcept;

  void add(double x) {
    xs_.push_back(x);
    sorted_.store(false, std::memory_order_relaxed);
  }
  void add_all(std::span<const double> xs);
  void reserve(std::size_t n) { xs_.reserve(n); }

  /// Append every sample of `other` (map-reduce accumulator merge).
  void absorb(const Cdf& other);

  /// Sort now. After sealing, const queries are pure reads — share the
  /// Cdf across threads freely until the next mutation unseals it.
  void seal();
  [[nodiscard]] bool sealed() const { return sorted_.load(std::memory_order_acquire); }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }

  /// Quantile in [0,1]; linear interpolation between order statistics.
  /// Requires a non-empty distribution.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

  /// Fraction of samples <= x (the CDF evaluated at x). 0 when empty.
  [[nodiscard]] double fraction_at_or_below(double x) const;

  /// Fraction of samples strictly greater than x.
  [[nodiscard]] double fraction_above(double x) const {
    return empty() ? 0.0 : 1.0 - fraction_at_or_below(x);
  }

  /// Sorted view of the samples (forces the sort).
  [[nodiscard]] std::span<const double> sorted() const;

  /// Raw sample view in insertion order — no sort. For order-independent
  /// consumers only (histogram bin counts, sums); the order changes once
  /// any quantile forces the in-place sort.
  [[nodiscard]] std::span<const double> values() const { return xs_; }

 private:
  void ensure_sorted() const;
  mutable std::mutex sort_mu_;  ///< serializes the lazy sort only
  mutable std::vector<double> xs_;
  mutable std::atomic<bool> sorted_{true};
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into
/// the edge bins. Used for delay-mode detection (§5.3 thresholds).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) { add(x, 1); }
  /// Weighted add: `weight` samples of value `x` (streaming accumulators
  /// replay pre-binned multisets through the same clamping arithmetic).
  /// The bin is clamped in floating point BEFORE any integral cast, so
  /// ±inf and values beyond ±2^63 land in the edge bins; NaN goes into
  /// the `invalid()` tally and never reaches a bin or `total()`.
  void add(double x, std::uint64_t weight);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count_in(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Samples rejected as NaN (not part of `total()`).
  [[nodiscard]] std::uint64_t invalid() const { return invalid_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_width() const { return width_; }

  /// Index of the most populated bin (ties -> lowest index).
  [[nodiscard]] std::size_t mode_bin() const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t invalid_ = 0;
};

/// One row of a printed CDF series: (x, F(x)).
struct CdfPoint {
  double x;
  double f;
};

/// Sample a CDF at `points` evenly spaced quantiles for table output.
[[nodiscard]] std::vector<CdfPoint> sample_cdf(const Cdf& cdf, std::size_t points);

/// Render an ASCII CDF plot (x ascending) for bench output; `label` is the
/// series name, `unit` annotates the x axis.
[[nodiscard]] std::string render_ascii_cdf(const Cdf& cdf, const std::string& label,
                                           const std::string& unit, std::size_t rows = 10);

}  // namespace dnsctx
