// dnsctx — minimal command-line argument parsing for the tools.
//
// Grammar: positional tokens, `--key value`, `--key=value`, and bare
// `--flag`. A `--key` followed by another `--token` (or nothing) parses
// as a flag. No registration step: callers query what they need and can
// reject leftovers explicitly.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

namespace dnsctx {

struct CliArgs {
  std::vector<std::string> positionals;
  std::map<std::string, std::string> options;  ///< --key value / --key=value
  std::set<std::string> flags;                 ///< bare --key

  [[nodiscard]] bool has_flag(const std::string& name) const { return flags.contains(name); }

  [[nodiscard]] std::optional<std::string> option(const std::string& name) const {
    const auto it = options.find(name);
    if (it == options.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::string option_or(const std::string& name, std::string fallback) const {
    return option(name).value_or(std::move(fallback));
  }

  /// Numeric option with default; throws std::runtime_error naming the
  /// option on malformed input.
  [[nodiscard]] long long int_option_or(const std::string& name, long long fallback) const;
  [[nodiscard]] double double_option_or(const std::string& name, double fallback) const;

  /// Names of options/flags not in `known` (for strict validation).
  [[nodiscard]] std::vector<std::string> unknown_keys(const std::set<std::string>& known) const;
};

/// Parse argv[1..]; never throws.
[[nodiscard]] CliArgs parse_cli(std::span<const char* const> argv);

}  // namespace dnsctx
