#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dnsctx {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

Cdf::Cdf(const Cdf& other) {
  // Lock `other` so a concurrent lazy sort on it cannot shear the copy.
  std::lock_guard lock{other.sort_mu_};
  xs_ = other.xs_;
  sorted_.store(other.sorted_.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

Cdf& Cdf::operator=(const Cdf& other) {
  if (this == &other) return *this;
  std::lock_guard lock{other.sort_mu_};
  xs_ = other.xs_;
  sorted_.store(other.sorted_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  return *this;
}

Cdf::Cdf(Cdf&& other) noexcept
    : xs_{std::move(other.xs_)},
      sorted_{other.sorted_.load(std::memory_order_relaxed)} {
  other.xs_.clear();
  other.sorted_.store(true, std::memory_order_relaxed);
}

Cdf& Cdf::operator=(Cdf&& other) noexcept {
  if (this == &other) return *this;
  xs_ = std::move(other.xs_);
  sorted_.store(other.sorted_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  other.xs_.clear();
  other.sorted_.store(true, std::memory_order_relaxed);
  return *this;
}

void Cdf::add_all(std::span<const double> xs) {
  xs_.insert(xs_.end(), xs.begin(), xs.end());
  sorted_.store(false, std::memory_order_relaxed);
}

void Cdf::absorb(const Cdf& other) {
  if (other.xs_.empty()) return;
  xs_.insert(xs_.end(), other.xs_.begin(), other.xs_.end());
  sorted_.store(false, std::memory_order_relaxed);
}

void Cdf::seal() { ensure_sorted(); }

void Cdf::ensure_sorted() const {
  // Double-checked: the common case (already sealed) is one acquire
  // load; the first querying thread sorts under the mutex, everyone
  // racing it waits, and the release store publishes the sorted vector.
  if (sorted_.load(std::memory_order_acquire)) return;
  std::lock_guard lock{sort_mu_};
  if (!sorted_.load(std::memory_order_relaxed)) {
    std::sort(xs_.begin(), xs_.end());
    sorted_.store(true, std::memory_order_release);
  }
}

double Cdf::quantile(double q) const {
  if (xs_.empty()) throw std::logic_error{"Cdf::quantile on empty distribution"};
  ensure_sorted();
  if (q <= 0.0) return xs_.front();
  if (q >= 1.0) return xs_.back();
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs_.size()) return xs_.back();
  return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

double Cdf::fraction_at_or_below(double x) const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  return static_cast<double>(std::distance(xs_.begin(), it)) /
         static_cast<double>(xs_.size());
}

std::span<const double> Cdf::sorted() const {
  ensure_sorted();
  return xs_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_{lo} {
  if (bins == 0 || hi <= lo) throw std::invalid_argument{"Histogram: bad range/bins"};
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x, std::uint64_t weight) {
  if (std::isnan(x)) {
    invalid_ += weight;
    return;
  }
  // Clamp while still in floating point: casting an out-of-range double
  // (beyond ±2^63, or ±inf) to an integer is UB, so the old
  // cast-then-clamp order was only safe for tame inputs.
  const double pos = (x - lo_) / width_;
  std::size_t idx;
  if (!(pos > 0.0)) {
    idx = 0;
  } else if (pos >= static_cast<double>(counts_.size())) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>(pos);
  }
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * width_;
}

std::size_t Histogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::distance(counts_.begin(), std::max_element(counts_.begin(), counts_.end())));
}

std::vector<CdfPoint> sample_cdf(const Cdf& cdf, std::size_t points) {
  std::vector<CdfPoint> out;
  if (cdf.empty() || points == 0) return out;
  out.reserve(points + 1);
  for (std::size_t i = 0; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.push_back(CdfPoint{cdf.quantile(q), q});
  }
  return out;
}

std::string render_ascii_cdf(const Cdf& cdf, const std::string& label, const std::string& unit,
                             std::size_t rows) {
  std::string out = "  CDF: " + label + "\n";
  if (cdf.empty()) return out + "    (empty)\n";
  char buf[128];
  for (std::size_t i = 0; i <= rows; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(rows);
    const double x = cdf.quantile(q);
    const auto bar = static_cast<int>(q * 40);
    std::snprintf(buf, sizeof buf, "    p%-3.0f %12.4g %-4s |%.*s\n", q * 100.0, x, unit.c_str(),
                  bar, "########################################");
    out += buf;
  }
  return out;
}

}  // namespace dnsctx
