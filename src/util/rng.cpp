#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dnsctx {

namespace {
// FNV-1a over the label; mixed into the master via SplitMix64 rounds.
[[nodiscard]] std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

std::uint64_t derive_seed(std::uint64_t master, std::string_view label) {
  std::uint64_t state = master ^ hash_label(label);
  (void)splitmix64(state);
  return splitmix64(state);
}

std::uint64_t derive_seed(std::uint64_t master, std::string_view label, std::uint64_t index) {
  std::uint64_t state = derive_seed(master, label) ^ (index * 0x9e3779b97f4a7c15ULL + 1);
  return splitmix64(state);
}

std::size_t Rng::pick_weighted(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (weights.empty() || total <= 0.0) {
    throw std::invalid_argument{"pick_weighted: empty or non-positive weights"};
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument{"ZipfSampler: n must be > 0"};
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf_[r] = sum;
  }
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail unreachable
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfSampler::pmf(std::size_t r) const {
  if (r >= cdf_.size()) return 0.0;
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace dnsctx
