#include "util/time.hpp"

#include <cstdio>

namespace dnsctx {

std::string to_string(SimDuration d) {
  char buf[64];
  const double ms = d.to_ms();
  if (ms < 1.0) {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(d.count_us()));
  } else if (ms < 1000.0) {
    std::snprintf(buf, sizeof buf, "%.3gms", ms);
  } else {
    std::snprintf(buf, sizeof buf, "%.4gs", d.to_sec());
  }
  return buf;
}

std::string to_string(SimTime t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%.6fs", t.to_sec());
  return buf;
}

}  // namespace dnsctx
