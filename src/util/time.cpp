#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace dnsctx {

std::string to_string(SimDuration d) {
  char buf[64];
  const double ms = d.to_ms();
  // Pick the unit by magnitude so negative durations keep their sign but
  // format like their positive mirror (-2.5ms, not "-2500us").
  const double mag = std::fabs(ms);
  if (mag < 1.0) {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(d.count_us()));
  } else if (mag < 1000.0) {
    std::snprintf(buf, sizeof buf, "%.3gms", ms);
  } else {
    std::snprintf(buf, sizeof buf, "%.4gs", d.to_sec());
  }
  return buf;
}

std::string to_string(SimTime t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%.6fs", t.to_sec());
  return buf;
}

}  // namespace dnsctx
