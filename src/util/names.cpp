#include "util/names.hpp"

#include <mutex>
#include <stdexcept>

namespace dnsctx::util {

NameTable::NameTable() {
  arena_.emplace_back();  // id 0: the empty string
  ids_.emplace(std::string_view{arena_.front()}, NameId{0});
}

NameTable& NameTable::global() {
  static NameTable table;
  return table;
}

NameId NameTable::intern(std::string_view s) {
  if (s.empty()) return 0;
  {
    std::shared_lock lock{mu_};
    if (const auto it = ids_.find(s); it != ids_.end()) return it->second;
  }
  std::unique_lock lock{mu_};
  // Re-check: another thread may have interned `s` between the locks.
  if (const auto it = ids_.find(s); it != ids_.end()) return it->second;
  const auto id = static_cast<NameId>(arena_.size());
  const std::string& stored = arena_.emplace_back(s);
  ids_.emplace(std::string_view{stored}, id);
  return id;
}

std::string_view NameTable::view(NameId id) const {
  std::shared_lock lock{mu_};
  if (id >= arena_.size()) {
    throw std::out_of_range{"NameTable::view: unknown NameId " + std::to_string(id)};
  }
  return std::string_view{arena_[id]};
}

std::size_t NameTable::size() const {
  std::shared_lock lock{mu_};
  return arena_.size();
}

}  // namespace dnsctx::util
