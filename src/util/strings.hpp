// dnsctx — small string helpers shared across modules (log IO, DNS names,
// report formatting). Nothing here allocates beyond the obvious.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dnsctx {

/// ASCII lowercase copy (DNS names compare case-insensitively).
[[nodiscard]] std::string to_lower(std::string_view s);

/// Split on a single-character delimiter; keeps empty fields (TSV logs
/// must round-trip exactly).
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char delim);

/// True if `s` ends with `suffix` at a label boundary — "a.b.example.com"
/// is within "example.com", but "notexample.com" is not.
[[nodiscard]] bool is_subdomain_of(std::string_view name, std::string_view zone);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace dnsctx
