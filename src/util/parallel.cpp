#include "util/parallel.hpp"

namespace dnsctx::util {

unsigned resolve_thread_count(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned thread_count) {
  const unsigned total = thread_count == 0 ? 1 : thread_count;
  workers_.reserve(total - 1);
  for (unsigned i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock{mu_};
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_tasks(std::size_t count, const std::function<void(std::size_t)>& task) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    try {
      task(i);
    } catch (...) {
      const std::lock_guard lock{mu_};
      if (!error_) error_ = std::current_exception();
      // Drain the remaining indices so the job still terminates.
      next_.store(count, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::dispatch(std::size_t count, const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  {
    const std::lock_guard lock{mu_};
    task_ = &task;
    task_count_ = count;
    next_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    error_ = nullptr;
    ++job_id_;
  }
  start_cv_.notify_all();
  run_tasks(count, task);  // the caller participates
  std::unique_lock lock{mu_};
  done_cv_.wait(lock, [this] { return active_ == 0; });
  task_ = nullptr;
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t last_job = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock lock{mu_};
      start_cv_.wait(lock, [&] { return stop_ || job_id_ != last_job; });
      if (stop_) return;
      last_job = job_id_;
      task = task_;
      count = task_count_;
    }
    run_tasks(count, *task);
    {
      const std::lock_guard lock{mu_};
      --active_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace dnsctx::util
