// dnsctx — time types for the discrete-event simulation and analysis.
//
// All simulation and log timestamps are integral microseconds carried in
// strong types so that durations and instants cannot be mixed up and so
// that no floating-point drift enters the event ordering. Floating-point
// milliseconds/seconds appear only at presentation boundaries.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace dnsctx {

/// A span of simulated time with microsecond resolution.
///
/// Construct via the named factories (`SimDuration::us/ms/sec/...`) rather
/// than a raw count so call sites document their unit.
class SimDuration {
 public:
  constexpr SimDuration() = default;

  [[nodiscard]] static constexpr SimDuration us(std::int64_t v) { return SimDuration{v}; }
  [[nodiscard]] static constexpr SimDuration ms(std::int64_t v) { return SimDuration{v * 1000}; }
  [[nodiscard]] static constexpr SimDuration sec(std::int64_t v) { return SimDuration{v * 1'000'000}; }
  [[nodiscard]] static constexpr SimDuration min(std::int64_t v) { return sec(v * 60); }
  [[nodiscard]] static constexpr SimDuration hours(std::int64_t v) { return sec(v * 3600); }
  [[nodiscard]] static constexpr SimDuration days(std::int64_t v) { return sec(v * 86'400); }

  /// Fractional factories for model parameters expressed in real units.
  [[nodiscard]] static constexpr SimDuration from_ms(double v) {
    return SimDuration{static_cast<std::int64_t>(v * 1000.0)};
  }
  [[nodiscard]] static constexpr SimDuration from_sec(double v) {
    return SimDuration{static_cast<std::int64_t>(v * 1'000'000.0)};
  }

  [[nodiscard]] constexpr std::int64_t count_us() const { return us_; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(us_) / 1000.0; }
  [[nodiscard]] constexpr double to_sec() const { return static_cast<double>(us_) / 1'000'000.0; }

  [[nodiscard]] static constexpr SimDuration zero() { return SimDuration{0}; }
  [[nodiscard]] static constexpr SimDuration max() {
    return SimDuration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration operator+(SimDuration o) const { return SimDuration{us_ + o.us_}; }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration{us_ - o.us_}; }
  constexpr SimDuration operator*(std::int64_t k) const { return SimDuration{us_ * k}; }
  constexpr SimDuration operator/(std::int64_t k) const { return SimDuration{us_ / k}; }
  constexpr SimDuration& operator+=(SimDuration o) { us_ += o.us_; return *this; }
  constexpr SimDuration& operator-=(SimDuration o) { us_ -= o.us_; return *this; }

 private:
  constexpr explicit SimDuration(std::int64_t v) : us_{v} {}
  std::int64_t us_ = 0;
};

/// An instant on the simulated timeline (microseconds since simulation
/// start). Instants subtract to durations; durations shift instants.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime from_us(std::int64_t v) { return SimTime{v}; }
  [[nodiscard]] static constexpr SimTime origin() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_us() const { return us_; }
  [[nodiscard]] constexpr double to_sec() const { return static_cast<double>(us_) / 1'000'000.0; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimDuration d) const { return SimTime{us_ + d.count_us()}; }
  constexpr SimTime operator-(SimDuration d) const { return SimTime{us_ - d.count_us()}; }
  constexpr SimDuration operator-(SimTime o) const { return SimDuration::us(us_ - o.us_); }
  constexpr SimTime& operator+=(SimDuration d) { us_ += d.count_us(); return *this; }

 private:
  constexpr explicit SimTime(std::int64_t v) : us_{v} {}
  std::int64_t us_ = 0;
};

/// Render a duration as a compact human string ("12.3ms", "4.5s").
[[nodiscard]] std::string to_string(SimDuration d);

/// Render an instant as seconds since simulation start ("t=123.456s").
[[nodiscard]] std::string to_string(SimTime t);

}  // namespace dnsctx
