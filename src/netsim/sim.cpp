#include "netsim/sim.hpp"

#include <stdexcept>

namespace dnsctx::netsim {

void Simulator::at(SimTime when, Action action) {
  if (when < now_) throw std::logic_error{"Simulator::at: scheduling in the past"};
  queue_.push(Event{when, next_seq_++, std::move(action)});
  if (queue_.size() > max_pending_) max_pending_ = queue_.size();
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent,
  // so copy the closure handle (shared ownership is cheap enough here).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ++dispatched_;
  ev.action();
  return true;
}

void Simulator::run_until(SimTime end) {
  while (!queue_.empty() && queue_.top().when <= end) {
    step();
  }
  if (now_ < end) now_ = end;
}

void Simulator::run_to_completion() {
  while (step()) {
  }
}

}  // namespace dnsctx::netsim
