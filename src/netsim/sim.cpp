#include "netsim/sim.hpp"

namespace dnsctx::netsim {

void Simulator::run_to_completion() {
  while (step()) {
  }
}

}  // namespace dnsctx::netsim
