// dnsctx — the per-house gateway: NAT between the in-home network and the
// WAN, matching the CCZ deployment (§3 of the paper: supplied routers do
// NAT but do NOT act as DNS forwarders — the monitor therefore sees one
// address per house and real device-issued DNS queries).
//
// An optional DNS intercept hook lets the §8 "whole-house cache" studies
// turn the same gateway into a caching forwarder without touching the
// rest of the stack.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "netsim/network.hpp"
#include "netsim/packet.hpp"
#include "netsim/sim.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace dnsctx::netsim {

/// NAT + in-home LAN for one house.
class HouseGateway : public Host {
 public:
  /// `lan_delay` is the one-way device↔gateway delay (WiFi/Ethernet).
  HouseGateway(Simulator& sim, Network& wan, Ipv4Addr external_ip, std::uint64_t seed,
               SimDuration lan_delay = SimDuration::from_ms(0.5));

  /// Attach a device at its in-home (RFC 1918) address.
  void attach_device(Ipv4Addr internal_ip, Host* device);

  /// Device-side entry point: translate source and forward to the WAN.
  void from_device(Packet p);

  /// WAN-side entry point (Host): translate destination and deliver to
  /// the owning device.
  void receive(const Packet& p) override;

  /// Optional intercept for outbound UDP/53. Returning true means the
  /// hook consumed the packet (the §8 forwarder answers from its cache);
  /// false forwards normally. The hook sees the *pre-NAT* packet.
  using DnsIntercept = std::function<bool(const Packet&)>;
  void set_dns_intercept(DnsIntercept hook) { dns_intercept_ = std::move(hook); }

  /// Deliver a packet straight to the device owning `p.dst_ip` after the
  /// in-home LAN delay (used by the DNS forwarder to answer locally).
  void deliver_to_device(Packet p);

  [[nodiscard]] Ipv4Addr external_ip() const { return external_ip_; }
  [[nodiscard]] std::size_t active_mappings() const { return by_external_.size(); }

 private:
  struct InternalKey {
    Ipv4Addr ip;
    std::uint16_t port;
    Proto proto;
    bool operator==(const InternalKey&) const = default;
  };
  struct InternalKeyHash {
    [[nodiscard]] std::size_t operator()(const InternalKey& k) const noexcept {
      return Ipv4Hash{}(k.ip) ^ (static_cast<std::size_t>(k.port) << 8) ^
             static_cast<std::size_t>(k.proto);
    }
  };
  struct ExternalKey {
    std::uint16_t port;
    Proto proto;
    bool operator==(const ExternalKey&) const = default;
  };
  struct ExternalKeyHash {
    [[nodiscard]] std::size_t operator()(const ExternalKey& k) const noexcept {
      return (static_cast<std::size_t>(k.port) << 1) ^ static_cast<std::size_t>(k.proto);
    }
  };
  struct Mapping {
    InternalKey internal;
    std::uint16_t external_port;
    SimTime last_used;
  };

  [[nodiscard]] std::uint16_t map_outbound(const InternalKey& key);
  void sweep_stale();
  void release_mapping(std::uint32_t idx, const ExternalKey& ext);

  Simulator& sim_;
  Network& wan_;
  Ipv4Addr external_ip_;
  SimDuration lan_delay_;
  Rng rng_;
  DnsIntercept dns_intercept_;

  util::FlatMap<Ipv4Addr, Host*> devices_;
  // Mappings live in a recycled slab; both indexes point into it, so the
  // outbound hot path costs exactly one hash lookup (internal key → slab
  // slot) and refreshes last_used in place.
  std::vector<Mapping> slab_;
  std::vector<std::uint32_t> free_slots_;
  util::FlatMap<InternalKey, std::uint32_t, InternalKeyHash> by_internal_;
  util::FlatMap<ExternalKey, std::uint32_t, ExternalKeyHash> by_external_;
  std::uint16_t next_port_ = 1024;
  bool sweep_armed_ = false;

  /// Mappings idle longer than this are reclaimable.
  static constexpr SimDuration kMappingIdleLimit = SimDuration::min(15);
};

}  // namespace dnsctx::netsim
