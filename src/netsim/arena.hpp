// dnsctx — slab arena for in-flight packets.
//
// Every hop used to capture a full Packet (~100 bytes plus a shared_ptr
// to DNS payload state) by value inside a std::function, costing a heap
// allocation per scheduled event. The arena keeps each in-flight packet
// in one slab node and hands out 8-byte refcounted handles instead, so
// fan-out (tap observation + delivery + duplicates) shares one node and
// event closures stay inside InlineAction's inline buffer.
//
// Single-threaded per shard by construction (each shard owns its
// Simulator, Network and therefore its arena), so the refcount is a
// plain integer. Nodes are recycled through a freelist; on release the
// packet is reset to a default-constructed state so recycled nodes
// never leak stale DNS payload, flags, or intent into the next packet.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "netsim/packet.hpp"

namespace dnsctx::netsim {

/// Freelist-recycled slab of Packet nodes. Chunked so node addresses
/// stay stable while the arena grows.
class PacketArena {
 public:
  class Handle;

  PacketArena() = default;
  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  /// Move a packet into the arena; the returned handle is its sole
  /// owner until copied.
  [[nodiscard]] Handle adopt(Packet p);

  /// Packets currently alive (handles outstanding).
  [[nodiscard]] std::size_t live() const { return live_; }
  /// Slab capacity ever allocated (high-water mark of `live()`).
  [[nodiscard]] std::size_t allocated() const { return allocated_; }

 private:
  static constexpr std::size_t kChunk = 256;

  struct Node {
    Packet pkt;
    PacketArena* owner = nullptr;
    Node* next_free = nullptr;
    std::uint32_t refs = 0;
  };

  void release(Node* n) {
    n->pkt = Packet{};  // drop payload/intent state before recycling
    n->next_free = free_head_;
    free_head_ = n;
    --live_;
  }

  std::vector<std::unique_ptr<Node[]>> chunks_;
  Node* free_head_ = nullptr;
  std::size_t allocated_ = 0;
  std::size_t live_ = 0;
};

/// Shared, read-only view of an arena packet. Copying bumps a plain
/// (non-atomic) refcount; destroying the last handle recycles the node.
class PacketArena::Handle {
 public:
  Handle() noexcept = default;

  Handle(const Handle& o) noexcept : n_{o.n_} {
    if (n_ != nullptr) ++n_->refs;
  }
  Handle(Handle&& o) noexcept : n_{o.n_} { o.n_ = nullptr; }
  Handle& operator=(const Handle& o) noexcept {
    Handle tmp{o};
    std::swap(n_, tmp.n_);
    return *this;
  }
  Handle& operator=(Handle&& o) noexcept {
    std::swap(n_, o.n_);
    return *this;
  }
  ~Handle() {
    if (n_ != nullptr && --n_->refs == 0) n_->owner->release(n_);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return n_ != nullptr; }
  [[nodiscard]] const Packet& operator*() const noexcept { return n_->pkt; }
  [[nodiscard]] const Packet* operator->() const noexcept { return &n_->pkt; }

 private:
  friend class PacketArena;
  explicit Handle(Node* n) noexcept : n_{n} { ++n_->refs; }
  Node* n_ = nullptr;
};

using PacketHandle = PacketArena::Handle;

inline PacketArena::Handle PacketArena::adopt(Packet p) {
  Node* n = free_head_;
  if (n != nullptr) {
    free_head_ = n->next_free;
  } else {
    if (allocated_ % kChunk == 0) chunks_.push_back(std::make_unique<Node[]>(kChunk));
    n = &chunks_[allocated_ / kChunk][allocated_ % kChunk];
    n->owner = this;
    ++allocated_;
  }
  assert(n->refs == 0);
  n->pkt = std::move(p);
  n->next_free = nullptr;
  ++live_;
  return Handle{n};
}

}  // namespace dnsctx::netsim
