// dnsctx — the simulated WAN: host attachment, latency model, delivery,
// and the ISP aggregation-point tap where the passive monitor sits.
//
// Topology mirrors the paper's: ~100 access-side houses hang off one
// aggregation point; everything else (resolvers, servers, peers) is on
// the core side. A packet is observable iff it crosses the aggregation
// point, i.e. exactly one endpoint is an access-side (house) address.
#pragma once

#include <cstdint>

#include "faults/injector.hpp"
#include "netsim/arena.hpp"
#include "netsim/packet.hpp"
#include "netsim/sim.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace dnsctx::netsim {

/// Anything that can terminate packets.
class Host {
 public:
  virtual ~Host() = default;
  virtual void receive(const Packet& p) = 0;
};

/// Passive observer at the aggregation point (the Bro monitor implements
/// this). Observes the packet plus the instant it crossed the tap.
class PacketTap {
 public:
  virtual ~PacketTap() = default;
  virtual void observe(SimTime at_tap, const Packet& p) = 0;
};

/// Fan a single tap slot out to two observers (the Network has one tap;
/// ground-truth collection rides alongside the monitor through this).
class TapTee : public PacketTap {
 public:
  TapTee(PacketTap* first, PacketTap* second) : first_{first}, second_{second} {}

  void observe(SimTime at_tap, const Packet& p) override {
    first_->observe(at_tap, p);
    second_->observe(at_tap, p);
  }

 private:
  PacketTap* first_;
  PacketTap* second_;
};

/// Per-endpoint propagation parameters: base one-way delay from the
/// aggregation point plus per-packet jitter drawn at send time.
struct SiteProfile {
  SimDuration base_one_way = SimDuration::ms(10);
  double jitter_ms_mean = 0.3;  ///< mean of an exponential jitter term
};

/// Delay model: one_way(src→dst) = src.base + dst.base + jitter.
/// Unregistered addresses get a deterministic profile derived from the
/// address hash, covering the generic-internet-server population.
class LatencyModel {
 public:
  LatencyModel();

  void set_site(Ipv4Addr addr, SiteProfile profile);

  /// Delay range for unregistered remotes (defaults ~4–35 ms one-way,
  /// i.e. typical 10–70 ms server RTTs from a US residential eyeball).
  void set_remote_range(SimDuration lo, SimDuration hi) {
    remote_lo_ = lo;
    remote_hi_ = hi;
  }

  [[nodiscard]] SiteProfile site(Ipv4Addr addr) const;
  [[nodiscard]] SimDuration one_way(Ipv4Addr src, Ipv4Addr dst, Rng& rng) const;

 private:
  util::FlatMap<Ipv4Addr, SiteProfile> sites_;
  SimDuration remote_lo_ = SimDuration::from_ms(4.0);
  SimDuration remote_hi_ = SimDuration::from_ms(35.0);
};

/// The network fabric. Non-owning over hosts; single-threaded.
///
/// Lifetime: the Network owns the PacketArena, and in-flight events on
/// the Simulator capture PacketHandles into it. Destroy the Simulator
/// (or drain its queue) before the Network, or keep both alive until
/// the run ends — a handle released after the arena is gone is
/// use-after-free.
class Network {
 public:
  Network(Simulator& sim, LatencyModel latency, std::uint64_t seed);

  /// Attach a host at a specific address (resolvers, gateways, named
  /// servers). Last attachment at an address wins.
  void attach(Ipv4Addr addr, Host* host);

  /// Handler for packets to any unattached address (the server farm).
  void set_default_host(Host* host) { default_host_ = host; }

  /// Install the aggregation-point tap.
  void set_tap(PacketTap* tap) { tap_ = tap; }

  /// Install a packet fault injector (non-owning; nullptr = perfect
  /// network, the byte-identical baseline).
  void set_fault_injector(faults::PacketFaultInjector* injector) { injector_ = injector; }
  [[nodiscard]] const faults::PacketFaultInjector* fault_injector() const {
    return injector_;
  }

  /// Declare an address as access-side (a house external IP).
  void register_access_ip(Ipv4Addr addr) { access_.insert(addr); }
  [[nodiscard]] bool is_access_ip(Ipv4Addr addr) const { return access_.contains(addr); }

  /// Inject a packet; it is delivered after the modelled one-way delay
  /// and observed at the tap if it crosses the aggregation point.
  void send(Packet p) { send(arena_.adopt(std::move(p))); }

  /// Same, for a packet already adopted into this network's arena
  /// (gateways pre-adopt so LAN-hop closures carry an 8-byte handle).
  void send(PacketHandle p);

  /// The per-shard packet arena; gateways adopt outbound packets here.
  [[nodiscard]] PacketArena& arena() { return arena_; }

  [[nodiscard]] const LatencyModel& latency() const { return latency_; }
  /// Mutable access for topology construction (register sites before
  /// traffic flows; changing profiles mid-run is allowed but unusual).
  [[nodiscard]] LatencyModel& latency_mut() { return latency_; }
  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Packets injected via send() (pre-fault; includes dropped ones).
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_; }
  /// Packets that crossed the aggregation-point tap (duplicates counted).
  [[nodiscard]] std::uint64_t tap_observations() const { return tap_observations_; }

 private:
  Simulator& sim_;
  LatencyModel latency_;
  Rng rng_;
  PacketArena arena_;
  util::FlatMap<Ipv4Addr, Host*> hosts_;
  util::FlatSet<Ipv4Addr> access_;
  Host* default_host_ = nullptr;
  PacketTap* tap_ = nullptr;
  faults::PacketFaultInjector* injector_ = nullptr;
  std::uint64_t dropped_ = 0;
  std::uint64_t packets_ = 0;
  std::uint64_t tap_observations_ = 0;
};

}  // namespace dnsctx::netsim
