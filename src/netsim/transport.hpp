// dnsctx — DNS transport modeling beyond classic UDP/53.
//
// The paper's vantage point (§3) assumes cleartext port-53 DNS. This
// module models the alternatives the paper names as the threat to the
// methodology: DNS over TLS (RFC 7858), DNS over HTTPS (RFC 8484) and
// resolver-less DNS (server-pushed records, Sy et al.). The transport
// knob changes three things end to end:
//
//   * connection setup — encrypted transports pay a TCP+TLS 1.3
//     handshake (2 RTTs) before the first query can leave the stub;
//   * connection reuse — stubs keep one channel per resolver warm and
//     close it after an idle timeout (per Hounsel et al., DoT stacks
//     idle out in ~10 s, DoH browser pools in ~30 s);
//   * message sizes — queries and responses are padded to EDNS(0)
//     padding blocks (RFC 8467 recommends 128-byte query / 468-byte
//     response blocks), so the monitor sees only padded ciphertext
//     sizes.
//
// Everything here is deterministic and draw-free: transport changes
// packet shapes and timing, never RNG stream consumption.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "util/time.hpp"

namespace dnsctx::netsim {

/// How stub resolvers reach their recursive platform.
enum class Transport : std::uint8_t {
  kDo53 = 0,          ///< classic cleartext UDP/53 (+ TCP/53 fallback)
  kDoT = 1,           ///< DNS over TLS on TCP/853
  kDoH = 2,           ///< DNS over HTTPS on TCP/443
  kResolverless = 3,  ///< cleartext DNS + server-pushed records bypassing lookups
};

[[nodiscard]] std::string_view to_string(Transport t);

/// Parse a `--transport` value; nullopt on unknown names.
[[nodiscard]] std::optional<Transport> parse_transport(std::string_view name);

/// Per-transport wire constants. Values for the encrypted transports
/// follow RFC 8467's padding recommendation and measured handshake /
/// session behaviour from Hounsel et al. (IMC'19).
struct TransportTraits {
  std::uint16_t port = 53;              ///< server-side port
  bool encrypted = false;               ///< TLS channel (padded, opaque to the tap)
  std::uint32_t query_pad_block = 0;    ///< EDNS(0) pad block for queries (0 = none)
  std::uint32_t response_pad_block = 0; ///< EDNS(0) pad block for responses
  std::uint32_t per_message_overhead = 0;  ///< TLS record (+HTTP/2 frame) framing bytes
  std::uint32_t client_hello_bytes = 0;    ///< TLS ClientHello payload size
  std::uint32_t server_hello_bytes = 0;    ///< ServerHello..Finished flight size
  SimDuration idle_timeout = SimDuration::zero();  ///< channel closes after this idle span
};

[[nodiscard]] const TransportTraits& traits_for(Transport t);

/// RFC 8467 padding: round `bytes` up to a multiple of `block`
/// (identity when block == 0; zero-length payloads still pad to one
/// block — an empty TLS record would leak that nothing was sent).
[[nodiscard]] constexpr std::uint64_t pad_to_block(std::uint64_t bytes,
                                                   std::uint32_t block) {
  if (block == 0) return bytes;
  const std::uint64_t b = block;
  return ((bytes + b - 1) / b) * b;
}

/// Observable ciphertext size of a DNS message on an encrypted channel:
/// the padded plaintext plus per-message framing overhead.
[[nodiscard]] constexpr std::uint64_t padded_payload(std::uint64_t wire_bytes,
                                                     std::uint32_t block,
                                                     std::uint32_t overhead) {
  const std::uint64_t padded = pad_to_block(wire_bytes == 0 ? 1 : wire_bytes, block);
  return padded + overhead;
}

/// Connection-reuse state machine for one stub→resolver encrypted
/// channel. Pure bookkeeping — the owner sends the actual handshake and
/// close packets — so randomized interleavings can be property-tested
/// against a reference model (tests/netsim/test_transport.cpp).
///
/// Lifecycle: kCold --acquire()--> kHandshaking --established()-->
/// kEstablished --idle timeout / close()--> kCold. acquire() on a warm,
/// non-expired channel counts a reuse; acquire() after the idle span
/// elapsed closes the stale channel first and starts a new handshake.
class SecureChannel {
 public:
  enum class State : std::uint8_t { kCold, kHandshaking, kEstablished };

  explicit SecureChannel(SimDuration idle_timeout) : idle_timeout_{idle_timeout} {}

  /// The owner wants to send a message at `now`. Returns true when a
  /// handshake must be performed first (channel was cold, or idle-expired
  /// and therefore closed here). Returns false when the channel is warm
  /// (counted as a reuse) or a handshake is already in flight (the caller
  /// queues the message).
  [[nodiscard]] bool acquire(SimTime now) {
    if (state_ == State::kHandshaking) return false;
    if (state_ == State::kEstablished) {
      if (!idle_expired(now)) {
        ++reuses_;
        last_activity_ = now;
        return false;
      }
      close();  // stale: the wire-level FIN already fired from the idle timer
    }
    state_ = State::kHandshaking;
    ++handshakes_;
    last_activity_ = now;
    return true;
  }

  /// Handshake completed (ServerHello..Finished seen) at `now`.
  void established(SimTime now) {
    state_ = State::kEstablished;
    last_activity_ = now;
  }

  /// A message moved on the established channel at `now`.
  void touch(SimTime now) { last_activity_ = now; }

  /// True when an established channel has sat idle for >= the timeout.
  [[nodiscard]] bool idle_expired(SimTime now) const {
    return state_ == State::kEstablished && now - last_activity_ >= idle_timeout_;
  }

  /// Channel torn down (idle FIN, RST, or owner shutdown).
  void close() { state_ = State::kCold; }

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] SimTime last_activity() const { return last_activity_; }
  [[nodiscard]] SimDuration idle_timeout() const { return idle_timeout_; }
  [[nodiscard]] std::uint64_t handshakes() const { return handshakes_; }
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }

 private:
  SimDuration idle_timeout_;
  State state_ = State::kCold;
  SimTime last_activity_;
  std::uint64_t handshakes_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace dnsctx::netsim
