#include "netsim/event_queue.hpp"

#include <algorithm>

namespace dnsctx::netsim {

EventQueue::EventQueue() {
  wheel0_.head.fill(kNil);
  wheel0_.occupied.fill(0);
  wheel1_.head.fill(kNil);
  wheel1_.occupied.fill(0);
  wheel2_.head.fill(kNil);
  wheel2_.occupied.fill(0);
}

EventQueue::~EventQueue() {
  // Chunks are raw storage; exactly the first allocated_ slots hold
  // constructed Nodes (live, wheel-resident or freelisted alike).
  for (std::uint32_t i = 0; i < allocated_; ++i) node(i).~Node();
}

void EventQueue::grow() {
  chunks_.emplace_back(static_cast<Node*>(::operator new(
      sizeof(Node) * kChunk, std::align_val_t{alignof(Node)})));
  capacity_ += kChunk;
}

void EventQueue::heap_push(std::vector<std::uint32_t>& heap, std::uint32_t idx) {
  heap.push_back(idx);
  std::push_heap(heap.begin(), heap.end(),
                 [this](std::uint32_t a, std::uint32_t b) { return later(a, b); });
}

std::uint32_t EventQueue::heap_pop(std::vector<std::uint32_t>& heap) {
  std::pop_heap(heap.begin(), heap.end(),
                [this](std::uint32_t a, std::uint32_t b) { return later(a, b); });
  const std::uint32_t idx = heap.back();
  heap.pop_back();
  return idx;
}

void EventQueue::place_far(std::uint32_t idx) {
  Node& n = node(idx);
  const std::int64_t b1 = n.when_us >> kL1Shift;
  assert(b1 > cur1_);
  if (b1 - cur1_ <= static_cast<std::int64_t>(kSlots)) {
    const auto slot = static_cast<std::size_t>(b1) & kMask;
    n.next = wheel1_.head[slot];
    wheel1_.head[slot] = idx;
    wheel1_.occupied[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    ++wheel1_.count;
    return;
  }
  const std::int64_t b2 = n.when_us >> kL2Shift;
  assert(b2 > cur2_);
  if (b2 - cur2_ <= static_cast<std::int64_t>(kSlots)) {
    const auto slot = static_cast<std::size_t>(b2) & kMask;
    n.next = wheel2_.head[slot];
    wheel2_.head[slot] = idx;
    wheel2_.occupied[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    ++wheel2_.count;
    return;
  }
  heap_push(overflow_, idx);
}

void EventQueue::move_slot0_to_current(std::size_t slot) {
  std::uint32_t idx = wheel0_.head[slot];
  wheel0_.head[slot] = kNil;
  wheel0_.occupied[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  while (idx != kNil) {
    const std::uint32_t nxt = node(idx).next;
    node(idx).next = kNil;
    push_current(idx);
    --wheel0_.count;
    idx = nxt;
  }
}

void EventQueue::cascade_slot1(std::size_t slot) {
  std::uint32_t idx = wheel1_.head[slot];
  wheel1_.head[slot] = kNil;
  wheel1_.occupied[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  while (idx != kNil) {
    const std::uint32_t nxt = node(idx).next;
    node(idx).next = kNil;
    --wheel1_.count;
    place(idx);
    idx = nxt;
  }
}

void EventQueue::cascade_slot2(std::size_t slot) {
  std::uint32_t idx = wheel2_.head[slot];
  wheel2_.head[slot] = kNil;
  wheel2_.occupied[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  while (idx != kNil) {
    const std::uint32_t nxt = node(idx).next;
    node(idx).next = kNil;
    --wheel2_.count;
    place(idx);
    idx = nxt;
  }
}

void EventQueue::drain_overflow() {
  while (!overflow_.empty() &&
         (node(overflow_.front()).when_us >> kL2Shift) - cur2_ <=
             static_cast<std::int64_t>(kSlots)) {
    place(heap_pop(overflow_));
  }
}

void EventQueue::advance_window() {
  if (wheel0_.count == 0 && wheel1_.count == 0) {
    if (wheel2_.count == 0) {
      // Everything pending is far-future: jump the cursor straight to
      // the earliest overflow event instead of walking empty windows.
      assert(!overflow_.empty());
      const Node& top = node(overflow_.front());
      cur0_ = top.when_us >> kL0Shift;
      cur1_ = cur0_ >> kSlotBits;
      cur2_ = cur1_ >> kSlotBits;
      drain_overflow();
      return;
    }
    // Both near wheels empty: the next event is in wheel2 (every
    // overflow event lies strictly beyond wheel2's horizon, so nothing
    // there can precede it). Skip straight to the next occupied wheel2
    // slot via the bitmap instead of crossing windows one at a time.
    const std::int64_t off2 =
        next_occupied_offset(wheel2_, static_cast<std::size_t>(cur2_) & kMask);
    cur2_ += off2;
    cur1_ = cur2_ << kSlotBits;
    cur0_ = cur1_ << kSlotBits;
    cascade_slot2(static_cast<std::size_t>(cur2_) & kMask);
    drain_overflow();
    return;
  }
  if (wheel0_.count == 0) {
    // wheel0 empty, wheel1 occupied: jump straight to the next occupied
    // wheel1 slot (bitmap scan) instead of crossing windows one by one,
    // unless a wheel2 cascade could inject earlier events first.
    const std::int64_t off1 =
        next_occupied_offset(wheel1_, static_cast<std::size_t>(cur1_) & kMask);
    const std::int64_t l2_boundary = ((cur2_ + 1) << kSlotBits) - cur1_;  // in [1, kSlots]
    const bool no_later = wheel2_.count == 0 && overflow_.empty();
    if (off1 < l2_boundary || no_later) {
      cur1_ += off1;
      if (no_later) cur2_ = cur1_ >> kSlotBits;
      cur0_ = cur1_ << kSlotBits;
      cascade_slot1(static_cast<std::size_t>(cur1_) & kMask);
      return;
    }
    cur1_ = (cur2_ + 1) << kSlotBits;
    cur2_ += 1;
    cur0_ = cur1_ << kSlotBits;
    cascade_slot2(static_cast<std::size_t>(cur2_) & kMask);
    drain_overflow();
    cascade_slot1(static_cast<std::size_t>(cur1_) & kMask);
    return;
  }
  // Cross into the next wheel1 window: cascade its slot into wheel0 /
  // current_, pull newly-near events down the ladder, then let take_min
  // rescan. The slot sharing the new cursor's phase holds exactly the
  // events of the new cursor slot itself (one-revolution uniqueness),
  // so it feeds current_ directly.
  cur0_ = (cur1_ + 1) << kSlotBits;
  cur1_ += 1;
  if ((cur1_ >> kSlotBits) != cur2_) {
    cur2_ = cur1_ >> kSlotBits;
    cascade_slot2(static_cast<std::size_t>(cur2_) & kMask);
    drain_overflow();
  }
  cascade_slot1(static_cast<std::size_t>(cur1_) & kMask);
  if (wheel0_.head[static_cast<std::size_t>(cur0_) & kMask] != kNil) {
    move_slot0_to_current(static_cast<std::size_t>(cur0_) & kMask);
  }
}

bool EventQueue::prime() {
  if (!current_.empty()) return true;
  if (size_ == 0) return false;
  // take_min pops the true minimum and advances the cursor to its slot;
  // parking it back in current_ (its home slot now) restores the
  // "current_ holds the global minimum" invariant for peeking.
  push_current(take_min());
  return true;
}

bool EventQueue::pop_min(SimTime* when, InlineAction* action) {
  std::uint32_t idx;
  if (!current_.empty()) {
    idx = pop_current();
  } else {
    if (size_ == 0) return false;
    idx = take_min();
  }
  Node& n = node(idx);
  *when = SimTime::from_us(n.when_us);
  *action = std::move(n.action);
  free_node(idx);
  --size_;
  return true;
}

}  // namespace dnsctx::netsim
