#include "netsim/network.hpp"

namespace dnsctx::netsim {

LatencyModel::LatencyModel() = default;

void LatencyModel::set_site(Ipv4Addr addr, SiteProfile profile) {
  sites_[addr] = profile;
}

SiteProfile LatencyModel::site(Ipv4Addr addr) const {
  if (const auto it = sites_.find(addr); it != sites_.end()) return it->second;
  // Deterministic pseudo-profile from the address: the same remote server
  // is always at the same distance, run to run.
  std::uint64_t state = 0x51ed2701u ^ (static_cast<std::uint64_t>(addr.to_u32()) << 16);
  const std::uint64_t h = splitmix64(state);
  const double frac = static_cast<double>(h >> 11) * 0x1.0p-53;
  // Square the fraction: biases toward the near end, matching CDN-heavy
  // residential traffic where most bytes come from nearby edges.
  const double f2 = frac * frac;
  const auto span_us =
      static_cast<double>(remote_hi_.count_us() - remote_lo_.count_us());
  SiteProfile p;
  p.base_one_way = remote_lo_ + SimDuration::us(static_cast<std::int64_t>(f2 * span_us));
  p.jitter_ms_mean = 0.3;
  return p;
}

SimDuration LatencyModel::one_way(Ipv4Addr src, Ipv4Addr dst, Rng& rng) const {
  const SiteProfile a = site(src);
  const SiteProfile b = site(dst);
  const double jitter_ms = rng.exponential(a.jitter_ms_mean + b.jitter_ms_mean);
  return a.base_one_way + b.base_one_way + SimDuration::from_ms(jitter_ms);
}

Network::Network(Simulator& sim, LatencyModel latency, std::uint64_t seed)
    : sim_{sim}, latency_{std::move(latency)}, rng_{seed} {}

void Network::attach(Ipv4Addr addr, Host* host) { hosts_[addr] = host; }

void Network::send(PacketHandle p) {
  ++packets_;
  const SimTime sent = sim_.now();
  // Inlined one_way(): the tap crossing below needs the access leg's
  // profile too, so fetch each endpoint's profile exactly once.
  const SiteProfile src_prof = latency_.site(p->src_ip);
  const SiteProfile dst_prof = latency_.site(p->dst_ip);
  const double jitter_ms = rng_.exponential(src_prof.jitter_ms_mean + dst_prof.jitter_ms_mean);
  const SimDuration delay =
      src_prof.base_one_way + dst_prof.base_one_way + SimDuration::from_ms(jitter_ms);

  // Impairments draw from the injector's private stream; without one
  // the decision is the identity and this function schedules exactly
  // the events it always has.
  faults::FaultDecision fault;
  if (injector_ != nullptr) fault = injector_->decide();

  // A reordered packet picks up extra queueing delay on the core side,
  // so both its tap crossing (for core→access packets) and its arrival
  // shift together; at_tap >= sent still holds in every case.
  const SimTime arrival = sent + delay + fault.extra_delay;

  // Tap crossing: only flows with exactly one access-side endpoint pass
  // the aggregation point. The crossing instant is offset by the access
  // leg's base delay from the endpoint on the access side.
  const bool src_access = is_access_ip(p->src_ip);
  const bool dst_access = is_access_ip(p->dst_ip);
  const bool crosses_tap = tap_ != nullptr && src_access != dst_access;
  if (crosses_tap && !(fault.drop && fault.drop_before_tap)) {
    const SimTime at_tap = src_access ? sent + src_prof.base_one_way
                                      : arrival - dst_prof.base_one_way;
    // Deliver the observation as an event so monitor state advances in
    // global timestamp order, interleaved with deliveries. (at_tap can
    // never precede `sent`: it is sent + src leg (+jitter) in both cases.)
    ++tap_observations_;
    sim_.at(at_tap, [tap = tap_, at_tap, p]() { tap->observe(at_tap, *p); });
    if (fault.duplicate) {
      ++tap_observations_;
      const SimTime dup_tap = at_tap + fault.dup_gap;
      sim_.at(dup_tap, [tap = tap_, dup_tap, p]() { tap->observe(dup_tap, *p); });
    }
  }
  if (fault.drop) return;  // lost in flight: observed (maybe), never delivered

  Host* target = nullptr;
  if (const auto it = hosts_.find(p->dst_ip); it != hosts_.end()) {
    target = it->second;
  } else {
    target = default_host_;
  }
  if (target == nullptr) {
    ++dropped_;
    return;
  }
  if (fault.duplicate) {
    sim_.at(arrival + fault.dup_gap, [target, p]() { target->receive(*p); });
  }
  sim_.at(arrival, [target, p = std::move(p)]() { target->receive(*p); });
}

}  // namespace dnsctx::netsim
