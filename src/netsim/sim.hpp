// dnsctx — deterministic discrete-event simulation engine.
//
// A single priority queue orders (time, sequence) pairs; the sequence
// number breaks ties in insertion order so runs are bit-reproducible.
// There is no wall clock anywhere: SimTime only advances when an event
// is dispatched.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace dnsctx::netsim {

/// The event loop. Components schedule closures; `run_until` dispatches
/// them in timestamp order, advancing the simulated clock.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulated time (time of the event being dispatched, or the
  /// last dispatched event between runs).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule at an absolute time; must not be in the past.
  void at(SimTime when, Action action);

  /// Schedule `delay` after now (delay may be zero).
  void after(SimDuration delay, Action action) { at(now_ + delay, std::move(action)); }

  /// Dispatch events with time <= `end`, then set the clock to `end`.
  void run_until(SimTime end);

  /// Dispatch every remaining event.
  void run_to_completion();

  /// Dispatch a single event; false when the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }
  /// High-water mark of the event queue depth (scrape-time telemetry).
  [[nodiscard]] std::size_t max_pending() const { return max_pending_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    [[nodiscard]] bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = SimTime::origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t max_pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace dnsctx::netsim
