// dnsctx — deterministic discrete-event simulation engine.
//
// Events are ordered by (time, sequence) pairs; the sequence number
// breaks ties in insertion order so runs are bit-reproducible. There is
// no wall clock anywhere: SimTime only advances when an event is
// dispatched. Storage is a calendar/ladder queue (see event_queue.hpp)
// tuned for the timer-heavy workload; closures are small-buffer
// InlineActions in slab-allocated nodes, so scheduling does not
// heap-allocate in the common case.
#pragma once

#include <cstdint>

#include "netsim/event_queue.hpp"
#include "util/time.hpp"

namespace dnsctx::netsim {

/// The event loop. Components schedule closures; `run_until` dispatches
/// them in timestamp order, advancing the simulated clock.
class Simulator {
 public:
  using Action = InlineAction;

  /// Current simulated time (time of the event being dispatched, or the
  /// last dispatched event between runs).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule at an absolute time. The callable is constructed directly
  /// into its queue node. Scheduling in the past is a contract
  /// violation: debug builds assert; release builds clamp to `now()`
  /// (preserving FIFO order among clamped events) and count the
  /// violation in `clamped_past()`.
  template <typename F>
  void at(SimTime when, F&& f) {
    if (when < now_) {
      assert(when >= now_ && "Simulator::at: scheduling in the past");
      ++clamped_past_;
      when = now_;
    }
    queue_.emplace(when, next_seq_++, std::forward<F>(f));
    if (queue_.size() > max_pending_) max_pending_ = queue_.size();
  }

  /// Schedule `delay` after now (delay may be zero).
  template <typename F>
  void after(SimDuration delay, F&& f) { at(now_ + delay, std::forward<F>(f)); }

  /// Dispatch events with time <= `end`, then set the clock to `end`.
  void run_until(SimTime end) {
    while (queue_.dispatch_min_until(end, [this](SimTime when) {
      now_ = when;
      ++dispatched_;
    })) {
    }
    if (now_ < end) now_ = end;
  }

  /// Dispatch every remaining event.
  void run_to_completion();

  /// Dispatch a single event; false when the queue is empty.
  bool step() {
    return queue_.dispatch_min([this](SimTime when) {
      now_ = when;  // before the action runs: actions read now()
      ++dispatched_;
    });
  }

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }
  /// High-water mark of the event queue depth (scrape-time telemetry).
  [[nodiscard]] std::size_t max_pending() const { return max_pending_; }
  /// Number of `at()` calls that targeted the past and were clamped to
  /// `now()` (release builds only; debug builds assert instead).
  [[nodiscard]] std::uint64_t clamped_past() const { return clamped_past_; }

 private:
  SimTime now_ = SimTime::origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t max_pending_ = 0;
  std::uint64_t clamped_past_ = 0;
  EventQueue queue_;
};

}  // namespace dnsctx::netsim
