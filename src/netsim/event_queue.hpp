// dnsctx — calendar event queue for the discrete-event engine.
//
// The simulator's workload is timer-heavy and strongly clustered: packet
// hops land microseconds-to-milliseconds ahead, retransmit/cache timers
// seconds ahead, and diurnal session machinery minutes-to-hours ahead.
// A single binary heap pays O(log n) compares (and one std::function
// heap allocation) per event; this queue replaces it with
//
//   current_  — a tiny binary heap holding only events inside the slot
//               the cursor is standing on (usually 0–1 entries),
//   wheel0    — 4096 slots × 1µs (≈4.1ms horizon) of intrusive
//               singly-linked lists with an occupancy bitmap,
//   wheel1    — 4096 slots × ≈4.1ms (≈16.8s horizon), the overflow
//               ladder's first rung; slots cascade into wheel0 when the
//               cursor crosses their lower edge,
//   wheel2    — 4096 slots × ≈16.8s (≈19.1h horizon) for the minute-to-
//               hour application timers (TTL refresh, think times,
//               diurnal machinery); slots cascade into wheel1,
//   overflow_ — a binary min-heap for everything beyond wheel2.
//
// Enqueue and dequeue are therefore O(1) amortized for the hot
// sub-second traffic, and every event is touched at most three times
// (wheel1 → wheel0 → current_) on its way out.
//
// Determinism: dispatch order is exactly ascending (when, seq) — the
// same total order the previous std::priority_queue produced — because
// wheel slots are strictly coarser than timestamps and `current_` is a
// real heap over (when, seq). Ties share a timestamp, hence a slot,
// hence a heap, so insertion-order tie-break survives bit-for-bit.
//
// Event closures are stored in slab-allocated nodes (freelist-recycled,
// chunked so node addresses are stable) as InlineAction — a
// small-buffer-optimized move-only callable — so scheduling does not
// heap-allocate unless a capture exceeds the inline buffer.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace dnsctx::netsim {

/// Move-only type-erased `void()` callable with a small inline buffer.
/// Captures up to kInlineBytes (and alignment <= void*) are stored in
/// place; larger callables fall back to a single heap allocation.
class InlineAction {
 public:
  static constexpr std::size_t kInlineBytes = 32;

  InlineAction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineAction> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineAction(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(void*) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::kOps;
    }
  }

  InlineAction(InlineAction&& o) noexcept : ops_{o.ops_} {
    if (ops_ != nullptr) {
      relocate_from(o);
      o.ops_ = nullptr;
    }
  }

  InlineAction& operator=(InlineAction&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        relocate_from(o);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  /// Destroy the held callable (and release anything it captured).
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr);
    ops_->invoke(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into raw `dst`, then destroy `src`. Null means
    /// trivially relocatable: the buffer is memcpy'd inline, no call.
    void (*relocate)(void* dst, void* src) noexcept;
    /// Null means trivially destructible: reset() skips the call.
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  struct InlineOps {
    static void invoke(void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); }
    static void relocate(void* dst, void* src) noexcept {
      Fn* s = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static void destroy(void* p) noexcept { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); }
    static constexpr Ops kOps{
        &invoke,
        std::is_trivially_copyable_v<Fn> ? nullptr : &relocate,
        std::is_trivially_destructible_v<Fn> ? nullptr : &destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn*& slot(void* p) noexcept { return *std::launder(reinterpret_cast<Fn**>(p)); }
    static void invoke(void* p) { (*slot(p))(); }
    static void destroy(void* p) noexcept { delete slot(p); }
    // The stored pointer relocates by memcpy (relocate = nullptr); the
    // heap object itself never moves.
    static constexpr Ops kOps{&invoke, nullptr, &destroy};
  };

  /// Move the held callable out of `o`'s buffer into ours; ops_ has
  /// already been copied and o.ops_ is reset by the caller.
  void relocate_from(InlineAction& o) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(buf_, o.buf_);
    } else {
      __builtin_memcpy(buf_, o.buf_, kInlineBytes);
    }
  }

  alignas(void*) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// Two-level calendar wheel + overflow heap, ordered by (when, seq).
/// Not a template and not tied to Simulator so property tests can drive
/// it directly against a reference binary-heap model.
class EventQueue {
 public:
  EventQueue();
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Insert an event whose action is constructed in place from `f` —
  /// no InlineAction materialized at the call site, no relocation.
  /// `seq` must be unique and issued in increasing order by the caller
  /// (the simulator's monotonic sequence counter); it breaks ties among
  /// equal timestamps. `when` must be >= the time of the last popped
  /// event (the simulator clamps before calling). Defined in the
  /// header: the simulator calls this for every scheduled closure and
  /// the tree builds without LTO, so the fast path (freelist or bump
  /// allocation + wheel0 insert) must inline into callers.
  template <typename F>
  void emplace(SimTime when, std::uint64_t seq, F&& f) {
    assert(when.count_us() >= 0);
    const std::int64_t when_us = when.count_us();
    std::uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      Node& n = node(idx);
      free_head_ = n.next;
      n.when_us = when_us;
      n.seq = seq;
      n.next = kNil;
      n.action.reset();  // no-op for recycled nodes; storage is reused below
      ::new (static_cast<void*>(&n.action)) InlineAction(std::forward<F>(f));
    } else {
      if (allocated_ == capacity_) grow();
      idx = allocated_++;
      ::new (static_cast<void*>(&node(idx)))
          Node{when_us, seq, kNil, InlineAction(std::forward<F>(f))};
    }
    place(idx);
    ++size_;
  }

  /// Insert a pre-built action (one move into the node).
  void push(SimTime when, std::uint64_t seq, InlineAction action) {
    emplace(when, seq, std::move(action));
  }

  /// Pop the minimum (when, seq) event. Returns false when empty.
  bool pop_min(SimTime* when, InlineAction* action);

  /// Dispatch the minimum event in place: `on_ready(when)` runs first
  /// (the simulator advances its clock there), then the action is
  /// invoked directly in its node — no relocation out of the queue —
  /// and the node is recycled. The action may re-enter emplace(); node
  /// addresses are stable, so the in-flight node is unaffected.
  template <typename OnReady>
  bool dispatch_min(OnReady&& on_ready) {
    std::uint32_t idx;
    if (!current_.empty()) {
      idx = pop_current();
    } else {
      if (size_ == 0) return false;
      idx = take_min();
    }
    dispatch_node(idx, on_ready);
    return true;
  }

  /// dispatch_min, but only when the minimum's time is <= `end`; leaves
  /// the queue untouched (and returns false) otherwise.
  template <typename OnReady>
  bool dispatch_min_until(SimTime end, OnReady&& on_ready) {
    const std::int64_t end_us = end.count_us();
    std::uint32_t idx;
    if (!current_.empty()) {
      if (node(current_.front()).when_us > end_us) return false;
      idx = pop_current();
    } else {
      if (size_ == 0) return false;
      idx = take_min();
      if (node(idx).when_us > end_us) {
        push_current(idx);  // un-pop: the cursor slot is its home now
        return false;
      }
    }
    dispatch_node(idx, on_ready);
    return true;
  }

  /// Timestamp of the minimum pending event, or nullopt when empty.
  /// Non-const: advances the internal cursor to the next occupied slot.
  [[nodiscard]] std::optional<SimTime> next_when() {
    if (current_.empty() && !prime()) return std::nullopt;
    return SimTime::from_us(node(current_.front()).when_us);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  // Geometry. Wheel0 slots are 2^kL0Shift µs wide; each wheel1 slot
  // spans one full wheel0 revolution. Widths are tuned for the packet
  // workload: at simulation density (~10^6 events/s) a 1µs slot holds
  // ~1 event, so the current_ heap stays near-empty and enqueue/dequeue
  // are O(1); wheel1 (4.1ms slots, ~16.8s horizon) catches protocol
  // timers, and only multi-second application timers pay the overflow
  // heap's O(log n). See docs/PERF.md for the width rationale and the
  // ordering proof.
  static constexpr std::size_t kSlotBits = 12;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;   // 4096
  static constexpr std::size_t kMask = kSlots - 1;
  static constexpr std::size_t kWords = kSlots / 64;
  static constexpr int kL0Shift = 0;                                   // 1µs slots
  static constexpr int kL1Shift = kL0Shift + static_cast<int>(kSlotBits);
  static constexpr int kL2Shift = kL1Shift + static_cast<int>(kSlotBits);

  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kChunk = 1024;  // nodes per slab chunk

  struct alignas(64) Node {
    std::int64_t when_us = 0;
    std::uint64_t seq = 0;
    std::uint32_t next = kNil;  // slot chain / freelist link
    InlineAction action;
  };

  struct Level {
    std::array<std::uint32_t, kSlots> head;  // kNil-terminated lists
    std::array<std::uint64_t, kWords> occupied;
    std::size_t count = 0;
  };

  [[nodiscard]] Node& node(std::uint32_t idx) {
    return chunks_[idx / kChunk].get()[idx % kChunk];
  }
  [[nodiscard]] const Node& node(std::uint32_t idx) const {
    return chunks_[idx / kChunk].get()[idx % kChunk];
  }

  [[nodiscard]] bool later(std::uint32_t a, std::uint32_t b) const {
    const Node& na = node(a);
    const Node& nb = node(b);
    if (na.when_us != nb.when_us) return na.when_us > nb.when_us;
    return na.seq > nb.seq;
  }

  void free_node(std::uint32_t idx) {
    Node& n = node(idx);
    n.action.reset();  // release captures promptly, before recycling
    n.next = free_head_;
    free_head_ = idx;
  }

  /// Append a raw (uninitialized) chunk to the slab. Chunks are never
  /// value-initialized up front: nodes are placement-constructed on
  /// first use, so growing costs one allocation, not a 1024-node sweep.
  void grow();

  void heap_push(std::vector<std::uint32_t>& heap, std::uint32_t idx);
  std::uint32_t heap_pop(std::vector<std::uint32_t>& heap);

  void push_current(std::uint32_t idx) {
    current_.push_back(idx);
    if (current_.size() > 1) {
      std::push_heap(current_.begin(), current_.end(),
                     [this](std::uint32_t a, std::uint32_t b) { return later(a, b); });
    }
  }

  /// Pop current_'s minimum. The common case is a singleton (at packet
  /// density each 1µs slot holds ~1 event), which skips the heap walk.
  [[nodiscard]] std::uint32_t pop_current() {
    if (current_.size() == 1) {
      const std::uint32_t idx = current_.front();
      current_.clear();
      return idx;
    }
    return heap_pop(current_);
  }

  /// Route a detached node into current_/wheel0/wheel1/overflow_
  /// according to the cursor position. Inline for the near-future
  /// (current_/wheel0) cases; far placements go out of line.
  void place(std::uint32_t idx) {
    Node& n = node(idx);
    const std::int64_t a0 = n.when_us >> kL0Shift;
    if (a0 <= cur0_) {
      // Inside (or before) the slot the cursor stands on: the tiny heap
      // keeps exact (when, seq) order among these.
      push_current(idx);
      return;
    }
    if (a0 - cur0_ <= static_cast<std::int64_t>(kSlots)) {
      const auto slot = static_cast<std::size_t>(a0) & kMask;
      n.next = wheel0_.head[slot];
      wheel0_.head[slot] = idx;
      wheel0_.occupied[slot >> 6] |= std::uint64_t{1} << (slot & 63);
      ++wheel0_.count;
      return;
    }
    place_far(idx);
  }
  void place_far(std::uint32_t idx);

  /// Invoke node `idx`'s action in place and recycle the node. The
  /// caller has already detached it from current_/take_min().
  template <typename OnReady>
  void dispatch_node(std::uint32_t idx, OnReady&& on_ready) {
    Node& n = node(idx);
    on_ready(SimTime::from_us(n.when_us));
    --size_;
    n.action();
    free_node(idx);
  }

  /// Detach and return the minimum (when, seq) node, advancing the
  /// cursor. Precondition: current_ is empty and size_ > 0. Singleton
  /// wheel0 slots (the common case at packet density) hand their node
  /// back directly, skipping the current_ round-trip; window changes
  /// (wheel1 cascade, overflow jump) go out of line.
  [[nodiscard]] std::uint32_t take_min() {
    assert(current_.empty() && size_ > 0);
    for (;;) {
      if (wheel0_.count != 0) {
        const std::size_t phase0 = static_cast<std::size_t>(cur0_) & kMask;
        const std::int64_t off0 = next_occupied_offset(wheel0_, phase0);  // != 0: count > 0
        const std::int64_t off_boundary = ((cur1_ + 1) << kSlotBits) - cur0_;  // in [1, kSlots]
        const bool no_later =
            wheel1_.count == 0 && wheel2_.count == 0 && overflow_.empty();
        if (off0 < off_boundary || no_later) {
          // Next occupied wheel0 slot is reachable without a cascade
          // (or no later windows exist, so nothing can preempt it).
          cur0_ += off0;
          if (no_later) cur1_ = cur0_ >> kSlotBits;
          const auto slot = static_cast<std::size_t>(cur0_) & kMask;
          const std::uint32_t head = wheel0_.head[slot];
          if (node(head).next == kNil) {
            // Singleton slot: hand the node back directly.
            wheel0_.head[slot] = kNil;
            wheel0_.occupied[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
            --wheel0_.count;
            return head;
          }
          move_slot0_to_current(slot);
          return pop_current();
        }
      }
      advance_window();
      if (!current_.empty()) return pop_current();
    }
  }

  /// Ensure current_ is non-empty (advancing the cursor); false when
  /// the whole queue is empty.
  bool prime();
  /// Move the cursor past the current wheel1 window: cascade the next
  /// wheel1 slot (or jump straight to the earliest overflow event when
  /// both wheels are empty) and pull newly-near overflow events in.
  /// May leave events in current_ and/or wheel0.
  void advance_window();
  void move_slot0_to_current(std::size_t slot);
  void cascade_slot1(std::size_t slot);
  void cascade_slot2(std::size_t slot);
  void drain_overflow();

  /// Offset in [1, kSlots] to the next occupied wheel slot after
  /// `phase` (circularly, so `phase` itself maps to kSlots), or 0 when
  /// the wheel is empty. Header-defined: take_min scans per pop.
  [[nodiscard]] std::int64_t next_occupied_offset(const Level& lvl, std::size_t phase) const {
    if (lvl.count == 0) return 0;
    const std::size_t start = (phase + 1) & kMask;
    std::size_t w = start >> 6;
    std::uint64_t word = lvl.occupied[w] & (~std::uint64_t{0} << (start & 63));
    for (std::size_t i = 0; i <= kWords; ++i) {
      if (word != 0) {
        const std::size_t bit = (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        // Map the found bit to a circular offset in [1, kSlots]; the
        // cursor's own phase means a full revolution ahead.
        return static_cast<std::int64_t>((bit - phase - 1) % kSlots) + 1;
      }
      w = (w + 1) % kWords;
      word = lvl.occupied[w];
    }
    return 0;
  }

  // Node slab: chunked so node addresses stay stable while growing.
  // Chunks are raw storage (see grow()); exactly the first `allocated_`
  // node slots hold constructed Nodes, which the destructor tears down.
  struct ChunkDeleter {
    void operator()(Node* p) const noexcept {
      ::operator delete(static_cast<void*>(p), std::align_val_t{alignof(Node)});
    }
  };
  std::vector<std::unique_ptr<Node, ChunkDeleter>> chunks_;
  std::uint32_t free_head_ = kNil;
  std::uint32_t allocated_ = 0;
  std::uint32_t capacity_ = 0;  // == chunks_.size() * kChunk

  Level wheel0_;
  Level wheel1_;
  Level wheel2_;
  std::vector<std::uint32_t> current_;   // heap by (when, seq)
  std::vector<std::uint32_t> overflow_;  // heap by (when, seq)

  // Cursor: absolute wheel0 slot number (when_us >> kL0Shift) the queue
  // is currently standing on; cur1_ is always cur0_ >> kSlotBits and
  // cur2_ is cur1_ >> kSlotBits.
  std::int64_t cur0_ = 0;
  std::int64_t cur1_ = 0;
  std::int64_t cur2_ = 0;

  std::size_t size_ = 0;
};

}  // namespace dnsctx::netsim
