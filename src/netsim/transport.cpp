#include "netsim/transport.hpp"

#include "netsim/packet.hpp"

namespace dnsctx::netsim {

std::string_view to_string(TrueClass c) {
  switch (c) {
    case TrueClass::kUnknown: return "unknown";
    case TrueClass::kNoDns: return "no-dns";
    case TrueClass::kLocalCache: return "local-cache";
    case TrueClass::kPrefetched: return "prefetched";
    case TrueClass::kSharedCache: return "shared-cache";
    case TrueClass::kRequired: return "required";
    case TrueClass::kPushed: return "pushed";
    case TrueClass::kDnsTransport: return "dns-transport";
  }
  return "?";
}

std::string_view to_string(Transport t) {
  switch (t) {
    case Transport::kDo53: return "do53";
    case Transport::kDoT: return "dot";
    case Transport::kDoH: return "doh";
    case Transport::kResolverless: return "resolverless";
  }
  return "?";
}

std::optional<Transport> parse_transport(std::string_view name) {
  if (name == "do53") return Transport::kDo53;
  if (name == "dot") return Transport::kDoT;
  if (name == "doh") return Transport::kDoH;
  if (name == "resolverless") return Transport::kResolverless;
  return std::nullopt;
}

namespace {

// Cleartext transports: no padding, no channel. kResolverless keeps the
// classic do53 wire behaviour — what changes is that servers push
// records into device caches (src/traffic), not how lookups travel.
constexpr TransportTraits kDo53Traits{};

// DoT (RFC 7858): TLS 1.3 over a dedicated TCP/853 connection. 16-byte
// sizes: TLS record header (5) + AEAD tag (16) + 2-byte DNS length
// prefix + handshake-message framing ≈ 31 bytes per message. Stub
// resolvers idle the session out after ~10 s (Hounsel et al.).
constexpr TransportTraits kDotTraits{
    .port = 853,
    .encrypted = true,
    .query_pad_block = 128,
    .response_pad_block = 468,
    .per_message_overhead = 31,
    .client_hello_bytes = 289,
    .server_hello_bytes = 3295,
    .idle_timeout = SimDuration::sec(10),
};

// DoH (RFC 8484): HTTP/2 over TLS on TCP/443 — the same padded DNS
// message plus HTTP/2 HEADERS+DATA framing (~72 bytes of compressed
// headers on top of the TLS record costs). Browser connection pools
// hold the channel noticeably longer (~30 s).
constexpr TransportTraits kDohTraits{
    .port = 443,
    .encrypted = true,
    .query_pad_block = 128,
    .response_pad_block = 468,
    .per_message_overhead = 103,
    .client_hello_bytes = 517,
    .server_hello_bytes = 4133,
    .idle_timeout = SimDuration::sec(30),
};

}  // namespace

const TransportTraits& traits_for(Transport t) {
  switch (t) {
    case Transport::kDoT: return kDotTraits;
    case Transport::kDoH: return kDohTraits;
    case Transport::kDo53:
    case Transport::kResolverless: break;
  }
  return kDo53Traits;
}

}  // namespace dnsctx::netsim
