// dnsctx — the packet record exchanged between simulated hosts.
//
// Packets are abstract transport events, not byte-accurate frames, with
// one exception: DNS payloads round-trip through the real RFC 1035
// codec (lazily — see dns/lazy.hpp) so the passive monitor consumes
// them exactly as Bro/Zeek would parse the wire bytes.
//
// VANTAGE-POINT RULE: the `intent` field is simulation-internal routing
// metadata (the client tells the generic server farm how to animate the
// transfer). The passive monitor MUST NOT read it; monitors only consume
// the observable header fields, payload sizes and DNS bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "dns/lazy.hpp"
#include "util/ip.hpp"
#include "util/time.hpp"

namespace dnsctx::netsim {

/// TCP control flags relevant to Bro-style connection tracking.
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;

  bool operator==(const TcpFlags&) const = default;
};

/// Ground-truth provenance of the name-to-address mapping behind a
/// connection — the simulator-side answer to the question the paper's
/// N/LC/P/SC/R taxonomy infers from passive logs. Subject to the
/// VANTAGE-POINT RULE above: carried on `TransferIntent`, readable only
/// by ground-truth collectors (capture::TruthTap), never by monitors.
enum class TrueClass : std::uint8_t {
  kUnknown = 0,       ///< provenance not tracked for this flow
  kNoDns = 1,         ///< no DNS used (P2P, hard-coded IPs) — truth for N
  kLocalCache = 2,    ///< served by the device/home cache — truth for LC
  kPrefetched = 3,    ///< first use of a speculative lookup — truth for P
  kSharedCache = 4,   ///< blocked; resolver answered from its cache — truth for SC
  kRequired = 5,      ///< blocked; resolver resolved authoritatively — truth for R
  kPushed = 6,        ///< resolver-less: record was server-pushed, no lookup at all
  kDnsTransport = 7,  ///< the flow IS a DNS channel (DoT/DoH/legacy 853)
};

[[nodiscard]] std::string_view to_string(TrueClass c);
inline constexpr std::size_t kTrueClassCount = 8;

/// How the generic server farm should animate a client-initiated
/// transfer: sizes, how long the response takes, and whether the server
/// answers at all (dead IPs yield Bro "S0" attempts).
struct TransferIntent {
  std::uint64_t request_bytes = 300;
  std::uint64_t response_bytes = 10'000;
  /// Application transfer time A: first request byte to last response
  /// byte, as the paper's §6 defines the non-DNS part of a transaction.
  SimDuration transfer_time = SimDuration::ms(100);
  /// Server-side think time before the first response byte.
  SimDuration server_delay = SimDuration::ms(5);
  /// Ground truth for taxonomy validation (sim-internal, see above).
  TrueClass true_class = TrueClass::kUnknown;
};

/// A packet in flight. `src`/`dst` are the on-the-wire addresses at the
/// observation point the packet currently traverses (the NAT rewrites
/// them at the home gateway, exactly like real address translation).
struct Packet {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Proto proto = Proto::kTcp;

  TcpFlags tcp;                      ///< meaningful only when proto == kTcp
  std::uint64_t payload_bytes = 0;   ///< application payload size this packet carries

  /// DNS payload when this packet is a DNS query/response. Shared
  /// lazily-materializing handle: fan-out through gateway/tap without
  /// copies, and no wire encode/decode unless someone asks for bytes.
  dns::DnsPayload dns;

  /// Sim-internal, invisible to monitors (see file header).
  std::optional<TransferIntent> intent;

  [[nodiscard]] FiveTuple tuple() const {
    return FiveTuple{src_ip, dst_ip, src_port, dst_port, proto};
  }

  /// Approximate on-the-wire size for volume accounting: header estimate
  /// plus payload/DNS bytes.
  [[nodiscard]] std::uint64_t wire_bytes() const {
    const std::uint64_t header = proto == Proto::kTcp ? 54 : 42;
    return header + payload_bytes + static_cast<std::uint64_t>(dns.wire_size());
  }
};

}  // namespace dnsctx::netsim
