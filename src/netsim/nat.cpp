#include "netsim/nat.hpp"

#include <stdexcept>

namespace dnsctx::netsim {

HouseGateway::HouseGateway(Simulator& sim, Network& wan, Ipv4Addr external_ip,
                           std::uint64_t seed, SimDuration lan_delay)
    : sim_{sim}, wan_{wan}, external_ip_{external_ip}, lan_delay_{lan_delay}, rng_{seed} {
  wan_.attach(external_ip_, this);
  wan_.register_access_ip(external_ip_);
}

void HouseGateway::attach_device(Ipv4Addr internal_ip, Host* device) {
  devices_[internal_ip] = device;
}

std::uint16_t HouseGateway::map_outbound(const InternalKey& key) {
  if (const auto it = by_internal_.find(key); it != by_internal_.end()) {
    auto& mapping = by_external_[ExternalKey{it->second, key.proto}];
    mapping.last_used = sim_.now();
    return it->second;
  }
  // Allocate the next free (or reclaimable) external port; one full scan
  // of the port space before declaring exhaustion.
  for (std::uint32_t attempts = 0; attempts < 64'512; ++attempts) {
    const std::uint16_t candidate = next_port_;
    next_port_ = next_port_ == 65'535 ? std::uint16_t{1024} : static_cast<std::uint16_t>(next_port_ + 1);
    const ExternalKey ext{candidate, key.proto};
    const auto it = by_external_.find(ext);
    if (it != by_external_.end()) {
      if (sim_.now() - it->second.last_used < kMappingIdleLimit) continue;
      by_internal_.erase(it->second.internal);
      by_external_.erase(it);
    }
    by_internal_[key] = candidate;
    by_external_[ext] = Mapping{key, candidate, sim_.now()};
    return candidate;
  }
  throw std::runtime_error{"HouseGateway: NAT port space exhausted"};
}

void HouseGateway::from_device(Packet p) {
  if (dns_intercept_ && p.proto == Proto::kUdp && p.dst_port == 53) {
    if (dns_intercept_(p)) return;
  }
  const InternalKey key{p.src_ip, p.src_port, p.proto};
  const std::uint16_t ext_port = map_outbound(key);
  // The LAN hop, then the translated packet leaves on the WAN.
  const double lan_jitter_ms = rng_.exponential(0.1);
  sim_.after(lan_delay_ + SimDuration::from_ms(lan_jitter_ms),
             [this, p = std::move(p), ext_port]() mutable {
               p.src_ip = external_ip_;
               p.src_port = ext_port;
               wan_.send(std::move(p));
             });
}

void HouseGateway::deliver_to_device(Packet p) {
  const auto dev = devices_.find(p.dst_ip);
  if (dev == devices_.end()) return;
  const double lan_jitter_ms = rng_.exponential(0.1);
  sim_.after(lan_delay_ + SimDuration::from_ms(lan_jitter_ms),
             [host = dev->second, p = std::move(p)]() { host->receive(p); });
}

void HouseGateway::receive(const Packet& p) {
  const auto it = by_external_.find(ExternalKey{p.dst_port, p.proto});
  if (it == by_external_.end()) return;  // unsolicited inbound: dropped, like real NAT
  it->second.last_used = sim_.now();
  const InternalKey target = it->second.internal;
  const auto dev = devices_.find(target.ip);
  if (dev == devices_.end()) return;
  Packet translated = p;
  translated.dst_ip = target.ip;
  translated.dst_port = target.port;
  const double lan_jitter_ms = rng_.exponential(0.1);
  sim_.after(lan_delay_ + SimDuration::from_ms(lan_jitter_ms),
             [host = dev->second, translated = std::move(translated)]() {
               host->receive(translated);
             });
}

}  // namespace dnsctx::netsim
