#include "netsim/nat.hpp"

#include <stdexcept>
#include <vector>

namespace dnsctx::netsim {

HouseGateway::HouseGateway(Simulator& sim, Network& wan, Ipv4Addr external_ip,
                           std::uint64_t seed, SimDuration lan_delay)
    : sim_{sim}, wan_{wan}, external_ip_{external_ip}, lan_delay_{lan_delay}, rng_{seed} {
  wan_.attach(external_ip_, this);
  wan_.register_access_ip(external_ip_);
}

void HouseGateway::attach_device(Ipv4Addr internal_ip, Host* device) {
  devices_[internal_ip] = device;
}

void HouseGateway::release_mapping(std::uint32_t idx, const ExternalKey& ext) {
  by_internal_.erase(slab_[idx].internal);
  by_external_.erase(ext);
  free_slots_.push_back(idx);
}

std::uint16_t HouseGateway::map_outbound(const InternalKey& key) {
  if (const auto it = by_internal_.find(key); it != by_internal_.end()) {
    Mapping& m = slab_[it->second];
    m.last_used = sim_.now();
    return m.external_port;
  }
  // Allocate the next free (or reclaimable) external port; one full scan
  // of the port space before declaring exhaustion.
  for (std::uint32_t attempts = 0; attempts < 64'512; ++attempts) {
    const std::uint16_t candidate = next_port_;
    next_port_ = next_port_ == 65'535 ? std::uint16_t{1024} : static_cast<std::uint16_t>(next_port_ + 1);
    const ExternalKey ext{candidate, key.proto};
    const auto it = by_external_.find(ext);
    if (it != by_external_.end()) {
      if (sim_.now() - slab_[it->second].last_used < kMappingIdleLimit) continue;
      release_mapping(it->second, ext);
    }
    std::uint32_t idx;
    if (!free_slots_.empty()) {
      idx = free_slots_.back();
      free_slots_.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(slab_.size());
      slab_.emplace_back();
    }
    slab_[idx] = Mapping{key, candidate, sim_.now()};
    by_internal_[key] = idx;
    by_external_[ext] = idx;
    if (!sweep_armed_) {
      sweep_armed_ = true;
      sim_.after(kMappingIdleLimit, [this] { sweep_stale(); });
    }
    return candidate;
  }
  throw std::runtime_error{"HouseGateway: NAT port space exhausted"};
}

void HouseGateway::sweep_stale() {
  // Reclaim idle mappings in bulk so the tables track the active flow
  // count instead of growing for the whole run. Uses the same idle
  // threshold as the allocator's lazy reclaim, so port allocation is
  // unaffected: a mapping idle past the limit behaves exactly like an
  // absent one there.
  std::vector<std::pair<ExternalKey, std::uint32_t>> dead;
  for (const auto& [ext, idx] : by_external_) {
    if (sim_.now() - slab_[idx].last_used >= kMappingIdleLimit) dead.emplace_back(ext, idx);
  }
  for (const auto& [ext, idx] : dead) release_mapping(idx, ext);
  if (by_external_.empty()) {
    // Nothing left to age out; re-arm on the next allocation so an idle
    // gateway holds no pending events (run_to_completion terminates).
    sweep_armed_ = false;
    return;
  }
  sim_.after(kMappingIdleLimit, [this] { sweep_stale(); });
}

void HouseGateway::from_device(Packet p) {
  if (dns_intercept_ && p.proto == Proto::kUdp && p.dst_port == 53) {
    if (dns_intercept_(p)) return;
  }
  const InternalKey key{p.src_ip, p.src_port, p.proto};
  const std::uint16_t ext_port = map_outbound(key);
  // Translate now (the values are already fixed), adopt into the WAN's
  // packet arena, and let the LAN-hop closure carry only the handle.
  const double lan_jitter_ms = rng_.exponential(0.1);
  p.src_ip = external_ip_;
  p.src_port = ext_port;
  PacketHandle h = wan_.arena().adopt(std::move(p));
  sim_.after(lan_delay_ + SimDuration::from_ms(lan_jitter_ms),
             [wan = &wan_, h = std::move(h)]() { wan->send(h); });
}

void HouseGateway::deliver_to_device(Packet p) {
  const auto dev = devices_.find(p.dst_ip);
  if (dev == devices_.end()) return;
  const double lan_jitter_ms = rng_.exponential(0.1);
  PacketHandle h = wan_.arena().adopt(std::move(p));
  sim_.after(lan_delay_ + SimDuration::from_ms(lan_jitter_ms),
             [host = dev->second, h = std::move(h)]() { host->receive(*h); });
}

void HouseGateway::receive(const Packet& p) {
  const auto it = by_external_.find(ExternalKey{p.dst_port, p.proto});
  if (it == by_external_.end()) return;  // unsolicited inbound: dropped, like real NAT
  Mapping& m = slab_[it->second];
  m.last_used = sim_.now();
  const InternalKey target = m.internal;
  const auto dev = devices_.find(target.ip);
  if (dev == devices_.end()) return;
  Packet translated = p;
  translated.dst_ip = target.ip;
  translated.dst_port = target.port;
  const double lan_jitter_ms = rng_.exponential(0.1);
  PacketHandle h = wan_.arena().adopt(std::move(translated));
  sim_.after(lan_delay_ + SimDuration::from_ms(lan_jitter_ms),
             [host = dev->second, h = std::move(h)]() { host->receive(*h); });
}

}  // namespace dnsctx::netsim
