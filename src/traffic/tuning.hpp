// dnsctx — query-composition tuning knobs (scenario packs).
//
// Every knob defaults to the literal the code used before packs
// existed, and the default-constructed struct is applied through
// arithmetic identities (×1.0, ÷1.0, bounded() with identical bounds),
// so a default TrafficTuning reproduces the classic household mix byte
// for byte — the golden-output contract. Scenario packs
// (src/scenario/pack.hpp) override these to model IoT-heavy homes,
// CDN-dominated streaming, junk/NXDOMAIN storms, or enterprise fanout.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "traffic/diurnal.hpp"

namespace dnsctx::traffic {

/// Per-origin fanout ranges for the static web model. Each page origin
/// draws its third-party dependencies uniformly from [min, max].
struct WebFanout {
  std::size_t cdn_min = 2, cdn_max = 5;
  std::size_t ad_min = 1, ad_max = 3;
  std::size_t tracker_min = 1, tracker_max = 2;
  std::size_t api_min = 0, api_max = 2;
  std::size_t links_min = 4, links_max = 10;

  bool operator==(const WebFanout&) const = default;
};

/// Composition knobs threaded from ScenarioConfig into house/device
/// population draws and per-app configs. Scales are activity
/// multipliers: 2.0 means twice as many sessions/polls per hour.
struct TrafficTuning {
  // --- device population (per-house inventory draws) ---
  std::size_t computers_min = 1, computers_max = 2;
  std::size_t computers_light = 1;     ///< fixed count in "light" houses
  double android_extra_prob = 0.25;    ///< chance of a second Android
  double apple_prob = 0.5, apple_prob_light = 0.3;
  double tv_prob = 0.65, tv_prob_light = 0.5;
  std::size_t iot_min = 0, iot_max = 1;
  double alarm_prob = 0.25;

  // --- app behaviour ---
  double browser_session_scale = 1.0;
  double video_session_scale = 1.0;
  double background_poll_scale = 1.0;
  double pages_per_session_scale = 1.0;
  double conncheck_scale = 1.0;
  double prefetch_prob = 0.9;          ///< non-OpenDNS houses (OpenDNS pins 0.2)
  double household_site_prob = 0.4;
  double junk_probe_prob = 0.35;
  /// Dedicated junk/NXDOMAIN app: mean queries per device-hour. 0
  /// disables the app entirely (no extra RNG streams — the default).
  double junk_queries_per_hour = 0.0;

  // --- web structure ---
  WebFanout web;

  // --- diurnal shape ---
  std::array<double, 24> diurnal_hours = kResidentialHours;

  bool operator==(const TrafficTuning&) const = default;

  /// Programmatic backstop behind the pack parser's per-line checks:
  /// a tuning assembled in code (tests, future callers) gets the same
  /// rejection as one loaded from a malformed pack file.
  void validate() const {
    const auto range = [](std::size_t lo, std::size_t hi, const char* what) {
      if (lo > hi) {
        throw std::invalid_argument{std::string{"TrafficTuning: "} + what +
                                    " min exceeds max"};
      }
    };
    range(computers_min, computers_max, "computers");
    range(iot_min, iot_max, "iot");
    range(web.cdn_min, web.cdn_max, "web cdn");
    range(web.ad_min, web.ad_max, "web ad");
    range(web.tracker_min, web.tracker_max, "web tracker");
    range(web.api_min, web.api_max, "web api");
    range(web.links_min, web.links_max, "web links");
    if (computers_min < 1) {
      throw std::invalid_argument{
          "TrafficTuning: computers min must be >= 1 (every house browses)"};
    }
    const auto prob = [](double p, const char* what) {
      if (!(p >= 0.0 && p <= 1.0)) {  // negated to also catch NaN
        throw std::invalid_argument{std::string{"TrafficTuning: "} + what +
                                    " must be in [0, 1]"};
      }
    };
    prob(android_extra_prob, "android_extra_prob");
    prob(apple_prob, "apple_prob");
    prob(apple_prob_light, "apple_prob_light");
    prob(tv_prob, "tv_prob");
    prob(tv_prob_light, "tv_prob_light");
    prob(alarm_prob, "alarm_prob");
    prob(prefetch_prob, "prefetch_prob");
    prob(household_site_prob, "household_site_prob");
    prob(junk_probe_prob, "junk_probe_prob");
    const auto positive = [](double v, const char* what) {
      if (!(v > 0.0) || !std::isfinite(v)) {
        throw std::invalid_argument{std::string{"TrafficTuning: "} + what +
                                    " must be a positive finite number"};
      }
    };
    positive(browser_session_scale, "browser_session_scale");
    positive(video_session_scale, "video_session_scale");
    positive(background_poll_scale, "background_poll_scale");
    positive(pages_per_session_scale, "pages_per_session_scale");
    positive(conncheck_scale, "conncheck_scale");
    if (!(junk_queries_per_hour >= 0.0) ||
        !std::isfinite(junk_queries_per_hour)) {
      throw std::invalid_argument{
          "TrafficTuning: junk_queries_per_hour must be finite and >= 0"};
    }
    (void)DiurnalProfile::custom(diurnal_hours);  // throws on bad table
  }
};

}  // namespace dnsctx::traffic
