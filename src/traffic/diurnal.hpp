// dnsctx — diurnal activity modulation.
//
// Residential traffic follows a strong daily rhythm (quiet overnight,
// peak in the evening). Apps divide their mean inter-arrival gaps by the
// current factor, so a factor of 2 doubles the session rate.
#pragma once

#include <array>

#include "util/time.hpp"

namespace dnsctx::traffic {

class DiurnalProfile {
 public:
  /// Residential default: trough ~04:00, peak 19:00–22:00.
  [[nodiscard]] static DiurnalProfile residential() {
    return DiurnalProfile{{0.35, 0.25, 0.2, 0.15, 0.15, 0.2, 0.35, 0.55,
                           0.7, 0.75, 0.8, 0.85, 0.9, 0.9, 0.9, 0.95,
                           1.1, 1.3, 1.6, 1.8, 1.8, 1.6, 1.2, 0.7}};
  }

  /// Flat profile (IoT heartbeats do not sleep).
  [[nodiscard]] static DiurnalProfile flat() {
    DiurnalProfile p;
    p.hours_.fill(1.0);
    return p;
  }

  /// Activity multiplier at a simulated instant. t = 0 corresponds to
  /// local `start_hour` o'clock (set via with_start_hour).
  [[nodiscard]] double factor(SimTime t) const {
    const auto hour = static_cast<std::size_t>(
        (start_hour_ + t.count_us() / 3'600'000'000LL) % 24);
    return hours_[hour];
  }

  /// Shift the phase: simulations usually start mid-afternoon so short
  /// runs see representative traffic.
  [[nodiscard]] DiurnalProfile with_start_hour(int hour) const {
    DiurnalProfile p = *this;
    p.start_hour_ = ((hour % 24) + 24) % 24;
    return p;
  }

 private:
  DiurnalProfile() = default;
  explicit DiurnalProfile(std::array<double, 24> hours) : hours_{hours} {}
  std::array<double, 24> hours_{};
  int start_hour_ = 0;
};

}  // namespace dnsctx::traffic
