// dnsctx — diurnal activity modulation.
//
// Residential traffic follows a strong daily rhythm (quiet overnight,
// peak in the evening). Apps divide their mean inter-arrival gaps by the
// current factor, so a factor of 2 doubles the session rate.
#pragma once

#include <array>
#include <cmath>
#include <stdexcept>

#include "util/time.hpp"

namespace dnsctx::traffic {

/// The residential 24-hour multiplier table, exposed so scenario packs
/// can default to it and serializers can detect "unchanged".
inline constexpr std::array<double, 24> kResidentialHours{
    0.35, 0.25, 0.2,  0.15, 0.15, 0.2, 0.35, 0.55, 0.7, 0.75, 0.8, 0.85,
    0.9,  0.9,  0.9,  0.95, 1.1,  1.3, 1.6,  1.8,  1.8, 1.6,  1.2, 0.7};

/// Office-hours profile: ramp 07:00, plateau 09:00–17:00, near-dead
/// overnight. Used by the enterprise_fanout scenario pack.
inline constexpr std::array<double, 24> kOfficeHours{
    0.1, 0.1, 0.1, 0.1, 0.15, 0.25, 0.5, 0.9, 1.4, 1.7, 1.8, 1.7,
    1.5, 1.6, 1.7, 1.6, 1.4,  1.0,  0.6, 0.4, 0.3, 0.2, 0.15, 0.1};

class DiurnalProfile {
 public:
  /// Residential default: trough ~04:00, peak 19:00–22:00.
  [[nodiscard]] static DiurnalProfile residential() {
    return DiurnalProfile{kResidentialHours};
  }

  /// Flat profile (IoT heartbeats do not sleep).
  [[nodiscard]] static DiurnalProfile flat() {
    DiurnalProfile p;
    p.hours_.fill(1.0);
    return p;
  }

  /// Office-hours profile (enterprise scenarios).
  [[nodiscard]] static DiurnalProfile office() {
    return DiurnalProfile{kOfficeHours};
  }

  /// Profile from an arbitrary 24-hour multiplier table. Every entry
  /// must be finite and non-negative and at least one must be positive,
  /// otherwise every gap in the scenario would collapse to the 0.05
  /// floor (or worse, a negative mean) — reject loudly instead.
  [[nodiscard]] static DiurnalProfile custom(
      const std::array<double, 24>& hours) {
    bool any_positive = false;
    for (const double h : hours) {
      if (!std::isfinite(h) || h < 0.0) {
        throw std::invalid_argument{
            "DiurnalProfile: hour multipliers must be finite and >= 0"};
      }
      any_positive = any_positive || h > 0.0;
    }
    if (!any_positive) {
      throw std::invalid_argument{
          "DiurnalProfile: at least one hour multiplier must be > 0"};
    }
    return DiurnalProfile{hours};
  }

  /// Activity multiplier at a simulated instant. t = 0 corresponds to
  /// local `start_hour` o'clock (set via with_start_hour). Negative
  /// times (apps scheduling "just before" the epoch after a clamp) use
  /// a floored modulus so the index stays in [0, 24) instead of the
  /// truncated `%` going negative and casting to a huge size_t.
  [[nodiscard]] double factor(SimTime t) const {
    const long long raw = start_hour_ + t.count_us() / 3'600'000'000LL;
    const long long wrapped = ((raw % 24) + 24) % 24;
    return hours_[static_cast<std::size_t>(wrapped)];
  }

  /// Shift the phase: simulations usually start mid-afternoon so short
  /// runs see representative traffic.
  [[nodiscard]] DiurnalProfile with_start_hour(int hour) const {
    DiurnalProfile p = *this;
    p.start_hour_ = ((hour % 24) + 24) % 24;
    return p;
  }

  /// The underlying multiplier table (pack serialization + tests).
  [[nodiscard]] const std::array<double, 24>& hours() const {
    return hours_;
  }

 private:
  DiurnalProfile() = default;
  explicit DiurnalProfile(std::array<double, 24> hours) : hours_{hours} {}
  std::array<double, 24> hours_{};
  int start_hour_ = 0;
};

}  // namespace dnsctx::traffic
