// dnsctx — application behaviour models.
//
// Each app drives one Device with a workload whose DNS footprint matches
// the behaviours the paper measures:
//   * BrowserApp    — sessions of multi-host page loads with speculative
//                     DNS prefetching of links (P class, unused lookups)
//                     and keep-alive connection reuse,
//   * VideoApp      — streaming sessions: short-TTL CDN names re-resolved
//                     across long segment fetches,
//   * BackgroundApp — periodic API/telemetry polls (blocked lookups when
//                     the poll period exceeds the TTL),
//   * ConnCheckApp  — Android connectivity checks against
//                     connectivitycheck.gstatic.com (the §7 artifact),
//   * P2pApp        — swarm traffic on high ports with NO DNS (N class),
//   * IotApp        — NTP and alarm heartbeats to hard-coded addresses,
//                     including a dead NTP server (§5.1's 23K failures).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "traffic/device.hpp"
#include "traffic/diurnal.hpp"
#include "traffic/webmodel.hpp"

namespace dnsctx::traffic {

/// Shared world context every app reads.
struct AppWorld {
  const resolver::ZoneDb& zones;
  const WebModel& web;
  DiurnalProfile diurnal = DiurnalProfile::residential();
};

/// Sample a transfer script for a connection to a host of the given
/// service class; `tput_factor` scales delivery rate (CDN edge quality).
[[nodiscard]] netsim::TransferIntent sample_intent(resolver::ServiceClass service,
                                                   double tput_factor, Rng& rng);

/// Base class: the periodic-activity skeleton all apps share.
class App {
 public:
  App(Device& device, const AppWorld& world, std::uint64_t seed)
      : device_{device}, world_{world}, rng_{seed} {}
  virtual ~App() = default;
  App(const App&) = delete;
  App& operator=(const App&) = delete;

  /// Begin scheduling activity (first event after a randomised offset).
  virtual void start() = 0;

 protected:
  /// Schedule `fn` after an exponential gap with the given diurnally
  /// modulated mean.
  void schedule_next(double mean_gap_sec, std::function<void()> fn);

  Device& device_;
  const AppWorld& world_;
  Rng rng_;
};

// ---------------------------------------------------------------------------

struct BrowserConfig {
  double session_gap_mean_sec = 1'150;  ///< between browsing sessions (diurnal-scaled)
  /// Sites everyone in the household frequents (shared interests). When
  /// set, sessions start from this list with `household_site_prob` —
  /// this intra-house correlation is what makes a whole-house cache
  /// worthwhile in §8.
  std::shared_ptr<const std::vector<resolver::NameId>> household_sites;
  double household_site_prob = 0.4;
  double pages_per_session_mean = 6.0;
  double asset_fetch_prob = 0.85;       ///< per embedded asset host per page
  double prefetch_prob = 0.9;           ///< per candidate link on a page
  std::size_t prefetch_links_max = 8;
  double follow_link_prob = 0.65;       ///< next page navigates to a linked site
  double extra_origin_conn_prob = 0.45; ///< parallel connections to the origin
  double reuse_conn_prob = 0.55;        ///< keep-alive: repeat host ⇒ no new connection
  double think_mu = 3.1;                ///< lognormal page dwell (ln seconds)
  double think_sigma = 0.9;
  /// Chromium-style random-hostname probes at session start (the
  /// browser's DNS-interception check) — guaranteed NXDOMAIN traffic.
  double junk_probe_prob = 0.35;
  /// Resolver-less DNS (Sy et al., --transport resolverless): pages push
  /// address records for their embedded asset hosts alongside the HTML,
  /// so asset connections need no lookup — and leave no DNS transaction
  /// for the monitor to pair. Draws no randomness: the default-off path
  /// stays byte-identical.
  bool server_push = false;
};

class BrowserApp : public App {
 public:
  BrowserApp(Device& device, const AppWorld& world, BrowserConfig cfg, std::uint64_t seed)
      : App{device, world, seed}, cfg_{cfg} {}
  void start() override;

 private:
  void begin_session();
  void visit_page(resolver::NameId site, int pages_left);
  void load_assets(const PageProfile& prof);
  void push_assets(const PageProfile& prof);
  void maybe_prefetch_links(const PageProfile& prof);

  BrowserConfig cfg_;
  std::vector<resolver::NameId> session_hosts_;  ///< hosts with live keep-alive conns
  std::vector<resolver::NameId> prefetched_;     ///< links prefetched this session
};

// ---------------------------------------------------------------------------

struct VideoConfig {
  double session_gap_mean_sec = 6'500;
  double watch_minutes_mean = 22.0;
  double segment_minutes_mean = 2.5;
};

class VideoApp : public App {
 public:
  VideoApp(Device& device, const AppWorld& world, VideoConfig cfg, std::uint64_t seed)
      : App{device, world, seed}, cfg_{cfg} {}
  void start() override;

 private:
  void begin_session();
  void next_segment(resolver::NameId site, double minutes_left);
  VideoConfig cfg_;
};

// ---------------------------------------------------------------------------

struct BackgroundConfig {
  /// Endpoints every device in the population polls (push notification
  /// hubs, vendor clouds). Their lookups repeat across devices of the
  /// same house within the TTL — prime §8 whole-house cache material.
  std::shared_ptr<const std::vector<resolver::NameId>> universal_services;
  double universal_period_min_sec = 500;
  double universal_period_max_sec = 1'500;
  std::size_t services_min = 2;   ///< API names this device polls
  std::size_t services_max = 5;
  double period_min_sec = 50;
  double period_max_sec = 700;
  /// Chance a poll resolves first and connects noticeably later (app
  /// wake-up patterns) — produces first-use-after-a-gap (P) connections.
  double deferred_connect_prob = 0.45;
  double deferred_delay_min_sec = 0.5;
  double deferred_delay_max_sec = 120.0;
};

class BackgroundApp : public App {
 public:
  BackgroundApp(Device& device, const AppWorld& world, BackgroundConfig cfg,
                std::uint64_t seed);
  void start() override;

 private:
  void poll(std::size_t service_idx);
  BackgroundConfig cfg_;
  struct Service {
    resolver::NameId name;
    double period_sec;
  };
  std::vector<Service> services_;
};

// ---------------------------------------------------------------------------

struct ConnCheckConfig {
  double period_mean_sec = 450;  ///< screen-wake / network-event cadence
};

class ConnCheckApp : public App {
 public:
  ConnCheckApp(Device& device, const AppWorld& world, ConnCheckConfig cfg, std::uint64_t seed)
      : App{device, world, seed}, cfg_{cfg} {}
  void start() override;

 private:
  void check();
  ConnCheckConfig cfg_;
};

// ---------------------------------------------------------------------------

struct P2pConfig {
  /// Mean seconds between peer-churn rounds (a seeding/leeching client
  /// keeps rotating peers around the clock).
  double churn_gap_mean_sec = 50.0;
  std::size_t peers_per_round_max = 2;
  double flow_minutes_mean = 4.0;     ///< per-peer exchange length
  std::uint16_t local_port = 51'413;
  double tcp_peer_prob = 0.35;        ///< balance of peers contacted over TCP
  double dead_peer_prob = 0.2;        ///< stale peers from the DHT never answer
};

class P2pApp : public App {
 public:
  P2pApp(Device& device, const AppWorld& world, P2pConfig cfg, std::uint64_t seed)
      : App{device, world, seed}, cfg_{cfg} {}
  void start() override;

 private:
  void churn();
  void contact_peer();
  [[nodiscard]] Ipv4Addr random_peer();
  P2pConfig cfg_;
};

// ---------------------------------------------------------------------------

/// B-Root-style junk/NXDOMAIN composition (scenario packs only — no
/// instance exists unless TrafficTuning::junk_queries_per_hour > 0, so
/// the default scenario's RNG streams are untouched). Models leaked
/// suffix-search queries, typo'd hostnames, and misconfigured clients
/// hammering names that can never resolve.
struct JunkConfig {
  double queries_per_hour = 60.0;  ///< mean junk lookups per device-hour
  std::size_t burst_max = 3;       ///< each tick fires 1..burst_max lookups
  double dotted_prob = 0.55;       ///< leaked private suffix vs bare label
};

class JunkApp : public App {
 public:
  JunkApp(Device& device, const AppWorld& world, JunkConfig cfg, std::uint64_t seed)
      : App{device, world, seed}, cfg_{cfg} {}
  void start() override;

 private:
  void storm();
  [[nodiscard]] double gap_mean_sec() const;
  JunkConfig cfg_;
};

// ---------------------------------------------------------------------------

struct IotConfig {
  bool ntp = true;
  double ntp_period_sec = 1'200;
  /// Hard-coded NTP server; when `ntp_dead` the address never answers
  /// (the retired-public-NTP story from §5.1).
  Ipv4Addr ntp_server{132, 163, 96, 1};
  bool ntp_dead = false;
  bool alarm = false;  ///< AlarmNet-style HTTPS heartbeats
  double alarm_period_sec = 900;
  Ipv4Addr alarm_server{204, 141, 57, 10};
};

class IotApp : public App {
 public:
  IotApp(Device& device, const AppWorld& world, IotConfig cfg, std::uint64_t seed)
      : App{device, world, seed}, cfg_{cfg} {}
  void start() override;

 private:
  void ntp_tick();
  void alarm_tick();
  IotConfig cfg_;
};

}  // namespace dnsctx::traffic
