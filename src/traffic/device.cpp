#include "traffic/device.hpp"

namespace dnsctx::traffic {

Device::Device(netsim::Simulator& sim, netsim::HouseGateway& gateway, Ipv4Addr internal_ip,
               resolver::StubConfig stub_cfg, std::uint64_t seed)
    : sim_{sim},
      gateway_{gateway},
      ip_{internal_ip},
      rng_{derive_seed(seed, "device-rng")},
      stub_{sim, internal_ip, std::move(stub_cfg), derive_seed(seed, "device-stub"),
            [this](netsim::Packet p) { gateway_.from_device(std::move(p)); }} {
  gateway_.attach_device(internal_ip, this);
}

std::uint16_t Device::alloc_port() {
  for (int i = 0; i < 10'000; ++i) {
    const std::uint16_t candidate = next_port_;
    next_port_ = next_port_ >= 19'999 ? std::uint16_t{10'000}
                                      : static_cast<std::uint16_t>(next_port_ + 1);
    if (!tcp_.contains(candidate)) return candidate;
  }
  throw std::runtime_error{"Device: out of client ports"};
}

void Device::open_tcp(Ipv4Addr dst, std::uint16_t dst_port, netsim::TransferIntent intent,
                      ConnDone done) {
  if (truth_) ++truth_->no_dns_conns;  // public entry = address known a priori
  intent.true_class = netsim::TrueClass::kNoDns;
  open_tcp_impl(dst, dst_port, intent, std::move(done));
}

void Device::open_tcp_impl(Ipv4Addr dst, std::uint16_t dst_port, netsim::TransferIntent intent,
                           ConnDone done) {
  const std::uint16_t sport = alloc_port();
  ClientConn conn;
  conn.dst = dst;
  conn.dst_port = dst_port;
  conn.intent = intent;
  conn.done = std::move(done);
  tcp_.try_emplace(sport, std::move(conn));
  ++tcp_opened_;
  send_syn(sport);
  arm_syn_timer(sport, 1);
}

void Device::send_syn(std::uint16_t sport) {
  const auto it = tcp_.find(sport);
  if (it == tcp_.end()) return;
  netsim::Packet syn;
  syn.src_ip = ip_;
  syn.dst_ip = it->second.dst;
  syn.src_port = sport;
  syn.dst_port = it->second.dst_port;
  syn.proto = Proto::kTcp;
  syn.tcp = netsim::TcpFlags{.syn = true};
  syn.intent = it->second.intent;
  gateway_.from_device(std::move(syn));
}

SimDuration Device::syn_timeout(int attempt) const {
  if (syn_backoff_ == 1.0) return kSynTimeout;
  double scale = 1.0;
  for (int i = 1; i < attempt; ++i) scale *= syn_backoff_;
  return SimDuration::us(
      static_cast<std::int64_t>(static_cast<double>(kSynTimeout.count_us()) * scale));
}

void Device::arm_syn_timer(std::uint16_t sport, int expected_attempts) {
  sim_.after(syn_timeout(expected_attempts), [this, sport, expected_attempts]() {
    const auto it = tcp_.find(sport);
    if (it == tcp_.end() || it->second.state != TcpState::kSynSent ||
        it->second.syn_attempts != expected_attempts) {
      return;
    }
    if (it->second.syn_attempts >= kMaxSynAttempts) {
      ++tcp_failed_;
      if (it->second.done) it->second.done(false);
      tcp_.erase(sport);
      return;
    }
    ++it->second.syn_attempts;
    send_syn(sport);
    arm_syn_timer(sport, it->second.syn_attempts);
  });
}

void Device::send_udp(Ipv4Addr dst, std::uint16_t dst_port, std::uint16_t src_port,
                      std::uint64_t payload, std::optional<netsim::TransferIntent> intent) {
  if (truth_ && intent) ++truth_->no_dns_conns;  // intent-bearing datagram opens a flow
  if (intent) intent->true_class = netsim::TrueClass::kNoDns;
  netsim::Packet p;
  p.src_ip = ip_;
  p.dst_ip = dst;
  p.src_port = src_port;
  p.dst_port = dst_port;
  p.proto = Proto::kUdp;
  p.payload_bytes = payload;
  p.intent = intent;
  gateway_.from_device(std::move(p));
}

void Device::receive(const netsim::Packet& p) {
  if (p.proto == Proto::kUdp) {
    if (p.src_port == 53 || p.src_port == 853) stub_.on_response(p);
    return;  // other inbound UDP (P2P/stream payloads) needs no client action
  }
  if (p.src_port == 53) {  // DNS truncation fallback runs over TCP
    stub_.on_tcp(p);
    return;
  }
  // Encrypted DNS channels (DoT/DoH). Port 443 is ambiguous — ordinary
  // web responses come from it too — so the stub's channel ports (20000+,
  // disjoint from client ports 10000..19999) are the demux key.
  if ((p.src_port == 853 || p.src_port == 443) && stub_.owns_secure_port(p.dst_port)) {
    stub_.on_secure(p);
    return;
  }
  const auto it = tcp_.find(p.dst_port);
  if (it == tcp_.end()) {
    // No such connection (late SYN-ACK after give-up): reset.
    if (!p.tcp.rst) {
      netsim::Packet rst;
      rst.src_ip = ip_;
      rst.dst_ip = p.src_ip;
      rst.src_port = p.dst_port;
      rst.dst_port = p.src_port;
      rst.proto = Proto::kTcp;
      rst.tcp = netsim::TcpFlags{.rst = true};
      gateway_.from_device(std::move(rst));
    }
    return;
  }
  ClientConn& conn = it->second;
  if (p.tcp.rst) {
    if (conn.state == TcpState::kSynSent) {
      ++tcp_failed_;
      if (conn.done) conn.done(false);
    }
    tcp_.erase(p.dst_port);
    return;
  }
  if (conn.state == TcpState::kSynSent && p.tcp.syn && p.tcp.ack) {
    conn.state = TcpState::kEstablished;
    // Send the request; the farm animates the rest.
    netsim::Packet req;
    req.src_ip = ip_;
    req.dst_ip = conn.dst;
    req.src_port = p.dst_port;
    req.dst_port = conn.dst_port;
    req.proto = Proto::kTcp;
    req.tcp = netsim::TcpFlags{.ack = true};
    req.payload_bytes = conn.intent.request_bytes;
    gateway_.from_device(std::move(req));
    if (conn.done) conn.done(true);
    return;
  }
  if (p.tcp.fin) {
    // Server closed: acknowledge with our FIN half and forget.
    netsim::Packet fin;
    fin.src_ip = ip_;
    fin.dst_ip = conn.dst;
    fin.src_port = p.dst_port;
    fin.dst_port = conn.dst_port;
    fin.proto = Proto::kTcp;
    fin.tcp = netsim::TcpFlags{.ack = true, .fin = true};
    gateway_.from_device(std::move(fin));
    tcp_.erase(p.dst_port);
    return;
  }
  // Plain data segments need no client response in this model.
}

void Device::fetch(const dns::DomainName& name, std::uint16_t dst_port,
                   netsim::TransferIntent intent, std::function<void(const FetchResult&)> cb,
                   std::optional<SimDuration> connect_delay) {
  if (truth_) ++truth_->fetches;
  stub_.resolve(name, [this, dst_port, intent, cb = std::move(cb), connect_delay](
                          const resolver::ResolveResult& dns_res) {
    if (truth_ && dns_res.success) {
      if (dns_res.from_cache) {
        ++truth_->fetch_cache_hits;
        if (dns_res.used_expired) ++truth_->fetch_cache_expired;
        if (dns_res.origin == dns::CacheOrigin::kPushed) ++truth_->fetch_pushed_hits;
      } else {
        ++truth_->fetch_blocked;
      }
    }
    if (!dns_res.success || dns_res.addrs.empty()) {
      if (cb) cb(FetchResult{false, dns_res});
      return;
    }
    // Tag the connection's ground-truth class (per the vantage-point
    // rule the monitor never reads this; TruthTap collects it).
    netsim::TransferIntent tagged = intent;
    if (dns_res.from_cache) {
      switch (dns_res.origin) {
        case dns::CacheOrigin::kPushed:
          tagged.true_class = netsim::TrueClass::kPushed;
          break;
        case dns::CacheOrigin::kSpeculative:
          // First use of a prefetched entry is the paper's P class;
          // re-use afterwards is indistinguishable from LC truth-wise.
          tagged.true_class = dns_res.first_use ? netsim::TrueClass::kPrefetched
                                                : netsim::TrueClass::kLocalCache;
          break;
        case dns::CacheOrigin::kQuery:
          tagged.true_class = netsim::TrueClass::kLocalCache;
          break;
      }
    } else {
      tagged.true_class = dns_res.upstream_cache_hit ? netsim::TrueClass::kSharedCache
                                                     : netsim::TrueClass::kRequired;
    }
    // Application think time between learning the address and connecting:
    // fractions of a millisecond to a few milliseconds (socket setup,
    // script execution). This gap is what the blocked region of Fig 1
    // is made of.
    const SimDuration delay =
        connect_delay.value_or(SimDuration::from_ms(1.0 + rng_.exponential(3.5)));
    const Ipv4Addr target = dns_res.addrs.front();
    sim_.after(delay,
               [this, target, dst_port, tagged, dns_res, cb = std::move(cb)]() {
                 open_tcp_impl(target, dst_port, tagged, [dns_res, cb](bool ok) {
                   if (cb) cb(FetchResult{ok, dns_res});
                 });
               });
  });
}

void Device::prefetch(const dns::DomainName& name) {
  if (truth_) ++truth_->prefetches;
  stub_.resolve(name, [](const resolver::ResolveResult&) {}, /*speculative=*/true);
}

}  // namespace dnsctx::traffic
