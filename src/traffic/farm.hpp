// dnsctx — the generic remote-server population ("the internet").
//
// One Host instance terminates every address that is not a resolver or
// another registered endpoint. Client packets carry a TransferIntent
// (sim-internal metadata, invisible to the monitor) telling the farm how
// to animate the server side: response size, response timing, and
// connection close. Dead addresses (retired NTP servers and the like,
// §5.1) never answer, yielding Bro "S0" attempts; reject addresses
// answer SYNs with RST.
#pragma once

#include <cstdint>

#include "netsim/network.hpp"
#include "util/flat_map.hpp"

namespace dnsctx::traffic {

class ServerFarm : public netsim::Host {
 public:
  ServerFarm(netsim::Simulator& sim, netsim::Network& net, std::uint64_t seed);

  /// Addresses that silently drop everything (hard-coded dead services).
  void add_dead_ip(Ipv4Addr addr) { dead_.insert(addr); }
  /// Addresses that actively refuse TCP.
  void add_reject_ip(Ipv4Addr addr) { reject_.insert(addr); }

  void receive(const netsim::Packet& p) override;

  [[nodiscard]] std::uint64_t tcp_conns_served() const { return tcp_served_; }
  [[nodiscard]] std::uint64_t udp_flows_served() const { return udp_served_; }

 private:
  void handle_tcp(const netsim::Packet& p);
  void handle_udp(const netsim::Packet& p);
  /// Reply to the request identified by `req_tuple` (the response swaps
  /// the endpoints). Takes the 16-byte tuple, not the packet, so the
  /// deferred-response closures fit InlineAction's inline buffer.
  void send_to_client(const FiveTuple& req_tuple, std::uint64_t payload,
                      netsim::TcpFlags flags);

  netsim::Simulator& sim_;
  netsim::Network& net_;
  Rng rng_;
  util::FlatSet<Ipv4Addr> dead_;
  util::FlatSet<Ipv4Addr> reject_;

  struct ServerConn {
    netsim::TransferIntent intent;
    bool got_request = false;
    bool fin_sent = false;
  };
  /// Keyed by the client-side tuple (as carried on inbound packets).
  /// Open-addressing: one find per inbound packet, no per-node allocs.
  util::FlatMap<FiveTuple, ServerConn, FiveTupleHash> conns_;
  std::uint64_t tcp_served_ = 0;
  std::uint64_t udp_served_ = 0;
};

}  // namespace dnsctx::traffic
