#include "traffic/webmodel.hpp"

#include <stdexcept>

namespace dnsctx::traffic {

using resolver::NameId;
using resolver::ServiceClass;

WebModel::WebModel(const resolver::ZoneDb& zones, std::uint64_t seed,
                   const WebFanout& fanout)
    : zones_{zones} {
  if (fanout.cdn_min > fanout.cdn_max || fanout.ad_min > fanout.ad_max ||
      fanout.tracker_min > fanout.tracker_max || fanout.api_min > fanout.api_max ||
      fanout.links_min > fanout.links_max) {
    throw std::invalid_argument{"WebModel: fanout min exceeds max"};
  }
  Rng rng{derive_seed(seed, "webmodel")};
  // Inclusive-range draw. With the default fanout each call collapses to
  // the historical literal (e.g. cdn: 2 + bounded(4)), keeping the RNG
  // stream — and therefore every golden output — byte-identical.
  auto draw = [&rng](std::size_t lo, std::size_t hi) {
    return lo + rng.bounded(hi - lo + 1);
  };
  const auto& webs = zones.ids_of(ServiceClass::kWebOrigin);
  const auto& cdns = zones.ids_of(ServiceClass::kCdnAsset);
  const auto& ads = zones.ids_of(ServiceClass::kAdNetwork);
  const auto& trackers = zones.ids_of(ServiceClass::kTracker);
  const auto& apis = zones.ids_of(ServiceClass::kApi);

  // Popularity-skewed samplers: popular infrastructure is embedded by
  // more sites (one tag manager is everywhere, most are niche).
  const ZipfSampler cdn_pick{std::max<std::size_t>(cdns.size(), 1), 0.8};
  const ZipfSampler ad_pick{std::max<std::size_t>(ads.size(), 1), 0.8};
  const ZipfSampler tracker_pick{std::max<std::size_t>(trackers.size(), 1), 0.8};
  const ZipfSampler api_pick{std::max<std::size_t>(apis.size(), 1), 0.8};

  origin_to_profile_.assign(zones.size(), 0);
  profiles_.reserve(webs.size());
  for (const NameId origin : webs) {
    PageProfile prof;
    prof.origin = origin;
    auto add_from = [&](const std::vector<NameId>& pool, const ZipfSampler& pick,
                        std::size_t count) {
      for (std::size_t i = 0; i < count && !pool.empty(); ++i) {
        const NameId candidate = pool[pick.sample(rng)];
        bool dup = false;
        for (const NameId existing : prof.asset_hosts) dup = dup || existing == candidate;
        if (!dup) prof.asset_hosts.push_back(candidate);
      }
    };
    add_from(cdns, cdn_pick, draw(fanout.cdn_min, fanout.cdn_max));
    add_from(ads, ad_pick, draw(fanout.ad_min, fanout.ad_max));
    add_from(trackers, tracker_pick, draw(fanout.tracker_min, fanout.tracker_max));
    add_from(apis, api_pick, draw(fanout.api_min, fanout.api_max));

    const std::size_t n_links = draw(fanout.links_min, fanout.links_max);
    for (std::size_t i = 0; i < n_links; ++i) {
      // Half the links follow global popularity, half are arbitrary —
      // pages link to the long tail too, which is what makes so many
      // speculative prefetch lookups go unused (§5.2's 37.8%).
      const NameId link = rng.bernoulli(0.4)
                              ? zones.sample_web_site(rng)
                              : webs[rng.bounded(webs.size())];
      if (link != origin) prof.links.push_back(link);
    }
    origin_to_profile_[origin] = static_cast<std::uint32_t>(profiles_.size()) + 1;
    profiles_.push_back(std::move(prof));
  }
}

const PageProfile& WebModel::page(resolver::NameId origin) const {
  const std::uint32_t idx = origin_to_profile_.at(origin);
  if (idx == 0) throw std::invalid_argument{"WebModel::page: not a web origin"};
  return profiles_[idx - 1];
}

}  // namespace dnsctx::traffic
