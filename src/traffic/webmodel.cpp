#include "traffic/webmodel.hpp"

#include <stdexcept>

namespace dnsctx::traffic {

using resolver::NameId;
using resolver::ServiceClass;

WebModel::WebModel(const resolver::ZoneDb& zones, std::uint64_t seed) : zones_{zones} {
  Rng rng{derive_seed(seed, "webmodel")};
  const auto& webs = zones.ids_of(ServiceClass::kWebOrigin);
  const auto& cdns = zones.ids_of(ServiceClass::kCdnAsset);
  const auto& ads = zones.ids_of(ServiceClass::kAdNetwork);
  const auto& trackers = zones.ids_of(ServiceClass::kTracker);
  const auto& apis = zones.ids_of(ServiceClass::kApi);

  // Popularity-skewed samplers: popular infrastructure is embedded by
  // more sites (one tag manager is everywhere, most are niche).
  const ZipfSampler cdn_pick{std::max<std::size_t>(cdns.size(), 1), 0.8};
  const ZipfSampler ad_pick{std::max<std::size_t>(ads.size(), 1), 0.8};
  const ZipfSampler tracker_pick{std::max<std::size_t>(trackers.size(), 1), 0.8};
  const ZipfSampler api_pick{std::max<std::size_t>(apis.size(), 1), 0.8};

  origin_to_profile_.assign(zones.size(), 0);
  profiles_.reserve(webs.size());
  for (const NameId origin : webs) {
    PageProfile prof;
    prof.origin = origin;
    auto add_from = [&](const std::vector<NameId>& pool, const ZipfSampler& pick,
                        std::size_t count) {
      for (std::size_t i = 0; i < count && !pool.empty(); ++i) {
        const NameId candidate = pool[pick.sample(rng)];
        bool dup = false;
        for (const NameId existing : prof.asset_hosts) dup = dup || existing == candidate;
        if (!dup) prof.asset_hosts.push_back(candidate);
      }
    };
    add_from(cdns, cdn_pick, 2 + rng.bounded(4));       // 2–5 CDN hosts
    add_from(ads, ad_pick, 1 + rng.bounded(3));         // 1–3 ad networks
    add_from(trackers, tracker_pick, 1 + rng.bounded(2)); // 1–2 trackers
    add_from(apis, api_pick, rng.bounded(3));           // 0–2 APIs

    const std::size_t n_links = 4 + rng.bounded(7);     // 4–10 outbound links
    for (std::size_t i = 0; i < n_links; ++i) {
      // Half the links follow global popularity, half are arbitrary —
      // pages link to the long tail too, which is what makes so many
      // speculative prefetch lookups go unused (§5.2's 37.8%).
      const NameId link = rng.bernoulli(0.4)
                              ? zones.sample_web_site(rng)
                              : webs[rng.bounded(webs.size())];
      if (link != origin) prof.links.push_back(link);
    }
    origin_to_profile_[origin] = static_cast<std::uint32_t>(profiles_.size()) + 1;
    profiles_.push_back(std::move(prof));
  }
}

const PageProfile& WebModel::page(resolver::NameId origin) const {
  const std::uint32_t idx = origin_to_profile_.at(origin);
  if (idx == 0) throw std::invalid_argument{"WebModel::page: not a web origin"};
  return profiles_[idx - 1];
}

}  // namespace dnsctx::traffic
