// dnsctx — an end device inside a house (laptop, phone, TV, IoT box).
//
// The device terminates its own transport: a client-side TCP state
// machine (SYN retransmits, request/response, FIN teardown), one-shot
// and streaming UDP flows, and a stub resolver whose cache is exactly
// the "local cache" the paper's LC class measures. Apps drive devices
// through resolve/fetch; everything leaves through the house NAT.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "dns/name.hpp"
#include "netsim/nat.hpp"
#include "resolver/stub.hpp"
#include "util/flat_map.hpp"

namespace dnsctx::traffic {

/// Outcome handed to fetch() callbacks.
struct FetchResult {
  bool connected = false;
  resolver::ResolveResult dns;  ///< how the name resolved (or failed)
};

/// Ground truth the passive monitor cannot see. Devices increment these
/// as they act; tests validate the paper's inference heuristics against
/// them.
struct GroundTruth {
  std::uint64_t fetches = 0;             ///< name-driven connection attempts
  std::uint64_t fetch_cache_hits = 0;    ///< served by the device cache
  std::uint64_t fetch_cache_expired = 0; ///< ... using a TTL-expired entry
  std::uint64_t fetch_blocked = 0;       ///< had to wait for a network lookup
  std::uint64_t prefetches = 0;          ///< speculative resolutions
  std::uint64_t no_dns_conns = 0;        ///< flows opened without any lookup
  std::uint64_t fetch_pushed_hits = 0;   ///< served by a server-pushed record
};

class Device : public netsim::Host {
 public:
  Device(netsim::Simulator& sim, netsim::HouseGateway& gateway, Ipv4Addr internal_ip,
         resolver::StubConfig stub_cfg, std::uint64_t seed);

  // Host: inbound demux (UDP/53 → stub, TCP → client connections).
  void receive(const netsim::Packet& p) override;

  using ConnDone = std::function<void(bool established)>;

  /// Open a TCP connection to an address; the TransferIntent scripts the
  /// far side. `done` fires on establish (true) or give-up/reject.
  void open_tcp(Ipv4Addr dst, std::uint16_t dst_port, netsim::TransferIntent intent,
                ConnDone done = {});

  /// Send a UDP datagram; with an intent the farm animates a response
  /// flow, without one it is a fire-and-forget beacon.
  void send_udp(Ipv4Addr dst, std::uint16_t dst_port, std::uint16_t src_port,
                std::uint64_t payload, std::optional<netsim::TransferIntent> intent = {});

  /// Resolve a hostname and, on success, connect to the first returned
  /// address. By default the connection follows after a small
  /// application think delay (the delay that produces the paper's Fig 1
  /// "blocked" region); pass `connect_delay` for resolve-early /
  /// connect-later patterns (app wake-ups, speculative resolution).
  void fetch(const dns::DomainName& name, std::uint16_t dst_port,
             netsim::TransferIntent intent, std::function<void(const FetchResult&)> cb = {},
             std::optional<SimDuration> connect_delay = {});

  /// Resolve without using the result — browser-style prefetch.
  void prefetch(const dns::DomainName& name);

  /// Attach shared ground-truth counters (optional; non-owning).
  void set_ground_truth(GroundTruth* truth) { truth_ = truth; }

  /// Scale successive SYN retransmission timeouts (real TCP doubles;
  /// 1.0 keeps the historical fixed 3 s timer, byte-identical).
  void set_syn_backoff(double factor) { syn_backoff_ = factor; }

  [[nodiscard]] resolver::StubResolver& stub() { return stub_; }
  [[nodiscard]] netsim::Simulator& sim() { return sim_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] Ipv4Addr ip() const { return ip_; }
  [[nodiscard]] std::uint64_t tcp_opened() const { return tcp_opened_; }
  [[nodiscard]] std::uint64_t tcp_failed() const { return tcp_failed_; }

 private:
  enum class TcpState { kSynSent, kEstablished };
  struct ClientConn {
    Ipv4Addr dst;
    std::uint16_t dst_port = 0;
    TcpState state = TcpState::kSynSent;
    netsim::TransferIntent intent;
    ConnDone done;
    int syn_attempts = 1;
  };

  void send_syn(std::uint16_t sport);
  void arm_syn_timer(std::uint16_t sport, int expected_attempts);
  [[nodiscard]] SimDuration syn_timeout(int attempt) const;
  void open_tcp_impl(Ipv4Addr dst, std::uint16_t dst_port, netsim::TransferIntent intent,
                     ConnDone done);
  [[nodiscard]] std::uint16_t alloc_port();

  GroundTruth* truth_ = nullptr;

  netsim::Simulator& sim_;
  netsim::HouseGateway& gateway_;
  Ipv4Addr ip_;
  Rng rng_;
  resolver::StubResolver stub_;
  util::FlatMap<std::uint16_t, ClientConn> tcp_;
  std::uint16_t next_port_ = 10'000;
  std::uint64_t tcp_opened_ = 0;
  std::uint64_t tcp_failed_ = 0;
  double syn_backoff_ = 1.0;

  static constexpr int kMaxSynAttempts = 3;
  static constexpr SimDuration kSynTimeout = SimDuration::sec(3);
};

}  // namespace dnsctx::traffic
