// dnsctx — static web-page structure on top of the ZoneDb.
//
// Each web site gets a deterministic page profile: which shared asset
// hosts (CDN, ads, trackers, APIs) its pages embed, and which other
// sites it links to. Embedded assets drive multi-host page loads (the
// bulk of residential DNS traffic); links drive browser prefetching and
// cross-site navigation (§5.2's P class).
#pragma once

#include <cstdint>
#include <vector>

#include "resolver/zonedb.hpp"
#include "traffic/tuning.hpp"

namespace dnsctx::traffic {

struct PageProfile {
  resolver::NameId origin = 0;
  std::vector<resolver::NameId> asset_hosts;  ///< embedded third-party hosts
  std::vector<resolver::NameId> links;        ///< linked sites (prefetch targets)
};

class WebModel {
 public:
  /// The default fanout reproduces the pre-pack literals (2–5 CDN,
  /// 1–3 ads, 1–2 trackers, 0–2 APIs, 4–10 links) draw for draw.
  WebModel(const resolver::ZoneDb& zones, std::uint64_t seed,
           const WebFanout& fanout = {});

  /// Profile for a web-site NameId (must come from the kWebOrigin set).
  [[nodiscard]] const PageProfile& page(resolver::NameId origin) const;

 private:
  const resolver::ZoneDb& zones_;
  std::vector<PageProfile> profiles_;                 // indexed by position in web set
  std::vector<std::uint32_t> origin_to_profile_;      // NameId → profile index + 1 (0 = none)
};

}  // namespace dnsctx::traffic
