#include "traffic/apps.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <string_view>

namespace dnsctx::traffic {

using resolver::NameId;
using resolver::ServiceClass;

namespace {

/// Effective delivery rates in bytes/sec before the edge-quality factor.
[[nodiscard]] double base_rate_bps(ServiceClass s) {
  switch (s) {
    case ServiceClass::kCdnAsset: return 5.0e6;   // ~40 Mbit/s from a near edge
    case ServiceClass::kVideo: return 0.6e6;      // rate-limited ABR streaming (~5 Mbit/s)
    case ServiceClass::kWebOrigin: return 1.5e6;  // origin servers, slow start
    default: return 1.0e6;
  }
}

}  // namespace

netsim::TransferIntent sample_intent(ServiceClass service, double tput_factor, Rng& rng) {
  netsim::TransferIntent intent;
  const double rate = base_rate_bps(service) * std::max(tput_factor, 0.05);
  auto active_for = [&](double bytes, double server_delay_sec) {
    return server_delay_sec + bytes / rate;
  };
  switch (service) {
    case ServiceClass::kWebOrigin: {
      intent.request_bytes = 300 + static_cast<std::uint64_t>(rng.bounded(700));
      intent.response_bytes = static_cast<std::uint64_t>(rng.lognormal(10.4, 1.1));  // ~33 KB
      const double sd = rng.uniform(0.03, 0.2);
      intent.server_delay = SimDuration::from_sec(sd);
      double total = active_for(static_cast<double>(intent.response_bytes), sd);
      if (rng.bernoulli(0.85)) total += rng.uniform(20.0, 240.0);  // keep-alive idle
      intent.transfer_time = SimDuration::from_sec(total);
      break;
    }
    case ServiceClass::kCdnAsset: {
      intent.request_bytes = 250 + static_cast<std::uint64_t>(rng.bounded(400));
      intent.response_bytes = static_cast<std::uint64_t>(rng.lognormal(11.3, 1.4));  // ~80 KB
      const double sd = rng.uniform(0.005, 0.05);
      intent.server_delay = SimDuration::from_sec(sd);
      double total = active_for(static_cast<double>(intent.response_bytes), sd);
      if (rng.bernoulli(0.8)) total += rng.uniform(15.0, 180.0);
      intent.transfer_time = SimDuration::from_sec(total);
      break;
    }
    case ServiceClass::kAdNetwork: {
      intent.request_bytes = 400 + static_cast<std::uint64_t>(rng.bounded(800));
      intent.response_bytes = static_cast<std::uint64_t>(rng.lognormal(8.9, 1.0));  // ~7 KB
      const double sd = rng.uniform(0.02, 0.15);  // auction latency
      intent.server_delay = SimDuration::from_sec(sd);
      intent.transfer_time =
          SimDuration::from_sec(active_for(static_cast<double>(intent.response_bytes), sd) +
                                (rng.bernoulli(0.7) ? rng.uniform(10.0, 90.0) : 0.0));
      break;
    }
    case ServiceClass::kTracker: {
      intent.request_bytes = 300 + static_cast<std::uint64_t>(rng.bounded(1'200));
      intent.response_bytes = 40 + static_cast<std::uint64_t>(rng.bounded(2'000));
      const double sd = rng.uniform(0.01, 0.08);
      intent.server_delay = SimDuration::from_sec(sd);
      intent.transfer_time =
          SimDuration::from_sec(active_for(static_cast<double>(intent.response_bytes), sd) +
                                (rng.bernoulli(0.65) ? rng.uniform(10.0, 90.0) : 0.0));
      break;
    }
    case ServiceClass::kApi: {
      intent.request_bytes = 250 + static_cast<std::uint64_t>(rng.bounded(1'500));
      intent.response_bytes = static_cast<std::uint64_t>(rng.lognormal(8.2, 1.2));  // ~3.6 KB
      const double sd = rng.uniform(0.02, 0.2);
      intent.server_delay = SimDuration::from_sec(sd);
      double total = active_for(static_cast<double>(intent.response_bytes), sd);
      if (rng.bernoulli(0.7)) total += rng.uniform(15.0, 300.0);  // long-poll / reuse idle
      intent.transfer_time = SimDuration::from_sec(total);
      break;
    }
    case ServiceClass::kVideo: {
      intent.request_bytes = 400;
      const double minutes = rng.uniform(1.5, 8.0);
      const double bytes = rate * minutes * 60.0;
      intent.response_bytes = static_cast<std::uint64_t>(bytes);
      intent.server_delay = SimDuration::from_sec(rng.uniform(0.05, 0.3));
      intent.transfer_time = SimDuration::from_sec(minutes * 60.0);
      break;
    }
    case ServiceClass::kConnCheck: {
      // A 204-No-Content probe: almost no bytes, but the socket lingers a
      // few seconds — which is exactly why these connections drag down
      // Google's throughput distribution in Fig 3 (bottom).
      intent.request_bytes = 180;
      intent.response_bytes = 120;
      intent.server_delay = SimDuration::from_sec(rng.uniform(0.04, 0.15));
      intent.transfer_time = intent.server_delay + SimDuration::from_sec(rng.uniform(1.0, 8.0));
      break;
    }
    case ServiceClass::kOther: {
      intent.request_bytes = 200 + static_cast<std::uint64_t>(rng.bounded(2'000));
      intent.response_bytes = static_cast<std::uint64_t>(rng.lognormal(8.5, 1.5));
      const double sd = rng.uniform(0.02, 0.2);
      intent.server_delay = SimDuration::from_sec(sd);
      intent.transfer_time =
          SimDuration::from_sec(active_for(static_cast<double>(intent.response_bytes), sd));
      break;
    }
  }
  return intent;
}

void App::schedule_next(double mean_gap_sec, std::function<void()> fn) {
  const double factor = std::max(world_.diurnal.factor(device_.sim().now()), 0.05);
  const double gap = rng_.exponential(mean_gap_sec / factor);
  device_.sim().after(SimDuration::from_sec(gap), std::move(fn));
}

// ------------------------------------------------------------- BrowserApp

void BrowserApp::start() {
  schedule_next(cfg_.session_gap_mean_sec * 0.5, [this]() { begin_session(); });
}

void BrowserApp::begin_session() {
  session_hosts_.clear();
  prefetched_.clear();
  if (rng_.bernoulli(cfg_.junk_probe_prob)) {
    // Chromium probes three random hostnames on startup to detect DNS
    // interception; every one is an NXDOMAIN at the resolver.
    for (int i = 0; i < 3; ++i) {
      std::string junk;
      for (int c = 0; c < 10; ++c) {
        junk.push_back(static_cast<char>('a' + rng_.bounded(26)));
      }
      device_.stub().resolve(dns::DomainName::must(junk),
                             [](const resolver::ResolveResult&) {});
    }
  }
  const int pages =
      1 + static_cast<int>(rng_.exponential(std::max(cfg_.pages_per_session_mean - 1.0, 0.1)));
  NameId site;
  if (cfg_.household_sites && !cfg_.household_sites->empty() &&
      rng_.bernoulli(cfg_.household_site_prob)) {
    site = (*cfg_.household_sites)[rng_.bounded(cfg_.household_sites->size())];
  } else {
    site = world_.zones.sample_web_site(rng_);
  }
  visit_page(site, pages);
  schedule_next(cfg_.session_gap_mean_sec, [this]() { begin_session(); });
}

void BrowserApp::visit_page(NameId site, int pages_left) {
  const auto& origin_rec = world_.zones.record(site);

  const bool origin_alive =
      std::find(session_hosts_.begin(), session_hosts_.end(), site) != session_hosts_.end();
  if (!origin_alive || !rng_.bernoulli(cfg_.reuse_conn_prob)) {
    const double factor = world_.zones.throughput_factor(
        origin_rec.addrs.empty() ? Ipv4Addr{} : origin_rec.addrs.front());
    device_.fetch(origin_rec.name, 443, sample_intent(ServiceClass::kWebOrigin, factor, rng_));
    session_hosts_.push_back(site);
    // Browsers open extra parallel connections: some immediately (they
    // land inside the blocked window as repeat users of the same fresh
    // lookup — the non-first-use mass below Fig 1's knee), some once the
    // first response arrives (which classifies as LC).
    if (rng_.bernoulli(cfg_.extra_origin_conn_prob)) {
      const SimDuration extra_delay =
          rng_.bernoulli(0.45) ? SimDuration::from_ms(2.0 + rng_.exponential(8.0))
                               : SimDuration::from_ms(rng_.uniform(150.0, 600.0));
      device_.fetch(origin_rec.name, 443,
                    sample_intent(ServiceClass::kWebOrigin, factor, rng_), {}, extra_delay);
    }
  }

  // Assets start once the HTML begins arriving and the parser finds them.
  const double parse_delay = rng_.uniform(0.15, 0.8);
  device_.sim().after(SimDuration::from_sec(parse_delay), [this, site]() {
    const PageProfile& prof = world_.web.page(site);
    // Resolver-less push rides the HTML itself: records land in the
    // device cache before the parser asks for any asset.
    if (cfg_.server_push) push_assets(prof);
    load_assets(prof);
  });
  device_.sim().after(SimDuration::from_sec(parse_delay + rng_.uniform(0.2, 1.0)),
                      [this, site]() { maybe_prefetch_links(world_.web.page(site)); });

  if (pages_left <= 1) return;
  // Dwell, then either follow a link (possibly prefetched) or stay.
  double dwell = rng_.lognormal(cfg_.think_mu, cfg_.think_sigma);
  if (rng_.bernoulli(0.22)) dwell *= 12.0;  // parked tab, clicked much later
  device_.sim().after(SimDuration::from_sec(dwell), [this, site, pages_left]() {
    const PageProfile& cur = world_.web.page(site);
    NameId next_site = site;
    if (!cur.links.empty() && rng_.bernoulli(cfg_.follow_link_prob)) {
      // Prefer something prefetched earlier this session — users come
      // back to links they noticed pages (minutes) ago, which is what
      // stretches the paper's P-class lookup→use gap to minutes.
      if (!prefetched_.empty() && rng_.bernoulli(0.8)) {
        next_site = prefetched_[rng_.bounded(prefetched_.size())];
      } else {
        next_site = cur.links[rng_.bounded(cur.links.size())];
      }
    }
    visit_page(next_site, pages_left - 1);
  });
}

void BrowserApp::load_assets(const PageProfile& prof) {
  double stagger = 0.0;
  for (const NameId asset : prof.asset_hosts) {
    if (!rng_.bernoulli(cfg_.asset_fetch_prob)) continue;
    const bool alive =
        std::find(session_hosts_.begin(), session_hosts_.end(), asset) != session_hosts_.end();
    if (alive && rng_.bernoulli(cfg_.reuse_conn_prob)) continue;  // keep-alive reuse
    session_hosts_.push_back(asset);
    stagger += rng_.uniform(0.005, 0.12);
    device_.sim().after(SimDuration::from_sec(stagger), [this, asset]() {
      const auto& rec = world_.zones.record(asset);
      const double factor =
          world_.zones.throughput_factor(rec.addrs.empty() ? Ipv4Addr{} : rec.addrs.front());
      device_.fetch(rec.name, 443, sample_intent(rec.service, factor, rng_));
      // Browsers sometimes open a second immediate connection to the
      // same asset host (HTTP/1.1 parallelism) — repeat users of the
      // same fresh lookup inside Fig 1's blocked region.
      if (rng_.bernoulli(0.12)) {
        device_.fetch(rec.name, 443, sample_intent(rec.service, factor, rng_), {},
                      SimDuration::from_ms(5.0 + rng_.exponential(10.0)));
      }
    });
  }
}

void BrowserApp::push_assets(const PageProfile& prof) {
  for (const NameId asset : prof.asset_hosts) {
    const auto& rec = world_.zones.record(asset);
    if (rec.addrs.empty()) continue;
    std::vector<dns::ResourceRecord> answers;
    answers.reserve(rec.addrs.size());
    for (const auto addr : rec.addrs) {
      answers.push_back(
          dns::ResourceRecord{rec.name, dns::RrType::kA, dns::RrClass::kIn, rec.ttl_sec, addr});
    }
    device_.stub().insert_pushed(rec.name, std::move(answers), device_.sim().now());
  }
}

void BrowserApp::maybe_prefetch_links(const PageProfile& prof) {
  std::size_t prefetched = 0;
  for (const NameId link : prof.links) {
    if (prefetched >= cfg_.prefetch_links_max) break;
    if (!rng_.bernoulli(cfg_.prefetch_prob)) continue;
    device_.prefetch(world_.zones.record(link).name);
    prefetched_.push_back(link);
    ++prefetched;
  }
}

// --------------------------------------------------------------- VideoApp

void VideoApp::start() {
  schedule_next(cfg_.session_gap_mean_sec * 0.5, [this]() { begin_session(); });
}

void VideoApp::begin_session() {
  const NameId site = world_.zones.sample_video_site(rng_);
  const double minutes = std::max(2.0, rng_.exponential(cfg_.watch_minutes_mean));
  next_segment(site, minutes);
  schedule_next(cfg_.session_gap_mean_sec, [this]() { begin_session(); });
}

void VideoApp::next_segment(NameId site, double minutes_left) {
  if (minutes_left <= 0.0) return;
  const auto& rec = world_.zones.record(site);
  const double factor =
      world_.zones.throughput_factor(rec.addrs.empty() ? Ipv4Addr{} : rec.addrs.front());
  // Each segment re-resolves (players routinely do) — short video TTLs
  // mean this often crosses an expiry boundary.
  device_.fetch(rec.name, 443, sample_intent(ServiceClass::kVideo, factor, rng_));
  const double seg_minutes = std::max(0.5, rng_.exponential(cfg_.segment_minutes_mean));
  device_.sim().after(SimDuration::from_sec(seg_minutes * 60.0), [this, site, minutes_left,
                                                                  seg_minutes]() {
    next_segment(site, minutes_left - seg_minutes);
  });
}

// ----------------------------------------------------------- BackgroundApp

BackgroundApp::BackgroundApp(Device& device, const AppWorld& world, BackgroundConfig cfg,
                             std::uint64_t seed)
    : App{device, world, seed}, cfg_{cfg} {
  const auto& apis = world_.zones.ids_of(ServiceClass::kApi);
  const ZipfSampler pick{std::max<std::size_t>(apis.size(), 1), 0.8};
  const std::size_t n = cfg_.services_min +
                        rng_.bounded(cfg_.services_max - cfg_.services_min + 1);
  for (std::size_t i = 0; i < n && !apis.empty(); ++i) {
    services_.push_back(Service{apis[pick.sample(rng_)],
                                rng_.uniform(cfg_.period_min_sec, cfg_.period_max_sec)});
  }
  if (cfg_.universal_services) {
    for (const NameId id : *cfg_.universal_services) {
      services_.push_back(Service{
          id, rng_.uniform(cfg_.universal_period_min_sec, cfg_.universal_period_max_sec)});
    }
  }
}

void BackgroundApp::start() {
  for (std::size_t i = 0; i < services_.size(); ++i) {
    device_.sim().after(SimDuration::from_sec(rng_.uniform(0.0, services_[i].period_sec)),
                        [this, i]() { poll(i); });
  }
}

void BackgroundApp::poll(std::size_t service_idx) {
  const Service& svc = services_[service_idx];
  const auto& rec = world_.zones.record(svc.name);
  std::optional<SimDuration> connect_delay;
  if (rng_.bernoulli(cfg_.deferred_connect_prob)) {
    connect_delay = SimDuration::from_sec(
        rng_.uniform(cfg_.deferred_delay_min_sec, cfg_.deferred_delay_max_sec));
  }
  device_.fetch(rec.name, 443, sample_intent(ServiceClass::kApi, 1.0, rng_), {},
                connect_delay);
  const double jittered = svc.period_sec * rng_.uniform(0.85, 1.15);
  device_.sim().after(SimDuration::from_sec(jittered),
                      [this, service_idx]() { poll(service_idx); });
}

// ------------------------------------------------------------ ConnCheckApp

void ConnCheckApp::start() {
  schedule_next(cfg_.period_mean_sec * 0.3, [this]() { check(); });
}

void ConnCheckApp::check() {
  const auto& rec = world_.zones.record(world_.zones.conn_check_id());
  device_.fetch(rec.name, 443, sample_intent(ServiceClass::kConnCheck, 1.0, rng_));
  schedule_next(cfg_.period_mean_sec, [this]() { check(); });
}

// ----------------------------------------------------------------- P2pApp

void P2pApp::start() {
  schedule_next(cfg_.churn_gap_mean_sec, [this]() { churn(); });
}

Ipv4Addr P2pApp::random_peer() {
  // Public-ish address; peers obtained from trackers/DHT, never from DNS.
  return Ipv4Addr{static_cast<std::uint8_t>(60 + rng_.bounded(120)),
                  static_cast<std::uint8_t>(rng_.bounded(256)),
                  static_cast<std::uint8_t>(rng_.bounded(256)),
                  static_cast<std::uint8_t>(1 + rng_.bounded(254))};
}

void P2pApp::churn() {
  const std::size_t peers = 1 + rng_.bounded(cfg_.peers_per_round_max);
  for (std::size_t i = 0; i < peers; ++i) contact_peer();
  schedule_next(cfg_.churn_gap_mean_sec, [this]() { churn(); });
}

void P2pApp::contact_peer() {
  const Ipv4Addr peer = random_peer();
  const auto peer_port = static_cast<std::uint16_t>(1'025 + rng_.bounded(60'000));
  if (rng_.bernoulli(cfg_.dead_peer_prob)) {
    // Stale DHT entry: a lone probe nobody answers (intent-less
    // datagrams get no reply from the departed peer's address).
    device_.send_udp(peer, peer_port, cfg_.local_port, 120 + rng_.bounded(400));
    return;
  }
  netsim::TransferIntent intent;
  intent.request_bytes = 300 + rng_.bounded(4'000);
  intent.response_bytes = static_cast<std::uint64_t>(rng_.pareto(1.15, 4'096, 4.0e7));
  intent.server_delay = SimDuration::from_ms(rng_.uniform(5, 120));
  intent.transfer_time =
      SimDuration::from_sec(std::max(15.0, rng_.exponential(cfg_.flow_minutes_mean * 60.0)));
  if (rng_.bernoulli(cfg_.tcp_peer_prob)) {
    device_.open_tcp(peer, peer_port, intent);
  } else {
    device_.send_udp(peer, peer_port, cfg_.local_port, intent.request_bytes, intent);
  }
}

// ----------------------------------------------------------------- IotApp

void IotApp::start() {
  if (cfg_.ntp) {
    device_.sim().after(SimDuration::from_sec(rng_.uniform(0.0, cfg_.ntp_period_sec)),
                        [this]() { ntp_tick(); });
  }
  if (cfg_.alarm) {
    device_.sim().after(SimDuration::from_sec(rng_.uniform(0.0, cfg_.alarm_period_sec)),
                        [this]() { alarm_tick(); });
  }
}

void IotApp::ntp_tick() {
  netsim::TransferIntent intent;
  intent.request_bytes = 48;
  intent.response_bytes = 48;
  intent.server_delay = SimDuration::from_ms(rng_.uniform(1, 10));
  intent.transfer_time = intent.server_delay;
  device_.send_udp(cfg_.ntp_server, 123, 123, 48, intent);
  device_.sim().after(SimDuration::from_sec(cfg_.ntp_period_sec * rng_.uniform(0.9, 1.1)),
                      [this]() { ntp_tick(); });
}

// ---------------------------------------------------------------- JunkApp

double JunkApp::gap_mean_sec() const {
  // Each storm issues 1..burst_max lookups (mean 1 + (burst_max-1)/2),
  // so the tick gap is stretched to keep queries_per_hour the per-hour
  // lookup rate, not the per-hour storm rate.
  const double mean_burst =
      1.0 + (static_cast<double>(std::max<std::size_t>(cfg_.burst_max, 1)) - 1.0) / 2.0;
  return 3'600.0 / cfg_.queries_per_hour * mean_burst;
}

void JunkApp::start() {
  if (cfg_.queries_per_hour <= 0.0) return;
  schedule_next(gap_mean_sec() * 0.5, [this]() { storm(); });
}

void JunkApp::storm() {
  // Names mimic the B-Root junk taxonomy: random typo-like labels, a
  // fraction carrying a leaked private suffix. All are NXDOMAIN at the
  // resolver (the ZoneDb only answers its generated population).
  static constexpr std::string_view kSuffixes[] = {".local", ".lan", ".home",
                                                   ".corp", ".internal"};
  static constexpr std::string_view kChars = "abcdefghijklmnopqrstuvwxyz0123456789";
  const std::size_t n = 1 + rng_.bounded(std::max<std::size_t>(cfg_.burst_max, 1));
  for (std::size_t i = 0; i < n; ++i) {
    std::string junk;
    junk.push_back(static_cast<char>('a' + rng_.bounded(26)));
    const std::size_t len = 5 + rng_.bounded(10);
    for (std::size_t c = 0; c < len; ++c) {
      junk.push_back(kChars[rng_.bounded(kChars.size())]);
    }
    if (rng_.bernoulli(cfg_.dotted_prob)) {
      junk.append(kSuffixes[rng_.bounded(std::size(kSuffixes))]);
    }
    device_.stub().resolve(dns::DomainName::must(junk),
                           [](const resolver::ResolveResult&) {});
  }
  schedule_next(gap_mean_sec(), [this]() { storm(); });
}

void IotApp::alarm_tick() {
  netsim::TransferIntent intent;
  intent.request_bytes = 500 + rng_.bounded(700);
  intent.response_bytes = 300 + rng_.bounded(500);
  intent.server_delay = SimDuration::from_ms(rng_.uniform(20, 90));
  intent.transfer_time = intent.server_delay + SimDuration::from_ms(rng_.uniform(50, 400));
  device_.open_tcp(cfg_.alarm_server, 443, intent);
  device_.sim().after(SimDuration::from_sec(cfg_.alarm_period_sec * rng_.uniform(0.9, 1.1)),
                      [this]() { alarm_tick(); });
}

}  // namespace dnsctx::traffic
