#include "traffic/farm.hpp"

#include <algorithm>

namespace dnsctx::traffic {

ServerFarm::ServerFarm(netsim::Simulator& sim, netsim::Network& net, std::uint64_t seed)
    : sim_{sim}, net_{net}, rng_{seed} {
  net_.set_default_host(this);
}

void ServerFarm::receive(const netsim::Packet& p) {
  if (dead_.contains(p.dst_ip)) return;
  if (p.proto == Proto::kTcp) {
    handle_tcp(p);
  } else {
    handle_udp(p);
  }
}

void ServerFarm::send_to_client(const FiveTuple& req_tuple, std::uint64_t payload,
                                netsim::TcpFlags flags) {
  netsim::Packet out;
  out.src_ip = req_tuple.resp_ip;
  out.dst_ip = req_tuple.orig_ip;
  out.src_port = req_tuple.resp_port;
  out.dst_port = req_tuple.orig_port;
  out.proto = req_tuple.proto;
  out.payload_bytes = payload;
  out.tcp = flags;
  net_.send(std::move(out));
}

void ServerFarm::handle_tcp(const netsim::Packet& p) {
  const FiveTuple key = p.tuple();
  if (p.tcp.syn && !p.tcp.ack) {
    if (reject_.contains(p.dst_ip)) {
      send_to_client(key, 0, netsim::TcpFlags{.rst = true});
      return;
    }
    ServerConn conn;
    conn.intent = p.intent.value_or(netsim::TransferIntent{});
    conns_[key] = conn;
    ++tcp_served_;
    send_to_client(key, 0, netsim::TcpFlags{.syn = true, .ack = true});
    return;
  }
  const auto it = conns_.find(key);
  if (it == conns_.end()) {
    // Stray segment for an unknown connection: RST, like a real stack.
    if (!p.tcp.rst) send_to_client(key, 0, netsim::TcpFlags{.rst = true});
    return;
  }
  ServerConn& conn = it->second;
  if (p.tcp.rst) {
    conns_.erase(key);
    return;
  }
  if (p.tcp.fin) {
    // Client-initiated close (abort or after our FIN): complete the
    // handshake if we have not closed yet, then forget.
    if (!conn.fin_sent) {
      send_to_client(key, 0, netsim::TcpFlags{.ack = true, .fin = true});
    }
    conns_.erase(key);
    return;
  }
  if (p.payload_bytes > 0 && !conn.got_request) {
    conn.got_request = true;
    const netsim::TransferIntent intent = conn.intent;
    // First response bytes after server think time; remaining bytes are
    // summarised into a final segment just before the server closes.
    const std::uint64_t head = std::min<std::uint64_t>(intent.response_bytes, 16'384);
    const std::uint64_t tail = intent.response_bytes - head;
    // Capture the 16-byte tuple, not the packet: both closures stay
    // within InlineAction's inline buffer (no per-response heap node).
    sim_.after(intent.server_delay, [this, key, head]() {
      send_to_client(key, head, netsim::TcpFlags{.ack = true});
    });
    const SimDuration close_at =
        std::max(intent.transfer_time, intent.server_delay + SimDuration::us(100));
    sim_.after(close_at, [this, key, tail]() {
      const auto conn_it = conns_.find(key);
      if (conn_it == conns_.end()) return;  // client already tore it down
      conn_it->second.fin_sent = true;
      send_to_client(key, tail, netsim::TcpFlags{.ack = true, .fin = true});
    });
  }
}

void ServerFarm::handle_udp(const netsim::Packet& p) {
  if (!p.intent) return;  // one-way datagram (gossip, beacons)
  ++udp_served_;
  const netsim::TransferIntent intent = *p.intent;
  const FiveTuple key = p.tuple();
  if (intent.transfer_time <= intent.server_delay) {
    const std::uint64_t bytes = intent.response_bytes;
    sim_.after(intent.server_delay,
               [this, key, bytes]() { send_to_client(key, bytes, {}); });
    return;
  }
  // Spread the response over the flow lifetime (streaming-ish).
  // Keep inter-packet gaps well under Bro's 60 s UDP timeout so one flow
  // is observed as one connection.
  const std::uint64_t packets =
      std::clamp<std::uint64_t>(static_cast<std::uint64_t>(intent.transfer_time.to_sec() / 20.0),
                                1, 64);
  const std::uint64_t chunk = std::max<std::uint64_t>(1, intent.response_bytes / packets);
  for (std::uint64_t i = 0; i < packets; ++i) {
    const SimDuration when =
        intent.server_delay + (intent.transfer_time - intent.server_delay) * static_cast<std::int64_t>(i) /
                                  static_cast<std::int64_t>(packets);
    sim_.after(when, [this, key, chunk]() { send_to_client(key, chunk, {}); });
  }
}

}  // namespace dnsctx::traffic
