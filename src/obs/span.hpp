// dnsctx — RAII stage tracing on top of the metrics registry.
//
// A StageSpan times the scope it lives in (wall via steady_clock, CPU
// via the calling thread's CLOCK_THREAD_CPUTIME_ID) and, on destruction,
// folds the measurement into four series keyed by the span's PATH — the
// '/'-joined chain of the enclosing spans on this thread:
//
//   stage_runs_total{stage="run_study/pairing"}       (counter)
//   stage_wall_us_total{stage="run_study/pairing"}    (counter, µs)
//   stage_cpu_us_total{stage="run_study/pairing"}     (counter, µs)
//   span_wall_seconds{stage="run_study/pairing"}      (latency histogram)
//
// Nesting is per thread: a span opened on a pool worker starts a fresh
// path there (the workers execute leaf stages, e.g. "sim/shard3").
// When metrics are disabled a StageSpan is a single branch — it never
// reads a clock or touches the registry.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace dnsctx::obs {

class StageSpan {
 public:
  explicit StageSpan(std::string stage);
  ~StageSpan();
  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

  /// The '/'-joined path of the spans currently open on this thread
  /// ("" outside any span). Test/diagnostic hook.
  [[nodiscard]] static std::string current_path();

 private:
  bool active_ = false;
  std::string path_;
  std::size_t parent_len_ = 0;  ///< thread path length to restore on exit
  std::chrono::steady_clock::time_point wall_start_;
  std::uint64_t cpu_start_ns_ = 0;
};

}  // namespace dnsctx::obs
