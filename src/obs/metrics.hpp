// dnsctx — low-overhead runtime observability: a process-wide registry of
// counters, gauges, and latency histograms.
//
// Design constraints (see docs/OBSERVABILITY.md):
//
//  * The DISABLED path must cost one branch-predictable relaxed load per
//    instrumentation site — golden outputs and bench wall times stay
//    byte-identical / within noise when metrics are off (the default).
//  * The ENABLED hot path is lock-free: counters stripe their value over
//    cache-line-padded atomic shards indexed by a per-thread slot, so
//    concurrent increments from the parallel layer never contend on one
//    line; shards are merged only on scrape.
//  * Registration (name → handle lookup) takes a mutex and may allocate;
//    instrumented code registers once and caches the reference. Handles
//    are stable for the registry's lifetime — the registry never erases
//    a metric, reset() only zeroes values.
//
// Naming scheme: metric names are Prometheus series keys WITHOUT the
// exporter's "dnsctx_" prefix — `snake_case`, `_total` suffix for
// monotone counters, optional label block (`stage_wall_us_total{stage=
// "run_study/pairing"}`). The exporters group series into families by
// the name before '{'.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dnsctx::obs {

/// Global metrics switch. Off by default; flipped on by `--metrics-out`
/// (CLI) / `--metrics` (bench) before any traffic flows.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Number of counter shards. A power of two so the per-thread slot is a
/// mask, sized for the pool's practical width (ThreadPool workers + the
/// caller); more threads than stripes just share slots, still race-free.
inline constexpr std::size_t kCounterStripes = 16;

/// Stable per-thread stripe index in [0, kCounterStripes).
[[nodiscard]] std::size_t thread_stripe();

/// Monotone counter, striped per thread. add() is lock-free; value()
/// merges the stripes (scrape-time only).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    stripes_[thread_stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : stripes_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() {
    for (auto& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Stripe, kCounterStripes> stripes_{};
};

/// Last-write-wins scalar (plus a max-merge variant for high-water
/// marks). A single atomic double: gauges are set at scrape points, not
/// in per-record loops, so striping would buy nothing.
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }

  /// Raise to `v` if larger (high-water marks published from several
  /// shards).
  void set_max(double v) {
    if (!enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  void add(double v) {
    if (!enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram for wall/cpu timings, in SECONDS. Buckets
/// follow a 1–2–5 series from 1 µs to 50 s plus +Inf, so one layout
/// serves event-loop slices and whole-run stages alike. observe() is a
/// couple of relaxed atomic adds — it is meant for per-span / per-batch
/// frequency, not per-record loops.
class LatencyHistogram {
 public:
  /// Upper bounds (`le`) of the finite buckets, ascending.
  [[nodiscard]] static const std::vector<double>& bounds();

  void observe(double seconds);

  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Total observed seconds (stored as integral nanoseconds internally
  /// so concurrent adds need no CAS loop).
  [[nodiscard]] double sum_seconds() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e9;
  }
  /// Non-cumulative count of bucket `i` (i == bounds().size() is +Inf).
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_.at(i).load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

  void reset();

 private:
  // bounds().size() finite buckets + 1 overflow; sized in the .cpp.
  static constexpr std::size_t kBuckets = 25;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

// ---- scrape snapshot -------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value;
};

struct GaugeSample {
  std::string name;
  double value;
};

struct HistogramSample {
  std::string name;
  std::vector<std::pair<double, std::uint64_t>> buckets;  ///< (le, CUMULATIVE count)
  std::uint64_t count = 0;
  double sum_seconds = 0.0;
};

/// A merged, name-sorted view of every registered metric.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Name → metric handle table. Thread-safe; see file header for the
/// registration-vs-hot-path contract.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] LatencyHistogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every value, keeping handles valid (test isolation, and bench
  /// binaries that scrape per run).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/// The process-wide registry every instrumentation site reports into.
[[nodiscard]] MetricsRegistry& registry();

}  // namespace dnsctx::obs
