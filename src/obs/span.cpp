#include "obs/span.hpp"

#include <ctime>

#include "obs/metrics.hpp"

namespace dnsctx::obs {

namespace {

/// The '/'-joined span path of this thread. A plain string (not a stack
/// of frames): spans restore their parent's length on exit, which also
/// makes mismatched destruction orders self-healing.
thread_local std::string t_path;

[[nodiscard]] std::uint64_t thread_cpu_ns() {
#ifdef __linux__
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

}  // namespace

StageSpan::StageSpan(std::string stage) {
  if (!enabled() || stage.empty()) return;
  active_ = true;
  parent_len_ = t_path.size();
  if (!t_path.empty()) t_path += '/';
  t_path += stage;
  path_ = t_path;
  cpu_start_ns_ = thread_cpu_ns();
  wall_start_ = std::chrono::steady_clock::now();
}

StageSpan::~StageSpan() {
  if (!active_) return;
  const auto wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start_).count();
  const std::uint64_t cpu_end = thread_cpu_ns();
  const std::uint64_t cpu_ns = cpu_end > cpu_start_ns_ ? cpu_end - cpu_start_ns_ : 0;
  t_path.resize(parent_len_);

  auto& reg = registry();
  const std::string label = "{stage=\"" + path_ + "\"}";
  reg.counter("stage_runs_total" + label).add(1);
  reg.counter("stage_wall_us_total" + label)
      .add(static_cast<std::uint64_t>(wall * 1e6));
  reg.counter("stage_cpu_us_total" + label).add(cpu_ns / 1'000);
  reg.histogram("span_wall_seconds" + label).observe(wall);
}

std::string StageSpan::current_path() { return t_path; }

}  // namespace dnsctx::obs
