#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace dnsctx::obs {

namespace {

constexpr const char* kPrefix = "dnsctx_";

/// Family name = series name up to the label block.
[[nodiscard]] std::string family_of(const std::string& name) {
  const auto brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Label block of a series name ("" when unlabelled), without braces.
[[nodiscard]] std::string labels_of(const std::string& name) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) return {};
  return name.substr(brace + 1, name.size() - brace - 2);
}

/// Shortest round-trip double rendering (%.17g is exact but noisy; %g at
/// 15 digits is stable across libcs for the values we export).
[[nodiscard]] std::string num(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.9g", v);
  }
  return buf;
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // Remaining control chars (RFC 8259 requires escaping < 0x20).
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void emit_type_line(std::string& out, std::string& last_family, const std::string& name,
                    const char* type) {
  const std::string family = kPrefix + family_of(name);
  if (family != last_family) {
    out += "# TYPE " + family + " " + type + "\n";
    last_family = family;
  }
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  std::string last_family;
  const auto line = [&out](const std::string& series, const std::string& value) {
    out += kPrefix;
    out += series;
    out += " ";
    out += value;
    out += "\n";
  };
  for (const auto& c : snap.counters) {
    emit_type_line(out, last_family, c.name, "counter");
    line(c.name, std::to_string(c.value));
  }
  for (const auto& g : snap.gauges) {
    emit_type_line(out, last_family, g.name, "gauge");
    line(g.name, num(g.value));
  }
  for (const auto& h : snap.histograms) {
    emit_type_line(out, last_family, h.name, "histogram");
    const std::string family = family_of(h.name);
    std::string labels = labels_of(h.name);
    if (!labels.empty()) labels += ",";
    for (const auto& [le, count] : h.buckets) {
      line(family + "_bucket{" + labels + "le=\"" + num(le) + "\"}", std::to_string(count));
    }
    line(family + "_bucket{" + labels + "le=\"+Inf\"}", std::to_string(h.count));
    const std::string raw = labels_of(h.name);
    const std::string suffix = raw.empty() ? std::string{} : "{" + raw + "}";
    line(family + "_sum" + suffix, num(h.sum_seconds));
    line(family + "_count" + suffix, std::to_string(h.count));
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snap) {
  std::string out = "{\"counters\":{";
  const auto key = [&out](const std::string& name) {
    out += "\"";
    out += json_escape(name);
    out += "\":";
  };
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i) out += ",";
    key(snap.counters[i].name);
    out += std::to_string(snap.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i) out += ",";
    key(snap.gauges[i].name);
    out += num(snap.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i) out += ",";
    key(h.name);
    out += "{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum_seconds\":";
    out += num(h.sum_seconds);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b) out += ",";
      out += "[";
      out += num(h.buckets[b].first);
      out += ",";
      out += std::to_string(h.buckets[b].second);
      out += "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string to_flat_json(const MetricsSnapshot& snap) {
  std::string out = "{";
  bool first = true;
  const auto emit = [&](const std::string& name, const std::string& value) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(name);
    out += "\":";
    out += value;
  };
  for (const auto& c : snap.counters) emit(c.name, std::to_string(c.value));
  for (const auto& g : snap.gauges) emit(g.name, num(g.value));
  for (const auto& h : snap.histograms) {
    emit(h.name + "_count", std::to_string(h.count));
    emit(h.name + "_sum_seconds", num(h.sum_seconds));
  }
  out += "}";
  return out;
}

void write_metrics_file(const std::string& path) {
  const MetricsSnapshot snap = registry().snapshot();
  std::ofstream os{path};
  if (!os) throw std::runtime_error{"cannot write metrics file: " + path};
  const bool json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  os << (json ? to_json(snap) : to_prometheus(snap));
  if (!json) return;
  os << "\n";
}

}  // namespace dnsctx::obs
