// dnsctx — metric exporters: Prometheus text exposition and JSON.
//
// Both render a MetricsSnapshot deterministically (series sorted by
// name, fixed number formatting), so the exporter output for a fixed
// snapshot is testable byte for byte.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace dnsctx::obs {

/// Prometheus text exposition format. Series are grouped into families
/// by the name before the label block and prefixed "dnsctx_";
/// histograms expand into `_bucket{le=...}` / `_sum` / `_count`.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snap);

/// Structured JSON document:
///   {"counters":{...},"gauges":{...},
///    "histograms":{name:{"count":..,"sum_seconds":..,"buckets":[[le,c],..]}}}
[[nodiscard]] std::string to_json(const MetricsSnapshot& snap);

/// One flat JSON object {"name":value,...} merging counters, gauges,
/// and histogram `<name>_count` / `<name>_sum_seconds` — the shape the
/// bench `--json` records embed under their "metrics" key so
/// tools/bench_compare.py can gate on internal metrics.
[[nodiscard]] std::string to_flat_json(const MetricsSnapshot& snap);

/// Scrape the global registry and write it to `path` — JSON when the
/// path ends in ".json", Prometheus text otherwise. Throws
/// std::runtime_error when the file cannot be written.
void write_metrics_file(const std::string& path);

}  // namespace dnsctx::obs
