#include "obs/metrics.hpp"

#include <algorithm>

namespace dnsctx::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::size_t thread_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterStripes;
  return idx;
}

const std::vector<double>& LatencyHistogram::bounds() {
  // 1–2–5 decades, 1 µs .. 50 s (24 finite buckets; +Inf is implicit).
  static const std::vector<double> kBounds = {
      1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3,
      1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0,  2.0,  5.0,  10.0, 20.0, 50.0};
  return kBounds;
}

void LatencyHistogram::observe(double seconds) {
  if (!enabled()) return;
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN / negative clock glitches
  const auto& b = bounds();
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(b.begin(), b.end(), seconds) - b.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9), std::memory_order_relaxed);
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock{mu_};
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock{mu_};
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock{mu_};
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock{mu_};
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.counters.push_back({name, c->value()});
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.gauges.push_back({name, g->value()});
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    const auto& b = LatencyHistogram::bounds();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < b.size(); ++i) {
      cumulative += h->bucket(i);
      s.buckets.emplace_back(b[i], cumulative);
    }
    s.count = h->count();
    s.sum_seconds = h->sum_seconds();
    out.histograms.push_back(std::move(s));
  }
  return out;  // std::map iteration is already name-sorted
}

void MetricsRegistry::reset() {
  std::lock_guard lock{mu_};
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace dnsctx::obs
