#include "analysis/tables.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "resolver/recursive.hpp"

namespace dnsctx::analysis {

PlatformDirectory PlatformDirectory::standard() {
  using namespace resolver::well_known;
  PlatformDirectory dir;
  dir.add(kIspResolver1, "Local");
  dir.add(kIspResolver2, "Local");
  dir.add(kGoogle1, "Google");
  dir.add(kGoogle2, "Google");
  dir.add(kOpenDns1, "OpenDNS");
  dir.add(kOpenDns2, "OpenDNS");
  dir.add(kCloudflare1, "Cloudflare");
  dir.add(kCloudflare2, "Cloudflare");
  return dir;
}

void PlatformDirectory::add(Ipv4Addr addr, std::string platform) {
  if (std::find(order_.begin(), order_.end(), platform) == order_.end()) {
    order_.push_back(platform);
  }
  map_[addr] = std::move(platform);
}

const std::string& PlatformDirectory::label(Ipv4Addr addr) const {
  const auto it = map_.find(addr);
  return it == map_.end() ? other_ : it->second;
}

std::vector<Table1Row> build_table1(const capture::Dataset& ds, const PairingResult& pairing,
                                    const PlatformDirectory& dir, double min_lookup_share) {
  struct Tally {
    std::unordered_set<Ipv4Addr, Ipv4Hash> houses;
    std::uint64_t lookups = 0;
    std::uint64_t conns = 0;
    std::uint64_t bytes = 0;
  };
  std::unordered_map<std::string, Tally> tallies;
  std::unordered_set<Ipv4Addr, Ipv4Hash> all_houses;
  std::uint64_t total_lookups = 0;

  for (const auto& d : ds.dns) {
    auto& t = tallies[dir.label(d.resolver_ip)];
    ++t.lookups;
    t.houses.insert(d.client_ip);
    all_houses.insert(d.client_ip);
    ++total_lookups;
  }

  std::uint64_t paired_conns = 0;
  std::uint64_t paired_bytes = 0;
  for (std::size_t i = 0; i < ds.conns.size(); ++i) {
    const auto& pc = pairing.conns[i];
    if (pc.dns_idx < 0) continue;
    const auto& dns = ds.dns[static_cast<std::size_t>(pc.dns_idx)];
    auto& t = tallies[dir.label(dns.resolver_ip)];
    ++t.conns;
    const std::uint64_t bytes = ds.conns[i].orig_bytes + ds.conns[i].resp_bytes;
    t.bytes += bytes;
    ++paired_conns;
    paired_bytes += bytes;
  }

  std::vector<Table1Row> rows;
  auto emit = [&](const std::string& platform) {
    const auto it = tallies.find(platform);
    if (it == tallies.end()) return;
    const Tally& t = it->second;
    const double lookup_share =
        total_lookups ? static_cast<double>(t.lookups) / static_cast<double>(total_lookups) : 0.0;
    if (platform != "other" && lookup_share < min_lookup_share) return;
    Table1Row row;
    row.platform = platform;
    row.lookups = t.lookups;
    row.pct_houses = all_houses.empty() ? 0.0
                                        : 100.0 * static_cast<double>(t.houses.size()) /
                                              static_cast<double>(all_houses.size());
    row.pct_lookups = 100.0 * lookup_share;
    row.pct_conns = paired_conns ? 100.0 * static_cast<double>(t.conns) /
                                       static_cast<double>(paired_conns)
                                 : 0.0;
    row.pct_bytes = paired_bytes ? 100.0 * static_cast<double>(t.bytes) /
                                       static_cast<double>(paired_bytes)
                                 : 0.0;
    rows.push_back(std::move(row));
  };
  for (const auto& platform : dir.platforms()) emit(platform);
  emit("other");
  return rows;
}

double isp_only_house_frac(const capture::Dataset& ds, const PlatformDirectory& dir) {
  std::unordered_map<Ipv4Addr, bool, Ipv4Hash> only_local;  // house → still local-only
  for (const auto& d : ds.dns) {
    const bool is_local = dir.label(d.resolver_ip) == "Local";
    const auto [it, inserted] = only_local.try_emplace(d.client_ip, is_local);
    if (!inserted) it->second = it->second && is_local;
  }
  if (only_local.empty()) return 0.0;
  std::size_t count = 0;
  for (const auto& [house, local] : only_local) {
    if (local) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(only_local.size());
}

}  // namespace dnsctx::analysis
