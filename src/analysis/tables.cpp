#include "analysis/tables.hpp"

#include <algorithm>

#include "resolver/recursive.hpp"
#include "util/parallel.hpp"

namespace dnsctx::analysis {

namespace {

struct Tally {
  util::FlatSet<Ipv4Addr> houses;
  std::uint64_t lookups = 0;
  std::uint64_t conns = 0;
  std::uint64_t bytes = 0;
};

/// DNS-pass accumulator: per-platform tallies (dense, indexed by
/// PlatformId) plus the global house set and lookup count. Merges are
/// set unions and integer sums, so the result is independent of chunk
/// assignment.
struct DnsAcc {
  std::vector<Tally> tallies;
  util::FlatSet<Ipv4Addr> all_houses;
  std::uint64_t total_lookups = 0;
};

struct ConnAcc {
  std::vector<Tally> tallies;
  std::uint64_t paired_conns = 0;
  std::uint64_t paired_bytes = 0;
};

void merge_tallies(std::vector<Tally>& into, std::vector<Tally>&& part) {
  if (into.size() < part.size()) into.resize(part.size());
  for (std::size_t id = 0; id < part.size(); ++id) {
    Tally& dst = into[id];
    Tally& src = part[id];
    dst.lookups += src.lookups;
    dst.conns += src.conns;
    dst.bytes += src.bytes;
    if (dst.houses.empty()) {
      dst.houses = std::move(src.houses);
    } else {
      src.houses.for_each([&](Ipv4Addr h) { dst.houses.insert(h); });
    }
  }
}

}  // namespace

PlatformDirectory PlatformDirectory::standard() {
  using namespace resolver::well_known;
  PlatformDirectory dir;
  dir.add(kIspResolver1, "Local");
  dir.add(kIspResolver2, "Local");
  dir.add(kGoogle1, "Google");
  dir.add(kGoogle2, "Google");
  dir.add(kOpenDns1, "OpenDNS");
  dir.add(kOpenDns2, "OpenDNS");
  dir.add(kCloudflare1, "Cloudflare");
  dir.add(kCloudflare2, "Cloudflare");
  return dir;
}

void PlatformDirectory::add(Ipv4Addr addr, std::string platform) {
  const auto pos = std::find(order_.begin(), order_.end(), platform);
  PlatformId id;
  if (pos == order_.end()) {
    id = static_cast<PlatformId>(order_.size());
    order_.push_back(std::move(platform));
  } else {
    id = static_cast<PlatformId>(pos - order_.begin());
  }
  ids_[addr] = id;
}

PlatformId PlatformDirectory::id_of_label(std::string_view platform) const {
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (order_[i] == platform) return static_cast<PlatformId>(i);
  }
  if (platform == other_) return other_id();
  return static_cast<PlatformId>(order_.size() + 1);  // matches no id_of() result
}

std::vector<Table1Row> build_table1(const capture::Dataset& ds, const PairingResult& pairing,
                                    const PlatformDirectory& dir, double min_lookup_share,
                                    unsigned threads) {
  const std::size_t nplatforms = dir.platform_count();
  DnsAcc dns_acc = util::parallel_map_reduce<DnsAcc>(
      threads, ds.dns.size(), util::kDefaultGrain,
      [&](std::size_t begin, std::size_t end) {
        DnsAcc part;
        part.tallies.resize(nplatforms);
        for (std::size_t i = begin; i < end; ++i) {
          const auto& d = ds.dns[i];
          auto& t = part.tallies[dir.id_of(d.resolver_ip)];
          ++t.lookups;
          t.houses.insert(d.client_ip);
          part.all_houses.insert(d.client_ip);
          ++part.total_lookups;
        }
        return part;
      },
      [](DnsAcc& into, DnsAcc&& part) {
        merge_tallies(into.tallies, std::move(part.tallies));
        part.all_houses.for_each([&](Ipv4Addr h) { into.all_houses.insert(h); });
        into.total_lookups += part.total_lookups;
      });

  ConnAcc conn_acc = util::parallel_map_reduce<ConnAcc>(
      threads, ds.conns.size(), util::kDefaultGrain,
      [&](std::size_t begin, std::size_t end) {
        ConnAcc part;
        part.tallies.resize(nplatforms);
        for (std::size_t i = begin; i < end; ++i) {
          const auto& pc = pairing.conns[i];
          if (pc.dns_idx < 0) continue;
          const auto& dns = ds.dns[static_cast<std::size_t>(pc.dns_idx)];
          auto& t = part.tallies[dir.id_of(dns.resolver_ip)];
          ++t.conns;
          const std::uint64_t bytes = ds.conns[i].orig_bytes + ds.conns[i].resp_bytes;
          t.bytes += bytes;
          ++part.paired_conns;
          part.paired_bytes += bytes;
        }
        return part;
      },
      [](ConnAcc& into, ConnAcc&& part) {
        merge_tallies(into.tallies, std::move(part.tallies));
        into.paired_conns += part.paired_conns;
        into.paired_bytes += part.paired_bytes;
      });

  merge_tallies(dns_acc.tallies, std::move(conn_acc.tallies));
  const auto& tallies = dns_acc.tallies;
  const std::uint64_t total_lookups = dns_acc.total_lookups;
  const std::uint64_t paired_conns = conn_acc.paired_conns;
  const std::uint64_t paired_bytes = conn_acc.paired_bytes;

  std::vector<Table1Row> rows;
  auto emit = [&](PlatformId id) {
    if (id >= tallies.size()) return;
    const Tally& t = tallies[id];
    if (t.lookups == 0 && t.conns == 0) return;
    const double lookup_share =
        total_lookups ? static_cast<double>(t.lookups) / static_cast<double>(total_lookups) : 0.0;
    if (id != dir.other_id() && lookup_share < min_lookup_share) return;
    Table1Row row;
    row.platform = dir.name_of(id);
    row.lookups = t.lookups;
    row.pct_houses = dns_acc.all_houses.empty()
                         ? 0.0
                         : 100.0 * static_cast<double>(t.houses.size()) /
                               static_cast<double>(dns_acc.all_houses.size());
    row.pct_lookups = 100.0 * lookup_share;
    row.pct_conns = paired_conns ? 100.0 * static_cast<double>(t.conns) /
                                       static_cast<double>(paired_conns)
                                 : 0.0;
    row.pct_bytes = paired_bytes ? 100.0 * static_cast<double>(t.bytes) /
                                       static_cast<double>(paired_bytes)
                                 : 0.0;
    rows.push_back(std::move(row));
  };
  for (PlatformId id = 0; id < dir.other_id(); ++id) emit(id);
  emit(dir.other_id());
  return rows;
}

double isp_only_house_frac(const capture::Dataset& ds, const PlatformDirectory& dir,
                           unsigned threads) {
  const PlatformId local_id = dir.id_of_label("Local");
  using LocalMap = util::FlatMap<Ipv4Addr, bool>;  // house → still local-only
  const LocalMap only_local = util::parallel_map_reduce<LocalMap>(
      threads, ds.dns.size(), util::kDefaultGrain,
      [&](std::size_t begin, std::size_t end) {
        LocalMap part;
        for (std::size_t i = begin; i < end; ++i) {
          const auto& d = ds.dns[i];
          const bool is_local = dir.id_of(d.resolver_ip) == local_id;
          const auto [it, inserted] = part.try_emplace(d.client_ip, is_local);
          if (!inserted) it->second = it->second && is_local;
        }
        return part;
      },
      [](LocalMap& into, LocalMap&& part) {
        for (const auto& [house, local] : part) {
          const auto [it, inserted] = into.try_emplace(house, local);
          if (!inserted) it->second = it->second && local;
        }
      });
  if (only_local.empty()) return 0.0;
  std::size_t count = 0;
  for (const auto& [house, local] : only_local) {
    if (local) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(only_local.size());
}

}  // namespace dnsctx::analysis
