#include "analysis/timeseries.hpp"

#include <algorithm>

#include "util/flat_map.hpp"
#include "util/strings.hpp"

namespace dnsctx::analysis {

double TimeSeries::lookups_per_sec_per_house(std::size_t bucket) const {
  if (bucket >= buckets.size() || houses == 0) return 0.0;
  const double secs = bucket_width.to_sec();
  return secs > 0.0 ? static_cast<double>(buckets[bucket].lookups) / secs /
                          static_cast<double>(houses)
                    : 0.0;
}

double TimeSeries::diurnal_swing() const {
  std::uint64_t lo = ~0ULL, hi = 0;
  for (const auto& b : buckets) {
    lo = std::min(lo, b.conns);
    hi = std::max(hi, b.conns);
  }
  if (buckets.empty() || lo == 0) return 0.0;
  return static_cast<double>(hi) / static_cast<double>(lo);
}

TimeSeries build_time_series(const capture::Dataset& ds, const Classified* classified,
                             SimDuration bucket_width) {
  TimeSeries out;
  out.bucket_width = bucket_width;
  if (ds.conns.empty() && ds.dns.empty()) return out;

  SimTime begin = SimTime::max();
  SimTime end = SimTime::origin();
  util::FlatSet<Ipv4Addr> houses;
  for (const auto& c : ds.conns) {
    begin = std::min(begin, c.start);
    end = std::max(end, c.start);
    houses.insert(c.orig_ip);
  }
  for (const auto& d : ds.dns) {
    begin = std::min(begin, d.ts);
    end = std::max(end, d.ts);
    houses.insert(d.client_ip);
  }
  out.houses = houses.size();
  const auto width_us = bucket_width.count_us();
  if (width_us <= 0) return out;
  const auto n_buckets =
      static_cast<std::size_t>((end - begin).count_us() / width_us) + 1;
  out.buckets.resize(n_buckets);
  for (std::size_t i = 0; i < n_buckets; ++i) {
    out.buckets[i].start = begin + bucket_width * static_cast<std::int64_t>(i);
  }
  auto bucket_of = [&](SimTime t) {
    return static_cast<std::size_t>((t - begin).count_us() / width_us);
  };
  for (std::size_t i = 0; i < ds.conns.size(); ++i) {
    const auto& c = ds.conns[i];
    TimeBucket& b = out.buckets[bucket_of(c.start)];
    ++b.conns;
    b.bytes += c.orig_bytes + c.resp_bytes;
    if (classified != nullptr && i < classified->classes.size()) {
      const ConnClass cls = classified->classes[i];
      if (cls == ConnClass::kSC || cls == ConnClass::kR) ++b.blocked_conns;
    }
  }
  for (const auto& d : ds.dns) {
    ++out.buckets[bucket_of(d.ts)].lookups;
  }
  return out;
}

std::string format_time_series(const TimeSeries& ts) {
  std::string out = strfmt("time series (%zu houses, %s buckets):\n", ts.houses,
                           to_string(ts.bucket_width).c_str());
  out += strfmt("  %-10s %9s %9s %9s %12s %14s\n", "t_start", "conns", "lookups", "blocked%",
                "MB", "lookups/s/house");
  for (std::size_t i = 0; i < ts.buckets.size(); ++i) {
    const auto& b = ts.buckets[i];
    out += strfmt("  %-10s %9llu %9llu %8.1f%% %12.1f %14.3f\n",
                  to_string(b.start).c_str(), static_cast<unsigned long long>(b.conns),
                  static_cast<unsigned long long>(b.lookups), 100.0 * b.blocked_share(),
                  static_cast<double>(b.bytes) / 1e6, ts.lookups_per_sec_per_house(i));
  }
  return out;
}

}  // namespace dnsctx::analysis
