// dnsctx — the paper's five-way connection taxonomy (Table 2, §5).
//
//   N  — no DNS pairing at all,
//   LC — local cache: gap > threshold, lookup previously used,
//   P  — prefetched: gap > threshold, first use of the lookup,
//   SC — blocked, answered from the shared resolver's cache (lookup
//        duration within the per-resolver RTT-derived threshold),
//   R  — blocked, required authoritative resolution.
//
// The SC/R split uses §5.3's procedure: for every resolver handling
// enough lookups, read the cache-hit mode off the lookup-duration
// distribution (≈ the network RTT) and set the cutoff just above it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/pairing.hpp"
#include "util/flat_map.hpp"
#include "util/stats.hpp"

namespace dnsctx::analysis {

enum class ConnClass : std::uint8_t { kN, kLC, kP, kSC, kR };

[[nodiscard]] std::string_view to_string(ConnClass c);

struct ClassifyConfig {
  SimDuration blocked_threshold = SimDuration::ms(100);  ///< §4's conservative cut
  /// Resolvers with at least this many answered lookups get their own
  /// SC/R threshold; the rest use `default_threshold_ms` (§5.3 uses
  /// 1000 lookups and 5 ms at paper scale).
  std::uint64_t per_resolver_min_lookups = 1'000;
  double default_threshold_ms = 5.0;
};

struct ClassCounts {
  std::uint64_t n = 0, lc = 0, p = 0, sc = 0, r = 0;

  [[nodiscard]] std::uint64_t total() const { return n + lc + p + sc + r; }
  [[nodiscard]] std::uint64_t blocked() const { return sc + r; }
  [[nodiscard]] double share(std::uint64_t part) const {
    return total() ? static_cast<double>(part) / static_cast<double>(total()) : 0.0;
  }
  /// §5.3's shared-cache hit rate: SC / (SC + R).
  [[nodiscard]] double shared_cache_hit_rate() const {
    return blocked() ? static_cast<double>(sc) / static_cast<double>(blocked()) : 0.0;
  }
};

struct Classified {
  std::vector<ConnClass> classes;  ///< parallel to Dataset::conns
  ClassCounts counts;
  util::FlatMap<Ipv4Addr, double> resolver_threshold_ms;

  // §5.2 companion statistics.
  std::uint64_t lc_expired = 0;      ///< LC connections using expired records
  std::uint64_t p_expired = 0;       ///< P connections using expired records
  Cdf lc_gap_sec;                    ///< lookup→use gap for LC (median 1033 s in paper)
  Cdf p_gap_sec;                     ///< ... for P (median 310 s in paper)
  Cdf lc_violation_late_sec;         ///< how long past expiry LC records are used

  [[nodiscard]] double lc_expired_frac() const {
    return counts.lc ? static_cast<double>(lc_expired) / static_cast<double>(counts.lc) : 0.0;
  }
  [[nodiscard]] double p_expired_frac() const {
    return counts.p ? static_cast<double>(p_expired) / static_cast<double>(counts.p) : 0.0;
  }
};

/// Derive per-resolver SC/R duration thresholds from the DNS log alone
/// (exposed separately for tests and the ablation bench).
[[nodiscard]] util::FlatMap<Ipv4Addr, double> derive_resolver_thresholds(
    const capture::Dataset& ds, const ClassifyConfig& cfg, unsigned threads = 1);

/// Classify every connection. Map-reduce over fixed connection chunks:
/// identical output for any `threads`.
[[nodiscard]] Classified classify_connections(const capture::Dataset& ds,
                                              const PairingResult& pairing,
                                              const ClassifyConfig& cfg = {},
                                              unsigned threads = 1);

}  // namespace dnsctx::analysis
