// dnsctx — ground-truth validation of the paper's connection taxonomy.
//
// The §5 classifier infers N/LC/P/SC/R from passive logs alone. The
// simulator knows the real story (capture::TruthTap collects it), so we
// can do what the paper could not: join every connection against its
// true class and count the misclassifications — per transport. Under
// --transport dot/doh the DNS log is empty and the whole taxonomy
// collapses toward N; under resolverless even the ground truth contains
// classes (kPushed) the classifier has no name for. This module
// quantifies exactly that degradation.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/classify.hpp"
#include "capture/truth_tap.hpp"

namespace dnsctx::analysis {

/// Joined truth-vs-inferred contingency table. Rows are ground-truth
/// classes (netsim::TrueClass, 8 of them), columns the classifier's five
/// labels.
struct TruthComparison {
  static constexpr std::size_t kRows = netsim::kTrueClassCount;
  static constexpr std::size_t kCols = 5;  // N, LC, P, SC, R

  std::array<std::array<std::uint64_t, kCols>, kRows> matrix{};
  std::uint64_t conns_without_truth = 0;  ///< conn records no truth flow matched
  std::uint64_t truth_without_conn = 0;   ///< truth flows that produced no conn record

  [[nodiscard]] std::uint64_t count(netsim::TrueClass t, ConnClass c) const {
    return matrix[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t row_total(netsim::TrueClass t) const {
    std::uint64_t n = 0;
    for (const auto v : matrix[static_cast<std::size_t>(t)]) n += v;
    return n;
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t n = 0;
    for (std::size_t r = 0; r < kRows; ++r) {
      for (const auto v : matrix[r]) n += v;
    }
    return n;
  }

  /// The classifier label each truth class SHOULD receive — or no label
  /// at all for classes outside the paper's vocabulary (kUnknown,
  /// kPushed, kDnsTransport), which count as misclassified wherever
  /// they land.
  [[nodiscard]] static bool expected_label(netsim::TrueClass t, ConnClass& out);

  /// Connections whose inferred label disagrees with the expected one
  /// for their truth class (classes without an expected label count
  /// entirely).
  [[nodiscard]] std::uint64_t misclassified() const;
  [[nodiscard]] double misclassified_frac() const {
    const auto n = total();
    return n ? static_cast<double>(misclassified()) / static_cast<double>(n) : 0.0;
  }
  /// Misclassified count within one truth class.
  [[nodiscard]] std::uint64_t misclassified_in(netsim::TrueClass t) const;
};

/// Join `cls.classes` (parallel to `ds.conns`) against the truth flows
/// on the post-NAT five-tuple. Truth flows are keyed first-wins, same
/// as the TruthTap recorded them.
[[nodiscard]] TruthComparison compare_with_truth(const capture::Dataset& ds,
                                                 const Classified& cls,
                                                 const std::vector<capture::TruthFlow>& truth);

/// Human-readable contingency table + per-class accuracy.
[[nodiscard]] std::string render_truth_report(const TruthComparison& tc);

}  // namespace dnsctx::analysis
