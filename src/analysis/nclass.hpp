// dnsctx — §5.1 analysis: what the no-DNS (N) connections are made of.
//
// The paper finds 81.6% of N connections have both ports outside the
// reserved range (the P2P signature) and traces the remainder to
// hard-coded service addresses (NTP, alarm heartbeats). It also checks
// for encrypted DNS (DoT port 853) and bounds the share of unexplained
// unpaired traffic.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "analysis/classify.hpp"

namespace dnsctx::analysis {

struct NClassBreakdown {
  std::uint64_t n_total = 0;
  std::uint64_t high_port = 0;        ///< both ports non-reserved (P2P-like)
  std::uint64_t port_443 = 0;
  std::uint64_t port_123 = 0;         ///< NTP
  std::uint64_t port_80 = 0;
  std::uint64_t port_853 = 0;         ///< DoT — should be zero (§5.1)
  std::uint64_t failed_ntp = 0;       ///< NTP attempts with no response bytes
  /// Busiest reserved-port destinations: (address, count), descending.
  std::vector<std::pair<Ipv4Addr, std::uint64_t>> top_reserved_destinations;

  /// Connections that are unpaired yet not P2P-like, as a share of ALL
  /// connections (paper: 1.3% — the encrypted-DNS upper bound).
  double unexplained_share_of_all = 0.0;

  [[nodiscard]] double high_port_frac() const {
    return n_total ? static_cast<double>(high_port) / static_cast<double>(n_total) : 0.0;
  }
};

[[nodiscard]] NClassBreakdown analyze_n_class(const capture::Dataset& ds,
                                              const Classified& classified,
                                              std::size_t top_destinations = 5);

}  // namespace dnsctx::analysis
