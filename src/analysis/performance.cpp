#include "analysis/performance.hpp"

#include "util/parallel.hpp"

namespace dnsctx::analysis {

namespace {

struct PerfAcc {
  Cdf lookup_ms_all, lookup_ms_sc, lookup_ms_r;
  Cdf contrib_all, contrib_sc, contrib_r;
  std::uint64_t blocked = 0;
  std::uint64_t q_ins = 0, q_rel = 0, q_abs = 0, q_sig = 0;
};

}  // namespace

PerformanceAnalysis analyze_performance(const capture::Dataset& ds,
                                        const PairingResult& pairing,
                                        const Classified& classified, double abs_ms,
                                        double rel_pct, unsigned threads) {
  PerformanceAnalysis out;
  PerfAcc acc = util::parallel_map_reduce<PerfAcc>(
      threads, ds.conns.size(), util::kDefaultGrain,
      [&](std::size_t begin, std::size_t end) {
        PerfAcc part;
        for (std::size_t i = begin; i < end; ++i) {
          const ConnClass cls = classified.classes[i];
          if (cls != ConnClass::kSC && cls != ConnClass::kR) continue;
          const PairedConn& pc = pairing.conns[i];
          const auto& dns = ds.dns[static_cast<std::size_t>(pc.dns_idx)];

          const double d_ms = dns.duration.to_ms();
          const double a_ms = ds.conns[i].duration.to_ms();
          const double t_ms = d_ms + a_ms;
          const double contrib = t_ms > 0.0 ? 100.0 * d_ms / t_ms : 100.0;

          part.lookup_ms_all.add(d_ms);
          part.contrib_all.add(contrib);
          if (cls == ConnClass::kSC) {
            part.lookup_ms_sc.add(d_ms);
            part.contrib_sc.add(contrib);
          } else {
            part.lookup_ms_r.add(d_ms);
            part.contrib_r.add(contrib);
          }

          ++part.blocked;
          const bool abs_ok = d_ms <= abs_ms;
          const bool rel_ok = contrib <= rel_pct;
          if (abs_ok && rel_ok) {
            ++part.q_ins;
          } else if (abs_ok) {
            ++part.q_rel;  // relatively significant only
          } else if (rel_ok) {
            ++part.q_abs;  // absolutely significant only
          } else {
            ++part.q_sig;
          }
        }
        return part;
      },
      [](PerfAcc& into, PerfAcc&& part) {
        into.lookup_ms_all.absorb(part.lookup_ms_all);
        into.lookup_ms_sc.absorb(part.lookup_ms_sc);
        into.lookup_ms_r.absorb(part.lookup_ms_r);
        into.contrib_all.absorb(part.contrib_all);
        into.contrib_sc.absorb(part.contrib_sc);
        into.contrib_r.absorb(part.contrib_r);
        into.blocked += part.blocked;
        into.q_ins += part.q_ins;
        into.q_rel += part.q_rel;
        into.q_abs += part.q_abs;
        into.q_sig += part.q_sig;
      });

  out.lookup_ms_all = std::move(acc.lookup_ms_all);
  out.lookup_ms_sc = std::move(acc.lookup_ms_sc);
  out.lookup_ms_r = std::move(acc.lookup_ms_r);
  out.contrib_all = std::move(acc.contrib_all);
  out.contrib_sc = std::move(acc.contrib_sc);
  out.contrib_r = std::move(acc.contrib_r);

  if (acc.blocked) {
    const auto div = static_cast<double>(acc.blocked);
    out.insignificant_both = static_cast<double>(acc.q_ins) / div;
    out.relative_only = static_cast<double>(acc.q_rel) / div;
    out.absolute_only = static_cast<double>(acc.q_abs) / div;
    out.significant_both = static_cast<double>(acc.q_sig) / div;
  }
  if (!ds.conns.empty()) {
    out.significant_overall =
        static_cast<double>(acc.q_sig) / static_cast<double>(ds.conns.size());
  }
  // Sort now so concurrent report/export readers stay lock-free.
  out.lookup_ms_all.seal();
  out.lookup_ms_sc.seal();
  out.lookup_ms_r.seal();
  out.contrib_all.seal();
  out.contrib_sc.seal();
  out.contrib_r.seal();
  return out;
}

}  // namespace dnsctx::analysis
