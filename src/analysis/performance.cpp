#include "analysis/performance.hpp"

namespace dnsctx::analysis {

PerformanceAnalysis analyze_performance(const capture::Dataset& ds,
                                        const PairingResult& pairing,
                                        const Classified& classified, double abs_ms,
                                        double rel_pct) {
  PerformanceAnalysis out;
  std::uint64_t blocked = 0;
  std::uint64_t q_ins = 0, q_rel = 0, q_abs = 0, q_sig = 0;

  for (std::size_t i = 0; i < ds.conns.size(); ++i) {
    const ConnClass cls = classified.classes[i];
    if (cls != ConnClass::kSC && cls != ConnClass::kR) continue;
    const PairedConn& pc = pairing.conns[i];
    const auto& dns = ds.dns[static_cast<std::size_t>(pc.dns_idx)];

    const double d_ms = dns.duration.to_ms();
    const double a_ms = ds.conns[i].duration.to_ms();
    const double t_ms = d_ms + a_ms;
    const double contrib = t_ms > 0.0 ? 100.0 * d_ms / t_ms : 100.0;

    out.lookup_ms_all.add(d_ms);
    out.contrib_all.add(contrib);
    if (cls == ConnClass::kSC) {
      out.lookup_ms_sc.add(d_ms);
      out.contrib_sc.add(contrib);
    } else {
      out.lookup_ms_r.add(d_ms);
      out.contrib_r.add(contrib);
    }

    ++blocked;
    const bool abs_ok = d_ms <= abs_ms;
    const bool rel_ok = contrib <= rel_pct;
    if (abs_ok && rel_ok) {
      ++q_ins;
    } else if (abs_ok) {
      ++q_rel;  // relatively significant only
    } else if (rel_ok) {
      ++q_abs;  // absolutely significant only
    } else {
      ++q_sig;
    }
  }

  if (blocked) {
    const auto div = static_cast<double>(blocked);
    out.insignificant_both = static_cast<double>(q_ins) / div;
    out.relative_only = static_cast<double>(q_rel) / div;
    out.absolute_only = static_cast<double>(q_abs) / div;
    out.significant_both = static_cast<double>(q_sig) / div;
  }
  if (!ds.conns.empty()) {
    out.significant_overall = static_cast<double>(q_sig) / static_cast<double>(ds.conns.size());
  }
  return out;
}

}  // namespace dnsctx::analysis
