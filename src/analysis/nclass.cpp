#include "analysis/nclass.hpp"

#include <algorithm>

#include "util/flat_map.hpp"

namespace dnsctx::analysis {

NClassBreakdown analyze_n_class(const capture::Dataset& ds, const Classified& classified,
                                std::size_t top_destinations) {
  NClassBreakdown out;
  // Destinations accumulate in first-seen order; the stable sort below
  // then breaks count ties by first appearance, so the top list never
  // depends on hash iteration order.
  util::FlatMap<Ipv4Addr, std::uint32_t> slot_of;
  std::vector<std::pair<Ipv4Addr, std::uint64_t>> dests;
  for (std::size_t i = 0; i < ds.conns.size(); ++i) {
    if (classified.classes[i] != ConnClass::kN) continue;
    const auto& c = ds.conns[i];
    ++out.n_total;
    if (c.both_high_ports()) {
      ++out.high_port;
      continue;
    }
    const auto [it, inserted] =
        slot_of.try_emplace(c.resp_ip, static_cast<std::uint32_t>(dests.size()));
    if (inserted) dests.emplace_back(c.resp_ip, 0);
    ++dests[it->second].second;
    switch (c.resp_port) {
      case 443: ++out.port_443; break;
      case 123:
        ++out.port_123;
        if (c.resp_bytes == 0) ++out.failed_ntp;
        break;
      case 80: ++out.port_80; break;
      case 853: ++out.port_853; break;
      default: break;
    }
  }
  if (!ds.conns.empty()) {
    out.unexplained_share_of_all =
        static_cast<double>(out.n_total - out.high_port) /
        static_cast<double>(ds.conns.size());
  }
  std::stable_sort(dests.begin(), dests.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  if (dests.size() > top_destinations) dests.resize(top_destinations);
  out.top_reserved_destinations = std::move(dests);
  return out;
}

}  // namespace dnsctx::analysis
