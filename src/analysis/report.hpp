// dnsctx — report formatting for the reproduction benches: aligned
// tables with the paper's value beside the measured one, and compact
// CDF series renderings for the figures.
#pragma once

#include <string>

#include "analysis/study.hpp"

namespace dnsctx::analysis {

/// "measured (paper X)" cell helper.
[[nodiscard]] std::string vs_paper(double measured, double paper, const char* unit = "%");

/// Table 1 with the paper's reference column.
[[nodiscard]] std::string format_table1(const Study& s);

/// Table 2 (class shares) with §5 companion statistics.
[[nodiscard]] std::string format_table2(const Study& s, const capture::Dataset& ds);

/// Figure 1 summary (gap CDF + knee + first-use splits).
[[nodiscard]] std::string format_fig1(const Study& s);

/// Figure 2 summary (lookup delays + contribution + §6 quadrants).
[[nodiscard]] std::string format_fig2(const Study& s);

/// §7 / Figure 3 summary (per-platform hit rate, delays, throughput).
[[nodiscard]] std::string format_fig3(const Study& s);

}  // namespace dnsctx::analysis
