// dnsctx — DN-Hunter connection↔DNS pairing (§4, after Bermudez et al.).
//
// Every application connection from local address L to remote address R
// is paired with the most recent non-expired DNS transaction by L whose
// answer contains R; if every candidate is expired, the most recent
// expired one is used. The paper's footnoted robustness check — pairing
// with a *random* non-expired candidate instead — is a first-class
// policy here (the bench_ablation binary exercises it).
#pragma once

#include <cstdint>
#include <vector>

#include "capture/records.hpp"
#include "util/rng.hpp"

namespace dnsctx::analysis {

enum class PairingPolicy {
  kMostRecent,  ///< the paper's primary analysis
  kRandom,      ///< §4's robustness variant
};

/// Pairing outcome for one connection (parallel to Dataset::conns).
struct PairedConn {
  std::int64_t dns_idx = -1;    ///< into Dataset::dns; -1 = no pairing (class N)
  bool expired_pairing = false; ///< paired record was past its TTL at conn start
  bool first_use = false;       ///< first connection to use this DNS transaction
  SimDuration gap;              ///< conn start − DNS response (valid when paired)
  std::uint32_t live_candidates = 0;  ///< non-expired answers containing the address
};

struct PairingResult {
  std::vector<PairedConn> conns;            ///< same order as Dataset::conns
  std::vector<std::uint32_t> dns_use_count; ///< per DNS record: connections paired to it

  std::uint64_t paired = 0;
  std::uint64_t unpaired = 0;
  std::uint64_t paired_expired = 0;
  /// §4 ambiguity accounting over paired connections.
  std::uint64_t unique_candidate = 0;
  std::uint64_t multiple_candidates = 0;

  [[nodiscard]] double unique_candidate_frac() const {
    const auto total = unique_candidate + multiple_candidates;
    return total ? static_cast<double>(unique_candidate) / static_cast<double>(total) : 0.0;
  }
  /// Fraction of answered, A-bearing DNS transactions never paired with
  /// any connection (§5.2's "unused lookups").
  [[nodiscard]] double unused_lookup_frac(const capture::Dataset& ds) const;
};

/// Run the pairing over a dataset (logs must be timestamp-sorted, as the
/// Monitor produces them). `seed` only matters for PairingPolicy::kRandom.
/// Work partitions per house (a connection only pairs with its own
/// house's lookups), so `threads` workers pair houses concurrently with
/// results identical to the sequential run; kRandom draws come from one
/// stream per house derived from (seed, house address).
[[nodiscard]] PairingResult pair_connections(const capture::Dataset& ds,
                                             PairingPolicy policy = PairingPolicy::kMostRecent,
                                             std::uint64_t seed = 0, unsigned threads = 1);

}  // namespace dnsctx::analysis
