#include "analysis/study.hpp"

#include "obs/span.hpp"

namespace dnsctx::analysis {

Study run_study(const capture::Dataset& ds, const StudyConfig& cfg) {
  obs::StageSpan study_span{"run_study"};
  Study s;
  {
    obs::StageSpan span{"pairing"};
    s.pairing = pair_connections(ds, cfg.pairing_policy, cfg.pairing_seed, cfg.threads);
  }
  {
    obs::StageSpan span{"blocking"};
    s.blocking = analyze_blocking(ds, s.pairing, 20.0, cfg.threads);
  }
  {
    obs::StageSpan span{"classify"};
    s.classified = classify_connections(ds, s.pairing, cfg.classify, cfg.threads);
  }
  {
    obs::StageSpan span{"table1"};
    s.table1 = build_table1(ds, s.pairing, cfg.directory, 0.01, cfg.threads);
  }
  {
    obs::StageSpan span{"isp_only_houses"};
    s.isp_only_houses = isp_only_house_frac(ds, cfg.directory, cfg.threads);
  }
  {
    obs::StageSpan span{"performance"};
    s.performance = analyze_performance(ds, s.pairing, s.classified, cfg.abs_significance_ms,
                                        cfg.rel_significance_pct, cfg.threads);
  }
  {
    obs::StageSpan span{"platforms"};
    s.platforms = analyze_platforms(ds, s.pairing, s.classified, cfg.directory,
                                    "connectivitycheck.gstatic.com", cfg.threads);
  }
  return s;
}

}  // namespace dnsctx::analysis
