#include "analysis/report.hpp"

#include "util/strings.hpp"

namespace dnsctx::analysis {

namespace {

/// Paper reference values (IMC 2020, Tables 1–2, §5–§7).
struct PaperTable1 {
  const char* platform;
  double houses, lookups, conns, bytes;
};
constexpr PaperTable1 kPaperTable1[] = {
    {"Local", 92.4, 72.8, 74.0, 70.8},
    {"Google", 83.5, 12.9, 8.3, 9.2},
    {"OpenDNS", 25.3, 9.4, 14.2, 13.5},
    {"Cloudflare", 3.8, 3.9, 2.9, 5.7},
};

struct PaperHitRate {
  const char* platform;
  double hit_rate;
};
constexpr PaperHitRate kPaperHitRates[] = {
    {"Cloudflare", 83.6}, {"Local", 71.2}, {"OpenDNS", 58.8}, {"Google", 23.0}};

}  // namespace

std::string vs_paper(double measured, double paper, const char* unit) {
  return strfmt("%6.1f%s (paper %5.1f%s)", measured, unit, paper, unit);
}

std::string format_table1(const Study& s) {
  std::string out;
  out += "Table 1: use of resolver platforms (measured | paper)\n";
  out += strfmt("  %-11s %17s %17s %17s %17s\n", "Resolver", "% Houses", "% Lookups",
                "% Conns", "% Bytes");
  for (const auto& row : s.table1) {
    double ph = -1, pl = -1, pc = -1, pb = -1;
    for (const auto& ref : kPaperTable1) {
      if (row.platform == ref.platform) {
        ph = ref.houses;
        pl = ref.lookups;
        pc = ref.conns;
        pb = ref.bytes;
      }
    }
    auto cell = [](double v, double paper) {
      return paper >= 0 ? strfmt("%6.1f | %5.1f", v, paper) : strfmt("%6.1f |     -", v);
    };
    out += strfmt("  %-11s %17s %17s %17s %17s\n", row.platform.c_str(),
                  cell(row.pct_houses, ph).c_str(), cell(row.pct_lookups, pl).c_str(),
                  cell(row.pct_conns, pc).c_str(), cell(row.pct_bytes, pb).c_str());
  }
  out += strfmt("  ISP-resolver-only houses: %s\n",
                vs_paper(100.0 * s.isp_only_houses, 16.0).c_str());
  return out;
}

std::string format_table2(const Study& s, const capture::Dataset& ds) {
  const ClassCounts& c = s.classified.counts;
  std::string out;
  out += "Table 2: DNS information origin by connection (measured | paper)\n";
  auto row = [&](const char* cls, const char* desc, std::uint64_t count, double paper) {
    out += strfmt("  %-3s %-22s %9llu  %s\n", cls, desc,
                  static_cast<unsigned long long>(count),
                  vs_paper(100.0 * c.share(count), paper).c_str());
  };
  row("N", "No DNS", c.n, 7.2);
  row("LC", "Local Cache", c.lc, 42.9);
  row("P", "Prefetched", c.p, 7.8);
  row("SC", "Shared Resolver Cache", c.sc, 26.3);
  row("R", "Requires Resolution", c.r, 15.7);
  out += strfmt("  no-block share (N+LC+P):      %s\n",
                vs_paper(100.0 * (c.share(c.n) + c.share(c.lc) + c.share(c.p)), 57.9).c_str());
  out += strfmt("  shared-cache hit rate:        %s\n",
                vs_paper(100.0 * c.shared_cache_hit_rate(), 62.6).c_str());
  out += strfmt("  LC using expired records:     %s\n",
                vs_paper(100.0 * s.classified.lc_expired_frac(), 22.2).c_str());
  out += strfmt("  P using expired records:      %s\n",
                vs_paper(100.0 * s.classified.p_expired_frac(), 12.4).c_str());
  out += strfmt("  unused (speculative) lookups: %s\n",
                vs_paper(100.0 * s.pairing.unused_lookup_frac(ds), 37.8).c_str());
  out += strfmt("  unique pairing candidate:     %s\n",
                vs_paper(100.0 * s.pairing.unique_candidate_frac(), 82.0).c_str());
  if (!s.classified.lc_gap_sec.empty() && !s.classified.p_gap_sec.empty()) {
    out += strfmt("  median lookup→use gap:  LC %.0f s (paper 1033), P %.0f s (paper 310)\n",
                  s.classified.lc_gap_sec.median(), s.classified.p_gap_sec.median());
  }
  if (!s.classified.lc_violation_late_sec.empty()) {
    const auto& late = s.classified.lc_violation_late_sec;
    out += strfmt(
        "  TTL-violation lateness: median %.0f s (paper 890), p90 %.0f s (paper ~19000), "
        ">30 s %.0f%% (paper 82)\n",
        late.median(), late.quantile(0.9), 100.0 * late.fraction_above(30.0));
  }
  return out;
}

std::string format_fig1(const Study& s) {
  const BlockingAnalysis& b = s.blocking;
  std::string out;
  out += "Figure 1: gap between DNS completion and connection start\n";
  out += render_ascii_cdf(b.gap_ms, "gap (paired connections)", "ms");
  out += strfmt("  detected knee:            ~%.0f ms (paper ~20 ms)\n", b.knee_ms);
  out += strfmt("  first-use | gap<=20ms:    %s\n",
                vs_paper(100.0 * b.first_use_frac_below, 91.0).c_str());
  out += strfmt("  first-use | gap>20ms:     %s\n",
                vs_paper(100.0 * b.first_use_frac_above, 21.0).c_str());
  out += strfmt("  paired conns within 100ms: %.1f%%\n", 100.0 * b.frac_within_ms(100.0));
  return out;
}

std::string format_fig2(const Study& s) {
  const PerformanceAnalysis& p = s.performance;
  std::string out;
  out += "Figure 2 (top): DNS lookup delay for SC ∪ R\n";
  if (!p.lookup_ms_all.empty()) {
    out += render_ascii_cdf(p.lookup_ms_all, "lookup delay", "ms");
    out += strfmt("  median: %.1f ms (paper 8.5), p75: %.1f ms (paper 20), >100 ms: %s\n",
                  p.lookup_ms_all.median(), p.lookup_ms_all.quantile(0.75),
                  vs_paper(100.0 * p.frac_lookup_over_ms(100.0), 3.3).c_str());
  }
  out += "Figure 2 (bottom): DNS contribution to transaction time\n";
  if (!p.contrib_all.empty()) {
    out += strfmt("  contribution > 1%%:  %s\n",
                  vs_paper(100.0 * p.frac_contrib_over_pct(1.0), 20.0).c_str());
    out += strfmt("  contribution >= 10%%: %s\n",
                  vs_paper(100.0 * p.frac_contrib_over_pct(10.0), 8.0).c_str());
    if (!p.contrib_r.empty()) {
      out += strfmt("  R-only > 1%%:        %s\n",
                    vs_paper(100.0 * p.contrib_r.fraction_above(1.0), 30.0).c_str());
    }
  }
  out += "§6 significance quadrants (of SC ∪ R)\n";
  out += strfmt("  insignificant (<=20ms, <=1%%):  %s\n",
                vs_paper(100.0 * p.insignificant_both, 64.0).c_str());
  out += strfmt("  relative only (>1%%, <=20ms):   %s\n",
                vs_paper(100.0 * p.relative_only, 11.5).c_str());
  out += strfmt("  absolute only (>20ms, <=1%%):   %s\n",
                vs_paper(100.0 * p.absolute_only, 15.9).c_str());
  out += strfmt("  significant (>20ms, >1%%):      %s\n",
                vs_paper(100.0 * p.significant_both, 8.6).c_str());
  out += strfmt("  significant share of ALL conns: %s\n",
                vs_paper(100.0 * p.significant_overall, 3.6).c_str());
  return out;
}

std::string format_fig3(const Study& s) {
  std::string out;
  out += "§7 / Figure 3: performance vs resolver platform\n";
  for (const auto& p : s.platforms) {
    double paper_hit = -1.0;
    for (const auto& ref : kPaperHitRates) {
      if (p.platform == ref.platform) paper_hit = ref.hit_rate;
    }
    out += strfmt("  %-11s hit rate %s", p.platform.c_str(),
                  paper_hit >= 0 ? vs_paper(100.0 * p.hit_rate(), paper_hit).c_str()
                                 : strfmt("%6.1f%%", 100.0 * p.hit_rate()).c_str());
    if (!p.r_lookup_ms.empty()) {
      out += strfmt("  |  R lookup ms: p50 %6.1f  p75 %6.1f  p95 %7.1f",
                    p.r_lookup_ms.median(), p.r_lookup_ms.quantile(0.75),
                    p.r_lookup_ms.quantile(0.95));
    }
    if (!p.throughput_bps.empty()) {
      out += strfmt("  |  tput KB/s: p25 %7.1f  p50 %7.1f  p75 %8.1f",
                    p.throughput_bps.quantile(0.25) / 1e3, p.throughput_bps.median() / 1e3,
                    p.throughput_bps.quantile(0.75) / 1e3);
    }
    out += "\n";
    if (p.platform == "Google" && !p.throughput_bps_filtered.empty()) {
      out += strfmt(
          "  %-11s conncheck share %s; filtered tput KB/s: p25 %7.1f  p50 %7.1f  p75 %8.1f\n",
          "  (dashed)", vs_paper(100.0 * p.conncheck_frac(), 23.5).c_str(),
          p.throughput_bps_filtered.quantile(0.25) / 1e3,
          p.throughput_bps_filtered.median() / 1e3,
          p.throughput_bps_filtered.quantile(0.75) / 1e3);
    }
  }
  return out;
}

}  // namespace dnsctx::analysis
