// dnsctx — DNS performance implications (§6, Figure 2).
//
// For the blocked classes (SC, R): the absolute lookup delay D, the
// connection duration A, total T = D + A, and DNS' percentage
// contribution 100·D/T. The §6 significance quadrants combine an
// absolute criterion (D ≤ 20 ms) with a relative one (D/T ≤ 1%).
#pragma once

#include "analysis/classify.hpp"
#include "util/stats.hpp"

namespace dnsctx::analysis {

struct PerformanceAnalysis {
  // Fig 2 top: lookup delay CDFs (ms) for SC ∪ R, and per class.
  Cdf lookup_ms_all;
  Cdf lookup_ms_sc;
  Cdf lookup_ms_r;

  // Fig 2 bottom: DNS contribution (percent of T) CDFs.
  Cdf contrib_all;
  Cdf contrib_sc;
  Cdf contrib_r;

  // §6 quadrants, as fractions of SC ∪ R connections.
  double insignificant_both = 0.0;  ///< D ≤ abs AND D/T ≤ rel (64.0% in paper)
  double relative_only = 0.0;       ///< D/T > rel but D ≤ abs (11.5%)
  double absolute_only = 0.0;       ///< D > abs but D/T ≤ rel (15.9%)
  double significant_both = 0.0;    ///< D > abs AND D/T > rel (8.6%)

  /// Significant share of ALL connections (3.6% in the paper).
  double significant_overall = 0.0;

  [[nodiscard]] double frac_lookup_over_ms(double ms) const {
    return lookup_ms_all.fraction_above(ms);
  }
  [[nodiscard]] double frac_contrib_over_pct(double pct) const {
    return contrib_all.fraction_above(pct);
  }
};

/// Compute §6 over the classified dataset. `abs_ms` and `rel_pct` are
/// the paper's 20 ms / 1% significance criteria (the ablation bench
/// sweeps them, cf. footnote 7). Map-reduce over fixed connection
/// chunks: identical output for any `threads`.
[[nodiscard]] PerformanceAnalysis analyze_performance(const capture::Dataset& ds,
                                                      const PairingResult& pairing,
                                                      const Classified& classified,
                                                      double abs_ms = 20.0,
                                                      double rel_pct = 1.0,
                                                      unsigned threads = 1);

}  // namespace dnsctx::analysis
