// dnsctx — one-call pipeline: pairing → blocking → classification →
// performance → per-platform metrics. This is the programmatic face of
// the whole paper; examples and benches build on it.
#pragma once

#include "analysis/blocking.hpp"
#include "analysis/performance.hpp"
#include "analysis/resolvers.hpp"
#include "analysis/tables.hpp"

namespace dnsctx::analysis {

struct StudyConfig {
  PairingPolicy pairing_policy = PairingPolicy::kMostRecent;
  std::uint64_t pairing_seed = 0;
  ClassifyConfig classify;
  double abs_significance_ms = 20.0;  ///< §6 absolute criterion
  double rel_significance_pct = 1.0;  ///< §6 relative criterion
  PlatformDirectory directory = PlatformDirectory::standard();
  /// Worker threads for every stage (0 = hardware concurrency). Results
  /// are identical for any value; 1 runs fully inline.
  unsigned threads = 1;
};

/// Every derived result of the paper for one dataset.
struct Study {
  PairingResult pairing;
  BlockingAnalysis blocking;
  Classified classified;
  std::vector<Table1Row> table1;
  double isp_only_houses = 0.0;
  PerformanceAnalysis performance;
  std::vector<PlatformPerf> platforms;
};

[[nodiscard]] Study run_study(const capture::Dataset& ds, const StudyConfig& cfg = {});

}  // namespace dnsctx::analysis
