// dnsctx — CSV export of every figure/table series, for plotting the
// reproduced results next to the paper's (gnuplot/matplotlib-ready).
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/study.hpp"

namespace dnsctx::analysis {

/// Write a CDF as "x,cdf" rows, downsampled to at most `points` evenly
/// spaced quantiles (plus the exact min and max).
void write_cdf_csv(std::ostream& os, const Cdf& cdf, const std::string& x_label,
                   std::size_t points = 200);

/// Write Table 1 as CSV (platform, pct_houses, pct_lookups, pct_conns,
/// pct_bytes).
void write_table1_csv(std::ostream& os, const Study& study);

/// Write Table 2 class shares as CSV (class, conns, share).
void write_table2_csv(std::ostream& os, const Study& study);

/// Write every figure series of a study into `dir`:
///   fig1_gap_cdf.csv
///   fig2_lookup_{all,sc,r}.csv, fig2_contrib_{all,sc,r}.csv
///   fig3_rlookup_<platform>.csv, fig3_throughput_<platform>.csv
///   (plus fig3_throughput_google_filtered.csv)
///   table1.csv, table2.csv
/// Returns the number of files written. Throws on IO failure.
std::size_t export_study_csv(const Study& study, const std::string& dir);

}  // namespace dnsctx::analysis
