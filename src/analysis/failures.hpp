// dnsctx — failure & recovery analysis over the passive datasets.
//
// Impaired runs (packet loss, resolver outages, injected SERVFAIL)
// leave fingerprints the monitor CAN see: unanswered dns.log entries,
// SERVFAIL rcodes, bursts of same-name lookups as stubs retry and fail
// over, and S0/REJ connection attempts. This module rolls those up into
// a FailureReport: per-outcome lookup tallies, observable retry chains
// (consecutive lookups for the same (house, qname, qtype) separated by
// failed attempts), and recovery/failure timing distributions.
//
// The ChainTracker is shared verbatim between batch analysis and
// stream::OnlineStudy. Every aggregate in FailureCounts is an integer
// (durations are summed microseconds), so batch and stream produce
// bit-identical counters under every fault plan regardless of
// accumulation order — the same argument that makes the rest of the
// online engine equivalent to batch.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "capture/records.hpp"
#include "util/flat_map.hpp"
#include "util/stats.hpp"

namespace dnsctx::analysis {

struct ClassCounts;  // classify.hpp

/// Integer-only failure aggregates (directly comparable batch ≡ stream).
struct FailureCounts {
  // Per-lookup outcomes, one per dns.log record.
  std::uint64_t lookups = 0;
  std::uint64_t answered_ok = 0;  ///< NOERROR with at least one address
  std::uint64_t nodata = 0;       ///< NOERROR, empty answer (e.g. AAAA on v4-only)
  std::uint64_t nxdomain = 0;
  std::uint64_t servfail = 0;
  std::uint64_t other_rcode = 0;
  std::uint64_t unanswered = 0;  ///< query seen, no response before the monitor flush

  // Observable retry chains. A chain opens at a failed attempt
  // (unanswered or SERVFAIL) and extends while follow-up lookups for
  // the same (house, qname, qtype) arrive within the chain gap; it
  // closes on a definitive answer (NOERROR/NXDOMAIN — recovered) or
  // when the client stops retrying (failed).
  std::uint64_t retry_chains = 0;      ///< closed chains with >= 2 lookups
  std::uint64_t retry_lookups = 0;     ///< lookups beyond the first in those chains
  std::uint64_t recovered_chains = 0;  ///< >= 2 lookups, ended in a definitive answer
  std::uint64_t failed_chains = 0;     ///< ended without one (any length)
  /// Closed-chain length histogram: index min(len, 8) - 1.
  std::array<std::uint64_t, 8> chain_len_hist{};
  std::int64_t recovered_wait_us = 0;  ///< Σ first query → definitive answer
  std::int64_t failed_wait_us = 0;     ///< Σ first query → last failed attempt end

  // Connection-side failure signals.
  std::uint64_t s0_conns = 0;   ///< SYN, no reply
  std::uint64_t rej_conns = 0;  ///< SYN answered by RST

  bool operator==(const FailureCounts&) const = default;
};

/// Incremental retry-chain state machine. Feed records in canonical
/// (timestamp, merge-order) order — the order both the batch dataset
/// and the streaming feed deliver. Bounded memory: evict_before()
/// closes chains the time frontier has passed (see OnlineStudy::sweep).
class ChainTracker {
 public:
  ChainTracker() = default;
  /// `keep_samples` additionally records per-chain timing samples into
  /// recovered_ms()/failed_ms() — batch-only (the streaming engine
  /// keeps counters, mirroring its treatment of the figure CDFs).
  explicit ChainTracker(SimDuration gap, bool keep_samples = false)
      : gap_{gap}, keep_samples_{keep_samples} {}

  void on_dns(const capture::DnsRecord& rec);
  void on_conn(const capture::ConnRecord& rec);

  /// Close every chain that can no longer extend: no record at or after
  /// `dns_frontier` can land within its gap. SimTime::max() closes all.
  void evict_before(SimTime dns_frontier);

  /// Copy accumulated counters into `out`, folding still-open chains in
  /// as failed (non-destructive: callable repeatedly, e.g. from the
  /// online engine's const finalize()).
  void fold_into(FailureCounts& out) const;

  /// Merge another tracker covering a DISJOINT set of houses (shard
  /// absorb). Throws std::logic_error on a house collision.
  void absorb(ChainTracker&& other);

  [[nodiscard]] const Cdf& recovered_ms() const { return recovered_ms_; }
  [[nodiscard]] const Cdf& failed_ms() const { return failed_ms_; }

 private:
  struct Chain {
    std::int64_t first_us = 0;     ///< ts of the opening failed attempt
    std::int64_t last_end_us = 0;  ///< max(ts + duration) across members
    std::uint32_t len = 1;
  };
  struct House {
    util::FlatMap<std::uint64_t, Chain> chains;  ///< key: (NameId << 16) | qtype
  };

  void close_recovered(const Chain& chain, std::int64_t answer_us);
  void close_failed(const Chain& chain);
  static void fold_failed(FailureCounts& out, const Chain& chain);

  SimDuration gap_ = SimDuration::sec(15);
  bool keep_samples_ = false;
  util::FlatMap<Ipv4Addr, House> houses_;
  FailureCounts counts_;
  Cdf recovered_ms_;
  Cdf failed_ms_;
};

struct FailureReportConfig {
  /// Max spacing between chain members. Covers the stub's worst
  /// observable gap (two 3 s attempts per resolver before failover,
  /// stretched by plan backoff) with slack for queue delay.
  SimDuration chain_gap = SimDuration::sec(15);
};

struct FailureReport {
  FailureCounts counts;
  Cdf recovered_ms;  ///< time from first query to the recovering answer
  Cdf failed_ms;     ///< span of chains that never recovered
};

[[nodiscard]] FailureReport build_failure_report(const capture::Dataset& ds,
                                                 FailureReportConfig cfg = {});

[[nodiscard]] std::string format_failure_report(const FailureReport& report);

/// Side-by-side {N, LC, P, SC, R} shares for an impaired run against
/// its unimpaired baseline — the per-class shift the fault plan caused.
[[nodiscard]] std::string format_class_shift(const ClassCounts& baseline,
                                             const ClassCounts& impaired);

}  // namespace dnsctx::analysis
