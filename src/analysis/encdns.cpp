#include "analysis/encdns.hpp"

#include "util/flat_map.hpp"
#include "util/strings.hpp"

namespace dnsctx::analysis {

EncFlowFeatures extract_features(const capture::EncFlowRecord& rec) {
  EncFlowFeatures f;
  f.data_msgs_up = rec.up_msgs > 0 ? rec.up_msgs - 1 : 0;
  f.data_msgs_down = rec.down_msgs > 0 ? rec.down_msgs - 1 : 0;
  if (f.data_msgs_up > 0) {
    f.mean_data_up = static_cast<double>(rec.up_bytes - rec.first_up_bytes) /
                     static_cast<double>(f.data_msgs_up);
    f.pad_frac_up =
        static_cast<double>(rec.pad_aligned_up) / static_cast<double>(f.data_msgs_up);
  }
  if (f.data_msgs_down > 0) {
    f.mean_data_down = static_cast<double>(rec.down_bytes - rec.first_down_bytes) /
                       static_cast<double>(f.data_msgs_down);
    f.pad_frac_down =
        static_cast<double>(rec.pad_aligned_down) / static_cast<double>(f.data_msgs_down);
  }
  f.duration_sec = rec.duration.to_sec();
  f.first_up_bytes = rec.first_up_bytes;
  f.first_down_bytes = rec.first_down_bytes;
  f.dot_port = rec.server_port == 853;
  return f;
}

bool looks_like_dns(const capture::EncFlowRecord& rec) {
  const EncFlowFeatures f = extract_features(rec);
  // A DNS channel exchanges at least one query/response pair after the
  // hello, and EVERY data message in both directions lands exactly on a
  // padding-block boundary — web requests and responses are arbitrary
  // sizes, so demanding full alignment both ways makes accidental
  // matches vanishingly rare (~1/128 per up message alone).
  if (f.data_msgs_up == 0 || f.data_msgs_down == 0) return false;
  if (f.pad_frac_up < 1.0 || f.pad_frac_down < 1.0) return false;
  // The client's first flight is a bare ClientHello: a few hundred
  // bytes. Web flows here open with the HTTP request itself, which this
  // rule tolerates only when it is also small — alignment does the rest.
  return f.first_up_bytes > 0 && f.first_up_bytes < 600;
}

EncConfusion evaluate_enc_classifier(const std::vector<capture::EncFlowRecord>& flows,
                                     const std::vector<Ipv4Addr>& resolver_addrs) {
  util::FlatSet<Ipv4Addr, Ipv4Hash> resolvers;
  resolvers.reserve(resolver_addrs.size());
  for (const auto a : resolver_addrs) resolvers.insert(a);

  EncConfusion c;
  for (const auto& rec : flows) {
    const bool truth = resolvers.contains(rec.server_ip);
    const bool flagged = looks_like_dns(rec);
    if (truth && flagged) ++c.tp;
    else if (truth) ++c.fn;
    else if (flagged) ++c.fp;
    else ++c.tn;
  }
  return c;
}

std::string render_enc_report(const EncConfusion& c) {
  return strfmt(
      "enc-dns classifier: %llu flows | tp %llu fp %llu tn %llu fn %llu | "
      "precision %.2f%% recall %.2f%% accuracy %.2f%%\n",
      static_cast<unsigned long long>(c.total()), static_cast<unsigned long long>(c.tp),
      static_cast<unsigned long long>(c.fp), static_cast<unsigned long long>(c.tn),
      static_cast<unsigned long long>(c.fn), c.precision() * 100.0, c.recall() * 100.0,
      c.accuracy() * 100.0);
}

}  // namespace dnsctx::analysis
