// dnsctx — per-household views of the study.
//
// The paper aggregates over the neighborhood (its vantage point only
// resolves houses, §3); this module asks how much the picture varies
// *between* households — class mixes, DNS dependence, and lookup rates
// per house.
#pragma once

#include <vector>

#include "analysis/classify.hpp"
#include "util/stats.hpp"

namespace dnsctx::analysis {

struct HouseSummary {
  Ipv4Addr house;
  std::uint64_t conns = 0;
  std::uint64_t lookups = 0;
  ClassCounts counts;

  [[nodiscard]] double blocked_share() const { return counts.share(counts.blocked()); }
  [[nodiscard]] double no_dns_share() const { return counts.share(counts.n); }
  [[nodiscard]] double lookups_per_conn() const {
    return conns ? static_cast<double>(lookups) / static_cast<double>(conns) : 0.0;
  }
};

struct PerHouseAnalysis {
  std::vector<HouseSummary> houses;  ///< sorted by connection count, descending

  // Across-house distributions (one sample per house).
  Cdf blocked_share;
  Cdf no_dns_share;
  Cdf lookups_per_conn;
  Cdf conns_per_house;

  /// Share of total connections produced by the busiest 10% of houses —
  /// how head-heavy the neighborhood is.
  [[nodiscard]] double top_decile_conn_share() const;
};

[[nodiscard]] PerHouseAnalysis analyze_per_house(const capture::Dataset& ds,
                                                 const Classified& classified);

/// A two-sided confidence interval on a share.
struct ShareCi {
  double lo = 0.0;
  double hi = 0.0;
};

/// Cluster-bootstrap confidence intervals for the Table 2 class shares:
/// houses are the sampling unit (connections within a house are
/// correlated, so resampling connections would understate uncertainty).
struct Table2Ci {
  ShareCi n, lc, p, sc, r;
  std::size_t replicates = 0;
  double confidence = 0.95;
};

[[nodiscard]] Table2Ci bootstrap_table2_ci(const PerHouseAnalysis& per_house,
                                           std::size_t replicates = 500,
                                           double confidence = 0.95,
                                           std::uint64_t seed = 1);

}  // namespace dnsctx::analysis
