#include "analysis/export.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "util/strings.hpp"

namespace dnsctx::analysis {

void write_cdf_csv(std::ostream& os, const Cdf& cdf, const std::string& x_label,
                   std::size_t points) {
  os << x_label << ",cdf\n";
  if (cdf.empty()) return;
  const std::size_t n = std::max<std::size_t>(points, 2);
  for (std::size_t i = 0; i <= n; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(n);
    os << strfmt("%.6g,%.6g\n", cdf.quantile(q), q);
  }
}

void write_table1_csv(std::ostream& os, const Study& study) {
  os << "platform,pct_houses,pct_lookups,pct_conns,pct_bytes,lookups\n";
  for (const auto& row : study.table1) {
    os << strfmt("%s,%.2f,%.2f,%.2f,%.2f,%llu\n", row.platform.c_str(), row.pct_houses,
                 row.pct_lookups, row.pct_conns, row.pct_bytes,
                 static_cast<unsigned long long>(row.lookups));
  }
}

void write_table2_csv(std::ostream& os, const Study& study) {
  const ClassCounts& c = study.classified.counts;
  os << "class,conns,share\n";
  const std::pair<const char*, std::uint64_t> rows[] = {
      {"N", c.n}, {"LC", c.lc}, {"P", c.p}, {"SC", c.sc}, {"R", c.r}};
  for (const auto& [name, count] : rows) {
    os << strfmt("%s,%llu,%.6g\n", name, static_cast<unsigned long long>(count),
                 c.share(count));
  }
}

namespace {

[[nodiscard]] std::string slug(const std::string& s) {
  std::string out;
  for (char ch : s) {
    out.push_back(std::isalnum(static_cast<unsigned char>(ch))
                      ? static_cast<char>(std::tolower(static_cast<unsigned char>(ch)))
                      : '_');
  }
  return out;
}

void to_file(const std::string& path, const std::function<void(std::ostream&)>& writer,
             std::size_t& written) {
  std::ofstream os{path};
  if (!os) throw std::runtime_error{"export_study_csv: cannot open " + path};
  writer(os);
  ++written;
}

}  // namespace

std::size_t export_study_csv(const Study& study, const std::string& dir) {
  std::size_t written = 0;
  const std::string base = dir.empty() ? "." : dir;

  to_file(base + "/fig1_gap_cdf.csv",
          [&](std::ostream& os) { write_cdf_csv(os, study.blocking.gap_ms, "gap_ms"); },
          written);

  const PerformanceAnalysis& p = study.performance;
  const std::pair<const char*, const Cdf*> perf_series[] = {
      {"fig2_lookup_all", &p.lookup_ms_all}, {"fig2_lookup_sc", &p.lookup_ms_sc},
      {"fig2_lookup_r", &p.lookup_ms_r},     {"fig2_contrib_all", &p.contrib_all},
      {"fig2_contrib_sc", &p.contrib_sc},    {"fig2_contrib_r", &p.contrib_r},
  };
  for (const auto& [name, cdf] : perf_series) {
    const bool is_contrib = std::string{name}.find("contrib") != std::string::npos;
    to_file(base + "/" + name + ".csv",
            [&](std::ostream& os) {
              write_cdf_csv(os, *cdf, is_contrib ? "contribution_pct" : "lookup_ms");
            },
            written);
  }

  for (const auto& platform : study.platforms) {
    const std::string tag = slug(platform.platform);
    if (!platform.r_lookup_ms.empty()) {
      to_file(base + "/fig3_rlookup_" + tag + ".csv",
              [&](std::ostream& os) {
                write_cdf_csv(os, platform.r_lookup_ms, "lookup_ms");
              },
              written);
    }
    if (!platform.throughput_bps.empty()) {
      to_file(base + "/fig3_throughput_" + tag + ".csv",
              [&](std::ostream& os) {
                write_cdf_csv(os, platform.throughput_bps, "throughput_bps");
              },
              written);
    }
    if (platform.platform == "Google" && !platform.throughput_bps_filtered.empty()) {
      to_file(base + "/fig3_throughput_google_filtered.csv",
              [&](std::ostream& os) {
                write_cdf_csv(os, platform.throughput_bps_filtered, "throughput_bps");
              },
              written);
    }
  }

  to_file(base + "/table1.csv", [&](std::ostream& os) { write_table1_csv(os, study); },
          written);
  to_file(base + "/table2.csv", [&](std::ostream& os) { write_table2_csv(os, study); },
          written);
  return written;
}

}  // namespace dnsctx::analysis
