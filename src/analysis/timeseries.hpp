// dnsctx — time-series views of the passive datasets.
//
// The paper reports aggregates over its week; operators usually also
// want rates over time (the diurnal shape, per-class trends, query-rate
// sanity checks like §8's lookups/sec/house). This module buckets the
// logs into fixed windows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/classify.hpp"

namespace dnsctx::analysis {

/// Per-bucket activity counters.
struct TimeBucket {
  SimTime start;
  std::uint64_t conns = 0;
  std::uint64_t lookups = 0;
  std::uint64_t blocked_conns = 0;  ///< SC + R
  std::uint64_t bytes = 0;          ///< orig + resp

  [[nodiscard]] double blocked_share() const {
    return conns ? static_cast<double>(blocked_conns) / static_cast<double>(conns) : 0.0;
  }
};

struct TimeSeries {
  SimDuration bucket_width;
  std::vector<TimeBucket> buckets;
  std::size_t houses = 0;

  /// Average DNS lookups per second per house in a bucket (cf. Table 3's
  /// lookups/sec/house row).
  [[nodiscard]] double lookups_per_sec_per_house(std::size_t bucket) const;

  /// Peak-to-trough conn-rate ratio — the diurnal swing.
  [[nodiscard]] double diurnal_swing() const;
};

/// Bucket a dataset (optionally with classification for blocked counts;
/// pass nullptr to skip). Buckets span [first event, last event].
[[nodiscard]] TimeSeries build_time_series(const capture::Dataset& ds,
                                           const Classified* classified,
                                           SimDuration bucket_width = SimDuration::hours(1));

/// Render as an aligned text table for reports.
[[nodiscard]] std::string format_time_series(const TimeSeries& ts);

}  // namespace dnsctx::analysis
