#include "analysis/failures.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "analysis/classify.hpp"
#include "util/strings.hpp"

namespace dnsctx::analysis {

namespace {

[[nodiscard]] std::uint64_t chain_key(const capture::DnsRecord& rec) {
  return (static_cast<std::uint64_t>(rec.query.id()) << 16) |
         static_cast<std::uint16_t>(rec.qtype);
}

}  // namespace

void ChainTracker::close_recovered(const Chain& chain, std::int64_t answer_us) {
  // Only reachable by extending an existing chain, so len >= 2.
  ++counts_.retry_chains;
  counts_.retry_lookups += chain.len - 1;
  ++counts_.recovered_chains;
  counts_.recovered_wait_us += answer_us - chain.first_us;
  ++counts_.chain_len_hist[std::min<std::uint32_t>(chain.len, 8) - 1];
  if (keep_samples_) {
    recovered_ms_.add(static_cast<double>(answer_us - chain.first_us) / 1000.0);
  }
}

void ChainTracker::fold_failed(FailureCounts& out, const Chain& chain) {
  if (chain.len >= 2) {
    ++out.retry_chains;
    out.retry_lookups += chain.len - 1;
  }
  ++out.failed_chains;
  out.failed_wait_us += chain.last_end_us - chain.first_us;
  ++out.chain_len_hist[std::min<std::uint32_t>(chain.len, 8) - 1];
}

void ChainTracker::close_failed(const Chain& chain) {
  fold_failed(counts_, chain);
  if (keep_samples_) {
    failed_ms_.add(static_cast<double>(chain.last_end_us - chain.first_us) / 1000.0);
  }
}

void ChainTracker::on_dns(const capture::DnsRecord& rec) {
  ++counts_.lookups;
  bool definitive = false;  // the client got its answer and stops retrying
  if (!rec.answered) {
    ++counts_.unanswered;
  } else {
    switch (rec.rcode) {
      case dns::Rcode::kNoError:
        rec.answers.empty() ? ++counts_.nodata : ++counts_.answered_ok;
        definitive = true;
        break;
      case dns::Rcode::kNxDomain:
        // Authoritative "no such name": a definitive (if unwelcome)
        // answer — stubs do not retry it.
        ++counts_.nxdomain;
        definitive = true;
        break;
      case dns::Rcode::kServFail:
        ++counts_.servfail;
        break;
      default:
        ++counts_.other_rcode;
        break;
    }
  }

  const std::int64_t ts_us = rec.ts.count_us();
  const std::int64_t end_us = rec.response_time().count_us();
  const std::uint64_t key = chain_key(rec);
  House& house = houses_[rec.client_ip];
  if (const auto it = house.chains.find(key); it != house.chains.end()) {
    Chain& chain = it->second;
    if (ts_us <= chain.last_end_us + gap_.count_us()) {
      ++chain.len;
      chain.last_end_us = std::max(chain.last_end_us, end_us);
      if (definitive) {
        close_recovered(chain, end_us);
        house.chains.erase(key);
      }
      return;
    }
    // Too late to belong to the old chain: the client gave up back then.
    close_failed(chain);
    if (definitive) {
      house.chains.erase(key);
    } else {
      chain = Chain{ts_us, end_us, 1};
    }
    return;
  }
  if (!definitive) {
    house.chains.try_emplace(key, Chain{ts_us, end_us, 1});
  }
}

void ChainTracker::on_conn(const capture::ConnRecord& rec) {
  if (rec.state == capture::ConnState::kS0) ++counts_.s0_conns;
  if (rec.state == capture::ConnState::kRej) ++counts_.rej_conns;
}

void ChainTracker::evict_before(SimTime dns_frontier) {
  const std::int64_t frontier_us = dns_frontier.count_us();
  std::vector<Ipv4Addr> dead_houses;
  for (auto& [addr, house] : houses_) {
    std::vector<std::uint64_t> dead;
    for (const auto& [key, chain] : house.chains) {
      // A future record has ts >= frontier; extension requires
      // ts <= last_end + gap, so anything strictly past that is closed.
      if (chain.last_end_us + gap_.count_us() < frontier_us) {
        close_failed(chain);
        dead.push_back(key);
      }
    }
    for (const std::uint64_t key : dead) house.chains.erase(key);
    if (house.chains.empty()) dead_houses.push_back(addr);
  }
  for (const Ipv4Addr addr : dead_houses) houses_.erase(addr);
}

void ChainTracker::fold_into(FailureCounts& out) const {
  out = counts_;
  for (const auto& [addr, house] : houses_) {
    for (const auto& [key, chain] : house.chains) fold_failed(out, chain);
  }
}

void ChainTracker::absorb(ChainTracker&& other) {
  for (auto& [addr, house] : other.houses_) {
    if (houses_.contains(addr)) {
      throw std::logic_error{"ChainTracker::absorb: house overlap between engines"};
    }
    houses_.try_emplace(addr, std::move(house));
  }
  other.houses_.clear();

  const FailureCounts& o = other.counts_;
  counts_.lookups += o.lookups;
  counts_.answered_ok += o.answered_ok;
  counts_.nodata += o.nodata;
  counts_.nxdomain += o.nxdomain;
  counts_.servfail += o.servfail;
  counts_.other_rcode += o.other_rcode;
  counts_.unanswered += o.unanswered;
  counts_.retry_chains += o.retry_chains;
  counts_.retry_lookups += o.retry_lookups;
  counts_.recovered_chains += o.recovered_chains;
  counts_.failed_chains += o.failed_chains;
  for (std::size_t i = 0; i < counts_.chain_len_hist.size(); ++i) {
    counts_.chain_len_hist[i] += o.chain_len_hist[i];
  }
  counts_.recovered_wait_us += o.recovered_wait_us;
  counts_.failed_wait_us += o.failed_wait_us;
  counts_.s0_conns += o.s0_conns;
  counts_.rej_conns += o.rej_conns;
  other.counts_ = FailureCounts{};

  recovered_ms_.absorb(other.recovered_ms_);
  failed_ms_.absorb(other.failed_ms_);
}

FailureReport build_failure_report(const capture::Dataset& ds, FailureReportConfig cfg) {
  ChainTracker tracker{cfg.chain_gap, /*keep_samples=*/true};
  for (const auto& rec : ds.dns) tracker.on_dns(rec);
  for (const auto& rec : ds.conns) tracker.on_conn(rec);
  tracker.evict_before(SimTime::max());  // close everything, sampled

  FailureReport report;
  tracker.fold_into(report.counts);
  report.recovered_ms = tracker.recovered_ms();
  report.failed_ms = tracker.failed_ms();
  // Sort now so concurrent report/export readers stay lock-free.
  report.recovered_ms.seal();
  report.failed_ms.seal();
  return report;
}

std::string format_failure_report(const FailureReport& report) {
  const FailureCounts& c = report.counts;
  const auto pct = [&](std::uint64_t part) {
    return c.lookups ? 100.0 * static_cast<double>(part) / static_cast<double>(c.lookups)
                     : 0.0;
  };
  std::string out;
  out += "Failure report (monitor-visible recovery behaviour)\n";
  out += strfmt("  lookups          %10llu\n",
                static_cast<unsigned long long>(c.lookups));
  out += strfmt("  answered (addrs) %10llu  (%5.2f%%)\n",
                static_cast<unsigned long long>(c.answered_ok), pct(c.answered_ok));
  out += strfmt("  nodata           %10llu  (%5.2f%%)\n",
                static_cast<unsigned long long>(c.nodata), pct(c.nodata));
  out += strfmt("  nxdomain         %10llu  (%5.2f%%)\n",
                static_cast<unsigned long long>(c.nxdomain), pct(c.nxdomain));
  out += strfmt("  servfail         %10llu  (%5.2f%%)\n",
                static_cast<unsigned long long>(c.servfail), pct(c.servfail));
  out += strfmt("  other rcode      %10llu  (%5.2f%%)\n",
                static_cast<unsigned long long>(c.other_rcode), pct(c.other_rcode));
  out += strfmt("  unanswered       %10llu  (%5.2f%%)\n",
                static_cast<unsigned long long>(c.unanswered), pct(c.unanswered));
  out += strfmt("  retry chains     %10llu  (%llu extra lookups)\n",
                static_cast<unsigned long long>(c.retry_chains),
                static_cast<unsigned long long>(c.retry_lookups));
  out += strfmt("  recovered        %10llu\n",
                static_cast<unsigned long long>(c.recovered_chains));
  out += strfmt("  failed           %10llu\n",
                static_cast<unsigned long long>(c.failed_chains));
  out += "  chain length     ";
  for (std::size_t i = 0; i < c.chain_len_hist.size(); ++i) {
    out += strfmt("%zu%s:%llu ", i + 1, i + 1 == c.chain_len_hist.size() ? "+" : "",
                  static_cast<unsigned long long>(c.chain_len_hist[i]));
  }
  out += "\n";
  if (!report.recovered_ms.empty()) {
    out += strfmt("  recovery ms      p50 %.1f  p90 %.1f  p99 %.1f\n",
                  report.recovered_ms.quantile(0.5), report.recovered_ms.quantile(0.9),
                  report.recovered_ms.quantile(0.99));
  }
  if (!report.failed_ms.empty()) {
    out += strfmt("  failed-chain ms  p50 %.1f  p90 %.1f  p99 %.1f\n",
                  report.failed_ms.quantile(0.5), report.failed_ms.quantile(0.9),
                  report.failed_ms.quantile(0.99));
  }
  out += strfmt("  conn S0 / REJ    %10llu / %llu\n",
                static_cast<unsigned long long>(c.s0_conns),
                static_cast<unsigned long long>(c.rej_conns));
  return out;
}

std::string format_class_shift(const ClassCounts& baseline, const ClassCounts& impaired) {
  std::string out;
  out += "Class shift vs baseline (share of classified connections)\n";
  out += strfmt("  %-4s %12s %12s %9s\n", "cls", "baseline", "impaired", "shift");
  const struct Row {
    const char* name;
    std::uint64_t base;
    std::uint64_t cur;
  } rows[] = {
      {"N", baseline.n, impaired.n},   {"LC", baseline.lc, impaired.lc},
      {"P", baseline.p, impaired.p},   {"SC", baseline.sc, impaired.sc},
      {"R", baseline.r, impaired.r},
  };
  for (const Row& row : rows) {
    const double b = baseline.share(row.base) * 100.0;
    const double i = impaired.share(row.cur) * 100.0;
    out += strfmt("  %-4s %11.2f%% %11.2f%% %+8.2fpp\n", row.name, b, i, i - b);
  }
  out += strfmt("  total conns: baseline %llu, impaired %llu\n",
                static_cast<unsigned long long>(baseline.total()),
                static_cast<unsigned long long>(impaired.total()));
  return out;
}

}  // namespace dnsctx::analysis
