#include "analysis/truth.hpp"

#include "util/flat_map.hpp"
#include "util/strings.hpp"

namespace dnsctx::analysis {

bool TruthComparison::expected_label(netsim::TrueClass t, ConnClass& out) {
  switch (t) {
    case netsim::TrueClass::kNoDns: out = ConnClass::kN; return true;
    case netsim::TrueClass::kLocalCache: out = ConnClass::kLC; return true;
    case netsim::TrueClass::kPrefetched: out = ConnClass::kP; return true;
    case netsim::TrueClass::kSharedCache: out = ConnClass::kSC; return true;
    case netsim::TrueClass::kRequired: out = ConnClass::kR; return true;
    case netsim::TrueClass::kUnknown:
    case netsim::TrueClass::kPushed:
    case netsim::TrueClass::kDnsTransport:
      return false;
  }
  return false;
}

std::uint64_t TruthComparison::misclassified_in(netsim::TrueClass t) const {
  ConnClass expected{};
  if (!expected_label(t, expected)) return row_total(t);
  return row_total(t) - count(t, expected);
}

std::uint64_t TruthComparison::misclassified() const {
  std::uint64_t n = 0;
  for (std::size_t r = 0; r < kRows; ++r) {
    n += misclassified_in(static_cast<netsim::TrueClass>(r));
  }
  return n;
}

TruthComparison compare_with_truth(const capture::Dataset& ds, const Classified& cls,
                                   const std::vector<capture::TruthFlow>& truth) {
  TruthComparison tc;
  struct Entry {
    netsim::TrueClass cls = netsim::TrueClass::kUnknown;
    bool matched = false;
  };
  util::FlatMap<FiveTuple, Entry, FiveTupleHash> by_tuple;
  by_tuple.reserve(truth.size());
  for (const auto& t : truth) by_tuple.try_emplace(t.tuple, Entry{t.cls, false});

  const std::size_t n = std::min(ds.conns.size(), cls.classes.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& c = ds.conns[i];
    const FiveTuple tuple{c.orig_ip, c.resp_ip, c.orig_port, c.resp_port, c.proto};
    const auto it = by_tuple.find(tuple);
    if (it == by_tuple.end()) {
      ++tc.conns_without_truth;
      continue;
    }
    it->second.matched = true;
    tc.matrix[static_cast<std::size_t>(it->second.cls)]
             [static_cast<std::size_t>(cls.classes[i])] += 1;
  }
  for (const auto& [tuple, e] : by_tuple) {
    if (!e.matched) ++tc.truth_without_conn;
  }
  return tc;
}

std::string render_truth_report(const TruthComparison& tc) {
  std::string out;
  out += "truth\\inferred          N        LC         P        SC         R  accuracy\n";
  for (std::size_t r = 0; r < TruthComparison::kRows; ++r) {
    const auto t = static_cast<netsim::TrueClass>(r);
    const std::uint64_t row = tc.row_total(t);
    if (row == 0) continue;
    const double acc = 1.0 - static_cast<double>(tc.misclassified_in(t)) /
                                 static_cast<double>(row);
    out += strfmt("%-14s", std::string{netsim::to_string(t)}.c_str());
    for (std::size_t c = 0; c < TruthComparison::kCols; ++c) {
      out += strfmt(" %9llu",
                    static_cast<unsigned long long>(tc.matrix[r][c]));
    }
    out += strfmt("   %6.2f%%\n", acc * 100.0);
  }
  out += strfmt("matched %llu conns; misclassified %llu (%.2f%%); "
                "no-truth conns %llu; unseen truth flows %llu\n",
                static_cast<unsigned long long>(tc.total()),
                static_cast<unsigned long long>(tc.misclassified()),
                tc.misclassified_frac() * 100.0,
                static_cast<unsigned long long>(tc.conns_without_truth),
                static_cast<unsigned long long>(tc.truth_without_conn));
  return out;
}

}  // namespace dnsctx::analysis
