#include "analysis/resolvers.hpp"

#include <unordered_map>

#include "util/parallel.hpp"

namespace dnsctx::analysis {

namespace {

using PerfMap = std::unordered_map<std::string, PlatformPerf>;

void merge_perf(PerfMap& into, PerfMap&& part) {
  for (auto& [platform, p] : part) {
    const auto [it, inserted] = into.try_emplace(platform, std::move(p));
    if (inserted) continue;
    PlatformPerf& dst = it->second;
    dst.sc += p.sc;
    dst.r += p.r;
    dst.conncheck_conns += p.conncheck_conns;
    dst.total_conns += p.total_conns;
    dst.r_lookup_ms.absorb(p.r_lookup_ms);
    dst.throughput_bps.absorb(p.throughput_bps);
    dst.throughput_bps_filtered.absorb(p.throughput_bps_filtered);
  }
}

}  // namespace

std::vector<PlatformPerf> analyze_platforms(const capture::Dataset& ds,
                                            const PairingResult& pairing,
                                            const Classified& classified,
                                            const PlatformDirectory& dir,
                                            const std::string& conncheck_name,
                                            unsigned threads) {
  PerfMap perf = util::parallel_map_reduce<PerfMap>(
      threads, ds.conns.size(), util::kDefaultGrain,
      [&](std::size_t begin, std::size_t end) {
        PerfMap part;
        for (std::size_t i = begin; i < end; ++i) {
          const PairedConn& pc = pairing.conns[i];
          if (pc.dns_idx < 0) continue;
          const auto& dns = ds.dns[static_cast<std::size_t>(pc.dns_idx)];
          const std::string& platform = dir.label(dns.resolver_ip);
          PlatformPerf& p = part[platform];
          p.platform = platform;
          ++p.total_conns;
          const bool is_conncheck = dns.query == conncheck_name;
          if (is_conncheck) ++p.conncheck_conns;

          const ConnClass cls = classified.classes[i];
          if (cls != ConnClass::kSC && cls != ConnClass::kR) continue;
          if (cls == ConnClass::kSC) {
            ++p.sc;
          } else {
            ++p.r;
            p.r_lookup_ms.add(dns.duration.to_ms());
          }
          const double tput = ds.conns[i].throughput_bps();
          if (tput > 0.0) {
            p.throughput_bps.add(tput);
            if (!is_conncheck) p.throughput_bps_filtered.add(tput);
          }
        }
        return part;
      },
      merge_perf);

  std::vector<PlatformPerf> out;
  for (const auto& platform : dir.platforms()) {
    const auto it = perf.find(platform);
    if (it != perf.end()) out.push_back(std::move(it->second));
  }
  if (const auto it = perf.find("other"); it != perf.end()) {
    out.push_back(std::move(it->second));
  }
  return out;
}

}  // namespace dnsctx::analysis
