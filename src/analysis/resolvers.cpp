#include "analysis/resolvers.hpp"

#include "util/names.hpp"
#include "util/parallel.hpp"

namespace dnsctx::analysis {

namespace {

/// Dense per-platform accumulator, indexed by PlatformId. Per-platform
/// Cdf samples are absorbed in fixed chunk order (parallel_map_reduce
/// merges chunks in order), so the sample sequence — and every quantile
/// derived from it — is identical for any thread count.
using PerfVec = std::vector<PlatformPerf>;

void merge_perf(PerfVec& into, PerfVec&& part) {
  if (into.size() < part.size()) into.resize(part.size());
  for (std::size_t id = 0; id < part.size(); ++id) {
    PlatformPerf& p = part[id];
    PlatformPerf& dst = into[id];
    dst.sc += p.sc;
    dst.r += p.r;
    dst.conncheck_conns += p.conncheck_conns;
    dst.total_conns += p.total_conns;
    dst.r_lookup_ms.absorb(p.r_lookup_ms);
    dst.throughput_bps.absorb(p.throughput_bps);
    dst.throughput_bps_filtered.absorb(p.throughput_bps_filtered);
  }
}

}  // namespace

std::vector<PlatformPerf> analyze_platforms(const capture::Dataset& ds,
                                            const PairingResult& pairing,
                                            const Classified& classified,
                                            const PlatformDirectory& dir,
                                            const std::string& conncheck_name,
                                            unsigned threads) {
  // Intern the conncheck hostname once: the per-connection test becomes
  // an integer compare instead of a string compare.
  const util::InternedName conncheck{conncheck_name};
  const std::size_t nplatforms = dir.platform_count();
  PerfVec perf = util::parallel_map_reduce<PerfVec>(
      threads, ds.conns.size(), util::kDefaultGrain,
      [&](std::size_t begin, std::size_t end) {
        PerfVec part(nplatforms);
        for (std::size_t i = begin; i < end; ++i) {
          const PairedConn& pc = pairing.conns[i];
          if (pc.dns_idx < 0) continue;
          const auto& dns = ds.dns[static_cast<std::size_t>(pc.dns_idx)];
          PlatformPerf& p = part[dir.id_of(dns.resolver_ip)];
          ++p.total_conns;
          const bool is_conncheck = dns.query == conncheck;
          if (is_conncheck) ++p.conncheck_conns;

          const ConnClass cls = classified.classes[i];
          if (cls != ConnClass::kSC && cls != ConnClass::kR) continue;
          if (cls == ConnClass::kSC) {
            ++p.sc;
          } else {
            ++p.r;
            p.r_lookup_ms.add(dns.duration.to_ms());
          }
          const double tput = ds.conns[i].throughput_bps();
          if (tput > 0.0) {
            p.throughput_bps.add(tput);
            if (!is_conncheck) p.throughput_bps_filtered.add(tput);
          }
        }
        return part;
      },
      merge_perf);
  perf.resize(nplatforms);

  std::vector<PlatformPerf> out;
  for (PlatformId id = 0; id < nplatforms; ++id) {
    PlatformPerf& p = perf[id];
    if (p.total_conns == 0) continue;  // the platform was never touched
    p.platform = dir.name_of(id);
    // Sort now so concurrent report/export readers stay lock-free.
    p.r_lookup_ms.seal();
    p.throughput_bps.seal();
    p.throughput_bps_filtered.seal();
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace dnsctx::analysis
