#include "analysis/classify.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace dnsctx::analysis {

std::string to_string(ConnClass c) {
  switch (c) {
    case ConnClass::kN: return "N";
    case ConnClass::kLC: return "LC";
    case ConnClass::kP: return "P";
    case ConnClass::kSC: return "SC";
    case ConnClass::kR: return "R";
  }
  return "?";
}

std::unordered_map<Ipv4Addr, double, Ipv4Hash> derive_resolver_thresholds(
    const capture::Dataset& ds, const ClassifyConfig& cfg) {
  // Collect per-resolver answered-lookup durations.
  std::unordered_map<Ipv4Addr, Cdf, Ipv4Hash> durations;
  for (const auto& d : ds.dns) {
    if (!d.answered) continue;
    durations[d.resolver_ip].add(d.duration.to_ms());
  }
  std::unordered_map<Ipv4Addr, double, Ipv4Hash> out;
  for (auto& [resolver, cdf] : durations) {
    if (cdf.count() < cfg.per_resolver_min_lookups) continue;
    // The cache-hit mode sits at the network RTT: histogram the low end
    // of the distribution and take the most populated 0.5 ms bin.
    const double lo = cdf.min();
    Histogram h{lo, lo + 40.0, 80};
    for (const double v : cdf.sorted()) {
      if (v < lo + 40.0) h.add(v);
    }
    const double mode_ms = h.bin_low(h.mode_bin()) + h.bin_width() / 2.0;
    // Threshold just above the mode, with the paper's "small amount of
    // rounding" (2 ms RTT → 5 ms threshold).
    const double threshold = std::ceil(mode_ms + std::max(2.0, 0.55 * mode_ms));
    out[resolver] = threshold;
  }
  return out;
}

Classified classify_connections(const capture::Dataset& ds, const PairingResult& pairing,
                                const ClassifyConfig& cfg) {
  Classified out;
  out.classes.resize(ds.conns.size(), ConnClass::kN);
  out.resolver_threshold_ms = derive_resolver_thresholds(ds, cfg);

  for (std::size_t i = 0; i < ds.conns.size(); ++i) {
    const PairedConn& pc = pairing.conns[i];
    if (pc.dns_idx < 0) {
      out.classes[i] = ConnClass::kN;
      ++out.counts.n;
      continue;
    }
    const auto& dns = ds.dns[static_cast<std::size_t>(pc.dns_idx)];
    if (pc.gap > cfg.blocked_threshold) {
      // Not blocked: local information was on hand.
      if (pc.first_use) {
        out.classes[i] = ConnClass::kP;
        ++out.counts.p;
        if (pc.expired_pairing) ++out.p_expired;
        out.p_gap_sec.add(pc.gap.to_sec());
      } else {
        out.classes[i] = ConnClass::kLC;
        ++out.counts.lc;
        if (pc.expired_pairing) {
          ++out.lc_expired;
          const SimDuration late = pc.gap - (dns.expires_at() - dns.response_time());
          out.lc_violation_late_sec.add(std::max(late.to_sec(), 0.0));
        }
        out.lc_gap_sec.add(pc.gap.to_sec());
      }
      continue;
    }
    // Blocked: split by lookup duration against the resolver threshold.
    const auto it = out.resolver_threshold_ms.find(dns.resolver_ip);
    const double threshold =
        it != out.resolver_threshold_ms.end() ? it->second : cfg.default_threshold_ms;
    if (dns.duration.to_ms() <= threshold) {
      out.classes[i] = ConnClass::kSC;
      ++out.counts.sc;
    } else {
      out.classes[i] = ConnClass::kR;
      ++out.counts.r;
    }
  }
  return out;
}

}  // namespace dnsctx::analysis
