#include "analysis/classify.hpp"

#include <algorithm>
#include <cmath>

#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace dnsctx::analysis {

namespace {

/// Per-chunk accumulator for classify_connections. Counts are exact
/// integer sums and the Cdfs concatenate in chunk order, so the merged
/// result is identical for any thread count.
struct ClassifyAcc {
  ClassCounts counts;
  std::uint64_t lc_expired = 0;
  std::uint64_t p_expired = 0;
  Cdf lc_gap_sec;
  Cdf p_gap_sec;
  Cdf lc_violation_late_sec;
};

}  // namespace

std::string_view to_string(ConnClass c) {
  switch (c) {
    case ConnClass::kN: return "N";
    case ConnClass::kLC: return "LC";
    case ConnClass::kP: return "P";
    case ConnClass::kSC: return "SC";
    case ConnClass::kR: return "R";
  }
  return "?";
}

util::FlatMap<Ipv4Addr, double> derive_resolver_thresholds(
    const capture::Dataset& ds, const ClassifyConfig& cfg, unsigned threads) {
  // Collect per-resolver answered-lookup durations: map chunks of the
  // DNS log to per-resolver Cdfs, merge in chunk order. Each resolver's
  // sample multiset matches the sequential scan exactly.
  using Durations = util::FlatMap<Ipv4Addr, Cdf>;
  const Durations durations = util::parallel_map_reduce<Durations>(
      threads, ds.dns.size(), util::kDefaultGrain,
      [&](std::size_t begin, std::size_t end) {
        Durations part;
        for (std::size_t i = begin; i < end; ++i) {
          const auto& d = ds.dns[i];
          if (!d.answered) continue;
          part[d.resolver_ip].add(d.duration.to_ms());
        }
        return part;
      },
      [](Durations& into, Durations&& part) {
        for (auto& [resolver, cdf] : part) into[resolver].absorb(cdf);
      });

  util::FlatMap<Ipv4Addr, double> out;
  for (const auto& [resolver, cdf] : durations) {
    if (cdf.count() < cfg.per_resolver_min_lookups) continue;
    // The cache-hit mode sits at the network RTT: histogram the low end
    // of the distribution and take the most populated 0.5 ms bin. Bin
    // counts are order-independent, so the samples never need sorting.
    const auto samples = cdf.values();
    const double lo = *std::min_element(samples.begin(), samples.end());
    Histogram h{lo, lo + 40.0, 80};
    for (const double v : samples) {
      if (v < lo + 40.0) h.add(v);
    }
    const double mode_ms = h.bin_low(h.mode_bin()) + h.bin_width() / 2.0;
    // Threshold just above the mode, with the paper's "small amount of
    // rounding" (2 ms RTT → 5 ms threshold).
    const double threshold = std::ceil(mode_ms + std::max(2.0, 0.55 * mode_ms));
    out[resolver] = threshold;
  }
  return out;
}

Classified classify_connections(const capture::Dataset& ds, const PairingResult& pairing,
                                const ClassifyConfig& cfg, unsigned threads) {
  Classified out;
  out.classes.resize(ds.conns.size(), ConnClass::kN);
  out.resolver_threshold_ms = derive_resolver_thresholds(ds, cfg, threads);

  ClassifyAcc acc = util::parallel_map_reduce<ClassifyAcc>(
      threads, ds.conns.size(), util::kDefaultGrain,
      [&](std::size_t begin, std::size_t end) {
        ClassifyAcc part;
        for (std::size_t i = begin; i < end; ++i) {
          const PairedConn& pc = pairing.conns[i];
          if (pc.dns_idx < 0) {
            out.classes[i] = ConnClass::kN;
            ++part.counts.n;
            continue;
          }
          const auto& dns = ds.dns[static_cast<std::size_t>(pc.dns_idx)];
          if (pc.gap > cfg.blocked_threshold) {
            // Not blocked: local information was on hand.
            if (pc.first_use) {
              out.classes[i] = ConnClass::kP;
              ++part.counts.p;
              if (pc.expired_pairing) ++part.p_expired;
              part.p_gap_sec.add(pc.gap.to_sec());
            } else {
              out.classes[i] = ConnClass::kLC;
              ++part.counts.lc;
              if (pc.expired_pairing) {
                ++part.lc_expired;
                const SimDuration late = pc.gap - (dns.expires_at() - dns.response_time());
                part.lc_violation_late_sec.add(std::max(late.to_sec(), 0.0));
              }
              part.lc_gap_sec.add(pc.gap.to_sec());
            }
            continue;
          }
          // Blocked: split by lookup duration against the resolver threshold.
          const auto it = out.resolver_threshold_ms.find(dns.resolver_ip);
          const double threshold =
              it != out.resolver_threshold_ms.end() ? it->second : cfg.default_threshold_ms;
          if (dns.duration.to_ms() <= threshold) {
            out.classes[i] = ConnClass::kSC;
            ++part.counts.sc;
          } else {
            out.classes[i] = ConnClass::kR;
            ++part.counts.r;
          }
        }
        return part;
      },
      [](ClassifyAcc& into, ClassifyAcc&& part) {
        into.counts.n += part.counts.n;
        into.counts.lc += part.counts.lc;
        into.counts.p += part.counts.p;
        into.counts.sc += part.counts.sc;
        into.counts.r += part.counts.r;
        into.lc_expired += part.lc_expired;
        into.p_expired += part.p_expired;
        into.lc_gap_sec.absorb(part.lc_gap_sec);
        into.p_gap_sec.absorb(part.p_gap_sec);
        into.lc_violation_late_sec.absorb(part.lc_violation_late_sec);
      });

  out.counts = acc.counts;
  out.lc_expired = acc.lc_expired;
  out.p_expired = acc.p_expired;
  out.lc_gap_sec = std::move(acc.lc_gap_sec);
  out.p_gap_sec = std::move(acc.p_gap_sec);
  out.lc_violation_late_sec = std::move(acc.lc_violation_late_sec);
  // Sort now so concurrent report/export readers stay lock-free.
  out.lc_gap_sec.seal();
  out.p_gap_sec.seal();
  out.lc_violation_late_sec.seal();
  return out;
}

}  // namespace dnsctx::analysis
