#include "analysis/perhouse.hpp"

#include <algorithm>

#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace dnsctx::analysis {

PerHouseAnalysis analyze_per_house(const capture::Dataset& ds, const Classified& classified) {
  PerHouseAnalysis out;
  // Accumulate per house in first-seen order: combined with the stable
  // sort below, the houses list (and therefore the bootstrap draws) is
  // fully deterministic — no dependence on hash iteration order.
  util::FlatMap<Ipv4Addr, std::uint32_t> slot_of;
  std::vector<HouseSummary> summaries;
  const auto summary_for = [&](Ipv4Addr addr) -> HouseSummary& {
    const auto [it, inserted] =
        slot_of.try_emplace(addr, static_cast<std::uint32_t>(summaries.size()));
    if (inserted) {
      summaries.emplace_back();
      summaries.back().house = addr;
    }
    return summaries[it->second];
  };

  for (std::size_t i = 0; i < ds.conns.size(); ++i) {
    HouseSummary& h = summary_for(ds.conns[i].orig_ip);
    ++h.conns;
    if (i < classified.classes.size()) {
      switch (classified.classes[i]) {
        case ConnClass::kN: ++h.counts.n; break;
        case ConnClass::kLC: ++h.counts.lc; break;
        case ConnClass::kP: ++h.counts.p; break;
        case ConnClass::kSC: ++h.counts.sc; break;
        case ConnClass::kR: ++h.counts.r; break;
      }
    }
  }
  for (const auto& d : ds.dns) {
    ++summary_for(d.client_ip).lookups;
  }

  out.houses = std::move(summaries);
  std::stable_sort(out.houses.begin(), out.houses.end(),
                   [](const HouseSummary& a, const HouseSummary& b) { return a.conns > b.conns; });

  for (const auto& h : out.houses) {
    if (h.conns == 0) continue;  // DNS-only houses have no class shares
    out.blocked_share.add(h.blocked_share());
    out.no_dns_share.add(h.no_dns_share());
    out.lookups_per_conn.add(h.lookups_per_conn());
    out.conns_per_house.add(static_cast<double>(h.conns));
  }
  // Sort now so concurrent report/export readers stay lock-free.
  out.blocked_share.seal();
  out.no_dns_share.seal();
  out.lookups_per_conn.seal();
  out.conns_per_house.seal();
  return out;
}

Table2Ci bootstrap_table2_ci(const PerHouseAnalysis& per_house, std::size_t replicates,
                             double confidence, std::uint64_t seed) {
  Table2Ci out;
  out.replicates = replicates;
  out.confidence = confidence;
  const auto& houses = per_house.houses;
  if (houses.empty() || replicates == 0) return out;

  Rng rng{derive_seed(seed, "bootstrap-table2")};
  Cdf n_shares, lc_shares, p_shares, sc_shares, r_shares;
  for (std::size_t rep = 0; rep < replicates; ++rep) {
    ClassCounts total;
    for (std::size_t draw = 0; draw < houses.size(); ++draw) {
      const auto& h = houses[rng.bounded(houses.size())];
      total.n += h.counts.n;
      total.lc += h.counts.lc;
      total.p += h.counts.p;
      total.sc += h.counts.sc;
      total.r += h.counts.r;
    }
    if (total.total() == 0) continue;
    n_shares.add(total.share(total.n));
    lc_shares.add(total.share(total.lc));
    p_shares.add(total.share(total.p));
    sc_shares.add(total.share(total.sc));
    r_shares.add(total.share(total.r));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  auto ci = [&](const Cdf& c) {
    return c.empty() ? ShareCi{} : ShareCi{c.quantile(alpha), c.quantile(1.0 - alpha)};
  };
  out.n = ci(n_shares);
  out.lc = ci(lc_shares);
  out.p = ci(p_shares);
  out.sc = ci(sc_shares);
  out.r = ci(r_shares);
  return out;
}

double PerHouseAnalysis::top_decile_conn_share() const {
  if (houses.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& h : houses) total += h.conns;
  if (total == 0) return 0.0;
  const std::size_t decile = std::max<std::size_t>(1, houses.size() / 10);
  std::uint64_t top = 0;
  for (std::size_t i = 0; i < decile; ++i) top += houses[i].conns;
  return static_cast<double>(top) / static_cast<double>(total);
}

}  // namespace dnsctx::analysis
