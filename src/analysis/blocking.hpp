// dnsctx — the blocking heuristic (§4, Figure 1).
//
// The gap between a DNS response and the start of the connection that
// uses it is bimodal: connections blocked on the lookup start within
// milliseconds; connections using already-cached information start much
// later. The paper reads a knee near 20 ms off the CDF and adopts a
// conservative 100 ms classification threshold.
#pragma once

#include "analysis/pairing.hpp"
#include "util/stats.hpp"

namespace dnsctx::analysis {

struct BlockingAnalysis {
  Cdf gap_ms;        ///< Fig 1: gap for every paired connection, in ms
  double knee_ms = 0.0;  ///< detected density valley between the modes

  /// Fraction of paired connections whose gap is ≤ ms that were the
  /// first to use their lookup (91% below / 21% above the knee in the
  /// paper).
  double first_use_frac_below = 0.0;
  double first_use_frac_above = 0.0;

  [[nodiscard]] double frac_within_ms(double ms) const {
    return gap_ms.fraction_at_or_below(ms);
  }
};

/// The threshold the paper settles on (§4).
inline constexpr SimDuration kBlockedThreshold = SimDuration::ms(100);

/// Compute the Fig 1 distribution and knee diagnostics. Map-reduce over
/// fixed connection chunks: identical output for any `threads`.
[[nodiscard]] BlockingAnalysis analyze_blocking(const capture::Dataset& ds,
                                                const PairingResult& pairing,
                                                double knee_probe_ms = 20.0,
                                                unsigned threads = 1);

}  // namespace dnsctx::analysis
