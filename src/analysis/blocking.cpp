#include "analysis/blocking.hpp"

#include <algorithm>
#include <cmath>

#include "util/parallel.hpp"

namespace dnsctx::analysis {

namespace {

struct BlockingAcc {
  Cdf gap_ms;
  std::uint64_t below = 0, below_first = 0, above = 0, above_first = 0;
};

}  // namespace

BlockingAnalysis analyze_blocking(const capture::Dataset& ds, const PairingResult& pairing,
                                  double knee_probe_ms, unsigned threads) {
  BlockingAnalysis out;
  BlockingAcc acc = util::parallel_map_reduce<BlockingAcc>(
      threads, ds.conns.size(), util::kDefaultGrain,
      [&](std::size_t begin, std::size_t end) {
        BlockingAcc part;
        for (std::size_t i = begin; i < end; ++i) {
          const PairedConn& pc = pairing.conns[i];
          if (pc.dns_idx < 0) continue;
          const double gap_ms = pc.gap.to_ms();
          part.gap_ms.add(gap_ms);
          if (gap_ms <= knee_probe_ms) {
            ++part.below;
            if (pc.first_use) ++part.below_first;
          } else {
            ++part.above;
            if (pc.first_use) ++part.above_first;
          }
        }
        return part;
      },
      [](BlockingAcc& into, BlockingAcc&& part) {
        into.gap_ms.absorb(part.gap_ms);
        into.below += part.below;
        into.below_first += part.below_first;
        into.above += part.above;
        into.above_first += part.above_first;
      });
  out.gap_ms = std::move(acc.gap_ms);
  out.first_use_frac_below =
      acc.below ? static_cast<double>(acc.below_first) / static_cast<double>(acc.below) : 0.0;
  out.first_use_frac_above =
      acc.above ? static_cast<double>(acc.above_first) / static_cast<double>(acc.above) : 0.0;

  // Knee detection: histogram the gaps in log10(ms) space and find the
  // emptiest bin between the sub-second mode and the minutes mode.
  if (!out.gap_ms.empty()) {
    Histogram h{-1.0, 7.0, 64};  // 0.1 ms .. ~3 hours
    // Bin counts don't depend on sample order — skip the O(n log n) sort
    // (report-time quantiles sort lazily if anyone asks).
    for (const double g : out.gap_ms.values()) {
      h.add(std::log10(std::max(g, 0.11)));
    }
    // The knee is where the blocked mode dies out: find the low-end
    // (sub-second) density peak and walk right until the density falls
    // below a small fraction of it.
    std::size_t mode_bin = 0;
    std::uint64_t mode_count = 0;
    for (std::size_t b = 0; b < h.bin_count(); ++b) {
      if (h.bin_low(b) > 2.0) break;  // only consider the sub-100 ms region
      if (h.count_in(b) > mode_count) {
        mode_count = h.count_in(b);
        mode_bin = b;
      }
    }
    std::size_t knee_bin = mode_bin;
    for (std::size_t b = mode_bin; b < h.bin_count(); ++b) {
      knee_bin = b;
      if (h.count_in(b) <
          static_cast<std::uint64_t>(0.12 * static_cast<double>(mode_count))) {
        break;
      }
    }
    out.knee_ms = std::pow(10.0, h.bin_low(knee_bin) + h.bin_width() / 2.0);
  }
  // Sort now so concurrent report/export readers stay lock-free.
  out.gap_ms.seal();
  return out;
}

}  // namespace dnsctx::analysis
