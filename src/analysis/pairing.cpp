#include "analysis/pairing.hpp"

#include <algorithm>
#include <unordered_map>

namespace dnsctx::analysis {

namespace {

struct HouseAddrKey {
  Ipv4Addr client;
  Ipv4Addr answer;
  bool operator==(const HouseAddrKey&) const = default;
};
struct HouseAddrKeyHash {
  [[nodiscard]] std::size_t operator()(const HouseAddrKey& k) const noexcept {
    return Ipv4Hash{}(k.client) * 1000003 ^ Ipv4Hash{}(k.answer);
  }
};

/// One DNS transaction's relevance to an address, ordered by response
/// time (the instant the answer became available to the house).
struct Candidate {
  SimTime response;
  SimTime expires;
  std::uint64_t dns_idx;
};

}  // namespace

PairingResult pair_connections(const capture::Dataset& ds, PairingPolicy policy,
                               std::uint64_t seed) {
  PairingResult out;
  out.conns.resize(ds.conns.size());
  out.dns_use_count.assign(ds.dns.size(), 0);
  Rng rng{derive_seed(seed, "pairing-random")};

  // Index: (house, answered address) → candidates sorted by response time.
  std::unordered_map<HouseAddrKey, std::vector<Candidate>, HouseAddrKeyHash> index;
  for (std::size_t i = 0; i < ds.dns.size(); ++i) {
    const auto& d = ds.dns[i];
    if (!d.answered) continue;
    for (const auto& a : d.answers) {
      index[HouseAddrKey{d.client_ip, a.addr}].push_back(
          Candidate{d.response_time(), d.response_time() + SimDuration::sec(a.ttl), i});
    }
  }
  for (auto& [key, vec] : index) {
    std::sort(vec.begin(), vec.end(),
              [](const Candidate& a, const Candidate& b) { return a.response < b.response; });
  }

  // Connections are start-sorted, so first-use flags are assigned in
  // chronological order exactly as an online DN-Hunter would.
  for (std::size_t ci = 0; ci < ds.conns.size(); ++ci) {
    const auto& conn = ds.conns[ci];
    PairedConn& pc = out.conns[ci];
    const auto it = index.find(HouseAddrKey{conn.orig_ip, conn.resp_ip});
    if (it == index.end()) {
      ++out.unpaired;
      continue;
    }
    const auto& cands = it->second;
    // Last candidate whose response precedes (or equals) the conn start.
    const auto upper = std::upper_bound(
        cands.begin(), cands.end(), conn.start,
        [](SimTime t, const Candidate& c) { return t < c.response; });
    if (upper == cands.begin()) {
      ++out.unpaired;  // the answer arrived only after this connection
      continue;
    }

    // Collect non-expired candidates at conn start.
    std::uint32_t live = 0;
    std::int64_t chosen = -1;
    std::int64_t most_recent_live = -1;
    std::vector<std::uint64_t> live_set;  // only filled for kRandom
    for (auto iter = upper; iter != cands.begin();) {
      --iter;
      if (iter->expires > conn.start) {
        ++live;
        if (most_recent_live < 0) most_recent_live = static_cast<std::int64_t>(iter->dns_idx);
        if (policy == PairingPolicy::kRandom) live_set.push_back(iter->dns_idx);
      }
    }
    if (live > 0) {
      chosen = policy == PairingPolicy::kRandom
                   ? static_cast<std::int64_t>(live_set[rng.bounded(live_set.size())])
                   : most_recent_live;
      pc.expired_pairing = false;
    } else {
      chosen = static_cast<std::int64_t>(std::prev(upper)->dns_idx);  // most recent, expired
      pc.expired_pairing = true;
    }

    pc.dns_idx = chosen;
    pc.live_candidates = live;
    pc.gap = conn.start - ds.dns[static_cast<std::size_t>(chosen)].response_time();
    pc.first_use = out.dns_use_count[static_cast<std::size_t>(chosen)] == 0;
    ++out.dns_use_count[static_cast<std::size_t>(chosen)];

    ++out.paired;
    if (pc.expired_pairing) ++out.paired_expired;
    if (live <= 1) {
      ++out.unique_candidate;  // paper counts "only a single non-expired" (incl. expired fallback)
    } else {
      ++out.multiple_candidates;
    }
  }
  return out;
}

double PairingResult::unused_lookup_frac(const capture::Dataset& ds) const {
  std::uint64_t eligible = 0;
  std::uint64_t unused = 0;
  for (std::size_t i = 0; i < ds.dns.size(); ++i) {
    const auto& d = ds.dns[i];
    if (!d.answered || d.answers.empty()) continue;
    ++eligible;
    if (dns_use_count[i] == 0) ++unused;
  }
  return eligible ? static_cast<double>(unused) / static_cast<double>(eligible) : 0.0;
}

}  // namespace dnsctx::analysis
