#include "analysis/pairing.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/flat_map.hpp"
#include "util/parallel.hpp"

namespace dnsctx::analysis {

namespace {

/// One DNS transaction's relevance to an address, ordered by response
/// time (the instant the answer became available to the house).
struct Candidate {
  Ipv4Addr addr;
  SimTime response;
  SimTime expires;
  std::uint64_t dns_idx;
};

/// The per-house candidate index in structure-of-arrays layout: ONE
/// dense allocation sorted by (addr, response, dns_idx) and split into
/// parallel arrays, plus a flat addr → [begin, end) directory. The
/// binary search for a connection's start time touches only the
/// `response` array (16 bytes/entry less traffic than the AoS scan),
/// and there is no per-address vector churn while building.
struct HouseIndex {
  std::vector<SimTime> response;
  std::vector<SimTime> expires;
  std::vector<std::uint64_t> dns_idx;
  util::FlatMap<Ipv4Addr, std::pair<std::uint32_t, std::uint32_t>> ranges;

  explicit HouseIndex(std::vector<Candidate>&& entries) {
    // (response, dns_idx) ascending within each address run: exactly the
    // order the streaming engine maintains incrementally
    // (stream::OnlineStudy), so batch and stream pick identical pairs.
    std::sort(entries.begin(), entries.end(), [](const Candidate& a, const Candidate& b) {
      if (a.addr != b.addr) return a.addr < b.addr;
      if (a.response != b.response) return a.response < b.response;
      return a.dns_idx < b.dns_idx;
    });
    const std::size_t n = entries.size();
    response.reserve(n);
    expires.reserve(n);
    dns_idx.reserve(n);
    for (const Candidate& c : entries) {
      response.push_back(c.response);
      expires.push_back(c.expires);
      dns_idx.push_back(c.dns_idx);
    }
    for (std::size_t i = 0; i < n;) {
      std::size_t j = i + 1;
      while (j < n && entries[j].addr == entries[i].addr) ++j;
      ranges[entries[i].addr] = {static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)};
      i = j;
    }
  }
};

/// Pairing counters accumulated per house and summed in house-slot
/// order (integer sums — the reduce is exact, so any thread count
/// produces identical totals).
struct HouseCounters {
  std::uint64_t paired = 0;
  std::uint64_t unpaired = 0;
  std::uint64_t paired_expired = 0;
  std::uint64_t unique_candidate = 0;
  std::uint64_t multiple_candidates = 0;
  std::uint64_t candidates_built = 0;    ///< index entries materialized
  std::uint64_t candidates_scanned = 0;  ///< liveness-scan loop iterations
};

}  // namespace

PairingResult pair_connections(const capture::Dataset& ds, PairingPolicy policy,
                               std::uint64_t seed, unsigned threads) {
  PairingResult out;
  out.conns.resize(ds.conns.size());
  out.dns_use_count.assign(ds.dns.size(), 0);

  // ---- partition by house ------------------------------------------------
  // A connection can only pair with DNS from the same client address (the
  // house behind the NAT), so the work decomposes exactly per house:
  // every house's candidate index, use counts, and first-use flags are
  // disjoint from every other house's.
  util::FlatMap<Ipv4Addr, std::uint32_t> slot_of;
  std::vector<Ipv4Addr> slot_ip;
  const auto slot_for = [&](Ipv4Addr ip) {
    const auto [it, inserted] =
        slot_of.try_emplace(ip, static_cast<std::uint32_t>(slot_ip.size()));
    if (inserted) slot_ip.push_back(ip);
    return it->second;
  };
  std::vector<std::vector<std::uint64_t>> house_dns;
  std::vector<std::vector<std::uint64_t>> house_conns;
  const auto bucket = [](std::vector<std::vector<std::uint64_t>>& per_house,
                         std::uint32_t slot, std::uint64_t idx) {
    if (per_house.size() <= slot) per_house.resize(slot + 1);
    per_house[slot].push_back(idx);
  };
  for (std::size_t i = 0; i < ds.dns.size(); ++i) {
    const auto& d = ds.dns[i];
    if (!d.answered || d.answers.empty()) continue;
    bucket(house_dns, slot_for(d.client_ip), i);
  }
  for (std::size_t ci = 0; ci < ds.conns.size(); ++ci) {
    bucket(house_conns, slot_for(ds.conns[ci].orig_ip), ci);
  }
  const std::size_t slots = slot_ip.size();
  house_dns.resize(slots);
  house_conns.resize(slots);

  // ---- pair each house independently -------------------------------------
  // kRandom derives one stream per house from (seed, house address), so
  // draws never depend on how houses are scheduled across threads.
  const std::uint64_t random_base = derive_seed(seed, "pairing-random");
  std::vector<HouseCounters> counters(slots);

  util::parallel_for_each(threads, slots, [&](std::size_t h) {
    HouseCounters& hc = counters[h];
    // Candidate index keyed by answered address only — the house is
    // implicit, which keeps the per-house tables small and cache-warm.
    std::vector<Candidate> entries;
    for (const std::uint64_t i : house_dns[h]) {
      const auto& d = ds.dns[i];
      for (const auto& a : d.answers) {
        entries.push_back(Candidate{a.addr, d.response_time(),
                                    d.response_time() + SimDuration::sec(a.ttl), i});
      }
    }
    hc.candidates_built += entries.size();
    const HouseIndex index{std::move(entries)};

    Rng rng{derive_seed(random_base, "house", slot_ip[h].to_u32())};
    std::vector<std::uint64_t> live_set;  // reused across connections (kRandom)

    // The per-house connection list preserves global start order, so
    // first-use flags land chronologically, exactly as an online
    // DN-Hunter at the aggregation point would assign them.
    for (const std::uint64_t ci : house_conns[h]) {
      const auto& conn = ds.conns[ci];
      PairedConn& pc = out.conns[ci];
      const auto it = index.ranges.find(conn.resp_ip);
      if (it == index.ranges.end()) {
        ++hc.unpaired;
        continue;
      }
      const auto [lo, hi] = it->second;
      // Last candidate whose response precedes (or equals) the conn start
      // — a binary search over the dense response column only.
      const auto upper = static_cast<std::uint32_t>(
          std::upper_bound(index.response.begin() + lo, index.response.begin() + hi,
                           conn.start) -
          index.response.begin());
      if (upper == lo) {
        ++hc.unpaired;  // the answer arrived only after this connection
        continue;
      }

      // Collect non-expired candidates at conn start.
      std::uint32_t live = 0;
      std::int64_t chosen = -1;
      std::int64_t most_recent_live = -1;
      live_set.clear();
      hc.candidates_scanned += upper - lo;
      for (std::uint32_t j = upper; j-- > lo;) {
        if (index.expires[j] > conn.start) {
          ++live;
          if (most_recent_live < 0) {
            most_recent_live = static_cast<std::int64_t>(index.dns_idx[j]);
          }
          if (policy == PairingPolicy::kRandom) live_set.push_back(index.dns_idx[j]);
        }
      }
      if (live > 0) {
        chosen = policy == PairingPolicy::kRandom
                     ? static_cast<std::int64_t>(live_set[rng.bounded(live_set.size())])
                     : most_recent_live;
        pc.expired_pairing = false;
      } else {
        chosen = static_cast<std::int64_t>(index.dns_idx[upper - 1]);  // most recent, expired
        pc.expired_pairing = true;
      }

      pc.dns_idx = chosen;
      pc.live_candidates = live;
      pc.gap = conn.start - ds.dns[static_cast<std::size_t>(chosen)].response_time();
      pc.first_use = out.dns_use_count[static_cast<std::size_t>(chosen)] == 0;
      ++out.dns_use_count[static_cast<std::size_t>(chosen)];

      ++hc.paired;
      if (pc.expired_pairing) ++hc.paired_expired;
      if (live <= 1) {
        ++hc.unique_candidate;  // paper counts "only a single non-expired" (incl. expired fallback)
      } else {
        ++hc.multiple_candidates;
      }
    }
  });

  std::uint64_t candidates_built = 0;
  std::uint64_t candidates_scanned = 0;
  for (const HouseCounters& hc : counters) {
    out.paired += hc.paired;
    out.unpaired += hc.unpaired;
    out.paired_expired += hc.paired_expired;
    out.unique_candidate += hc.unique_candidate;
    out.multiple_candidates += hc.multiple_candidates;
    candidates_built += hc.candidates_built;
    candidates_scanned += hc.candidates_scanned;
  }
  if (obs::enabled()) {
    auto& reg = obs::registry();
    reg.counter("pairing_candidates_built_total").add(candidates_built);
    reg.counter("pairing_candidates_scanned_total").add(candidates_scanned);
    reg.counter("pairing_houses_total").add(slots);
    reg.gauge("pairing_house_directory_load_factor").set(slot_of.load_factor());
    reg.gauge("pairing_house_directory_max_probe")
        .set(static_cast<double>(slot_of.max_probe_length()));
  }
  return out;
}

double PairingResult::unused_lookup_frac(const capture::Dataset& ds) const {
  std::uint64_t eligible = 0;
  std::uint64_t unused = 0;
  for (std::size_t i = 0; i < ds.dns.size(); ++i) {
    const auto& d = ds.dns[i];
    if (!d.answered || d.answers.empty()) continue;
    ++eligible;
    if (dns_use_count[i] == 0) ++unused;
  }
  return eligible ? static_cast<double>(unused) / static_cast<double>(eligible) : 0.0;
}

}  // namespace dnsctx::analysis
