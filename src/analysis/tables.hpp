// dnsctx — Table 1: resolver platform usage (houses, lookups, paired
// connections, traffic volume per platform).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/pairing.hpp"

namespace dnsctx::analysis {

/// Maps resolver service addresses to platform labels. The default
/// directory covers the paper's four platforms; unknown resolvers group
/// under "other".
class PlatformDirectory {
 public:
  /// Local / Google / OpenDNS / Cloudflare with their well-known
  /// addresses (and our simulated ISP resolver addresses).
  [[nodiscard]] static PlatformDirectory standard();

  void add(Ipv4Addr addr, std::string platform);

  [[nodiscard]] const std::string& label(Ipv4Addr addr) const;
  /// Display order (insertion order of first appearance, then "other").
  [[nodiscard]] const std::vector<std::string>& platforms() const { return order_; }

 private:
  std::unordered_map<Ipv4Addr, std::string, Ipv4Hash> map_;
  std::vector<std::string> order_;
  std::string other_ = "other";
};

struct Table1Row {
  std::string platform;
  double pct_houses = 0.0;   ///< houses with ≥1 lookup to the platform
  double pct_lookups = 0.0;
  double pct_conns = 0.0;    ///< of paired connections
  double pct_bytes = 0.0;    ///< of paired connections' bytes
  std::uint64_t lookups = 0;
};

/// Build Table 1. Rows follow the directory's platform order; platforms
/// below `min_lookup_share` (1% in the paper) are folded into "other".
/// Both log passes are map-reduce over fixed chunks: identical output
/// for any `threads`.
[[nodiscard]] std::vector<Table1Row> build_table1(const capture::Dataset& ds,
                                                  const PairingResult& pairing,
                                                  const PlatformDirectory& dir,
                                                  double min_lookup_share = 0.01,
                                                  unsigned threads = 1);

/// Fraction of houses whose every lookup goes to the "Local" platform
/// (the paper's ~16% forwarder-style households).
[[nodiscard]] double isp_only_house_frac(const capture::Dataset& ds,
                                         const PlatformDirectory& dir,
                                         unsigned threads = 1);

}  // namespace dnsctx::analysis
