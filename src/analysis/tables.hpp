// dnsctx — Table 1: resolver platform usage (houses, lookups, paired
// connections, traffic volume per platform).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/pairing.hpp"
#include "util/flat_map.hpp"

namespace dnsctx::analysis {

/// Dense index of a platform within a PlatformDirectory. The hot
/// per-record loops tally into a plain vector indexed by PlatformId;
/// strings only reappear at the report/export boundary via name_of().
using PlatformId = std::uint32_t;

/// Maps resolver service addresses to platform labels. The default
/// directory covers the paper's four platforms; unknown resolvers group
/// under "other" (always the last id).
class PlatformDirectory {
 public:
  /// Local / Google / OpenDNS / Cloudflare with their well-known
  /// addresses (and our simulated ISP resolver addresses).
  [[nodiscard]] static PlatformDirectory standard();

  void add(Ipv4Addr addr, std::string platform);

  [[nodiscard]] const std::string& label(Ipv4Addr addr) const { return name_of(id_of(addr)); }
  /// Display order (insertion order of first appearance, then "other").
  [[nodiscard]] const std::vector<std::string>& platforms() const { return order_; }

  /// Dense id of the platform serving `addr` (other_id() when unknown).
  [[nodiscard]] PlatformId id_of(Ipv4Addr addr) const {
    const auto it = ids_.find(addr);
    return it == ids_.end() ? other_id() : it->second;
  }
  /// The "other" bucket: one past the named platforms.
  [[nodiscard]] PlatformId other_id() const { return static_cast<PlatformId>(order_.size()); }
  /// Number of distinct ids (named platforms + "other").
  [[nodiscard]] std::size_t platform_count() const { return order_.size() + 1; }
  [[nodiscard]] const std::string& name_of(PlatformId id) const {
    return id < order_.size() ? order_[id] : other_;
  }
  /// Id of a platform by label; other_id() + 1 (an id never returned by
  /// id_of) when no platform carries that label.
  [[nodiscard]] PlatformId id_of_label(std::string_view platform) const;

 private:
  util::FlatMap<Ipv4Addr, PlatformId> ids_;
  std::vector<std::string> order_;
  std::string other_ = "other";
};

struct Table1Row {
  std::string platform;
  double pct_houses = 0.0;   ///< houses with ≥1 lookup to the platform
  double pct_lookups = 0.0;
  double pct_conns = 0.0;    ///< of paired connections
  double pct_bytes = 0.0;    ///< of paired connections' bytes
  std::uint64_t lookups = 0;
};

/// Build Table 1. Rows follow the directory's platform order; platforms
/// below `min_lookup_share` (1% in the paper) are folded into "other".
/// Both log passes are map-reduce over fixed chunks: identical output
/// for any `threads`.
[[nodiscard]] std::vector<Table1Row> build_table1(const capture::Dataset& ds,
                                                  const PairingResult& pairing,
                                                  const PlatformDirectory& dir,
                                                  double min_lookup_share = 0.01,
                                                  unsigned threads = 1);

/// Fraction of houses whose every lookup goes to the "Local" platform
/// (the paper's ~16% forwarder-style households).
[[nodiscard]] double isp_only_house_frac(const capture::Dataset& ds,
                                         const PlatformDirectory& dir,
                                         unsigned threads = 1);

}  // namespace dnsctx::analysis
