// dnsctx — performance versus resolver platform (§7, Figure 3).
//
// Per platform: the shared-cache hit rate (SC over SC∪R), the lookup
// delay distribution for R connections (Fig 3 top), and the application
// throughput distribution for blocked connections (Fig 3 bottom) —
// including the Android connectivity-check artifact the paper isolates
// for Google (23.5% of Google-paired connections).
#pragma once

#include <string>
#include <vector>

#include "analysis/classify.hpp"
#include "analysis/tables.hpp"

namespace dnsctx::analysis {

struct PlatformPerf {
  std::string platform;
  std::uint64_t sc = 0;
  std::uint64_t r = 0;
  Cdf r_lookup_ms;                ///< Fig 3 top: R lookup delays
  Cdf throughput_bps;             ///< Fig 3 bottom: SC∪R connection throughput
  Cdf throughput_bps_filtered;    ///< same, minus connectivity-check connections
  std::uint64_t conncheck_conns = 0;
  std::uint64_t total_conns = 0;  ///< all paired conns attributed to the platform

  [[nodiscard]] double hit_rate() const {
    const auto blocked = sc + r;
    return blocked ? static_cast<double>(sc) / static_cast<double>(blocked) : 0.0;
  }
  [[nodiscard]] double conncheck_frac() const {
    return total_conns ? static_cast<double>(conncheck_conns) /
                             static_cast<double>(total_conns)
                       : 0.0;
  }
};

/// Per-platform §7 metrics, in directory order. Map-reduce over fixed
/// connection chunks: identical output for any `threads`.
[[nodiscard]] std::vector<PlatformPerf> analyze_platforms(
    const capture::Dataset& ds, const PairingResult& pairing, const Classified& classified,
    const PlatformDirectory& dir,
    const std::string& conncheck_name = "connectivitycheck.gstatic.com",
    unsigned threads = 1);

}  // namespace dnsctx::analysis
