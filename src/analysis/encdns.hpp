// dnsctx — traffic-analysis classification of encrypted DNS flows.
//
// When the stub moves to DoT/DoH the monitor's DNS log goes silent, but
// the encrypted flows still leak metadata: message sizes (padded to
// RFC 8467 blocks), counts, timing, and the TLS hello exchange. Siby et
// al. showed this is enough to fingerprint DoH traffic; this module
// implements a deliberately simple size-structure classifier over
// capture::EncFlowRecord and evaluates it against configuration ground
// truth (which server addresses actually are resolvers). Port 853 is a
// giveaway by construction; the interesting case is DoH hiding among
// ordinary HTTPS on 443.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capture/records.hpp"
#include "util/ip.hpp"

namespace dnsctx::analysis {

/// Features a traffic-analysis classifier reads off one encrypted flow.
/// Message 1 in each direction is treated as the TLS hello exchange and
/// excluded from the data-message statistics.
struct EncFlowFeatures {
  std::uint32_t data_msgs_up = 0;    ///< post-hello messages client → server
  std::uint32_t data_msgs_down = 0;
  double mean_data_up = 0.0;         ///< mean post-hello message size, bytes
  double mean_data_down = 0.0;
  double pad_frac_up = 0.0;          ///< fraction sized on a padding block
  double pad_frac_down = 0.0;
  double duration_sec = 0.0;
  std::uint64_t first_up_bytes = 0;  ///< hello sizes (classifier features,
  std::uint64_t first_down_bytes = 0;///< not oracle knowledge)
  bool dot_port = false;             ///< server port 853
};

[[nodiscard]] EncFlowFeatures extract_features(const capture::EncFlowRecord& rec);

/// The classifier: does this flow's metadata look like an encrypted DNS
/// channel? Uses ONLY observable features — no resolver address list.
[[nodiscard]] bool looks_like_dns(const capture::EncFlowRecord& rec);

/// Binary confusion matrix for the classifier, with ground truth taken
/// from the scenario configuration (flows to resolver service addresses
/// are DNS transport; everything else is ordinary TLS).
struct EncConfusion {
  std::uint64_t tp = 0;  ///< DNS flow flagged as DNS
  std::uint64_t fp = 0;  ///< web flow flagged as DNS
  std::uint64_t tn = 0;  ///< web flow passed over
  std::uint64_t fn = 0;  ///< DNS flow missed

  [[nodiscard]] std::uint64_t total() const { return tp + fp + tn + fn; }
  [[nodiscard]] double precision() const {
    return (tp + fp) ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
  }
  [[nodiscard]] double recall() const {
    return (tp + fn) ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
  }
  [[nodiscard]] double accuracy() const {
    return total() ? static_cast<double>(tp + tn) / static_cast<double>(total()) : 0.0;
  }
};

[[nodiscard]] EncConfusion evaluate_enc_classifier(
    const std::vector<capture::EncFlowRecord>& flows,
    const std::vector<Ipv4Addr>& resolver_addrs);

[[nodiscard]] std::string render_enc_report(const EncConfusion& c);

}  // namespace dnsctx::analysis
