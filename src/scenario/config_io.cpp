#include "scenario/config_io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <functional>
#include <ostream>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>

#include "util/strings.hpp"

namespace dnsctx::scenario {

namespace {

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Strict numeric parse: the whole token must be consumed, values must
/// be representable, and doubles must be finite (std::from_chars'
/// general format happily accepts "inf"/"nan" — reject those here, a
/// NaN probability would silently disable every bernoulli draw).
/// Errors carry no location; the dispatch loop wraps them with
/// file + line + key.
template <typename T>
[[nodiscard]] T parse_number(std::string_view v) {
  T out{};
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec == std::errc::result_out_of_range) {
    throw std::runtime_error{
        strfmt("number '%.*s' is out of range", static_cast<int>(v.size()), v.data())};
  }
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    throw std::runtime_error{
        strfmt("bad number '%.*s'", static_cast<int>(v.size()), v.data())};
  }
  if constexpr (std::is_floating_point_v<T>) {
    if (!std::isfinite(out)) {
      throw std::runtime_error{strfmt("number '%.*s' must be finite",
                                      static_cast<int>(v.size()), v.data())};
    }
  }
  return out;
}

/// 24 comma-separated hour multipliers (diurnal tables).
[[nodiscard]] double parse_prob(std::string_view v) {
  const double p = parse_number<double>(v);
  if (p < 0.0 || p > 1.0) {
    throw std::runtime_error{
        strfmt("probability '%.*s' must be in [0, 1]", static_cast<int>(v.size()),
               v.data())};
  }
  return p;
}

[[nodiscard]] double parse_positive(std::string_view v) {
  const double x = parse_number<double>(v);
  if (!(x > 0.0)) {
    throw std::runtime_error{
        strfmt("value '%.*s' must be > 0", static_cast<int>(v.size()), v.data())};
  }
  return x;
}

[[nodiscard]] double parse_non_negative(std::string_view v) {
  const double x = parse_number<double>(v);
  if (x < 0.0) {
    throw std::runtime_error{
        strfmt("value '%.*s' must be >= 0", static_cast<int>(v.size()), v.data())};
  }
  return x;
}

[[nodiscard]] std::array<double, 24> parse_hours(std::string_view v) {
  std::array<double, 24> out{};
  std::size_t idx = 0;
  while (true) {
    const auto comma = v.find(',');
    const std::string_view tok = trim(v.substr(0, comma));
    if (idx >= out.size()) throw std::runtime_error{"expected exactly 24 hour values"};
    out[idx++] = parse_number<double>(tok);
    if (comma == std::string_view::npos) break;
    v.remove_prefix(comma + 1);
  }
  if (idx != out.size()) throw std::runtime_error{"expected exactly 24 hour values"};
  return out;
}

void save_tuning(std::ostream& os, const traffic::TrafficTuning& t) {
  // Written only when changed so pre-pack configs stay byte-identical.
  const traffic::TrafficTuning def{};
  const auto num = [&os](const char* key, auto value, auto def_value) {
    if (value != def_value) os << "tuning." << key << " = " << value << "\n";
  };
  const auto flt = [&os](const char* key, double value, double def_value) {
    if (value != def_value) os << strfmt("tuning.%s = %g\n", key, value);
  };
  num("computers_min", t.computers_min, def.computers_min);
  num("computers_max", t.computers_max, def.computers_max);
  num("computers_light", t.computers_light, def.computers_light);
  flt("android_extra_prob", t.android_extra_prob, def.android_extra_prob);
  flt("apple_prob", t.apple_prob, def.apple_prob);
  flt("apple_prob_light", t.apple_prob_light, def.apple_prob_light);
  flt("tv_prob", t.tv_prob, def.tv_prob);
  flt("tv_prob_light", t.tv_prob_light, def.tv_prob_light);
  num("iot_min", t.iot_min, def.iot_min);
  num("iot_max", t.iot_max, def.iot_max);
  flt("alarm_prob", t.alarm_prob, def.alarm_prob);
  flt("browser_session_scale", t.browser_session_scale, def.browser_session_scale);
  flt("video_session_scale", t.video_session_scale, def.video_session_scale);
  flt("background_poll_scale", t.background_poll_scale, def.background_poll_scale);
  flt("pages_per_session_scale", t.pages_per_session_scale, def.pages_per_session_scale);
  flt("conncheck_scale", t.conncheck_scale, def.conncheck_scale);
  flt("prefetch_prob", t.prefetch_prob, def.prefetch_prob);
  flt("household_site_prob", t.household_site_prob, def.household_site_prob);
  flt("junk_probe_prob", t.junk_probe_prob, def.junk_probe_prob);
  flt("junk_queries_per_hour", t.junk_queries_per_hour, def.junk_queries_per_hour);
  num("web_cdn_min", t.web.cdn_min, def.web.cdn_min);
  num("web_cdn_max", t.web.cdn_max, def.web.cdn_max);
  num("web_ad_min", t.web.ad_min, def.web.ad_min);
  num("web_ad_max", t.web.ad_max, def.web.ad_max);
  num("web_tracker_min", t.web.tracker_min, def.web.tracker_min);
  num("web_tracker_max", t.web.tracker_max, def.web.tracker_max);
  num("web_api_min", t.web.api_min, def.web.api_min);
  num("web_api_max", t.web.api_max, def.web.api_max);
  num("web_links_min", t.web.links_min, def.web.links_min);
  num("web_links_max", t.web.links_max, def.web.links_max);
  if (t.diurnal_hours != def.diurnal_hours) {
    os << "tuning.diurnal_hours =";
    for (std::size_t h = 0; h < t.diurnal_hours.size(); ++h) {
      os << strfmt("%s%g", h == 0 ? " " : ",", t.diurnal_hours[h]);
    }
    os << "\n";
  }
}

}  // namespace

void save_config(std::ostream& os, const ScenarioConfig& cfg) {
  os << "# dnsctx scenario configuration\n";
  os << "seed = " << cfg.seed << "\n";
  os << "houses = " << cfg.houses << "\n";
  os << "duration_hours = " << cfg.duration.count_us() / 3'600'000'000LL << "\n";
  os << "start_hour = " << cfg.start_hour << "\n";
  os << "shards = " << cfg.shards << "\n";
  os << "threads = " << cfg.threads << "\n";
  os << strfmt("activity_scale = %g\n", cfg.activity_scale);
  os << strfmt("ttl_violation_prob = %g\n", cfg.ttl_violation_prob);
  os << strfmt("dead_ntp_frac = %g\n", cfg.dead_ntp_frac);
  os << strfmt("p2p_house_frac = %g\n", cfg.p2p_house_frac);
  os << strfmt("encrypted_dns_device_frac = %g\n", cfg.encrypted_dns_device_frac);
  os << strfmt("whole_house_cache_frac = %g\n", cfg.whole_house_cache_frac);
  if (!cfg.faults.empty()) os << "faults = " << cfg.faults.to_string() << "\n";
  // Transport knobs are written only when set, like `faults`, so classic
  // configs round-trip byte-identically.
  if (cfg.transport != netsim::Transport::kDo53) {
    os << "transport = " << netsim::to_string(cfg.transport) << "\n";
  }
  if (cfg.collect_truth) os << "collect_truth = 1\n";
  if (cfg.pack != "default") os << "pack = " << cfg.pack << "\n";
  os << strfmt("mix.isp_only = %g\n", cfg.mix.isp_only);
  os << strfmt("mix.cloudflare = %g\n", cfg.mix.cloudflare);
  os << strfmt("mix.no_isp = %g\n", cfg.mix.no_isp);
  os << strfmt("mix.opendns_in_mixed = %g\n", cfg.mix.opendns_in_mixed);
  os << "zones.web_sites = " << cfg.zones.web_sites << "\n";
  os << "zones.cdn_domains = " << cfg.zones.cdn_domains << "\n";
  os << "zones.ad_domains = " << cfg.zones.ad_domains << "\n";
  os << "zones.tracker_domains = " << cfg.zones.tracker_domains << "\n";
  os << "zones.api_domains = " << cfg.zones.api_domains << "\n";
  os << "zones.video_sites = " << cfg.zones.video_sites << "\n";
  os << "zones.other_names = " << cfg.zones.other_names << "\n";
  os << strfmt("zones.zipf_exponent = %g\n", cfg.zones.zipf_exponent);
  os << "zones.edges_per_cdn = " << cfg.zones.edges_per_cdn << "\n";
  os << "zones.hosting_pool_ips = " << cfg.zones.hosting_pool_ips << "\n";
  save_tuning(os, cfg.tuning);
}

void save_config_file(const std::string& path, const ScenarioConfig& cfg) {
  std::ofstream os{path};
  if (!os) throw std::runtime_error{"save_config_file: cannot open " + path};
  save_config(os, cfg);
}

ScenarioConfig load_config(std::istream& is, const std::string& source) {
  ScenarioConfig cfg;
  using Setter = std::function<void(std::string_view)>;
  const std::unordered_map<std::string, Setter> setters = {
      {"seed", [&](auto v) { cfg.seed = parse_number<std::uint64_t>(v); }},
      {"houses", [&](auto v) { cfg.houses = parse_number<std::size_t>(v); }},
      {"duration_hours",
       [&](auto v) { cfg.duration = SimDuration::hours(parse_number<int>(v)); }},
      {"start_hour", [&](auto v) { cfg.start_hour = parse_number<int>(v); }},
      {"shards", [&](auto v) { cfg.shards = parse_number<std::size_t>(v); }},
      {"threads", [&](auto v) { cfg.threads = parse_number<unsigned>(v); }},
      {"activity_scale", [&](auto v) { cfg.activity_scale = parse_positive(v); }},
      {"ttl_violation_prob",
       [&](auto v) { cfg.ttl_violation_prob = parse_prob(v); }},
      {"dead_ntp_frac", [&](auto v) { cfg.dead_ntp_frac = parse_prob(v); }},
      {"p2p_house_frac", [&](auto v) { cfg.p2p_house_frac = parse_prob(v); }},
      {"encrypted_dns_device_frac",
       [&](auto v) { cfg.encrypted_dns_device_frac = parse_prob(v); }},
      {"whole_house_cache_frac",
       [&](auto v) { cfg.whole_house_cache_frac = parse_prob(v); }},
      {"faults", [&](auto v) { cfg.faults = faults::FaultPlan::parse(v); }},
      {"transport",
       [&](auto v) {
         const auto t = netsim::parse_transport(v);
         if (!t) {
           throw std::runtime_error{
               strfmt("unknown transport '%.*s' (expected do53, dot, doh, or "
                      "resolverless)",
                      static_cast<int>(v.size()), v.data())};
         }
         cfg.transport = *t;
       }},
      {"collect_truth", [&](auto v) { cfg.collect_truth = parse_number<int>(v) != 0; }},
      {"pack", [&](auto v) { cfg.pack = std::string{v}; }},
      {"mix.isp_only", [&](auto v) { cfg.mix.isp_only = parse_prob(v); }},
      {"mix.cloudflare", [&](auto v) { cfg.mix.cloudflare = parse_prob(v); }},
      {"mix.no_isp", [&](auto v) { cfg.mix.no_isp = parse_prob(v); }},
      {"mix.opendns_in_mixed",
       [&](auto v) { cfg.mix.opendns_in_mixed = parse_prob(v); }},
      {"zones.web_sites",
       [&](auto v) { cfg.zones.web_sites = parse_number<std::size_t>(v); }},
      {"zones.cdn_domains",
       [&](auto v) { cfg.zones.cdn_domains = parse_number<std::size_t>(v); }},
      {"zones.ad_domains",
       [&](auto v) { cfg.zones.ad_domains = parse_number<std::size_t>(v); }},
      {"zones.tracker_domains",
       [&](auto v) { cfg.zones.tracker_domains = parse_number<std::size_t>(v); }},
      {"zones.api_domains",
       [&](auto v) { cfg.zones.api_domains = parse_number<std::size_t>(v); }},
      {"zones.video_sites",
       [&](auto v) { cfg.zones.video_sites = parse_number<std::size_t>(v); }},
      {"zones.other_names",
       [&](auto v) { cfg.zones.other_names = parse_number<std::size_t>(v); }},
      {"zones.zipf_exponent",
       [&](auto v) { cfg.zones.zipf_exponent = parse_positive(v); }},
      {"zones.edges_per_cdn",
       [&](auto v) { cfg.zones.edges_per_cdn = parse_number<std::size_t>(v); }},
      {"zones.hosting_pool_ips",
       [&](auto v) { cfg.zones.hosting_pool_ips = parse_number<std::size_t>(v); }},
      {"tuning.computers_min",
       [&](auto v) { cfg.tuning.computers_min = parse_number<std::size_t>(v); }},
      {"tuning.computers_max",
       [&](auto v) { cfg.tuning.computers_max = parse_number<std::size_t>(v); }},
      {"tuning.computers_light",
       [&](auto v) { cfg.tuning.computers_light = parse_number<std::size_t>(v); }},
      {"tuning.android_extra_prob",
       [&](auto v) { cfg.tuning.android_extra_prob = parse_prob(v); }},
      {"tuning.apple_prob", [&](auto v) { cfg.tuning.apple_prob = parse_prob(v); }},
      {"tuning.apple_prob_light",
       [&](auto v) { cfg.tuning.apple_prob_light = parse_prob(v); }},
      {"tuning.tv_prob", [&](auto v) { cfg.tuning.tv_prob = parse_prob(v); }},
      {"tuning.tv_prob_light",
       [&](auto v) { cfg.tuning.tv_prob_light = parse_prob(v); }},
      {"tuning.iot_min", [&](auto v) { cfg.tuning.iot_min = parse_number<std::size_t>(v); }},
      {"tuning.iot_max", [&](auto v) { cfg.tuning.iot_max = parse_number<std::size_t>(v); }},
      {"tuning.alarm_prob", [&](auto v) { cfg.tuning.alarm_prob = parse_prob(v); }},
      {"tuning.browser_session_scale",
       [&](auto v) { cfg.tuning.browser_session_scale = parse_positive(v); }},
      {"tuning.video_session_scale",
       [&](auto v) { cfg.tuning.video_session_scale = parse_positive(v); }},
      {"tuning.background_poll_scale",
       [&](auto v) { cfg.tuning.background_poll_scale = parse_positive(v); }},
      {"tuning.pages_per_session_scale",
       [&](auto v) { cfg.tuning.pages_per_session_scale = parse_positive(v); }},
      {"tuning.conncheck_scale",
       [&](auto v) { cfg.tuning.conncheck_scale = parse_positive(v); }},
      {"tuning.prefetch_prob",
       [&](auto v) { cfg.tuning.prefetch_prob = parse_prob(v); }},
      {"tuning.household_site_prob",
       [&](auto v) { cfg.tuning.household_site_prob = parse_prob(v); }},
      {"tuning.junk_probe_prob",
       [&](auto v) { cfg.tuning.junk_probe_prob = parse_prob(v); }},
      {"tuning.junk_queries_per_hour",
       [&](auto v) { cfg.tuning.junk_queries_per_hour = parse_non_negative(v); }},
      {"tuning.web_cdn_min",
       [&](auto v) { cfg.tuning.web.cdn_min = parse_number<std::size_t>(v); }},
      {"tuning.web_cdn_max",
       [&](auto v) { cfg.tuning.web.cdn_max = parse_number<std::size_t>(v); }},
      {"tuning.web_ad_min",
       [&](auto v) { cfg.tuning.web.ad_min = parse_number<std::size_t>(v); }},
      {"tuning.web_ad_max",
       [&](auto v) { cfg.tuning.web.ad_max = parse_number<std::size_t>(v); }},
      {"tuning.web_tracker_min",
       [&](auto v) { cfg.tuning.web.tracker_min = parse_number<std::size_t>(v); }},
      {"tuning.web_tracker_max",
       [&](auto v) { cfg.tuning.web.tracker_max = parse_number<std::size_t>(v); }},
      {"tuning.web_api_min",
       [&](auto v) { cfg.tuning.web.api_min = parse_number<std::size_t>(v); }},
      {"tuning.web_api_max",
       [&](auto v) { cfg.tuning.web.api_max = parse_number<std::size_t>(v); }},
      {"tuning.web_links_min",
       [&](auto v) { cfg.tuning.web.links_min = parse_number<std::size_t>(v); }},
      {"tuning.web_links_max",
       [&](auto v) { cfg.tuning.web.links_max = parse_number<std::size_t>(v); }},
      {"tuning.diurnal_hours",
       [&](auto v) { cfg.tuning.diurnal_hours = parse_hours(v); }},
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    const auto eq = stripped.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error{
          strfmt("%s line %zu: expected key = value", source.c_str(), line_no)};
    }
    const std::string key{trim(stripped.substr(0, eq))};
    const std::string_view value = trim(stripped.substr(eq + 1));
    const auto it = setters.find(key);
    if (it == setters.end()) {
      throw std::runtime_error{
          strfmt("%s line %zu: unknown key '%s'", source.c_str(), line_no, key.c_str())};
    }
    try {
      it->second(value);
    } catch (const std::exception& e) {
      throw std::runtime_error{strfmt("%s line %zu: key '%s': %s", source.c_str(),
                                      line_no, key.c_str(), e.what())};
    }
  }
  return cfg;
}

ScenarioConfig load_config_file(const std::string& path) {
  std::ifstream is{path};
  if (!is) throw std::runtime_error{"load_config_file: cannot open " + path};
  return load_config(is, path);
}

}  // namespace dnsctx::scenario
