#include "scenario/config_io.hpp"

#include <charconv>
#include <fstream>
#include <functional>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "util/strings.hpp"

namespace dnsctx::scenario {

namespace {

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

template <typename T>
[[nodiscard]] T parse_number(std::string_view v, std::size_t line_no) {
  T out{};
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    throw std::runtime_error{strfmt("config line %zu: bad number '%.*s'", line_no,
                                    static_cast<int>(v.size()), v.data())};
  }
  return out;
}

}  // namespace

void save_config(std::ostream& os, const ScenarioConfig& cfg) {
  os << "# dnsctx scenario configuration\n";
  os << "seed = " << cfg.seed << "\n";
  os << "houses = " << cfg.houses << "\n";
  os << "duration_hours = " << cfg.duration.count_us() / 3'600'000'000LL << "\n";
  os << "start_hour = " << cfg.start_hour << "\n";
  os << "shards = " << cfg.shards << "\n";
  os << "threads = " << cfg.threads << "\n";
  os << strfmt("activity_scale = %g\n", cfg.activity_scale);
  os << strfmt("ttl_violation_prob = %g\n", cfg.ttl_violation_prob);
  os << strfmt("dead_ntp_frac = %g\n", cfg.dead_ntp_frac);
  os << strfmt("p2p_house_frac = %g\n", cfg.p2p_house_frac);
  os << strfmt("encrypted_dns_device_frac = %g\n", cfg.encrypted_dns_device_frac);
  os << strfmt("whole_house_cache_frac = %g\n", cfg.whole_house_cache_frac);
  if (!cfg.faults.empty()) os << "faults = " << cfg.faults.to_string() << "\n";
  // Transport knobs are written only when set, like `faults`, so classic
  // configs round-trip byte-identically.
  if (cfg.transport != netsim::Transport::kDo53) {
    os << "transport = " << netsim::to_string(cfg.transport) << "\n";
  }
  if (cfg.collect_truth) os << "collect_truth = 1\n";
  os << strfmt("mix.isp_only = %g\n", cfg.mix.isp_only);
  os << strfmt("mix.cloudflare = %g\n", cfg.mix.cloudflare);
  os << strfmt("mix.no_isp = %g\n", cfg.mix.no_isp);
  os << strfmt("mix.opendns_in_mixed = %g\n", cfg.mix.opendns_in_mixed);
  os << "zones.web_sites = " << cfg.zones.web_sites << "\n";
  os << "zones.cdn_domains = " << cfg.zones.cdn_domains << "\n";
  os << "zones.ad_domains = " << cfg.zones.ad_domains << "\n";
  os << "zones.tracker_domains = " << cfg.zones.tracker_domains << "\n";
  os << "zones.api_domains = " << cfg.zones.api_domains << "\n";
  os << "zones.video_sites = " << cfg.zones.video_sites << "\n";
  os << "zones.other_names = " << cfg.zones.other_names << "\n";
  os << strfmt("zones.zipf_exponent = %g\n", cfg.zones.zipf_exponent);
  os << "zones.edges_per_cdn = " << cfg.zones.edges_per_cdn << "\n";
  os << "zones.hosting_pool_ips = " << cfg.zones.hosting_pool_ips << "\n";
}

void save_config_file(const std::string& path, const ScenarioConfig& cfg) {
  std::ofstream os{path};
  if (!os) throw std::runtime_error{"save_config_file: cannot open " + path};
  save_config(os, cfg);
}

ScenarioConfig load_config(std::istream& is) {
  ScenarioConfig cfg;
  using Setter = std::function<void(std::string_view, std::size_t)>;
  const std::unordered_map<std::string, Setter> setters = {
      {"seed", [&](auto v, auto n) { cfg.seed = parse_number<std::uint64_t>(v, n); }},
      {"houses", [&](auto v, auto n) { cfg.houses = parse_number<std::size_t>(v, n); }},
      {"duration_hours",
       [&](auto v, auto n) { cfg.duration = SimDuration::hours(parse_number<int>(v, n)); }},
      {"start_hour", [&](auto v, auto n) { cfg.start_hour = parse_number<int>(v, n); }},
      {"shards", [&](auto v, auto n) { cfg.shards = parse_number<std::size_t>(v, n); }},
      {"threads", [&](auto v, auto n) { cfg.threads = parse_number<unsigned>(v, n); }},
      {"activity_scale",
       [&](auto v, auto n) { cfg.activity_scale = parse_number<double>(v, n); }},
      {"ttl_violation_prob",
       [&](auto v, auto n) { cfg.ttl_violation_prob = parse_number<double>(v, n); }},
      {"dead_ntp_frac",
       [&](auto v, auto n) { cfg.dead_ntp_frac = parse_number<double>(v, n); }},
      {"p2p_house_frac",
       [&](auto v, auto n) { cfg.p2p_house_frac = parse_number<double>(v, n); }},
      {"encrypted_dns_device_frac",
       [&](auto v, auto n) { cfg.encrypted_dns_device_frac = parse_number<double>(v, n); }},
      {"whole_house_cache_frac",
       [&](auto v, auto n) { cfg.whole_house_cache_frac = parse_number<double>(v, n); }},
      {"faults",
       [&](auto v, auto n) {
         try {
           cfg.faults = faults::FaultPlan::parse(v);
         } catch (const std::exception& e) {
           throw std::runtime_error{strfmt("config line %zu: %s", n, e.what())};
         }
       }},
      {"transport",
       [&](auto v, auto n) {
         const auto t = netsim::parse_transport(v);
         if (!t) {
           throw std::runtime_error{strfmt(
               "config line %zu: unknown transport '%.*s' (expected do53, dot, doh, "
               "or resolverless)",
               n, static_cast<int>(v.size()), v.data())};
         }
         cfg.transport = *t;
       }},
      {"collect_truth",
       [&](auto v, auto n) { cfg.collect_truth = parse_number<int>(v, n) != 0; }},
      {"mix.isp_only", [&](auto v, auto n) { cfg.mix.isp_only = parse_number<double>(v, n); }},
      {"mix.cloudflare",
       [&](auto v, auto n) { cfg.mix.cloudflare = parse_number<double>(v, n); }},
      {"mix.no_isp", [&](auto v, auto n) { cfg.mix.no_isp = parse_number<double>(v, n); }},
      {"mix.opendns_in_mixed",
       [&](auto v, auto n) { cfg.mix.opendns_in_mixed = parse_number<double>(v, n); }},
      {"zones.web_sites",
       [&](auto v, auto n) { cfg.zones.web_sites = parse_number<std::size_t>(v, n); }},
      {"zones.cdn_domains",
       [&](auto v, auto n) { cfg.zones.cdn_domains = parse_number<std::size_t>(v, n); }},
      {"zones.ad_domains",
       [&](auto v, auto n) { cfg.zones.ad_domains = parse_number<std::size_t>(v, n); }},
      {"zones.tracker_domains",
       [&](auto v, auto n) { cfg.zones.tracker_domains = parse_number<std::size_t>(v, n); }},
      {"zones.api_domains",
       [&](auto v, auto n) { cfg.zones.api_domains = parse_number<std::size_t>(v, n); }},
      {"zones.video_sites",
       [&](auto v, auto n) { cfg.zones.video_sites = parse_number<std::size_t>(v, n); }},
      {"zones.other_names",
       [&](auto v, auto n) { cfg.zones.other_names = parse_number<std::size_t>(v, n); }},
      {"zones.zipf_exponent",
       [&](auto v, auto n) { cfg.zones.zipf_exponent = parse_number<double>(v, n); }},
      {"zones.edges_per_cdn",
       [&](auto v, auto n) { cfg.zones.edges_per_cdn = parse_number<std::size_t>(v, n); }},
      {"zones.hosting_pool_ips",
       [&](auto v, auto n) { cfg.zones.hosting_pool_ips = parse_number<std::size_t>(v, n); }},
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    const auto eq = stripped.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error{strfmt("config line %zu: expected key = value", line_no)};
    }
    const std::string key{trim(stripped.substr(0, eq))};
    const std::string_view value = trim(stripped.substr(eq + 1));
    const auto it = setters.find(key);
    if (it == setters.end()) {
      throw std::runtime_error{strfmt("config line %zu: unknown key '%s'", line_no,
                                      key.c_str())};
    }
    it->second(value, line_no);
  }
  return cfg;
}

ScenarioConfig load_config_file(const std::string& path) {
  std::ifstream is{path};
  if (!is) throw std::runtime_error{"load_config_file: cannot open " + path};
  return load_config(is);
}

}  // namespace dnsctx::scenario
