// dnsctx — plain-text scenario configuration files.
//
// A minimal `key = value` format (with `#` comments) covering every
// ScenarioConfig knob, so experiments can be defined, versioned and
// shared without recompiling. See examples/scenarios/*.conf.
#pragma once

#include <iosfwd>
#include <string>

#include "scenario/scenario.hpp"

namespace dnsctx::scenario {

/// Serialise a config as key = value lines (stable order, all knobs).
void save_config(std::ostream& os, const ScenarioConfig& cfg);
void save_config_file(const std::string& path, const ScenarioConfig& cfg);

/// Parse a config. Unknown keys and malformed values throw
/// std::runtime_error with the offending line number. Keys not present
/// keep their defaults.
[[nodiscard]] ScenarioConfig load_config(std::istream& is);
[[nodiscard]] ScenarioConfig load_config_file(const std::string& path);

}  // namespace dnsctx::scenario
