// dnsctx — plain-text scenario configuration files.
//
// A minimal `key = value` format (with `#` comments) covering every
// ScenarioConfig knob, so experiments can be defined, versioned and
// shared without recompiling. See examples/scenarios/*.conf.
#pragma once

#include <iosfwd>
#include <string>

#include "scenario/scenario.hpp"

namespace dnsctx::scenario {

/// Serialise a config as key = value lines (stable order). Tuning and
/// pack keys are written only when they differ from the defaults, so
/// classic (pre-pack) configs round-trip byte-identically.
void save_config(std::ostream& os, const ScenarioConfig& cfg);
void save_config_file(const std::string& path, const ScenarioConfig& cfg);

/// Parse a config. Unknown keys and malformed values throw
/// std::runtime_error naming `source`, the line number and the key.
/// Out-of-range numbers ("1e999"), non-finite doubles ("inf", "nan")
/// and trailing garbage are rejected, never clamped. Keys not present
/// keep their defaults.
[[nodiscard]] ScenarioConfig load_config(std::istream& is,
                                         const std::string& source = "config");
[[nodiscard]] ScenarioConfig load_config_file(const std::string& path);

}  // namespace dnsctx::scenario
