// dnsctx — scenario assembly: the simulated Case-Connection-Zone-like
// neighborhood, end to end.
//
// A Town owns the event loop, the WAN, the resolver platforms, the
// authoritative universe, the server farm, every house (gateway +
// devices + apps) and the passive monitor at the aggregation point.
// run() produces the paper's two datasets; ground-truth counters stay
// available for validating the analysis heuristics.
//
// House profiles follow §3's population: most houses use the ISP's
// resolvers, most also have Android devices defaulting to Google DNS,
// a quarter have an OpenDNS-configured machine, a few percent route
// everything to Cloudflare, and ~16% are ISP-only.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "capture/monitor.hpp"
#include "capture/truth_tap.hpp"
#include "faults/plan.hpp"
#include "netsim/transport.hpp"
#include "resolver/recursive.hpp"
#include "traffic/apps.hpp"
#include "traffic/farm.hpp"
#include "traffic/tuning.hpp"

namespace dnsctx::scenario {

struct HouseProfileMix {
  double isp_only = 0.12;    ///< forwarder-style households (§3)
  double cloudflare = 0.045;  ///< whole-house Cloudflare users
  double no_isp = 0.05;      ///< public-DNS-only households
  /// Probability a mixed house has an OpenDNS-configured computer.
  double opendns_in_mixed = 0.38;

  /// Throws std::runtime_error when a fraction is outside [0, 1] or the
  /// three exclusive profiles claim more than the whole population
  /// (their sum must leave a non-negative remainder for "mixed").
  /// Called by the Town constructor so a broken mix fails loudly at
  /// build time instead of silently skewing assign_profiles' quotas.
  void validate() const;
};

struct ScenarioConfig {
  std::uint64_t seed = 42;
  std::size_t houses = 40;
  SimDuration duration = SimDuration::hours(8);
  resolver::ZoneDbConfig zones;
  HouseProfileMix mix;
  /// Multiplies all app activity rates (1.0 = calibrated default).
  double activity_scale = 1.0;
  /// Per-device-cache TTL violation probability (§5.2 behaviour).
  double ttl_violation_prob = 0.2; 
  /// Fraction of IoT NTP clients hard-coded to a dead server (§5.1).
  double dead_ntp_frac = 0.35;
  /// Fraction of houses with an active P2P box.
  double p2p_house_frac = 0.24;
  /// Local hour at simulation start (short runs should begin in the
  /// afternoon so they see representative diurnal activity).
  int start_hour = 15;
  /// Fraction of computers/phones resolving over an encrypted transport
  /// (port 853). 0 matches the paper's Feb 2019 dataset; raising it
  /// shows how the passive methodology degrades (§3, §5.1).
  double encrypted_dns_device_frac = 0.0;
  /// Fraction of houses whose router runs a live caching DNS forwarder
  /// (the §8 what-if, deployed rather than trace-simulated).
  double whole_house_cache_frac = 0.0;
  /// Number of independent simulation partitions the houses are split
  /// across. This is a SEMANTIC knob: shard boundaries change which
  /// resolver-platform cache instances houses share, so different shard
  /// counts yield different (equally valid) neighborhoods. 1 = the
  /// legacy single-simulator stream, byte-identical to earlier releases.
  std::size_t shards = 1;
  /// Worker threads used to execute shards (0 = hardware concurrency).
  /// Execution-only: for a fixed `shards`, output is byte-identical for
  /// every thread count.
  unsigned threads = 1;
  /// Deterministic impairment plan (empty = perfect network, the
  /// byte-identical baseline). See docs/FAULTS.md for the grammar and
  /// the determinism contract.
  faults::FaultPlan faults;
  /// DNS transport scenario (docs/EXPERIMENTS.md). kDo53 is the classic
  /// byte-identical baseline. kDoT/kDoH move every capable device
  /// (computers, Android, Apple mobile) onto one padded encrypted channel
  /// per resolver and turn on the monitor's encrypted-flow metadata;
  /// kResolverless additionally has web servers push their asset records
  /// (Sy et al.) so asset lookups bypass the stub entirely. Assignment is
  /// structural — no extra randomness is drawn, so the kDo53 event
  /// stream matches builds without the knob bit for bit.
  netsim::Transport transport = netsim::Transport::kDo53;
  /// Ride a capture::TruthTap alongside the monitor and label every flow
  /// with its ground-truth class (truth_flows()). Observation-only: the
  /// packet stream, datasets, and all RNG draws are unchanged.
  bool collect_truth = false;
  /// Query-composition tuning (device population, app rates, web fanout,
  /// junk rate, diurnal table). The default reproduces the classic
  /// household mix byte for byte; scenario packs (pack.hpp) override it.
  traffic::TrafficTuning tuning;
  /// Scenario-pack name for bench records and report labelling
  /// ("default" = no pack applied).
  std::string pack = "default";
};

/// Ground truth the monitor cannot see (defined beside Device, which
/// maintains it).
using GroundTruth = traffic::GroundTruth;

/// Injected-fault tallies aggregated across shards (ground truth for
/// validating the failure report; the monitor cannot see these).
struct FaultStats {
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_dropped_unobserved = 0;
  std::uint64_t packets_duplicated = 0;
  std::uint64_t packets_reordered = 0;
  std::uint64_t servfail_injected = 0;
  std::uint64_t nxdomain_injected = 0;
  std::uint64_t outage_dropped = 0;
};

/// Map a fault-plan outage target to concrete service addresses:
/// "isp"/"local" (both ISP boxes), "upstream1"/"upstream2" (one each),
/// "google"/"opendns"/"cloudflare" (both anycast addresses), or a
/// dotted quad. Throws std::runtime_error for anything else.
[[nodiscard]] std::vector<Ipv4Addr> resolve_outage_target(const std::string& target);

struct HouseInfo {
  Ipv4Addr external_ip;
  std::size_t devices = 0;
  bool has_android = false;
  bool has_opendns = false;
  bool has_p2p = false;
  std::string profile;  ///< "isp_only" | "mixed" | "no_isp" | "cloudflare"
};

class Town {
 public:
  explicit Town(const ScenarioConfig& cfg);
  ~Town();
  Town(const Town&) = delete;
  Town& operator=(const Town&) = delete;

  /// Run the configured duration (minus whatever run_for() already
  /// covered) and harvest the datasets. Chunking with run_for() first
  /// and then calling run() dispatches the exact same event sequence.
  void run();

  /// Run incrementally (callable repeatedly); harvest() when done.
  void run_for(SimDuration amount);
  [[nodiscard]] capture::Dataset harvest();

  /// Stream records from every shard's monitor into `sink` instead of
  /// materializing datasets (see Monitor::set_record_sink). The sink is
  /// shared and not synchronized, so while one is attached run_for() and
  /// harvest() execute shards sequentially regardless of `threads`.
  /// Records arrive in finalization order per shard; drive a
  /// stream::LiveFeed with record_watermark() after each run_for chunk
  /// to recover the canonical time-sorted order.
  void attach_record_sink(capture::RecordSink* sink);

  /// Reordering bound across all shards: no record emitted after this
  /// call carries a key time before it (min over shards of the
  /// monitors' open_watermark at their current clock).
  [[nodiscard]] SimTime record_watermark() const;

  [[nodiscard]] const capture::Dataset& dataset() const { return dataset_; }
  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }
  [[nodiscard]] const GroundTruth& ground_truth() const { return truth_; }

  /// Ground-truth labelled flows from every shard's TruthTap, sorted by
  /// start time (shard order breaks ties). Empty unless
  /// ScenarioConfig::collect_truth was set.
  [[nodiscard]] std::vector<capture::TruthFlow> truth_flows() const;

  /// Resolver service addresses the town's platforms answer on (ground
  /// truth for the encrypted-flow classifier's confusion matrix).
  [[nodiscard]] const std::vector<Ipv4Addr>& resolver_service_addrs() const {
    return resolver_addrs_;
  }
  [[nodiscard]] const std::vector<HouseInfo>& houses() const { return house_info_; }
  [[nodiscard]] const resolver::ZoneDb& zones() const { return *zones_; }

  /// The first shard's event loop (every shard's clock advances in
  /// lockstep through run_for, so its `now()` is the town's clock).
  [[nodiscard]] netsim::Simulator& sim();

  /// Resolver platform instances, shard-major, each shard in Table 1
  /// order: Local, Google, OpenDNS, Cloudflare. With `shards = 1` this
  /// is exactly the four legacy platforms.
  [[nodiscard]] const std::vector<resolver::RecursiveResolverPlatform*>& platforms() const {
    return platform_view_;
  }

  /// Number of simulation partitions actually in use.
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Injected-fault counters summed over shards (all zero when the
  /// plan is empty).
  [[nodiscard]] FaultStats fault_stats() const;

  /// Publish deterministic run telemetry (event-loop depth, packet and
  /// tap counts, fault tallies — per shard and aggregated) into the
  /// process metrics registry as gauges. Idempotent: sets absolute
  /// values, so calling it at every scrape point never double-counts.
  /// No-op while metrics are disabled.
  void publish_metrics() const;

 private:
  struct House;
  struct Shard;
  void build_shard(std::size_t shard_idx, std::size_t house_begin, std::size_t house_end,
                   const std::vector<std::string>& profiles, const std::vector<bool>& p2p);
  void build_house(Shard& shard, std::size_t index, const std::string& profile,
                   bool p2p_house);
  void refresh_truth();
  [[nodiscard]] std::vector<std::string> assign_profiles() const;
  [[nodiscard]] std::vector<bool> assign_p2p() const;

  ScenarioConfig cfg_;
  Rng rng_;
  std::unique_ptr<resolver::ZoneDb> zones_;
  std::unique_ptr<traffic::WebModel> web_;
  std::unique_ptr<traffic::AppWorld> world_;
  std::shared_ptr<const std::vector<resolver::NameId>> universal_services_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<resolver::RecursiveResolverPlatform*> platform_view_;
  std::vector<Ipv4Addr> resolver_addrs_;
  std::vector<HouseInfo> house_info_;
  GroundTruth truth_;
  capture::Dataset dataset_;
  SimDuration ran_;  ///< total simulated time covered by run_for() calls
  bool harvested_ = false;
  capture::RecordSink* record_sink_ = nullptr;
};

}  // namespace dnsctx::scenario
