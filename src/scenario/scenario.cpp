#include "scenario/scenario.hpp"

#include "resolver/forwarder.hpp"

#include <algorithm>

namespace dnsctx::scenario {

namespace {

using resolver::well_known::kCloudflare1;
using resolver::well_known::kCloudflare2;
using resolver::well_known::kGoogle1;
using resolver::well_known::kGoogle2;
using resolver::well_known::kIspResolver1;
using resolver::well_known::kIspResolver2;
using resolver::well_known::kOpenDns1;

/// §5.1's hard-coded service addresses.
constexpr Ipv4Addr kDeadNtp{128, 138, 141, 172};          // retired public NTP
constexpr Ipv4Addr kLiveNtp[] = {{129, 6, 15, 28}, {216, 239, 35, 0}};
constexpr Ipv4Addr kOomaNtp[] = {{76, 8, 228, 10}, {76, 8, 228, 11}};
constexpr Ipv4Addr kAlarmNet[] = {{204, 141, 57, 10}, {204, 141, 57, 11}};

enum class DeviceKind { kComputer, kAndroid, kAppleMobile, kTv, kIot };

}  // namespace

struct Town::House {
  std::unique_ptr<netsim::HouseGateway> gateway;
  std::unique_ptr<resolver::WholeHouseForwarder> forwarder;
  std::vector<std::unique_ptr<traffic::Device>> devices;
  std::vector<std::unique_ptr<traffic::App>> apps;
};

Town::Town(const ScenarioConfig& cfg)
    : cfg_{cfg}, rng_{derive_seed(cfg.seed, "town")} {
  sim_ = std::make_unique<netsim::Simulator>();

  netsim::LatencyModel latency;
  net_ = std::make_unique<netsim::Network>(*sim_, latency,
                                           derive_seed(cfg_.seed, "network"));

  resolver::ZoneDbConfig zone_cfg = cfg_.zones;
  if (zone_cfg.seed == resolver::ZoneDbConfig{}.seed) zone_cfg.seed = cfg_.seed;
  zones_ = std::make_unique<resolver::ZoneDb>(zone_cfg);
  web_ = std::make_unique<traffic::WebModel>(*zones_, cfg_.seed);
  world_ = std::make_unique<traffic::AppWorld>(traffic::AppWorld{
      *zones_, *web_,
      traffic::DiurnalProfile::residential().with_start_hour(cfg_.start_hour)});

  for (auto& platform_cfg : resolver::default_platforms()) {
    for (const auto addr : platform_cfg.addrs) {
      net_->latency_mut().set_site(addr, platform_cfg.site);
    }
    platforms_.push_back(std::make_unique<resolver::RecursiveResolverPlatform>(
        *sim_, *net_, *zones_, platform_cfg,
        derive_seed(cfg_.seed, "platform", platforms_.size())));
  }

  // Endpoints every device polls (push hubs, vendor clouds): the three
  // most popular API names.
  {
    const auto& apis = zones_->ids_of(resolver::ServiceClass::kApi);
    auto universal = std::make_shared<std::vector<resolver::NameId>>();
    for (std::size_t i = 0; i < std::min<std::size_t>(3, apis.size()); ++i) {
      universal->push_back(apis[i]);
    }
    universal_services_ = std::move(universal);
  }

  farm_ = std::make_unique<traffic::ServerFarm>(*sim_, *net_,
                                                derive_seed(cfg_.seed, "farm"));
  farm_->add_dead_ip(kDeadNtp);

  monitor_ = std::make_unique<capture::Monitor>();
  net_->set_tap(monitor_.get());

  houses_.reserve(cfg_.houses);
  const auto profiles = assign_profiles();
  const auto p2p = assign_p2p();
  for (std::size_t i = 0; i < cfg_.houses; ++i) build_house(i, profiles[i], p2p[i]);
}

std::vector<bool> Town::assign_p2p() const {
  // Stratified like the profiles: the P2P-house share holds exactly.
  std::vector<bool> out(cfg_.houses, false);
  const auto quota = static_cast<std::size_t>(
      cfg_.p2p_house_frac * static_cast<double>(cfg_.houses) + 0.5);
  for (std::size_t i = 0; i < std::min(quota, out.size()); ++i) out[i] = true;
  Rng shuffle_rng{derive_seed(cfg_.seed, "p2p-houses")};
  for (std::size_t i = out.size(); i > 1; --i) {
    const std::size_t j = shuffle_rng.bounded(i);
    const bool tmp = out[i - 1];
    out[i - 1] = out[j];
    out[j] = tmp;
  }
  return out;
}

std::vector<std::string> Town::assign_profiles() const {
  // Stratified assignment: the profile mix holds exactly (up to
  // rounding) at any neighborhood size, then the order is shuffled.
  std::vector<std::string> out;
  const HouseProfileMix& mix = cfg_.mix;
  const auto quota = [&](double frac) {
    return static_cast<std::size_t>(frac * static_cast<double>(cfg_.houses) + 0.5);
  };
  for (std::size_t i = 0; i < quota(mix.isp_only); ++i) out.emplace_back("isp_only");
  for (std::size_t i = 0; i < quota(mix.cloudflare); ++i) out.emplace_back("cloudflare");
  for (std::size_t i = 0; i < quota(mix.no_isp); ++i) out.emplace_back("no_isp");
  while (out.size() < cfg_.houses) out.emplace_back("mixed");
  out.resize(cfg_.houses);
  Rng shuffle_rng{derive_seed(cfg_.seed, "profiles")};
  for (std::size_t i = out.size(); i > 1; --i) {
    std::swap(out[i - 1], out[shuffle_rng.bounded(i)]);
  }
  return out;
}

Town::~Town() = default;

void Town::build_house(std::size_t index, const std::string& profile, bool p2p_house) {
  Rng house_rng{derive_seed(cfg_.seed, "house", index)};
  auto house = std::make_unique<House>();

  const Ipv4Addr house_ip{100, 66, static_cast<std::uint8_t>(1 + index / 250),
                          static_cast<std::uint8_t>(1 + index % 250)};
  net_->latency_mut().set_site(
      house_ip, {SimDuration::from_ms(house_rng.uniform(0.3, 0.8)), 0.1});
  house->gateway = std::make_unique<netsim::HouseGateway>(
      *sim_, *net_, house_ip, derive_seed(cfg_.seed, "gateway", index));
  if (house_rng.bernoulli(cfg_.whole_house_cache_frac)) {
    house->forwarder = std::make_unique<resolver::WholeHouseForwarder>(
        *sim_, *house->gateway, Ipv4Addr{192, 168, 1, 253}, dns::CacheConfig{},
        derive_seed(cfg_.seed, "forwarder", index));
  }

  // ----- profile ----------------------------------------------------------
  HouseInfo info;
  info.external_ip = house_ip;
  info.profile = profile;

  const Ipv4Addr isp_a = house_rng.bernoulli(0.5) ? kIspResolver1 : kIspResolver2;
  const Ipv4Addr isp_b = isp_a == kIspResolver1 ? kIspResolver2 : kIspResolver1;

  auto resolvers_for = [&](DeviceKind kind, bool opendns_device) -> std::vector<Ipv4Addr> {
    if (opendns_device) return {kOpenDns1, isp_a};
    if (info.profile == "isp_only") return {isp_a, isp_b};
    if (info.profile == "cloudflare") {
      return kind == DeviceKind::kAndroid ? std::vector<Ipv4Addr>{kGoogle1, kCloudflare1}
                                          : std::vector<Ipv4Addr>{kCloudflare1, kCloudflare2};
    }
    if (info.profile == "no_isp") return {kGoogle1, kGoogle2};
    // mixed
    if (kind == DeviceKind::kAndroid) return {kGoogle1, isp_a};
    return {isp_a, isp_b};
  };

  // ----- device inventory -------------------------------------------------
  struct Plan {
    DeviceKind kind;
    bool opendns = false;
    bool p2p = false;
    bool alarm = false;
    bool dead_ntp = false;
  };
  std::vector<Plan> plans;
  // Public-DNS-only households skew light and phone-centric; everyone
  // else gets the full inventory.
  const bool light = info.profile == "no_isp";
  const std::size_t computers = light ? 1 : 1 + house_rng.bounded(2);
  for (std::size_t i = 0; i < computers; ++i) plans.push_back({DeviceKind::kComputer});
  if (info.profile != "isp_only") {
    const std::size_t androids = 1 + (house_rng.bernoulli(0.25) ? 1 : 0);
    for (std::size_t i = 0; i < androids; ++i) plans.push_back({DeviceKind::kAndroid});
    info.has_android = true;
  }
  if (house_rng.bernoulli(light ? 0.3 : 0.5)) plans.push_back({DeviceKind::kAppleMobile});
  if (house_rng.bernoulli(light ? 0.5 : 0.65)) plans.push_back({DeviceKind::kTv});
  const std::size_t iots = house_rng.bounded(2);
  for (std::size_t i = 0; i < iots; ++i) {
    Plan p{DeviceKind::kIot};
    p.dead_ntp = house_rng.bernoulli(cfg_.dead_ntp_frac);
    plans.push_back(p);
  }
  if (house_rng.bernoulli(0.25)) {
    Plan p{DeviceKind::kIot};
    p.alarm = true;
    plans.push_back(p);
  }
  if (info.profile == "mixed" && house_rng.bernoulli(cfg_.mix.opendns_in_mixed)) {
    info.has_opendns = true;
    // OpenDNS households point one configured machine and usually the
    // streaming box at it (drives OpenDNS's conn/byte share exceeding
    // its lookup share, Table 1) — but another machine still uses the
    // ISP resolvers (§3: nearly every house touches them).
    if (computers < 2) plans.push_back({DeviceKind::kComputer});
    plans.front().opendns = true;
    for (auto& p : plans) {
      if (p.kind == DeviceKind::kTv && house_rng.bernoulli(0.75)) p.opendns = true;
    }
  }
  if (p2p_house) {
    plans.front().p2p = true;
    info.has_p2p = true;
  }
  info.devices = plans.size();

  // ----- build devices + apps --------------------------------------------
  // The household's shared favourites: every browser in the house draws
  // a share of its sessions from these (drives §8's whole-house wins).
  auto household_sites = std::make_shared<std::vector<resolver::NameId>>();
  const std::size_t n_favorites = 8 + house_rng.bounded(8);
  const auto& all_webs = zones_->ids_of(resolver::ServiceClass::kWebOrigin);
  for (std::size_t i = 0; i < n_favorites; ++i) {
    // Half the family favourites follow global popularity, half are the
    // household's own niche (the local school, a hobby forum): tail
    // names whose lookups miss even the shared resolver cache, which is
    // what gives a whole-house cache its R-class wins (§8).
    if (house_rng.bernoulli(0.5) || all_webs.empty()) {
      household_sites->push_back(zones_->sample_web_site(house_rng));
    } else {
      household_sites->push_back(all_webs[house_rng.bounded(all_webs.size())]);
    }
  }
  const double scale = std::max(cfg_.activity_scale, 1e-6);
  std::size_t dev_idx = 0;
  for (const Plan& plan : plans) {
    const Ipv4Addr internal{192, 168, 1, static_cast<std::uint8_t>(10 + dev_idx)};
    resolver::StubConfig stub_cfg;
    stub_cfg.resolver_addrs = resolvers_for(plan.kind, plan.opendns);
    stub_cfg.ttl_violation_prob = cfg_.ttl_violation_prob;
    stub_cfg.cache.capacity = plan.kind == DeviceKind::kIot ? 64 : 3'000;
    const bool can_encrypt = plan.kind == DeviceKind::kComputer ||
                             plan.kind == DeviceKind::kAndroid ||
                             plan.kind == DeviceKind::kAppleMobile;
    if (can_encrypt && house_rng.bernoulli(cfg_.encrypted_dns_device_frac)) {
      stub_cfg.dns_port = 853;
    }
    // Dual-stack OSes race AAAA lookups next to A (IoT gear mostly not).
    if (plan.kind != DeviceKind::kIot) stub_cfg.aaaa_prob = 0.55;
    const std::uint64_t dev_seed = derive_seed(cfg_.seed, "device", index * 64 + dev_idx);
    auto device = std::make_unique<traffic::Device>(*sim_, *house->gateway, internal,
                                                    stub_cfg, dev_seed);
    device->set_ground_truth(&truth_);

    auto add_app = [&](std::unique_ptr<traffic::App> app) {
      app->start();
      house->apps.push_back(std::move(app));
    };
    switch (plan.kind) {
      case DeviceKind::kComputer: {
        traffic::BrowserConfig bc;
        bc.household_sites = household_sites;
        bc.session_gap_mean_sec /= scale;
        // OpenDNS-configured machines belong to privacy-minded users who
        // commonly disable speculative prefetching.
        if (plan.opendns) bc.prefetch_prob = 0.2;
        add_app(std::make_unique<traffic::BrowserApp>(*device, *world_, bc,
                                                      derive_seed(dev_seed, "browser")));
        traffic::BackgroundConfig bg;
        bg.universal_services = universal_services_;
        add_app(std::make_unique<traffic::BackgroundApp>(*device, *world_, bg,
                                                         derive_seed(dev_seed, "bg")));
        if (plan.p2p) {
          add_app(std::make_unique<traffic::P2pApp>(*device, *world_, traffic::P2pConfig{},
                                                    derive_seed(dev_seed, "p2p")));
        }
        break;
      }
      case DeviceKind::kAndroid:
      case DeviceKind::kAppleMobile: {
        traffic::BrowserConfig bc;
        bc.household_sites = household_sites;
        bc.session_gap_mean_sec = bc.session_gap_mean_sec * 5.0 / scale;
        bc.pages_per_session_mean = 3.0;
        add_app(std::make_unique<traffic::BrowserApp>(*device, *world_, bc,
                                                      derive_seed(dev_seed, "browser")));
        traffic::BackgroundConfig bg;
        bg.universal_services = universal_services_;
        bg.services_min = 1;
        bg.services_max = 2;
        bg.period_min_sec = 400;
        bg.period_max_sec = 2'400;
        add_app(std::make_unique<traffic::BackgroundApp>(*device, *world_, bg,
                                                         derive_seed(dev_seed, "bg")));
        if (plan.kind == DeviceKind::kAndroid) {
          add_app(std::make_unique<traffic::ConnCheckApp>(*device, *world_,
                                                          traffic::ConnCheckConfig{},
                                                          derive_seed(dev_seed, "cc")));
        }
        break;
      }
      case DeviceKind::kTv: {
        traffic::VideoConfig vc;
        vc.session_gap_mean_sec /= scale;
        add_app(std::make_unique<traffic::VideoApp>(*device, *world_, vc,
                                                    derive_seed(dev_seed, "video")));
        traffic::BackgroundConfig bg;
        bg.universal_services = universal_services_;
        bg.services_min = 1;
        bg.services_max = 2;
        bg.period_min_sec = 600;
        add_app(std::make_unique<traffic::BackgroundApp>(*device, *world_, bg,
                                                         derive_seed(dev_seed, "bg")));
        break;
      }
      case DeviceKind::kIot: {
        traffic::IotConfig ic;
        ic.ntp = true;
        if (plan.dead_ntp) {
          ic.ntp_server = kDeadNtp;
          ic.ntp_dead = true;
        } else if (house_rng.bernoulli(0.3)) {
          ic.ntp_server = kOomaNtp[house_rng.bounded(std::size(kOomaNtp))];
        } else {
          ic.ntp_server = kLiveNtp[house_rng.bounded(std::size(kLiveNtp))];
        }
        ic.alarm = plan.alarm;
        if (plan.alarm) {
          ic.alarm_server = kAlarmNet[house_rng.bounded(std::size(kAlarmNet))];
        }
        add_app(std::make_unique<traffic::IotApp>(*device, *world_, ic,
                                                  derive_seed(dev_seed, "iot")));
        break;
      }
    }
    house->devices.push_back(std::move(device));
    ++dev_idx;
  }

  house_info_.push_back(info);
  houses_.push_back(std::move(house));
}

void Town::run() {
  run_for(cfg_.duration);
  dataset_ = harvest();
}

void Town::run_for(SimDuration amount) {
  sim_->run_until(sim_->now() + amount);
}

capture::Dataset Town::harvest() {
  harvested_ = true;
  return monitor_->harvest(sim_->now());
}

}  // namespace dnsctx::scenario
