#include "scenario/scenario.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "resolver/forwarder.hpp"
#include "util/parallel.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace dnsctx::scenario {

namespace {

using resolver::well_known::kCloudflare1;
using resolver::well_known::kCloudflare2;
using resolver::well_known::kGoogle1;
using resolver::well_known::kGoogle2;
using resolver::well_known::kIspResolver1;
using resolver::well_known::kIspResolver2;
using resolver::well_known::kOpenDns1;

/// §5.1's hard-coded service addresses.
constexpr Ipv4Addr kDeadNtp{128, 138, 141, 172};          // retired public NTP
constexpr Ipv4Addr kLiveNtp[] = {{129, 6, 15, 28}, {216, 239, 35, 0}};
constexpr Ipv4Addr kOomaNtp[] = {{76, 8, 228, 10}, {76, 8, 228, 11}};
constexpr Ipv4Addr kAlarmNet[] = {{204, 141, 57, 10}, {204, 141, 57, 11}};

enum class DeviceKind { kComputer, kAndroid, kAppleMobile, kTv, kIot };

/// Seed-label index space per shard for platform streams. Shard 0 maps
/// onto indices 0..3 — the exact labels the single-simulator code used —
/// so `shards = 1` reproduces the legacy streams bit for bit.
constexpr std::size_t kPlatformSeedStride = 16;

/// Merge per-shard timestamp-sorted record streams into one. Adjacent
/// pairs are merged with std::merge, which takes from the left range on
/// ties — so records with equal timestamps keep (shard index, per-shard
/// sequence) order, the documented deterministic tie-break.
template <typename Rec, typename Key>
std::vector<Rec> merge_sorted_shards(std::vector<std::vector<Rec>> parts, Key key) {
  const auto before = [&](const Rec& a, const Rec& b) { return key(a) < key(b); };
  while (parts.size() > 1) {
    std::vector<std::vector<Rec>> next;
    next.reserve((parts.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < parts.size(); i += 2) {
      std::vector<Rec> merged;
      merged.reserve(parts[i].size() + parts[i + 1].size());
      std::merge(std::make_move_iterator(parts[i].begin()),
                 std::make_move_iterator(parts[i].end()),
                 std::make_move_iterator(parts[i + 1].begin()),
                 std::make_move_iterator(parts[i + 1].end()), std::back_inserter(merged),
                 before);
      next.push_back(std::move(merged));
    }
    if (parts.size() % 2 == 1) next.push_back(std::move(parts.back()));
    parts = std::move(next);
  }
  return parts.empty() ? std::vector<Rec>{} : std::move(parts.front());
}

[[nodiscard]] capture::Dataset merge_shard_datasets(std::vector<capture::Dataset> parts) {
  if (parts.size() == 1) return std::move(parts.front());
  std::vector<std::vector<capture::ConnRecord>> conns;
  std::vector<std::vector<capture::DnsRecord>> dns;
  conns.reserve(parts.size());
  dns.reserve(parts.size());
  for (auto& p : parts) {
    conns.push_back(std::move(p.conns));
    dns.push_back(std::move(p.dns));
  }
  std::vector<std::vector<capture::EncFlowRecord>> encflows;
  encflows.reserve(parts.size());
  for (auto& p : parts) encflows.push_back(std::move(p.encflows));
  capture::Dataset out;
  out.conns = merge_sorted_shards(std::move(conns),
                                  [](const capture::ConnRecord& c) { return c.start; });
  out.dns =
      merge_sorted_shards(std::move(dns), [](const capture::DnsRecord& d) { return d.ts; });
  out.encflows = merge_sorted_shards(
      std::move(encflows), [](const capture::EncFlowRecord& e) { return e.start; });
  return out;
}

}  // namespace

struct Town::House {
  std::unique_ptr<netsim::HouseGateway> gateway;
  std::unique_ptr<resolver::WholeHouseForwarder> forwarder;
  std::vector<std::unique_ptr<traffic::Device>> devices;
  std::vector<std::unique_ptr<traffic::App>> apps;
};

/// One independently simulated partition of the neighborhood: its own
/// event loop, WAN, resolver-platform instances, server farm, monitor
/// tap, and a contiguous range of houses. Members are declared so the
/// houses (which reference the gateway/network) destroy first, and so
/// the simulator — whose still-pending events may hold PacketHandles —
/// destroys before the network that owns the packet arena. (These are
/// unique_ptrs filled in build_shard, so declaration order is free to
/// encode destruction order alone.)
struct Town::Shard {
  std::unique_ptr<netsim::Network> net;
  std::unique_ptr<netsim::Simulator> sim;
  std::unique_ptr<faults::PacketFaultInjector> injector;  ///< null for the empty plan
  std::vector<std::unique_ptr<resolver::RecursiveResolverPlatform>> platforms;
  std::unique_ptr<traffic::ServerFarm> farm;
  std::unique_ptr<capture::Monitor> monitor;
  std::unique_ptr<capture::TruthTap> truth_tap;  ///< null unless collect_truth
  std::unique_ptr<netsim::TapTee> tee;           ///< fans the tap to both
  std::vector<std::unique_ptr<House>> houses;
  GroundTruth truth;
};

std::vector<Ipv4Addr> resolve_outage_target(const std::string& target) {
  using namespace resolver::well_known;
  if (target == "isp" || target == "local") return {kIspResolver1, kIspResolver2};
  if (target == "upstream1") return {kIspResolver1};
  if (target == "upstream2") return {kIspResolver2};
  if (target == "google") return {kGoogle1, kGoogle2};
  if (target == "opendns") return {kOpenDns1, kOpenDns2};
  if (target == "cloudflare") return {kCloudflare1, kCloudflare2};
  if (const auto addr = Ipv4Addr::parse(target)) return {*addr};
  throw std::runtime_error{"fault plan: unknown outage target '" + target + "'"};
}

void HouseProfileMix::validate() const {
  const auto prob = [](double v, const char* name) {
    if (!(v >= 0.0 && v <= 1.0)) {  // negated comparison also rejects NaN
      throw std::runtime_error{std::string{"HouseProfileMix: "} + name +
                               " must be in [0, 1]"};
    }
  };
  prob(isp_only, "isp_only");
  prob(cloudflare, "cloudflare");
  prob(no_isp, "no_isp");
  prob(opendns_in_mixed, "opendns_in_mixed");
  const double sum = isp_only + cloudflare + no_isp;
  if (sum > 1.0 + 1e-9) {
    throw std::runtime_error{
        "HouseProfileMix: isp_only + cloudflare + no_isp = " + std::to_string(sum) +
        " exceeds 1.0 (the remainder is the mixed-profile share)"};
  }
}

Town::Town(const ScenarioConfig& cfg)
    : cfg_{cfg}, rng_{derive_seed(cfg.seed, "town")} {
  cfg_.mix.validate();
  cfg_.tuning.validate();
  cfg_.shards = std::clamp<std::size_t>(cfg_.shards, 1, std::max<std::size_t>(cfg_.houses, 1));

  resolver::ZoneDbConfig zone_cfg = cfg_.zones;
  if (zone_cfg.seed == resolver::ZoneDbConfig{}.seed) zone_cfg.seed = cfg_.seed;
  zones_ = std::make_unique<resolver::ZoneDb>(zone_cfg);
  web_ = std::make_unique<traffic::WebModel>(*zones_, cfg_.seed, cfg_.tuning.web);
  world_ = std::make_unique<traffic::AppWorld>(traffic::AppWorld{
      *zones_, *web_,
      traffic::DiurnalProfile::custom(cfg_.tuning.diurnal_hours)
          .with_start_hour(cfg_.start_hour)});

  // Endpoints every device polls (push hubs, vendor clouds): the three
  // most popular API names.
  {
    const auto& apis = zones_->ids_of(resolver::ServiceClass::kApi);
    auto universal = std::make_shared<std::vector<resolver::NameId>>();
    for (std::size_t i = 0; i < std::min<std::size_t>(3, apis.size()); ++i) {
      universal->push_back(apis[i]);
    }
    universal_services_ = std::move(universal);
  }

  // Shards are built sequentially — construction draws (profiles, house
  // inventories) must land in global house order — but each shard's
  // streams depend only on the master seed and its own indices, never on
  // the thread count used later.
  const auto profiles = assign_profiles();
  const auto p2p = assign_p2p();
  house_info_.reserve(cfg_.houses);
  shards_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    const std::size_t begin = s * cfg_.houses / cfg_.shards;
    const std::size_t end = (s + 1) * cfg_.houses / cfg_.shards;
    build_shard(s, begin, end, profiles, p2p);
  }
}

void Town::build_shard(std::size_t shard_idx, std::size_t house_begin, std::size_t house_end,
                       const std::vector<std::string>& profiles,
                       const std::vector<bool>& p2p) {
  auto shard = std::make_unique<Shard>();
  shard->sim = std::make_unique<netsim::Simulator>();

  // Shard 0 reuses the legacy (un-indexed) seed labels so a one-shard
  // town replays the historical byte stream; further shards derive
  // sibling streams off the same master seed.
  const std::uint64_t net_seed = shard_idx == 0
                                     ? derive_seed(cfg_.seed, "network")
                                     : derive_seed(cfg_.seed, "network", shard_idx);
  netsim::LatencyModel latency;
  shard->net = std::make_unique<netsim::Network>(*shard->sim, latency, net_seed);

  // Fault-plan wiring. Every fault stream lives under its own derive
  // label so an empty plan leaves all baseline streams untouched (the
  // injector is not even constructed then).
  if (cfg_.faults.has_packet_faults()) {
    shard->injector = std::make_unique<faults::PacketFaultInjector>(
        faults::PacketFaultConfig::from_plan(cfg_.faults),
        derive_seed(cfg_.seed, "faults/net", shard_idx));
    shard->net->set_fault_injector(shard->injector.get());
  }
  faults::ResolverFaultConfig resolver_faults;
  if (cfg_.faults.has_resolver_faults()) {
    resolver_faults.servfail_rate = cfg_.faults.servfail_rate;
    resolver_faults.nxdomain_rate = cfg_.faults.nxdomain_rate;
    for (const faults::Outage& o : cfg_.faults.outages) {
      for (const Ipv4Addr addr : resolve_outage_target(o.target)) {
        resolver_faults.outages.push_back(
            {addr, SimTime::origin() + SimDuration::sec(o.begin_sec),
             SimTime::origin() + SimDuration::sec(o.end_sec)});
      }
    }
  }

  for (auto& platform_cfg : resolver::default_platforms()) {
    for (const auto addr : platform_cfg.addrs) {
      shard->net->latency_mut().set_site(addr, platform_cfg.site);
      if (shard_idx == 0) resolver_addrs_.push_back(addr);
    }
    shard->platforms.push_back(std::make_unique<resolver::RecursiveResolverPlatform>(
        *shard->sim, *shard->net, *zones_, platform_cfg,
        derive_seed(cfg_.seed, "platform",
                    shard_idx * kPlatformSeedStride + shard->platforms.size())));
    if (resolver_faults.active()) {
      shard->platforms.back()->set_faults(
          resolver_faults,
          derive_seed(cfg_.seed, "faults/resolver",
                      shard_idx * kPlatformSeedStride + (shard->platforms.size() - 1)));
    }
  }

  const std::uint64_t farm_seed = shard_idx == 0 ? derive_seed(cfg_.seed, "farm")
                                                 : derive_seed(cfg_.seed, "farm", shard_idx);
  shard->farm = std::make_unique<traffic::ServerFarm>(*shard->sim, *shard->net, farm_seed);
  shard->farm->add_dead_ip(kDeadNtp);

  capture::MonitorConfig mon_cfg;
  mon_cfg.observe_encrypted_metadata = netsim::traits_for(cfg_.transport).encrypted;
  shard->monitor = std::make_unique<capture::Monitor>(mon_cfg);
  if (cfg_.collect_truth) {
    shard->truth_tap = std::make_unique<capture::TruthTap>(resolver_addrs_);
    shard->tee = std::make_unique<netsim::TapTee>(shard->monitor.get(),
                                                  shard->truth_tap.get());
    shard->net->set_tap(shard->tee.get());
  } else {
    shard->net->set_tap(shard->monitor.get());
  }

  shard->houses.reserve(house_end - house_begin);
  for (std::size_t i = house_begin; i < house_end; ++i) {
    build_house(*shard, i, profiles[i], p2p[i]);
  }
  for (const auto& p : shard->platforms) platform_view_.push_back(p.get());
  shards_.push_back(std::move(shard));
}

std::vector<bool> Town::assign_p2p() const {
  // Stratified like the profiles: the P2P-house share holds exactly.
  std::vector<bool> out(cfg_.houses, false);
  const auto quota = static_cast<std::size_t>(
      cfg_.p2p_house_frac * static_cast<double>(cfg_.houses) + 0.5);
  for (std::size_t i = 0; i < std::min(quota, out.size()); ++i) out[i] = true;
  Rng shuffle_rng{derive_seed(cfg_.seed, "p2p-houses")};
  for (std::size_t i = out.size(); i > 1; --i) {
    const std::size_t j = shuffle_rng.bounded(i);
    const bool tmp = out[i - 1];
    out[i - 1] = out[j];
    out[j] = tmp;
  }
  return out;
}

std::vector<std::string> Town::assign_profiles() const {
  // Stratified assignment: the profile mix holds exactly (up to
  // rounding) at any neighborhood size, then the order is shuffled.
  std::vector<std::string> out;
  const HouseProfileMix& mix = cfg_.mix;
  const auto quota = [&](double frac) {
    return static_cast<std::size_t>(frac * static_cast<double>(cfg_.houses) + 0.5);
  };
  for (std::size_t i = 0; i < quota(mix.isp_only); ++i) out.emplace_back("isp_only");
  for (std::size_t i = 0; i < quota(mix.cloudflare); ++i) out.emplace_back("cloudflare");
  for (std::size_t i = 0; i < quota(mix.no_isp); ++i) out.emplace_back("no_isp");
  while (out.size() < cfg_.houses) out.emplace_back("mixed");
  out.resize(cfg_.houses);
  Rng shuffle_rng{derive_seed(cfg_.seed, "profiles")};
  for (std::size_t i = out.size(); i > 1; --i) {
    std::swap(out[i - 1], out[shuffle_rng.bounded(i)]);
  }
  return out;
}

Town::~Town() = default;

netsim::Simulator& Town::sim() { return *shards_.front()->sim; }

void Town::build_house(Shard& shard, std::size_t index, const std::string& profile,
                       bool p2p_house) {
  Rng house_rng{derive_seed(cfg_.seed, "house", index)};
  auto house = std::make_unique<House>();

  const Ipv4Addr house_ip{100, 66, static_cast<std::uint8_t>(1 + index / 250),
                          static_cast<std::uint8_t>(1 + index % 250)};
  shard.net->latency_mut().set_site(
      house_ip, {SimDuration::from_ms(house_rng.uniform(0.3, 0.8)), 0.1});
  house->gateway = std::make_unique<netsim::HouseGateway>(
      *shard.sim, *shard.net, house_ip, derive_seed(cfg_.seed, "gateway", index));
  if (house_rng.bernoulli(cfg_.whole_house_cache_frac)) {
    house->forwarder = std::make_unique<resolver::WholeHouseForwarder>(
        *shard.sim, *house->gateway, Ipv4Addr{192, 168, 1, 253}, dns::CacheConfig{},
        derive_seed(cfg_.seed, "forwarder", index));
  }

  // ----- profile ----------------------------------------------------------
  HouseInfo info;
  info.external_ip = house_ip;
  info.profile = profile;

  const Ipv4Addr isp_a = house_rng.bernoulli(0.5) ? kIspResolver1 : kIspResolver2;
  const Ipv4Addr isp_b = isp_a == kIspResolver1 ? kIspResolver2 : kIspResolver1;

  auto resolvers_for = [&](DeviceKind kind, bool opendns_device) -> std::vector<Ipv4Addr> {
    if (opendns_device) return {kOpenDns1, isp_a};
    if (info.profile == "isp_only") return {isp_a, isp_b};
    if (info.profile == "cloudflare") {
      return kind == DeviceKind::kAndroid ? std::vector<Ipv4Addr>{kGoogle1, kCloudflare1}
                                          : std::vector<Ipv4Addr>{kCloudflare1, kCloudflare2};
    }
    if (info.profile == "no_isp") return {kGoogle1, kGoogle2};
    // mixed
    if (kind == DeviceKind::kAndroid) return {kGoogle1, isp_a};
    return {isp_a, isp_b};
  };

  // ----- device inventory -------------------------------------------------
  struct Plan {
    DeviceKind kind;
    bool opendns = false;
    bool p2p = false;
    bool alarm = false;
    bool dead_ntp = false;
  };
  std::vector<Plan> plans;
  // Public-DNS-only households skew light and phone-centric; everyone
  // else gets the full inventory. All population knobs come from the
  // tuning block; the defaults collapse to the historical draws (same
  // bounded() arguments, same bernoulli draw count) so the default RNG
  // stream — and every golden — is untouched.
  const traffic::TrafficTuning& tun = cfg_.tuning;
  const bool light = info.profile == "no_isp";
  const std::size_t computers =
      light ? tun.computers_light
            : tun.computers_min +
                  house_rng.bounded(tun.computers_max - tun.computers_min + 1);
  for (std::size_t i = 0; i < computers; ++i) plans.push_back({DeviceKind::kComputer});
  if (info.profile != "isp_only") {
    const std::size_t androids =
        1 + (house_rng.bernoulli(tun.android_extra_prob) ? 1 : 0);
    for (std::size_t i = 0; i < androids; ++i) plans.push_back({DeviceKind::kAndroid});
    info.has_android = true;
  }
  if (house_rng.bernoulli(light ? tun.apple_prob_light : tun.apple_prob)) {
    plans.push_back({DeviceKind::kAppleMobile});
  }
  if (house_rng.bernoulli(light ? tun.tv_prob_light : tun.tv_prob)) {
    plans.push_back({DeviceKind::kTv});
  }
  const std::size_t iots =
      tun.iot_min + house_rng.bounded(tun.iot_max - tun.iot_min + 1);
  for (std::size_t i = 0; i < iots; ++i) {
    Plan p{DeviceKind::kIot};
    p.dead_ntp = house_rng.bernoulli(cfg_.dead_ntp_frac);
    plans.push_back(p);
  }
  if (house_rng.bernoulli(tun.alarm_prob)) {
    Plan p{DeviceKind::kIot};
    p.alarm = true;
    plans.push_back(p);
  }
  if (info.profile == "mixed" && house_rng.bernoulli(cfg_.mix.opendns_in_mixed)) {
    info.has_opendns = true;
    // OpenDNS households point one configured machine and usually the
    // streaming box at it (drives OpenDNS's conn/byte share exceeding
    // its lookup share, Table 1) — but another machine still uses the
    // ISP resolvers (§3: nearly every house touches them).
    if (computers < 2) plans.push_back({DeviceKind::kComputer});
    plans.front().opendns = true;
    for (auto& p : plans) {
      if (p.kind == DeviceKind::kTv && house_rng.bernoulli(0.75)) p.opendns = true;
    }
  }
  if (p2p_house) {
    plans.front().p2p = true;
    info.has_p2p = true;
  }
  info.devices = plans.size();

  // ----- build devices + apps --------------------------------------------
  // The household's shared favourites: every browser in the house draws
  // a share of its sessions from these (drives §8's whole-house wins).
  auto household_sites = std::make_shared<std::vector<resolver::NameId>>();
  const std::size_t n_favorites = 8 + house_rng.bounded(8);
  const auto& all_webs = zones_->ids_of(resolver::ServiceClass::kWebOrigin);
  for (std::size_t i = 0; i < n_favorites; ++i) {
    // Half the family favourites follow global popularity, half are the
    // household's own niche (the local school, a hobby forum): tail
    // names whose lookups miss even the shared resolver cache, which is
    // what gives a whole-house cache its R-class wins (§8).
    if (house_rng.bernoulli(0.5) || all_webs.empty()) {
      household_sites->push_back(zones_->sample_web_site(house_rng));
    } else {
      household_sites->push_back(all_webs[house_rng.bounded(all_webs.size())]);
    }
  }
  const double scale = std::max(cfg_.activity_scale, 1e-6);
  std::size_t dev_idx = 0;
  for (const Plan& plan : plans) {
    const Ipv4Addr internal{192, 168, 1, static_cast<std::uint8_t>(10 + dev_idx)};
    resolver::StubConfig stub_cfg;
    stub_cfg.resolver_addrs = resolvers_for(plan.kind, plan.opendns);
    stub_cfg.ttl_violation_prob = cfg_.ttl_violation_prob;
    stub_cfg.cache.capacity = plan.kind == DeviceKind::kIot ? 64 : 3'000;
    const bool can_encrypt = plan.kind == DeviceKind::kComputer ||
                             plan.kind == DeviceKind::kAndroid ||
                             plan.kind == DeviceKind::kAppleMobile;
    if (can_encrypt && house_rng.bernoulli(cfg_.encrypted_dns_device_frac)) {
      stub_cfg.dns_port = 853;
    }
    // Transport scenario: capable devices move to the encrypted channel.
    // Structural (keyed on the device plan, no RNG draw), so the kDo53
    // stream is untouched. Resolverless keeps Do53 lookups — it changes
    // how records ARRIVE (server push below), not how queries travel.
    if (can_encrypt && netsim::traits_for(cfg_.transport).encrypted) {
      stub_cfg.transport = cfg_.transport;
    }
    // Dual-stack OSes race AAAA lookups next to A (IoT gear mostly not).
    if (plan.kind != DeviceKind::kIot) stub_cfg.aaaa_prob = 0.55;
    stub_cfg.retry_backoff = cfg_.faults.backoff;
    const std::uint64_t dev_seed = derive_seed(cfg_.seed, "device", index * 64 + dev_idx);
    auto device = std::make_unique<traffic::Device>(*shard.sim, *house->gateway, internal,
                                                    stub_cfg, dev_seed);
    device->set_ground_truth(&shard.truth);
    device->set_syn_backoff(cfg_.faults.backoff);

    auto add_app = [&](std::unique_ptr<traffic::App> app) {
      app->start();
      house->apps.push_back(std::move(app));
    };
    switch (plan.kind) {
      case DeviceKind::kComputer: {
        traffic::BrowserConfig bc;
        bc.household_sites = household_sites;
        bc.server_push = cfg_.transport == netsim::Transport::kResolverless;
        bc.session_gap_mean_sec /= scale * tun.browser_session_scale;
        bc.pages_per_session_mean *= tun.pages_per_session_scale;
        bc.household_site_prob = tun.household_site_prob;
        bc.junk_probe_prob = tun.junk_probe_prob;
        // OpenDNS-configured machines belong to privacy-minded users who
        // commonly disable speculative prefetching.
        bc.prefetch_prob = plan.opendns ? 0.2 : tun.prefetch_prob;
        add_app(std::make_unique<traffic::BrowserApp>(*device, *world_, bc,
                                                      derive_seed(dev_seed, "browser")));
        traffic::BackgroundConfig bg;
        bg.universal_services = universal_services_;
        bg.universal_period_min_sec /= tun.background_poll_scale;
        bg.universal_period_max_sec /= tun.background_poll_scale;
        bg.period_min_sec /= tun.background_poll_scale;
        bg.period_max_sec /= tun.background_poll_scale;
        add_app(std::make_unique<traffic::BackgroundApp>(*device, *world_, bg,
                                                         derive_seed(dev_seed, "bg")));
        if (plan.p2p) {
          add_app(std::make_unique<traffic::P2pApp>(*device, *world_, traffic::P2pConfig{},
                                                    derive_seed(dev_seed, "p2p")));
        }
        break;
      }
      case DeviceKind::kAndroid:
      case DeviceKind::kAppleMobile: {
        traffic::BrowserConfig bc;
        bc.household_sites = household_sites;
        bc.server_push = cfg_.transport == netsim::Transport::kResolverless;
        bc.session_gap_mean_sec =
            bc.session_gap_mean_sec * 5.0 / (scale * tun.browser_session_scale);
        bc.pages_per_session_mean = 3.0 * tun.pages_per_session_scale;
        bc.household_site_prob = tun.household_site_prob;
        bc.junk_probe_prob = tun.junk_probe_prob;
        bc.prefetch_prob = tun.prefetch_prob;
        add_app(std::make_unique<traffic::BrowserApp>(*device, *world_, bc,
                                                      derive_seed(dev_seed, "browser")));
        traffic::BackgroundConfig bg;
        bg.universal_services = universal_services_;
        bg.services_min = 1;
        bg.services_max = 2;
        bg.period_min_sec = 400 / tun.background_poll_scale;
        bg.period_max_sec = 2'400 / tun.background_poll_scale;
        bg.universal_period_min_sec /= tun.background_poll_scale;
        bg.universal_period_max_sec /= tun.background_poll_scale;
        add_app(std::make_unique<traffic::BackgroundApp>(*device, *world_, bg,
                                                         derive_seed(dev_seed, "bg")));
        if (plan.kind == DeviceKind::kAndroid) {
          traffic::ConnCheckConfig cc;
          cc.period_mean_sec /= tun.conncheck_scale;
          add_app(std::make_unique<traffic::ConnCheckApp>(*device, *world_, cc,
                                                          derive_seed(dev_seed, "cc")));
        }
        break;
      }
      case DeviceKind::kTv: {
        traffic::VideoConfig vc;
        vc.session_gap_mean_sec /= scale * tun.video_session_scale;
        add_app(std::make_unique<traffic::VideoApp>(*device, *world_, vc,
                                                    derive_seed(dev_seed, "video")));
        traffic::BackgroundConfig bg;
        bg.universal_services = universal_services_;
        bg.services_min = 1;
        bg.services_max = 2;
        bg.period_min_sec = 600 / tun.background_poll_scale;
        bg.universal_period_min_sec /= tun.background_poll_scale;
        bg.universal_period_max_sec /= tun.background_poll_scale;
        bg.period_max_sec /= tun.background_poll_scale;
        add_app(std::make_unique<traffic::BackgroundApp>(*device, *world_, bg,
                                                         derive_seed(dev_seed, "bg")));
        break;
      }
      case DeviceKind::kIot: {
        traffic::IotConfig ic;
        ic.ntp = true;
        if (plan.dead_ntp) {
          ic.ntp_server = kDeadNtp;
          ic.ntp_dead = true;
        } else if (house_rng.bernoulli(0.3)) {
          ic.ntp_server = kOomaNtp[house_rng.bounded(std::size(kOomaNtp))];
        } else {
          ic.ntp_server = kLiveNtp[house_rng.bounded(std::size(kLiveNtp))];
        }
        ic.alarm = plan.alarm;
        if (plan.alarm) {
          ic.alarm_server = kAlarmNet[house_rng.bounded(std::size(kAlarmNet))];
        }
        add_app(std::make_unique<traffic::IotApp>(*device, *world_, ic,
                                                  derive_seed(dev_seed, "iot")));
        break;
      }
    }
    // Junk/NXDOMAIN composition (B-Root-style storms, junk_storm pack).
    // Lives under its own derive label and is only constructed when the
    // knob is on, so default scenarios draw nothing new.
    if (tun.junk_queries_per_hour > 0.0 && plan.kind != DeviceKind::kIot &&
        plan.kind != DeviceKind::kTv) {
      traffic::JunkConfig jc;
      jc.queries_per_hour = tun.junk_queries_per_hour;
      add_app(std::make_unique<traffic::JunkApp>(*device, *world_, jc,
                                                 derive_seed(dev_seed, "junk")));
    }
    house->devices.push_back(std::move(device));
    ++dev_idx;
  }

  house_info_.push_back(info);
  shard.houses.push_back(std::move(house));
}

void Town::run() {
  if (ran_ < cfg_.duration) run_for(cfg_.duration - ran_);
  dataset_ = harvest();
}

void Town::attach_record_sink(capture::RecordSink* sink) {
  record_sink_ = sink;
  for (const auto& shard : shards_) shard->monitor->set_record_sink(sink);
}

SimTime Town::record_watermark() const {
  SimTime w = SimTime::max();
  for (const auto& shard : shards_) {
    w = std::min(w, shard->monitor->open_watermark(shard->sim->now()));
  }
  return w;
}

void Town::run_for(SimDuration amount) {
  // Each shard's event loop is fully self-contained (its own network,
  // platforms, farm, monitor); shards advance to the same end time in
  // whatever thread interleaving, with identical per-shard results.
  // A shared record sink is the one cross-shard mutable object — run
  // sequentially while one is attached.
  const unsigned threads = record_sink_ != nullptr ? 1 : cfg_.threads;
  util::parallel_for_each(threads, shards_.size(), [&](std::size_t s) {
    // Span label only materializes when metrics are on; the empty-string
    // span is the documented no-op.
    obs::StageSpan span{obs::enabled() ? "sim/shard" + std::to_string(s)
                                       : std::string{}};
    netsim::Simulator& sim = *shards_[s]->sim;
    sim.run_until(sim.now() + amount);
  });
  ran_ += amount;
  refresh_truth();
}

capture::Dataset Town::harvest() {
  harvested_ = true;
  const unsigned threads = record_sink_ != nullptr ? 1 : cfg_.threads;
  std::vector<capture::Dataset> parts(shards_.size());
  util::parallel_for_each(threads, shards_.size(), [&](std::size_t s) {
    parts[s] = shards_[s]->monitor->harvest(shards_[s]->sim->now());
  });
  refresh_truth();
  capture::Dataset fresh = merge_shard_datasets(std::move(parts));
  // run() drains the monitors into dataset_ itself, so the natural
  // run()-then-harvest() sequence used to hit already-empty monitors
  // and silently return nothing. Hand the stored capture out instead;
  // dataset() afterwards reflects that it was taken.
  if (fresh.conns.empty() && fresh.dns.empty() && fresh.encflows.empty()) {
    return std::move(dataset_);
  }
  return fresh;
}

FaultStats Town::fault_stats() const {
  FaultStats out;
  for (const auto& shard : shards_) {
    if (shard->injector) {
      out.packets_dropped += shard->injector->drops();
      out.packets_dropped_unobserved += shard->injector->drops_unobserved();
      out.packets_duplicated += shard->injector->duplicates();
      out.packets_reordered += shard->injector->reorders();
    }
    for (const auto& platform : shard->platforms) {
      out.servfail_injected += platform->stats().servfail_injected;
      out.nxdomain_injected += platform->stats().nxdomain_injected;
      out.outage_dropped += platform->stats().outage_dropped;
    }
  }
  return out;
}

void Town::publish_metrics() const {
  if (!obs::enabled()) return;
  auto& reg = obs::registry();
  std::uint64_t events = 0;
  std::uint64_t packets = 0;
  std::uint64_t taps = 0;
  std::uint64_t undeliverable = 0;
  std::uint64_t clamped = 0;
  std::uint64_t arena_live = 0;
  std::uint64_t arena_allocated = 0;
  std::size_t peak_pending = 0;
  double sim_sec = 0.0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& sh = *shards_[s];
    events += sh.sim->dispatched();
    packets += sh.net->packets_sent();
    taps += sh.net->tap_observations();
    undeliverable += sh.net->dropped();
    clamped += sh.sim->clamped_past();
    arena_live += sh.net->arena().live();
    arena_allocated += sh.net->arena().allocated();
    peak_pending = std::max(peak_pending, sh.sim->max_pending());
    sim_sec = std::max(sim_sec, sh.sim->now().to_sec());
    const std::string shard_label = "{shard=\"" + std::to_string(s) + "\"}";
    reg.gauge("sim_events_dispatched" + shard_label)
        .set(static_cast<double>(sh.sim->dispatched()));
    reg.gauge("sim_event_queue_peak" + shard_label)
        .set(static_cast<double>(sh.sim->max_pending()));
  }
  reg.gauge("sim_events_dispatched").set(static_cast<double>(events));
  reg.gauge("sim_event_queue_peak").set(static_cast<double>(peak_pending));
  // Release builds clamp past-dated at() calls to now(); a nonzero value
  // here means some model asked for time travel and should be fixed.
  reg.gauge("sim_events_clamped_past").set(static_cast<double>(clamped));
  reg.gauge("net_packet_arena_live").set(static_cast<double>(arena_live));
  reg.gauge("net_packet_arena_allocated").set(static_cast<double>(arena_allocated));
  reg.gauge("sim_seconds").set(sim_sec);
  reg.gauge("net_packets_sent").set(static_cast<double>(packets));
  reg.gauge("net_tap_observations").set(static_cast<double>(taps));
  reg.gauge("net_packets_undeliverable").set(static_cast<double>(undeliverable));
  reg.gauge("net_packets_per_sim_second")
      .set(sim_sec > 0.0 ? static_cast<double>(packets) / sim_sec : 0.0);

  // Per-platform resolver telemetry, summed across shards (platform_view_
  // is shard-major, each shard in Table 1 order, so names repeat).
  std::map<std::string, resolver::PlatformStats> by_platform;
  std::map<std::string, std::size_t> cached_by_platform;
  for (const resolver::RecursiveResolverPlatform* p : platform_view_) {
    resolver::PlatformStats& agg = by_platform[p->config().name];
    const resolver::PlatformStats& st = p->stats();
    agg.queries += st.queries;
    agg.shard_hits += st.shard_hits;
    agg.ambient_hits += st.ambient_hits;
    agg.auth_resolutions += st.auth_resolutions;
    agg.nxdomain += st.nxdomain;
    cached_by_platform[p->config().name] += p->cached_entries();
  }
  for (const auto& [name, st] : by_platform) {
    const std::string label = "{platform=\"" + name + "\"}";
    reg.gauge("resolver_queries" + label).set(static_cast<double>(st.queries));
    reg.gauge("resolver_cache_hit_rate" + label).set(st.cache_hit_rate());
    reg.gauge("resolver_auth_resolutions" + label)
        .set(static_cast<double>(st.auth_resolutions));
    reg.gauge("resolver_nxdomain" + label).set(static_cast<double>(st.nxdomain));
    reg.gauge("resolver_cached_entries" + label)
        .set(static_cast<double>(cached_by_platform[name]));
  }

  const FaultStats f = fault_stats();
  reg.gauge("faults_packets_dropped").set(static_cast<double>(f.packets_dropped));
  reg.gauge("faults_packets_dropped_unobserved")
      .set(static_cast<double>(f.packets_dropped_unobserved));
  reg.gauge("faults_packets_duplicated").set(static_cast<double>(f.packets_duplicated));
  reg.gauge("faults_packets_reordered").set(static_cast<double>(f.packets_reordered));
  reg.gauge("faults_servfail_injected").set(static_cast<double>(f.servfail_injected));
  reg.gauge("faults_nxdomain_injected").set(static_cast<double>(f.nxdomain_injected));
  reg.gauge("faults_outage_dropped").set(static_cast<double>(f.outage_dropped));
}

void Town::refresh_truth() {
  truth_ = GroundTruth{};
  for (const auto& shard : shards_) {
    truth_.fetches += shard->truth.fetches;
    truth_.fetch_cache_hits += shard->truth.fetch_cache_hits;
    truth_.fetch_cache_expired += shard->truth.fetch_cache_expired;
    truth_.fetch_blocked += shard->truth.fetch_blocked;
    truth_.prefetches += shard->truth.prefetches;
    truth_.no_dns_conns += shard->truth.no_dns_conns;
    truth_.fetch_pushed_hits += shard->truth.fetch_pushed_hits;
  }
}

std::vector<capture::TruthFlow> Town::truth_flows() const {
  std::vector<capture::TruthFlow> out;
  for (const auto& shard : shards_) {
    if (!shard->truth_tap) continue;
    const auto& flows = shard->truth_tap->flows();
    out.insert(out.end(), flows.begin(), flows.end());
  }
  // Canonical order: start time, shard index breaking ties (stable sort
  // over the shard-order concatenation).
  std::stable_sort(out.begin(), out.end(),
                   [](const capture::TruthFlow& a, const capture::TruthFlow& b) {
                     return a.start < b.start;
                   });
  return out;
}

}  // namespace dnsctx::scenario
