#include "scenario/pack.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.hpp"

namespace dnsctx::scenario {

namespace {

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

template <typename T>
[[nodiscard]] T parse_number(std::string_view v) {
  T out{};
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec == std::errc::result_out_of_range) {
    throw std::runtime_error{
        strfmt("number '%.*s' is out of range", static_cast<int>(v.size()), v.data())};
  }
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    throw std::runtime_error{
        strfmt("bad number '%.*s'", static_cast<int>(v.size()), v.data())};
  }
  if constexpr (std::is_floating_point_v<T>) {
    if (!std::isfinite(out)) {
      throw std::runtime_error{strfmt("number '%.*s' must be finite",
                                      static_cast<int>(v.size()), v.data())};
    }
  }
  return out;
}

[[nodiscard]] double parse_prob(std::string_view v) {
  const double p = parse_number<double>(v);
  if (p < 0.0 || p > 1.0) {
    throw std::runtime_error{
        strfmt("probability '%.*s' must be in [0, 1]", static_cast<int>(v.size()),
               v.data())};
  }
  return p;
}

[[nodiscard]] double parse_positive(std::string_view v) {
  const double x = parse_number<double>(v);
  if (!(x > 0.0)) {
    throw std::runtime_error{
        strfmt("value '%.*s' must be > 0", static_cast<int>(v.size()), v.data())};
  }
  return x;
}

[[nodiscard]] double parse_non_negative(std::string_view v) {
  const double x = parse_number<double>(v);
  if (x < 0.0) {
    throw std::runtime_error{
        strfmt("value '%.*s' must be >= 0", static_cast<int>(v.size()), v.data())};
  }
  return x;
}

[[nodiscard]] std::size_t parse_count(std::string_view v) {
  return parse_number<std::size_t>(v);
}

[[nodiscard]] std::size_t parse_count_min1(std::string_view v) {
  const std::size_t n = parse_count(v);
  if (n == 0) {
    throw std::runtime_error{
        strfmt("value '%.*s' must be >= 1", static_cast<int>(v.size()), v.data())};
  }
  return n;
}

/// Optionally double-quoted string (quotes required when the value
/// could be mistaken for syntax; bare tokens are fine otherwise).
[[nodiscard]] std::string parse_string(std::string_view v) {
  if (!v.empty() && v.front() == '"') {
    if (v.size() < 2 || v.back() != '"') {
      throw std::runtime_error{"unterminated quoted string"};
    }
    const std::string_view inner = v.substr(1, v.size() - 2);
    if (inner.find('"') != std::string_view::npos) {
      throw std::runtime_error{"stray '\"' inside quoted string"};
    }
    return std::string{inner};
  }
  if (v.find('"') != std::string_view::npos) {
    throw std::runtime_error{"stray '\"' in unquoted value"};
  }
  return std::string{v};
}

[[nodiscard]] std::array<double, 24> parse_hours(std::string_view v) {
  std::array<double, 24> out{};
  std::size_t idx = 0;
  while (true) {
    const auto comma = v.find(',');
    const std::string_view tok = trim(v.substr(0, comma));
    if (idx >= out.size()) throw std::runtime_error{"expected exactly 24 hour values"};
    out[idx++] = parse_number<double>(tok);
    if (comma == std::string_view::npos) break;
    v.remove_prefix(comma + 1);
  }
  if (idx != out.size()) throw std::runtime_error{"expected exactly 24 hour values"};
  return out;
}

[[nodiscard]] bool valid_pack_name(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

PackInfo apply_pack(std::string_view text, const std::string& source,
                    ScenarioConfig* cfg) {
  PackInfo info;
  auto& tun = cfg->tuning;

  // Dispatch table keyed "section.key". Setters parse + range-check the
  // value and throw location-free messages; the line loop adds
  // source + line + key. Cross-key constraints (min <= max, mix sums)
  // are checked once at end of file.
  using Setter = std::function<void(std::string_view)>;
  const std::unordered_map<std::string, Setter> setters = {
      // [pack]
      {"pack.name",
       [&](auto v) {
         const std::string name = parse_string(v);
         if (!valid_pack_name(name)) {
           throw std::runtime_error{
               "pack name must be 1-64 chars of [A-Za-z0-9._-]"};
         }
         info.name = name;
       }},
      {"pack.description", [&](auto v) { info.description = parse_string(v); }},
      // [mix]
      {"mix.isp_only", [&](auto v) { cfg->mix.isp_only = parse_prob(v); }},
      {"mix.cloudflare", [&](auto v) { cfg->mix.cloudflare = parse_prob(v); }},
      {"mix.no_isp", [&](auto v) { cfg->mix.no_isp = parse_prob(v); }},
      {"mix.opendns_in_mixed",
       [&](auto v) { cfg->mix.opendns_in_mixed = parse_prob(v); }},
      // [scenario] — composition-side ScenarioConfig knobs only; run
      // shape (seed/houses/duration/shards/threads) stays with the CLI.
      {"scenario.activity_scale",
       [&](auto v) { cfg->activity_scale = parse_positive(v); }},
      {"scenario.ttl_violation_prob",
       [&](auto v) { cfg->ttl_violation_prob = parse_prob(v); }},
      {"scenario.dead_ntp_frac", [&](auto v) { cfg->dead_ntp_frac = parse_prob(v); }},
      {"scenario.p2p_house_frac",
       [&](auto v) { cfg->p2p_house_frac = parse_prob(v); }},
      {"scenario.encrypted_dns_device_frac",
       [&](auto v) { cfg->encrypted_dns_device_frac = parse_prob(v); }},
      {"scenario.whole_house_cache_frac",
       [&](auto v) { cfg->whole_house_cache_frac = parse_prob(v); }},
      {"scenario.start_hour",
       [&](auto v) {
         const auto h = parse_number<int>(v);
         if (h < 0 || h > 23) throw std::runtime_error{"start_hour must be in [0, 23]"};
         cfg->start_hour = h;
       }},
      // [zones]
      {"zones.web_sites",
       [&](auto v) { cfg->zones.web_sites = parse_count_min1(v); }},
      {"zones.cdn_domains",
       [&](auto v) { cfg->zones.cdn_domains = parse_count_min1(v); }},
      {"zones.ad_domains", [&](auto v) { cfg->zones.ad_domains = parse_count(v); }},
      {"zones.tracker_domains",
       [&](auto v) { cfg->zones.tracker_domains = parse_count(v); }},
      {"zones.api_domains", [&](auto v) { cfg->zones.api_domains = parse_count(v); }},
      {"zones.video_sites",
       [&](auto v) { cfg->zones.video_sites = parse_count_min1(v); }},
      {"zones.other_names", [&](auto v) { cfg->zones.other_names = parse_count(v); }},
      {"zones.zipf_exponent",
       [&](auto v) { cfg->zones.zipf_exponent = parse_positive(v); }},
      {"zones.edges_per_cdn",
       [&](auto v) { cfg->zones.edges_per_cdn = parse_count_min1(v); }},
      {"zones.hosting_pool_ips",
       [&](auto v) { cfg->zones.hosting_pool_ips = parse_count_min1(v); }},
      // [devices]
      {"devices.computers_min",
       [&](auto v) { tun.computers_min = parse_count_min1(v); }},
      {"devices.computers_max", [&](auto v) { tun.computers_max = parse_count(v); }},
      {"devices.computers_light",
       [&](auto v) { tun.computers_light = parse_count_min1(v); }},
      {"devices.android_extra_prob",
       [&](auto v) { tun.android_extra_prob = parse_prob(v); }},
      {"devices.apple_prob", [&](auto v) { tun.apple_prob = parse_prob(v); }},
      {"devices.apple_prob_light",
       [&](auto v) { tun.apple_prob_light = parse_prob(v); }},
      {"devices.tv_prob", [&](auto v) { tun.tv_prob = parse_prob(v); }},
      {"devices.tv_prob_light", [&](auto v) { tun.tv_prob_light = parse_prob(v); }},
      {"devices.iot_min", [&](auto v) { tun.iot_min = parse_count(v); }},
      {"devices.iot_max", [&](auto v) { tun.iot_max = parse_count(v); }},
      {"devices.alarm_prob", [&](auto v) { tun.alarm_prob = parse_prob(v); }},
      // [apps]
      {"apps.browser_session_scale",
       [&](auto v) { tun.browser_session_scale = parse_positive(v); }},
      {"apps.video_session_scale",
       [&](auto v) { tun.video_session_scale = parse_positive(v); }},
      {"apps.background_poll_scale",
       [&](auto v) { tun.background_poll_scale = parse_positive(v); }},
      {"apps.pages_per_session_scale",
       [&](auto v) { tun.pages_per_session_scale = parse_positive(v); }},
      {"apps.conncheck_scale",
       [&](auto v) { tun.conncheck_scale = parse_positive(v); }},
      {"apps.prefetch_prob", [&](auto v) { tun.prefetch_prob = parse_prob(v); }},
      {"apps.household_site_prob",
       [&](auto v) { tun.household_site_prob = parse_prob(v); }},
      {"apps.junk_probe_prob", [&](auto v) { tun.junk_probe_prob = parse_prob(v); }},
      {"apps.junk_queries_per_hour",
       [&](auto v) { tun.junk_queries_per_hour = parse_non_negative(v); }},
      // [web]
      {"web.cdn_min", [&](auto v) { tun.web.cdn_min = parse_count(v); }},
      {"web.cdn_max", [&](auto v) { tun.web.cdn_max = parse_count(v); }},
      {"web.ad_min", [&](auto v) { tun.web.ad_min = parse_count(v); }},
      {"web.ad_max", [&](auto v) { tun.web.ad_max = parse_count(v); }},
      {"web.tracker_min", [&](auto v) { tun.web.tracker_min = parse_count(v); }},
      {"web.tracker_max", [&](auto v) { tun.web.tracker_max = parse_count(v); }},
      {"web.api_min", [&](auto v) { tun.web.api_min = parse_count(v); }},
      {"web.api_max", [&](auto v) { tun.web.api_max = parse_count(v); }},
      {"web.links_min", [&](auto v) { tun.web.links_min = parse_count(v); }},
      {"web.links_max", [&](auto v) { tun.web.links_max = parse_count(v); }},
      // [diurnal]
      {"diurnal.profile",
       [&](auto v) {
         const std::string p = parse_string(v);
         if (p == "residential") {
           tun.diurnal_hours = traffic::kResidentialHours;
         } else if (p == "office") {
           tun.diurnal_hours = traffic::kOfficeHours;
         } else if (p == "flat") {
           tun.diurnal_hours.fill(1.0);
         } else {
           throw std::runtime_error{
               "unknown diurnal profile '" + p +
               "' (expected residential, flat, or office)"};
         }
       }},
      {"diurnal.hours",
       [&](auto v) {
         tun.diurnal_hours = parse_hours(v);
         (void)traffic::DiurnalProfile::custom(tun.diurnal_hours);
       }},
      // [faults]
      {"faults.plan",
       [&](auto v) { cfg->faults = faults::FaultPlan::parse(parse_string(v)); }},
      // [transport]
      {"transport.default",
       [&](auto v) {
         const std::string name = parse_string(v);
         const auto t = netsim::parse_transport(name);
         if (!t) {
           throw std::runtime_error{
               "unknown transport '" + name +
               "' (expected do53, dot, doh, or resolverless)"};
         }
         cfg->transport = *t;
       }},
  };

  static const std::unordered_set<std::string> kSections = {
      "pack", "mix",     "scenario", "zones",  "devices",
      "apps", "web",     "diurnal",  "faults", "transport"};

  const auto fail = [&source](std::size_t line_no, const std::string& msg) {
    throw std::runtime_error{
        strfmt("%s line %zu: %s", source.c_str(), line_no, msg.c_str())};
  };

  std::string section;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    const std::string_view raw =
        text.substr(pos, nl == std::string_view::npos ? std::string_view::npos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    const std::string_view stripped = trim(raw);
    if (stripped.empty() || stripped.front() == '#' || stripped.front() == ';') {
      continue;
    }
    if (stripped.front() == '[') {
      if (stripped.back() != ']') {
        fail(line_no, "malformed section header (expected [name])");
      }
      const std::string name{trim(stripped.substr(1, stripped.size() - 2))};
      if (kSections.find(name) == kSections.end()) {
        fail(line_no, "unknown section '[" + name + "]'");
      }
      section = name;
      continue;
    }
    const auto eq = stripped.find('=');
    if (eq == std::string_view::npos) {
      fail(line_no, "expected key = value");
    }
    const std::string key{trim(stripped.substr(0, eq))};
    const std::string_view value = trim(stripped.substr(eq + 1));
    if (section.empty()) {
      fail(line_no, "key '" + key + "' appears before any [section]");
    }
    const auto it = setters.find(section + "." + key);
    if (it == setters.end()) {
      fail(line_no, "unknown key '" + key + "' in section [" + section + "]");
    }
    try {
      it->second(value);
    } catch (const std::exception& e) {
      fail(line_no, "key '" + key + "': " + e.what());
    }
  }

  if (info.name.empty()) {
    throw std::runtime_error{source + ": pack is missing required [pack] name"};
  }
  // Cross-key constraints last, so they see the final state no matter
  // the key order in the file.
  try {
    cfg->mix.validate();
    cfg->tuning.validate();
  } catch (const std::exception& e) {
    throw std::runtime_error{source + ": " + e.what()};
  }
  cfg->pack = info.name;
  return info;
}

PackInfo apply_pack_file(const std::string& path, ScenarioConfig* cfg) {
  std::ifstream is{path};
  if (!is) throw std::runtime_error{"pack: cannot open " + path};
  std::ostringstream buf;
  buf << is.rdbuf();
  return apply_pack(buf.str(), path, cfg);
}

}  // namespace dnsctx::scenario
