// dnsctx — scenario packs: named, shareable query-composition presets.
//
// A pack is a sectioned INI/TOML-ish file that overrides the
// composition knobs of a ScenarioConfig — device population, app rates,
// web fanout, zone popularity, junk/NXDOMAIN rate, diurnal shape, and
// per-pack fault/transport defaults — without touching run-shape knobs
// (seed, houses, duration, shards, threads), which stay with the CLI.
// Parsing has the strict-flag rigor of the CLI: unknown sections/keys,
// malformed or out-of-range values and structural errors all throw
// std::runtime_error naming the file and line. See examples/packs/.
//
//   [pack]
//   name = iot_heavy            # required, [A-Za-z0-9._-]
//   description = "..."         # optional
//   [devices]                   # TrafficTuning population knobs
//   iot_max = 6
//   [apps]                      # rates/probabilities
//   junk_queries_per_hour = 40
//   [web]                       # fanout ranges
//   cdn_max = 9
//   [zones]                     # ZoneDb population
//   web_sites = 120
//   [mix]                       # HouseProfileMix
//   isp_only = 0.3
//   [scenario]                  # composition knobs of ScenarioConfig
//   activity_scale = 1.5
//   [diurnal]
//   profile = flat              # residential | flat | office
//   hours = 1,1,...             # or an explicit 24-value table
//   [faults]
//   plan = "loss=0.01"          # docs/FAULTS.md grammar
//   [transport]
//   default = dot               # do53 | dot | doh | resolverless
#pragma once

#include <string>
#include <string_view>

#include "scenario/scenario.hpp"

namespace dnsctx::scenario {

/// Identity of a successfully applied pack.
struct PackInfo {
  std::string name;
  std::string description;
};

/// Parse pack `text` and apply its overrides onto `cfg`. `source` names
/// the origin in error messages (the file path, or "<pack>" for tests
/// and fuzzing). Throws std::runtime_error on any malformed input;
/// `cfg` may be partially updated when that happens — callers should
/// treat it as poisoned. On success, cfg->pack is set to the pack name
/// and the combined tuning/mix is re-validated.
PackInfo apply_pack(std::string_view text, const std::string& source,
                    ScenarioConfig* cfg);

/// Load a pack file and apply it (errors name the path).
PackInfo apply_pack_file(const std::string& path, ScenarioConfig* cfg);

}  // namespace dnsctx::scenario
