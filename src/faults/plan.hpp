// dnsctx — deterministic fault-injection plans.
//
// A FaultPlan is the declarative description of an impairment scenario:
// packet-level loss/duplication/reordering on the WAN, resolver-side
// failures (SERVFAIL, NXDOMAIN, timed outages of individual service
// addresses), and the client-side recovery aggressiveness (retry
// backoff). Plans parse from and render to a compact `key=value` spec so
// they travel through config files, CLI flags and bench records; the
// round-trip is exact (doubles use shortest-round-trip formatting).
//
// Determinism contract: the empty plan is byte-identical to a build
// without the faults layer at all — no RNG stream is created or
// advanced, no event schedule changes. Non-empty plans draw from
// dedicated streams (`faults/net`, `faults/resolver`) derived from the
// scenario seed, so the same seed + plan always replays the same run.
// See docs/FAULTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dnsctx::faults {

/// A timed outage of one resolver service address: every packet to the
/// address in [begin_sec, end_sec) of simulated time is silently
/// dropped at the service — no SYN-ACK, no answer, exactly like a dead
/// or overloaded box. Targets are symbolic at plan level ("upstream1",
/// "google", a dotted quad); the scenario resolves them to addresses.
struct Outage {
  std::string target;
  std::int64_t begin_sec = 0;
  std::int64_t end_sec = 0;

  bool operator==(const Outage&) const = default;
};

struct FaultPlan {
  /// Probability any given WAN packet is dropped in flight.
  double loss = 0.0;
  /// Probability a delivered packet is duplicated (both copies arrive).
  double dup = 0.0;
  /// Probability a delivered packet is held back by an extra queueing
  /// delay, arriving out of order relative to its successors.
  double reorder = 0.0;
  /// Extra delay applied to reordered packets (milliseconds).
  double reorder_extra_ms = 30.0;
  /// Per-query probability a recursive resolver answers SERVFAIL.
  double servfail_rate = 0.0;
  /// Per-query probability a recursive resolver answers NXDOMAIN even
  /// for names it could resolve (upstream auth failure / lame zone).
  double nxdomain_rate = 0.0;
  /// Stub retry timeout multiplier per successive timeout (exponential
  /// backoff). 1.0 = fixed timeout, the historical behaviour.
  double backoff = 1.0;
  std::vector<Outage> outages;

  bool operator==(const FaultPlan&) const = default;

  /// True when the plan changes nothing (the byte-identity baseline).
  [[nodiscard]] bool empty() const { return *this == FaultPlan{}; }
  [[nodiscard]] bool has_packet_faults() const {
    return loss > 0.0 || dup > 0.0 || reorder > 0.0;
  }
  [[nodiscard]] bool has_resolver_faults() const {
    return servfail_rate > 0.0 || nxdomain_rate > 0.0 || !outages.empty();
  }

  /// Parse a spec like
  ///   "loss=0.01,dup=0.002,outage=upstream1:3600-4200,servfail=0.005"
  /// Unknown keys, malformed numbers, rates outside [0,1], backoff
  /// outside [1,64] and empty/inverted outage windows throw
  /// std::runtime_error. The empty string parses to the empty plan.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

  /// Render back to the spec grammar; only non-default fields appear,
  /// so the default plan renders as "". parse(to_string()) == *this.
  [[nodiscard]] std::string to_string() const;
};

/// Parse one outage clause ("target:begin-end", seconds). Shared by the
/// plan grammar and the CLI's repeatable --resolver-outage flag.
[[nodiscard]] Outage parse_outage(std::string_view spec);

}  // namespace dnsctx::faults
