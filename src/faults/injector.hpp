// dnsctx — runtime fault injectors driven by a FaultPlan.
//
// Two halves, matching where impairments physically occur:
//   * PacketFaultInjector — consulted by netsim::Network once per
//     packet. Owns its own RNG stream (`faults/net` per shard) so the
//     baseline streams (latency jitter, app behaviour) are untouched;
//     with all rates zero it never draws, keeping empty-plan runs
//     byte-identical.
//   * ResolverFaultConfig — per-platform failure knobs plus timed
//     outage windows, applied inside RecursiveResolverPlatform with its
//     own `faults/resolver` stream.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/plan.hpp"
#include "util/ip.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace dnsctx::faults {

struct PacketFaultConfig {
  double loss = 0.0;
  double dup = 0.0;
  double reorder = 0.0;
  /// Extra queueing delay for reordered packets.
  SimDuration reorder_extra = SimDuration::from_ms(30.0);
  /// Gap between the two copies of a duplicated packet.
  SimDuration dup_gap = SimDuration::us(400);

  [[nodiscard]] static PacketFaultConfig from_plan(const FaultPlan& plan) {
    PacketFaultConfig cfg;
    cfg.loss = plan.loss;
    cfg.dup = plan.dup;
    cfg.reorder = plan.reorder;
    cfg.reorder_extra = SimDuration::from_ms(plan.reorder_extra_ms);
    return cfg;
  }
};

/// What the network should do with one packet.
struct FaultDecision {
  bool drop = false;
  /// A dropped packet lost on the access leg before the aggregation
  /// point is invisible to the monitor; one lost past the tap was
  /// observed but never delivered. The coin is fair — the model does
  /// not privilege either side of the tap.
  bool drop_before_tap = false;
  bool duplicate = false;
  SimDuration extra_delay = SimDuration::zero();
  SimDuration dup_gap = SimDuration::zero();
};

/// Per-shard packet impairment source. Every draw is gated on its rate
/// being nonzero, so a zero-rate injector consumes no randomness and
/// decide() degenerates to the identity decision.
class PacketFaultInjector {
 public:
  PacketFaultInjector(PacketFaultConfig cfg, std::uint64_t seed) : cfg_{cfg}, rng_{seed} {}

  [[nodiscard]] FaultDecision decide() {
    FaultDecision d;
    if (cfg_.loss > 0.0 && rng_.bernoulli(cfg_.loss)) {
      d.drop = true;
      d.drop_before_tap = rng_.bernoulli(0.5);
      ++drops_;
      if (d.drop_before_tap) ++drops_unobserved_;
      return d;  // a lost packet cannot also duplicate or reorder
    }
    if (cfg_.dup > 0.0 && rng_.bernoulli(cfg_.dup)) {
      d.duplicate = true;
      d.dup_gap = cfg_.dup_gap;
      ++duplicates_;
    }
    if (cfg_.reorder > 0.0 && rng_.bernoulli(cfg_.reorder)) {
      d.extra_delay = cfg_.reorder_extra;
      ++reorders_;
    }
    return d;
  }

  [[nodiscard]] const PacketFaultConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::uint64_t drops_unobserved() const { return drops_unobserved_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] std::uint64_t reorders() const { return reorders_; }

 private:
  PacketFaultConfig cfg_;
  Rng rng_;
  std::uint64_t drops_ = 0;
  std::uint64_t drops_unobserved_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t reorders_ = 0;
};

/// One resolved outage window (plan targets mapped to addresses).
struct OutageWindow {
  Ipv4Addr addr;
  SimTime begin;
  SimTime end;
};

struct ResolverFaultConfig {
  double servfail_rate = 0.0;
  double nxdomain_rate = 0.0;
  std::vector<OutageWindow> outages;

  [[nodiscard]] bool active() const {
    return servfail_rate > 0.0 || nxdomain_rate > 0.0 || !outages.empty();
  }

  /// True when `service_addr` is dark at `now`. Windows are few (one
  /// per plan clause), so a linear scan on the resolver's hot path is
  /// cheaper than any index.
  [[nodiscard]] bool in_outage(Ipv4Addr service_addr, SimTime now) const {
    for (const OutageWindow& w : outages) {
      if (w.addr == service_addr && now >= w.begin && now < w.end) return true;
    }
    return false;
  }
};

}  // namespace dnsctx::faults
