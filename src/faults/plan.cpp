#include "faults/plan.hpp"

#include <charconv>
#include <stdexcept>
#include <system_error>

#include "util/strings.hpp"

namespace dnsctx::faults {

namespace {

[[nodiscard]] std::runtime_error bad(std::string_view what, std::string_view detail) {
  return std::runtime_error{
      strfmt("fault plan: %.*s '%.*s'", static_cast<int>(what.size()), what.data(),
             static_cast<int>(detail.size()), detail.data())};
}

[[nodiscard]] double parse_double(std::string_view v) {
  double out{};
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) throw bad("bad number", v);
  return out;
}

[[nodiscard]] std::int64_t parse_int(std::string_view v) {
  std::int64_t out{};
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) throw bad("bad number", v);
  return out;
}

[[nodiscard]] double parse_rate(std::string_view key, std::string_view v) {
  const double rate = parse_double(v);
  if (rate < 0.0 || rate > 1.0) throw bad("rate outside [0,1] for", key);
  return rate;
}

/// Shortest decimal string that round-trips to exactly this double —
/// what makes parse(to_string(plan)) == plan hold bit for bit.
[[nodiscard]] std::string exact(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string{"0"};
}

}  // namespace

Outage parse_outage(std::string_view spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0) throw bad("bad outage", spec);
  const std::string_view window = spec.substr(colon + 1);
  const auto dash = window.find('-');
  if (dash == std::string_view::npos) throw bad("bad outage", spec);
  Outage o;
  o.target = std::string{spec.substr(0, colon)};
  o.begin_sec = parse_int(window.substr(0, dash));
  o.end_sec = parse_int(window.substr(dash + 1));
  if (o.begin_sec < 0 || o.end_sec <= o.begin_sec) throw bad("empty outage window", spec);
  return o;
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    auto comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string_view::npos) throw bad("expected key=value, got", item);
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "loss") {
      plan.loss = parse_rate(key, value);
    } else if (key == "dup") {
      plan.dup = parse_rate(key, value);
    } else if (key == "reorder") {
      plan.reorder = parse_rate(key, value);
    } else if (key == "reorder-ms") {
      plan.reorder_extra_ms = parse_double(value);
      if (plan.reorder_extra_ms < 0.0) throw bad("negative delay for", key);
    } else if (key == "servfail") {
      plan.servfail_rate = parse_rate(key, value);
    } else if (key == "nxdomain") {
      plan.nxdomain_rate = parse_rate(key, value);
    } else if (key == "backoff") {
      plan.backoff = parse_double(value);
      if (plan.backoff < 1.0 || plan.backoff > 64.0) {
        throw bad("backoff outside [1,64]", value);
      }
    } else if (key == "outage") {
      plan.outages.push_back(parse_outage(value));
    } else {
      throw bad("unknown key", key);
    }
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  const FaultPlan defaults;
  std::string out;
  const auto emit = [&out](std::string_view key, const std::string& value) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  };
  if (loss != defaults.loss) emit("loss", exact(loss));
  if (dup != defaults.dup) emit("dup", exact(dup));
  if (reorder != defaults.reorder) emit("reorder", exact(reorder));
  if (reorder_extra_ms != defaults.reorder_extra_ms) {
    emit("reorder-ms", exact(reorder_extra_ms));
  }
  if (servfail_rate != defaults.servfail_rate) emit("servfail", exact(servfail_rate));
  if (nxdomain_rate != defaults.nxdomain_rate) emit("nxdomain", exact(nxdomain_rate));
  if (backoff != defaults.backoff) emit("backoff", exact(backoff));
  for (const Outage& o : outages) {
    emit("outage", strfmt("%s:%lld-%lld", o.target.c_str(),
                          static_cast<long long>(o.begin_sec),
                          static_cast<long long>(o.end_sec)));
  }
  return out;
}

}  // namespace dnsctx::faults
