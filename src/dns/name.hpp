// dnsctx — DNS domain names (RFC 1034 §3.1, RFC 1035 §2.3.1).
//
// Names are stored normalised to ASCII lowercase since DNS name matching
// is case-insensitive; the original spelling is not preserved (Bro logs
// normalise the same way).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dnsctx::dns {

/// A fully-qualified domain name without the trailing root dot
/// ("www.example.com"). The empty name represents the DNS root.
class DomainName {
 public:
  DomainName() = default;

  /// Parse from presentation format. Enforces RFC limits: labels 1..63
  /// octets, total name <= 253 presentation octets, LDH + underscore
  /// charset (underscore occurs in real traffic: _dmarc, DNS-SD, ...).
  /// Returns nullopt on violation.
  [[nodiscard]] static std::optional<DomainName> parse(std::string_view presentation);

  /// Parse or throw std::invalid_argument — for literals known valid.
  [[nodiscard]] static DomainName must(std::string_view presentation);

  /// Build from already-validated labels (used by the wire decoder).
  [[nodiscard]] static std::optional<DomainName> from_labels(
      std::span<const std::string_view> labels);

  [[nodiscard]] bool is_root() const { return text_.empty(); }
  [[nodiscard]] std::size_t label_count() const;
  [[nodiscard]] const std::string& text() const { return text_; }

  /// Labels left-to-right ("www", "example", "com").
  [[nodiscard]] std::vector<std::string_view> labels() const;

  /// The name with the leftmost label removed; root stays root.
  [[nodiscard]] DomainName parent() const;

  /// True if this name equals `zone` or is below it.
  [[nodiscard]] bool is_within(const DomainName& zone) const;

  /// Registrable-domain approximation: the last two labels (our simulated
  /// universe only uses two-label public suffixes like ".com", ".net").
  [[nodiscard]] DomainName registrable() const;

  auto operator<=>(const DomainName&) const = default;

 private:
  explicit DomainName(std::string normalized) : text_{std::move(normalized)} {}
  std::string text_;  // normalized lowercase, no trailing dot
};

struct DomainNameHash {
  [[nodiscard]] std::size_t operator()(const DomainName& n) const noexcept {
    return std::hash<std::string>{}(n.text());
  }
};

/// Maximum label length in octets (RFC 1035 §2.3.4).
inline constexpr std::size_t kMaxLabelLen = 63;
/// Maximum presentation-format name length we accept.
inline constexpr std::size_t kMaxNameLen = 253;

}  // namespace dnsctx::dns
