#include "dns/name.hpp"

#include <cctype>
#include <stdexcept>

namespace dnsctx::dns {

namespace {

[[nodiscard]] bool valid_label_char(char c) {
  const auto u = static_cast<unsigned char>(c);
  return std::isalnum(u) != 0 || c == '-' || c == '_';
}

[[nodiscard]] bool valid_label(std::string_view label) {
  if (label.empty() || label.size() > kMaxLabelLen) return false;
  for (char c : label) {
    if (!valid_label_char(c)) return false;
  }
  return true;
}

}  // namespace

std::optional<DomainName> DomainName::parse(std::string_view presentation) {
  if (!presentation.empty() && presentation.back() == '.') {
    presentation.remove_suffix(1);  // accept FQDN spelling
  }
  if (presentation.empty()) return DomainName{""};  // the root
  if (presentation.size() > kMaxNameLen) return std::nullopt;

  std::string normalized;
  normalized.reserve(presentation.size());
  std::size_t label_start = 0;
  for (std::size_t i = 0; i <= presentation.size(); ++i) {
    if (i == presentation.size() || presentation[i] == '.') {
      if (!valid_label(presentation.substr(label_start, i - label_start))) return std::nullopt;
      label_start = i + 1;
    }
  }
  for (char c : presentation) {
    normalized.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return DomainName{std::move(normalized)};
}

DomainName DomainName::must(std::string_view presentation) {
  auto n = parse(presentation);
  if (!n) throw std::invalid_argument{"invalid domain name: " + std::string{presentation}};
  return *std::move(n);
}

std::optional<DomainName> DomainName::from_labels(std::span<const std::string_view> labels) {
  std::string joined;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) joined.push_back('.');
    joined.append(labels[i]);
  }
  return parse(joined);
}

std::size_t DomainName::label_count() const {
  if (text_.empty()) return 0;
  std::size_t n = 1;
  for (char c : text_) {
    if (c == '.') ++n;
  }
  return n;
}

std::vector<std::string_view> DomainName::labels() const {
  std::vector<std::string_view> out;
  if (text_.empty()) return out;
  std::string_view sv{text_};
  std::size_t start = 0;
  for (std::size_t i = 0; i <= sv.size(); ++i) {
    if (i == sv.size() || sv[i] == '.') {
      out.push_back(sv.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

DomainName DomainName::parent() const {
  const auto dot = text_.find('.');
  if (dot == std::string::npos) return DomainName{""};
  return DomainName{text_.substr(dot + 1)};
}

bool DomainName::is_within(const DomainName& zone) const {
  if (zone.is_root()) return true;
  if (text_.size() < zone.text_.size()) return false;
  if (text_.size() == zone.text_.size()) return text_ == zone.text_;
  if (text_.compare(text_.size() - zone.text_.size(), zone.text_.size(), zone.text_) != 0) {
    return false;
  }
  return text_[text_.size() - zone.text_.size() - 1] == '.';
}

DomainName DomainName::registrable() const {
  const auto n = label_count();
  if (n <= 2) return *this;
  DomainName cur = *this;
  for (std::size_t i = 0; i < n - 2; ++i) cur = cur.parent();
  return cur;
}

}  // namespace dnsctx::dns
