#include "dns/rr.hpp"

namespace dnsctx::dns {

std::string to_string(RrType t) {
  switch (t) {
    case RrType::kA: return "A";
    case RrType::kNs: return "NS";
    case RrType::kCname: return "CNAME";
    case RrType::kSoa: return "SOA";
    case RrType::kPtr: return "PTR";
    case RrType::kMx: return "MX";
    case RrType::kTxt: return "TXT";
    case RrType::kAaaa: return "AAAA";
    case RrType::kSrv: return "SRV";
    case RrType::kOpt: return "OPT";
    case RrType::kHttps: return "HTTPS";
  }
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(t));
}

std::string to_string(Rcode r) {
  switch (r) {
    case Rcode::kNoError: return "NOERROR";
    case Rcode::kFormErr: return "FORMERR";
    case Rcode::kServFail: return "SERVFAIL";
    case Rcode::kNxDomain: return "NXDOMAIN";
    case Rcode::kNotImp: return "NOTIMP";
    case Rcode::kRefused: return "REFUSED";
  }
  return "RCODE" + std::to_string(static_cast<int>(r));
}

}  // namespace dnsctx::dns
