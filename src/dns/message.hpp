// dnsctx — DNS message model (RFC 1035 §4.1).
#pragma once

#include <cstdint>
#include <vector>

#include "dns/name.hpp"
#include "dns/rr.hpp"

namespace dnsctx::dns {

/// Header flags, unpacked from the 16-bit flag word.
struct DnsFlags {
  bool qr = false;             ///< response (vs query)
  std::uint8_t opcode = 0;     ///< 0 = standard QUERY
  bool aa = false;             ///< authoritative answer
  bool tc = false;             ///< truncated
  bool rd = true;              ///< recursion desired
  bool ra = false;             ///< recursion available
  Rcode rcode = Rcode::kNoError;

  bool operator==(const DnsFlags&) const = default;
};

/// Question section entry.
struct Question {
  DomainName qname;
  RrType qtype = RrType::kA;
  RrClass qclass = RrClass::kIn;

  bool operator==(const Question&) const = default;
};

/// A full DNS message. Sections are plain vectors; the codec enforces
/// count limits on encode/decode.
struct DnsMessage {
  std::uint16_t id = 0;
  DnsFlags flags;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  /// Sim-internal ground-truth annotation: the responding resolver
  /// answered from its shared cache (vs authoritative resolution). Never
  /// encoded to wire, excluded from equality, and — per the vantage-point
  /// rule in netsim/packet.hpp — must not be read by passive monitors;
  /// only stubs consume it to tag connection ground truth (SC vs R).
  bool truth_cache_hit = false;

  /// Wire-visible fields only: the truth annotation above is metadata,
  /// so a codec round trip compares equal.
  bool operator==(const DnsMessage& o) const {
    return id == o.id && flags == o.flags && questions == o.questions &&
           answers == o.answers && authorities == o.authorities &&
           additionals == o.additionals;
  }

  /// Build a standard recursive A query.
  [[nodiscard]] static DnsMessage query(std::uint16_t id, DomainName qname,
                                        RrType qtype = RrType::kA);

  /// Build a response to `q` with the given answer section.
  [[nodiscard]] static DnsMessage response(const DnsMessage& q,
                                           std::vector<ResourceRecord> answers,
                                           Rcode rcode = Rcode::kNoError);

  /// All IPv4 addresses in the answer section (following the paper: the
  /// connection pairing considers every A record an answer "contains").
  [[nodiscard]] std::vector<Ipv4Addr> answer_addresses() const;

  /// Minimum TTL across answer records (the effective cache lifetime of
  /// the answer set); 0 when there are no answers.
  [[nodiscard]] std::uint32_t min_answer_ttl() const;
};

}  // namespace dnsctx::dns
