// dnsctx — lazily materialized DNS payload.
//
// Packets used to carry eagerly encoded RFC 1035 wire bytes, which every
// interested party (stub, forwarder, recursive platform, monitor tap)
// then decoded again — one encode plus two-to-three decodes per DNS
// message even though all parties live in the same process. DnsPayload
// carries whichever representation the producer already had and
// materializes the other on first demand:
//
//   * simulated senders construct from_message(); the structured form is
//     shared by reference through NAT/tap fan-out and the wire bytes are
//     only produced if something asks for them,
//   * wire-origin payloads (tests, fuzzers, recorded traces) construct
//     from_wire(); decode happens once, on the first message() call, and
//     a malformed payload yields nullptr (the monitor's malformed_dns
//     accounting) instead of throwing.
//
// Both conversions go through the real codec, whose encode/decode
// round-trip is identity on every message this simulation produces, so
// consumers observe byte-for-byte the same content either way (the
// golden-output suite pins this).
//
// Thread-safety: state is mutated behind const accessors (first-use
// materialization) and shared via a NON-atomic refcount drawn from a
// thread-local free list. Each shard owns its packets end-to-end and
// runs single-threaded, so every handle to one State lives on one
// thread; cross-shard sharing of a payload would be a design error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "dns/message.hpp"

namespace dnsctx::dns {

/// Shared handle to one DNS message in flight; empty by default.
/// Copies bump an intrusive (non-atomic) refcount; dead states return to
/// a thread-local pool so the packet fan-out path never hits malloc.
class DnsPayload {
 public:
  DnsPayload() noexcept = default;
  DnsPayload(const DnsPayload& o) noexcept : state_{o.state_} {
    if (state_ != nullptr) ++state_->refs;
  }
  DnsPayload(DnsPayload&& o) noexcept : state_{o.state_} { o.state_ = nullptr; }
  DnsPayload& operator=(const DnsPayload& o) noexcept {
    if (this != &o) {
      release();
      state_ = o.state_;
      if (state_ != nullptr) ++state_->refs;
    }
    return *this;
  }
  DnsPayload& operator=(DnsPayload&& o) noexcept {
    if (this != &o) {
      release();
      state_ = o.state_;
      o.state_ = nullptr;
    }
    return *this;
  }
  ~DnsPayload() { release(); }

  [[nodiscard]] static DnsPayload from_message(DnsMessage msg);
  [[nodiscard]] static DnsPayload from_wire(std::vector<std::uint8_t> wire);

  [[nodiscard]] explicit operator bool() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool empty() const noexcept { return state_ == nullptr; }

  /// Structured view. Decodes on first call for wire-origin payloads;
  /// nullptr when empty or when the wire bytes are malformed.
  [[nodiscard]] const DnsMessage* message() const;

  /// RFC 1035 wire bytes. Encodes on first call for message-origin
  /// payloads; nullptr when empty.
  [[nodiscard]] const std::vector<std::uint8_t>* wire() const;

  /// Wire size in bytes without forcing materialization (exact: the
  /// codec's encoded_size). 0 when empty.
  [[nodiscard]] std::size_t wire_size() const;

 private:
  struct State {
    std::optional<DnsMessage> msg;
    std::optional<std::vector<std::uint8_t>> bytes;
    bool decode_failed = false;
    std::uint32_t refs = 1;
    State* pool_next = nullptr;
  };

  /// Per-thread free list; frees its chain at thread exit so shard
  /// threads leave nothing behind for leak checkers to flag.
  struct Pool {
    State* head = nullptr;
    ~Pool();
  };

  explicit DnsPayload(State* s) noexcept : state_{s} {}

  [[nodiscard]] static Pool& pool();
  [[nodiscard]] static State* acquire();
  static void recycle(State* s) noexcept;
  void release() noexcept {
    if (state_ != nullptr && --state_->refs == 0) recycle(state_);
    state_ = nullptr;
  }

  State* state_ = nullptr;
};

}  // namespace dnsctx::dns
