#include "dns/message.hpp"

#include <algorithm>

namespace dnsctx::dns {

DnsMessage DnsMessage::query(std::uint16_t id, DomainName qname, RrType qtype) {
  DnsMessage m;
  m.id = id;
  m.flags.qr = false;
  m.flags.rd = true;
  m.questions.push_back(Question{std::move(qname), qtype, RrClass::kIn});
  return m;
}

DnsMessage DnsMessage::response(const DnsMessage& q, std::vector<ResourceRecord> answers,
                                Rcode rcode) {
  DnsMessage m;
  m.id = q.id;
  m.flags = q.flags;
  m.flags.qr = true;
  m.flags.ra = true;
  m.flags.rcode = rcode;
  m.questions = q.questions;
  m.answers = std::move(answers);
  return m;
}

std::vector<Ipv4Addr> DnsMessage::answer_addresses() const {
  std::vector<Ipv4Addr> out;
  for (const auto& rr : answers) {
    if (rr.type == RrType::kA) {
      if (const auto* addr = std::get_if<Ipv4Addr>(&rr.rdata)) out.push_back(*addr);
    }
  }
  return out;
}

std::uint32_t DnsMessage::min_answer_ttl() const {
  std::uint32_t ttl = 0;
  bool first = true;
  for (const auto& rr : answers) {
    if (first || rr.ttl < ttl) ttl = rr.ttl;
    first = false;
  }
  return first ? 0 : ttl;
}

}  // namespace dnsctx::dns
