#include "dns/lazy.hpp"

#include "dns/codec.hpp"

namespace dnsctx::dns {

DnsPayload::Pool::~Pool() {
  while (head != nullptr) {
    State* next = head->pool_next;
    delete head;
    head = next;
  }
}

/// This thread's free list. Memory recycled here was allocated with
/// plain `new`, so a block may migrate between per-thread lists across a
/// shard's lifetime without harm; the refcount itself is only ever
/// touched from the one thread holding handles to the State.
DnsPayload::Pool& DnsPayload::pool() {
  thread_local Pool p;
  return p;
}

DnsPayload::State* DnsPayload::acquire() {
  Pool& p = pool();
  State* s = p.head;
  if (s != nullptr) {
    p.head = s->pool_next;
    s->pool_next = nullptr;
    s->refs = 1;
    return s;
  }
  return new State{};
}

void DnsPayload::recycle(State* s) noexcept {
  s->msg.reset();
  s->bytes.reset();
  s->decode_failed = false;
  Pool& p = pool();
  s->pool_next = p.head;
  p.head = s;
}

DnsPayload DnsPayload::from_message(DnsMessage msg) {
  State* s = acquire();
  s->msg.emplace(std::move(msg));
  return DnsPayload{s};
}

DnsPayload DnsPayload::from_wire(std::vector<std::uint8_t> wire) {
  State* s = acquire();
  s->bytes.emplace(std::move(wire));
  return DnsPayload{s};
}

const DnsMessage* DnsPayload::message() const {
  if (state_ == nullptr) return nullptr;
  State& s = *state_;
  if (!s.msg.has_value() && !s.decode_failed) {
    auto decoded = decode(*s.bytes);
    if (decoded.has_value()) {
      s.msg.emplace(std::move(*decoded));
    } else {
      s.decode_failed = true;
    }
  }
  return s.msg.has_value() ? &*s.msg : nullptr;
}

const std::vector<std::uint8_t>* DnsPayload::wire() const {
  if (state_ == nullptr) return nullptr;
  State& s = *state_;
  if (!s.bytes.has_value()) s.bytes.emplace(encode(*s.msg));
  return &*s.bytes;
}

std::size_t DnsPayload::wire_size() const {
  if (state_ == nullptr) return 0;
  const State& s = *state_;
  if (s.bytes.has_value()) return s.bytes->size();
  return encoded_size(*s.msg);
}

}  // namespace dnsctx::dns
