#include "dns/cache.hpp"

#include <algorithm>

namespace dnsctx::dns {

DnsCache::DnsCache(CacheConfig cfg) : cfg_{cfg} {}

void DnsCache::lru_unlink(std::uint32_t idx) {
  Entry& e = slab_[idx];
  if (e.lru_prev != kNil) {
    slab_[e.lru_prev].lru_next = e.lru_next;
  } else {
    lru_head_ = e.lru_next;
  }
  if (e.lru_next != kNil) {
    slab_[e.lru_next].lru_prev = e.lru_prev;
  } else {
    lru_tail_ = e.lru_prev;
  }
  e.lru_prev = kNil;
  e.lru_next = kNil;
}

void DnsCache::lru_push_front(std::uint32_t idx) {
  Entry& e = slab_[idx];
  e.lru_prev = kNil;
  e.lru_next = lru_head_;
  if (lru_head_ != kNil) slab_[lru_head_].lru_prev = idx;
  lru_head_ = idx;
  if (lru_tail_ == kNil) lru_tail_ = idx;
}

void DnsCache::remove_at(std::uint32_t idx) {
  lru_unlink(idx);
  Entry& e = slab_[idx];
  map_.erase(e.key);
  e.answers.clear();
  e.key = Key{};
  free_slots_.push_back(idx);
}

void DnsCache::insert(const DomainName& qname, RrType qtype,
                      std::vector<ResourceRecord> answers, Rcode rcode, SimTime now,
                      SimDuration extra_hold, CacheOrigin origin) {
  std::uint32_t ttl = 0;
  bool first = true;
  for (const auto& rr : answers) {
    if (first || rr.ttl < ttl) ttl = rr.ttl;
    first = false;
  }
  if (cfg_.min_ttl_sec) ttl = std::max(ttl, cfg_.min_ttl_sec);
  if (cfg_.max_ttl_sec) ttl = std::min(ttl, cfg_.max_ttl_sec);

  if (const auto it = map_.find(KeyRef{&qname, qtype}); it != map_.end()) {
    remove_at(it->second);
  }
  if (map_.size() >= cfg_.capacity && cfg_.capacity > 0) evict_lru();

  std::uint32_t idx;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  Entry& e = slab_[idx];
  e.key = Key{qname, qtype};
  e.answers = std::move(answers);
  e.rcode = rcode;
  e.inserted_at = now;
  e.expires_at = now + SimDuration::sec(ttl);
  e.servable_until = e.expires_at + extra_hold + cfg_.max_stale;
  e.origin = origin;
  e.uses = 0;
  lru_push_front(idx);
  map_[e.key] = idx;
  ++stats_.insertions;
}

std::optional<CacheHitView> DnsCache::lookup_view(const DomainName& qname, RrType qtype,
                                                  SimTime now) {
  const auto it = map_.find(KeyRef{&qname, qtype});
  if (it == map_.end() || now >= slab_[it->second].servable_until) {
    if (it != map_.end()) remove_at(it->second);
    ++stats_.misses;
    return std::nullopt;
  }
  const std::uint32_t idx = it->second;
  touch(idx);
  ++stats_.hits;
  Entry& e = slab_[idx];
  ++e.uses;
  CacheHitView hit;
  hit.answers = &e.answers;
  hit.rcode = e.rcode;
  hit.inserted_at = e.inserted_at;
  hit.expires_at = e.expires_at;
  hit.expired = now >= e.expires_at;
  hit.origin = e.origin;
  hit.first_use = e.uses == 1;
  if (hit.expired) ++stats_.expired_hits;
  return hit;
}

std::optional<CacheHit> DnsCache::lookup(const DomainName& qname, RrType qtype, SimTime now) {
  const auto view = lookup_view(qname, qtype, now);
  if (!view) return std::nullopt;
  CacheHit hit;
  hit.answers = *view->answers;
  hit.rcode = view->rcode;
  hit.inserted_at = view->inserted_at;
  hit.expires_at = view->expires_at;
  hit.expired = view->expired;
  hit.origin = view->origin;
  hit.first_use = view->first_use;
  return hit;
}

std::optional<CacheHit> DnsCache::peek(const DomainName& qname, RrType qtype,
                                       SimTime now) const {
  const auto it = map_.find(KeyRef{&qname, qtype});
  if (it == map_.end() || now >= slab_[it->second].servable_until) return std::nullopt;
  const Entry& e = slab_[it->second];
  CacheHit hit;
  hit.answers = e.answers;
  hit.rcode = e.rcode;
  hit.inserted_at = e.inserted_at;
  hit.expires_at = e.expires_at;
  hit.expired = now >= e.expires_at;
  hit.origin = e.origin;
  hit.first_use = e.uses == 0;
  return hit;
}

void DnsCache::purge_expired(SimTime now) {
  std::uint32_t idx = lru_head_;
  while (idx != kNil) {
    const std::uint32_t next = slab_[idx].lru_next;
    if (now >= slab_[idx].servable_until) remove_at(idx);
    idx = next;
  }
}

void DnsCache::erase(const DomainName& qname, RrType qtype) {
  const auto it = map_.find(KeyRef{&qname, qtype});
  if (it == map_.end()) return;
  remove_at(it->second);
}

void DnsCache::clear() {
  map_.clear();
  slab_.clear();
  free_slots_.clear();
  lru_head_ = kNil;
  lru_tail_ = kNil;
}

void DnsCache::touch(std::uint32_t idx) {
  if (lru_head_ == idx) return;
  lru_unlink(idx);
  lru_push_front(idx);
}

void DnsCache::evict_lru() {
  if (lru_tail_ == kNil) return;
  remove_at(lru_tail_);
  ++stats_.evictions;
}

}  // namespace dnsctx::dns
