#include "dns/cache.hpp"

#include <algorithm>

namespace dnsctx::dns {

DnsCache::DnsCache(CacheConfig cfg) : cfg_{cfg} {}

void DnsCache::insert(const DomainName& qname, RrType qtype,
                      std::vector<ResourceRecord> answers, Rcode rcode, SimTime now,
                      SimDuration extra_hold) {
  std::uint32_t ttl = 0;
  bool first = true;
  for (const auto& rr : answers) {
    if (first || rr.ttl < ttl) ttl = rr.ttl;
    first = false;
  }
  if (cfg_.min_ttl_sec) ttl = std::max(ttl, cfg_.min_ttl_sec);
  if (cfg_.max_ttl_sec) ttl = std::min(ttl, cfg_.max_ttl_sec);

  const Key key{qname, qtype};
  if (const auto it = map_.find(key); it != map_.end()) {
    lru_.erase(it->second.lru_it);
    map_.erase(it);
  }
  if (map_.size() >= cfg_.capacity && cfg_.capacity > 0) evict_lru();

  Entry e;
  e.answers = std::move(answers);
  e.rcode = rcode;
  e.inserted_at = now;
  e.expires_at = now + SimDuration::sec(ttl);
  e.servable_until = e.expires_at + extra_hold + cfg_.max_stale;
  lru_.push_front(key);
  e.lru_it = lru_.begin();
  map_.emplace(key, std::move(e));
  ++stats_.insertions;
}

std::optional<CacheHit> DnsCache::lookup(const DomainName& qname, RrType qtype, SimTime now) {
  const Key key{qname, qtype};
  const auto it = map_.find(key);
  if (it == map_.end() || now >= it->second.servable_until) {
    if (it != map_.end()) {
      lru_.erase(it->second.lru_it);
      map_.erase(it);
    }
    ++stats_.misses;
    return std::nullopt;
  }
  Entry& e = it->second;
  touch(e, key);
  ++stats_.hits;
  CacheHit hit;
  hit.answers = e.answers;
  hit.rcode = e.rcode;
  hit.inserted_at = e.inserted_at;
  hit.expires_at = e.expires_at;
  hit.expired = now >= e.expires_at;
  if (hit.expired) ++stats_.expired_hits;
  return hit;
}

std::optional<CacheHit> DnsCache::peek(const DomainName& qname, RrType qtype,
                                       SimTime now) const {
  const auto it = map_.find(Key{qname, qtype});
  if (it == map_.end() || now >= it->second.servable_until) return std::nullopt;
  const Entry& e = it->second;
  CacheHit hit;
  hit.answers = e.answers;
  hit.rcode = e.rcode;
  hit.inserted_at = e.inserted_at;
  hit.expires_at = e.expires_at;
  hit.expired = now >= e.expires_at;
  return hit;
}

void DnsCache::purge_expired(SimTime now) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (now >= it->second.servable_until) {
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

void DnsCache::erase(const DomainName& qname, RrType qtype) {
  const auto it = map_.find(Key{qname, qtype});
  if (it == map_.end()) return;
  lru_.erase(it->second.lru_it);
  map_.erase(it);
}

void DnsCache::clear() {
  map_.clear();
  lru_.clear();
}

void DnsCache::touch(Entry& e, const Key& k) {
  lru_.erase(e.lru_it);
  lru_.push_front(k);
  e.lru_it = lru_.begin();
}

void DnsCache::evict_lru() {
  if (lru_.empty()) return;
  const Key victim = lru_.back();
  lru_.pop_back();
  map_.erase(victim);
  ++stats_.evictions;
}

}  // namespace dnsctx::dns
