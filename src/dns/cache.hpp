// dnsctx — TTL-aware DNS cache used by stub resolvers (per device), the
// §8 whole-house forwarder, and recursive resolver platforms.
//
// The cache supports the behaviours the paper observes in the wild:
//   * strict RFC 1035 TTL expiry,
//   * TTL *violations* — entries held past expiry (§5.2 finds 22.2% of
//     local-cache connections use expired records, median 890 s late),
//     modelled as a per-entry extra hold time assigned at insert,
//   * TTL clamping (public resolvers cap or floor TTLs),
//   * bounded capacity with LRU eviction,
//   * negative caching (RFC 2308) keyed by rcode.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "dns/message.hpp"
#include "util/flat_map.hpp"
#include "util/time.hpp"

namespace dnsctx::dns {

/// Cache configuration knobs.
struct CacheConfig {
  std::size_t capacity = 10'000;       ///< max entries before LRU eviction
  std::uint32_t min_ttl_sec = 0;       ///< clamp floor applied at insert
  std::uint32_t max_ttl_sec = 0;       ///< clamp ceiling (0 = none)
  /// If > 0, entries remain servable for this long past TTL expiry
  /// ("serve stale"); the lookup result is flagged `expired`.
  SimDuration max_stale = SimDuration::zero();
};

/// How an entry got into the cache — ground truth for the paper's
/// LC-vs-P split (§5.2) and for resolver-less server pushes: a query
/// answer, a speculative (prefetch) answer, or a server-pushed record
/// that involved no lookup at all.
enum class CacheOrigin : std::uint8_t {
  kQuery = 0,
  kSpeculative = 1,
  kPushed = 2,
};

/// Result of a successful cache lookup.
struct CacheHit {
  std::vector<ResourceRecord> answers;  ///< empty for negative entries
  Rcode rcode = Rcode::kNoError;
  SimTime inserted_at;
  SimTime expires_at;   ///< TTL expiry (not including stale window)
  bool expired = false; ///< true when served from the stale window
  CacheOrigin origin = CacheOrigin::kQuery;
  bool first_use = false;  ///< this counting lookup is the entry's first hit
};

/// Borrowed counterpart of CacheHit: `answers` points into the cache
/// entry and is valid only until the next cache mutation. For callers
/// that read the answer set in place instead of re-serving it.
struct CacheHitView {
  const std::vector<ResourceRecord>* answers = nullptr;
  Rcode rcode = Rcode::kNoError;
  SimTime inserted_at;
  SimTime expires_at;
  bool expired = false;
  CacheOrigin origin = CacheOrigin::kQuery;
  bool first_use = false;
};

/// Running hit/miss counters (for Table 3-style accounting).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t expired_hits = 0;  ///< subset of hits served stale
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_rate() const {
    const auto total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

/// The cache proper. Not thread-safe (the simulation is single-threaded
/// by design; determinism requires a single event order).
class DnsCache {
 public:
  explicit DnsCache(CacheConfig cfg = {});

  /// Insert/replace the entry for (qname, qtype). `extra_hold` extends
  /// the servable lifetime beyond the TTL for this entry only — the
  /// mechanism behind modelled TTL violations. Records the min answer
  /// TTL as the entry TTL, clamped per config.
  void insert(const DomainName& qname, RrType qtype, std::vector<ResourceRecord> answers,
              Rcode rcode, SimTime now, SimDuration extra_hold = SimDuration::zero(),
              CacheOrigin origin = CacheOrigin::kQuery);

  /// Look up (qname, qtype). Counts a hit or miss. Entries past their
  /// servable lifetime are treated as absent (and dropped lazily).
  [[nodiscard]] std::optional<CacheHit> lookup(const DomainName& qname, RrType qtype,
                                               SimTime now);

  /// lookup() without copying the answer set: same counters, LRU touch
  /// and lazy expiry; the returned view borrows from the entry and must
  /// be consumed before the next cache call.
  [[nodiscard]] std::optional<CacheHitView> lookup_view(const DomainName& qname, RrType qtype,
                                                        SimTime now);

  /// Non-counting, non-mutating probe (used by analysis/simulators).
  [[nodiscard]] std::optional<CacheHit> peek(const DomainName& qname, RrType qtype,
                                             SimTime now) const;

  /// Drop every entry whose servable lifetime has passed.
  void purge_expired(SimTime now);

  /// Remove a single entry if present.
  void erase(const DomainName& qname, RrType qtype);

  void clear();

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

  /// Visit every live entry: fn(qname, qtype, expires_at). Used by the
  /// refresh simulator to find entries nearing expiry. Visits in
  /// most-recently-used-first order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t idx = lru_head_; idx != kNil; idx = slab_[idx].lru_next) {
      const Entry& e = slab_[idx];
      fn(e.key.first, e.key.second, e.expires_at);
    }
  }

 private:
  using Key = std::pair<DomainName, RrType>;
  /// Borrowed-key view for hash probes without materializing a Key.
  struct KeyRef {
    const DomainName* name;
    RrType type;
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const noexcept {
      return DomainNameHash{}(k.first) * 31 ^ static_cast<std::size_t>(k.second);
    }
    [[nodiscard]] std::size_t operator()(const KeyRef& k) const noexcept {
      return DomainNameHash{}(*k.name) * 31 ^ static_cast<std::size_t>(k.type);
    }
  };
  struct KeyEq {
    [[nodiscard]] bool operator()(const Key& a, const Key& b) const noexcept {
      return a == b;
    }
    [[nodiscard]] bool operator()(const Key& a, const KeyRef& b) const noexcept {
      return a.second == b.type && a.first == *b.name;
    }
  };
  static constexpr std::uint32_t kNil = 0xffffffff;
  /// Entries live in a recycled slab so the LRU chain is intrusive
  /// (index links, no per-touch list-node allocation) and survives map
  /// rehashes, which move only (key, index) pairs.
  struct Entry {
    Key key;
    std::vector<ResourceRecord> answers;
    Rcode rcode = Rcode::kNoError;
    SimTime inserted_at;
    SimTime expires_at;      ///< TTL boundary
    SimTime servable_until;  ///< TTL + per-entry hold + config stale window
    CacheOrigin origin = CacheOrigin::kQuery;
    std::uint64_t uses = 0;  ///< counting lookups served by this entry
    std::uint32_t lru_prev = kNil;
    std::uint32_t lru_next = kNil;
  };

  void touch(std::uint32_t idx);
  void evict_lru();
  void lru_unlink(std::uint32_t idx);
  void lru_push_front(std::uint32_t idx);
  /// Unlink + map-erase + return the slot to the free list.
  void remove_at(std::uint32_t idx);

  CacheConfig cfg_;
  util::FlatMap<Key, std::uint32_t, KeyHash, KeyEq> map_;
  std::vector<Entry> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::uint32_t lru_head_ = kNil;  ///< most recently used
  std::uint32_t lru_tail_ = kNil;  ///< least recently used
  CacheStats stats_;
};

}  // namespace dnsctx::dns
