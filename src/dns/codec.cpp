#include "dns/codec.hpp"

#include <cstring>
#include <stdexcept>
#include <unordered_map>

namespace dnsctx::dns {

namespace {

// ---------------------------------------------------------------- encode

class Encoder {
 public:
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v & 0xffff));
  }
  void bytes(std::span<const std::uint8_t> b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Patch a previously written u16 (used for RDLENGTH back-fill).
  void patch_u16(std::size_t at, std::uint16_t v) {
    buf_[at] = static_cast<std::uint8_t>(v >> 8);
    buf_[at + 1] = static_cast<std::uint8_t>(v & 0xff);
  }

  /// Write a domain name with RFC 1035 §4.1.4 compression: each suffix of
  /// each written name is remembered; a match emits a 2-byte pointer.
  void name(const DomainName& n) {
    std::string remaining = n.text();
    while (!remaining.empty()) {
      if (const auto it = suffix_offsets_.find(remaining); it != suffix_offsets_.end()) {
        u16(static_cast<std::uint16_t>(0xc000 | it->second));
        return;
      }
      if (size() <= 0x3fff) {
        suffix_offsets_.emplace(remaining, static_cast<std::uint16_t>(size()));
      }
      const auto dot = remaining.find('.');
      const std::string label = remaining.substr(0, dot);
      if (label.size() > kMaxLabelLen) throw std::invalid_argument{"label too long"};
      u8(static_cast<std::uint8_t>(label.size()));
      bytes({reinterpret_cast<const std::uint8_t*>(label.data()), label.size()});
      remaining = dot == std::string::npos ? std::string{} : remaining.substr(dot + 1);
    }
    u8(0);  // root terminator
  }

  /// Write a name without registering/using compression (inside RDATA of
  /// types where compression is prohibited by RFC 3597).
  void name_uncompressed(const DomainName& n) {
    for (const auto label : n.labels()) {
      u8(static_cast<std::uint8_t>(label.size()));
      bytes({reinterpret_cast<const std::uint8_t*>(label.data()), label.size()});
    }
    u8(0);
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::unordered_map<std::string, std::uint16_t> suffix_offsets_;
};

void encode_rdata(Encoder& enc, const ResourceRecord& rr) {
  const std::size_t len_at = enc.size();
  enc.u16(0);  // RDLENGTH placeholder
  const std::size_t start = enc.size();
  switch (rr.type) {
    case RrType::kA: {
      const auto& addr = std::get<Ipv4Addr>(rr.rdata);
      enc.u32(addr.to_u32());
      break;
    }
    case RrType::kNs:
    case RrType::kCname:
    case RrType::kPtr:
      // Compression is legal for these well-known types (RFC 1035 §3.3).
      enc.name(std::get<DomainName>(rr.rdata));
      break;
    case RrType::kSoa: {
      const auto& soa = std::get<SoaData>(rr.rdata);
      enc.name(soa.mname);
      enc.name(soa.rname);
      enc.u32(soa.serial);
      enc.u32(soa.refresh);
      enc.u32(soa.retry);
      enc.u32(soa.expire);
      enc.u32(soa.minimum);
      break;
    }
    case RrType::kMx: {
      const auto& mx = std::get<MxData>(rr.rdata);
      enc.u16(mx.preference);
      enc.name(mx.exchange);
      break;
    }
    case RrType::kTxt: {
      const auto& txt = std::get<std::string>(rr.rdata);
      // character-string chunks of <=255 octets
      std::size_t off = 0;
      do {
        const std::size_t chunk = std::min<std::size_t>(txt.size() - off, 255);
        enc.u8(static_cast<std::uint8_t>(chunk));
        enc.bytes({reinterpret_cast<const std::uint8_t*>(txt.data()) + off, chunk});
        off += chunk;
      } while (off < txt.size());
      break;
    }
    default: {
      const auto& raw = std::get<std::vector<std::uint8_t>>(rr.rdata);
      enc.bytes(raw);
      break;
    }
  }
  const std::size_t rdlen = enc.size() - start;
  if (rdlen > 0xffff) throw std::invalid_argument{"rdata too long"};
  enc.patch_u16(len_at, static_cast<std::uint16_t>(rdlen));
}

void encode_rr(Encoder& enc, const ResourceRecord& rr) {
  enc.name(rr.name);
  enc.u16(static_cast<std::uint16_t>(rr.type));
  enc.u16(static_cast<std::uint16_t>(rr.klass));
  enc.u32(rr.ttl);
  encode_rdata(enc, rr);
}

[[nodiscard]] std::uint16_t pack_flags(const DnsFlags& f) {
  std::uint16_t w = 0;
  if (f.qr) w |= 0x8000;
  w |= static_cast<std::uint16_t>((f.opcode & 0xf) << 11);
  if (f.aa) w |= 0x0400;
  if (f.tc) w |= 0x0200;
  if (f.rd) w |= 0x0100;
  if (f.ra) w |= 0x0080;
  w |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(f.rcode) & 0xf);
  return w;
}

[[nodiscard]] DnsFlags unpack_flags(std::uint16_t w) {
  DnsFlags f;
  f.qr = (w & 0x8000) != 0;
  f.opcode = static_cast<std::uint8_t>((w >> 11) & 0xf);
  f.aa = (w & 0x0400) != 0;
  f.tc = (w & 0x0200) != 0;
  f.rd = (w & 0x0100) != 0;
  f.ra = (w & 0x0080) != 0;
  f.rcode = static_cast<Rcode>(w & 0xf);
  return f;
}

// ---------------------------------------------------------------- decode

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> wire) : wire_{wire} {}

  [[nodiscard]] bool u8(std::uint8_t& v) {
    if (pos_ + 1 > wire_.size()) return false;
    v = wire_[pos_++];
    return true;
  }
  [[nodiscard]] bool u16(std::uint16_t& v) {
    if (pos_ + 2 > wire_.size()) return false;
    v = static_cast<std::uint16_t>((wire_[pos_] << 8) | wire_[pos_ + 1]);
    pos_ += 2;
    return true;
  }
  [[nodiscard]] bool u32(std::uint32_t& v) {
    std::uint16_t hi = 0, lo = 0;
    if (!u16(hi) || !u16(lo)) return false;
    v = (static_cast<std::uint32_t>(hi) << 16) | lo;
    return true;
  }
  [[nodiscard]] bool bytes(std::size_t n, std::vector<std::uint8_t>& out) {
    if (pos_ + n > wire_.size()) return false;
    out.assign(wire_.begin() + static_cast<std::ptrdiff_t>(pos_),
               wire_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return wire_.size() - pos_; }

  /// Decode a (possibly compressed) name starting at the cursor; the
  /// cursor advances past the in-place portion only.
  [[nodiscard]] bool name(DomainName& out) {
    std::string text;
    std::size_t cursor = pos_;
    std::size_t followed = 0;
    bool jumped = false;
    for (;;) {
      if (cursor >= wire_.size()) return false;
      const std::uint8_t len = wire_[cursor];
      if ((len & 0xc0) == 0xc0) {
        if (cursor + 2 > wire_.size()) return false;
        const std::size_t target =
            (static_cast<std::size_t>(len & 0x3f) << 8) | wire_[cursor + 1];
        if (!jumped) {
          pos_ = cursor + 2;
          jumped = true;
        }
        if (target >= cursor || ++followed > 64) return false;  // forbid forward/looping jumps
        cursor = target;
        continue;
      }
      if ((len & 0xc0) != 0) return false;  // 0x40/0x80 label types are obsolete
      if (len == 0) {
        if (!jumped) pos_ = cursor + 1;
        break;
      }
      if (cursor + 1 + len > wire_.size()) return false;
      if (!text.empty()) text.push_back('.');
      text.append(reinterpret_cast<const char*>(wire_.data() + cursor + 1), len);
      if (text.size() > kMaxNameLen) return false;
      cursor += 1 + static_cast<std::size_t>(len);
    }
    auto parsed = DomainName::parse(text);
    if (!parsed) return false;
    out = *std::move(parsed);
    return true;
  }

 private:
  std::span<const std::uint8_t> wire_;
  std::size_t pos_ = 0;
};

[[nodiscard]] bool decode_rr(Decoder& dec, ResourceRecord& rr, std::string* error) {
  auto fail = [error](const char* why) {
    if (error) *error = why;
    return false;
  };
  if (!dec.name(rr.name)) return fail("bad rr name");
  std::uint16_t type = 0, klass = 0, rdlen = 0;
  if (!dec.u16(type) || !dec.u16(klass) || !dec.u32(rr.ttl) || !dec.u16(rdlen)) {
    return fail("truncated rr header");
  }
  rr.type = static_cast<RrType>(type);
  rr.klass = static_cast<RrClass>(klass);
  if (rdlen > dec.remaining()) return fail("rdlength beyond message");
  const std::size_t rdata_end = dec.pos() + rdlen;

  switch (rr.type) {
    case RrType::kA: {
      std::uint32_t v = 0;
      if (rdlen != 4 || !dec.u32(v)) return fail("bad A rdata");
      rr.rdata = Ipv4Addr::from_u32(v);
      break;
    }
    case RrType::kNs:
    case RrType::kCname:
    case RrType::kPtr: {
      DomainName n;
      if (!dec.name(n) || dec.pos() != rdata_end) return fail("bad name rdata");
      rr.rdata = std::move(n);
      break;
    }
    case RrType::kSoa: {
      SoaData soa;
      if (!dec.name(soa.mname) || !dec.name(soa.rname) || !dec.u32(soa.serial) ||
          !dec.u32(soa.refresh) || !dec.u32(soa.retry) || !dec.u32(soa.expire) ||
          !dec.u32(soa.minimum) || dec.pos() != rdata_end) {
        return fail("bad SOA rdata");
      }
      rr.rdata = std::move(soa);
      break;
    }
    case RrType::kMx: {
      MxData mx;
      if (!dec.u16(mx.preference) || !dec.name(mx.exchange) || dec.pos() != rdata_end) {
        return fail("bad MX rdata");
      }
      rr.rdata = std::move(mx);
      break;
    }
    case RrType::kTxt: {
      std::string txt;
      while (dec.pos() < rdata_end) {
        std::uint8_t len = 0;
        if (!dec.u8(len) || dec.pos() + len > rdata_end) return fail("bad TXT rdata");
        std::vector<std::uint8_t> chunk;
        if (!dec.bytes(len, chunk)) return fail("bad TXT rdata");
        txt.append(chunk.begin(), chunk.end());
      }
      rr.rdata = std::move(txt);
      break;
    }
    default: {
      std::vector<std::uint8_t> raw;
      if (!dec.bytes(rdlen, raw)) return fail("truncated rdata");
      rr.rdata = std::move(raw);
      break;
    }
  }
  if (dec.pos() != rdata_end) return fail("rdata length mismatch");
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode(const DnsMessage& msg) {
  if (msg.questions.size() > 0xffff || msg.answers.size() > 0xffff ||
      msg.authorities.size() > 0xffff || msg.additionals.size() > 0xffff) {
    throw std::invalid_argument{"dns section too large"};
  }
  Encoder enc;
  enc.u16(msg.id);
  enc.u16(pack_flags(msg.flags));
  enc.u16(static_cast<std::uint16_t>(msg.questions.size()));
  enc.u16(static_cast<std::uint16_t>(msg.answers.size()));
  enc.u16(static_cast<std::uint16_t>(msg.authorities.size()));
  enc.u16(static_cast<std::uint16_t>(msg.additionals.size()));
  for (const auto& q : msg.questions) {
    enc.name(q.qname);
    enc.u16(static_cast<std::uint16_t>(q.qtype));
    enc.u16(static_cast<std::uint16_t>(q.qclass));
  }
  for (const auto& rr : msg.answers) encode_rr(enc, rr);
  for (const auto& rr : msg.authorities) encode_rr(enc, rr);
  for (const auto& rr : msg.additionals) encode_rr(enc, rr);
  return enc.take();
}

std::optional<DnsMessage> decode(std::span<const std::uint8_t> wire, std::string* error) {
  auto fail = [error](const char* why) -> std::optional<DnsMessage> {
    if (error) *error = why;
    return std::nullopt;
  };
  Decoder dec{wire};
  DnsMessage msg;
  std::uint16_t flags = 0, qd = 0, an = 0, ns = 0, ar = 0;
  if (!dec.u16(msg.id) || !dec.u16(flags) || !dec.u16(qd) || !dec.u16(an) || !dec.u16(ns) ||
      !dec.u16(ar)) {
    return fail("truncated header");
  }
  msg.flags = unpack_flags(flags);
  msg.questions.reserve(qd);
  for (std::uint16_t i = 0; i < qd; ++i) {
    Question q;
    std::uint16_t qtype = 0, qclass = 0;
    if (!dec.name(q.qname) || !dec.u16(qtype) || !dec.u16(qclass)) {
      return fail("bad question");
    }
    q.qtype = static_cast<RrType>(qtype);
    q.qclass = static_cast<RrClass>(qclass);
    msg.questions.push_back(std::move(q));
  }
  auto decode_section = [&](std::uint16_t count, std::vector<ResourceRecord>& out) {
    out.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
      ResourceRecord rr;
      if (!decode_rr(dec, rr, error)) return false;
      out.push_back(std::move(rr));
    }
    return true;
  };
  if (!decode_section(an, msg.answers) || !decode_section(ns, msg.authorities) ||
      !decode_section(ar, msg.additionals)) {
    return std::nullopt;
  }
  if (dec.remaining() != 0) return fail("trailing bytes");
  return msg;
}

std::size_t encoded_size(const DnsMessage& msg) { return encode(msg).size(); }

namespace {

// Uncompressed wire size of a name: every label length byte plus the
// root terminator is text length (dots become length bytes) + 2.
std::size_t name_size_bound(const DomainName& n) { return n.text().size() + 2; }

// Size of one RR with compression ignored — an upper bound on (and for
// compression-free messages equal to) its encoded size.
std::size_t rr_size_bound(const ResourceRecord& rr) {
  std::size_t s = name_size_bound(rr.name) + 10;  // type, class, ttl, rdlength
  switch (rr.type) {
    case RrType::kA:
      return s + 4;
    case RrType::kNs:
    case RrType::kCname:
    case RrType::kPtr:
      return s + name_size_bound(std::get<DomainName>(rr.rdata));
    case RrType::kSoa: {
      const auto& soa = std::get<SoaData>(rr.rdata);
      return s + name_size_bound(soa.mname) + name_size_bound(soa.rname) + 20;
    }
    case RrType::kMx:
      return s + 2 + name_size_bound(std::get<MxData>(rr.rdata).exchange);
    case RrType::kTxt: {
      const auto& txt = std::get<std::string>(rr.rdata);
      return s + txt.size() + txt.size() / 255 + 1;  // length byte per chunk
    }
    default:
      return s + std::get<std::vector<std::uint8_t>>(rr.rdata).size();
  }
}

// Upper bound on encoded_size (compression can only shrink a message).
std::size_t encoded_size_bound(const DnsMessage& msg) {
  std::size_t s = 12;
  for (const auto& q : msg.questions) s += name_size_bound(q.qname) + 4;
  for (const auto& rr : msg.answers) s += rr_size_bound(rr);
  for (const auto& rr : msg.authorities) s += rr_size_bound(rr);
  for (const auto& rr : msg.additionals) s += rr_size_bound(rr);
  return s;
}

}  // namespace

DnsMessage truncate_for_udp(const DnsMessage& msg, std::size_t limit) {
  // Cheap path: if even the uncompressed size fits, no truncation is
  // possible and the exact (compressed) encode can be skipped entirely.
  if (encoded_size_bound(msg) <= limit) return msg;
  if (encoded_size(msg) <= limit) return msg;
  DnsMessage out;
  out.id = msg.id;
  out.flags = msg.flags;
  out.flags.tc = true;
  out.questions = msg.questions;
  return out;
}

}  // namespace dnsctx::dns
