// dnsctx — DNS resource records (RFC 1035 §3.2, §4.1.3).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.hpp"
#include "util/ip.hpp"
#include "util/time.hpp"

namespace dnsctx::dns {

/// RR TYPE codes we model. Values are the IANA wire values.
enum class RrType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kPtr = 12,
  kMx = 15,
  kTxt = 16,
  kAaaa = 28,
  kSrv = 33,
  kOpt = 41,
  kHttps = 65,
};

[[nodiscard]] std::string to_string(RrType t);

/// CLASS codes (we only ever emit IN, but the codec round-trips others).
enum class RrClass : std::uint16_t { kIn = 1, kCh = 3, kAny = 255 };

/// Response codes (RFC 1035 §4.1.1).
enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

[[nodiscard]] std::string to_string(Rcode r);

/// SOA RDATA — needed for negative caching (RFC 2308 uses SOA MINIMUM).
struct SoaData {
  DomainName mname;
  DomainName rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;
  auto operator<=>(const SoaData&) const = default;
};

/// MX RDATA.
struct MxData {
  std::uint16_t preference = 0;
  DomainName exchange;
  auto operator<=>(const MxData&) const = default;
};

/// RDATA payload: typed where the analysis needs semantics, raw bytes
/// otherwise (the codec preserves unknown types losslessly).
using Rdata = std::variant<Ipv4Addr,               // A
                           DomainName,             // NS / CNAME / PTR
                           std::string,            // TXT (single string form)
                           SoaData,                // SOA
                           MxData,                 // MX
                           std::vector<std::uint8_t>>;  // anything else

/// A single resource record as it appears in a DNS message section.
struct ResourceRecord {
  DomainName name;
  RrType type = RrType::kA;
  RrClass klass = RrClass::kIn;
  std::uint32_t ttl = 0;  ///< seconds, as carried on the wire
  Rdata rdata;

  [[nodiscard]] SimDuration ttl_duration() const { return SimDuration::sec(ttl); }

  /// Convenience for the common case.
  [[nodiscard]] static ResourceRecord a(DomainName n, Ipv4Addr addr, std::uint32_t ttl_sec) {
    return ResourceRecord{std::move(n), RrType::kA, RrClass::kIn, ttl_sec, addr};
  }
  [[nodiscard]] static ResourceRecord cname(DomainName n, DomainName target,
                                            std::uint32_t ttl_sec) {
    return ResourceRecord{std::move(n), RrType::kCname, RrClass::kIn, ttl_sec,
                          std::move(target)};
  }

  bool operator==(const ResourceRecord&) const = default;
};

}  // namespace dnsctx::dns
