// dnsctx — RFC 1035 §4.1 wire-format codec with §4.1.4 name compression.
//
// The passive monitor (src/capture) parses real wire bytes exactly like a
// Bro/Zeek worker would, so the simulation's DNS path round-trips through
// this codec. The decoder is written for untrusted input: every offset is
// bounds-checked and compression-pointer chains are cycle-limited.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/message.hpp"

namespace dnsctx::dns {

/// Encode a message to wire bytes, compressing repeated name suffixes.
/// Throws std::invalid_argument if a section exceeds 65535 entries or a
/// name/rdata cannot be represented.
[[nodiscard]] std::vector<std::uint8_t> encode(const DnsMessage& msg);

/// Decode wire bytes. Returns nullopt on malformed input and, when
/// `error` is non-null, a short reason for the benefit of monitor
/// diagnostics ("weird" records in Bro parlance).
[[nodiscard]] std::optional<DnsMessage> decode(std::span<const std::uint8_t> wire,
                                               std::string* error = nullptr);

/// Wire size of the encoded form (convenience for byte accounting).
[[nodiscard]] std::size_t encoded_size(const DnsMessage& msg);

/// Classic DNS-over-UDP payload limit without EDNS (RFC 1035 §4.2.1).
inline constexpr std::size_t kUdpPayloadLimit = 512;

/// RFC 1035 §4.2.2 truncation: if `msg` encodes beyond `limit`, return a
/// TC-flagged copy with every record section emptied (the questions are
/// kept); otherwise return `msg` unchanged.
[[nodiscard]] DnsMessage truncate_for_udp(const DnsMessage& msg,
                                          std::size_t limit = kUdpPayloadLimit);

}  // namespace dnsctx::dns
