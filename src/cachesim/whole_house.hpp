// dnsctx — §8 "A Whole-House Cache": trace-driven what-if analysis.
//
// Replays the observed DNS transactions of each house through a
// hypothetical in-router cache and asks which blocked connections
// (SC/R) would instead have been served locally (→ LC). The paper finds
// 9.8% of all connections move, fairly uniformly across SC (22%) and
// R (25%).
#pragma once

#include "analysis/classify.hpp"

namespace dnsctx::cachesim {

struct WholeHouseResult {
  std::uint64_t total_conns = 0;
  std::uint64_t sc_total = 0;
  std::uint64_t r_total = 0;
  std::uint64_t sc_moved = 0;  ///< SC connections that become LC
  std::uint64_t r_moved = 0;   ///< R connections that become LC

  [[nodiscard]] std::uint64_t moved() const { return sc_moved + r_moved; }
  [[nodiscard]] double moved_frac_of_all() const {
    return total_conns ? static_cast<double>(moved()) / static_cast<double>(total_conns) : 0.0;
  }
  [[nodiscard]] double sc_moved_frac() const {
    return sc_total ? static_cast<double>(sc_moved) / static_cast<double>(sc_total) : 0.0;
  }
  [[nodiscard]] double r_moved_frac() const {
    return r_total ? static_cast<double>(r_moved) / static_cast<double>(r_total) : 0.0;
  }
};

/// Simulate the whole-house cache against an already-classified dataset.
/// A blocked connection moves to LC when, at the instant of its paired
/// lookup, some earlier lookup by the same house had cached the name and
/// the record was still within TTL.
[[nodiscard]] WholeHouseResult simulate_whole_house(const capture::Dataset& ds,
                                                    const analysis::PairingResult& pairing,
                                                    const analysis::Classified& classified);

}  // namespace dnsctx::cachesim
