#include "cachesim/refresh.hpp"

#include <algorithm>

#include "util/flat_map.hpp"
#include "util/names.hpp"

namespace dnsctx::cachesim {

std::string_view to_string(RefreshPolicy p) {
  switch (p) {
    case RefreshPolicy::kStandard: return "standard";
    case RefreshPolicy::kRefreshAll: return "refresh-all";
    case RefreshPolicy::kRefreshRecent: return "refresh-recent";
    case RefreshPolicy::kRefreshFrequent: return "refresh-frequent";
  }
  return "?";
}

namespace {

struct GroupKey {
  Ipv4Addr house;
  util::NameId name = 0;
  bool operator==(const GroupKey& o) const { return house == o.house && name == o.name; }
};
struct GroupKeyHash {
  [[nodiscard]] std::size_t operator()(const GroupKey& k) const noexcept {
    return hash_combine(Ipv4Hash{}(k.house), k.name);
  }
};

/// Per-(house,name) replay. Coverage is the span during which the cache
/// holds a live record; refreshing extends coverage past the natural TTL
/// at a cost of one lookup per TTL of extension. Default-constructible
/// (a requirement of FlatMap slots); configure() runs on first demand.
struct GroupSim {
  GroupSim() = default;
  GroupSim(const RefreshConfig& cfg, std::uint32_t ttl, SimTime trace_end)
      : cfg_{&cfg}, ttl_{ttl}, trace_end_{trace_end} {}

  void demand(SimTime t, bool is_conn, RefreshResult& out) {
    if (is_conn) ++out.conns;
    ++demand_count_;
    const bool hit = have_entry_ && t < covered_until_;
    if (hit) {
      if (is_conn) ++out.conn_hits;
    } else {
      ++out.upstream_lookups;  // the miss-driven fetch
      have_entry_ = true;
      covered_until_ = t + SimDuration::sec(ttl_);
    }
    extend_coverage(t, out);
  }

 private:
  void extend_coverage(SimTime demand_t, RefreshResult& out) {
    if (ttl_ < cfg_->min_refresh_ttl_sec || ttl_ == 0) return;
    SimTime target = covered_until_;
    switch (cfg_->policy) {
      case RefreshPolicy::kStandard:
        return;
      case RefreshPolicy::kRefreshAll:
        target = trace_end_;
        break;
      case RefreshPolicy::kRefreshRecent:
        target = demand_t + cfg_->recent_window;
        break;
      case RefreshPolicy::kRefreshFrequent:
        if (demand_count_ < cfg_->frequent_threshold) return;
        target = trace_end_;
        break;
    }
    target = std::min(target, trace_end_);
    if (target <= covered_until_) return;
    // One refresh per TTL of added coverage.
    const double added_sec = (target - covered_until_).to_sec();
    const auto refreshes = static_cast<std::uint64_t>(
        std::max(0.0, added_sec / static_cast<double>(ttl_)));
    out.refresh_lookups += refreshes;
    out.upstream_lookups += refreshes;
    covered_until_ = target;
  }

  const RefreshConfig* cfg_ = nullptr;
  std::uint32_t ttl_ = 0;
  SimTime trace_end_;
  bool have_entry_ = false;
  SimTime covered_until_ = SimTime::origin();
  std::uint32_t demand_count_ = 0;
};

}  // namespace

RefreshResult simulate_refresh(const capture::Dataset& ds,
                               const analysis::PairingResult& pairing,
                               const RefreshConfig& cfg) {
  RefreshResult out;
  out.policy = cfg.policy;

  // "Authoritative" TTL per name = max observed TTL (paper's choice).
  util::FlatMap<util::NameId, std::uint32_t> auth_ttl;
  util::FlatSet<Ipv4Addr> houses;
  SimTime trace_begin = SimTime::max();
  SimTime trace_end = SimTime::origin();
  for (const auto& d : ds.dns) {
    houses.insert(d.client_ip);
    trace_begin = std::min(trace_begin, d.ts);
    trace_end = std::max(trace_end, d.response_time());
    if (!d.answered || d.answers.empty()) continue;
    auto& ttl = auth_ttl[d.query.id()];
    ttl = std::max(ttl, d.min_ttl());
  }
  for (const auto& c : ds.conns) {
    trace_begin = std::min(trace_begin, c.start);
    trace_end = std::max(trace_end, c.start + c.duration);
  }
  if (houses.empty()) return out;
  out.houses = houses.size();
  out.trace_seconds = (trace_end - trace_begin).to_sec();

  // Demand stream: DNS-using connections + speculative (never-used)
  // lookups, replayed in time order per (house, name) group.
  struct Event {
    SimTime t;
    Ipv4Addr house;
    util::NameId name;
    bool is_conn;
  };
  std::vector<Event> events;
  events.reserve(ds.conns.size());
  for (std::size_t i = 0; i < ds.conns.size(); ++i) {
    const auto& pc = pairing.conns[i];
    if (pc.dns_idx < 0) continue;  // N connections are out of scope (§8)
    const auto& d = ds.dns[static_cast<std::size_t>(pc.dns_idx)];
    events.push_back(Event{ds.conns[i].start, ds.conns[i].orig_ip, d.query.id(), true});
  }
  for (std::size_t i = 0; i < ds.dns.size(); ++i) {
    const auto& d = ds.dns[i];
    if (!d.answered || d.answers.empty()) continue;
    if (pairing.dns_use_count[i] != 0) continue;
    events.push_back(Event{d.ts, d.client_ip, d.query.id(), false});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.t < b.t; });

  util::FlatMap<GroupKey, GroupSim, GroupKeyHash> groups;
  for (const Event& ev : events) {
    const auto ttl_it = auth_ttl.find(ev.name);
    const std::uint32_t ttl = ttl_it == auth_ttl.end() ? 0 : ttl_it->second;
    const GroupKey key{ev.house, ev.name};
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) it->second = GroupSim{cfg, ttl, trace_end};
    it->second.demand(ev.t, ev.is_conn, out);
  }
  return out;
}

}  // namespace dnsctx::cachesim
