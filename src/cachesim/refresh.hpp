// dnsctx — §8 "Refreshing" / Table 3, generalised to a policy space.
//
// The paper compares a standard whole-house cache against one that
// refreshes *every* entry forever ("Refresh All": 96.6% hits at ~144×
// the lookups) and leaves as an open question whether the hit rate is
// reachable at sane cost. This simulator makes the policy pluggable:
//
//   kStandard        — fetch on miss only (Table 3, column 1),
//   kRefreshAll      — refresh every entry until the trace ends
//                      (Table 3, column 2),
//   kRefreshRecent   — refresh only while the name was demanded within
//                      a sliding window (stop refreshing dormant names),
//   kRefreshFrequent — refresh only names demanded at least K times
//                      (one-shot names are never worth the traffic).
//
// Demand events are (i) every DNS-using connection at its start time and
// (ii) every observed speculative lookup at its query time. Each name's
// "authoritative" TTL is the maximum TTL observed for it in the trace —
// the paper's conservative approximation. Records with TTLs under the
// floor are never refreshed.
#pragma once

#include <string_view>

#include "analysis/pairing.hpp"

namespace dnsctx::cachesim {

enum class RefreshPolicy : std::uint8_t {
  kStandard,
  kRefreshAll,
  kRefreshRecent,
  kRefreshFrequent,
};

[[nodiscard]] std::string_view to_string(RefreshPolicy p);

struct RefreshConfig {
  RefreshPolicy policy = RefreshPolicy::kStandard;
  std::uint32_t min_refresh_ttl_sec = 10;  ///< do-not-refresh floor (§8)
  /// kRefreshRecent: keep refreshing until this long after the last
  /// demand for the name.
  SimDuration recent_window = SimDuration::hours(1);
  /// kRefreshFrequent: refresh once the name has been demanded this many
  /// times within the trace.
  std::uint32_t frequent_threshold = 3;
};

struct RefreshResult {
  RefreshPolicy policy = RefreshPolicy::kStandard;
  std::uint64_t conns = 0;             ///< DNS-using connections replayed
  std::uint64_t conn_hits = 0;         ///< served by the house cache
  std::uint64_t upstream_lookups = 0;  ///< miss-driven + refresh lookups
  std::uint64_t refresh_lookups = 0;   ///< subset that is refresh traffic
  double trace_seconds = 0.0;
  std::size_t houses = 0;

  [[nodiscard]] double conn_hit_rate() const {
    return conns ? static_cast<double>(conn_hits) / static_cast<double>(conns) : 0.0;
  }
  [[nodiscard]] double lookups_per_sec_per_house() const {
    return trace_seconds > 0.0 && houses > 0
               ? static_cast<double>(upstream_lookups) / trace_seconds /
                     static_cast<double>(houses)
               : 0.0;
  }
};

/// Run the Table 3 simulation under the given policy.
[[nodiscard]] RefreshResult simulate_refresh(const capture::Dataset& ds,
                                             const analysis::PairingResult& pairing,
                                             const RefreshConfig& cfg);

}  // namespace dnsctx::cachesim
