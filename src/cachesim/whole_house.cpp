#include "cachesim/whole_house.hpp"

#include "util/flat_map.hpp"
#include "util/names.hpp"

namespace dnsctx::cachesim {

using analysis::ConnClass;

WholeHouseResult simulate_whole_house(const capture::Dataset& ds,
                                      const analysis::PairingResult& pairing,
                                      const analysis::Classified& classified) {
  WholeHouseResult out;
  out.total_conns = ds.conns.size();

  // Per house: name → would-be cache expiry, built by replaying the DNS
  // log in time order (the log is ts-sorted by construction).
  struct HouseCache {
    util::FlatMap<util::NameId, SimTime> expiry;
  };
  util::FlatMap<Ipv4Addr, HouseCache> houses;

  // For every DNS transaction: was the name already cached in the house
  // when the device asked?
  std::vector<bool> lookup_was_house_hit(ds.dns.size(), false);
  for (std::size_t i = 0; i < ds.dns.size(); ++i) {
    const auto& d = ds.dns[i];
    if (!d.answered || d.answers.empty()) continue;
    HouseCache& hc = houses[d.client_ip];
    if (const auto it = hc.expiry.find(d.query.id());
        it != hc.expiry.end() && it->second > d.ts) {
      lookup_was_house_hit[i] = true;
      // A shared cache would also refresh nothing here; keep the longer
      // of the existing entry and this response's lifetime (devices that
      // bypassed the cache still warm it in this what-if).
      it->second = std::max(it->second, d.expires_at());
    } else {
      hc.expiry[d.query.id()] = d.expires_at();
    }
  }

  for (std::size_t i = 0; i < ds.conns.size(); ++i) {
    const ConnClass cls = classified.classes[i];
    if (cls == ConnClass::kSC) {
      ++out.sc_total;
    } else if (cls == ConnClass::kR) {
      ++out.r_total;
    } else {
      continue;
    }
    const auto dns_idx = static_cast<std::size_t>(pairing.conns[i].dns_idx);
    if (!lookup_was_house_hit[dns_idx]) continue;
    if (cls == ConnClass::kSC) {
      ++out.sc_moved;
    } else {
      ++out.r_moved;
    }
  }
  return out;
}

}  // namespace dnsctx::cachesim
