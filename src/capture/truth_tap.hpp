// dnsctx — ground-truth flow collector.
//
// NOT a monitor. The TruthTap sits on the same wire as the passive
// Monitor (post-NAT, at the aggregation point) but deliberately reads
// the sim-internal TransferIntent::true_class annotation the monitor is
// forbidden to touch (packet.hpp's vantage-point rule). Its output is
// the labelled flow table that analysis::compare_with_truth joins
// against the monitor's inferred taxonomy — quantifying exactly what
// each transport's encryption costs the classifier.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/network.hpp"
#include "netsim/packet.hpp"
#include "util/flat_map.hpp"

namespace dnsctx::capture {

/// One flow with its ground-truth class. The tuple is the flow as seen
/// at the tap — post-NAT, originator first — so it joins 1:1 against
/// ConnRecord's (orig, resp) endpoints.
struct TruthFlow {
  SimTime start;
  FiveTuple tuple;
  netsim::TrueClass cls = netsim::TrueClass::kUnknown;
};

class TruthTap : public netsim::PacketTap {
 public:
  /// `dns_servers` lists resolver service addresses: flows to them on a
  /// TLS port are DNS-transport flows even though they carry no intent.
  explicit TruthTap(std::vector<Ipv4Addr> dns_servers);

  void observe(SimTime at_tap, const netsim::Packet& p) override;

  [[nodiscard]] const std::vector<TruthFlow>& flows() const { return flows_; }

 private:
  util::FlatSet<Ipv4Addr, Ipv4Hash> servers_;
  util::FlatSet<FiveTuple, FiveTupleHash> seen_;
  std::vector<TruthFlow> flows_;
};

}  // namespace dnsctx::capture
