// dnsctx — the two passive datasets the paper's analysis consumes,
// mirroring Bro/Zeek's conn.log and dns.log summaries (§3).
//
// These records contain ONLY information observable at the ISP
// aggregation point: post-NAT house addresses, ports, timestamps, byte
// counts, and DNS payload summaries. No device identity, no ground truth.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <vector>

#include "dns/rr.hpp"
#include "util/ip.hpp"
#include "util/names.hpp"
#include "util/time.hpp"

namespace dnsctx::capture {

/// Bro-style connection terminal state (subset we model).
enum class ConnState : std::uint8_t {
  kS0,   ///< attempt: originator SYN, no reply
  kSf,   ///< normal establish + close
  kRej,  ///< rejected (SYN answered by RST)
  kRst,  ///< established then reset
  kOth,  ///< anything else (mid-stream, timeout, UDP without close)
};

[[nodiscard]] std::string_view to_string(ConnState s);

/// One application "connection" (TCP connection or UDP flow).
struct ConnRecord {
  SimTime start;              ///< first packet at the tap
  SimDuration duration;       ///< last packet − first packet
  Ipv4Addr orig_ip;           ///< initiator (always the house side here)
  Ipv4Addr resp_ip;
  std::uint16_t orig_port = 0;
  std::uint16_t resp_port = 0;
  Proto proto = Proto::kTcp;
  std::uint64_t orig_bytes = 0;  ///< payload bytes house → remote
  std::uint64_t resp_bytes = 0;  ///< payload bytes remote → house
  ConnState state = ConnState::kOth;

  /// §5.1 heuristic: both ports outside the reserved range.
  [[nodiscard]] bool both_high_ports() const {
    return orig_port >= kReservedPortLimit && resp_port >= kReservedPortLimit;
  }

  /// Application throughput (resp bytes over duration), B/s; 0 for
  /// instantaneous or empty flows. §7/Fig 3 bottom metric.
  [[nodiscard]] double throughput_bps() const {
    const double secs = duration.to_sec();
    return secs > 0.0 ? static_cast<double>(resp_bytes) / secs : 0.0;
  }
};

/// One A-record answer within a DNS transaction.
struct DnsAnswer {
  Ipv4Addr addr;
  std::uint32_t ttl = 0;
  bool operator==(const DnsAnswer&) const = default;
};

/// One DNS transaction (query + matched response) seen at the tap.
struct DnsRecord {
  SimTime ts;                ///< query crossing time
  SimDuration duration;      ///< response − query; 0 when unanswered
  Ipv4Addr client_ip;        ///< house external address
  std::uint16_t client_port = 0;
  Ipv4Addr resolver_ip;
  util::InternedName query;  ///< qname, interned (see util/names.hpp)
  dns::RrType qtype = dns::RrType::kA;
  dns::Rcode rcode = dns::Rcode::kNoError;
  bool answered = false;
  std::vector<DnsAnswer> answers;

  [[nodiscard]] SimTime response_time() const { return ts + duration; }

  /// Effective TTL of the answer set (minimum across answers; 0 when
  /// there are no answers).
  [[nodiscard]] std::uint32_t min_ttl() const {
    std::uint32_t ttl = answers.empty() ? 0 : answers.front().ttl;
    for (const auto& a : answers) ttl = std::min(ttl, a.ttl);
    return ttl;
  }

  /// Expiry instant of the answer set per the served TTL.
  [[nodiscard]] SimTime expires_at() const {
    return response_time() + SimDuration::sec(min_ttl());
  }

  [[nodiscard]] bool contains(Ipv4Addr addr) const {
    for (const auto& a : answers) {
      if (a.addr == addr) return true;
    }
    return false;
  }
};

/// Metadata of one encrypted flow to a TLS port (853/443), as a passive
/// monitor that cannot decrypt sees it: endpoints, timing, per-direction
/// message counts/sizes, and how many data messages are padded-size
/// aligned (RFC 8467 leaves that much visible). This is what traffic-
/// analysis classifiers (Siby et al.) get to work with — regular HTTPS
/// flows produce these records too; telling DoT/DoH apart from them is
/// the classifier's whole job.
struct EncFlowRecord {
  SimTime start;
  SimDuration duration;
  Ipv4Addr client_ip;   ///< initiator (house side, post-NAT)
  Ipv4Addr server_ip;
  std::uint16_t client_port = 0;
  std::uint16_t server_port = 0;        ///< 853 or 443
  std::uint32_t up_msgs = 0;            ///< data messages client → server
  std::uint32_t down_msgs = 0;
  std::uint64_t up_bytes = 0;           ///< ciphertext bytes client → server
  std::uint64_t down_bytes = 0;
  std::uint64_t first_up_bytes = 0;     ///< first data message each way —
  std::uint64_t first_down_bytes = 0;   ///< the TLS hello exchange
  std::uint32_t pad_aligned_up = 0;     ///< post-hello messages sized on a
  std::uint32_t pad_aligned_down = 0;   ///< DNS padding-block boundary
};

/// The paired passive datasets for one monitoring run. `encflows` is
/// empty unless MonitorConfig::observe_encrypted_metadata is on.
struct Dataset {
  std::vector<ConnRecord> conns;
  std::vector<DnsRecord> dns;
  std::vector<EncFlowRecord> encflows;
};

/// Consumer of finalized records. The Monitor (and the streaming layer's
/// reorder/replay helpers) push every completed ConnRecord/DnsRecord
/// here instead of materializing them, so arbitrarily long runs never
/// hold the full log in memory. Implementations state their ordering
/// expectations: the Monitor emits in FINALIZATION order (a conn at its
/// close, a DNS transaction at its response or timeout), which is not
/// timestamp order — see stream::LiveFeed for watermark-based
/// re-sorting.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void on_conn(const ConnRecord& rec) = 0;
  virtual void on_dns(const DnsRecord& rec) = 0;
  /// Default no-op: sinks predating encrypted-transport capture ignore
  /// the metadata stream.
  virtual void on_encflow(const EncFlowRecord& rec) { (void)rec; }
};

}  // namespace dnsctx::capture
