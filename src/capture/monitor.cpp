#include "capture/monitor.hpp"

#include <algorithm>

#include "dns/codec.hpp"
#include "netsim/transport.hpp"

namespace dnsctx::capture {

std::string_view to_string(ConnState s) {
  switch (s) {
    case ConnState::kS0: return "S0";
    case ConnState::kSf: return "SF";
    case ConnState::kRej: return "REJ";
    case ConnState::kRst: return "RST";
    case ConnState::kOth: return "OTH";
  }
  return "?";
}

Monitor::Monitor(MonitorConfig cfg) : cfg_{cfg} {}

bool Monitor::local_orig(Ipv4Addr ip) const {
  if (!cfg_.keep_only_local_orig) return true;
  const std::uint32_t mask =
      cfg_.local_prefix_bits == 0 ? 0 : ~std::uint32_t{0} << (32 - cfg_.local_prefix_bits);
  return (ip.to_u32() & mask) == (cfg_.local_net.to_u32() & mask);
}

void Monitor::emit_conn(const ConnRecord& rec) {
  if (sink_ != nullptr) {
    if (local_orig(rec.orig_ip)) sink_->on_conn(rec);
    return;
  }
  out_.conns.push_back(rec);
}

void Monitor::emit_dns(DnsRecord&& rec) {
  if (sink_ != nullptr) {
    sink_->on_dns(rec);
    return;
  }
  out_.dns.push_back(std::move(rec));
}

bool Monitor::enc_candidate(const ConnRecord& rec) {
  return rec.proto == Proto::kTcp && (rec.resp_port == 853 || rec.resp_port == 443);
}

void Monitor::track_enc(Flow& flow, const netsim::Packet& p, bool is_orig) {
  // Data messages only: pure SYN/FIN/ACK control segments carry nothing.
  // The observable message size is everything above the TCP/IP headers —
  // from this vantage point DNS payload bytes are ciphertext like any
  // other; wire_bytes() already accounts them uniformly.
  if (p.tcp.syn || p.tcp.rst) return;
  const std::uint64_t msg = p.wire_bytes() - 54;
  if (msg == 0) return;
  const auto& traits = netsim::traits_for(
      flow.rec.resp_port == 853 ? netsim::Transport::kDoT : netsim::Transport::kDoH);
  EncMeta& m = flow.enc;
  if (is_orig) {
    ++m.up_msgs;
    m.up_bytes += msg;
    if (m.up_msgs == 1) {
      m.first_up = msg;
    } else if (msg > traits.per_message_overhead &&
               (msg - traits.per_message_overhead) % traits.query_pad_block == 0) {
      ++m.pad_up;
    }
  } else {
    ++m.down_msgs;
    m.down_bytes += msg;
    if (m.down_msgs == 1) {
      m.first_down = msg;
    } else if (msg > traits.per_message_overhead &&
               (msg - traits.per_message_overhead) % traits.response_pad_block == 0) {
      ++m.pad_down;
    }
  }
}

void Monitor::emit_encflow(const Flow& flow) {
  if (!local_orig(flow.rec.orig_ip)) return;
  EncFlowRecord rec;
  rec.start = flow.rec.start;
  rec.duration = flow.rec.duration;
  rec.client_ip = flow.rec.orig_ip;
  rec.server_ip = flow.rec.resp_ip;
  rec.client_port = flow.rec.orig_port;
  rec.server_port = flow.rec.resp_port;
  rec.up_msgs = flow.enc.up_msgs;
  rec.down_msgs = flow.enc.down_msgs;
  rec.up_bytes = flow.enc.up_bytes;
  rec.down_bytes = flow.enc.down_bytes;
  rec.first_up_bytes = flow.enc.first_up;
  rec.first_down_bytes = flow.enc.first_down;
  rec.pad_aligned_up = flow.enc.pad_up;
  rec.pad_aligned_down = flow.enc.pad_down;
  if (sink_ != nullptr) {
    sink_->on_encflow(rec);
    return;
  }
  out_.encflows.push_back(rec);
}

SimTime Monitor::open_watermark(SimTime now) const {
  SimTime w = now;
  for (const auto& [tuple, flow] : flows_) w = std::min(w, flow.rec.start);
  for (const auto& [key, pd] : pending_dns_) w = std::min(w, pd.rec.ts);
  return w;
}

void Monitor::observe(SimTime at_tap, const netsim::Packet& p) {
  ++stats_.packets;
  expire_state(at_tap);
  if (p.dst_port == 53 || p.src_port == 53) {
    // Both UDP and (truncation-fallback) TCP DNS are summarised in the
    // DNS log; port-53 flows never become conn records (see header).
    handle_dns(at_tap, p);
    return;
  }
  handle_conn(at_tap, p);
}

void Monitor::handle_dns(SimTime at_tap, const netsim::Packet& p) {
  if (p.dns.empty()) return;
  // Lazy payload: message-origin packets hand us the struct the codec
  // round-trips to byte-identically; wire-origin packets decode here,
  // on first observation, and malformed ones surface as before.
  const dns::DnsMessage* msg = p.dns.message();
  if (msg == nullptr) {
    ++stats_.malformed_dns;
    return;
  }
  if (!msg->flags.qr && p.dst_port == 53) {
    // Query house → resolver.
    const DnsKey key{p.src_ip, p.src_port, p.dst_ip, msg->id};
    if (pending_dns_.contains(key)) {
      ++stats_.dns_retransmissions;  // keep the first timestamp
      return;
    }
    PendingDns pd;
    pd.rec.ts = at_tap;
    pd.rec.client_ip = p.src_ip;
    pd.rec.client_port = p.src_port;
    pd.rec.resolver_ip = p.dst_ip;
    if (!msg->questions.empty()) {
      pd.rec.query = msg->questions.front().qname.text();
      pd.rec.qtype = msg->questions.front().qtype;
    }
    pd.txid = msg->id;
    pd.generation = next_generation_++;
    expiries_.push(
        Expiry{at_tap + cfg_.dns_query_timeout, FiveTuple{}, key, true, pd.generation});
    pending_dns_.try_emplace(key, std::move(pd));
    return;
  }
  if (msg->flags.qr && p.src_port == 53) {
    // Response resolver → house.
    const DnsKey key{p.dst_ip, p.dst_port, p.src_ip, msg->id};
    const auto it = pending_dns_.find(key);
    if (it == pending_dns_.end()) {
      ++stats_.unsolicited_dns;  // late duplicate or spoof attempt
      return;
    }
    DnsRecord rec = std::move(it->second.rec);
    pending_dns_.erase(key);
    rec.duration = at_tap - rec.ts;
    rec.answered = true;
    rec.rcode = msg->flags.rcode;
    for (const auto& rr : msg->answers) {
      if (rr.type == dns::RrType::kA) {
        rec.answers.push_back(DnsAnswer{std::get<Ipv4Addr>(rr.rdata), rr.ttl});
      }
    }
    emit_dns(std::move(rec));
  }
}

void Monitor::handle_conn(SimTime at_tap, const netsim::Packet& p) {
  const FiveTuple forward = p.tuple();
  const FiveTuple reverse = forward.reversed();

  auto it = flows_.find(forward);
  bool is_orig = true;
  if (it == flows_.end()) {
    it = flows_.find(reverse);
    is_orig = false;
  }
  if (it == flows_.end()) {
    // New flow. For TCP we require a SYN: stray RSTs/FINs/data for
    // already-forgotten connections must not fabricate flows with an
    // inverted originator.
    if (p.proto == Proto::kTcp && !p.tcp.syn) {
      ++stats_.midstream_tcp;
      return;
    }
    Flow flow;
    flow.rec.start = at_tap;
    flow.rec.orig_ip = p.src_ip;
    flow.rec.resp_ip = p.dst_ip;
    flow.rec.orig_port = p.src_port;
    flow.rec.resp_port = p.dst_port;
    flow.rec.proto = p.proto;
    flow.last_packet = at_tap;
    flow.generation = next_generation_++;
    it = flows_.try_emplace(forward, std::move(flow)).first;
    is_orig = true;
    expiries_.push(Expiry{at_tap + flow_timeout(it->second), it->first, DnsKey{}, false,
                          it->second.generation});
  }

  Flow& flow = it->second;
  flow.last_packet = at_tap;
  if (is_orig) {
    flow.rec.orig_bytes += p.payload_bytes;
  } else {
    flow.rec.resp_bytes += p.payload_bytes;
  }
  if (cfg_.observe_encrypted_metadata && enc_candidate(flow.rec)) {
    track_enc(flow, p, is_orig);
  }

  if (p.proto == Proto::kTcp) {
    if (p.tcp.syn && !p.tcp.ack && is_orig) flow.saw_syn = true;
    if (p.tcp.syn && p.tcp.ack && !is_orig) flow.saw_syn_ack = true;
    if (p.tcp.fin) ++flow.fin_halves;
    if (p.tcp.rst) flow.saw_rst = true;
    if (flow.saw_rst || flow.fin_halves >= 2) {
      ++stats_.conns_closed;
      const FiveTuple key = it->first;  // erase moves slots; copy first
      finalize_flow(flow, at_tap);
      flows_.erase(key);
      return;
    }
  }
  // No per-packet expiry refresh: the entry pushed at flow creation is
  // re-checked lazily against last_packet when it pops (expire_state),
  // so the heap holds one live entry per flow instead of one per packet.
}

SimDuration Monitor::flow_timeout(const Flow& flow) const {
  if (flow.rec.proto == Proto::kUdp) return cfg_.udp_timeout;
  if (!flow.saw_syn_ack) return cfg_.tcp_attempt_timeout;
  return cfg_.tcp_idle_timeout;
}

void Monitor::finalize_flow(Flow& flow, SimTime now) {
  if (flow.closed) return;
  flow.closed = true;
  flow.rec.duration = flow.last_packet - flow.rec.start;
  if (flow.rec.proto == Proto::kUdp) {
    flow.rec.state = ConnState::kOth;
  } else if (flow.saw_rst && !flow.saw_syn_ack) {
    flow.rec.state = ConnState::kRej;
  } else if (flow.saw_rst) {
    flow.rec.state = ConnState::kRst;
  } else if (flow.saw_syn && !flow.saw_syn_ack) {
    flow.rec.state = ConnState::kS0;
  } else if (flow.saw_syn_ack && flow.fin_halves >= 2) {
    flow.rec.state = ConnState::kSf;
  } else {
    flow.rec.state = ConnState::kOth;
  }
  (void)now;
  emit_conn(flow.rec);
  if (cfg_.observe_encrypted_metadata && enc_candidate(flow.rec)) emit_encflow(flow);
}

void Monitor::expire_state(SimTime now) {
  while (!expiries_.empty() && expiries_.top().when <= now) {
    const Expiry e = expiries_.top();
    expiries_.pop();
    if (e.is_dns) {
      const auto it = pending_dns_.find(e.dns_key);
      if (it != pending_dns_.end() && it->second.generation == e.generation) {
        ++stats_.dns_unanswered;
        DnsRecord rec = std::move(it->second.rec);
        pending_dns_.erase(e.dns_key);
        rec.answered = false;
        rec.duration = SimDuration::zero();
        emit_dns(std::move(rec));
      }
    } else {
      const auto it = flows_.find(e.tuple);
      if (it != flows_.end() && it->second.generation == e.generation) {
        // Lazy deadline: packets only update last_packet, so recompute
        // the true timeout here and re-arm if the flow is still fresh.
        const SimTime deadline = it->second.last_packet + flow_timeout(it->second);
        if (deadline > now) {
          expiries_.push(Expiry{deadline, e.tuple, DnsKey{}, false, e.generation});
        } else {
          ++stats_.conns_timed_out;
          finalize_flow(it->second, now);
          flows_.erase(e.tuple);
        }
      }
    }
  }
}

namespace {

/// Stable timestamp sort via key extraction: pull the (SoA-style) key
/// column out of the records, argsort indices, then gather. Equivalent
/// to std::stable_sort on `key(rec)` but each record is moved exactly
/// once regardless of how deep the sort recursion goes.
template <typename Rec, typename KeyFn>
void sort_by_time(std::vector<Rec>& recs, KeyFn key) {
  const std::size_t n = recs.size();
  if (n < 2) return;
  std::vector<std::int64_t> ts(n);
  for (std::size_t i = 0; i < n; ++i) ts[i] = key(recs[i]).count_us();
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::stable_sort(order.begin(), order.end(),
                   [&ts](std::uint32_t a, std::uint32_t b) { return ts[a] < ts[b]; });
  std::vector<Rec> sorted;
  sorted.reserve(n);
  for (std::size_t i = 0; i < n; ++i) sorted.push_back(std::move(recs[order[i]]));
  recs = std::move(sorted);
}

}  // namespace

Dataset Monitor::harvest(SimTime end) {
  expire_state(end);
  for (auto& [tuple, flow] : flows_) {
    ++stats_.conns_flushed_at_harvest;
    finalize_flow(flow, end);
  }
  flows_.clear();
  for (auto& [key, pd] : pending_dns_) {
    ++stats_.dns_unanswered;
    DnsRecord rec = std::move(pd.rec);
    rec.answered = false;
    emit_dns(std::move(rec));
  }
  pending_dns_.clear();
  while (!expiries_.empty()) expiries_.pop();

  // Keep only locally-originated connections, matching the paper's
  // corpus definition (§3). (When a sink is attached, emit_conn applied
  // the same filter record by record and out_ is empty.)
  std::erase_if(out_.conns, [&](const ConnRecord& c) { return !local_orig(c.orig_ip); });

  // Timestamp-sort the logs: finalisation order (timeouts, harvest) is
  // not emission order, and the analysis pipeline assumes sorted logs.
  // The sort runs over an extracted timestamp column + index permutation
  // (records move once, in one gather pass, instead of O(n log n) times)
  // and is stable so that equal-timestamp records keep finalization
  // order — the order a LiveFeed delivers them in — keeping batch and
  // streaming runs record-for-record identical.
  sort_by_time(out_.conns, [](const ConnRecord& c) { return c.start; });
  sort_by_time(out_.dns, [](const DnsRecord& d) { return d.ts; });
  sort_by_time(out_.encflows, [](const EncFlowRecord& e) { return e.start; });
  Dataset result = std::move(out_);
  out_ = Dataset{};
  return result;
}

}  // namespace dnsctx::capture
