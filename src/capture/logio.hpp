// dnsctx — TSV log persistence for the passive datasets.
//
// The formats are Bro-flavoured (tab-separated, one header line, stable
// column order) so the analysis pipeline can run either on in-memory
// datasets or on logs written by a previous run — mirroring how the
// paper's pipeline consumed week-old capture files.
#pragma once

#include <iosfwd>
#include <string>

#include "capture/records.hpp"

namespace dnsctx::capture {

/// Write conn records, one per line, with a `#fields` header.
void write_conn_log(std::ostream& os, const std::vector<ConnRecord>& conns);

/// Write DNS records; answers serialise as comma-joined addr:ttl pairs.
void write_dns_log(std::ostream& os, const std::vector<DnsRecord>& dns);

/// Write encrypted-flow metadata records (one per TLS flow).
void write_encflow_log(std::ostream& os, const std::vector<EncFlowRecord>& flows);

/// Parse logs written by the functions above. Throws std::runtime_error
/// with a line number on malformed input; when `source` names the
/// origin (file path), it prefixes every diagnostic.
[[nodiscard]] std::vector<ConnRecord> read_conn_log(std::istream& is,
                                                    const std::string& source = {});
[[nodiscard]] std::vector<DnsRecord> read_dns_log(std::istream& is,
                                                  const std::string& source = {});
[[nodiscard]] std::vector<EncFlowRecord> read_encflow_log(std::istream& is,
                                                          const std::string& source = {});

/// File-path conveniences.
void save_dataset(const Dataset& ds, const std::string& conn_path,
                  const std::string& dns_path);
[[nodiscard]] Dataset load_dataset(const std::string& conn_path, const std::string& dns_path);

}  // namespace dnsctx::capture
