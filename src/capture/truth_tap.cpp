#include "capture/truth_tap.hpp"

namespace dnsctx::capture {

TruthTap::TruthTap(std::vector<Ipv4Addr> dns_servers) {
  servers_.reserve(dns_servers.size());
  for (const auto a : dns_servers) servers_.insert(a);
}

void TruthTap::observe(SimTime at_tap, const netsim::Packet& p) {
  // Port-53 traffic is summarised in the DNS log, never in conn.log —
  // same corpus rule the Monitor applies.
  if (p.src_port == 53 || p.dst_port == 53) return;
  // TCP flows are keyed by their opening SYN (the originator's first
  // packet); UDP flows by their first datagram in either direction.
  if (p.proto == Proto::kTcp && (!p.tcp.syn || p.tcp.ack)) return;
  const FiveTuple tuple = p.tuple();
  if (seen_.contains(tuple) || seen_.contains(tuple.reversed())) return;
  seen_.insert(tuple);

  TruthFlow flow;
  flow.start = at_tap;
  flow.tuple = tuple;
  if (p.intent) {
    flow.cls = p.intent->true_class;
  } else if (servers_.contains(p.dst_ip) &&
             (p.dst_port == 853 || p.dst_port == 443)) {
    // The stub's encrypted channel (or a legacy UDP/853 flow): not an
    // application connection at all — it IS the DNS.
    flow.cls = netsim::TrueClass::kDnsTransport;
  } else {
    // Intent-less traffic (beacons, control chatter) opened no lookup.
    flow.cls = netsim::TrueClass::kNoDns;
  }
  flows_.push_back(flow);
}

}  // namespace dnsctx::capture
