#include "capture/logio.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace dnsctx::capture {

namespace {

constexpr char kConnHeader[] =
    "#fields\tstart_us\tduration_us\torig_ip\torig_port\tresp_ip\tresp_port\tproto\t"
    "orig_bytes\tresp_bytes\tstate";
constexpr char kDnsHeader[] =
    "#fields\tts_us\tduration_us\tclient_ip\tclient_port\tresolver_ip\tquery\tqtype\t"
    "rcode\tanswered\tanswers";

[[nodiscard]] ConnState parse_state(std::string_view s) {
  if (s == "S0") return ConnState::kS0;
  if (s == "SF") return ConnState::kSf;
  if (s == "REJ") return ConnState::kRej;
  if (s == "RST") return ConnState::kRst;
  return ConnState::kOth;
}

template <typename T>
[[nodiscard]] T parse_num(std::string_view s, std::size_t line_no, const char* what) {
  T v{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error{strfmt("log line %zu: bad %s '%.*s'", line_no, what,
                                    static_cast<int>(s.size()), s.data())};
  }
  return v;
}

[[nodiscard]] Ipv4Addr parse_ip(std::string_view s, std::size_t line_no) {
  const auto ip = Ipv4Addr::parse(s);
  if (!ip) {
    throw std::runtime_error{
        strfmt("log line %zu: bad ip '%.*s'", line_no, static_cast<int>(s.size()), s.data())};
  }
  return *ip;
}

}  // namespace

void write_conn_log(std::ostream& os, const std::vector<ConnRecord>& conns) {
  os << kConnHeader << '\n';
  for (const auto& c : conns) {
    os << c.start.count_us() << '\t' << c.duration.count_us() << '\t'
       << c.orig_ip.to_string() << '\t' << c.orig_port << '\t' << c.resp_ip.to_string() << '\t'
       << c.resp_port << '\t' << to_string(c.proto) << '\t' << c.orig_bytes << '\t'
       << c.resp_bytes << '\t' << to_string(c.state) << '\n';
  }
}

void write_dns_log(std::ostream& os, const std::vector<DnsRecord>& dns) {
  os << kDnsHeader << '\n';
  for (const auto& d : dns) {
    os << d.ts.count_us() << '\t' << d.duration.count_us() << '\t'
       << d.client_ip.to_string() << '\t' << d.client_port << '\t'
       << d.resolver_ip.to_string() << '\t' << (d.query.empty() ? "-" : d.query) << '\t'
       << static_cast<std::uint16_t>(d.qtype) << '\t' << static_cast<int>(d.rcode) << '\t'
       << (d.answered ? 1 : 0) << '\t';
    if (d.answers.empty()) {
      os << '-';
    } else {
      for (std::size_t i = 0; i < d.answers.size(); ++i) {
        if (i) os << ',';
        os << d.answers[i].addr.to_string() << ':' << d.answers[i].ttl;
      }
    }
    os << '\n';
  }
}

std::vector<ConnRecord> read_conn_log(std::istream& is) {
  std::vector<ConnRecord> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto f = split(line, '\t');
    if (f.size() != 10) throw std::runtime_error{strfmt("conn log line %zu: bad field count", line_no)};
    ConnRecord c;
    c.start = SimTime::from_us(parse_num<std::int64_t>(f[0], line_no, "start"));
    c.duration = SimDuration::us(parse_num<std::int64_t>(f[1], line_no, "duration"));
    c.orig_ip = parse_ip(f[2], line_no);
    c.orig_port = parse_num<std::uint16_t>(f[3], line_no, "orig_port");
    c.resp_ip = parse_ip(f[4], line_no);
    c.resp_port = parse_num<std::uint16_t>(f[5], line_no, "resp_port");
    c.proto = f[6] == "udp" ? Proto::kUdp : Proto::kTcp;
    c.orig_bytes = parse_num<std::uint64_t>(f[7], line_no, "orig_bytes");
    c.resp_bytes = parse_num<std::uint64_t>(f[8], line_no, "resp_bytes");
    c.state = parse_state(f[9]);
    out.push_back(c);
  }
  return out;
}

std::vector<DnsRecord> read_dns_log(std::istream& is) {
  std::vector<DnsRecord> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto f = split(line, '\t');
    if (f.size() != 10) throw std::runtime_error{strfmt("dns log line %zu: bad field count", line_no)};
    DnsRecord d;
    d.ts = SimTime::from_us(parse_num<std::int64_t>(f[0], line_no, "ts"));
    d.duration = SimDuration::us(parse_num<std::int64_t>(f[1], line_no, "duration"));
    d.client_ip = parse_ip(f[2], line_no);
    d.client_port = parse_num<std::uint16_t>(f[3], line_no, "client_port");
    d.resolver_ip = parse_ip(f[4], line_no);
    d.query = f[5] == "-" ? std::string{} : std::string{f[5]};
    d.qtype = static_cast<dns::RrType>(parse_num<std::uint16_t>(f[6], line_no, "qtype"));
    d.rcode = static_cast<dns::Rcode>(parse_num<int>(f[7], line_no, "rcode"));
    d.answered = parse_num<int>(f[8], line_no, "answered") != 0;
    if (f[9] != "-") {
      for (const auto part : split(f[9], ',')) {
        const auto colon = part.rfind(':');
        if (colon == std::string_view::npos) {
          throw std::runtime_error{strfmt("dns log line %zu: bad answer", line_no)};
        }
        DnsAnswer a;
        a.addr = parse_ip(part.substr(0, colon), line_no);
        a.ttl = parse_num<std::uint32_t>(part.substr(colon + 1), line_no, "ttl");
        d.answers.push_back(a);
      }
    }
    out.push_back(std::move(d));
  }
  return out;
}

void save_dataset(const Dataset& ds, const std::string& conn_path, const std::string& dns_path) {
  std::ofstream conn_os{conn_path};
  if (!conn_os) throw std::runtime_error{"cannot open " + conn_path};
  write_conn_log(conn_os, ds.conns);
  std::ofstream dns_os{dns_path};
  if (!dns_os) throw std::runtime_error{"cannot open " + dns_path};
  write_dns_log(dns_os, ds.dns);
}

Dataset load_dataset(const std::string& conn_path, const std::string& dns_path) {
  std::ifstream conn_is{conn_path};
  if (!conn_is) throw std::runtime_error{"cannot open " + conn_path};
  std::ifstream dns_is{dns_path};
  if (!dns_is) throw std::runtime_error{"cannot open " + dns_path};
  Dataset ds;
  ds.conns = read_conn_log(conn_is);
  ds.dns = read_dns_log(dns_is);
  return ds;
}

}  // namespace dnsctx::capture
