#include "capture/logio.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace dnsctx::capture {

namespace {

constexpr char kConnHeader[] =
    "#fields\tstart_us\tduration_us\torig_ip\torig_port\tresp_ip\tresp_port\tproto\t"
    "orig_bytes\tresp_bytes\tstate";
constexpr char kDnsHeader[] =
    "#fields\tts_us\tduration_us\tclient_ip\tclient_port\tresolver_ip\tquery\tqtype\t"
    "rcode\tanswered\tanswers";
constexpr char kEncFlowHeader[] =
    "#fields\tstart_us\tduration_us\tclient_ip\tclient_port\tserver_ip\tserver_port\t"
    "up_msgs\tdown_msgs\tup_bytes\tdown_bytes\tfirst_up\tfirst_down\tpad_up\tpad_down";

[[nodiscard]] ConnState parse_state(std::string_view s) {
  if (s == "S0") return ConnState::kS0;
  if (s == "SF") return ConnState::kSf;
  if (s == "REJ") return ConnState::kRej;
  if (s == "RST") return ConnState::kRst;
  return ConnState::kOth;
}

template <typename T>
[[nodiscard]] T parse_num(std::string_view s, std::size_t line_no, const char* what) {
  T v{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error{strfmt("log line %zu: bad %s '%.*s'", line_no, what,
                                    static_cast<int>(s.size()), s.data())};
  }
  return v;
}

[[nodiscard]] Ipv4Addr parse_ip(std::string_view s, std::size_t line_no) {
  const auto ip = Ipv4Addr::parse(s);
  if (!ip) {
    throw std::runtime_error{
        strfmt("log line %zu: bad ip '%.*s'", line_no, static_cast<int>(s.size()), s.data())};
  }
  return *ip;
}

/// Read the whole stream into one buffer; the parsers then walk it with
/// string_views instead of per-line getline copies.
[[nodiscard]] std::string slurp(std::istream& is) {
  std::string buf;
  std::array<char, 1 << 16> chunk;
  while (is.read(chunk.data(), static_cast<std::streamsize>(chunk.size())) || is.gcount() > 0) {
    buf.append(chunk.data(), static_cast<std::size_t>(is.gcount()));
  }
  return buf;
}

/// Split `line` into exactly N tab-separated fields without allocating.
/// Returns false when the field count differs.
template <std::size_t N>
[[nodiscard]] bool split_fields(std::string_view line, std::array<std::string_view, N>& out) {
  std::size_t field = 0;
  std::size_t begin = 0;
  while (true) {
    const std::size_t tab = line.find('\t', begin);
    if (field == N) return false;  // too many fields
    if (tab == std::string_view::npos) {
      out[field++] = line.substr(begin);
      break;
    }
    out[field++] = line.substr(begin, tab - begin);
    begin = tab + 1;
  }
  return field == N;
}

/// Call `body(line, line_no)` for every line of `buf` (line numbers are
/// 1-based and count headers and blanks, matching the old getline loop).
template <typename Body>
void for_each_line(std::string_view buf, Body&& body) {
  std::size_t line_no = 0;
  std::size_t begin = 0;
  while (begin < buf.size()) {
    const std::size_t nl = buf.find('\n', begin);
    const std::size_t end = nl == std::string_view::npos ? buf.size() : nl;
    ++line_no;
    body(buf.substr(begin, end - begin), line_no);
    if (nl == std::string_view::npos) break;
    begin = nl + 1;
  }
}

/// Estimated record count: newlines minus the header line.
[[nodiscard]] std::size_t record_estimate(std::string_view buf) {
  const auto lines = static_cast<std::size_t>(std::count(buf.begin(), buf.end(), '\n'));
  return lines > 0 ? lines - 1 : 0;
}

/// Run `body`, prefixing any parse error with the source file path so
/// multi-file pipelines report WHICH log was malformed.
template <typename Body>
void with_source(const std::string& source, Body&& body) {
  if (source.empty()) {
    body();
    return;
  }
  try {
    body();
  } catch (const std::runtime_error& e) {
    throw std::runtime_error{source + ": " + e.what()};
  }
}

}  // namespace

void write_conn_log(std::ostream& os, const std::vector<ConnRecord>& conns) {
  os << kConnHeader << '\n';
  for (const auto& c : conns) {
    os << c.start.count_us() << '\t' << c.duration.count_us() << '\t'
       << c.orig_ip.to_string() << '\t' << c.orig_port << '\t' << c.resp_ip.to_string() << '\t'
       << c.resp_port << '\t' << to_string(c.proto) << '\t' << c.orig_bytes << '\t'
       << c.resp_bytes << '\t' << to_string(c.state) << '\n';
  }
}

void write_dns_log(std::ostream& os, const std::vector<DnsRecord>& dns) {
  os << kDnsHeader << '\n';
  for (const auto& d : dns) {
    os << d.ts.count_us() << '\t' << d.duration.count_us() << '\t'
       << d.client_ip.to_string() << '\t' << d.client_port << '\t'
       << d.resolver_ip.to_string() << '\t'
       << (d.query.empty() ? std::string_view{"-"} : d.query.view()) << '\t'
       << static_cast<std::uint16_t>(d.qtype) << '\t' << static_cast<int>(d.rcode) << '\t'
       << (d.answered ? 1 : 0) << '\t';
    if (d.answers.empty()) {
      os << '-';
    } else {
      for (std::size_t i = 0; i < d.answers.size(); ++i) {
        if (i) os << ',';
        os << d.answers[i].addr.to_string() << ':' << d.answers[i].ttl;
      }
    }
    os << '\n';
  }
}

void write_encflow_log(std::ostream& os, const std::vector<EncFlowRecord>& flows) {
  os << kEncFlowHeader << '\n';
  for (const auto& e : flows) {
    os << e.start.count_us() << '\t' << e.duration.count_us() << '\t'
       << e.client_ip.to_string() << '\t' << e.client_port << '\t'
       << e.server_ip.to_string() << '\t' << e.server_port << '\t' << e.up_msgs << '\t'
       << e.down_msgs << '\t' << e.up_bytes << '\t' << e.down_bytes << '\t'
       << e.first_up_bytes << '\t' << e.first_down_bytes << '\t' << e.pad_aligned_up << '\t'
       << e.pad_aligned_down << '\n';
  }
}

std::vector<EncFlowRecord> read_encflow_log(std::istream& is, const std::string& source) {
  const std::string buf = slurp(is);
  std::vector<EncFlowRecord> out;
  out.reserve(record_estimate(buf));
  std::array<std::string_view, 14> f;
  with_source(source, [&] {
  for_each_line(buf, [&](std::string_view line, std::size_t line_no) {
    if (line.empty() || line[0] == '#') return;
    if (!split_fields(line, f)) {
      throw std::runtime_error{strfmt("encflow log line %zu: bad field count", line_no)};
    }
    EncFlowRecord e;
    e.start = SimTime::from_us(parse_num<std::int64_t>(f[0], line_no, "start"));
    e.duration = SimDuration::us(parse_num<std::int64_t>(f[1], line_no, "duration"));
    e.client_ip = parse_ip(f[2], line_no);
    e.client_port = parse_num<std::uint16_t>(f[3], line_no, "client_port");
    e.server_ip = parse_ip(f[4], line_no);
    e.server_port = parse_num<std::uint16_t>(f[5], line_no, "server_port");
    e.up_msgs = parse_num<std::uint32_t>(f[6], line_no, "up_msgs");
    e.down_msgs = parse_num<std::uint32_t>(f[7], line_no, "down_msgs");
    e.up_bytes = parse_num<std::uint64_t>(f[8], line_no, "up_bytes");
    e.down_bytes = parse_num<std::uint64_t>(f[9], line_no, "down_bytes");
    e.first_up_bytes = parse_num<std::uint64_t>(f[10], line_no, "first_up");
    e.first_down_bytes = parse_num<std::uint64_t>(f[11], line_no, "first_down");
    e.pad_aligned_up = parse_num<std::uint32_t>(f[12], line_no, "pad_up");
    e.pad_aligned_down = parse_num<std::uint32_t>(f[13], line_no, "pad_down");
    out.push_back(e);
  });
  });
  return out;
}

std::vector<ConnRecord> read_conn_log(std::istream& is, const std::string& source) {
  const std::string buf = slurp(is);
  std::vector<ConnRecord> out;
  out.reserve(record_estimate(buf));
  std::array<std::string_view, 10> f;
  with_source(source, [&] {
  for_each_line(buf, [&](std::string_view line, std::size_t line_no) {
    if (line.empty() || line[0] == '#') return;
    if (!split_fields(line, f)) {
      throw std::runtime_error{strfmt("conn log line %zu: bad field count", line_no)};
    }
    ConnRecord c;
    c.start = SimTime::from_us(parse_num<std::int64_t>(f[0], line_no, "start"));
    c.duration = SimDuration::us(parse_num<std::int64_t>(f[1], line_no, "duration"));
    c.orig_ip = parse_ip(f[2], line_no);
    c.orig_port = parse_num<std::uint16_t>(f[3], line_no, "orig_port");
    c.resp_ip = parse_ip(f[4], line_no);
    c.resp_port = parse_num<std::uint16_t>(f[5], line_no, "resp_port");
    c.proto = f[6] == "udp" ? Proto::kUdp : Proto::kTcp;
    c.orig_bytes = parse_num<std::uint64_t>(f[7], line_no, "orig_bytes");
    c.resp_bytes = parse_num<std::uint64_t>(f[8], line_no, "resp_bytes");
    c.state = parse_state(f[9]);
    out.push_back(c);
  });
  });
  return out;
}

std::vector<DnsRecord> read_dns_log(std::istream& is, const std::string& source) {
  const std::string buf = slurp(is);
  std::vector<DnsRecord> out;
  out.reserve(record_estimate(buf));
  std::array<std::string_view, 10> f;
  with_source(source, [&] {
  for_each_line(buf, [&](std::string_view line, std::size_t line_no) {
    if (line.empty() || line[0] == '#') return;
    if (!split_fields(line, f)) {
      throw std::runtime_error{strfmt("dns log line %zu: bad field count", line_no)};
    }
    DnsRecord d;
    d.ts = SimTime::from_us(parse_num<std::int64_t>(f[0], line_no, "ts"));
    d.duration = SimDuration::us(parse_num<std::int64_t>(f[1], line_no, "duration"));
    d.client_ip = parse_ip(f[2], line_no);
    d.client_port = parse_num<std::uint16_t>(f[3], line_no, "client_port");
    d.resolver_ip = parse_ip(f[4], line_no);
    // Intern straight from the field view: one string materialization
    // per DISTINCT name across the whole log, not one per record.
    if (f[5] != "-") d.query = util::InternedName{f[5]};
    d.qtype = static_cast<dns::RrType>(parse_num<std::uint16_t>(f[6], line_no, "qtype"));
    d.rcode = static_cast<dns::Rcode>(parse_num<int>(f[7], line_no, "rcode"));
    d.answered = parse_num<int>(f[8], line_no, "answered") != 0;
    if (f[9] != "-") {
      std::string_view answers = f[9];
      while (!answers.empty()) {
        const std::size_t comma = answers.find(',');
        const std::string_view part =
            comma == std::string_view::npos ? answers : answers.substr(0, comma);
        answers = comma == std::string_view::npos ? std::string_view{} : answers.substr(comma + 1);
        const auto colon = part.rfind(':');
        if (colon == std::string_view::npos) {
          throw std::runtime_error{strfmt("dns log line %zu: bad answer", line_no)};
        }
        DnsAnswer a;
        a.addr = parse_ip(part.substr(0, colon), line_no);
        a.ttl = parse_num<std::uint32_t>(part.substr(colon + 1), line_no, "ttl");
        d.answers.push_back(a);
      }
    }
    out.push_back(std::move(d));
  });
  });
  return out;
}

void save_dataset(const Dataset& ds, const std::string& conn_path, const std::string& dns_path) {
  std::ofstream conn_os{conn_path};
  if (!conn_os) throw std::runtime_error{"cannot open " + conn_path};
  write_conn_log(conn_os, ds.conns);
  std::ofstream dns_os{dns_path};
  if (!dns_os) throw std::runtime_error{"cannot open " + dns_path};
  write_dns_log(dns_os, ds.dns);
}

Dataset load_dataset(const std::string& conn_path, const std::string& dns_path) {
  std::ifstream conn_is{conn_path};
  if (!conn_is) throw std::runtime_error{"cannot open " + conn_path};
  std::ifstream dns_is{dns_path};
  if (!dns_is) throw std::runtime_error{"cannot open " + dns_path};
  Dataset ds;
  ds.conns = read_conn_log(conn_is, conn_path);
  ds.dns = read_dns_log(dns_is, dns_path);
  return ds;
}

}  // namespace dnsctx::capture
