// dnsctx — the passive monitor at the ISP aggregation point (§3).
//
// Reimplements the Bro/Zeek behaviours the paper relies on:
//   * TCP connections delineated by SYN/FIN/RST tracking,
//   * UDP "connections" = all packets sharing addresses+ports, closed by
//     a 60 s inactivity timeout,
//   * DNS transaction logging by parsing UDP/53 payload bytes (real
//     RFC 1035 wire format via dns::decode) and matching responses to
//     queries by (addresses, ports, transaction id),
//   * port-53 flows are summarised in the DNS log only, not conn.log
//     (the paper's 11.2M-connection corpus is application traffic).
//
// The monitor consumes ONLY observable packet fields (see packet.hpp's
// vantage-point rule) and never touches simulation ground truth.
#pragma once

#include <cstdint>
#include <queue>

#include "capture/records.hpp"
#include "netsim/network.hpp"
#include "util/flat_map.hpp"

namespace dnsctx::capture {

struct MonitorConfig {
  SimDuration udp_timeout = SimDuration::sec(60);   ///< Bro's UDP inactivity close
  SimDuration tcp_attempt_timeout = SimDuration::sec(30);  ///< S0 flush
  SimDuration tcp_idle_timeout = SimDuration::min(15);     ///< stuck-TCP flush
  SimDuration dns_query_timeout = SimDuration::sec(10);    ///< unanswered query flush
  /// The monitored access network (Bro's local_nets). The paper's corpus
  /// is "connections originated by hosts within the CCZ"; harvest()
  /// keeps only conns whose originator falls in this prefix.
  Ipv4Addr local_net{100, 66, 0, 0};
  std::uint32_t local_prefix_bits = 16;
  bool keep_only_local_orig = true;
  /// Also summarise encrypted-flow metadata (EncFlowRecord) for TCP
  /// flows to TLS ports 853/443 — sizes, timing, message counts; never
  /// payload. Off by default: the classic study has no use for it and
  /// the datasets stay byte-identical.
  bool observe_encrypted_metadata = false;
};

/// Operational counters, in the spirit of Zeek's weird.log: everything
/// the monitor saw but could not fully account for.
struct MonitorStats {
  std::uint64_t packets = 0;
  std::uint64_t malformed_dns = 0;         ///< unparseable port-53 payloads
  std::uint64_t dns_retransmissions = 0;   ///< repeated (client,txid) queries
  std::uint64_t unsolicited_dns = 0;       ///< responses with no pending query
  std::uint64_t midstream_tcp = 0;         ///< non-SYN packets for unknown flows
  std::uint64_t conns_closed = 0;          ///< FIN/RST-delineated closes
  std::uint64_t conns_timed_out = 0;       ///< idle/attempt-timeout flushes
  std::uint64_t conns_flushed_at_harvest = 0;
  std::uint64_t dns_unanswered = 0;        ///< queries that never saw a response
};

class Monitor : public netsim::PacketTap {
 public:
  explicit Monitor(MonitorConfig cfg = {});

  void observe(SimTime at_tap, const netsim::Packet& p) override;

  /// Flush every open flow/query as of `end` and return the datasets.
  /// The monitor is reusable afterwards (state cleared; stats persist).
  [[nodiscard]] Dataset harvest(SimTime end);

  /// Stream finalized records to `sink` instead of materializing them:
  /// while a sink is attached the monitor's datasets stay empty and
  /// harvest() returns an empty Dataset (it still flushes open state —
  /// to the sink). Records arrive in FINALIZATION order, not timestamp
  /// order; pair with stream::LiveFeed and open_watermark() to recover
  /// the canonical order. The conn-side local-originator filter applies
  /// at emission, exactly as harvest() applies it. Pass nullptr to
  /// detach.
  void set_record_sink(RecordSink* sink) { sink_ = sink; }

  /// Safe reordering bound for a LiveFeed: every record emitted after
  /// this call has key time (conn start / dns query ts) at or after the
  /// returned instant. Computed as the minimum over open flows' starts,
  /// pending queries' timestamps, and `now`.
  [[nodiscard]] SimTime open_watermark(SimTime now) const;

  [[nodiscard]] const MonitorStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t packets_seen() const { return stats_.packets; }
  [[nodiscard]] std::uint64_t malformed_dns() const { return stats_.malformed_dns; }

 private:
  /// Per-flow encrypted-metadata accumulator (observe_encrypted_metadata
  /// only; tracks the data messages a TLS flow exchanges).
  struct EncMeta {
    std::uint32_t up_msgs = 0;
    std::uint32_t down_msgs = 0;
    std::uint64_t up_bytes = 0;
    std::uint64_t down_bytes = 0;
    std::uint64_t first_up = 0;
    std::uint64_t first_down = 0;
    std::uint32_t pad_up = 0;
    std::uint32_t pad_down = 0;
  };
  struct Flow {
    ConnRecord rec;
    SimTime last_packet;
    bool saw_syn = false;
    bool saw_syn_ack = false;
    int fin_halves = 0;
    bool saw_rst = false;
    bool closed = false;
    std::uint64_t generation = 0;
    EncMeta enc;
  };
  struct PendingDns {
    DnsRecord rec;
    std::uint16_t txid = 0;
    std::uint64_t generation = 0;
  };
  struct DnsKey {
    Ipv4Addr client_ip;
    std::uint16_t client_port;
    Ipv4Addr resolver_ip;
    std::uint16_t txid;
    bool operator==(const DnsKey&) const = default;
  };
  struct DnsKeyHash {
    [[nodiscard]] std::size_t operator()(const DnsKey& k) const noexcept {
      std::size_t h = Ipv4Hash{}(k.client_ip);
      h = hash_combine(h, k.resolver_ip.to_u32());
      return hash_combine(h, (static_cast<std::uint64_t>(k.client_port) << 16) | k.txid);
    }
  };

  void handle_dns(SimTime at_tap, const netsim::Packet& p);
  void handle_conn(SimTime at_tap, const netsim::Packet& p);
  void track_enc(Flow& flow, const netsim::Packet& p, bool is_orig);
  [[nodiscard]] static bool enc_candidate(const ConnRecord& rec);
  void expire_state(SimTime now);
  void finalize_flow(Flow& flow, SimTime now);
  [[nodiscard]] SimDuration flow_timeout(const Flow& flow) const;
  [[nodiscard]] bool local_orig(Ipv4Addr ip) const;
  void emit_conn(const ConnRecord& rec);
  void emit_dns(DnsRecord&& rec);
  void emit_encflow(const Flow& flow);

  MonitorConfig cfg_;
  // Open-addressing tables: one find per packet on the tap hot path, so
  // avoid per-node allocation and bucket-chain pointer chasing.
  util::FlatMap<FiveTuple, Flow, FiveTupleHash> flows_;
  util::FlatMap<DnsKey, PendingDns, DnsKeyHash> pending_dns_;
  // Expiry wheel: lazy re-checked (entry's generation must still match).
  struct Expiry {
    SimTime when;
    FiveTuple tuple;
    DnsKey dns_key;
    bool is_dns;
    std::uint64_t generation;
  };
  struct ExpiryLater {
    [[nodiscard]] bool operator()(const Expiry& a, const Expiry& b) const {
      return a.when > b.when;
    }
  };
  std::priority_queue<Expiry, std::vector<Expiry>, ExpiryLater> expiries_;
  std::uint64_t next_generation_ = 1;

  Dataset out_;
  MonitorStats stats_;
  RecordSink* sink_ = nullptr;
};

}  // namespace dnsctx::capture
