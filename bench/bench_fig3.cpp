// Reproduces §7 / Figure 3: per-resolver-platform cache hit rates, R
// lookup delay distributions (top) and connection throughput
// distributions (bottom), including the Google connectivity-check
// artifact.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;
  const auto run = bench::run_default("Figure 3 + §7", argc, argv);
  std::printf("%s\n", analysis::format_fig3(run.study).c_str());

  std::printf("Figure 3 (top) — R lookup delay series per platform:\n");
  for (const auto& p : run.study.platforms) {
    if (p.r_lookup_ms.empty()) continue;
    std::printf("%s", render_ascii_cdf(p.r_lookup_ms, p.platform + " R lookups", "ms").c_str());
  }
  std::printf("\nFigure 3 (bottom) — throughput series per platform (KB/s at quantiles):\n");
  std::printf("  %-12s %9s %9s %9s %9s %9s\n", "platform", "p10", "p25", "p50", "p75", "p90");
  auto row = [](const std::string& name, const Cdf& cdf) {
    if (cdf.empty()) return;
    std::printf("  %-12s %9.2f %9.2f %9.2f %9.2f %9.2f\n", name.c_str(),
                cdf.quantile(0.10) / 1e3, cdf.quantile(0.25) / 1e3, cdf.quantile(0.50) / 1e3,
                cdf.quantile(0.75) / 1e3, cdf.quantile(0.90) / 1e3);
  };
  for (const auto& p : run.study.platforms) {
    row(p.platform, p.throughput_bps);
    if (p.platform == "Google") row("Google(filt)", p.throughput_bps_filtered);
  }
  std::printf("\npaper take-aways to check: Cloudflare trails until ~p75; Google's solid\n"
              "line is dragged down by connectivitycheck conns and recovers once they\n"
              "are filtered (dashed); no platform wins on every metric.\n");
  return 0;
}
