// Reproduces Figure 1: the distribution of the gap between a DNS
// response and the start of the connection that uses it, plus the
// knee/threshold discussion of §4.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;
  const auto run = bench::run_default("Figure 1", argc, argv);
  std::printf("%s\n", analysis::format_fig1(run.study).c_str());

  // The paper's two-region justification, at several probe points.
  const auto& pairing = run.study.pairing;
  const auto& ds = run.town().dataset();
  std::printf("first-use fraction by gap band:\n");
  const double bands[] = {5.0, 20.0, 100.0, 1'000.0, 60'000.0};
  double prev = 0.0;
  for (const double hi : bands) {
    std::uint64_t total = 0, first = 0;
    for (std::size_t i = 0; i < ds.conns.size(); ++i) {
      const auto& pc = pairing.conns[i];
      if (pc.dns_idx < 0) continue;
      const double gap = pc.gap.to_ms();
      if (gap <= prev || gap > hi) continue;
      ++total;
      first += pc.first_use ? 1 : 0;
    }
    if (total > 0) {
      std::printf("  gap in (%8.0f, %8.0f] ms: %6.1f%% first use  (%llu conns)\n", prev, hi,
                  100.0 * static_cast<double>(first) / static_cast<double>(total),
                  static_cast<unsigned long long>(total));
    }
    prev = hi;
  }
  return 0;
}
