// Ablations the paper mentions in passing (footnotes 5 and 7) promoted
// to first-class experiments:
//   1. pairing policy: most-recent vs random candidate (§4),
//   2. blocked-threshold sweep (20 ms … 500 ms),
//   3. SC/R default-threshold sweep,
//   4. §6 significance-criteria sweep.
#include "util/strings.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;
  using analysis::ClassifyConfig;
  using analysis::PairingPolicy;

  const auto run = bench::run_default("Ablations (footnotes 5 & 7)", argc, argv);
  const auto& ds = run.town().dataset();

  // --- 1. pairing policy ---------------------------------------------------
  std::printf("1. pairing policy (class shares, %%):\n");
  std::printf("   %-12s %6s %6s %6s %6s %6s\n", "policy", "N", "LC", "P", "SC", "R");
  auto shares = [&](const analysis::Classified& c) {
    const auto& n = c.counts;
    return strfmt("%6.1f %6.1f %6.1f %6.1f %6.1f", 100.0 * n.share(n.n),
                  100.0 * n.share(n.lc), 100.0 * n.share(n.p), 100.0 * n.share(n.sc),
                  100.0 * n.share(n.r));
  };
  std::printf("   %-12s %s\n", "most-recent", shares(run.study.classified).c_str());
  for (const std::uint64_t seed : {1ULL, 2ULL}) {
    const auto pairing = analysis::pair_connections(ds, PairingPolicy::kRandom, seed);
    const auto classified = analysis::classify_connections(ds, pairing);
    std::printf("   random/%llu     %s\n", static_cast<unsigned long long>(seed),
                shares(classified).c_str());
  }
  std::printf("   (paper §4: deviations are small; take-aways unchanged)\n\n");

  // --- 2. blocked-threshold sweep -------------------------------------------
  std::printf("2. blocked-threshold sweep (paper footnote 5; default 100 ms):\n");
  std::printf("   %-10s %9s %9s %14s\n", "threshold", "blocked%", "no-block%", "significant%");
  for (const int ms : {20, 50, 100, 250, 500}) {
    ClassifyConfig cfg;
    cfg.blocked_threshold = SimDuration::ms(ms);
    const auto classified = analysis::classify_connections(ds, run.study.pairing, cfg);
    const auto perf = analysis::analyze_performance(ds, run.study.pairing, classified);
    const auto& c = classified.counts;
    std::printf("   %6d ms %8.1f%% %8.1f%% %13.1f%%\n", ms, 100.0 * c.share(c.blocked()),
                100.0 * (1.0 - c.share(c.blocked())), 100.0 * perf.significant_overall);
  }
  std::printf("   (numbers shift slightly; the overall insight is stable)\n\n");

  // --- 3. SC/R fallback-threshold sweep --------------------------------------
  std::printf("3. SC/R default threshold sweep (rare resolvers only):\n");
  for (const double ms : {2.0, 5.0, 10.0, 20.0}) {
    ClassifyConfig cfg;
    cfg.default_threshold_ms = ms;
    const auto classified = analysis::classify_connections(ds, run.study.pairing, cfg);
    const auto& c = classified.counts;
    std::printf("   %5.0f ms: SC %5.1f%%  R %5.1f%%  hit rate %5.1f%%\n", ms,
                100.0 * c.share(c.sc), 100.0 * c.share(c.r),
                100.0 * c.shared_cache_hit_rate());
  }
  std::printf("\n");

  // --- 4. significance-criteria sweep (footnote 7) ---------------------------
  std::printf("4. §6 significance criteria sweep (paper: 20 ms, 1%%):\n");
  std::printf("   %-18s %14s %18s\n", "criteria", "significant%", "of all conns%");
  for (const auto& [abs_ms, rel_pct] : std::initializer_list<std::pair<double, double>>{
           {10.0, 0.5}, {20.0, 1.0}, {50.0, 2.0}, {100.0, 5.0}}) {
    const auto perf = analysis::analyze_performance(ds, run.study.pairing,
                                                    run.study.classified, abs_ms, rel_pct);
    std::printf("   >%3.0f ms & >%3.1f%%   %13.1f%% %17.1f%%\n", abs_ms, rel_pct,
                100.0 * perf.significant_both, 100.0 * perf.significant_overall);
  }
  std::printf("   (paper footnote 7: alternate constants give similar high-order insight)\n");
  return 0;
}
