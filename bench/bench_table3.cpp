// Reproduces Table 3: a standard whole-house cache versus one that
// speculatively refreshes every entry as it expires.
#include "util/strings.hpp"
#include "bench_common.hpp"
#include "cachesim/refresh.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;
  const auto run = bench::run_default("Table 3 (§8 refreshing)", argc, argv);
  const auto& ds = run.town().dataset();

  cachesim::RefreshConfig std_cfg;
  const auto standard = cachesim::simulate_refresh(ds, run.study.pairing, std_cfg);
  cachesim::RefreshConfig ref_cfg;
  ref_cfg.policy = cachesim::RefreshPolicy::kRefreshAll;
  const auto refresh = cachesim::simulate_refresh(ds, run.study.pairing, ref_cfg);

  auto fmt_count = [](std::uint64_t v) {
    return v >= 10'000'000 ? dnsctx::strfmt("%.2gB", static_cast<double>(v) / 1e9)
                           : dnsctx::strfmt("%.3gM", static_cast<double>(v) / 1e6);
  };
  std::printf("Table 3: efficacy of refreshing expiring names (measured | paper)\n");
  std::printf("  %-22s %16s %16s\n", "", "Standard", "Refresh All");
  std::printf("  %-22s %16llu %16llu   (paper: 10.4M | 10.4M)\n", "Conns",
              static_cast<unsigned long long>(standard.conns),
              static_cast<unsigned long long>(refresh.conns));
  std::printf("  %-22s %16s %16s   (paper: 8.4M | 1.2B)\n", "DNS lookups",
              fmt_count(standard.upstream_lookups).c_str(),
              fmt_count(refresh.upstream_lookups).c_str());
  std::printf("  %-22s %16.2f %16.1f   (paper: 0.2 | 25.2)\n", "Lookups/sec/house",
              standard.lookups_per_sec_per_house(), refresh.lookups_per_sec_per_house());
  std::printf("  %-22s %15.1f%% %15.1f%%   (paper: 61.0%% | 96.6%%)\n", "Cache hits",
              100.0 * standard.conn_hit_rate(), 100.0 * refresh.conn_hit_rate());
  std::printf("  %-22s %15.1f%% %15.1f%%   (paper: 39.0%% | 3.4%%)\n", "Cache misses",
              100.0 * (1.0 - standard.conn_hit_rate()),
              100.0 * (1.0 - refresh.conn_hit_rate()));
  const double blowup = standard.upstream_lookups
                            ? static_cast<double>(refresh.upstream_lookups) /
                                  static_cast<double>(standard.upstream_lookups)
                            : 0.0;
  std::printf("  lookup blow-up: %.0fx (paper: ~144x; scales with trace length —\n"
              "  the refresh stream is proportional to time, the demand stream is not)\n",
              blowup);
  return 0;
}
