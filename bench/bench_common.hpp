// dnsctx — shared scaffolding for the reproduction benches.
//
// Every bench binary simulates the default neighborhood scenario at a
// shape-preserving reduced scale (the paper's corpus is 7 days × ~100
// houses; the default here is 12 hours × 80 houses) and prints the
// paper's rows next to the measured ones. Override the scale with:
//
//   bench_tableX [houses] [hours] [seed] [csv_dir]
//               [--shards N] [--threads N] [--json PATH]
//               [--transport do53|dot|doh|resolverless]
//               [--pack FILE] [--metrics] [--metrics-out FILE]
//
// `--threads N` runs both the simulation shards and the analysis
// map-reduce on N workers (0 = hardware concurrency); results are
// identical for any N. `--json PATH` (or the DNSCTX_BENCH_JSON
// environment variable) appends a one-line JSON timing record per run.
// `--metrics` enables the obs registry (default off, so plain timing
// runs measure the disabled fast path) and embeds the scrape in the
// JSON record under "metrics"; `--metrics-out FILE` also writes the
// scrape to FILE (.json -> JSON document, otherwise Prometheus text).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include <sys/resource.h>

#include "analysis/encdns.hpp"
#include "analysis/export.hpp"
#include "analysis/failures.hpp"
#include "analysis/report.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "scenario/pack.hpp"
#include "scenario/scenario.hpp"

namespace dnsctx::bench {

/// High-water resident set size of this process, in bytes. Monotone over
/// the process lifetime — to compare two phases, measure the cheap one
/// first and check it stays under the expensive one's mark.
[[nodiscard]] inline std::uint64_t peak_rss_bytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // ru_maxrss is KiB on Linux
}

struct BenchScale {
  std::size_t houses = 80;
  int hours = 12;
  std::uint64_t seed = 42;
  std::string csv_dir;    ///< when non-empty, figure series are exported here
  unsigned threads = 1;   ///< workers for simulation and analysis (0 = hardware)
  std::size_t shards = 1; ///< simulation shards (a scenario knob, see scenario.hpp)
  std::string json_path;  ///< when non-empty, append a one-line JSON timing record
  std::string faults;     ///< fault plan spec ("" = unimpaired baseline)
  std::string transport = "do53";  ///< DNS transport scenario (see scenario.hpp)
  bool transport_given = false;    ///< --transport on the command line
  std::string pack_file;  ///< scenario-pack file ("" = default composition)
  std::string pack = "default";  ///< pack name for the JSON record key
  bool metrics = false;   ///< enable the obs registry for this run (default off)
  std::string metrics_out;  ///< when non-empty, also write a scrape file on exit
};

[[nodiscard]] inline BenchScale parse_scale(int argc, char** argv) {
  BenchScale s;
  if (const char* env = std::getenv("DNSCTX_BENCH_JSON"); env && *env) s.json_path = env;
  bool threads_given = false, shards_given = false;
  int pos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      s.threads = static_cast<unsigned>(std::atoi(argv[++i]));
      threads_given = true;
      continue;
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      s.shards = static_cast<std::size_t>(std::atoi(argv[++i]));
      shards_given = true;
      continue;
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      s.json_path = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      s.faults = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--transport") == 0 && i + 1 < argc) {
      s.transport = argv[++i];
      s.transport_given = true;
      continue;
    }
    if (std::strcmp(argv[i], "--pack") == 0 && i + 1 < argc) {
      s.pack_file = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--metrics") == 0) {
      s.metrics = true;
      continue;
    }
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      s.metrics = true;
      s.metrics_out = argv[++i];
      continue;
    }
    switch (++pos) {
      case 1: s.houses = static_cast<std::size_t>(std::atoi(argv[i])); break;
      case 2: s.hours = std::atoi(argv[i]); break;
      case 3: s.seed = static_cast<std::uint64_t>(std::atoll(argv[i])); break;
      case 4: s.csv_dir = argv[i]; break;
      default: break;
    }
  }
  // --threads without --shards: shard for simulation parallelism, by a
  // rule that depends on the house count only — never on the thread
  // count — so every --threads value produces the same scenario. Without
  // --threads the default stays shards = 1, whose platform-cache sharing
  // (one set of resolver platforms for the whole town) is what the
  // paper-fidelity numbers in EXPERIMENTS.md are calibrated against.
  if (threads_given && !shards_given) s.shards = std::min<std::size_t>(s.houses, 16);
  return s;
}

/// Build the scenario for a bench scale. Applies the pack file first
/// (recording its name in s.pack for the JSON record), then the scale
/// knobs on top — so `--houses` etc. always win over pack contents.
[[nodiscard]] inline scenario::ScenarioConfig scenario_for(BenchScale& s) {
  scenario::ScenarioConfig cfg;
  if (!s.pack_file.empty()) {
    try {
      s.pack = scenario::apply_pack_file(s.pack_file, &cfg).name;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::exit(2);
    }
  }
  cfg.houses = s.houses;
  cfg.duration = SimDuration::hours(s.hours);
  cfg.seed = s.seed;
  cfg.shards = s.shards;
  cfg.threads = s.threads;
  if (!s.faults.empty()) cfg.faults = faults::FaultPlan::parse(s.faults);
  if (s.transport_given || s.pack_file.empty()) {
    if (const auto t = netsim::parse_transport(s.transport)) {
      cfg.transport = *t;
    } else {
      std::fprintf(stderr,
                   "unknown transport '%s' (expected do53, dot, doh, or resolverless)\n",
                   s.transport.c_str());
      std::exit(2);
    }
  } else {
    // Pack without an explicit --transport: keep the pack's default and
    // reflect it into the record so the JSON key matches reality.
    s.transport = netsim::to_string(cfg.transport);
  }
  return cfg;
}

struct BenchRun {
  std::unique_ptr<scenario::Town> town_ptr;
  analysis::Study study;
  analysis::EncConfusion enc;  ///< encrypted-flow classifier result (zero on do53)
  double gen_sec = 0.0;    ///< Town construction + simulation + harvest
  double study_sec = 0.0;  ///< run_study wall time
  double enc_classify_sec = 0.0;  ///< encrypted-flow classifier wall time

  [[nodiscard]] scenario::Town& town() const { return *town_ptr; }
};

inline void append_json_record(const std::string& path, const char* bench_name,
                               const BenchScale& s, const BenchRun& run) {
  std::ofstream os{path, std::ios::app};
  if (!os) {
    std::fprintf(stderr, "warning: cannot open bench JSON file %s\n", path.c_str());
    return;
  }
  const std::size_t conns = run.town().dataset().conns.size();
  const std::size_t dns = run.town().dataset().dns.size();
  const std::size_t encflows = run.town().dataset().encflows.size();
  const double total_sec = run.gen_sec + run.study_sec;
  const double records_per_sec =
      total_sec > 0.0 ? static_cast<double>(conns + dns) / total_sec : 0.0;
  const analysis::FailureReport failures =
      analysis::build_failure_report(run.town().dataset());
  const analysis::FailureCounts& fc = failures.counts;
  char buf[1536];
  std::snprintf(buf, sizeof buf,
                "{\"bench\":\"%s\",\"houses\":%zu,\"hours\":%d,\"seed\":%llu,"
                "\"threads\":%u,\"shards\":%zu,\"faults\":\"%s\",\"pack\":\"%s\","
                "\"transport\":\"%s\",\"encflows\":%zu,\"enc_classify_sec\":%.3f,"
                "\"gen_sec\":%.3f,\"study_sec\":%.3f,"
                "\"total_sec\":%.3f,\"conns\":%zu,\"dns\":%zu,\"records_per_sec\":%.0f,"
                "\"failed_lookups\":%llu,\"servfail\":%llu,\"retry_chains\":%llu,"
                "\"recovered_chains\":%llu,\"failed_chains\":%llu,\"s0_conns\":%llu,"
                "\"peak_rss_bytes\":%llu}",
                bench_name, s.houses, s.hours, static_cast<unsigned long long>(s.seed),
                s.threads, s.shards, s.faults.c_str(), s.pack.c_str(),
                s.transport.c_str(), encflows,
                run.enc_classify_sec, run.gen_sec, run.study_sec,
                total_sec, conns, dns, records_per_sec,
                static_cast<unsigned long long>(fc.unanswered + fc.servfail +
                                                fc.other_rcode),
                static_cast<unsigned long long>(fc.servfail),
                static_cast<unsigned long long>(fc.retry_chains),
                static_cast<unsigned long long>(fc.recovered_chains),
                static_cast<unsigned long long>(fc.failed_chains),
                static_cast<unsigned long long>(fc.s0_conns),
                static_cast<unsigned long long>(peak_rss_bytes()));
  std::string record{buf};
  if (obs::enabled()) {
    record.pop_back();  // reopen the object to append the metrics scrape
    record += ",\"metrics\":";
    record += obs::to_flat_json(obs::registry().snapshot());
    record += '}';
  }
  os << record << '\n';
}

/// Simulate + analyze, with a banner describing the run and wall-clock
/// timing for the generation and study halves.
[[nodiscard]] inline BenchRun run_default(const char* bench_name, int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  BenchScale scale = parse_scale(argc, argv);
  if (scale.metrics) obs::set_enabled(true);
  const scenario::ScenarioConfig cfg = scenario_for(scale);  // may set scale.pack
  std::printf("== %s — dnsctx reproduction of \"Putting DNS in Context\" (IMC'20) ==\n",
              bench_name);
  std::printf("scenario: %zu houses, %d h of traffic, seed %llu, %u thread(s), "
              "transport %s, pack %s (paper: ~100 houses, 7 days)\n",
              scale.houses, scale.hours, static_cast<unsigned long long>(scale.seed),
              scale.threads, scale.transport.c_str(), scale.pack.c_str());
  BenchRun run;
  const auto t0 = Clock::now();
  run.town_ptr = std::make_unique<scenario::Town>(cfg);
  run.town().run();
  const auto t1 = Clock::now();
  run.gen_sec = std::chrono::duration<double>(t1 - t0).count();
  const std::size_t conns = run.town().dataset().conns.size();
  const std::size_t dns = run.town().dataset().dns.size();
  std::printf("captured: %zu connections, %zu DNS transactions in %.2f s\n",
              conns, dns, run.gen_sec);

  analysis::StudyConfig study_cfg;
  study_cfg.threads = scale.threads;
  run.study = analysis::run_study(run.town().dataset(), study_cfg);
  const auto t2 = Clock::now();
  run.study_sec = std::chrono::duration<double>(t2 - t1).count();
  const double total_sec = run.gen_sec + run.study_sec;
  std::printf("analyzed in %.2f s — %.0f records/s end to end\n\n", run.study_sec,
              total_sec > 0.0 ? static_cast<double>(conns + dns) / total_sec : 0.0);

  if (!run.town().dataset().encflows.empty()) {
    run.enc = analysis::evaluate_enc_classifier(run.town().dataset().encflows,
                                                run.town().resolver_service_addrs());
    run.enc_classify_sec = std::chrono::duration<double>(Clock::now() - t2).count();
    std::printf("%sclassified %zu encrypted flows in %.3f s\n\n",
                analysis::render_enc_report(run.enc).c_str(),
                run.town().dataset().encflows.size(), run.enc_classify_sec);
  }

  if (!scale.csv_dir.empty()) {
    const auto files = analysis::export_study_csv(run.study, scale.csv_dir);
    std::printf("exported %zu CSV series to %s\n\n", files, scale.csv_dir.c_str());
  }
  run.town().publish_metrics();
  if (!scale.json_path.empty()) append_json_record(scale.json_path, bench_name, scale, run);
  if (!scale.metrics_out.empty()) obs::write_metrics_file(scale.metrics_out);
  return run;
}

}  // namespace dnsctx::bench
