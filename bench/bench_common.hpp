// dnsctx — shared scaffolding for the reproduction benches.
//
// Every bench binary simulates the default neighborhood scenario at a
// shape-preserving reduced scale (the paper's corpus is 7 days × ~100
// houses; the default here is 12 hours × 80 houses) and prints the
// paper's rows next to the measured ones. Override the scale with:
//
//   bench_tableX [houses] [hours] [seed]
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/export.hpp"
#include "analysis/report.hpp"
#include "scenario/scenario.hpp"

namespace dnsctx::bench {

struct BenchScale {
  std::size_t houses = 80;
  int hours = 12;
  std::uint64_t seed = 42;
  std::string csv_dir;  ///< when non-empty, figure series are exported here
};

[[nodiscard]] inline BenchScale parse_scale(int argc, char** argv) {
  BenchScale s;
  if (argc > 1) s.houses = static_cast<std::size_t>(std::atoi(argv[1]));
  if (argc > 2) s.hours = std::atoi(argv[2]);
  if (argc > 3) s.seed = static_cast<std::uint64_t>(std::atoll(argv[3]));
  if (argc > 4) s.csv_dir = argv[4];
  return s;
}

[[nodiscard]] inline scenario::ScenarioConfig scenario_for(const BenchScale& s) {
  scenario::ScenarioConfig cfg;
  cfg.houses = s.houses;
  cfg.duration = SimDuration::hours(s.hours);
  cfg.seed = s.seed;
  return cfg;
}

struct BenchRun {
  std::unique_ptr<scenario::Town> town_ptr;
  analysis::Study study;

  [[nodiscard]] scenario::Town& town() const { return *town_ptr; }
};

/// Simulate + analyze, with a banner describing the run.
[[nodiscard]] inline BenchRun run_default(const char* bench_name, int argc, char** argv) {
  const BenchScale scale = parse_scale(argc, argv);
  std::printf("== %s — dnsctx reproduction of \"Putting DNS in Context\" (IMC'20) ==\n",
              bench_name);
  std::printf("scenario: %zu houses, %d h of traffic, seed %llu "
              "(paper: ~100 houses, 7 days)\n",
              scale.houses, scale.hours, static_cast<unsigned long long>(scale.seed));
  BenchRun run;
  run.town_ptr = std::make_unique<scenario::Town>(scenario_for(scale));
  run.town().run();
  std::printf("captured: %zu connections, %zu DNS transactions\n\n",
              run.town().dataset().conns.size(), run.town().dataset().dns.size());
  run.study = analysis::run_study(run.town().dataset());
  const BenchScale scale2 = parse_scale(argc, argv);
  if (!scale2.csv_dir.empty()) {
    const auto files = analysis::export_study_csv(run.study, scale2.csv_dir);
    std::printf("exported %zu CSV series to %s\n\n", files, scale2.csv_dir.c_str());
  }
  return run;
}

}  // namespace dnsctx::bench
