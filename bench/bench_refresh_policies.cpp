// The paper's §8 open question, answered: "can we design ways to achieve
// close to the 96.6% cache hit rate ... while incurring costs that are
// commensurate with the standard cache?"
//
// This bench sweeps the refresh-policy space between the paper's two
// extremes (standard cache, refresh-all) and prints the hit-rate/cost
// frontier: refreshing only recently-used or repeatedly-used names
// recovers most of the hit-rate gain at a fraction of the query load.
#include "bench_common.hpp"
#include "cachesim/refresh.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;
  using cachesim::RefreshConfig;
  using cachesim::RefreshPolicy;

  const auto run = bench::run_default("§8 open question: refresh policies", argc, argv);
  const auto& ds = run.town().dataset();

  struct Variant {
    std::string label;
    RefreshConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"standard (paper col 1)", {}});
  {
    RefreshConfig cfg;
    cfg.policy = RefreshPolicy::kRefreshFrequent;
    cfg.frequent_threshold = 5;
    variants.push_back({"frequent (>=5 uses)", cfg});
  }
  {
    RefreshConfig cfg;
    cfg.policy = RefreshPolicy::kRefreshFrequent;
    cfg.frequent_threshold = 2;
    variants.push_back({"frequent (>=2 uses)", cfg});
  }
  {
    RefreshConfig cfg;
    cfg.policy = RefreshPolicy::kRefreshRecent;
    cfg.recent_window = SimDuration::min(15);
    variants.push_back({"recent (15 min)", cfg});
  }
  {
    RefreshConfig cfg;
    cfg.policy = RefreshPolicy::kRefreshRecent;
    cfg.recent_window = SimDuration::hours(2);
    variants.push_back({"recent (2 h)", cfg});
  }
  {
    RefreshConfig cfg;
    cfg.policy = RefreshPolicy::kRefreshAll;
    variants.push_back({"refresh-all (paper col 2)", cfg});
  }

  std::printf("%-26s %10s %14s %16s %10s\n", "policy", "hit rate", "lookups",
              "lookups/s/house", "cost vs std");
  double standard_lookups = 0.0;
  for (const auto& v : variants) {
    const auto result = cachesim::simulate_refresh(ds, run.study.pairing, v.cfg);
    if (standard_lookups == 0.0) {
      standard_lookups = static_cast<double>(result.upstream_lookups);
    }
    std::printf("%-26s %9.1f%% %14llu %16.2f %9.1fx\n", v.label.c_str(),
                100.0 * result.conn_hit_rate(),
                static_cast<unsigned long long>(result.upstream_lookups),
                result.lookups_per_sec_per_house(),
                static_cast<double>(result.upstream_lookups) / standard_lookups);
  }
  std::printf("\n(paper anchors: standard 61.0%% at 1x; refresh-all 96.6%% at ~144x over a\n"
              "week — the blow-up scales with trace length. The selective policies are\n"
              "this repo's answer to the paper's closing open question.)\n");
  return 0;
}
